//===- workload/Harness.cpp - Throughput measurement harness ------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "workload/Harness.h"

#include "support/Stats.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace crs;

ThroughputResult crs::runThroughput(
    const std::function<std::unique_ptr<GraphTarget>()> &MakeTarget,
    const OpMix &Mix, const KeySpace &Keys, const HarnessParams &Params) {
  std::vector<double> Kept;
  ThroughputResult Result;

  for (unsigned Run = 0; Run < Params.Repeats; ++Run) {
    std::unique_ptr<GraphTarget> Target = MakeTarget();

    std::atomic<unsigned> Ready{0};
    std::atomic<bool> Go{false};
    std::vector<std::thread> Threads;
    Threads.reserve(Params.NumThreads);
    for (unsigned T = 0; T < Params.NumThreads; ++T) {
      Threads.emplace_back([&, T] {
        Xoshiro256 Rng(Params.Seed * 0x9e3779b9 + Run * 7919 + T);
        Ready.fetch_add(1, std::memory_order_release);
        while (!Go.load(std::memory_order_acquire))
          std::this_thread::yield();
        for (uint64_t I = 0; I < Params.OpsPerThread; ++I)
          runRandomOp(*Target, Mix, Keys, Rng);
        Target->threadFinish(); // drain any per-thread batch buffer
      });
    }
    while (Ready.load(std::memory_order_acquire) != Params.NumThreads)
      std::this_thread::yield();

    auto Start = std::chrono::steady_clock::now();
    Go.store(true, std::memory_order_release);
    for (auto &Th : Threads)
      Th.join();
    auto End = std::chrono::steady_clock::now();

    double Seconds = std::chrono::duration<double>(End - Start).count();
    uint64_t Ops = Params.OpsPerThread * Params.NumThreads;
    if (Run >= Params.DiscardRuns)
      Kept.push_back(static_cast<double>(Ops) / Seconds);
    Result.TotalOps += Ops;
    Result.FinalSize = Target->size();
    Result.RestartsPerOp =
        Ops ? static_cast<double>(Target->restarts()) /
                  static_cast<double>(Ops)
            : 0.0;
    // Exact plan-cache counters (the same striped counters the metrics
    // registry exports as relation.plan_cache.hits/misses). Prepared
    // handles bypass the cache per execution, so a target may report
    // fewer lookups than ops; the hit rate is exact over the lookups
    // that happened, falling back to the ops-derived estimate for
    // targets that only count misses.
    Result.PlanCacheHits = Target->planCacheHits();
    Result.PlanCacheMisses = Target->planCacheMisses();
    uint64_t Lookups = Result.PlanCacheHits + Result.PlanCacheMisses;
    if (Result.PlanCacheHits > 0)
      Result.PlanCacheHitRate = static_cast<double>(Result.PlanCacheHits) /
                                static_cast<double>(Lookups);
    else
      Result.PlanCacheHitRate =
          Ops ? 1.0 - std::min<double>(
                          1.0, static_cast<double>(Result.PlanCacheMisses) /
                                   static_cast<double>(Ops))
              : 0.0;
  }

  OnlineStats Stats;
  for (double K : Kept)
    Stats.add(K);
  Result.OpsPerSec = Stats.mean();
  Result.StdDev = Stats.stddev();
  return Result;
}
