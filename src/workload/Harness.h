//===- workload/Harness.h - Throughput measurement harness ------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The throughput-scalability harness of §6.2: k identical threads each
/// execute N randomly chosen operations against one shared target,
/// started together behind a barrier; throughput is total operations per
/// wall-clock second. Following the paper's methodology, runs can be
/// repeated with the first few discarded (their JIT warmup; our cache
/// warmup) and the remainder averaged.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_WORKLOAD_HARNESS_H
#define CRS_WORKLOAD_HARNESS_H

#include "workload/GraphWorkload.h"

#include <functional>

namespace crs {

/// Parameters of one throughput measurement.
struct HarnessParams {
  unsigned NumThreads = 1;
  uint64_t OpsPerThread = 100000;
  uint64_t Seed = 42;
  unsigned Repeats = 1;       ///< total runs (paper: 8)
  unsigned DiscardRuns = 0;   ///< initial runs to discard (paper: 3)
};

/// Result of a throughput measurement.
struct ThroughputResult {
  double OpsPerSec = 0;      ///< mean over kept runs
  double StdDev = 0;         ///< over kept runs
  uint64_t TotalOps = 0;
  size_t FinalSize = 0;      ///< relation size after the last run
  /// Executor health over the last run: speculative/out-of-order
  /// restarts per operation, and the plan-cache hit rate (1.0 once
  /// every signature is warm).
  double RestartsPerOp = 0;
  double PlanCacheHitRate = 0;
  /// Exact plan-cache counters over the last run (the values the
  /// metrics registry exports as relation.plan_cache.hits/misses);
  /// zero for targets that do not track them.
  uint64_t PlanCacheHits = 0;
  uint64_t PlanCacheMisses = 0;
};

/// Runs the §6.2 benchmark loop: builds a fresh target per repeat via
/// \p MakeTarget (which must also reset the underlying structure),
/// hammers it with \p Mix from \p Params.NumThreads threads, and
/// aggregates kept-run throughput.
ThroughputResult
runThroughput(const std::function<std::unique_ptr<GraphTarget>()> &MakeTarget,
              const OpMix &Mix, const KeySpace &Keys,
              const HarnessParams &Params);

} // namespace crs

#endif // CRS_WORKLOAD_HARNESS_H
