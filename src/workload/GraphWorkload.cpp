//===- workload/GraphWorkload.cpp - The §6.2 graph benchmark ------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "workload/GraphWorkload.h"

#include "support/Compiler.h"

using namespace crs;

std::string OpMix::str() const {
  return std::to_string(FindSuccessors) + "-" +
         std::to_string(FindPredecessors) + "-" + std::to_string(InsertEdge) +
         "-" + std::to_string(RemoveEdge);
}

RelationGraphTarget::RelationGraphTarget(ConcurrentRelation &R) : Rel(&R) {
  const ColumnCatalog &Cat = R.spec().catalog();
  SrcCol = Cat.id("src");
  DstCol = Cat.id("dst");
  WeightCol = Cat.id("weight");
  SuccCols = ColumnSet::of(DstCol) | ColumnSet::of(WeightCol);
  PredCols = ColumnSet::of(SrcCol) | ColumnSet::of(WeightCol);
}

void RelationGraphTarget::findSuccessors(int64_t Src) {
  Rel->query(Tuple::of({{SrcCol, Value::ofInt(Src)}}), SuccCols);
}

void RelationGraphTarget::findPredecessors(int64_t Dst) {
  Rel->query(Tuple::of({{DstCol, Value::ofInt(Dst)}}), PredCols);
}

bool RelationGraphTarget::insertEdge(int64_t Src, int64_t Dst,
                                     int64_t Weight) {
  return Rel->insert(
      Tuple::of({{SrcCol, Value::ofInt(Src)}, {DstCol, Value::ofInt(Dst)}}),
      Tuple::of({{WeightCol, Value::ofInt(Weight)}}));
}

bool RelationGraphTarget::removeEdge(int64_t Src, int64_t Dst) {
  return Rel->remove(Tuple::of({{SrcCol, Value::ofInt(Src)},
                                {DstCol, Value::ofInt(Dst)}})) > 0;
}

thread_local crs::detail::PendingThreadBuffer<BoundOp>
    BatchedRelationTarget::Buf;

uint64_t crs::detail::nextPendingTargetId() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

void BatchedRelationTarget::enqueue(BoundOp B) {
  std::vector<BoundOp> &Ops = Buf.claim(TargetId);
  Ops.push_back(std::move(B));
  if (Ops.size() >= BatchSize) {
    executeBatch(Ops);
    Ops.clear();
  }
}

void BatchedRelationTarget::threadFinish() {
  if (Buf.owns(TargetId) && !Buf.Ops.empty()) {
    executeBatch(Buf.Ops);
    Buf.Ops.clear();
  }
}

void BatchedRelationTarget::findSuccessors(int64_t Src) {
  enqueue(BoundOp::query(Succ, {Value::ofInt(Src)}));
}

void BatchedRelationTarget::findPredecessors(int64_t Dst) {
  enqueue(BoundOp::query(Pred, {Value::ofInt(Dst)}));
}

bool BatchedRelationTarget::insertEdge(int64_t Src, int64_t Dst,
                                       int64_t Weight) {
  // Slot order is the insert handle's ascending-column layout.
  BoundOp B = BoundOp::insert(Ins, {Value(), Value(), Value()});
  B.Args[InsSrc] = Value::ofInt(Src);
  B.Args[InsDst] = Value::ofInt(Dst);
  B.Args[InsWeight] = Value::ofInt(Weight);
  enqueue(std::move(B));
  return true; // deferred: the real outcome lands in the op's Result
}

bool BatchedRelationTarget::removeEdge(int64_t Src, int64_t Dst) {
  BoundOp B = BoundOp::remove(Rem, {Value(), Value()});
  B.Args[RemSrc] = Value::ofInt(Src);
  B.Args[RemDst] = Value::ofInt(Dst);
  enqueue(std::move(B));
  return true; // deferred
}

void crs::runRandomOp(GraphTarget &Target, const OpMix &Mix,
                      const KeySpace &Keys, Xoshiro256 &Rng) {
  runRandomOpLogged(Target, Mix, Keys, Rng, nullptr);
}

void crs::runRandomOpLogged(GraphTarget &Target, const OpMix &Mix,
                            const KeySpace &Keys, Xoshiro256 &Rng,
                            MutationLog *Log) {
  unsigned Total = Mix.FindSuccessors + Mix.FindPredecessors +
                   Mix.InsertEdge + Mix.RemoveEdge;
  assert(Total > 0 && "operation mix must be nonempty");
  uint64_t Draw = Rng.nextBounded(Total);
  int64_t Src = Keys.SrcBase +
                static_cast<int64_t>(
                    Rng.nextBounded(static_cast<uint64_t>(Keys.NumNodes)));
  int64_t Dst = static_cast<int64_t>(
      Rng.nextBounded(static_cast<uint64_t>(Keys.NumNodes)));
  if (Draw < Mix.FindSuccessors) {
    Target.findSuccessors(Src);
    return;
  }
  Draw -= Mix.FindSuccessors;
  if (Draw < Mix.FindPredecessors) {
    Target.findPredecessors(Dst);
    return;
  }
  Draw -= Mix.FindPredecessors;
  if (Draw < Mix.InsertEdge) {
    int64_t Weight = static_cast<int64_t>(
        Rng.nextBounded(static_cast<uint64_t>(Keys.WeightRange)));
    bool Won = Target.insertEdge(Src, Dst, Weight);
    if (Log)
      Log->push_back({true, Src, Dst, Weight, Won ? 1 : 0});
    return;
  }
  bool Removed = Target.removeEdge(Src, Dst);
  if (Log)
    Log->push_back({false, Src, Dst, 0, Removed ? 1 : 0});
}

std::map<std::pair<int64_t, int64_t>, int64_t>
crs::replayMutationLogs(const std::vector<MutationLog> &Logs,
                        std::vector<std::string> *Errors) {
  std::map<std::pair<int64_t, int64_t>, int64_t> Edges;
  auto Err = [&](const LoggedMutation &M, const char *Why) {
    if (Errors)
      Errors->push_back(std::string(Why) + " at edge (" +
                        std::to_string(M.Src) + ", " + std::to_string(M.Dst) +
                        ")");
  };
  // Src ranges are disjoint per log, so each key's mutations live in
  // exactly one log and replay in their real execution order; logs are
  // independent and can be replayed sequentially in any order.
  for (const MutationLog &Log : Logs)
    for (const LoggedMutation &M : Log) {
      auto Key = std::make_pair(M.Src, M.Dst);
      if (M.IsInsert) {
        bool Won = Edges.emplace(Key, M.Weight).second;
        if ((Won ? 1 : 0) != M.Outcome)
          Err(M, Won ? "insert should have won but lost"
                     : "insert should have lost but won");
      } else {
        int64_t Removed = static_cast<int64_t>(Edges.erase(Key));
        if (Removed != M.Outcome)
          Err(M, Removed ? "remove missed a present edge"
                         : "remove matched a phantom edge");
      }
    }
  return Edges;
}
