//===- workload/GraphWorkload.cpp - The §6.2 graph benchmark ------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "workload/GraphWorkload.h"

#include "support/Compiler.h"

using namespace crs;

std::string OpMix::str() const {
  return std::to_string(FindSuccessors) + "-" +
         std::to_string(FindPredecessors) + "-" + std::to_string(InsertEdge) +
         "-" + std::to_string(RemoveEdge);
}

RelationGraphTarget::RelationGraphTarget(ConcurrentRelation &R) : Rel(&R) {
  const ColumnCatalog &Cat = R.spec().catalog();
  SrcCol = Cat.id("src");
  DstCol = Cat.id("dst");
  WeightCol = Cat.id("weight");
  SuccCols = ColumnSet::of(DstCol) | ColumnSet::of(WeightCol);
  PredCols = ColumnSet::of(SrcCol) | ColumnSet::of(WeightCol);
}

void RelationGraphTarget::findSuccessors(int64_t Src) {
  Rel->query(Tuple::of({{SrcCol, Value::ofInt(Src)}}), SuccCols);
}

void RelationGraphTarget::findPredecessors(int64_t Dst) {
  Rel->query(Tuple::of({{DstCol, Value::ofInt(Dst)}}), PredCols);
}

bool RelationGraphTarget::insertEdge(int64_t Src, int64_t Dst,
                                     int64_t Weight) {
  return Rel->insert(
      Tuple::of({{SrcCol, Value::ofInt(Src)}, {DstCol, Value::ofInt(Dst)}}),
      Tuple::of({{WeightCol, Value::ofInt(Weight)}}));
}

bool RelationGraphTarget::removeEdge(int64_t Src, int64_t Dst) {
  return Rel->remove(Tuple::of({{SrcCol, Value::ofInt(Src)},
                                {DstCol, Value::ofInt(Dst)}})) > 0;
}

void crs::runRandomOp(GraphTarget &Target, const OpMix &Mix,
                      const KeySpace &Keys, Xoshiro256 &Rng) {
  unsigned Total = Mix.FindSuccessors + Mix.FindPredecessors +
                   Mix.InsertEdge + Mix.RemoveEdge;
  assert(Total > 0 && "operation mix must be nonempty");
  uint64_t Draw = Rng.nextBounded(Total);
  int64_t Src = static_cast<int64_t>(
      Rng.nextBounded(static_cast<uint64_t>(Keys.NumNodes)));
  int64_t Dst = static_cast<int64_t>(
      Rng.nextBounded(static_cast<uint64_t>(Keys.NumNodes)));
  if (Draw < Mix.FindSuccessors) {
    Target.findSuccessors(Src);
    return;
  }
  Draw -= Mix.FindSuccessors;
  if (Draw < Mix.FindPredecessors) {
    Target.findPredecessors(Dst);
    return;
  }
  Draw -= Mix.FindPredecessors;
  if (Draw < Mix.InsertEdge) {
    int64_t Weight = static_cast<int64_t>(
        Rng.nextBounded(static_cast<uint64_t>(Keys.WeightRange)));
    Target.insertEdge(Src, Dst, Weight);
    return;
  }
  Target.removeEdge(Src, Dst);
}
