//===- workload/GraphWorkload.h - The §6.2 graph benchmark -----*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's synthetic graph benchmark (§6.2), modeled after the
/// methodology of Herlihy et al. for comparing concurrent maps: k
/// identical threads perform randomly chosen operations on one shared
/// directed-graph relation, starting from empty. The four operations are
/// find-successors, find-predecessors, insert-edge (compare-and-set via
/// the relational insert), and remove-edge; a workload is a distribution
/// x-y-z-w over them. Throughput is total operations per second.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_WORKLOAD_GRAPHWORKLOAD_H
#define CRS_WORKLOAD_GRAPHWORKLOAD_H

#include "baseline/HandcodedGraph.h"
#include "runtime/ConcurrentRelation.h"
#include "runtime/PreparedOp.h"
#include "runtime/ShardedRelation.h"
#include "support/Compiler.h"
#include "support/Rng.h"

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace crs {

/// An operation mix x-y-z-w (percentages of successors / predecessors /
/// inserts / removes), as in Figure 5's panel labels.
struct OpMix {
  unsigned FindSuccessors = 0;
  unsigned FindPredecessors = 0;
  unsigned InsertEdge = 0;
  unsigned RemoveEdge = 0;

  std::string str() const;
};

/// The four Figure 5 workloads.
inline constexpr OpMix Fig5Workloads[] = {
    {70, 0, 20, 10},
    {35, 35, 20, 10},
    {0, 0, 50, 50},
    {45, 45, 9, 1},
};

/// Key-space parameters for generated operations.
struct KeySpace {
  int64_t NumNodes = 512;        ///< src/dst drawn from [0, NumNodes)
  int64_t WeightRange = 1 << 20; ///< weights drawn from [0, WeightRange)
  /// Offset added to generated src values: src ∈ [SrcBase, SrcBase +
  /// NumNodes). Giving each worker thread its own base partitions the
  /// edge keys (src, dst) by thread, which makes per-thread mutation
  /// logs exactly replayable (see replayMutationLogs).
  int64_t SrcBase = 0;
};

/// Abstract graph under test: adapts either a synthesized relation or
/// the handcoded baseline to the benchmark loop.
class GraphTarget {
public:
  virtual ~GraphTarget() = default;
  virtual void findSuccessors(int64_t Src) = 0;
  virtual void findPredecessors(int64_t Dst) = 0;
  virtual bool insertEdge(int64_t Src, int64_t Dst, int64_t Weight) = 0;
  virtual bool removeEdge(int64_t Src, int64_t Dst) = 0;
  virtual size_t size() const = 0;
  /// Called by each harness worker thread when its operation loop ends
  /// (targets that buffer per-thread work — batched execution — drain
  /// the calling thread's buffer here).
  virtual void threadFinish() {}
  /// Executor-health metrics (zero for targets without them): total
  /// transaction restarts, and plan-cache lookups that compiled
  /// (misses) or were served from the cache (hits) — the same counters
  /// the metrics registry exports as relation.plan_cache.hits/misses.
  virtual uint64_t restarts() const { return 0; }
  virtual uint64_t planCacheMisses() const { return 0; }
  virtual uint64_t planCacheHits() const { return 0; }
};

/// GraphTarget over a synthesized ConcurrentRelation (spec of
/// makeGraphSpec() shape).
class RelationGraphTarget : public GraphTarget {
public:
  explicit RelationGraphTarget(ConcurrentRelation &R);
  void findSuccessors(int64_t Src) override;
  void findPredecessors(int64_t Dst) override;
  bool insertEdge(int64_t Src, int64_t Dst, int64_t Weight) override;
  bool removeEdge(int64_t Src, int64_t Dst) override;
  size_t size() const override { return Rel->size(); }
  uint64_t restarts() const override { return Rel->restarts(); }
  uint64_t planCacheMisses() const override {
    return Rel->planCacheMisses();
  }
  uint64_t planCacheHits() const override { return Rel->planCacheHits(); }

private:
  ConcurrentRelation *Rel;
  ColumnId SrcCol, DstCol, WeightCol;
  ColumnSet SuccCols, PredCols;
};

namespace detail {

/// A target's per-thread pending-operation buffer, keyed by a
/// never-reused target id (not the target's address, which heap reuse
/// can alias): a fresh target can never execute — or dangle into — a
/// destroyed predecessor's buffered ops. Ops buffered by a thread that
/// never drains are dropped with their claim; harnesses drain every
/// worker through GraphTarget::threadFinish. Shared by every buffering
/// target (batched execution, transactional scopes in the bench).
template <typename OpT> struct PendingThreadBuffer {
  uint64_t Owner = 0;
  std::vector<OpT> Ops;

  /// The pending ops for target \p Id, dropping a dead predecessor's
  /// leftovers on first claim.
  std::vector<OpT> &claim(uint64_t Id) {
    if (Owner != Id) {
      Owner = Id;
      Ops.clear();
    }
    return Ops;
  }
  bool owns(uint64_t Id) const { return Owner == Id; }
};

/// The process-wide id source behind PendingThreadBuffer keys.
uint64_t nextPendingTargetId();

/// Shared prepared-handle graph target over any relation surface with
/// prepareQuery/prepareInsert/prepareRemove (a ConcurrentRelation or a
/// ShardedRelation): plans resolved at construction, per-call work
/// reduced to slot binds, and query results streamed (weights
/// aggregated via forEach) instead of materialized.
template <typename RelT, typename QueryT, typename InsertT,
          typename RemoveT>
class PreparedTargetBase : public GraphTarget {
public:
  explicit PreparedTargetBase(RelT &R) : Rel(&R) {
    const RelationSpec &Spec = R.spec();
    ColumnId SrcCol = Spec.catalog().id("src");
    ColumnId DstCol = Spec.catalog().id("dst");
    WeightCol = Spec.catalog().id("weight");
    ColumnSet Key = ColumnSet::of(SrcCol) | ColumnSet::of(DstCol);
    Succ = R.prepareQuery(ColumnSet::of(SrcCol),
                          ColumnSet::of(DstCol) | ColumnSet::of(WeightCol));
    Pred = R.prepareQuery(ColumnSet::of(DstCol),
                          ColumnSet::of(SrcCol) | ColumnSet::of(WeightCol));
    Ins = R.prepareInsert(Key);
    Rem = R.prepareRemove(Key);
    SuccSlot = slotOf(Succ, SrcCol);
    PredSlot = slotOf(Pred, DstCol);
    InsSrc = slotOf(Ins, SrcCol);
    InsDst = slotOf(Ins, DstCol);
    InsWeight = slotOf(Ins, WeightCol);
    RemSrc = slotOf(Rem, SrcCol);
    RemDst = slotOf(Rem, DstCol);
  }

  void findSuccessors(int64_t Src) override {
    // Streaming consumption: aggregate the weights without
    // materializing (or deduplicating) a result vector.
    int64_t Sum = 0;
    Succ.bind(SuccSlot, Value::ofInt(Src));
    Succ.forEach([&](const Tuple &T) { Sum += T.get(WeightCol).asInt(); });
    doNotOptimize(Sum);
  }

  void findPredecessors(int64_t Dst) override {
    int64_t Sum = 0;
    Pred.bind(PredSlot, Value::ofInt(Dst));
    Pred.forEach([&](const Tuple &T) { Sum += T.get(WeightCol).asInt(); });
    doNotOptimize(Sum);
  }

  bool insertEdge(int64_t Src, int64_t Dst, int64_t Weight) override {
    Ins.bind(InsSrc, Value::ofInt(Src));
    Ins.bind(InsDst, Value::ofInt(Dst));
    Ins.bind(InsWeight, Value::ofInt(Weight));
    return Ins.execute();
  }

  bool removeEdge(int64_t Src, int64_t Dst) override {
    Rem.bind(RemSrc, Value::ofInt(Src));
    Rem.bind(RemDst, Value::ofInt(Dst));
    return Rem.execute() > 0;
  }

  size_t size() const override { return Rel->size(); }
  uint64_t restarts() const override { return Rel->restarts(); }
  uint64_t planCacheMisses() const override {
    return Rel->planCacheMisses();
  }
  uint64_t planCacheHits() const override { return Rel->planCacheHits(); }

protected:
  /// Position of \p C in a handle's bind-slot layout.
  template <typename Handle>
  static unsigned slotOf(const Handle &H, ColumnId C) {
    for (unsigned I = 0; I < H.numSlots(); ++I)
      if (H.slotColumn(I) == C)
        return I;
    assert(false && "column not in bind layout");
    return 0;
  }

  RelT *Rel;
  QueryT Succ, Pred;
  InsertT Ins;
  RemoveT Rem;
  ColumnId WeightCol;
  /// Slot indices within each handle's bind layout.
  unsigned SuccSlot, PredSlot, InsSrc, InsDst, InsWeight, RemSrc, RemDst;
};

} // namespace detail

/// GraphTarget over the same relation through prepared handles — the
/// prepared-API row of the Fig. 5 comparison.
class PreparedRelationTarget
    : public detail::PreparedTargetBase<ConcurrentRelation, PreparedQuery,
                                        PreparedInsert, PreparedRemove> {
public:
  using PreparedTargetBase::PreparedTargetBase;
};

/// PreparedRelationTarget that additionally coalesces operations into
/// per-thread batches of BatchSize and flushes them through
/// executeBatch — the batched-API row of the Fig. 5 comparison.
/// Operation effects (and the booleans insertEdge/removeEdge return)
/// are deferred until the enqueueing thread's next flush.
class BatchedRelationTarget : public PreparedRelationTarget {
public:
  explicit BatchedRelationTarget(ConcurrentRelation &R,
                                 unsigned BatchSize = 32)
      : PreparedRelationTarget(R), BatchSize(BatchSize) {}
  void findSuccessors(int64_t Src) override;
  void findPredecessors(int64_t Dst) override;
  bool insertEdge(int64_t Src, int64_t Dst, int64_t Weight) override;
  bool removeEdge(int64_t Src, int64_t Dst) override;
  void threadFinish() override;

private:
  /// The calling thread's pending operations; see
  /// detail::PendingThreadBuffer for the id-keyed aliasing guard.
  static thread_local detail::PendingThreadBuffer<BoundOp> Buf;
  const uint64_t TargetId = detail::nextPendingTargetId();
  unsigned BatchSize;

  void enqueue(BoundOp B);
};

/// GraphTarget over a hash-partitioned ShardedRelation through sharded
/// prepared handles — the horizontal-scaling row of the Fig. 5
/// comparison. With the graph spec's default routing column ({src}),
/// successor queries, inserts, and removes route to one shard;
/// predecessor queries fan out across shards with streaming merge.
class ShardedGraphTarget
    : public detail::PreparedTargetBase<ShardedRelation, ShardedQuery,
                                        ShardedInsert, ShardedRemove> {
public:
  using PreparedTargetBase::PreparedTargetBase;
};

/// GraphTarget over the handcoded baseline.
class HandcodedGraphTarget : public GraphTarget {
public:
  explicit HandcodedGraphTarget(HandcodedGraph &G) : Graph(&G) {}
  void findSuccessors(int64_t Src) override { Graph->successors(Src); }
  void findPredecessors(int64_t Dst) override { Graph->predecessors(Dst); }
  bool insertEdge(int64_t Src, int64_t Dst, int64_t Weight) override {
    return Graph->insertEdge(Src, Dst, Weight);
  }
  bool removeEdge(int64_t Src, int64_t Dst) override {
    return Graph->removeEdge(Src, Dst);
  }
  size_t size() const override { return Graph->size(); }

private:
  HandcodedGraph *Graph;
};

/// Executes one randomly drawn operation against \p Target.
void runRandomOp(GraphTarget &Target, const OpMix &Mix, const KeySpace &Keys,
                 Xoshiro256 &Rng);

/// One logged edge mutation and its observed outcome (queries are not
/// logged — they have no effect to replay).
struct LoggedMutation {
  bool IsInsert = false; ///< else a remove
  int64_t Src = 0;
  int64_t Dst = 0;
  int64_t Weight = 0;  ///< inserts only
  int64_t Outcome = 0; ///< insert: 1 iff the put-if-absent won; remove: #removed
};
using MutationLog = std::vector<LoggedMutation>;

/// runRandomOp that additionally appends every executed mutation, with
/// its observed outcome, to \p Log (when non-null). Requires a target
/// with immediate effects (not BatchedRelationTarget, whose outcomes
/// are deferred to the next flush).
void runRandomOpLogged(GraphTarget &Target, const OpMix &Mix,
                       const KeySpace &Keys, Xoshiro256 &Rng,
                       MutationLog *Log);

/// The oracle for concurrent-workload correctness (live-migration tests
/// and examples/live_migration.cpp): replays per-thread mutation logs —
/// whose src ranges must be disjoint (KeySpace::SrcBase), so each edge
/// key is owned by exactly one sequential log — into the expected final
/// (src, dst) → weight edge set. Every logged outcome is checked
/// against the replay: a disagreement means the concurrent run lost or
/// duplicated an effect, and is described in \p Errors (when non-null).
std::map<std::pair<int64_t, int64_t>, int64_t>
replayMutationLogs(const std::vector<MutationLog> &Logs,
                   std::vector<std::string> *Errors = nullptr);

} // namespace crs

#endif // CRS_WORKLOAD_GRAPHWORKLOAD_H
