//===- containers/HashMap.h - Non-concurrent chained hash map --*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch separate-chaining hash map — the analogue of
/// java.util.HashMap in the Figure 1 taxonomy: parallel lookups are safe,
/// any concurrent write is unsafe (the synthesizer must serialize writes
/// with a lock placement). Scan order is unspecified (hash order), which
/// matters for the planner's lock-sort elision analysis (§5.2).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_CONTAINERS_HASHMAP_H
#define CRS_CONTAINERS_HASHMAP_H

#include "support/Compiler.h"

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace crs {

/// Separate-chaining hash map. \p HashFn must return uint64_t and be
/// deterministic across runs.
template <typename K, typename V, typename HashFn> class HashMap {
  struct Node {
    K Key;
    V Val;
    Node *Next;
  };

  std::vector<Node *> Buckets;
  size_t NumEntries = 0;
  HashFn Hasher;

  size_t bucketFor(const K &Key) const {
    return Hasher(Key) & (Buckets.size() - 1);
  }

  void maybeGrow() {
    if (NumEntries < Buckets.size())
      return;
    std::vector<Node *> Old = std::move(Buckets);
    Buckets.assign(Old.size() * 2, nullptr);
    for (Node *Head : Old) {
      while (Head) {
        Node *Next = Head->Next;
        size_t B = bucketFor(Head->Key);
        Head->Next = Buckets[B];
        Buckets[B] = Head;
        Head = Next;
      }
    }
  }

public:
  explicit HashMap(size_t InitialBuckets = 16)
      : Buckets(InitialBuckets, nullptr) {
    assert((InitialBuckets & (InitialBuckets - 1)) == 0 &&
           "bucket count must be a power of two");
  }

  ~HashMap() { clear(); }

  HashMap(const HashMap &) = delete;
  HashMap &operator=(const HashMap &) = delete;

  /// Returns true and sets \p Out if \p Key is present.
  bool lookup(const K &Key, V &Out) const {
    for (Node *N = Buckets[bucketFor(Key)]; N; N = N->Next)
      if (N->Key == Key) {
        Out = N->Val;
        return true;
      }
    return false;
  }

  bool contains(const K &Key) const {
    V Ignored;
    return lookup(Key, Ignored);
  }

  /// Inserts or replaces; returns true if the key was newly inserted.
  bool insertOrAssign(const K &Key, V Val) {
    size_t B = bucketFor(Key);
    for (Node *N = Buckets[B]; N; N = N->Next)
      if (N->Key == Key) {
        N->Val = std::move(Val);
        return false;
      }
    maybeGrow();
    B = bucketFor(Key);
    Buckets[B] = new Node{Key, std::move(Val), Buckets[B]};
    ++NumEntries;
    return true;
  }

  /// Removes \p Key; returns true if it was present.
  bool erase(const K &Key) {
    Node **Link = &Buckets[bucketFor(Key)];
    while (*Link) {
      if ((*Link)->Key == Key) {
        Node *Dead = *Link;
        *Link = Dead->Next;
        delete Dead;
        --NumEntries;
        return true;
      }
      Link = &(*Link)->Next;
    }
    return false;
  }

  /// Visits every entry in unspecified order; the visitor returns false
  /// to stop early.
  template <typename Fn> void scan(Fn Visit) const {
    for (Node *Head : Buckets)
      for (Node *N = Head; N; N = N->Next)
        if (!Visit(static_cast<const K &>(N->Key),
                   static_cast<const V &>(N->Val)))
          return;
  }

  size_t size() const { return NumEntries; }
  bool empty() const { return NumEntries == 0; }

  void clear() {
    for (Node *&Head : Buckets) {
      while (Head) {
        Node *Next = Head->Next;
        delete Head;
        Head = Next;
      }
    }
    NumEntries = 0;
  }
};

} // namespace crs

#endif // CRS_CONTAINERS_HASHMAP_H
