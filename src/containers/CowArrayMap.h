//===- containers/CowArrayMap.h - Copy-on-write array map -----*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch copy-on-write associative array — the analogue of
/// java.util.concurrent.CopyOnWriteArrayList in the Figure 1 taxonomy:
/// every operation pair is safe, and — uniquely among the concurrent
/// containers — iteration is *snapshot* (fully linearizable): a scan runs
/// over an immutable array published at a single instant. Writes copy the
/// whole array, so the container suits read-mostly edges.
///
/// The snapshot array is kept sorted, so scans are in key order and
/// lookups are binary searches.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_CONTAINERS_COWARRAYMAP_H
#define CRS_CONTAINERS_COWARRAYMAP_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace crs {

/// Copy-on-write sorted array map.
template <typename K, typename V, typename LessFn> class CowArrayMap {
  using Snapshot = std::vector<std::pair<K, V>>;

  // Writers serialize on Mutex; readers atomically load the current
  // snapshot and work on it lock-free.
  mutable std::mutex WriteMutex;
  std::shared_ptr<const Snapshot> Current{std::make_shared<Snapshot>()};
  LessFn Less;

  std::shared_ptr<const Snapshot> load() const {
    return std::atomic_load_explicit(&Current, std::memory_order_acquire);
  }

  void publish(std::shared_ptr<const Snapshot> S) {
    std::atomic_store_explicit(&Current, std::move(S),
                               std::memory_order_release);
  }

  typename Snapshot::const_iterator find(const Snapshot &S,
                                         const K &Key) const {
    auto It = std::lower_bound(
        S.begin(), S.end(), Key,
        [this](const std::pair<K, V> &E, const K &Target) {
          return Less(E.first, Target);
        });
    if (It != S.end() && !Less(Key, It->first))
      return It;
    return S.end();
  }

public:
  CowArrayMap() = default;
  CowArrayMap(const CowArrayMap &) = delete;
  CowArrayMap &operator=(const CowArrayMap &) = delete;

  /// Linearizable lookup (binary search over the current snapshot).
  bool lookup(const K &Key, V &Out) const {
    auto S = load();
    auto It = find(*S, Key);
    if (It == S->end())
      return false;
    Out = It->second;
    return true;
  }

  bool contains(const K &Key) const {
    V Ignored;
    return lookup(Key, Ignored);
  }

  /// Insert-or-replace by copying the array; returns true if newly
  /// inserted.
  bool insertOrAssign(const K &Key, V Val) {
    std::lock_guard<std::mutex> Guard(WriteMutex);
    auto Old = load();
    auto New = std::make_shared<Snapshot>(*Old);
    auto It = std::lower_bound(
        New->begin(), New->end(), Key,
        [this](const std::pair<K, V> &E, const K &Target) {
          return Less(E.first, Target);
        });
    bool Inserted;
    if (It != New->end() && !Less(Key, It->first)) {
      It->second = std::move(Val);
      Inserted = false;
    } else {
      New->insert(It, {Key, std::move(Val)});
      Inserted = true;
    }
    publish(std::move(New));
    return Inserted;
  }

  /// Removal by copying the array; returns true if the key was present.
  bool erase(const K &Key) {
    std::lock_guard<std::mutex> Guard(WriteMutex);
    auto Old = load();
    auto It = find(*Old, Key);
    if (It == Old->end())
      return false;
    auto New = std::make_shared<Snapshot>();
    New->reserve(Old->size() - 1);
    for (auto I = Old->begin(); I != Old->end(); ++I)
      if (I != It)
        New->push_back(*I);
    publish(std::move(New));
    return true;
  }

  /// Snapshot scan in sorted key order: iterates an immutable snapshot,
  /// fully linearizable with respect to writes.
  template <typename Fn> void scan(Fn Visit) const {
    auto S = load();
    for (const auto &[Key, Val] : *S)
      if (!Visit(Key, Val))
        return;
  }

  size_t size() const { return load()->size(); }
  bool empty() const { return size() == 0; }
};

} // namespace crs

#endif // CRS_CONTAINERS_COWARRAYMAP_H
