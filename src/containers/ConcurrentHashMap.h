//===- containers/ConcurrentHashMap.h - Concurrent hash map ----*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch bucket-locked concurrent hash map — the analogue of
/// java.util.concurrent.ConcurrentHashMap in the Figure 1 taxonomy:
/// lookups and writes are individually linearizable with no external
/// synchronization (each bucket is guarded by its own reader-writer
/// lock, and an operation's linearization point is inside its bucket
/// critical section); iteration is safe but only *weakly consistent* —
/// it walks buckets one at a time, so it may miss updates that happen
/// in buckets it has already passed.
///
/// The bucket count is fixed at construction (a power of two). The JDK
/// container resizes; for decomposition synthesis only the taxonomy
/// properties matter, and a fixed table keeps the concurrency argument
/// trivially sound. This deviation is recorded in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_CONTAINERS_CONCURRENTHASHMAP_H
#define CRS_CONTAINERS_CONCURRENTHASHMAP_H

#include "support/Compiler.h"

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

namespace crs {

/// Bucket-locked concurrent hash map. All operations are safe to call
/// from any number of threads concurrently.
template <typename K, typename V, typename HashFn> class ConcurrentHashMap {
  struct Node {
    K Key;
    V Val;
    Node *Next;
  };

  struct alignas(64) Bucket {
    mutable std::shared_mutex Mutex;
    Node *Head = nullptr;
  };

  std::vector<std::unique_ptr<Bucket[]>> Storage;
  Bucket *Buckets;
  size_t NumBuckets;
  std::atomic<size_t> NumEntries{0};
  HashFn Hasher;

  Bucket &bucketFor(const K &Key) const {
    return Buckets[Hasher(Key) & (NumBuckets - 1)];
  }

public:
  explicit ConcurrentHashMap(size_t BucketCount = 256)
      : NumBuckets(BucketCount) {
    assert((BucketCount & (BucketCount - 1)) == 0 &&
           "bucket count must be a power of two");
    Storage.push_back(std::make_unique<Bucket[]>(NumBuckets));
    Buckets = Storage.back().get();
  }

  ~ConcurrentHashMap() { clear(); }

  ConcurrentHashMap(const ConcurrentHashMap &) = delete;
  ConcurrentHashMap &operator=(const ConcurrentHashMap &) = delete;

  /// Linearizable lookup: returns true and sets \p Out if present.
  bool lookup(const K &Key, V &Out) const {
    Bucket &B = bucketFor(Key);
    std::shared_lock<std::shared_mutex> Guard(B.Mutex);
    for (Node *N = B.Head; N; N = N->Next)
      if (N->Key == Key) {
        Out = N->Val;
        return true;
      }
    return false;
  }

  bool contains(const K &Key) const {
    V Ignored;
    return lookup(Key, Ignored);
  }

  /// Linearizable insert-or-replace; returns true if newly inserted.
  bool insertOrAssign(const K &Key, V Val) {
    Bucket &B = bucketFor(Key);
    std::unique_lock<std::shared_mutex> Guard(B.Mutex);
    for (Node *N = B.Head; N; N = N->Next)
      if (N->Key == Key) {
        N->Val = std::move(Val);
        return false;
      }
    B.Head = new Node{Key, std::move(Val), B.Head};
    NumEntries.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Linearizable conditional insert (put-if-absent): inserts only if the
  /// key is absent; returns true on insert.
  bool insertIfAbsent(const K &Key, V Val) {
    Bucket &B = bucketFor(Key);
    std::unique_lock<std::shared_mutex> Guard(B.Mutex);
    for (Node *N = B.Head; N; N = N->Next)
      if (N->Key == Key)
        return false;
    B.Head = new Node{Key, std::move(Val), B.Head};
    NumEntries.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Linearizable removal; returns true if the key was present.
  bool erase(const K &Key) {
    Bucket &B = bucketFor(Key);
    std::unique_lock<std::shared_mutex> Guard(B.Mutex);
    Node **Link = &B.Head;
    while (*Link) {
      if ((*Link)->Key == Key) {
        Node *Dead = *Link;
        *Link = Dead->Next;
        delete Dead;
        NumEntries.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      Link = &(*Link)->Next;
    }
    return false;
  }

  /// Weakly consistent scan: safe in parallel with writes, but entries
  /// inserted or removed during the scan may or may not be observed. The
  /// visitor must not call back into this map (bucket lock is held).
  template <typename Fn> void scan(Fn Visit) const {
    for (size_t I = 0; I < NumBuckets; ++I) {
      Bucket &B = Buckets[I];
      std::shared_lock<std::shared_mutex> Guard(B.Mutex);
      for (Node *N = B.Head; N; N = N->Next)
        if (!Visit(static_cast<const K &>(N->Key),
                   static_cast<const V &>(N->Val)))
          return;
    }
  }

  size_t size() const { return NumEntries.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  /// Not thread-safe (destruction-time helper).
  void clear() {
    for (size_t I = 0; I < NumBuckets; ++I) {
      Node *N = Buckets[I].Head;
      while (N) {
        Node *Next = N->Next;
        delete N;
        N = Next;
      }
      Buckets[I].Head = nullptr;
    }
    NumEntries.store(0, std::memory_order_relaxed);
  }
};

} // namespace crs

#endif // CRS_CONTAINERS_CONCURRENTHASHMAP_H
