//===- containers/SingletonCell.h - Single-entry container ----*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The container behind the paper's dotted edges (Figures 2 and 3): when
/// the source node's key columns functionally determine an edge's columns,
/// the edge's "container" holds at most one entry — a singleton tuple. It
/// is non-concurrent (like a plain field); the lock placement must
/// serialize access.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_CONTAINERS_SINGLETONCELL_H
#define CRS_CONTAINERS_SINGLETONCELL_H

#include "support/Compiler.h"

#include <optional>
#include <utility>

namespace crs {

/// A map holding at most one (key, value) entry.
template <typename K, typename V> class SingletonCell {
  std::optional<std::pair<K, V>> Entry;

public:
  SingletonCell() = default;
  SingletonCell(const SingletonCell &) = delete;
  SingletonCell &operator=(const SingletonCell &) = delete;

  bool lookup(const K &Key, V &Out) const {
    if (!Entry || !(Entry->first == Key))
      return false;
    Out = Entry->second;
    return true;
  }

  bool contains(const K &Key) const {
    return Entry && Entry->first == Key;
  }

  /// Inserts or replaces. Writing a *different* key while one is present
  /// violates the functional dependency that justified the singleton edge
  /// and is rejected by assertion.
  bool insertOrAssign(const K &Key, V Val) {
    if (Entry) {
      assert(Entry->first == Key &&
             "singleton cell already holds a different key (FD violation)");
      Entry->second = std::move(Val);
      return false;
    }
    Entry.emplace(Key, std::move(Val));
    return true;
  }

  bool erase(const K &Key) {
    if (!Entry || !(Entry->first == Key))
      return false;
    Entry.reset();
    return true;
  }

  template <typename Fn> void scan(Fn Visit) const {
    if (Entry)
      Visit(static_cast<const K &>(Entry->first),
            static_cast<const V &>(Entry->second));
  }

  size_t size() const { return Entry ? 1 : 0; }
  bool empty() const { return !Entry; }
};

} // namespace crs

#endif // CRS_CONTAINERS_SINGLETONCELL_H
