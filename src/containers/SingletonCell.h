//===- containers/SingletonCell.h - Single-entry container ----*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The container behind the paper's dotted edges (Figures 2 and 3): when
/// the source node's key columns functionally determine an edge's columns,
/// the edge's "container" holds at most one entry — a singleton tuple.
///
/// The cell is a single-writer/multi-reader atomic: the entry lives
/// behind one atomic pointer, writes publish a freshly built entry with
/// a seq_cst store, and displaced entries are retired through the
/// global epoch domain rather than freed (sync/Epoch.h) — so unlocked
/// readers inside an epoch guard (the wait-free read fast path, and
/// every locked operation too) can race a writer without tearing and
/// without use-after-free. Lookup and scan are therefore linearizable
/// against a concurrent write, like the concurrent maps' — what stays
/// weak is write/write: racing writers lose updates, so mutations must
/// still be serialized externally (the synthesized plans' exclusive
/// locks do exactly that).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_CONTAINERS_SINGLETONCELL_H
#define CRS_CONTAINERS_SINGLETONCELL_H

#include "support/Compiler.h"
#include "sync/Epoch.h"

#include <atomic>
#include <cassert>
#include <utility>

namespace crs {

/// A map holding at most one (key, value) entry.
template <typename K, typename V> class SingletonCell {
  struct Entry {
    K Key;
    V Val;
  };
  std::atomic<Entry *> E{nullptr};

public:
  SingletonCell() = default;
  SingletonCell(const SingletonCell &) = delete;
  SingletonCell &operator=(const SingletonCell &) = delete;

  ~SingletonCell() {
    // Destruction implies quiescence; anything already retired is owned
    // by the epoch domain.
    delete E.load(std::memory_order_relaxed);
  }

  bool lookup(const K &Key, V &Out) const {
    const Entry *P = E.load(std::memory_order_acquire);
    if (!P || !(P->Key == Key))
      return false;
    Out = P->Val;
    return true;
  }

  bool contains(const K &Key) const {
    const Entry *P = E.load(std::memory_order_acquire);
    return P && P->Key == Key;
  }

  /// Inserts or replaces. Writing a *different* key while one is present
  /// violates the functional dependency that justified the singleton edge
  /// and is rejected by assertion. Writers must be externally serialized
  /// (write/write is the one unserialized pair the cell does not handle).
  bool insertOrAssign(const K &Key, V Val) {
    Entry *Old = E.load(std::memory_order_relaxed);
    // Build fully, then publish: a concurrent reader sees the old entry,
    // the new entry, or nothing — never a half-written one. seq_cst is
    // the epoch layer's unpublish/publish contract (sync/Epoch.h).
    E.store(new Entry{Key, std::move(Val)}, std::memory_order_seq_cst);
    if (Old) {
      assert(Old->Key == Key &&
             "singleton cell already holds a different key (FD violation)");
      EpochDomain::global().retireObject(Old);
      return false;
    }
    return true;
  }

  bool erase(const K &Key) {
    Entry *Old = E.load(std::memory_order_relaxed);
    if (!Old || !(Old->Key == Key))
      return false;
    E.store(nullptr, std::memory_order_seq_cst); // unpublish, then retire
    EpochDomain::global().retireObject(Old);
    return true;
  }

  template <typename Fn> void scan(Fn Visit) const {
    if (const Entry *P = E.load(std::memory_order_acquire))
      Visit(static_cast<const K &>(P->Key), static_cast<const V &>(P->Val));
  }

  size_t size() const {
    return E.load(std::memory_order_acquire) ? 1 : 0;
  }
  bool empty() const { return !E.load(std::memory_order_acquire); }
};

} // namespace crs

#endif // CRS_CONTAINERS_SINGLETONCELL_H
