//===- containers/ConcurrentSkipListMap.h - Lazy skip list -----*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch concurrent ordered map — the analogue of
/// java.util.concurrent.ConcurrentSkipListMap in the Figure 1 taxonomy.
/// The algorithm is the lazy lock-based skip list of Herlihy, Lev,
/// Luchangco and Shavit, "A provably correct scalable concurrent skip
/// list" (OPODIS 2006) — reference [14] of the paper, the same algorithm
/// family the paper's benchmark methodology comes from:
///
///  * nodes carry a per-node lock, a `Marked` flag (logical deletion),
///    and a `FullyLinked` flag (insertion visibility);
///  * traversals run without locks; inserts lock the predecessors at
///    every level and validate; removes mark the victim first (the
///    linearization point), then unlink;
///  * lookups and writes are linearizable; iteration over level 0 is
///    safe but weakly consistent, in sorted key order.
///
/// Memory reclamation: the JVM original relies on garbage collection.
/// Here, unlinked nodes are *retired* to a deferred free list and
/// reclaimed when the map is destroyed, so racing traversals never touch
/// freed memory (documented substitution in DESIGN.md). Retired nodes
/// drop their values immediately (under the node lock), so held
/// resources are released promptly.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_CONTAINERS_CONCURRENTSKIPLISTMAP_H
#define CRS_CONTAINERS_CONCURRENTSKIPLISTMAP_H

#include "support/Compiler.h"

#include <atomic>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace crs {

/// Lazy lock-based concurrent skip list map.
template <typename K, typename V, typename LessFn>
class ConcurrentSkipListMap {
  static constexpr int MaxLevel = 16; // levels 0..MaxLevel

  struct Node {
    K Key;
    V Val;
    std::mutex Lock;
    std::atomic<bool> Marked{false};
    std::atomic<bool> FullyLinked{false};
    int TopLevel;
    std::atomic<Node *> Nexts[MaxLevel + 1];

    Node(const K &Key, V Val, int TopLevel)
        : Key(Key), Val(std::move(Val)), TopLevel(TopLevel) {
      for (auto &N : Nexts)
        N.store(nullptr, std::memory_order_relaxed);
    }
    // Sentinel constructor (head/tail carry no key/value).
    explicit Node(int TopLevel) : Key(), Val(), TopLevel(TopLevel) {
      for (auto &N : Nexts)
        N.store(nullptr, std::memory_order_relaxed);
    }
  };

  Node *Head; // -inf sentinel
  Node *Tail; // +inf sentinel
  std::atomic<size_t> NumEntries{0};
  LessFn Less;

  // Deferred reclamation of unlinked nodes (no GC in C++).
  std::mutex RetiredLock;
  std::vector<Node *> Retired;

  bool nodeLess(const Node *N, const K &Key) const {
    if (N == Head)
      return true;
    if (N == Tail)
      return false;
    return Less(N->Key, Key);
  }

  bool keyEquals(const Node *N, const K &Key) const {
    if (N == Head || N == Tail)
      return false;
    return !Less(N->Key, Key) && !Less(Key, N->Key);
  }

  /// Finds predecessors and successors of \p Key at every level. Returns
  /// the highest level at which a node with the key was found, or -1.
  int findNode(const K &Key, Node **Preds, Node **Succs) const {
    int Found = -1;
    Node *Pred = Head;
    for (int Level = MaxLevel; Level >= 0; --Level) {
      Node *Curr = Pred->Nexts[Level].load(std::memory_order_acquire);
      while (nodeLess(Curr, Key) && Curr != Tail) {
        Pred = Curr;
        Curr = Pred->Nexts[Level].load(std::memory_order_acquire);
      }
      if (Found == -1 && keyEquals(Curr, Key))
        Found = Level;
      Preds[Level] = Pred;
      Succs[Level] = Curr;
    }
    return Found;
  }

  static int randomLevel() {
    // Thread-local xorshift; geometric distribution with p = 1/2.
    thread_local uint64_t State = 0x9e3779b97f4a7c15ULL ^
                                  reinterpret_cast<uintptr_t>(&State);
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    int Level = __builtin_ctzll(State | (1ULL << MaxLevel));
    return Level > MaxLevel ? MaxLevel : Level;
  }

  void retire(Node *N) {
    std::lock_guard<std::mutex> Guard(RetiredLock);
    Retired.push_back(N);
  }

public:
  ConcurrentSkipListMap() {
    Head = new Node(MaxLevel);
    Tail = new Node(MaxLevel);
    for (int L = 0; L <= MaxLevel; ++L)
      Head->Nexts[L].store(Tail, std::memory_order_relaxed);
    Head->FullyLinked.store(true, std::memory_order_relaxed);
    Tail->FullyLinked.store(true, std::memory_order_relaxed);
  }

  ~ConcurrentSkipListMap() {
    Node *N = Head;
    while (N) {
      Node *Next = N->Nexts[0].load(std::memory_order_relaxed);
      delete N;
      N = Next;
    }
    for (Node *R : Retired)
      delete R;
  }

  ConcurrentSkipListMap(const ConcurrentSkipListMap &) = delete;
  ConcurrentSkipListMap &operator=(const ConcurrentSkipListMap &) = delete;

  /// Linearizable lookup.
  bool lookup(const K &Key, V &Out) const {
    Node *Preds[MaxLevel + 1];
    Node *Succs[MaxLevel + 1];
    int Found = findNode(Key, Preds, Succs);
    if (Found == -1)
      return false;
    Node *N = Succs[Found];
    if (!N->FullyLinked.load(std::memory_order_acquire))
      return false;
    // Read the value under the node lock so a concurrent value update or
    // removal cannot tear the read; Marked is rechecked under the lock.
    std::lock_guard<std::mutex> Guard(N->Lock);
    if (N->Marked.load(std::memory_order_relaxed))
      return false;
    Out = N->Val;
    return true;
  }

  bool contains(const K &Key) const {
    V Ignored;
    return lookup(Key, Ignored);
  }

  /// Linearizable insert-or-replace; returns true if newly inserted.
  bool insertOrAssign(const K &Key, V Val) {
    int TopLevel = randomLevel();
    Node *Preds[MaxLevel + 1];
    Node *Succs[MaxLevel + 1];
    while (true) {
      int Found = findNode(Key, Preds, Succs);
      if (Found != -1) {
        Node *Existing = Succs[Found];
        if (!Existing->Marked.load(std::memory_order_acquire)) {
          // Wait for a concurrent inserter to finish linking.
          while (!Existing->FullyLinked.load(std::memory_order_acquire)) {
          }
          std::lock_guard<std::mutex> Guard(Existing->Lock);
          if (Existing->Marked.load(std::memory_order_relaxed))
            continue; // removed under us; retry as a fresh insert
          Existing->Val = std::move(Val);
          return false;
        }
        continue; // marked node still linked: retry
      }

      // Lock all predecessors bottom-up (deduplicated) and validate.
      Node *LastLocked = nullptr;
      bool Valid = true;
      int HighestLocked = -1;
      for (int L = 0; Valid && L <= TopLevel; ++L) {
        Node *Pred = Preds[L];
        if (Pred != LastLocked) {
          Pred->Lock.lock();
          LastLocked = Pred;
          HighestLocked = L;
        }
        Valid = !Pred->Marked.load(std::memory_order_relaxed) &&
                !Succs[L]->Marked.load(std::memory_order_relaxed) &&
                Pred->Nexts[L].load(std::memory_order_relaxed) == Succs[L];
      }
      if (!Valid) {
        Node *Prev = nullptr;
        for (int L = 0; L <= HighestLocked; ++L)
          if (Preds[L] != Prev) {
            Preds[L]->Lock.unlock();
            Prev = Preds[L];
          }
        continue;
      }

      Node *NewNode = new Node(Key, std::move(Val), TopLevel);
      for (int L = 0; L <= TopLevel; ++L)
        NewNode->Nexts[L].store(Succs[L], std::memory_order_relaxed);
      for (int L = 0; L <= TopLevel; ++L)
        Preds[L]->Nexts[L].store(NewNode, std::memory_order_release);
      NewNode->FullyLinked.store(true, std::memory_order_release);
      NumEntries.fetch_add(1, std::memory_order_relaxed);

      Node *Prev = nullptr;
      for (int L = 0; L <= HighestLocked; ++L)
        if (Preds[L] != Prev) {
          Preds[L]->Lock.unlock();
          Prev = Preds[L];
        }
      return true;
    }
  }

  /// Linearizable removal; returns true if the key was present.
  bool erase(const K &Key) {
    Node *Victim = nullptr;
    bool IsMarked = false;
    int TopLevel = -1;
    Node *Preds[MaxLevel + 1];
    Node *Succs[MaxLevel + 1];
    while (true) {
      int Found = findNode(Key, Preds, Succs);
      if (!IsMarked) {
        if (Found == -1)
          return false;
        Victim = Succs[Found];
        if (!Victim->FullyLinked.load(std::memory_order_acquire) ||
            Victim->TopLevel != Found ||
            Victim->Marked.load(std::memory_order_acquire))
          return false;
        TopLevel = Victim->TopLevel;
        Victim->Lock.lock();
        if (Victim->Marked.load(std::memory_order_relaxed)) {
          Victim->Lock.unlock();
          return false;
        }
        Victim->Marked.store(true, std::memory_order_release);
        Victim->Val = V(); // release held resources promptly
        IsMarked = true;
      }

      Node *LastLocked = nullptr;
      bool Valid = true;
      int HighestLocked = -1;
      for (int L = 0; Valid && L <= TopLevel; ++L) {
        Node *Pred = Preds[L];
        if (Pred != LastLocked) {
          Pred->Lock.lock();
          LastLocked = Pred;
          HighestLocked = L;
        }
        Valid = !Pred->Marked.load(std::memory_order_relaxed) &&
                Pred->Nexts[L].load(std::memory_order_relaxed) == Victim;
      }
      if (!Valid) {
        Node *Prev = nullptr;
        for (int L = 0; L <= HighestLocked; ++L)
          if (Preds[L] != Prev) {
            Preds[L]->Lock.unlock();
            Prev = Preds[L];
          }
        continue;
      }

      for (int L = TopLevel; L >= 0; --L)
        Preds[L]->Nexts[L].store(
            Victim->Nexts[L].load(std::memory_order_relaxed),
            std::memory_order_release);
      NumEntries.fetch_sub(1, std::memory_order_relaxed);
      Victim->Lock.unlock();

      Node *Prev = nullptr;
      for (int L = 0; L <= HighestLocked; ++L)
        if (Preds[L] != Prev) {
          Preds[L]->Lock.unlock();
          Prev = Preds[L];
        }
      const_cast<ConcurrentSkipListMap *>(this)->retire(Victim);
      return true;
    }
  }

  /// Weakly consistent sorted scan over level 0: safe in parallel with
  /// writes; entries inserted or removed during the scan may or may not
  /// be observed. Visits in ascending key order.
  template <typename Fn> void scan(Fn Visit) const {
    Node *N = Head->Nexts[0].load(std::memory_order_acquire);
    while (N != Tail) {
      Node *Next = N->Nexts[0].load(std::memory_order_acquire);
      if (N->FullyLinked.load(std::memory_order_acquire) &&
          !N->Marked.load(std::memory_order_acquire)) {
        Node *Mutable = const_cast<Node *>(N);
        std::unique_lock<std::mutex> Guard(Mutable->Lock);
        if (!N->Marked.load(std::memory_order_relaxed)) {
          const K &Key = N->Key;
          const V &Val = N->Val;
          if (!Visit(Key, Val))
            return;
        }
      }
      N = Next;
    }
  }

  size_t size() const { return NumEntries.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }
};

} // namespace crs

#endif // CRS_CONTAINERS_CONCURRENTSKIPLISTMAP_H
