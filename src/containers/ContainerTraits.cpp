//===- containers/ContainerTraits.cpp - Figure 1 taxonomy --------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "containers/ContainerTraits.h"

#include "support/Compiler.h"

using namespace crs;

ContainerTraits crs::containerTraits(ContainerKind Kind) {
  using PS = PairSafety;
  switch (Kind) {
  case ContainerKind::HashMap:
    // Parallel reads are safe (no rebalancing on read); any write races.
    return {PS::Linearizable, PS::Unsafe, PS::Unsafe, PS::Unsafe,
            /*SortedScan=*/false};
  case ContainerKind::TreeMap:
    return {PS::Linearizable, PS::Unsafe, PS::Unsafe, PS::Unsafe,
            /*SortedScan=*/true};
  case ContainerKind::ConcurrentHashMap:
    // Lookup/write linearizable; iteration is safe but only weakly
    // consistent (may miss or duplicate concurrent updates).
    return {PS::Linearizable, PS::Linearizable, PS::Weak, PS::Linearizable,
            /*SortedScan=*/false};
  case ContainerKind::ConcurrentSkipListMap:
    return {PS::Linearizable, PS::Linearizable, PS::Weak, PS::Linearizable,
            /*SortedScan=*/true};
  case ContainerKind::CowArrayMap:
    // Copy-on-write: iteration runs over an immutable snapshot, hence
    // fully linearizable; writes copy the whole array.
    return {PS::Linearizable, PS::Linearizable, PS::Linearizable,
            PS::Linearizable, /*SortedScan=*/true};
  case ContainerKind::SingletonCell:
    // Single-writer/multi-reader atomic cell: the entry publishes and
    // unpublishes through one atomic pointer (retired entries go
    // through the epoch domain), so reads are linearizable against a
    // concurrent write — the property the wait-free read path needs on
    // the dotted edges. Unserialized writers lose updates (weak): the
    // plans' exclusive locks serialize them.
    return {PS::Linearizable, PS::Linearizable, PS::Linearizable, PS::Weak,
            /*SortedScan=*/true};
  }
  crs_unreachable("unknown container kind");
}

const char *crs::containerKindName(ContainerKind Kind) {
  switch (Kind) {
  case ContainerKind::HashMap:
    return "HashMap";
  case ContainerKind::TreeMap:
    return "TreeMap";
  case ContainerKind::ConcurrentHashMap:
    return "ConcurrentHashMap";
  case ContainerKind::ConcurrentSkipListMap:
    return "ConcurrentSkipListMap";
  case ContainerKind::CowArrayMap:
    return "CowArrayMap";
  case ContainerKind::SingletonCell:
    return "SingletonCell";
  }
  crs_unreachable("unknown container kind");
}

const char *crs::pairSafetyName(PairSafety S) {
  switch (S) {
  case PairSafety::Unsafe:
    return "no";
  case PairSafety::Weak:
    return "weak";
  case PairSafety::Linearizable:
    return "yes";
  }
  crs_unreachable("unknown pair safety");
}
