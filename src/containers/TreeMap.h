//===- containers/TreeMap.h - Non-concurrent AVL tree map ------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch AVL-balanced ordered map — the analogue of
/// java.util.TreeMap in the Figure 1 taxonomy: parallel lookups are safe
/// (reads never rebalance, unlike a splay tree — the paper's §3.1 example
/// of a read-unsafe structure), concurrent writes are unsafe. Scans are
/// in-order, i.e. sorted by key: the planner's sort-elision analysis
/// (§5.2) exploits this to skip sorting lock acquisition sets.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_CONTAINERS_TREEMAP_H
#define CRS_CONTAINERS_TREEMAP_H

#include "support/Compiler.h"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace crs {

/// AVL tree map. \p LessFn must induce a strict weak (total) order.
template <typename K, typename V, typename LessFn> class TreeMap {
  struct Node {
    K Key;
    V Val;
    Node *Left = nullptr;
    Node *Right = nullptr;
    int Height = 1;
    Node(const K &Key, V Val) : Key(Key), Val(std::move(Val)) {}
  };

  Node *Root = nullptr;
  size_t NumEntries = 0;
  LessFn Less;

  static int heightOf(Node *N) { return N ? N->Height : 0; }

  static void fix(Node *N) {
    N->Height = 1 + std::max(heightOf(N->Left), heightOf(N->Right));
  }

  static int balanceOf(Node *N) {
    return heightOf(N->Left) - heightOf(N->Right);
  }

  static Node *rotateRight(Node *Y) {
    Node *X = Y->Left;
    Y->Left = X->Right;
    X->Right = Y;
    fix(Y);
    fix(X);
    return X;
  }

  static Node *rotateLeft(Node *X) {
    Node *Y = X->Right;
    X->Right = Y->Left;
    Y->Left = X;
    fix(X);
    fix(Y);
    return Y;
  }

  static Node *rebalance(Node *N) {
    fix(N);
    int Balance = balanceOf(N);
    if (Balance > 1) {
      if (balanceOf(N->Left) < 0)
        N->Left = rotateLeft(N->Left);
      return rotateRight(N);
    }
    if (Balance < -1) {
      if (balanceOf(N->Right) > 0)
        N->Right = rotateRight(N->Right);
      return rotateLeft(N);
    }
    return N;
  }

  Node *insertRec(Node *N, const K &Key, V &Val, bool &Inserted) {
    if (!N) {
      Inserted = true;
      ++NumEntries;
      return new Node(Key, std::move(Val));
    }
    if (Less(Key, N->Key)) {
      N->Left = insertRec(N->Left, Key, Val, Inserted);
    } else if (Less(N->Key, Key)) {
      N->Right = insertRec(N->Right, Key, Val, Inserted);
    } else {
      N->Val = std::move(Val);
      Inserted = false;
      return N;
    }
    return rebalance(N);
  }

  static Node *minNode(Node *N) {
    while (N->Left)
      N = N->Left;
    return N;
  }

  Node *eraseRec(Node *N, const K &Key, bool &Erased) {
    if (!N)
      return nullptr;
    if (Less(Key, N->Key)) {
      N->Left = eraseRec(N->Left, Key, Erased);
    } else if (Less(N->Key, Key)) {
      N->Right = eraseRec(N->Right, Key, Erased);
    } else {
      Erased = true;
      --NumEntries;
      if (!N->Left || !N->Right) {
        Node *Child = N->Left ? N->Left : N->Right;
        delete N;
        return Child;
      }
      // Two children: replace with in-order successor, then remove it.
      Node *Succ = minNode(N->Right);
      N->Key = Succ->Key;
      N->Val = std::move(Succ->Val);
      bool Ignored = false;
      ++NumEntries; // compensate for the recursive decrement
      N->Right = eraseRec(N->Right, Succ->Key, Ignored);
    }
    return rebalance(N);
  }

  template <typename Fn> static bool scanRec(Node *N, Fn &Visit) {
    if (!N)
      return true;
    if (!scanRec(N->Left, Visit))
      return false;
    if (!Visit(static_cast<const K &>(N->Key), static_cast<const V &>(N->Val)))
      return false;
    return scanRec(N->Right, Visit);
  }

  static void destroyRec(Node *N) {
    if (!N)
      return;
    destroyRec(N->Left);
    destroyRec(N->Right);
    delete N;
  }

  static int checkRec(Node *N, bool &Ok) {
    if (!N)
      return 0;
    int L = checkRec(N->Left, Ok);
    int R = checkRec(N->Right, Ok);
    if (std::abs(L - R) > 1 || N->Height != 1 + std::max(L, R))
      Ok = false;
    return 1 + std::max(L, R);
  }

public:
  TreeMap() = default;
  ~TreeMap() { clear(); }
  TreeMap(const TreeMap &) = delete;
  TreeMap &operator=(const TreeMap &) = delete;

  /// Returns true and sets \p Out if \p Key is present.
  bool lookup(const K &Key, V &Out) const {
    Node *N = Root;
    while (N) {
      if (Less(Key, N->Key))
        N = N->Left;
      else if (Less(N->Key, Key))
        N = N->Right;
      else {
        Out = N->Val;
        return true;
      }
    }
    return false;
  }

  bool contains(const K &Key) const {
    V Ignored;
    return lookup(Key, Ignored);
  }

  /// Inserts or replaces; returns true if the key was newly inserted.
  bool insertOrAssign(const K &Key, V Val) {
    bool Inserted = false;
    Root = insertRec(Root, Key, Val, Inserted);
    return Inserted;
  }

  /// Removes \p Key; returns true if it was present.
  bool erase(const K &Key) {
    bool Erased = false;
    Root = eraseRec(Root, Key, Erased);
    return Erased;
  }

  /// In-order (sorted) scan; the visitor returns false to stop early.
  template <typename Fn> void scan(Fn Visit) const {
    scanRec(Root, Visit);
  }

  size_t size() const { return NumEntries; }
  bool empty() const { return NumEntries == 0; }

  void clear() {
    destroyRec(Root);
    Root = nullptr;
    NumEntries = 0;
  }

  /// Validates the AVL invariants (test hook).
  bool checkInvariants() const {
    bool Ok = true;
    checkRec(Root, Ok);
    return Ok;
  }
};

} // namespace crs

#endif // CRS_CONTAINERS_TREEMAP_H
