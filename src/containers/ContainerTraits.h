//===- containers/ContainerTraits.h - Figure 1 taxonomy --------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The taxonomy of concurrent containers (paper §3, Figure 1). Containers
/// implement an associative map interface (lookup / scan / write); each
/// pair of operations is either unsafe to run in parallel, safe but only
/// weakly consistent, or safe and linearizable. Decomposition synthesis
/// consumes exactly these properties: a lock placement that permits
/// concurrent access to a container requires matching safety entries
/// (§4.4, §6.1), and speculative placements additionally require
/// linearizable lookups (§4.5).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_CONTAINERS_CONTAINERTRAITS_H
#define CRS_CONTAINERS_CONTAINERTRAITS_H

#include <cstdint>
#include <string>

namespace crs {

/// The concrete container implementations shipped with this library.
/// They mirror the JDK containers of Figure 1: HashMap and TreeMap are
/// non-concurrent; ConcurrentHashMap and ConcurrentSkipListMap allow
/// concurrent reads and writes with weakly-consistent iteration;
/// CowArrayMap (the CopyOnWriteArrayList analogue) provides snapshot
/// iteration. SingletonCell implements the paper's dotted edges: a
/// container holding at most one entry (a singleton tuple).
enum class ContainerKind : uint8_t {
  HashMap,
  TreeMap,
  ConcurrentHashMap,
  ConcurrentSkipListMap,
  CowArrayMap,
  SingletonCell,
};

/// Safety/consistency classification of one operation pair (Figure 1):
/// executing the pair concurrently from two threads with no external
/// synchronization is unsafe, safe-but-weakly-consistent, or safe and
/// linearizable.
enum class PairSafety : uint8_t { Unsafe, Weak, Linearizable };

/// Concurrency-safety and consistency properties of one container kind.
struct ContainerTraits {
  PairSafety LookupLookup; ///< L/L — also covers L/S and S/S (read pairs)
  PairSafety LookupWrite;  ///< L/W
  PairSafety ScanWrite;    ///< S/W
  PairSafety WriteWrite;   ///< W/W
  bool SortedScan;         ///< scan returns entries in key order
  /// Whether the container may be accessed by multiple threads at all
  /// without external locks (i.e. every pair is at least Weak).
  bool concurrencySafe() const {
    return LookupLookup != PairSafety::Unsafe &&
           LookupWrite != PairSafety::Unsafe &&
           ScanWrite != PairSafety::Unsafe &&
           WriteWrite != PairSafety::Unsafe;
  }
  /// Whether unlocked lookups are linearizable — the precondition for
  /// speculative lock placements (§4.5).
  bool linearizableLookup() const {
    return LookupLookup == PairSafety::Linearizable &&
           LookupWrite == PairSafety::Linearizable;
  }
};

/// Traits for each kind — the library's Figure 1.
ContainerTraits containerTraits(ContainerKind Kind);

/// Display name, matching the paper's container names.
const char *containerKindName(ContainerKind Kind);

/// "yes" / "weak" / "no" rendering of one taxonomy cell.
const char *pairSafetyName(PairSafety S);

/// All kinds, for enumeration by the autotuner and the taxonomy table.
inline constexpr ContainerKind AllContainerKinds[] = {
    ContainerKind::HashMap,
    ContainerKind::TreeMap,
    ContainerKind::ConcurrentHashMap,
    ContainerKind::ConcurrentSkipListMap,
    ContainerKind::CowArrayMap,
    ContainerKind::SingletonCell,
};

} // namespace crs

#endif // CRS_CONTAINERS_CONTAINERTRAITS_H
