//===- autotune/OnlineTuner.h - Statistics-driven online autotuning -*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's autotuner (§6) measures candidate representations
/// offline and rebuilds the structure with the winner. The online
/// tuner closes the loop on a *live* relation instead: each tick()
/// samples the relation's measured behavior — operation mix, per-edge
/// fanouts, and lock contention — scores every candidate variant with
/// the planner's cost model over the signatures actually being served,
/// and, once a candidate's predicted win clears a hysteresis threshold
/// for enough consecutive ticks, adopts it through the live migration
/// engine (ConcurrentRelation::migrateTo) without stopping traffic.
///
/// Scoring is the plan cost model plus one concurrency term the static
/// model cannot see: predicted per-op cost is divided by the effective
/// parallelism min(demand, supply), where demand grows from 1 toward
/// the thread count with the measured contention ratio, and supply is
/// the candidate's root-level parallelism (stripes, or instance fanout
/// for placements that host nothing at the root). This reproduces the
/// §6.2 crossover qualitatively: with one uncontended thread the cheap
/// coarse plans win; under contended multi-threaded load the striped
/// and speculative placements' extra supply pays for itself.
///
/// tick() is operator-paced (call it every few seconds, or between
/// workload phases): each tick briefly quiesces the relation for the
/// statistics sample and compiles candidate plans — deliberate costs
/// that do not belong on any per-operation path.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_AUTOTUNE_ONLINETUNER_H
#define CRS_AUTOTUNE_ONLINETUNER_H

#include "autotune/Autotuner.h"

#include <map>
#include <utility>

namespace crs {

class ShardedRelation;

/// Tuning policy for an OnlineTuner.
struct OnlineTunerConfig {
  /// The candidate menu. Keep it modest (every tick compiles plans for
  /// each candidate); the Figure-5 style variants are a good default.
  std::vector<GraphVariant> Candidates;
  /// Worker threads the relation serves: the ceiling of the
  /// contention-scaled parallelism demand.
  unsigned Threads = 1;
  /// A candidate must be predicted at least this much better before it
  /// counts: predictedCost(current) / predictedCost(candidate) must
  /// exceed the ratio. Guards against migrating on noise.
  double HysteresisRatio = 1.3;
  /// ... and must keep winning for this many consecutive ticks.
  unsigned ConfirmTicks = 2;
  /// Passed through to migrateTo when a migration triggers (phase
  /// hooks for progress reporting; may be null).
  MigrationObserver *Observer = nullptr;
  /// Optional observability hookup (src/obs). When set, each tick (a)
  /// emits TunerDecision/TunerMigrated events to the registry's Tuner
  /// ring, and (b) reads the relation's measured per-signature
  /// "relation.op_latency" histograms back as a tuning input alongside
  /// the cost model: ticks diff each signature's (count, sum) pair, and
  /// a regression of the measured mean beyond LatencyRegressRatio
  /// collapses the hysteresis ratio toward 1 for that tick — prediction
  /// says when a candidate looks better; measurement says how urgently
  /// to believe it.
  obs::MetricsRegistry *Metrics = nullptr;
  /// The `relation` label value to match histograms against (the name
  /// passed to attachMetrics). Empty matches every relation in the
  /// registry — fine when the registry serves one relation.
  std::string MetricsLabel;
  /// Measured-mean regression factor between ticks that triggers the
  /// hysteresis collapse above.
  double LatencyRegressRatio = 1.25;
};

/// What one tick() observed and decided.
struct TuneTick {
  bool Scored = false;        ///< false: no signatures compiled yet
  double CurrentCost = 0;     ///< predicted per-op cost of the live rep
  std::string BestName;       ///< best-scoring candidate this tick
  double BestCost = 0;
  unsigned Confirmations = 0; ///< consecutive ticks the winner held
  bool Migrated = false;
  MigrationResult Migration;  ///< set when Migrated
  /// Measured mean op latency (nanos) over the tick interval, from the
  /// registry's relation.op_latency histograms. 0 when no registry is
  /// configured or no operations were sampled since the last tick.
  double MeasuredMeanNanos = 0;
  /// True when the measured mean regressed past LatencyRegressRatio and
  /// this tick ran with collapsed hysteresis.
  bool LatencyRegressed = false;
};

/// Drives one relation's representation from its live statistics.
class OnlineTuner {
public:
  OnlineTuner(ConcurrentRelation &R, OnlineTunerConfig C);

  /// Tunes a sharded relation as one unit: statistics, operation mix,
  /// and served signatures aggregate across the shards, and a
  /// triggered migration adopts the winner shard-at-a-time
  /// (ShardedRelation::migrateTo) — at any instant only 1/N of the
  /// keyspace is paying dual-write costs.
  OnlineTuner(ShardedRelation &R, OnlineTunerConfig C);

  /// Sample, score, and — when the hysteresis policy is satisfied —
  /// migrate. Blocking: a triggered migration runs on this thread.
  /// Must not be called from inside an operation (it samples through
  /// the operation gate), nor concurrently with itself.
  TuneTick tick();

  /// The cost-model score (predicted per-operation cost, lower is
  /// better) of serving \p Sigs with mix \p Mix on representation
  /// \p Config. \p Measured carries the live-measured scalar fanouts
  /// (EdgeFanout must be empty — per-edge measurements do not transfer
  /// across decompositions); \p ContentionRatio is measured
  /// contentions/acquisitions on the live relation; \p Threads the
  /// serving thread count. Exposed for tests and diagnostics.
  static double scoreRepresentation(const RepresentationConfig &Config,
                                    const std::vector<PlanCache::Signature> &Sigs,
                                    const OperationCounts &Mix,
                                    const CostParams &Measured,
                                    double ContentionRatio, unsigned Threads);

private:
  /// The tuned relation's live readings, independent of whether it is
  /// one ConcurrentRelation or a sharded fleet of them.
  OperationCounts liveCounts() const;
  std::vector<PlanCache::Signature> liveSignatures() const;
  RelationStatistics liveSample() const;
  const RepresentationConfig &liveConfig() const;
  /// Whether every serving representation is already \p Name — for a
  /// sharded fleet, every shard (a canary-migrated shard alone must not
  /// stall the rollout of the rest).
  bool servesEverywhere(const std::string &Name) const;
  MigrationResult migrate(RepresentationConfig Target);

  ConcurrentRelation *Rel;          ///< null when tuning a sharded relation
  ShardedRelation *Sharded = nullptr; ///< null when tuning a single relation
  OnlineTunerConfig Cfg;
  OperationCounts LastCounts;     ///< mix deltas between ticks
  uint64_t LastAcquisitions = 0;  ///< contention deltas between ticks
  uint64_t LastContentions = 0;
  std::string StreakBest;         ///< winner being confirmed
  unsigned Streak = 0;
  /// Last observed (count, sum-nanos) per relation.op_latency signature
  /// label — latency deltas between ticks (histograms are cumulative).
  std::map<std::string, std::pair<uint64_t, uint64_t>> LastSigLat;
  double LastMeanNanos = 0;       ///< previous tick's measured mean
};

} // namespace crs

#endif // CRS_AUTOTUNE_ONLINETUNER_H
