//===- autotune/Autotuner.cpp - Representation autotuning ---------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"

#include "lockplace/PlacementSchemes.h"
#include "support/Compiler.h"

#include <algorithm>

using namespace crs;

const char *crs::placementSchemeName(PlacementSchemeKind K) {
  switch (K) {
  case PlacementSchemeKind::Coarse:
    return "coarse";
  case PlacementSchemeKind::Fine:
    return "fine";
  case PlacementSchemeKind::Striped:
    return "striped";
  case PlacementSchemeKind::Speculative:
    return "speculative";
  }
  crs_unreachable("unknown placement scheme");
}

std::string GraphVariant::str() const {
  std::string Out = graphShapeName(Shape);
  Out += "/";
  Out += placementSchemeName(Scheme);
  if (Scheme == PlacementSchemeKind::Striped ||
      Scheme == PlacementSchemeKind::Speculative)
    Out += "(" + std::to_string(Stripes) + ")";
  Out += "/";
  Out += containerKindName(Level1);
  Out += "/";
  Out += containerKindName(Level2);
  return Out;
}

RepresentationConfig crs::makeGraphRepresentation(const GraphVariant &V) {
  auto Spec = std::make_shared<RelationSpec>(makeGraphSpec());
  GraphContainers Containers{V.Level1, V.Level2};
  auto Decomp = std::make_shared<Decomposition>(
      makeGraphDecomposition(*Spec, V.Shape, Containers));

  std::shared_ptr<LockPlacement> Placement;
  switch (V.Scheme) {
  case PlacementSchemeKind::Coarse:
    Placement = std::make_shared<LockPlacement>(makeCoarsePlacement(*Decomp));
    break;
  case PlacementSchemeKind::Fine:
    Placement = std::make_shared<LockPlacement>(makeFinePlacement(*Decomp));
    break;
  case PlacementSchemeKind::Striped:
    Placement = std::make_shared<LockPlacement>(
        makeStripedPlacement(*Decomp, V.Stripes));
    break;
  case PlacementSchemeKind::Speculative:
    // ψ4 needs linearizable unlocked lookups on the speculated edges.
    if (!containerTraits(V.Level1).linearizableLookup() ||
        !containerTraits(V.Level1).concurrencySafe())
      return {};
    Placement = std::make_shared<LockPlacement>(
        makeSpeculativePlacement(*Decomp, V.Stripes));
    break;
  }

  if (!Placement->validate().ok() ||
      !Placement->validateContainerSafety().ok())
    return {};

  RepresentationConfig Config;
  Config.Spec = std::move(Spec);
  Config.Decomp = std::move(Decomp);
  Config.Placement = std::move(Placement);
  Config.Name = V.str();
  return Config;
}

std::vector<GraphVariant>
crs::enumerateGraphVariants(uint32_t StripeFactor) {
  // The §6.2 option menu: containers from {ConcurrentHashMap,
  // ConcurrentSkipListMap, HashMap, TreeMap}; striping factor 1 or
  // StripeFactor; the three structures; the four schemes.
  const ContainerKind Menu[] = {
      ContainerKind::ConcurrentHashMap, ContainerKind::ConcurrentSkipListMap,
      ContainerKind::HashMap, ContainerKind::TreeMap};
  const GraphShape Shapes[] = {GraphShape::Stick, GraphShape::Split,
                               GraphShape::Diamond};
  const PlacementSchemeKind Schemes[] = {
      PlacementSchemeKind::Coarse, PlacementSchemeKind::Fine,
      PlacementSchemeKind::Striped, PlacementSchemeKind::Speculative};

  std::vector<GraphVariant> Out;
  for (GraphShape Shape : Shapes)
    for (PlacementSchemeKind Scheme : Schemes)
      for (uint32_t Stripes :
           {1u, StripeFactor != 1 ? StripeFactor : 2u})
        for (ContainerKind L1 : Menu)
          for (ContainerKind L2 : Menu) {
            bool UsesStripes = Scheme == PlacementSchemeKind::Striped ||
                               Scheme == PlacementSchemeKind::Speculative;
            if (!UsesStripes && Stripes != 1)
              continue; // striping factor only applies to striped schemes
            GraphVariant V{Shape, Scheme, Stripes, L1, L2};
            if (makeGraphRepresentation(V).Placement)
              Out.push_back(V);
          }
  return Out;
}

/// Split 2 (§6.2): striped locks and concurrent maps on the left side of
/// the split decomposition (ρu, uw, wx); a single coarse lock protecting
/// the right side — realized as a constant stripe at the root (stripe
/// columns ∅), which serializes the right-side containers.
static RepresentationConfig makeSplit2Representation(uint32_t Stripes) {
  auto Spec = std::make_shared<RelationSpec>(makeGraphSpec());
  auto Decomp = std::make_shared<Decomposition>(makeGraphDecomposition(
      *Spec, GraphShape::Split,
      {ContainerKind::ConcurrentHashMap, ContainerKind::HashMap}));
  // Edges (in makeGraphDecomposition order): 0 ρu, 1 ρv, 2 uw, 3 vy,
  // 4 wx, 5 yz. Right side gets non-concurrent containers.
  Decomp->setEdgeKind(1, ContainerKind::HashMap);
  Decomp->setEdgeKind(2, ContainerKind::ConcurrentHashMap);
  Decomp->setEdgeKind(3, ContainerKind::TreeMap);

  auto Placement = std::make_shared<LockPlacement>(*Decomp);
  Placement->setNodeStripes(Decomp->root(), Stripes);
  const ColumnSet Src = Spec->cols({"src"});
  NodeId U = 1, W = 3;
  Placement->setEdge(0, {Decomp->root(), Src, false}); // ρu striped by src
  Placement->setEdge(2, {U, ColumnSet::empty(), false});
  Placement->setEdge(4, {W, ColumnSet::empty(), false});
  // Right side: everything under one constant root stripe.
  for (EdgeId E : {1u, 3u, 5u})
    Placement->setEdge(E, {Decomp->root(), ColumnSet::empty(), false});

  assert(Placement->validate().ok() && "Split 2 placement must validate");
  assert(Placement->validateContainerSafety().ok() &&
         "Split 2 containers must be safe");

  RepresentationConfig Config;
  Config.Spec = std::move(Spec);
  Config.Decomp = std::move(Decomp);
  Config.Placement = std::move(Placement);
  Config.Name = "split/hybrid(" + std::to_string(Stripes) + ")";
  return Config;
}

std::vector<std::pair<std::string, RepresentationConfig>>
crs::figure5Representations() {
  using CK = ContainerKind;
  using PS = PlacementSchemeKind;
  const uint32_t K = 1024; // the paper's striping factor
  auto Mk = [](GraphShape S, PS Scheme, uint32_t Str, CK L1, CK L2) {
    RepresentationConfig C =
        makeGraphRepresentation({S, Scheme, Str, L1, L2});
    assert(C.Placement && "figure-5 variant must be legal");
    return C;
  };
  std::vector<std::pair<std::string, RepresentationConfig>> Out;
  Out.emplace_back("Stick 1", Mk(GraphShape::Stick, PS::Coarse, 1,
                                 CK::HashMap, CK::TreeMap));
  Out.emplace_back("Stick 2", Mk(GraphShape::Stick, PS::Striped, K,
                                 CK::ConcurrentHashMap, CK::HashMap));
  Out.emplace_back("Stick 3", Mk(GraphShape::Stick, PS::Striped, K,
                                 CK::ConcurrentHashMap, CK::TreeMap));
  Out.emplace_back("Stick 4", Mk(GraphShape::Stick, PS::Striped, K,
                                 CK::ConcurrentSkipListMap, CK::HashMap));
  Out.emplace_back("Split 1", Mk(GraphShape::Split, PS::Coarse, 1,
                                 CK::HashMap, CK::TreeMap));
  Out.emplace_back("Split 2", makeSplit2Representation(K));
  Out.emplace_back("Split 3", Mk(GraphShape::Split, PS::Striped, K,
                                 CK::ConcurrentHashMap, CK::HashMap));
  Out.emplace_back("Split 4", Mk(GraphShape::Split, PS::Striped, K,
                                 CK::ConcurrentHashMap, CK::TreeMap));
  Out.emplace_back("Split 5", Mk(GraphShape::Split, PS::Striped, K,
                                 CK::ConcurrentSkipListMap, CK::HashMap));
  Out.emplace_back("Diamond 0", Mk(GraphShape::Diamond, PS::Coarse, 1,
                                   CK::HashMap, CK::TreeMap));
  Out.emplace_back("Diamond 1", Mk(GraphShape::Diamond, PS::Striped, K,
                                   CK::ConcurrentHashMap, CK::HashMap));
  Out.emplace_back("Diamond 2", Mk(GraphShape::Diamond, PS::Striped, K,
                                   CK::ConcurrentSkipListMap, CK::HashMap));
  return Out;
}

std::vector<TuneResult>
crs::autotune(const std::vector<GraphVariant> &Variants, const OpMix &Mix,
              const KeySpace &Keys, const HarnessParams &Params,
              const std::function<void(const TuneResult &)> &OnResult) {
  std::vector<TuneResult> Results;
  for (const GraphVariant &V : Variants) {
    RepresentationConfig Config = makeGraphRepresentation(V);
    if (!Config.Placement)
      continue;
    auto MakeTarget = [&]() -> std::unique_ptr<GraphTarget> {
      // Fresh relation per run: the benchmark starts from empty (§6.2).
      struct OwningTarget : RelationGraphTarget {
        std::unique_ptr<ConcurrentRelation> Rel;
        explicit OwningTarget(std::unique_ptr<ConcurrentRelation> R)
            : RelationGraphTarget(*R), Rel(std::move(R)) {}
      };
      return std::make_unique<OwningTarget>(
          std::make_unique<ConcurrentRelation>(Config));
    };
    TuneResult R;
    R.Variant = V;
    R.Name = V.str();
    R.OpsPerSec = runThroughput(MakeTarget, Mix, Keys, Params).OpsPerSec;
    if (OnResult)
      OnResult(R);
    Results.push_back(std::move(R));
  }
  std::sort(Results.begin(), Results.end(),
            [](const TuneResult &A, const TuneResult &B) {
              return A.OpsPerSec > B.OpsPerSec;
            });
  return Results;
}
