//===- autotune/Autotuner.h - Representation autotuning ---------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The autotuner (paper §6.1): given a concurrent benchmark, discovers
/// the best combination of decomposition structure, container data
/// structures, and lock placement. Enumeration follows the §6.2 option
/// menu: first an adequate decomposition structure, then a well-formed
/// lock placement (coarse / fine / striped with factor ∈ {1, 1024} /
/// speculative), then a container per edge — a non-concurrent container
/// wherever the placement serializes the edge, a concurrency-safe one
/// where concurrent access is possible. Illegal combinations are
/// filtered by the same validation the runtime enforces. The *online*
/// variant that drives a live relation from measured statistics is
/// autotune/OnlineTuner.h.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_AUTOTUNE_AUTOTUNER_H
#define CRS_AUTOTUNE_AUTOTUNER_H

#include "decomp/Shapes.h"
#include "runtime/ConcurrentRelation.h"
#include "workload/Harness.h"

#include <functional>
#include <string>
#include <vector>

namespace crs {

/// The lock-placement schemes the autotuner enumerates.
enum class PlacementSchemeKind : uint8_t {
  Coarse,      ///< ψ1: one root lock
  Fine,        ///< ψ2: per-source locks
  Striped,     ///< ψ3: striped root locks
  Speculative, ///< ψ4: per-entry target locks + striped absence locks
};

const char *placementSchemeName(PlacementSchemeKind K);

/// One candidate representation of the graph relation.
struct GraphVariant {
  GraphShape Shape = GraphShape::Stick;
  PlacementSchemeKind Scheme = PlacementSchemeKind::Coarse;
  uint32_t Stripes = 1; ///< striping factor for Striped/Speculative
  ContainerKind Level1 = ContainerKind::HashMap;
  ContainerKind Level2 = ContainerKind::HashMap;

  std::string str() const;
};

/// Builds the (validated) representation for \p V, or returns an empty
/// config (null pointers) if the combination is illegal — e.g. a
/// non-concurrent container on an edge the placement leaves concurrent.
RepresentationConfig makeGraphRepresentation(const GraphVariant &V);

/// Enumerates every legal graph variant over the paper's option menu
/// (§6.2: containers from {ConcurrentHashMap, ConcurrentSkipListMap,
/// HashMap, TreeMap}, striping factor ∈ {1, 1024}, the three structures,
/// the four placement schemes). The paper reports 448 generated
/// variants; the legal subset of this menu is the same order of
/// magnitude.
std::vector<GraphVariant> enumerateGraphVariants(uint32_t StripeFactor = 1024);

/// The 12 named representations plotted in Figure 5 (Stick 1-4,
/// Split 1-5, Diamond 0-2), built per the §6.2 descriptions. "Handcoded"
/// is provided separately by the baseline library. Split 2 — striped
/// locks and concurrent maps on the left side, a single coarse lock on
/// the right — is a custom placement not expressible as a GraphVariant,
/// so this returns ready-made configurations.
std::vector<std::pair<std::string, RepresentationConfig>>
figure5Representations();

/// Result of evaluating one variant on a training workload.
struct TuneResult {
  GraphVariant Variant;
  std::string Name;
  double OpsPerSec = 0;
};

/// Autotunes over \p Variants: measures each with the harness and
/// returns results sorted best-first.
std::vector<TuneResult>
autotune(const std::vector<GraphVariant> &Variants, const OpMix &Mix,
         const KeySpace &Keys, const HarnessParams &Params,
         const std::function<void(const TuneResult &)> &OnResult = nullptr);

} // namespace crs

#endif // CRS_AUTOTUNE_AUTOTUNER_H
