//===- autotune/OnlineTuner.cpp - Statistics-driven online autotuning --------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "autotune/OnlineTuner.h"

#include "runtime/ShardedRelation.h"
#include "support/Compiler.h"

#include <algorithm>

using namespace crs;

OnlineTuner::OnlineTuner(ConcurrentRelation &R, OnlineTunerConfig C)
    : Rel(&R), Cfg(std::move(C)) {
  // Baseline for the first tick's mix delta.
  LastCounts = R.operationCounts();
}

OnlineTuner::OnlineTuner(ShardedRelation &R, OnlineTunerConfig C)
    : Rel(nullptr), Sharded(&R), Cfg(std::move(C)) {
  LastCounts = R.operationCounts();
}

OperationCounts OnlineTuner::liveCounts() const {
  return Sharded ? Sharded->operationCounts() : Rel->operationCounts();
}

std::vector<PlanCache::Signature> OnlineTuner::liveSignatures() const {
  return Sharded ? Sharded->compiledSignatures() : Rel->compiledSignatures();
}

RelationStatistics OnlineTuner::liveSample() const {
  return Sharded ? Sharded->sampleStatistics() : Rel->sampleStatistics();
}

const RepresentationConfig &OnlineTuner::liveConfig() const {
  return Sharded ? Sharded->config() : Rel->config();
}

bool OnlineTuner::servesEverywhere(const std::string &Name) const {
  if (!Sharded)
    return Rel->config().Name == Name;
  for (unsigned I = 0; I < Sharded->numShards(); ++I)
    if (Sharded->shard(I).config().Name != Name)
      return false;
  return true;
}

MigrationResult OnlineTuner::migrate(RepresentationConfig Target) {
  // The sharded path adopts the winner one shard at a time, stalling
  // only 1/N of the keyspace per dual-write window.
  return Sharded ? Sharded->migrateTo(std::move(Target), Cfg.Observer)
                 : Rel->migrateTo(std::move(Target), Cfg.Observer);
}

double OnlineTuner::scoreRepresentation(
    const RepresentationConfig &Config,
    const std::vector<PlanCache::Signature> &Sigs, const OperationCounts &Mix,
    const CostParams &Measured, double ContentionRatio, unsigned Threads) {
  assert(Config.Decomp && Config.Placement && "scoring an empty config");
  assert(Measured.EdgeFanout.empty() &&
         "per-edge fanouts do not transfer across decompositions");
  QueryPlanner Planner(*Config.Decomp, *Config.Placement, Measured);

  // Each signature is weighted by its operation kind's share of the
  // measured mix, split evenly across that kind's signatures (per-
  // signature counters would put another shared write on the hot
  // path; the kind split is measured, the within-kind split assumed).
  unsigned KindSigs[3] = {0, 0, 0}; // query / insert / remove
  auto IsUndo = [](PlanOp Op) {
    // Undo signatures execute only on transaction aborts, which the
    // per-kind operation counters do not track: excluded from scoring.
    return Op == PlanOp::UndoInsert || Op == PlanOp::UndoRemove;
  };
  auto KindOf = [&](PlanOp Op) {
    // Transactional reads (QueryForUpdate) count as queries.
    assert(!IsUndo(Op) && "undo signatures are excluded from the mix");
    return Op == PlanOp::Query || Op == PlanOp::QueryForUpdate ? 0
           : Op == PlanOp::Insert                              ? 1
                                                               : 2;
  };
  for (const PlanCache::Signature &Sig : Sigs)
    if (!IsUndo(Sig.Op))
      ++KindSigs[KindOf(Sig.Op)];
  double Tot = static_cast<double>(Mix.total());
  auto KindShare = [&](unsigned Kind) {
    if (Tot == 0) // no measured ops: weight every signature equally
      return 1.0 / static_cast<double>(Sigs.size());
    uint64_t Ops = Kind == 0 ? Mix.Queries : Kind == 1 ? Mix.Inserts
                                                       : Mix.Removes;
    return KindSigs[Kind] ? static_cast<double>(Ops) / Tot /
                                static_cast<double>(KindSigs[Kind])
                          : 0.0;
  };

  double SerialCost = 0;
  for (const PlanCache::Signature &Sig : Sigs) {
    if (IsUndo(Sig.Op))
      continue;
    double W = KindShare(KindOf(Sig.Op));
    if (W == 0.0)
      continue;
    ColumnSet Dom = ColumnSet::fromBits(Sig.Dom);
    Plan P;
    switch (Sig.Op) {
    case PlanOp::Query:
      P = Planner.planQuery(Dom, ColumnSet::fromBits(Sig.Out));
      break;
    case PlanOp::QueryForUpdate:
      P = Planner.planQueryForUpdate(Dom, ColumnSet::fromBits(Sig.Out));
      break;
    case PlanOp::Insert:
      P = Planner.planInsert(Dom);
      break;
    case PlanOp::Remove:
    case PlanOp::RemoveLocate:
      P = Planner.planRemove(Dom);
      break;
    case PlanOp::UndoInsert:
    case PlanOp::UndoRemove:
      continue; // abort-path only; excluded from the served mix
    }
    SerialCost += W * Planner.cost(P);
  }

  // The concurrency term the static model cannot see (§6.2's crossover):
  // supply is the candidate's root-level parallelism — anything hosted
  // at the root serializes on the root instance's stripes, while a
  // placement hosting everything below the root parallelizes across
  // the measured number of root-container entries (instances).
  const Decomposition &D = *Config.Decomp;
  const LockPlacement &LP = *Config.Placement;
  bool RootHosted = false;
  for (EdgeId E = 0; E < D.numEdges(); ++E)
    if (LP.edgePlacement(E).Host == D.root())
      RootHosted = true;
  double Supply = RootHosted ? static_cast<double>(LP.nodeStripes(D.root()))
                             : std::max(1.0, Measured.RootFanout);
  // Demand grows from 1 (uncontended: extra supply is worthless)
  // toward the serving thread count as measured contention rises.
  double Demand =
      1.0 + ContentionRatio * (Threads > 1 ? Threads - 1 : 0);
  double Parallelism = std::max(1.0, std::min(Demand, Supply));
  return SerialCost / Parallelism;
}

TuneTick OnlineTuner::tick() {
  TuneTick T;
  OperationCounts Now = liveCounts();
  OperationCounts Delta{Now.Queries - LastCounts.Queries,
                        Now.Inserts - LastCounts.Inserts,
                        Now.Removes - LastCounts.Removes};
  LastCounts = Now;
  if (Delta.total() == 0)
    Delta = Now; // idle interval: fall back to the lifetime mix

  std::vector<PlanCache::Signature> Sigs = liveSignatures();
  if (Sigs.empty()) { // nothing served yet: nothing to score
    Streak = 0;
    StreakBest.clear();
    return T;
  }
  T.Scored = true;

  // Live measurements: scalar fanouts (per-edge ones do not transfer
  // across decompositions) and the contention ratio.
  RelationStatistics Stats = liveSample();
  const Decomposition &Live = *liveConfig().Decomp;
  CostParams Measured;
  double RootEnt = 0, RootCont = 0, InnerEnt = 0, InnerCont = 0;
  // A sharded aggregate can carry more edge entries than the reference
  // decomposition while a canary shard runs a different shape
  // (RelationStatistics::accumulate sizes to the widest shard); the
  // surplus entries have no meaning against Live, so they are dropped
  // from the scalar fanout estimate rather than indexed out of bounds.
  EdgeId NumEdges = static_cast<EdgeId>(
      std::min<size_t>(Stats.Edges.size(), Live.numEdges()));
  for (EdgeId E = 0; E < NumEdges; ++E) {
    bool FromRoot = Live.edge(E).Src == Live.root();
    (FromRoot ? RootEnt : InnerEnt) +=
        static_cast<double>(Stats.Edges[E].Entries);
    (FromRoot ? RootCont : InnerCont) +=
        static_cast<double>(Stats.Edges[E].Containers);
  }
  if (RootCont > 0)
    Measured.RootFanout = std::max(1.0, RootEnt / RootCont);
  if (InnerCont > 0)
    Measured.InnerFanout = std::max(1.0, InnerEnt / InnerCont);
  // Contention, like the op mix, is diffed between ticks so decisions
  // track the *live* load, not a populate phase's stale history. The
  // cumulative counters can shrink (instances — and their counters —
  // die with husk cleanup or a migration's swap): on shrink, restart
  // the baseline from the current reading.
  uint64_t Acq = 0, Cont = 0;
  for (const NodeLockTraffic &N : Stats.Nodes) {
    Acq += N.Acquisitions;
    Cont += N.Contentions;
  }
  uint64_t AcqDelta = Acq >= LastAcquisitions ? Acq - LastAcquisitions : Acq;
  uint64_t ContDelta = Cont >= LastContentions ? Cont - LastContentions : Cont;
  LastAcquisitions = Acq;
  LastContentions = Cont;
  if (AcqDelta == 0) { // idle interval: fall back like the mix does
    AcqDelta = Acq;
    ContDelta = Cont;
  }
  double ContentionRatio =
      AcqDelta ? static_cast<double>(ContDelta) /
                     static_cast<double>(AcqDelta)
               : 0.0;

  // The cost of the *current deployment*. A sharded fleet mid-rollout
  // serves several configs at once (a canary shard on the winner, the
  // rest on the incumbent): scoring only shard 0 would make a canaried
  // winner look fully adopted (CurrentCost == BestCost) and stall the
  // rollout under any hysteresis ratio > 1. The fleet's cost is the
  // shard-count-weighted mean over its distinct serving configs.
  if (Sharded) {
    double Sum = 0;
    std::vector<std::pair<std::string, double>> Scored;
    for (unsigned I = 0; I < Sharded->numShards(); ++I) {
      const RepresentationConfig &C = Sharded->shard(I).config();
      double S = -1;
      for (const auto &[Name, Cost] : Scored)
        if (Name == C.Name)
          S = Cost;
      if (S < 0) {
        S = scoreRepresentation(C, Sigs, Delta, Measured, ContentionRatio,
                                Cfg.Threads);
        Scored.emplace_back(C.Name, S);
      }
      Sum += S;
    }
    T.CurrentCost = Sum / static_cast<double>(Sharded->numShards());
  } else {
    T.CurrentCost = scoreRepresentation(liveConfig(), Sigs, Delta, Measured,
                                        ContentionRatio, Cfg.Threads);
  }
  int BestIdx = -1;
  for (size_t I = 0; I < Cfg.Candidates.size(); ++I) {
    RepresentationConfig C = makeGraphRepresentation(Cfg.Candidates[I]);
    if (!C.Placement)
      continue; // illegal combination
    double S = scoreRepresentation(C, Sigs, Delta, Measured, ContentionRatio,
                                   Cfg.Threads);
    if (BestIdx < 0 || S < T.BestCost) {
      BestIdx = static_cast<int>(I);
      T.BestCost = S;
      T.BestName = C.Name;
    }
  }
  if (BestIdx < 0)
    return T;

  // Measured latency (the registry's relation.op_latency histograms) as
  // a second input beside the predicted costs. The histograms are
  // cumulative, so each tick diffs per-signature (count, sum) readings
  // against the previous tick's; a counter that shrank means the
  // relation re-attached its metrics (fresh histograms) and restarts
  // the baseline, like the contention counters above.
  double EffHysteresis = Cfg.HysteresisRatio;
  if (Cfg.Metrics) {
    uint64_t DCount = 0, DSum = 0;
    obs::MetricsSnapshot Snap = Cfg.Metrics->snapshot();
    for (const obs::MetricsSnapshot::HistogramSample &H : Snap.Histograms) {
      if (H.Name != "relation.op_latency")
        continue;
      bool Ours = Cfg.MetricsLabel.empty();
      std::string SigKey;
      for (const auto &[K, V] : H.Labels) {
        if (K == "relation" && V == Cfg.MetricsLabel)
          Ours = true;
        else if (K == "sig")
          SigKey = V;
        else if (K == "shard")
          SigKey += ":shard=" + V; // keep per-shard series distinct
      }
      if (!Ours)
        continue;
      auto &[LastCount, LastSum] = LastSigLat[SigKey];
      if (H.Data.Count >= LastCount) {
        DCount += H.Data.Count - LastCount;
        DSum += H.Data.SumNanos - LastSum;
      } else { // re-attach reset the histogram: restart the baseline
        DCount += H.Data.Count;
        DSum += H.Data.SumNanos;
      }
      LastCount = H.Data.Count;
      LastSum = H.Data.SumNanos;
    }
    if (DCount) {
      T.MeasuredMeanNanos =
          static_cast<double>(DSum) / static_cast<double>(DCount);
      // A real regression in what operations actually cost makes the
      // model's predicted win urgent: collapse the hysteresis ratio
      // toward 1 so a predicted-better candidate is adopted sooner.
      // Measurement never *blocks* a migration — the measured latency
      // of the current representation says nothing about a candidate's.
      if (LastMeanNanos > 0 &&
          T.MeasuredMeanNanos > LastMeanNanos * Cfg.LatencyRegressRatio) {
        T.LatencyRegressed = true;
        EffHysteresis = std::min(EffHysteresis, 1.05);
      }
      LastMeanNanos = T.MeasuredMeanNanos;
    }
  }

  // Hysteresis: the winner must beat the live representation by the
  // (possibly latency-collapsed) ratio, for the configured number of
  // consecutive ticks, before a migration is worth its dual-write and
  // barrier costs. The already-serving test covers every shard of a
  // fleet: a canary migration of shard 0 alone must not make the winner
  // look adopted and stall the rollout of the rest.
  bool Wins = !servesEverywhere(T.BestName) &&
              T.CurrentCost > T.BestCost * EffHysteresis;
  if (Wins) {
    Streak = T.BestName == StreakBest ? Streak + 1 : 1;
    StreakBest = T.BestName;
  } else {
    Streak = 0;
    StreakBest.clear();
  }
  T.Confirmations = Streak;
  obs::TraceRing *Ring =
      Cfg.Metrics ? &Cfg.Metrics->ring(obs::EventDomain::Tuner) : nullptr;
  if (Ring)
    Ring->emit(obs::EventKind::TunerDecision,
               static_cast<uint64_t>(T.CurrentCost * 1000),
               static_cast<uint64_t>(T.BestCost * 1000), Streak);
  if (Wins && Streak >= Cfg.ConfirmTicks) {
    T.Migration = migrate(makeGraphRepresentation(Cfg.Candidates[BestIdx]));
    T.Migrated = T.Migration.Ok;
    if (Ring && T.Migrated)
      Ring->emit(obs::EventKind::TunerMigrated,
                 static_cast<uint64_t>(BestIdx),
                 static_cast<uint64_t>(T.BestCost * 1000),
                 static_cast<uint64_t>(T.MeasuredMeanNanos));
    Streak = 0;
    StreakBest.clear();
  }
  return T;
}
