//===- runtime/AnyContainer.cpp - Type-erased edge containers -----------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "runtime/AnyContainer.h"

#include "containers/ConcurrentHashMap.h"
#include "containers/ConcurrentSkipListMap.h"
#include "containers/CowArrayMap.h"
#include "containers/HashMap.h"
#include "containers/SingletonCell.h"
#include "containers/TreeMap.h"
#include "support/Compiler.h"

using namespace crs;

namespace {

/// CRTP-free adapter: wraps a concrete container template instance.
template <typename Impl, ContainerKind K>
class ContainerAdapter final : public AnyContainer {
  Impl Map;

public:
  bool lookup(const Tuple &Key, NodeInstPtr &Out) const override {
    return Map.lookup(Key, Out);
  }
  bool insertOrAssign(const Tuple &Key, NodeInstPtr Val) override {
    return Map.insertOrAssign(Key, std::move(Val));
  }
  bool erase(const Tuple &Key) override { return Map.erase(Key); }
  void scan(function_ref<bool(const Tuple &, const NodeInstPtr &)> Visit)
      const override {
    Map.scan([&](const Tuple &Key, const NodeInstPtr &Val) {
      return Visit(Key, Val);
    });
  }
  size_t size() const override { return Map.size(); }
  ContainerKind kind() const override { return K; }
};

} // namespace

std::unique_ptr<AnyContainer> AnyContainer::create(ContainerKind Kind) {
  switch (Kind) {
  case ContainerKind::HashMap:
    return std::make_unique<ContainerAdapter<
        HashMap<Tuple, NodeInstPtr, TupleHash>, ContainerKind::HashMap>>();
  case ContainerKind::TreeMap:
    return std::make_unique<ContainerAdapter<
        TreeMap<Tuple, NodeInstPtr, TupleLess>, ContainerKind::TreeMap>>();
  case ContainerKind::ConcurrentHashMap:
    return std::make_unique<ContainerAdapter<
        ConcurrentHashMap<Tuple, NodeInstPtr, TupleHash>,
        ContainerKind::ConcurrentHashMap>>();
  case ContainerKind::ConcurrentSkipListMap:
    return std::make_unique<ContainerAdapter<
        ConcurrentSkipListMap<Tuple, NodeInstPtr, TupleLess>,
        ContainerKind::ConcurrentSkipListMap>>();
  case ContainerKind::CowArrayMap:
    return std::make_unique<ContainerAdapter<
        CowArrayMap<Tuple, NodeInstPtr, TupleLess>,
        ContainerKind::CowArrayMap>>();
  case ContainerKind::SingletonCell:
    return std::make_unique<ContainerAdapter<SingletonCell<Tuple, NodeInstPtr>,
                                             ContainerKind::SingletonCell>>();
  }
  crs_unreachable("unknown container kind");
}
