//===- runtime/Migration.cpp - Live representation migration -----------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// ConcurrentRelation::migrateTo and the shadow representation behind
/// it. Correctness argument (see also docs/ARCHITECTURE.md):
///
///  * Both flips run behind the operation gate, so a whole operation —
///    plan resolution included — executes entirely under one regime:
///    source-only, dual-write, or target-only. There are never
///    stragglers holding plans from a previous regime.
///
///  * During dual-write, every committed mutation replays on the shadow
///    while its source exclusive locks are held (MirrorWrite runs
///    inside the growing phase), and every backfill copy re-confirms
///    its tuple in the source and inserts into the shadow while the
///    source's shared locks are held. Conflicting pairs on one key are
///    therefore serialized by the source's two-phase locking, and their
///    shadow effects land in the same serialization order — the shadow
///    can never resurrect a removed tuple or miss a committed insert.
///
///  * Shadow inserts are put-if-absent on the full tuple, so the
///    dual-write and the backfill are idempotent against each other.
///
///  * At the retirement flip the dual-write has converged (one full
///    backfill pass + mirroring of everything since), so the shadow
///    holds exactly the source's tuples; the relation adopts it and
///    bumps the plan epoch, and every prepared handle rebinds.
///
//===----------------------------------------------------------------------===//

#include "runtime/ConcurrentRelation.h"

#include "support/Compiler.h"
#include "sync/Epoch.h"
#include "txn/MvccStore.h"

#include <chrono>
#include <thread>

using namespace crs;

namespace crs {
namespace detail {

/// The shadow representation of an in-flight migration: the target
/// configuration with its own planner, executor, root instance, and
/// plan cache (mutation plans per dom(s) signature, compiled without
/// mirror epilogues — mirroring never nests). Mutations reach it
/// through the MirrorSink interface from MirrorWrite statements; the
/// backfill walk reaches it through apply(). All executions run on the
/// calling thread's secondary context, since the primary context is
/// mid-operation on the source with its locks held.
class MirrorRep final : public MirrorSink {
public:
  RepresentationConfig Config;
  QueryPlanner Planner;
  PlanExecutor Executor;
  NodeInstPtr Root;
  PlanCache Plans;
  std::atomic<uint64_t> MirroredInserts{0};
  std::atomic<uint64_t> MirroredRemoves{0};

  explicit MirrorRep(RepresentationConfig C)
      : Config(std::move(C)),
        Planner(*Config.Decomp, *Config.Placement),
        Executor(*Config.Decomp, *Config.Placement) {
    const Decomposition &D = *Config.Decomp;
    Root = NodeInstance::create(D, D.root(), Tuple(),
                                Config.Placement->nodeStripes(D.root()));
  }

  void mirror(PlanOp Op, ColumnSet DomS, const Tuple &Input) override {
    (Op == PlanOp::Insert ? MirroredInserts : MirroredRemoves)
        .fetch_add(1, std::memory_order_relaxed);
    apply(Op, DomS, Input);
  }

  /// Runs one mutation on the shadow; returns whether it changed it
  /// (an insert losing its put-if-absent, or a remove matching
  /// nothing, is a benign no-op — the other writer already converged
  /// this key). Never adjusts the relation's logical count: the source
  /// plan's UpdateCount is authoritative until retirement, after which
  /// the count carries over unchanged.
  bool apply(PlanOp Op, ColumnSet DomS, const Tuple &Input) {
    // The shadow's own cache also retires superseded snapshots through
    // the epoch domain, and mirror threads race each other here.
    EpochDomain::Guard EG;
    const Plan *P = Plans.getOrCompile(Op, DomS.bits(), 0, [&] {
      // The planner is never swapped (no adaptPlans on a shadow) and
      // its plan* methods are const and stateless, so concurrent
      // compiles need no planner mutex — the cache serializes
      // publication per shard.
      return Op == PlanOp::Insert ? Planner.planInsert(DomS)
                                  : Planner.planRemove(DomS);
    });
    ExecContext &Ctx = ExecContext::mirrorCtx();
    ExecContext::OpScope S(Ctx); // asserts against recursive shadow runs
    // Target-representation executions run above every source domain in
    // the cross-set lock order (source locks before target locks).
    Ctx.Locks.setOrderDomain(1, 0);
    Ctx.Count = nullptr;
    ExecStatus St = Executor.run(*P, Input, Root, Ctx);
    assert(St != ExecStatus::Restart && "mutation plans never speculate");
    if (Op == PlanOp::Insert)
      return St == ExecStatus::Ok;
    return Ctx.numStates(P->ResultVar) != 0;
  }
};

} // namespace detail
} // namespace crs

// Out of line: the header cannot destroy the (forward-declared) shadow
// migration state. Detach the observability wiring first — its registry
// callbacks capture `this` and must not survive the relation.
ConcurrentRelation::~ConcurrentRelation() { detachMetrics(); }

RelationStatistics ConcurrentRelation::sampleStatistics() const {
  OpGate::Barrier B(Gate); // drain in-flight operations, hold new ones
  return collectStatistics();
}

MigrationResult ConcurrentRelation::migrateTo(RepresentationConfig Target,
                                              MigrationObserver *Obs) {
  MigrationResult Res;
  auto Reject = [&Res](std::string Why) {
    Res.Ok = false;
    Res.Error = std::move(Why);
    return Res;
  };

  // Serialize whole migrations, validation included: the checks below
  // read the *current* configuration (spec()), which a concurrent
  // migration's retirement flip reassigns.
  std::lock_guard<std::mutex> MigrationGuard(MigrationM);

  // Up-front legality: an illegal target must be rejected before the
  // relation is touched — the dual-write phase never starts. These are
  // the same checks the ConcurrentRelation constructor asserts, plus
  // specification equality (a migration re-represents the *same*
  // relation; it cannot change its columns or dependencies).
  if (!Target.Spec || !Target.Decomp || !Target.Placement)
    return Reject("illegal target: empty representation config");
  if (Target.Spec->str() != spec().str())
    return Reject("illegal target: specification differs from the "
                  "relation's");
  if (ValidationResult V = Target.Decomp->validate(); !V.ok())
    return Reject("illegal target: inadequate decomposition: " + V.str());
  if (ValidationResult V = Target.Placement->validate(); !V.ok())
    return Reject("illegal target: ill-formed placement: " + V.str());
  if (ValidationResult V = Target.Placement->validateContainerSafety();
      !V.ok())
    return Reject("illegal target: unsafe containers: " + V.str());

  auto Shadow = std::make_unique<detail::MirrorRep>(std::move(Target));
  detail::MirrorRep *Rep = Shadow.get(); // concrete view; owned below

  // ---- Flip 1: enter dual-write. Behind the barrier no *gated*
  // operation is in flight, so installing the sink, switching the
  // planner to emit MirrorWrite epilogues, bumping the epoch, and
  // clearing the cache is atomic with respect to all mutation traffic.
  // Wait-free readers are deliberately NOT drained: query plans carry
  // no mirror epilogues under either regime, so a fast reader racing
  // this flip executes a plan that is correct before and after it. The
  // bump precedes the clear for the epoch-reclamation reason spelled
  // out in adaptPlans(); the benign consequence — a racing fast reader
  // re-binding a not-yet-cleared query plan at the new epoch — is
  // harmless here for the same no-epilogue reason.
  {
    OpGate::Barrier B(Gate);
    {
      std::lock_guard<std::mutex> Guard(PlannerMutex);
      Planner.setEmitMirrorWrites(true);
    }
    LiveMigration = std::move(Shadow);
    ActiveMirror.store(Rep, std::memory_order_release);
    PlanEpoch.fetch_add(1, std::memory_order_seq_cst);
    Plans.clear();
    Phase.store(MigrationPhase::DualWrite, std::memory_order_release);
  }
  // Trace the phase transition (outside the barrier: the ring write is
  // lock-free but there is no reason to hold traffic for it). `Obs`
  // here is the observer parameter; the wiring comes via the accessor.
  if (const detail::RelationObs *OS = observability())
    OS->MigrationRing->emit(obs::EventKind::MigrationDualWrite,
                            planEpoch(), size());
  // Unwind safety for everything between the flips: a throwing
  // observer callback or an allocation failure in the backfill must
  // not strand the relation in dual-write with an orphaned shadow.
  // The rollback mirrors flip 2 without adopting anything: back to the
  // source-only regime, shadow retired, epoch bumped so handles shed
  // their mirroring plans. Writes already mirrored are simply
  // discarded with the shadow — the source stayed authoritative
  // throughout.
  struct DualWriteAbort {
    ConcurrentRelation &R;
    bool Armed = true;
    explicit DualWriteAbort(ConcurrentRelation &R) : R(R) {}
    ~DualWriteAbort() {
      if (!Armed)
        return;
      OpGate::Barrier B(R.Gate);
      {
        std::lock_guard<std::mutex> Guard(R.PlannerMutex);
        R.Planner.setEmitMirrorWrites(false);
      }
      R.ActiveMirror.store(nullptr, std::memory_order_release);
      // The abandoned shadow goes to the epoch domain: retired plan
      // snapshots of the *source* cache may still be walked by readers,
      // but nothing points into the shadow once the barrier drains —
      // it reclaims with the grace period like any other retiree.
      EpochDomain::global().retireObject(
          static_cast<detail::MirrorRep *>(R.LiveMigration.release()));
      R.PlanEpoch.fetch_add(1, std::memory_order_seq_cst);
      R.Plans.clear();
      R.Phase.store(MigrationPhase::Idle, std::memory_order_release);
    }
  } Abort(*this);

  auto DualWriteStart = std::chrono::steady_clock::now();
  if (Obs)
    Obs->onDualWriteStart();

  // ---- Backfill: copy a point-in-time snapshot. Tuples inserted
  // after the snapshot arrive via mirroring; tuples removed before
  // their copy fail the re-confirmation below and are skipped.
  std::vector<Tuple> Snapshot = scanAll();
  ColumnSet All = spec().allColumns();
  {
    // The guard pins the Member plan for the whole pass: an observer
    // callback may call adaptPlans() mid-backfill, whose clear()
    // retires the snapshot that owns it. Scoped so it is released
    // before the retirement flip below — flip 2 synchronizes the epoch
    // domain, and this thread must not be pinning an epoch then.
    EpochDomain::Guard EG;
    // Full-tuple membership plan: re-confirms a snapshot tuple under
    // the source's shared locks, which the copy then holds through the
    // shadow insert — a concurrent remove of the same tuple serializes
    // either before the re-confirmation (copy skipped) or after the
    // shadow insert (its mirror erases the copy). Readers never block
    // on the backfill: it takes no exclusive source locks.
    const Plan *Member = queryPlanFor(All, All);
    ExecContext &Ctx = ExecContext::current();
    Ctx.Locks.setOrderDomain(0, LockDomain);
    uint64_t Processed = 0;
    for (const Tuple &T : Snapshot) {
      for (unsigned Attempt = 0;; ++Attempt) {
        ExecContext::OpScope S(Ctx); // asserts: no backfill inside an op
        if (Executor.run(*Member, T, Root, Ctx) == ExecStatus::Ok) {
          if (Ctx.numStates(Member->ResultVar) != 0 &&
              Rep->apply(PlanOp::Insert, All, T))
            ++Res.Backfilled;
          break;
        }
        // Speculative membership check lost its guess: restart it.
        Restarts.fetch_add(1, std::memory_order_relaxed);
        if (Attempt >= 16)
          std::this_thread::yield();
      }
      ++Processed;
      if (Obs)
        Obs->onBackfillProgress(Processed, Snapshot.size());
    }
  }

  // ---- Converged: one full pass plus mirroring of everything since
  // the dual-write flip. Retire the source.
  if (Obs)
    Obs->onBeforeSwap();
  Res.DualWriteSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    DualWriteStart)
          .count();

  // ---- Flip 2: adopt the shadow. Unlike flip 1 this swaps the
  // representation the wait-free readers walk, so they must be drained
  // too, in three steps: (1) clear the fast-reads flag — every reader
  // from here on sees it inside its guard and falls back to the gated
  // path; (2) the barrier drains the gated operations; (3)
  // synchronize() waits out every reader that entered its guard while
  // the flag was still set. After (3) nothing is walking the source
  // tree or holding a source plan mid-execution, so the swap below is
  // exclusive. The superseded configuration and the shadow object are
  // retired through the epoch domain, not freed: retired plan-cache
  // snapshots hold raw pointers into the old decomposition/placement,
  // and the shadow's planner points into config copies it keeps
  // internally. The old root instance tree, however, is dropped right
  // here — once the readers are drained nothing references it.
  Abort.Armed = false; // committed: the retirement flip takes over
  bool FastWas = FastReads.exchange(false, std::memory_order_seq_cst);
  {
    OpGate::Barrier B(Gate);
    EpochDomain::global().synchronize();
    // The whole old config retires as one object, so the old decomp's
    // internal reference to the old spec stays valid until they free
    // together. spec() identity is unaffected: the relation pins its
    // construction-time spec separately (StableSpec).
    EpochDomain::global().retireObject(
        new RepresentationConfig(std::move(Config)));
    Config = Rep->Config; // shared ownership; the shadow keeps its copy
    {
      std::lock_guard<std::mutex> Guard(PlannerMutex);
      Planner = QueryPlanner(*Config.Decomp, *Config.Placement,
                             BaseCostParams);
    }
    Executor = PlanExecutor(*Config.Decomp, *Config.Placement);
    Root = Rep->Root;
    FastRoot.store(Root.get(), std::memory_order_seq_cst);
    ActiveMirror.store(nullptr, std::memory_order_release);
    Res.MirroredInserts = Rep->MirroredInserts.load(std::memory_order_relaxed);
    Res.MirroredRemoves = Rep->MirroredRemoves.load(std::memory_order_relaxed);
    EpochDomain::global().retireObject(
        static_cast<detail::MirrorRep *>(LiveMigration.release()));
    PlanEpoch.fetch_add(1, std::memory_order_seq_cst);
    Plans.clear();
    Phase.store(MigrationPhase::Idle, std::memory_order_release);
  }
  // Re-enable the fast path (unless the user had it off) only after
  // the new regime is fully published.
  FastReads.store(FastWas, std::memory_order_seq_cst);
  Res.Ok = true;
  if (const detail::RelationObs *OS = observability()) {
    OS->MigrationRing->emit(obs::EventKind::MigrationSwap, planEpoch(),
                            Res.MirroredInserts, Res.MirroredRemoves);
    OS->MigrationRing->emit(
        obs::EventKind::MigrationRetired, Res.Backfilled,
        uint64_t(Res.DualWriteSeconds * 1e6));
  }
  return Res;
}
