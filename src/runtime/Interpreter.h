//===- runtime/Interpreter.h - Query plan execution -------------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiled plans (§5.2) against a decomposition instance. Each
/// plan statement transforms a set of query states (t, m) — a tuple of
/// bound columns plus bindings from decomposition nodes to node
/// instances. Lock statements sort the physical locks they acquire into
/// the global lock order (§5.1) before acquisition; speculative
/// statements implement the guess-verify protocol of §4.5, restarting
/// the transaction on a wrong guess or an out-of-order conflict (the
/// try-lock/restart discipline that keeps speculation deadlock-free).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_RUNTIME_INTERPRETER_H
#define CRS_RUNTIME_INTERPRETER_H

#include "plan/QueryIR.h"
#include "runtime/NodeInstance.h"
#include "sync/LockSet.h"

#include <vector>

namespace crs {

/// One query state (§5.2): bound columns plus node-instance bindings
/// (indexed by NodeId; null = unbound).
struct QueryState {
  Tuple T;
  std::vector<NodeInstPtr> Bound;
};

/// Outcome of executing a plan.
enum class ExecStatus : uint8_t {
  Ok,      ///< plan ran to completion; results valid
  Restart, ///< speculation failed; release everything and re-execute
};

/// Stateless plan executor bound to one decomposition + placement.
class PlanExecutor {
public:
  PlanExecutor(const Decomposition &D, const LockPlacement &P);

  /// Runs \p Plan with input tuple \p Input (the operation's s) rooted at
  /// \p Root. Acquired locks go into \p Locks and are *kept* on return
  /// (strict two-phase: the caller releases after applying writes and
  /// reading results). On Restart the caller must release and retry.
  ExecStatus run(const Plan &Plan, const Tuple &Input, NodeInstPtr Root,
                 LockSet &Locks, std::vector<QueryState> &Result) const;

private:
  const Decomposition *Decomp;
  const LockPlacement *Placement;
  std::vector<uint32_t> TopoIdx;

  LockOrderKey orderKey(NodeId Node, const NodeInstance &Inst,
                        uint32_t Stripe) const;

  ExecStatus execLock(const PlanStmt &St,
                      const std::vector<QueryState> &States,
                      LockSet &Locks) const;
  void execLookup(const PlanStmt &St, const std::vector<QueryState> &In,
                  std::vector<QueryState> &Out) const;
  void execScan(const PlanStmt &St, const std::vector<QueryState> &In,
                std::vector<QueryState> &Out) const;
  ExecStatus execSpecLookup(const PlanStmt &St,
                            const std::vector<QueryState> &In,
                            std::vector<QueryState> &Out,
                            LockSet &Locks) const;
  ExecStatus execSpecScan(const PlanStmt &St,
                          const std::vector<QueryState> &In,
                          std::vector<QueryState> &Out, LockSet &Locks) const;
};

} // namespace crs

#endif // CRS_RUNTIME_INTERPRETER_H
