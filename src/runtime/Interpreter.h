//===- runtime/Interpreter.h - Query plan execution -------------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiled plans (§5.2) against a decomposition instance — both
/// the read statements (lock/lookup/scan/spec*) and the write statements
/// of mutation plans (probe/create/insert-entry/erase-entry), so insert,
/// remove, and query all run through one executor on planner-emitted IR.
///
/// Execution state lives in a reusable per-thread ExecContext with flat
/// frames: every query state (t, m) of §5.2 is one tuple plus a
/// fixed-stride row of *indices* into an instance pool, appended to
/// arena-style arrays that keep their capacity across operations. Plan
/// variables are contiguous ranges over the arena (plans are in SSA
/// form: each variable is produced by exactly one statement), so a
/// statement is a linear pass over its input range — no per-statement
/// vector-of-struct churn and no shared_ptr refcount traffic per copied
/// binding.
///
/// Lock statements sort the physical locks they acquire into the global
/// lock order (§5.1) before acquisition; speculative statements
/// implement the guess-verify protocol of §4.5, restarting the
/// transaction on a wrong guess or an out-of-order conflict (the
/// try-lock/restart discipline that keeps speculation deadlock-free).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_RUNTIME_INTERPRETER_H
#define CRS_RUNTIME_INTERPRETER_H

#include "plan/QueryIR.h"
#include "runtime/NodeInstance.h"
#include "sync/LockSet.h"

#include <atomic>
#include <cassert>
#include <vector>

namespace crs {

/// Outcome of executing a plan.
enum class ExecStatus : uint8_t {
  Ok,      ///< plan ran to completion; results valid
  Restart, ///< speculation failed; release everything and re-execute
  Found,   ///< a put-if-absent guard tripped: a tuple matching s exists
};

/// Where a MirrorWrite statement replays committed mutations: the
/// shadow representation of an in-flight migration
/// (runtime/Migration.h installs one per mutating operation while the
/// dual-write phase is active). Implementations execute the replay on
/// the thread's *secondary* execution context — the primary context is
/// mid-plan, its source-representation locks still held, which is what
/// keeps the pair of writes atomic to every observer.
class MirrorSink {
public:
  virtual ~MirrorSink() = default;
  /// Replays `Op` (Insert or Remove) with dom(s) = \p DomS and the
  /// original input tuple \p Input on the shadow representation. Must
  /// not throw; must not adjust the relation's logical tuple count
  /// (the source plan's UpdateCount already did).
  virtual void mirror(PlanOp Op, ColumnSet DomS, const Tuple &Input) = 0;
};

/// Reusable per-thread execution state. One operation at a time: run the
/// plan, read the results, release the locks, then reset(). The instance
/// pool keeps every bound node instance alive until reset() — this is
/// what lets the shrinking phase unlock stripes of instances the plan
/// just unlinked (POSIX forbids destroying a lock mid-unlock), so
/// reset() must only be called *after* Locks.releaseAll().
class ExecContext {
public:
  static constexpr uint32_t NoBinding = UINT32_MAX;

  LockSet Locks;

  /// Relation tuple counter adjusted by UpdateCount statements.
  std::atomic<size_t> *Count = nullptr;

  /// Shadow-representation sink for MirrorWrite statements. Installed
  /// per mutating operation by the relation (null outside a
  /// migration's dual-write phase); read only when a plan carries a
  /// MirrorWrite epilogue, so it costs nothing on ordinary traffic.
  MirrorSink *Mirror = nullptr;

  /// The state a multi-operation transaction scope (src/txn) threads
  /// through the executor. While installed (non-null Txn):
  ///
  ///  * begin() preserves the instance pool and the lock set across
  ///    plans — locks are retained to commit (strict 2PL), and pooled
  ///    instances must outlive the locks they own;
  ///  * lock statements acquire through LockSet::acquireTxn — in-order
  ///    requests block (unless ForceTry), out-of-order requests try and
  ///    surface WouldBlock as ExecStatus::Restart for the transaction
  ///    layer's bounded wait-die path;
  ///  * MirrorWrite statements append to MirrorBuf instead of replaying
  ///    immediately — the dual-write contract is per *gated operation*,
  ///    and the gated operation here is the whole transaction: buffered
  ///    entries flush at commit (locks still held) or vanish on abort.
  struct TxnFrame {
    /// Cross-shard discipline: this scope joined the shard out of shard
    /// order, so no acquisition in it may block, in-order or not.
    bool ForceTry = false;
    /// A shared→exclusive escalation was requested (not upgradable);
    /// the transaction layer aborts the scope.
    bool SawUpgrade = false;
    /// Mutations awaiting replay on the migration shadow at commit.
    struct BufferedMirror {
      PlanOp Op;
      ColumnSet DomS;
      Tuple Input;
    };
    std::vector<BufferedMirror> MirrorBuf;
  };
  TxnFrame *Txn = nullptr;

  /// Rollback support for a transactional operation's retry path: pool
  /// growth since poolMark() is dropped by rollbackPool() *after* the
  /// corresponding LockSet::releaseToMark — instances must stay pinned
  /// until their unlocks have returned.
  size_t poolMark() const { return Pool.size(); }
  void rollbackPool(size_t Mark) {
    assert(Mark <= Pool.size() && "pool mark from a different scope");
    Pool.resize(Mark);
  }

  /// The calling thread's execution context (one per thread, reused
  /// across operations and relations; arena capacity is recycled).
  static ExecContext &current();

  /// The calling thread's *secondary* context: mirror replays and
  /// migration backfill run target-representation plans on it while
  /// the primary context still holds the source representation's state
  /// and locks. Acquiring target locks while holding source locks is
  /// deadlock-free because every thread orders the two representations
  /// the same way (source first); nothing ever takes a source lock
  /// while holding a target lock.
  static ExecContext &mirrorCtx();

  /// Drops all states, bindings, and pooled instances, keeping arena
  /// capacity. Precondition: no locks held.
  void reset();

  /// A prepared handle's flat per-thread argument frame: one Value per
  /// bind slot plus a bitmask of slots bound so far. Frames persist
  /// across operations (bindings are sticky: rebind only what changed)
  /// and are never touched by reset(). Frame *ids* are recycled when
  /// handles die, so each frame carries the generation of the handle
  /// that last used it: a new handle reusing the id starts with a clean
  /// bound mask instead of a predecessor's stale bindings.
  struct ArgFrame {
    std::vector<Value> Vals;
    uint64_t BoundMask = 0;
    uint64_t Gen = 0;
  };

  /// The frame for the handle identified by (\p FrameId, \p Gen), sized
  /// to \p NumSlots and invalidated on generation change.
  ArgFrame &frame(uint32_t FrameId, uint64_t Gen, unsigned NumSlots) {
    if (FrameId >= Frames.size())
      Frames.resize(FrameId + 1);
    ArgFrame &F = Frames[FrameId];
    if (F.Vals.size() < NumSlots)
      F.Vals.resize(NumSlots);
    if (F.Gen != Gen) { // recycled id: drop the dead handle's bindings
      F.Gen = Gen;
      F.BoundMask = 0;
    }
    return F;
  }

  /// Reusable input tuple for prepared executions: rebound in place from
  /// a bind-slot layout plus argument frame (no allocation once warm),
  /// then passed to PlanExecutor::run as the operation's input. Survives
  /// reset() like the frames.
  Tuple &inputScratch() { return InputScratch; }

  /// Drops the sticky per-handle argument frames (including their bound
  /// masks). Called when a context changes threads through the
  /// transaction pool's recycle list: prepared-op bindings are a
  /// per-thread contract, so a handle must never observe another
  /// thread's bindings through an adopted context. The other arenas keep
  /// their capacity — that warmth is the point of recycling.
  void purgeFrames() { Frames.clear(); }

  /// Re-entrancy guard: set while an operation (including its streaming
  /// result visitation) is using this context, so a visitor calling back
  /// into a relation on the same thread fails fast instead of silently
  /// clobbering the in-flight operation's states.
  bool Busy = false;

  /// Epoch-protected execution mode (the wait-free read fast path): set
  /// by the relation before running an *epoch-eligible* query plan under
  /// an epoch guard. Lock statements become no-ops and speculative
  /// statements degrade to their plain unlocked reads (the guess *is*
  /// the result — with no lock taken there is nothing to verify
  /// against). Only valid for Plan::EpochEligible plans; cleared by
  /// OpScope::finish with the rest of the per-operation state.
  bool LockFree = false;

  /// Releases the context's locks and recycles its frames at scope
  /// exit. The context is long-lived (thread-local), so no destructor
  /// runs per operation — without this guard, an exception between
  /// run() and the explicit release (e.g. bad_alloc building a result
  /// vector, or a throwing forEach visitor) would leave the locks held
  /// forever. Marks the context busy for its lifetime, so re-entrant
  /// operations from result visitors fail fast in debug builds.
  /// Release-then-reset order matters: the pool must pin instances
  /// until every unlock has returned (POSIX forbids destroying a lock
  /// mid-unlock). Shared by the relation's operation paths, mirror
  /// replays, and the migration backfill.
  struct OpScope {
    ExecContext &Ctx;
    explicit OpScope(ExecContext &C) : Ctx(C) {
      assert(!Ctx.Busy &&
             "re-entrant operation on this execution context (a result "
             "visitor must not call back into a relation)");
      Ctx.Busy = true;
    }
    ~OpScope() { finish(); }
    OpScope(const OpScope &) = delete;
    OpScope &operator=(const OpScope &) = delete;
    /// Idempotent early release for the happy path (shortens hold time
    /// before result post-processing).
    void finish() {
      Ctx.Locks.releaseAll();
      Ctx.reset();
      Ctx.LockFree = false;
      Ctx.Busy = false;
    }
  };

  uint32_t numStates(PlanVar V) const { return Vars[V].Count; }
  const Tuple &stateTuple(PlanVar V, uint32_t I) const {
    return Tuples[Vars[V].First + I];
  }

  /// Append slots: reset() only rewinds NumStates, so the Tuple objects
  /// (and their entry-vector capacity) are recycled across operations —
  /// a warm operation allocates nothing per state. Each returns the new
  /// state's index; the assign* variants write the tuple content
  /// directly into the recycled slot.
  /// @{
  /// State copying \p Src's tuple and binding row.
  uint32_t pushStateCopy(uint32_t Src);
  /// State with tuple A ⋈ B (A.matches(B) required) and \p Src's row.
  uint32_t pushStateJoinOf(const Tuple &A, const Tuple &B, uint32_t Src);
  /// State with tuple π_C(Tuples[Src]) and an all-unbound binding row.
  uint32_t pushStateProjOf(uint32_t Src, ColumnSet C);
  /// @}

private:
  friend class PlanExecutor;

  struct VarRange {
    uint32_t First = 0;
    uint32_t Count = 0;
  };

  /// High-water tuple arena: the live states are Tuples[0..NumStates);
  /// the vector is never cleared, so slot objects keep their entry
  /// capacity across operations.
  std::vector<Tuple> Tuples;
  uint32_t NumStates = 0;
  std::vector<uint32_t> Bind;    ///< arena: Stride pool indices per state
  std::vector<NodeInstPtr> Pool; ///< bound instances; pins them for the op
  std::vector<VarRange> Vars;
  uint32_t Stride = 0;
  std::vector<ArgFrame> Frames;  ///< per-handle argument frames (sticky)
  Tuple InputScratch;            ///< prepared-execution input (sticky)

  /// Starts a fresh operation: state 0 = (Input, {root ↦ Root}). In
  /// transaction mode (Txn installed) the lock set and instance pool
  /// survive — only the state arena and variable table rewind.
  void begin(uint32_t NumNodes, PlanVar NumVars, const Tuple &Input,
             NodeInstPtr Root, NodeId RootNode);

  uint32_t numAllStates() const { return NumStates; }
  uint32_t bindIdx(uint32_t State, NodeId N) const {
    return Bind[size_t(State) * Stride + N];
  }
  void setBind(uint32_t State, NodeId N, uint32_t PoolIdx) {
    Bind[size_t(State) * Stride + N] = PoolIdx;
  }
  uint32_t intern(NodeInstPtr P) {
    Pool.push_back(std::move(P));
    return static_cast<uint32_t>(Pool.size() - 1);
  }
  /// Claims the next arena slot (recycled object or fresh) with an
  /// uninitialized binding row; returns its state index.
  uint32_t allocState();
};

/// Stateless plan executor bound to one decomposition + placement.
class PlanExecutor {
public:
  PlanExecutor(const Decomposition &D, const LockPlacement &P);

  /// Runs \p Plan with input tuple \p Input (the operation's s — or
  /// s ∪ t for insert plans) rooted at \p Root. Acquired locks go into
  /// \p Ctx.Locks and are *kept* on return (strict two-phase: the caller
  /// releases after reading results, then resets the context). On
  /// Restart the caller must release and retry; on Found (insert) a
  /// tuple matching s already exists and no writes were applied.
  /// Results are the states of Plan.ResultVar, read via Ctx.
  ExecStatus run(const Plan &Plan, const Tuple &Input, NodeInstPtr Root,
                 ExecContext &Ctx) const;

private:
  const Decomposition *Decomp;
  const LockPlacement *Placement;
  std::vector<uint32_t> TopoIdx;

  LockOrderKey orderKey(NodeId Node, const NodeInstance &Inst,
                        uint32_t Stripe) const;

  ExecStatus execLock(const PlanStmt &St, ExecContext &Ctx) const;
  void execLookup(const PlanStmt &St, ExecContext &Ctx) const;
  void execScan(const PlanStmt &St, ExecContext &Ctx) const;
  ExecStatus execSpecLookup(const PlanStmt &St, ExecContext &Ctx) const;
  ExecStatus execSpecScan(const PlanStmt &St, ExecContext &Ctx) const;
  void execProbe(const PlanStmt &St, ExecContext &Ctx) const;
  void execRestrict(const PlanStmt &St, ExecContext &Ctx) const;
  void execCreateNode(const PlanStmt &St, ExecContext &Ctx) const;
  void execInsertEdge(const PlanStmt &St, ExecContext &Ctx) const;
  void execEraseEdge(const PlanStmt &St, ExecContext &Ctx) const;
};

} // namespace crs

#endif // CRS_RUNTIME_INTERPRETER_H
