//===- runtime/ConcurrentRelation.h - The public relation API --*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthesized concurrent relation — the library's primary public
/// type. Construct one from a relational specification, an adequate
/// decomposition, and a well-formed lock placement; the relation then
/// offers the paper's atomic operations (§2):
///
///   insert r s t — insert s ∪ t unless a tuple matching s exists
///                  (generalized put-if-absent; returns whether it won);
///   remove r s   — remove the tuple matching key s;
///   query r s C  — project columns C of all tuples extending s.
///
/// Every operation is compiled (lazily, per operation signature) into a
/// plan tailored to the decomposition and placement, executed under
/// two-phase locking in the global lock order: operations are
/// linearizable and deadlock-free by construction (§4.2, §5.1).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_RUNTIME_CONCURRENTRELATION_H
#define CRS_RUNTIME_CONCURRENTRELATION_H

#include "obs/Metrics.h"
#include "plan/Planner.h"
#include "runtime/Interpreter.h"
#include "runtime/Migration.h"
#include "runtime/PlanCache.h"
#include "runtime/Statistics.h"
#include "support/FunctionRef.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace crs {

class PreparedQuery;
class PreparedInsert;
class PreparedRemove;
class Transaction;
class ShardedTransaction;
class WriteAheadLog;
class MvccStore;
namespace detail {
class PreparedOpImpl;

/// One relation's published wiring into an obs::MetricsRegistry:
/// the registry, the relation's base label set, and cached ring
/// pointers for the hot event emitters. Created by attachMetrics,
/// published through an atomic pointer, unpublished + epoch-retired by
/// detachMetrics — readers on the operation paths load it once per
/// operation (one acquire load is the whole cost when detached).
struct RelationObs {
  obs::MetricsRegistry *Reg = nullptr;
  std::string Name;        ///< the `relation` label value
  obs::MetricLabels Labels; ///< base labels ({relation=Name} + extras)
  obs::TraceRing *RelationRing = nullptr;
  obs::TraceRing *TxnRing = nullptr;
  obs::TraceRing *WalRing = nullptr;
  obs::TraceRing *MigrationRing = nullptr;
  std::vector<obs::MetricsRegistry::CallbackId> Callbacks;
};
} // namespace detail

/// Bundles a specification, decomposition, and placement with shared
/// ownership so representations can be built, named, and passed around
/// (the autotuner enumerates hundreds of these).
struct RepresentationConfig {
  std::shared_ptr<const RelationSpec> Spec;
  std::shared_ptr<const Decomposition> Decomp;
  std::shared_ptr<const LockPlacement> Placement;
  std::string Name;
  /// Expected live-tuple cardinality (0 = unknown). Sizes the MVCC
  /// version store's primary hash directory up front
  /// (MvccStore::bucketCountFor) — the directory is fixed for the
  /// store's lifetime, so a relation expected to hold millions of
  /// tuples should say so here rather than degrade into long
  /// intra-bucket chain lists.
  size_t ExpectedCardinality = 0;
};

/// A concurrent relation with a synthesized representation.
class ConcurrentRelation {
public:
  /// Builds a relation over \p Config. Asserts (debug) that the
  /// decomposition is adequate and the placement well-formed and
  /// container-safe; use the validate() entry points to check
  /// programmatically first.
  explicit ConcurrentRelation(RepresentationConfig Config,
                              CostParams CP = {});

  ConcurrentRelation(const ConcurrentRelation &) = delete;
  ConcurrentRelation &operator=(const ConcurrentRelation &) = delete;
  ~ConcurrentRelation(); // out of line: owns the (private) migration state

  /// insert r s t (§2): atomically, if no tuple matches \p S, inserts
  /// S ∪ T and returns true; otherwise returns false. dom(S) and dom(T)
  /// must be disjoint and jointly cover every column.
  bool insert(const Tuple &S, const Tuple &T);

  /// remove r s (§2): atomically removes tuples extending \p S; returns
  /// the number removed. As in the paper's implementation, \p S must be
  /// a key for the relation.
  unsigned remove(const Tuple &S);

  /// query r s C (§2): atomically returns π_C of all tuples extending
  /// \p S (deduplicated).
  std::vector<Tuple> query(const Tuple &S, ColumnSet C) const;

  /// \name Prepared operations (runtime/PreparedOp.h)
  /// The compile-once contract of the paper — operations are compiled
  /// per (op, dom(s), C) signature — hoisted into the API: a prepared
  /// handle resolves its plan once, binds arguments positionally into a
  /// flat per-thread slot frame (no Tuple construction, no interning,
  /// no signature hash per call), and transparently rebinds itself when
  /// adaptPlans() retires its plan. Handles are cheap to copy, shared
  /// across threads, and must not outlive the relation.
  /// @{
  PreparedQuery prepareQuery(ColumnSet DomS, ColumnSet C) const;
  PreparedInsert prepareInsert(ColumnSet DomS);
  PreparedRemove prepareRemove(ColumnSet DomS);
  /// @}

  /// The recompilation epoch: bumped once per adaptPlans() (and per
  /// migration flip), immediately *before* the plan cache is cleared.
  /// Both the bump and this load are seq_cst: together with the epoch
  /// guard held around every plan dereference, a reader whose epoch
  /// check passes inside its guard can never be holding a plan whose
  /// snapshot could reclaim during that guard (see the grace-period
  /// argument in docs/ARCHITECTURE.md).
  uint64_t planEpoch() const {
    return PlanEpoch.load(std::memory_order_seq_cst);
  }

  /// Number of tuples currently in the relation.
  size_t size() const { return Count.load(std::memory_order_relaxed); }

  const RepresentationConfig &config() const { return Config; }
  /// The relation's specification. Stable for the relation's lifetime:
  /// spec() always returns the object the relation was constructed
  /// with, across any number of migrations (migration requires
  /// specification *equality*, so the target's equal-but-distinct spec
  /// object is never surfaced here) — references clients take before a
  /// migration stay valid after it.
  const RelationSpec &spec() const { return *StableSpec; }

  /// The compiled plan text for a query signature (paper §5.2 style).
  std::string explainQuery(ColumnSet DomS, ColumnSet C) const;
  /// The compiled remove plan (locate + write epilogue) for dom(s) = \p
  /// DomS.
  std::string explainRemove(ColumnSet DomS) const;
  /// The compiled insert plan (resolve/lock schedule + put-if-absent
  /// guard + write phase) for dom(s) = \p DomS.
  std::string explainInsert(ColumnSet DomS) const;
  /// The transactional pair for a mutation signature: the forward plan
  /// (insert or remove, per \p Op) and the inverse plan a transaction's
  /// undo log replays on abort, as one annotated transcript
  /// (crs::explainTxn in the plan printer).
  std::string explainTxn(PlanOp Op, ColumnSet DomS) const;

  /// Total speculative / out-of-order transaction restarts so far.
  uint64_t restarts() const { return Restarts.load(std::memory_order_relaxed); }

  /// Plan-cache compilation count (hot-path health: a warmed relation
  /// stops missing entirely). Prepared handles share this cache: a
  /// handle executes with no cache lookup at all while its plan is
  /// current, and a recompile after adaptPlans() counts as a miss
  /// exactly once per signature — the first rebinder compiles, every
  /// other thread and handle on the same signature rebinds onto that
  /// publication as a hit.
  uint64_t planCacheMisses() const { return Plans.misses(); }

  /// Exact plan-cache hit count (striped counter inside the cache — a
  /// per-stripe private line, so counting hits costs no contended
  /// write). hits() / (hits() + misses()) is the exact hit rate; the
  /// old derive-it-from-op-counts estimate is obsolete.
  uint64_t planCacheHits() const { return Plans.hits(); }

  /// Quiescent whole-structure check (tests): every root-to-leaf path
  /// yields the same tuple set, FDs hold, instance keys are consistent.
  /// Must not race with mutations.
  ValidationResult verifyConsistency() const;

  /// Quiescent statistics snapshot: per-edge container occupancy and
  /// per-node lock traffic. Must not race with mutations.
  RelationStatistics collectStatistics() const;

  /// Statistics-driven replanning: recompiles future plans against the
  /// measured per-edge fanouts (the profiling-driven planning of the
  /// DRS line of work). Existing cached plans are discarded. Quiescent
  /// only: concurrent operations may still use the old plans safely,
  /// but the measurement itself must not race with mutations. May be
  /// called during a migration's dual-write phase from a
  /// MigrationObserver callback (migrating thread, representation
  /// stable) — the recompiled mutation plans keep their MirrorWrite
  /// epilogues — but the quiescence requirement still stands there:
  /// the statistics walk must not race with concurrent mutators.
  /// Must not otherwise race with migrateTo().
  void adaptPlans();

  /// \name Live representation migration (runtime/Migration.h)
  /// @{

  /// Hot-swaps the relation onto \p Target under traffic: installs the
  /// target as a shadow, enters a bounded dual-write phase (mutation
  /// plans gain a MirrorWrite epilogue, visible in explain), backfills
  /// the shadow from a snapshot of the source, then retires the source
  /// behind a drain barrier and bumps the plan epoch so every prepared
  /// handle rebinds onto plans for the new decomposition. Blocking:
  /// runs the whole migration on the calling thread (readers and
  /// writers keep flowing throughout; the only stalls are the two
  /// barrier drains). Illegal targets — empty config, different
  /// specification, inadequate decomposition, ill-formed or
  /// container-unsafe placement — are rejected up front with the
  /// relation untouched. Concurrent calls serialize. If an observer
  /// callback or a backfill allocation throws, the exception
  /// propagates and the relation rolls back to serving the source
  /// representation alone (phase Idle, shadow retired, epoch bumped);
  /// no committed operation is lost.
  MigrationResult migrateTo(RepresentationConfig Target,
                            MigrationObserver *Obs = nullptr);

  /// Idle, or DualWrite while a migration is between its two flips.
  MigrationPhase migrationPhase() const {
    return Phase.load(std::memory_order_acquire);
  }

  /// Live statistics snapshot: briefly closes the operation gate (a
  /// stall bounded by the in-flight operations' drain — the same "one
  /// epoch" pause as a migration flip), collects, and reopens. Unlike
  /// collectStatistics(), safe under traffic. Must not be called from
  /// inside an operation (e.g. a forEach visitor).
  RelationStatistics sampleStatistics() const;

  /// Cumulative per-kind operation counts (striped relaxed counters;
  /// the online tuner diffs successive readings for the live mix).
  OperationCounts operationCounts() const {
    return {NumQueries.load(), NumInserts.load(), NumRemoves.load()};
  }

  /// The operation signatures currently compiled in the plan cache —
  /// the shapes a candidate representation must serve well.
  std::vector<PlanCache::Signature> compiledSignatures() const {
    return Plans.signatures();
  }

  /// @}

  /// \name The epoch-protected read fast path
  /// Epoch-eligible query plans (Plan::EpochEligible: read-only, every
  /// traversed container concurrency-safe) execute under an epoch
  /// guard (sync/Epoch.h) with *zero* physical-lock acquisitions and
  /// without touching the operation gate — a pure read on warm traffic
  /// writes no shared cache line at all. The price is the consistency
  /// class: a fast query is weakly consistent, like iterating a
  /// ConcurrentHashMap — every tuple present for the whole query is
  /// observed, concurrent inserts/removes may or may not be. The
  /// locked path retains per-operation atomicity; disable fast reads
  /// to force every query onto it.
  /// @{

  /// Enables/disables the fast path (on by default; benchmarks toggle
  /// it to compare against the locked path). Takes effect on
  /// subsequent queries; in-flight fast queries complete as started.
  void setFastReads(bool Enabled) {
    FastReads.store(Enabled, std::memory_order_seq_cst);
  }
  bool fastReadsEnabled() const {
    return FastReads.load(std::memory_order_seq_cst);
  }

  /// @}

  /// All tuples, via a serializable full scan (test/debug convenience).
  std::vector<Tuple> scanAll() const;

  /// \name Durability (src/wal)
  /// @{

  /// Attaches a write-ahead log: every subsequent committed mutation —
  /// bare or transactional — appends a `(commitSeq, shard, mutations)`
  /// record to \p Log's partition \p Partition *before* releasing its
  /// locks, labeled as shard \p Shard. The log must outlive the
  /// attachment; attach before traffic (the hook is racy only against
  /// in-flight mutations that resolved their plans pre-attach, so an
  /// attach under load may miss a commit — recovery tests attach on a
  /// quiet relation). Detach before destroying the log.
  void attachWal(WriteAheadLog &Log, uint32_t Partition = 0,
                 uint32_t Shard = 0);
  void detachWal() { Wal.store(nullptr, std::memory_order_release); }
  WriteAheadLog *walLog() const {
    return Wal.load(std::memory_order_acquire);
  }
  /// The WAL partition this relation appends to (set at attachWal; 0
  /// otherwise). Checkpointing uses it to drop the partition's log
  /// segments below the new watermark.
  uint32_t walPartition() const { return WalPartition; }

  /// A checkpoint-consistent snapshot: closes the operation gate
  /// (draining every in-flight operation — WAL appends happen inside
  /// the gate, so the drained state is exactly the committed prefix),
  /// reads the commit clock as \p Watermark, and walks the quiescent
  /// structure. Every mutation this relation logged before the call has
  /// commitSeq ≤ Watermark and is reflected in the returned tuples;
  /// every mutation after it has commitSeq > Watermark (wal/Checkpoint.h
  /// replays exactly the records above the watermark on recovery).
  /// Must not be called from inside an operation.
  std::vector<Tuple> checkpointSnapshot(uint64_t &Watermark) const;

  /// @}

  /// \name Observability (src/obs)
  /// @{

  /// Registers this relation with \p Reg under the label
  /// `relation=Name` (plus \p Extra — ShardedRelation adds shard=i):
  /// callbacks for every counter and gauge the relation already keeps
  /// (op counts, size, restarts, plan-cache hits/misses, plan epoch,
  /// MVCC version-store counters, per-cause transaction aborts), plus
  /// the event-ring wiring for migration, checkpoint, transaction, and
  /// version-store events, plus sampled prepared-op latency histograms
  /// keyed per signature. Same contract as attachWal: attach before
  /// traffic, detach (or destroy the relation) before destroying the
  /// registry. The hot-path cost while attached is one acquire load
  /// per operation plus a sampled clock read (MetricsRegistry's
  /// latency sample period); while detached, the single null-check
  /// load is the entire cost.
  void attachMetrics(obs::MetricsRegistry &Reg, std::string Name,
                     obs::MetricLabels Extra = {});
  /// Unregisters the callbacks and unpublishes the wiring. The state
  /// itself is epoch-retired, since concurrent operations may have
  /// loaded the pointer — but like detachWal, detach on a quiet
  /// relation: an in-flight sampled op may still touch the registry an
  /// instant after detach returns.
  void detachMetrics();
  /// The published wiring (null when detached). Internal: the
  /// checkpoint writer and the online tuner use it to reach the rings
  /// and the registry; treat as read-only.
  const detail::RelationObs *observability() const {
    return Obs.load(std::memory_order_acquire);
  }

  /// @}

  /// The relation's MVCC version store (txn/MvccStore.h): committed
  /// per-tuple version chains that transaction scopes read at a
  /// snapshot with zero locks. Identity-keyed, so it survives
  /// migrations unchanged — a scope's snapshot reads the same versions
  /// before and after a migrateTo() swap. Every committed mutation —
  /// bare or transactional — installs here under its 2PL locks inside
  /// a beginCommit()/endCommit() window.
  MvccStore &mvccStore() { return *Mvcc; }
  const MvccStore &mvccStore() const { return *Mvcc; }

  /// Debug lock-order validation: places this relation's acquisitions
  /// in the cross-set domain order (sync/LockOrderValidator.h). The
  /// default ordinal 0 suits a standalone relation; ShardedRelation
  /// numbers its shards so cross-shard transaction scopes are checked
  /// against the shard-index acquisition discipline.
  void setLockDomainOrdinal(uint32_t Ordinal) { LockDomain = Ordinal; }
  uint32_t lockDomainOrdinal() const { return LockDomain; }

private:
  friend class detail::PreparedOpImpl;
  friend class Transaction;
  friend class ShardedTransaction;

  RepresentationConfig Config;
  /// The construction-time spec object, pinned for the relation's
  /// lifetime so spec() references survive migrations (the decomp in
  /// Config references *its own* equal spec, owned by Config.Spec).
  std::shared_ptr<const RelationSpec> StableSpec;
  CostParams BaseCostParams;
  /// Every operation holds the gate from before plan resolution until
  /// after execution; migration flips and sampleStatistics() close it
  /// briefly (see runtime/Migration.h).
  mutable OpGate Gate;
  /// Guards Planner against the adaptPlans swap. Taken only on the cold
  /// compile path and by adaptPlans itself — never on a warm lookup —
  /// and always *inside* a PlanCache shard mutex (adaptPlans releases
  /// it before clearing the cache, so the order never inverts).
  mutable std::mutex PlannerMutex;
  QueryPlanner Planner;
  PlanExecutor Executor;
  NodeInstPtr Root;
  std::atomic<size_t> Count{0};
  mutable std::atomic<uint64_t> Restarts{0};
  /// Cross-set lock-order domain ordinal (debug validator; see
  /// setLockDomainOrdinal).
  uint32_t LockDomain = 0;
  /// Bumped (seq_cst) by adaptPlans() and the migration flips *before*
  /// clearing the cache: the epoch domain's reclamation contract needs
  /// the bump seq_cst-ordered before the snapshot retire, so a reader
  /// whose in-guard epoch check passes can never dereference a
  /// reclaimable plan (see planEpoch()). A racing rebinder can in
  /// principle observe the new epoch and re-resolve an old plan still
  /// published for one instant — benign for adaptPlans (old plans stay
  /// semantically valid, only the cost model moved), and impossible for
  /// migration flips (they run behind the drain barrier).
  std::atomic<uint64_t> PlanEpoch{0};

  /// The epoch-protected read fast path's state. FastRoot mirrors
  /// Root.get() as a plain atomic so lock-free readers can load it
  /// without racing the retirement flip's Root reassignment; FastReads
  /// gates the path — the retirement flip clears it (seq_cst), then
  /// waits out the epoch (synchronize) on top of the gate drain, so no
  /// fast reader is still traversing the old tree when it swaps.
  mutable std::atomic<NodeInstance *> FastRoot{nullptr};
  std::atomic<bool> FastReads{true};

  /// Per-kind operation counters, striped per thread (Statistics.h):
  /// bumped on the shared execution paths — a single shared counter
  /// line would bounce between every operating core, which the
  /// wait-free read path exists to avoid. Backfill's internal
  /// executions are not counted.
  mutable StripedCounter NumQueries;
  StripedCounter NumInserts;
  StripedCounter NumRemoves;

  /// Migration state (runtime/Migration.cpp). ActiveMirror is the sink
  /// mutation executions install into their context: non-null exactly
  /// while the dual-write phase is active. LiveMigration owns it
  /// (concretely a detail::MirrorRep, held through the virtual-dtor
  /// base so the header stays independent of the implementation).
  /// Retired migrations and superseded configurations go to the epoch
  /// domain — retired plan-cache snapshots hold raw pointers into
  /// their decompositions and placements, so both reclaim after a
  /// grace period instead of accumulating for the relation's lifetime
  /// (the pre-epoch design kept them forever).
  std::atomic<MigrationPhase> Phase{MigrationPhase::Idle};
  std::atomic<MirrorSink *> ActiveMirror{nullptr};
  std::unique_ptr<MirrorSink> LiveMigration;
  std::mutex MigrationM; ///< serializes migrateTo calls

  /// Attached write-ahead log (null when durability is off — the single
  /// load on the mutation path is the whole cost of the feature when
  /// detached). WalPartition/WalShard are set at attach time, before
  /// traffic, and read only when Wal is non-null.
  std::atomic<WriteAheadLog *> Wal{nullptr};
  uint32_t WalPartition = 0;
  uint32_t WalShard = 0;

  /// The MVCC version store (see mvccStore()). unique_ptr so the
  /// header stays independent of txn/; constructed with the relation,
  /// never replaced (migrations swap the decomposition, not the store).
  std::unique_ptr<MvccStore> Mvcc;

  // Plans are compiled on first use per (op, dom(s), C) signature;
  // lookups are wait-free (sharded immutable-snapshot cache).
  mutable PlanCache Plans;

  /// Observability wiring (see attachMetrics). Null when detached;
  /// operations load it once (acquire) and skip all recording on null.
  std::atomic<detail::RelationObs *> Obs{nullptr};
  /// Per-cause transaction abort counters, indexed by TxnAbortCause
  /// (txn/Transaction.h — Transaction.cpp static_asserts the arity).
  /// Striped: wait-die kills under contention would otherwise bounce
  /// one shared line between every aborting core.
  static constexpr unsigned NumAbortCauses = 6;
  mutable StripedCounter AbortCounts[NumAbortCauses];

  const Plan *queryPlanFor(ColumnSet DomS, ColumnSet C) const;
  const Plan *removePlanFor(ColumnSet DomS) const;
  const Plan *insertPlanFor(ColumnSet DomS) const;
  /// Transaction-support plans (src/txn): the exclusive-mode read plan
  /// per (dom(s), C) signature, and the two inverse plans (one each per
  /// relation — both key on the full tuple) a transaction's undo log
  /// replays on abort. Cached like every other signature.
  const Plan *queryForUpdatePlanFor(ColumnSet DomS, ColumnSet C) const;
  const Plan *undoInsertPlan() const;
  const Plan *undoRemovePlan() const;
  /// Signature-keyed dispatch over the three compile paths (prepared
  /// handles rebinding after adaptPlans()).
  const Plan *resolvePlan(PlanOp Op, ColumnSet DomS, ColumnSet C) const;

  /// The shared execution paths: both the legacy Tuple-based methods
  /// and the prepared handles funnel into these (the legacy API is a
  /// thin wrapper that still builds tuples and hashes a signature; the
  /// prepared path arrives here with a pre-resolved plan and the
  /// thread's rebound input scratch).
  ///
  /// runQueryPlan executes \p P with input \p Input, releases the locks
  /// (shrinking phase), then streams every matching state's full tuple
  /// — domain ⊇ dom(s) ∪ C, *not* projected, possibly with duplicate
  /// projections — to \p Visit before recycling the context. Returns
  /// the number of states visited. The visitor must not execute
  /// relation operations on the same thread (asserted in debug).
  uint32_t runQueryPlan(const Plan &P, const Tuple &Input,
                        function_ref<void(const Tuple &)> Visit) const;
  bool runInsertPlan(const Plan &P, const Tuple &Full);
  unsigned runRemovePlan(const Plan &P, const Tuple &S);

  /// The wait-free read fast path. tryFastQuery enters an epoch guard,
  /// checks the fast-reads flag, resolves the plan via \p Resolve
  /// (inside the guard — plan snapshots reclaim on quiescence), and —
  /// when the plan is epoch-eligible — executes it lock-free via
  /// runFastQueryPlan, returning true. Returns false (no execution,
  /// nothing counted) when the flag is down or the plan needs locks;
  /// the caller then runs the locked path, gate first, *outside* any
  /// guard held here — a reader pinning an epoch while blocked on a
  /// closed gate would deadlock the retirement flip's synchronize.
  bool tryFastQuery(function_ref<const Plan *()> Resolve,
                    const Tuple &Input,
                    function_ref<void(const Tuple &)> Visit,
                    uint32_t *Matches) const;
  uint32_t runFastQueryPlan(const Plan &P, const Tuple &Input,
                            function_ref<void(const Tuple &)> Visit) const;
};

} // namespace crs

#endif // CRS_RUNTIME_CONCURRENTRELATION_H
