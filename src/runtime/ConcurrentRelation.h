//===- runtime/ConcurrentRelation.h - The public relation API --*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthesized concurrent relation — the library's primary public
/// type. Construct one from a relational specification, an adequate
/// decomposition, and a well-formed lock placement; the relation then
/// offers the paper's atomic operations (§2):
///
///   insert r s t — insert s ∪ t unless a tuple matching s exists
///                  (generalized put-if-absent; returns whether it won);
///   remove r s   — remove the tuple matching key s;
///   query r s C  — project columns C of all tuples extending s.
///
/// Every operation is compiled (lazily, per operation signature) into a
/// plan tailored to the decomposition and placement, executed under
/// two-phase locking in the global lock order: operations are
/// linearizable and deadlock-free by construction (§4.2, §5.1).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_RUNTIME_CONCURRENTRELATION_H
#define CRS_RUNTIME_CONCURRENTRELATION_H

#include "plan/Planner.h"
#include "runtime/Interpreter.h"
#include "runtime/PlanCache.h"
#include "runtime/Statistics.h"

#include <atomic>
#include <memory>
#include <mutex>

namespace crs {

/// Bundles a specification, decomposition, and placement with shared
/// ownership so representations can be built, named, and passed around
/// (the autotuner enumerates hundreds of these).
struct RepresentationConfig {
  std::shared_ptr<const RelationSpec> Spec;
  std::shared_ptr<const Decomposition> Decomp;
  std::shared_ptr<const LockPlacement> Placement;
  std::string Name;
};

/// A concurrent relation with a synthesized representation.
class ConcurrentRelation {
public:
  /// Builds a relation over \p Config. Asserts (debug) that the
  /// decomposition is adequate and the placement well-formed and
  /// container-safe; use the validate() entry points to check
  /// programmatically first.
  explicit ConcurrentRelation(RepresentationConfig Config,
                              CostParams CP = {});

  ConcurrentRelation(const ConcurrentRelation &) = delete;
  ConcurrentRelation &operator=(const ConcurrentRelation &) = delete;

  /// insert r s t (§2): atomically, if no tuple matches \p S, inserts
  /// S ∪ T and returns true; otherwise returns false. dom(S) and dom(T)
  /// must be disjoint and jointly cover every column.
  bool insert(const Tuple &S, const Tuple &T);

  /// remove r s (§2): atomically removes tuples extending \p S; returns
  /// the number removed. As in the paper's implementation, \p S must be
  /// a key for the relation.
  unsigned remove(const Tuple &S);

  /// query r s C (§2): atomically returns π_C of all tuples extending
  /// \p S (deduplicated).
  std::vector<Tuple> query(const Tuple &S, ColumnSet C) const;

  /// Number of tuples currently in the relation.
  size_t size() const { return Count.load(std::memory_order_relaxed); }

  const RepresentationConfig &config() const { return Config; }
  const RelationSpec &spec() const { return *Config.Spec; }

  /// The compiled plan text for a query signature (paper §5.2 style).
  std::string explainQuery(ColumnSet DomS, ColumnSet C) const;
  /// The compiled remove plan (locate + write epilogue) for dom(s) = \p
  /// DomS.
  std::string explainRemove(ColumnSet DomS) const;
  /// The compiled insert plan (resolve/lock schedule + put-if-absent
  /// guard + write phase) for dom(s) = \p DomS.
  std::string explainInsert(ColumnSet DomS) const;

  /// Total speculative / out-of-order transaction restarts so far.
  uint64_t restarts() const { return Restarts.load(std::memory_order_relaxed); }

  /// Plan-cache compilation count (hot-path health: a warmed relation
  /// stops missing entirely — hits are deliberately not counted, since
  /// a per-lookup counter would put a shared write on every operation;
  /// derive hit rate as 1 − misses/ops from your own op count).
  uint64_t planCacheMisses() const { return Plans.misses(); }

  /// Quiescent whole-structure check (tests): every root-to-leaf path
  /// yields the same tuple set, FDs hold, instance keys are consistent.
  /// Must not race with mutations.
  ValidationResult verifyConsistency() const;

  /// Quiescent statistics snapshot: per-edge container occupancy and
  /// per-node lock traffic. Must not race with mutations.
  RelationStatistics collectStatistics() const;

  /// Statistics-driven replanning: recompiles future plans against the
  /// measured per-edge fanouts (the profiling-driven planning of the
  /// DRS line of work). Existing cached plans are discarded. Quiescent
  /// only: concurrent operations may still use the old plans safely,
  /// but the measurement itself must not race with mutations.
  void adaptPlans();

  /// All tuples, via a serializable full scan (test/debug convenience).
  std::vector<Tuple> scanAll() const;

private:
  RepresentationConfig Config;
  CostParams BaseCostParams;
  /// Guards Planner against the adaptPlans swap. Taken only on the cold
  /// compile path and by adaptPlans itself — never on a warm lookup —
  /// and always *inside* a PlanCache shard mutex (adaptPlans releases
  /// it before clearing the cache, so the order never inverts).
  mutable std::mutex PlannerMutex;
  QueryPlanner Planner;
  PlanExecutor Executor;
  NodeInstPtr Root;
  std::atomic<size_t> Count{0};
  mutable std::atomic<uint64_t> Restarts{0};

  // Plans are compiled on first use per (op, dom(s), C) signature;
  // lookups are wait-free (sharded immutable-snapshot cache).
  mutable PlanCache Plans;

  const Plan *queryPlanFor(ColumnSet DomS, ColumnSet C) const;
  const Plan *removePlanFor(ColumnSet DomS) const;
  const Plan *insertPlanFor(ColumnSet DomS) const;
};

} // namespace crs

#endif // CRS_RUNTIME_CONCURRENTRELATION_H
