//===- runtime/AnyContainer.h - Type-erased edge containers ----*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decomposition edges are implemented by containers chosen at
/// representation-construction time (ds(uv), §4.1). AnyContainer
/// type-erases the container templates of src/containers instantiated
/// with Tuple keys (the valuation of cols(uv)) and node-instance values,
/// so the runtime can pick any kind per edge dynamically — exactly what
/// the autotuner needs.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_RUNTIME_ANYCONTAINER_H
#define CRS_RUNTIME_ANYCONTAINER_H

#include "containers/ContainerTraits.h"
#include "rel/Tuple.h"
#include "support/FunctionRef.h"

#include <memory>

namespace crs {

struct NodeInstance;
using NodeInstPtr = std::shared_ptr<NodeInstance>;

/// Abstract associative container from edge-column valuations to node
/// instances. Thread-safety follows the wrapped kind's taxonomy entry
/// (Figure 1); the lock placement is responsible for serializing access
/// to non-concurrent kinds.
class AnyContainer {
public:
  virtual ~AnyContainer() = default;

  /// Returns true and sets \p Out if \p Key is present.
  virtual bool lookup(const Tuple &Key, NodeInstPtr &Out) const = 0;

  /// Inserts or replaces; returns true if newly inserted.
  virtual bool insertOrAssign(const Tuple &Key, NodeInstPtr Val) = 0;

  /// Removes; returns true if the key was present.
  virtual bool erase(const Tuple &Key) = 0;

  /// Visits entries (sorted-by-key iff the kind's traits say so); the
  /// visitor returns false to stop early.
  virtual void
  scan(function_ref<bool(const Tuple &, const NodeInstPtr &)> Visit) const = 0;

  virtual size_t size() const = 0;
  virtual ContainerKind kind() const = 0;

  /// Factory: builds a container of the given kind.
  static std::unique_ptr<AnyContainer> create(ContainerKind Kind);
};

} // namespace crs

#endif // CRS_RUNTIME_ANYCONTAINER_H
