//===- runtime/ConcurrentRelation.cpp - The public relation API ---------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Operation protocols (see DESIGN.md for the full argument):
///
/// * query: compiled by the query planner (§5); executed with shared
///   locks; speculative statements may request a transaction restart.
///
/// * remove: one plan — the locate traversal walking every edge under
///   exclusive locks (§5.2) followed by EraseEdge statements removing
///   the matched tuple's entries bottom-up with cascading husk
///   (empty-instance) cleanup, and the count adjustment.
///
/// * insert: one plan — a topological Probe/Lock schedule resolving
///   existing instances with the full tuple and acquiring every needed
///   stripe exclusively in global lock order (including the §4.5
///   present-target duty of speculative edges), the s-driven
///   put-if-absent membership check behind a Restrict/GuardAbsent pair
///   (§2), and a CreateNode/InsertEdge write phase unifying shared
///   nodes.
///
/// All three execute through the same PlanExecutor on planner-emitted,
/// validity-checked IR, using a reusable per-thread ExecContext; plans
/// come from a sharded wait-free-read cache. The legacy Tuple-based
/// methods and the prepared handles (runtime/PreparedOp.h) are both
/// thin wrappers over the shared run*Plan paths below — the prepared
/// path just arrives with its plan pre-resolved and its input rebound
/// in the thread's scratch tuple.
///
//===----------------------------------------------------------------------===//

#include "runtime/ConcurrentRelation.h"

#include "support/Compiler.h"
#include "sync/CommitClock.h"
#include "txn/MvccStore.h"
#include "wal/Wal.h"

#include <algorithm>
#include <functional>
#include <thread>

using namespace crs;

ConcurrentRelation::ConcurrentRelation(RepresentationConfig Cfg,
                                       CostParams CP)
    : Config(std::move(Cfg)), StableSpec(Config.Spec), BaseCostParams(CP),
      Planner(*Config.Decomp, *Config.Placement, CP),
      Executor(*Config.Decomp, *Config.Placement) {
  [[maybe_unused]] ValidationResult DecompOk = Config.Decomp->validate();
  assert(DecompOk.ok() && "decomposition must be adequate");
  [[maybe_unused]] ValidationResult PlaceOk = Config.Placement->validate();
  assert(PlaceOk.ok() && "lock placement must be well-formed");
  [[maybe_unused]] ValidationResult SafeOk =
      Config.Placement->validateContainerSafety();
  assert(SafeOk.ok() && "container choices must match the placement");

  const Decomposition &D = *Config.Decomp;
  Root = NodeInstance::create(D, D.root(), Tuple(),
                              Config.Placement->nodeStripes(D.root()));
  FastRoot.store(Root.get(), std::memory_order_seq_cst);
  Mvcc = std::make_unique<MvccStore>(
      spec(), MvccStore::bucketCountFor(Config.ExpectedCardinality));
}

// Per-operation lock/frame lifetime is ExecContext::OpScope
// (runtime/Interpreter.h), shared with the migration engine's mirror
// and backfill executions.
using OpScope = ExecContext::OpScope;

// Compile lambdas stamp the plan with the recompilation epoch observed
// under PlannerMutex: adaptPlans() swaps the planner while holding the
// same mutex and bumps the epoch only afterwards, so a plan stamped
// with the new epoch was necessarily produced by the new planner.
const Plan *ConcurrentRelation::queryPlanFor(ColumnSet DomS,
                                             ColumnSet C) const {
  return Plans.getOrCompile(PlanOp::Query, DomS.bits(), C.bits(), [&] {
    std::lock_guard<std::mutex> Guard(PlannerMutex);
    Plan P = Planner.planQuery(DomS, C);
    P.Epoch = PlanEpoch.load(std::memory_order_relaxed);
    // A compiled query signature is the declaration that the relation
    // serves this access path: give the version store the same one, so
    // snapshot reads binding DomS walk a secondary chain directory
    // instead of the whole store. Cold path — once per signature.
    Mvcc->ensureDirectory(DomS);
    return P;
  });
}

const Plan *ConcurrentRelation::removePlanFor(ColumnSet DomS) const {
  return Plans.getOrCompile(PlanOp::Remove, DomS.bits(), 0, [&] {
    std::lock_guard<std::mutex> Guard(PlannerMutex);
    Plan P = Planner.planRemove(DomS);
    P.Epoch = PlanEpoch.load(std::memory_order_relaxed);
    return P;
  });
}

const Plan *ConcurrentRelation::insertPlanFor(ColumnSet DomS) const {
  return Plans.getOrCompile(PlanOp::Insert, DomS.bits(), 0, [&] {
    std::lock_guard<std::mutex> Guard(PlannerMutex);
    Plan P = Planner.planInsert(DomS);
    P.Epoch = PlanEpoch.load(std::memory_order_relaxed);
    return P;
  });
}

const Plan *ConcurrentRelation::queryForUpdatePlanFor(ColumnSet DomS,
                                                      ColumnSet C) const {
  return Plans.getOrCompile(PlanOp::QueryForUpdate, DomS.bits(), C.bits(),
                            [&] {
                              std::lock_guard<std::mutex> Guard(PlannerMutex);
                              Plan P = Planner.planQueryForUpdate(DomS, C);
                              P.Epoch =
                                  PlanEpoch.load(std::memory_order_relaxed);
                              // Same signature surfacing as queryPlanFor:
                              // a for-update read shape is a shape
                              // snapshot reads will serve too.
                              Mvcc->ensureDirectory(DomS);
                              return P;
                            });
}

const Plan *ConcurrentRelation::undoInsertPlan() const {
  ColumnSet All = spec().allColumns();
  return Plans.getOrCompile(PlanOp::UndoInsert, All.bits(), 0, [&] {
    std::lock_guard<std::mutex> Guard(PlannerMutex);
    Plan P = Planner.planUndoInsert();
    P.Epoch = PlanEpoch.load(std::memory_order_relaxed);
    return P;
  });
}

const Plan *ConcurrentRelation::undoRemovePlan() const {
  ColumnSet All = spec().allColumns();
  return Plans.getOrCompile(PlanOp::UndoRemove, All.bits(), 0, [&] {
    std::lock_guard<std::mutex> Guard(PlannerMutex);
    Plan P = Planner.planUndoRemove();
    P.Epoch = PlanEpoch.load(std::memory_order_relaxed);
    return P;
  });
}

const Plan *ConcurrentRelation::resolvePlan(PlanOp Op, ColumnSet DomS,
                                            ColumnSet C) const {
  switch (Op) {
  case PlanOp::Query:
    return queryPlanFor(DomS, C);
  case PlanOp::Insert:
    return insertPlanFor(DomS);
  case PlanOp::Remove:
    return removePlanFor(DomS);
  case PlanOp::QueryForUpdate:
    return queryForUpdatePlanFor(DomS, C);
  case PlanOp::UndoInsert:
    return undoInsertPlan();
  case PlanOp::UndoRemove:
    return undoRemovePlan();
  case PlanOp::RemoveLocate:
    break;
  }
  assert(false && "unpreparable operation");
  return nullptr;
}

// Explain paths hold an epoch guard across resolve + render: plan
// snapshots reclaim on quiescence, so any dereference of a cached plan
// must pin the epoch (the same rule as the execution paths).
std::string ConcurrentRelation::explainQuery(ColumnSet DomS,
                                             ColumnSet C) const {
  EpochDomain::Guard EG;
  return queryPlanFor(DomS, C)->str();
}

std::string ConcurrentRelation::explainRemove(ColumnSet DomS) const {
  EpochDomain::Guard EG;
  return removePlanFor(DomS)->str();
}

std::string ConcurrentRelation::explainInsert(ColumnSet DomS) const {
  EpochDomain::Guard EG;
  return insertPlanFor(DomS)->str();
}

std::string ConcurrentRelation::explainTxn(PlanOp Op, ColumnSet DomS) const {
  assert((Op == PlanOp::Insert || Op == PlanOp::Remove) &&
         "explainTxn takes a mutation kind");
  EpochDomain::Guard EG;
  const Plan *Forward =
      Op == PlanOp::Insert ? insertPlanFor(DomS) : removePlanFor(DomS);
  const Plan *Inverse =
      Op == PlanOp::Insert ? undoInsertPlan() : undoRemovePlan();
  return crs::explainTxn(*Forward, *Inverse);
}

uint32_t
ConcurrentRelation::runQueryPlan(const Plan &P, const Tuple &Input,
                                 function_ref<void(const Tuple &)> Visit) const {
  assert(EpochDomain::global().inGuard() &&
         "plan execution requires an epoch guard (snapshots reclaim)");
  NumQueries.inc();
  ExecContext &Ctx = ExecContext::current();
  Ctx.Locks.setOrderDomain(0, LockDomain);
  for (unsigned Attempt = 0;; ++Attempt) {
    OpScope Scope(Ctx);
    if (Executor.run(P, Input, Root, Ctx) == ExecStatus::Ok) {
      // Shrinking phase: release while the context still pins the read
      // instances, then stream the result states — the tuples are arena
      // copies, so visiting after the unlock keeps hold times short and
      // lets callers aggregate without a result vector.
      Ctx.Locks.releaseAll();
      uint32_t N = Ctx.numStates(P.ResultVar);
      for (uint32_t I = 0; I < N; ++I)
        Visit(Ctx.stateTuple(P.ResultVar, I));
      return N; // Scope recycles the frames
    }
    // Speculation failed (wrong guess or out-of-order conflict): release
    // everything (OpScope) and retry; yield under pressure.
    Scope.finish();
    Restarts.fetch_add(1, std::memory_order_relaxed);
    if (Attempt >= 16)
      std::this_thread::yield();
  }
}

unsigned ConcurrentRelation::runRemovePlan(const Plan &P, const Tuple &S) {
  assert(EpochDomain::global().inGuard() &&
         "plan execution requires an epoch guard (snapshots reclaim)");
  NumRemoves.inc();
  ExecContext &Ctx = ExecContext::current();
  Ctx.Locks.setOrderDomain(0, LockDomain);
  Ctx.Count = &Count;
  // Dual-write: plans compiled during a migration carry a MirrorWrite
  // epilogue that replays the committed mutation into this sink.
  Ctx.Mirror = ActiveMirror.load(std::memory_order_acquire);
  OpScope Scope(Ctx);
  [[maybe_unused]] ExecStatus St = Executor.run(P, S, Root, Ctx);
  assert(St == ExecStatus::Ok && "mutation plans never speculate");
  uint32_t Matched = Ctx.numStates(P.ResultVar);
  assert(Matched <= 1 && "key-matched remove found multiple tuples");
  // Commit stamping before any lock is released: the scope still holds
  // every lock the plan took, so the MVCC version install and the WAL
  // partition's append order both follow the serialization order
  // (wal/Wal.h ordering contract). The beginCommit/endCommit window
  // keeps concurrent snapshot acquisition below this sequence until
  // the version is in the store. Transactional executions never reach
  // this path — they run the executor directly and commit per scope.
  if (Matched) {
    Tuple Full =
        Ctx.stateTuple(P.ResultVar, 0).project(spec().allColumns());
    CommitTicket T = beginCommit();
    Mvcc->installRemove(Full, T.Seq);
    if (WriteAheadLog *W = Wal.load(std::memory_order_acquire))
      W->logCommit(WalPartition, T.Seq, WalShard, WalOp::Remove, Full);
    endCommit(T);
  }
  // Shrinking phase (OpScope): release while the context still pins the
  // unlinked instances — their physical locks must outlive the unlock.
  return Matched;
}

bool ConcurrentRelation::runInsertPlan(const Plan &P, const Tuple &Full) {
  assert(EpochDomain::global().inGuard() &&
         "plan execution requires an epoch guard (snapshots reclaim)");
  NumInserts.inc();
  ExecContext &Ctx = ExecContext::current();
  Ctx.Locks.setOrderDomain(0, LockDomain);
  Ctx.Count = &Count;
  Ctx.Mirror = ActiveMirror.load(std::memory_order_acquire);
  OpScope Scope(Ctx);
  ExecStatus St = Executor.run(P, Full, Root, Ctx);
  // Insert plans never speculate (the §4.5 writer protocol takes
  // blocking, in-order locks), so like remove there is no retry loop.
  assert(St != ExecStatus::Restart && "mutation plans never speculate");
  // Commit stamping under the plan's locks (see runRemovePlan); only a
  // winning put-if-absent mutated anything worth a version or record.
  if (St == ExecStatus::Ok) {
    CommitTicket T = beginCommit();
    Mvcc->installInsert(Full, T.Seq);
    if (WriteAheadLog *W = Wal.load(std::memory_order_acquire))
      W->logCommit(WalPartition, T.Seq, WalShard, WalOp::Insert, Full);
    endCommit(T);
  }
  return St == ExecStatus::Ok; // Found: a tuple matching s exists
}

bool ConcurrentRelation::tryFastQuery(
    function_ref<const Plan *()> Resolve, const Tuple &Input,
    function_ref<void(const Tuple &)> Visit, uint32_t *Matches) const {
  EpochDomain::Guard EG;
  // Flag check *inside* the guard: the retirement flip clears the flag
  // (seq_cst) and then synchronizes the epoch, so either this load sees
  // the clear (fall back to the locked path) or the flip's synchronize
  // waits for this guard to exit before touching the representation.
  if (!FastReads.load(std::memory_order_seq_cst))
    return false;
  const Plan *P = Resolve();
  if (!P->EpochEligible)
    return false;
  uint32_t N = runFastQueryPlan(*P, Input, Visit);
  if (Matches)
    *Matches = N;
  return true;
}

uint32_t ConcurrentRelation::runFastQueryPlan(
    const Plan &P, const Tuple &Input,
    function_ref<void(const Tuple &)> Visit) const {
  assert(P.EpochEligible && !P.ForMutation &&
         "the fast path requires an epoch-eligible query plan");
  assert(EpochDomain::global().inGuard() &&
         "the fast path runs entirely inside an epoch guard");
  NumQueries.inc();
  ExecContext &Ctx = ExecContext::current();
  OpScope Scope(Ctx);
  Ctx.LockFree = true;
  // Non-owning alias of the published root: a refcount bump on the
  // root's control block would be one shared RMW per query, the very
  // line this path removes. The epoch guard keeps the whole tree alive
  // — the retirement flip synchronizes before dropping it. Interior
  // instances are still pinned by owning copies the container lookups
  // hand out, so a concurrently removed instance outlives its visit.
  NodeInstPtr RootAlias(std::shared_ptr<NodeInstance>(),
                        FastRoot.load(std::memory_order_seq_cst));
  [[maybe_unused]] ExecStatus St =
      Executor.run(P, Input, std::move(RootAlias), Ctx);
  assert(St == ExecStatus::Ok && "lock-free query plans cannot restart");
  uint32_t N = Ctx.numStates(P.ResultVar);
  for (uint32_t I = 0; I < N; ++I)
    Visit(Ctx.stateTuple(P.ResultVar, I));
  return N; // Scope recycles the frames
}

// The locked operations hold the gate from before plan resolution
// until after execution: a migration flip that closes the gate is
// therefore atomic with respect to entire operations — none can
// resolve a plan under one representation regime and execute it under
// the next (runtime/Migration.h). The epoch guard nests *inside* the
// gate (never the reverse): blocking on a closed gate while pinning an
// epoch would deadlock the flip's synchronize.
std::vector<Tuple> ConcurrentRelation::query(const Tuple &S,
                                             ColumnSet C) const {
  std::vector<Tuple> Out;
  auto Push = [&](const Tuple &T) { Out.push_back(T.project(C)); };
  if (!tryFastQuery([&] { return queryPlanFor(S.domain(), C); }, S, Push,
                    nullptr)) {
    OpGate::Scope G(Gate);
    EpochDomain::Guard EG;
    runQueryPlan(*queryPlanFor(S.domain(), C), S, Push);
  }
  std::sort(Out.begin(), Out.end(), TupleLess());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

unsigned ConcurrentRelation::remove(const Tuple &S) {
  OpGate::Scope G(Gate);
  EpochDomain::Guard EG;
  // Asserted inside the gate: spec() reads Config, which a migration's
  // retirement flip reassigns behind the gate barrier — an out-of-gate
  // read would race the flip (caught by TSan under legacy-op traffic).
  assert(spec().isKey(S.domain()) &&
         "remove requires s to be a key (paper §2)");
  return runRemovePlan(*removePlanFor(S.domain()), S);
}

bool ConcurrentRelation::insert(const Tuple &S, const Tuple &T) {
  assert(!S.domain().intersects(T.domain()) &&
         "insert requires disjoint s and t domains (paper §2)");
  Tuple Full = S.unionWith(T);
  OpGate::Scope G(Gate);
  EpochDomain::Guard EG;
  // Inside the gate for the same reason as remove's key assert.
  assert(Full.domain() == spec().allColumns() &&
         "inserted tuple must value every column");
  return runInsertPlan(*insertPlanFor(S.domain()), Full);
}

/// One quiescent traversal step (consistency checking): extends each
/// walk state across edge \p E by lookup (key bound) or scan, joining
/// against bound columns.
namespace {
struct WalkState {
  Tuple T;
  std::vector<NodeInstPtr> Bound;
};
} // namespace

static void stepStates(const Decomposition &D, EdgeId E,
                       std::vector<WalkState> &States) {
  const auto &Edge = D.edge(E);
  std::vector<WalkState> Out;
  for (WalkState &State : States) {
    const NodeInstPtr &Inst = State.Bound[Edge.Src];
    if (!Inst)
      continue;
    const AnyContainer &Container = Inst->containerFor(E);
    if (State.T.domain().containsAll(Edge.Cols)) {
      NodeInstPtr Found;
      if (!Container.lookup(State.T.project(Edge.Cols), Found))
        continue;
      WalkState NewState = std::move(State);
      NewState.Bound[Edge.Dst] = std::move(Found);
      Out.push_back(std::move(NewState));
    } else {
      Container.scan([&](const Tuple &Key, const NodeInstPtr &Val) {
        Tuple Joined;
        if (!State.T.tryJoin(Key, Joined))
          return true;
        WalkState NewState;
        NewState.T = std::move(Joined);
        NewState.Bound = State.Bound;
        NewState.Bound[Edge.Dst] = Val;
        Out.push_back(std::move(NewState));
        return true;
      });
    }
  }
  States = std::move(Out);
}

std::vector<Tuple> ConcurrentRelation::scanAll() const {
  return query(Tuple(), spec().allColumns());
}

void ConcurrentRelation::attachWal(WriteAheadLog &Log, uint32_t Partition,
                                   uint32_t Shard) {
  assert(Partition < Log.partitions() && "partition out of range");
  WalPartition = Partition;
  WalShard = Shard;
  // Store last: the mutation paths load Wal with acquire and read the
  // partition/shard fields only behind a non-null result.
  Wal.store(&Log, std::memory_order_release);
}

void ConcurrentRelation::attachMetrics(obs::MetricsRegistry &Reg,
                                       std::string Name,
                                       obs::MetricLabels Extra) {
  detachMetrics(); // re-attach replaces the previous wiring
  auto *OS = new detail::RelationObs;
  OS->Reg = &Reg;
  OS->Name = std::move(Name);
  OS->Labels.emplace_back("relation", OS->Name);
  for (auto &L : Extra)
    OS->Labels.push_back(std::move(L));
  OS->RelationRing = &Reg.ring(obs::EventDomain::Relation);
  OS->TxnRing = &Reg.ring(obs::EventDomain::Txn);
  OS->WalRing = &Reg.ring(obs::EventDomain::Wal);
  OS->MigrationRing = &Reg.ring(obs::EventDomain::Migration);

  // Everything below is a callback over a counter the relation already
  // keeps — attaching adds no new hot-path write anywhere; the registry
  // reads these at snapshot time only. The callbacks capture `this` and
  // are removed in detachMetrics()/the destructor, so they never
  // outlive the relation.
  using CK = obs::MetricsRegistry::CallbackKind;
  const obs::MetricLabels &L = OS->Labels;
  auto Add = [&](const char *N, CK Kind, std::function<uint64_t()> Fn) {
    OS->Callbacks.push_back(Reg.addCallback(N, L, Kind, std::move(Fn)));
  };
  Add("relation.queries", CK::Counter, [this] { return NumQueries.load(); });
  Add("relation.inserts", CK::Counter, [this] { return NumInserts.load(); });
  Add("relation.removes", CK::Counter, [this] { return NumRemoves.load(); });
  Add("relation.restarts", CK::Counter,
      [this] { return Restarts.load(std::memory_order_relaxed); });
  Add("relation.size", CK::Gauge, [this] { return uint64_t(size()); });
  Add("relation.plan_epoch", CK::Gauge, [this] { return planEpoch(); });
  Add("relation.plan_cache.hits", CK::Counter,
      [this] { return Plans.hits(); });
  Add("relation.plan_cache.misses", CK::Counter,
      [this] { return Plans.misses(); });
  Add("relation.mvcc.versions_installed", CK::Counter,
      [this] { return Mvcc->installed(); });
  Add("relation.mvcc.versions_retired", CK::Counter,
      [this] { return Mvcc->retired(); });
  Add("relation.mvcc.remove_noops", CK::Counter,
      [this] { return Mvcc->removeNoops(); });
  Add("relation.mvcc.live_versions", CK::Gauge,
      [this] { return Mvcc->liveVersions(); });
  Add("relation.mvcc.directories", CK::Gauge,
      [this] { return uint64_t(Mvcc->directoryCount()); });
  Add("relation.mvcc.directories_retired", CK::Counter,
      [this] { return Mvcc->directoriesRetired(); });
  static const char *CauseNames[NumAbortCauses] = {
      "none", "conflict", "upgrade", "epoch_change", "gate_busy", "user"};
  for (unsigned C = 1; C < NumAbortCauses; ++C) { // cause 0 = None: no abort
    obs::MetricLabels CL = L;
    CL.emplace_back("cause", CauseNames[C]);
    OS->Callbacks.push_back(
        Reg.addCallback("txn.aborts", CL, CK::Counter,
                        [this, C] { return AbortCounts[C].load(); }));
  }

  Mvcc->attachTrace(OS->RelationRing);
  Obs.store(OS, std::memory_order_seq_cst);
}

void ConcurrentRelation::detachMetrics() {
  detail::RelationObs *OS = Obs.exchange(nullptr, std::memory_order_seq_cst);
  if (!OS)
    return;
  Mvcc->attachTrace(nullptr);
  OS->Reg->removeCallbacks(OS->Callbacks);
  // Operations load Obs without a lock; an in-flight op may still hold
  // the pointer, so the state reclaims after the grace period (the
  // attach-on-a-quiet-relation contract makes this belt-and-braces).
  EpochDomain::global().retireObject(OS);
}

std::vector<Tuple>
ConcurrentRelation::checkpointSnapshot(uint64_t &Watermark) const {
  // The barrier closes the gate and drains every in-flight operation.
  // Mutations append their WAL record while inside the gate (the hooks
  // above run under the op scope, which holds the gate throughout), so
  // once the drain completes, everything this relation will ever log
  // with commitSeq ≤ the clock reading below is already both applied to
  // the structure and appended to the log; everything after the barrier
  // stamps a higher sequence. That makes the walk + watermark pair a
  // consistent cut of the commit order.
  OpGate::Barrier B(Gate);
  Watermark = commitClockNow();

  // Quiescent first-path walk — scanAll() would re-enter the gate the
  // barrier just closed. Any single root-to-leaf path yields the full
  // represented relation (adequacy; verifyConsistency checks they all
  // agree), so follow first out-edges only.
  const Decomposition &D = *Config.Decomp;
  std::vector<WalkState> States;
  WalkState Init;
  Init.Bound.resize(D.numNodes());
  Init.Bound[D.root()] = Root;
  States.push_back(std::move(Init));
  for (NodeId N = D.root(); !D.node(N).OutEdges.empty();) {
    EdgeId E = D.node(N).OutEdges.front();
    stepStates(D, E, States);
    N = D.edge(E).Dst;
  }
  std::vector<Tuple> Out;
  Out.reserve(States.size());
  for (const WalkState &St : States)
    Out.push_back(St.T.project(spec().allColumns()));
  return Out;
}

/// Visits every live node instance exactly once (quiescent walk).
static void forEachInstance(
    const Decomposition &D, const NodeInstPtr &Root,
    const std::function<void(NodeId, const NodeInstance &)> &Visit) {
  std::vector<const NodeInstance *> Seen;
  std::function<void(NodeId, const NodeInstPtr &)> Walk =
      [&](NodeId N, const NodeInstPtr &Inst) {
        if (std::find(Seen.begin(), Seen.end(), Inst.get()) != Seen.end())
          return;
        Seen.push_back(Inst.get());
        Visit(N, *Inst);
        for (EdgeId E : D.node(N).OutEdges)
          Inst->containerFor(E).scan(
              [&](const Tuple &, const NodeInstPtr &Child) {
                Walk(D.edge(E).Dst, Child);
                return true;
              });
      };
  Walk(D.root(), Root);
}

RelationStatistics ConcurrentRelation::collectStatistics() const {
  const Decomposition &D = *Config.Decomp;
  RelationStatistics Stats;
  Stats.Edges.resize(D.numEdges());
  Stats.Nodes.resize(D.numNodes());
  forEachInstance(D, Root, [&](NodeId N, const NodeInstance &Inst) {
    ++Stats.NodeInstances;
    NodeLockTraffic &Traffic = Stats.Nodes[N];
    ++Traffic.Instances;
    for (uint32_t I = 0; I < Inst.NumStripes; ++I) {
      Traffic.Acquisitions += Inst.Stripes[I].acquisitions();
      Traffic.Contentions += Inst.Stripes[I].contentions();
    }
    for (EdgeId E : D.node(N).OutEdges) {
      EdgeOccupancy &Occ = Stats.Edges[E];
      ++Occ.Containers;
      Occ.Entries += Inst.containerFor(E).size();
    }
  });
  return Stats;
}

void ConcurrentRelation::adaptPlans() {
  // The measurement itself is quiescent-only (header contract), but
  // concurrent operations may keep using old plans safely: the swap is
  // serialized against cold compiles by PlannerMutex (released before
  // clear(), which takes the shard mutexes — no order inversion), and
  // PlanCache::clear() retires snapshots instead of freeing them, so
  // in-flight wait-free lookups never touch freed memory. A compile
  // that raced ahead with the old planner either publishes before the
  // clear (wiped with the rest) or runs after the swap (new planner).
  RelationStatistics Stats = collectStatistics();
  {
    std::lock_guard<std::mutex> Guard(PlannerMutex);
    QueryPlanner Replanned(*Config.Decomp, *Config.Placement,
                           Stats.toCostParams(BaseCostParams));
    // Replanning during a migration's dual-write phase must keep the
    // mutation plans mirroring, or committed writes would stop
    // reaching the shadow representation.
    Replanned.setEmitMirrorWrites(Planner.emitMirrorWrites());
    Planner = std::move(Replanned);
  }
  // Bump *before* clear — the order matters for the wait-free readers.
  // A prepared handle's fast path re-validates its cached plan pointer
  // by loading PlanEpoch (seq_cst) inside its epoch guard. The clear
  // retires the snapshot that owns the plan, and with enough epoch
  // advances from unrelated retire traffic that snapshot could become
  // freeable *during* the reader's guard (only retirees stamped before
  // the guard's epoch are held back). Bumping first closes the hole:
  // if the snapshot was freeable during a guard, its retire — and
  // therefore this preceding bump — is before the guard's entry in the
  // seq_cst order, so the reader's epoch check must observe the bump
  // and rebind instead of touching the plan. The benign flip side: a
  // racing rebinder may re-bind a not-yet-cleared plan at the new
  // epoch; old plans remain semantically valid here (only the cost
  // model changed), so it merely keeps an old shape one cycle longer.
  // The first rebinder per signature compiles (one counted miss);
  // everyone else rebinds onto that publication wait-free.
  // The signatures compiled at this instant are the access paths still
  // in live use (captured before the clear wipes them) — they decide
  // which MVCC chain directories survive below.
  std::vector<PlanCache::Signature> Sigs = Plans.signatures();
  PlanEpoch.fetch_add(1, std::memory_order_seq_cst);
  Plans.clear();

  // Retire secondary chain directories whose read signature left the
  // cache: a directory serves snapshot reads binding dom(s) ∩ key, so
  // the keep set is exactly the key projections of the surviving
  // query/for-update shapes. A directory retired too eagerly (its
  // signature went cold but comes back) is re-created and backfilled by
  // the next compile's ensureDirectory — a cold-path cost, never a
  // correctness issue. The retire itself is epoch-safe against
  // concurrent snapshot readers (MvccStore::retireStaleDirectories).
  std::vector<ColumnSet> Keep;
  const ColumnSet KeyCols = Mvcc->keyColumns();
  for (const PlanCache::Signature &S : Sigs)
    if (S.Op == PlanOp::Query || S.Op == PlanOp::QueryForUpdate)
      Keep.push_back(ColumnSet::fromBits(S.Dom) & KeyCols);
  Mvcc->retireStaleDirectories([&](ColumnSet Cols) {
    for (ColumnSet K : Keep)
      if (K == Cols)
        return true;
    return false;
  });
}

ValidationResult ConcurrentRelation::verifyConsistency() const {
  ValidationResult R;
  const Decomposition &D = *Config.Decomp;

  // Enumerate all root-to-leaf edge paths.
  std::vector<std::vector<EdgeId>> Paths;
  std::vector<EdgeId> Current;
  std::function<void(NodeId)> Walk = [&](NodeId N) {
    if (D.node(N).OutEdges.empty()) {
      Paths.push_back(Current);
      return;
    }
    for (EdgeId E : D.node(N).OutEdges) {
      Current.push_back(E);
      Walk(D.edge(E).Dst);
      Current.pop_back();
    }
  };
  Walk(D.root());

  // Collect the tuple set along each path (unlocked: quiescence is the
  // caller's obligation).
  std::vector<std::vector<Tuple>> PathTuples;
  for (const auto &Path : Paths) {
    std::vector<WalkState> States;
    WalkState Init;
    Init.Bound.resize(D.numNodes());
    Init.Bound[D.root()] = Root;
    States.push_back(std::move(Init));
    for (EdgeId E : Path)
      stepStates(D, E, States);
    std::vector<Tuple> Tuples;
    for (const WalkState &St : States)
      Tuples.push_back(St.T);
    std::sort(Tuples.begin(), Tuples.end(), TupleLess());
    PathTuples.push_back(std::move(Tuples));
  }

  for (size_t I = 1; I < PathTuples.size(); ++I)
    if (PathTuples[I] != PathTuples[0])
      R.Errors.push_back("path " + std::to_string(I) +
                         " disagrees with path 0 on the represented relation");

  if (!PathTuples.empty() && PathTuples[0].size() != size())
    R.Errors.push_back("tuple count " + std::to_string(PathTuples[0].size()) +
                       " disagrees with size() " + std::to_string(size()));

  // Functional dependencies must hold over the represented relation.
  if (!PathTuples.empty()) {
    const auto &Tuples = PathTuples[0];
    for (const auto &Fd : spec().fds())
      for (size_t I = 0; I < Tuples.size(); ++I)
        for (size_t J = I + 1; J < Tuples.size(); ++J)
          if (Tuples[I].project(Fd.Lhs) == Tuples[J].project(Fd.Lhs) &&
              Tuples[I].project(Fd.Rhs) != Tuples[J].project(Fd.Rhs))
            R.Errors.push_back("functional dependency violated");
  }
  return R;
}
