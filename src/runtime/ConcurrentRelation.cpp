//===- runtime/ConcurrentRelation.cpp - The public relation API ---------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Operation protocols (see DESIGN.md for the full argument):
///
/// * query: compiled by the query planner (§5); executed with shared
///   locks; speculative statements may request a transaction restart.
///
/// * remove: one plan — the locate traversal walking every edge under
///   exclusive locks (§5.2) followed by EraseEdge statements removing
///   the matched tuple's entries bottom-up with cascading husk
///   (empty-instance) cleanup, and the count adjustment.
///
/// * insert: one plan — a topological Probe/Lock schedule resolving
///   existing instances with the full tuple and acquiring every needed
///   stripe exclusively in global lock order (including the §4.5
///   present-target duty of speculative edges), the s-driven
///   put-if-absent membership check behind a Restrict/GuardAbsent pair
///   (§2), and a CreateNode/InsertEdge write phase unifying shared
///   nodes.
///
/// All three execute through the same PlanExecutor on planner-emitted,
/// validity-checked IR, using a reusable per-thread ExecContext; plans
/// come from a sharded wait-free-read cache.
///
//===----------------------------------------------------------------------===//

#include "runtime/ConcurrentRelation.h"

#include "support/Compiler.h"

#include <algorithm>
#include <functional>
#include <thread>

using namespace crs;

ConcurrentRelation::ConcurrentRelation(RepresentationConfig Cfg,
                                       CostParams CP)
    : Config(std::move(Cfg)), BaseCostParams(CP),
      Planner(*Config.Decomp, *Config.Placement, CP),
      Executor(*Config.Decomp, *Config.Placement) {
  [[maybe_unused]] ValidationResult DecompOk = Config.Decomp->validate();
  assert(DecompOk.ok() && "decomposition must be adequate");
  [[maybe_unused]] ValidationResult PlaceOk = Config.Placement->validate();
  assert(PlaceOk.ok() && "lock placement must be well-formed");
  [[maybe_unused]] ValidationResult SafeOk =
      Config.Placement->validateContainerSafety();
  assert(SafeOk.ok() && "container choices must match the placement");

  const Decomposition &D = *Config.Decomp;
  Root = NodeInstance::create(D, D.root(), Tuple(),
                              Config.Placement->nodeStripes(D.root()));
}

// The reusable per-thread execution context (§5.2 executor state): flat
// frames, an instance pool pinning bound instances through the
// shrinking phase, and one LockSet. Operations reset it after releasing
// their locks, so capacity is recycled across the thread's operations.
static ExecContext &threadContext() {
  static thread_local ExecContext Ctx;
  return Ctx;
}

namespace {
/// Releases the context's locks and recycles its frames at scope exit.
/// The context is long-lived (thread-local), so unlike the seed's
/// stack-local LockSet it has no destructor running per operation —
/// without this guard, an exception between run() and the explicit
/// release (e.g. bad_alloc building the result vector) would leave the
/// locks held forever. Release-then-reset order matters: the pool must
/// pin instances until every unlock has returned.
struct OpScope {
  ExecContext &Ctx;
  explicit OpScope(ExecContext &C) : Ctx(C) {}
  ~OpScope() { finish(); }
  /// Idempotent early release for the happy path (shortens hold time
  /// before result post-processing).
  void finish() {
    Ctx.Locks.releaseAll();
    Ctx.reset();
  }
};
} // namespace

const Plan *ConcurrentRelation::queryPlanFor(ColumnSet DomS,
                                             ColumnSet C) const {
  return Plans.getOrCompile(PlanOp::Query, DomS.bits(), C.bits(), [&] {
    std::lock_guard<std::mutex> Guard(PlannerMutex);
    return Planner.planQuery(DomS, C);
  });
}

const Plan *ConcurrentRelation::removePlanFor(ColumnSet DomS) const {
  return Plans.getOrCompile(PlanOp::Remove, DomS.bits(), 0, [&] {
    std::lock_guard<std::mutex> Guard(PlannerMutex);
    return Planner.planRemove(DomS);
  });
}

const Plan *ConcurrentRelation::insertPlanFor(ColumnSet DomS) const {
  return Plans.getOrCompile(PlanOp::Insert, DomS.bits(), 0, [&] {
    std::lock_guard<std::mutex> Guard(PlannerMutex);
    return Planner.planInsert(DomS);
  });
}

std::string ConcurrentRelation::explainQuery(ColumnSet DomS,
                                             ColumnSet C) const {
  return queryPlanFor(DomS, C)->str();
}

std::string ConcurrentRelation::explainRemove(ColumnSet DomS) const {
  return removePlanFor(DomS)->str();
}

std::string ConcurrentRelation::explainInsert(ColumnSet DomS) const {
  return insertPlanFor(DomS)->str();
}

std::vector<Tuple> ConcurrentRelation::query(const Tuple &S,
                                             ColumnSet C) const {
  const Plan *P = queryPlanFor(S.domain(), C);
  ExecContext &Ctx = threadContext();
  for (unsigned Attempt = 0;; ++Attempt) {
    OpScope Scope(Ctx);
    if (Executor.run(*P, S, Root, Ctx) == ExecStatus::Ok) {
      uint32_t N = Ctx.numStates(P->ResultVar);
      std::vector<Tuple> Out;
      Out.reserve(N);
      for (uint32_t I = 0; I < N; ++I)
        Out.push_back(Ctx.stateTuple(P->ResultVar, I).project(C));
      // Shrinking phase: release while the context still pins the read
      // instances, then recycle the frames.
      Scope.finish();
      std::sort(Out.begin(), Out.end(), TupleLess());
      Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
      return Out;
    }
    // Speculation failed (wrong guess or out-of-order conflict): release
    // everything (OpScope) and retry; yield under pressure.
    Scope.finish();
    Restarts.fetch_add(1, std::memory_order_relaxed);
    if (Attempt >= 16)
      std::this_thread::yield();
  }
}

unsigned ConcurrentRelation::remove(const Tuple &S) {
  assert(spec().isKey(S.domain()) &&
         "remove requires s to be a key (paper §2)");
  const Plan *P = removePlanFor(S.domain());
  ExecContext &Ctx = threadContext();
  Ctx.Count = &Count;
  OpScope Scope(Ctx);
  [[maybe_unused]] ExecStatus St = Executor.run(*P, S, Root, Ctx);
  assert(St == ExecStatus::Ok && "mutation plans never speculate");
  uint32_t Matched = Ctx.numStates(P->ResultVar);
  assert(Matched <= 1 && "key-matched remove found multiple tuples");
  // Shrinking phase (OpScope): release while the context still pins the
  // unlinked instances — their physical locks must outlive the unlock.
  return Matched;
}

bool ConcurrentRelation::insert(const Tuple &S, const Tuple &T) {
  assert(!S.domain().intersects(T.domain()) &&
         "insert requires disjoint s and t domains (paper §2)");
  Tuple Full = S.unionWith(T);
  assert(Full.domain() == spec().allColumns() &&
         "inserted tuple must value every column");
  const Plan *P = insertPlanFor(S.domain());
  ExecContext &Ctx = threadContext();
  Ctx.Count = &Count;
  OpScope Scope(Ctx);
  ExecStatus St = Executor.run(*P, Full, Root, Ctx);
  // Insert plans never speculate (the §4.5 writer protocol takes
  // blocking, in-order locks), so like remove there is no retry loop.
  assert(St != ExecStatus::Restart && "mutation plans never speculate");
  return St == ExecStatus::Ok; // Found: a tuple matching s exists
}

/// One quiescent traversal step (consistency checking): extends each
/// walk state across edge \p E by lookup (key bound) or scan, joining
/// against bound columns.
namespace {
struct WalkState {
  Tuple T;
  std::vector<NodeInstPtr> Bound;
};
} // namespace

static void stepStates(const Decomposition &D, EdgeId E,
                       std::vector<WalkState> &States) {
  const auto &Edge = D.edge(E);
  std::vector<WalkState> Out;
  for (WalkState &State : States) {
    const NodeInstPtr &Inst = State.Bound[Edge.Src];
    if (!Inst)
      continue;
    const AnyContainer &Container = Inst->containerFor(E);
    if (State.T.domain().containsAll(Edge.Cols)) {
      NodeInstPtr Found;
      if (!Container.lookup(State.T.project(Edge.Cols), Found))
        continue;
      WalkState NewState = std::move(State);
      NewState.Bound[Edge.Dst] = std::move(Found);
      Out.push_back(std::move(NewState));
    } else {
      Container.scan([&](const Tuple &Key, const NodeInstPtr &Val) {
        Tuple Joined;
        if (!State.T.tryJoin(Key, Joined))
          return true;
        WalkState NewState;
        NewState.T = std::move(Joined);
        NewState.Bound = State.Bound;
        NewState.Bound[Edge.Dst] = Val;
        Out.push_back(std::move(NewState));
        return true;
      });
    }
  }
  States = std::move(Out);
}

std::vector<Tuple> ConcurrentRelation::scanAll() const {
  return query(Tuple(), spec().allColumns());
}

/// Visits every live node instance exactly once (quiescent walk).
static void forEachInstance(
    const Decomposition &D, const NodeInstPtr &Root,
    const std::function<void(NodeId, const NodeInstance &)> &Visit) {
  std::vector<const NodeInstance *> Seen;
  std::function<void(NodeId, const NodeInstPtr &)> Walk =
      [&](NodeId N, const NodeInstPtr &Inst) {
        if (std::find(Seen.begin(), Seen.end(), Inst.get()) != Seen.end())
          return;
        Seen.push_back(Inst.get());
        Visit(N, *Inst);
        for (EdgeId E : D.node(N).OutEdges)
          Inst->containerFor(E).scan(
              [&](const Tuple &, const NodeInstPtr &Child) {
                Walk(D.edge(E).Dst, Child);
                return true;
              });
      };
  Walk(D.root(), Root);
}

RelationStatistics ConcurrentRelation::collectStatistics() const {
  const Decomposition &D = *Config.Decomp;
  RelationStatistics Stats;
  Stats.Edges.resize(D.numEdges());
  Stats.Nodes.resize(D.numNodes());
  forEachInstance(D, Root, [&](NodeId N, const NodeInstance &Inst) {
    ++Stats.NodeInstances;
    NodeLockTraffic &Traffic = Stats.Nodes[N];
    ++Traffic.Instances;
    for (uint32_t I = 0; I < Inst.NumStripes; ++I) {
      Traffic.Acquisitions += Inst.Stripes[I].acquisitions();
      Traffic.Contentions += Inst.Stripes[I].contentions();
    }
    for (EdgeId E : D.node(N).OutEdges) {
      EdgeOccupancy &Occ = Stats.Edges[E];
      ++Occ.Containers;
      Occ.Entries += Inst.containerFor(E).size();
    }
  });
  return Stats;
}

void ConcurrentRelation::adaptPlans() {
  // The measurement itself is quiescent-only (header contract), but
  // concurrent operations may keep using old plans safely: the swap is
  // serialized against cold compiles by PlannerMutex (released before
  // clear(), which takes the shard mutexes — no order inversion), and
  // PlanCache::clear() retires snapshots instead of freeing them, so
  // in-flight wait-free lookups never touch freed memory. A compile
  // that raced ahead with the old planner either publishes before the
  // clear (wiped with the rest) or runs after the swap (new planner).
  RelationStatistics Stats = collectStatistics();
  {
    std::lock_guard<std::mutex> Guard(PlannerMutex);
    Planner = QueryPlanner(*Config.Decomp, *Config.Placement,
                           Stats.toCostParams(BaseCostParams));
  }
  Plans.clear();
}

ValidationResult ConcurrentRelation::verifyConsistency() const {
  ValidationResult R;
  const Decomposition &D = *Config.Decomp;

  // Enumerate all root-to-leaf edge paths.
  std::vector<std::vector<EdgeId>> Paths;
  std::vector<EdgeId> Current;
  std::function<void(NodeId)> Walk = [&](NodeId N) {
    if (D.node(N).OutEdges.empty()) {
      Paths.push_back(Current);
      return;
    }
    for (EdgeId E : D.node(N).OutEdges) {
      Current.push_back(E);
      Walk(D.edge(E).Dst);
      Current.pop_back();
    }
  };
  Walk(D.root());

  // Collect the tuple set along each path (unlocked: quiescence is the
  // caller's obligation).
  std::vector<std::vector<Tuple>> PathTuples;
  for (const auto &Path : Paths) {
    std::vector<WalkState> States;
    WalkState Init;
    Init.Bound.resize(D.numNodes());
    Init.Bound[D.root()] = Root;
    States.push_back(std::move(Init));
    for (EdgeId E : Path)
      stepStates(D, E, States);
    std::vector<Tuple> Tuples;
    for (const WalkState &St : States)
      Tuples.push_back(St.T);
    std::sort(Tuples.begin(), Tuples.end(), TupleLess());
    PathTuples.push_back(std::move(Tuples));
  }

  for (size_t I = 1; I < PathTuples.size(); ++I)
    if (PathTuples[I] != PathTuples[0])
      R.Errors.push_back("path " + std::to_string(I) +
                         " disagrees with path 0 on the represented relation");

  if (!PathTuples.empty() && PathTuples[0].size() != size())
    R.Errors.push_back("tuple count " + std::to_string(PathTuples[0].size()) +
                       " disagrees with size() " + std::to_string(size()));

  // Functional dependencies must hold over the represented relation.
  if (!PathTuples.empty()) {
    const auto &Tuples = PathTuples[0];
    for (const auto &Fd : spec().fds())
      for (size_t I = 0; I < Tuples.size(); ++I)
        for (size_t J = I + 1; J < Tuples.size(); ++J)
          if (Tuples[I].project(Fd.Lhs) == Tuples[J].project(Fd.Lhs) &&
              Tuples[I].project(Fd.Rhs) != Tuples[J].project(Fd.Rhs))
            R.Errors.push_back("functional dependency violated");
  }
  return R;
}
