//===- runtime/ConcurrentRelation.cpp - The public relation API ---------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Operation protocols (see DESIGN.md for the full argument):
///
/// * query: compiled by the query planner (§5); executed with shared
///   locks; speculative statements may request a transaction restart.
///
/// * remove: locate plan walking every edge under exclusive locks (§5.2),
///   then a write epilogue erasing the matched tuple's entries bottom-up,
///   cascading husk (empty-instance) cleanup.
///
/// * insert: a dedicated topological walk. At each existing node instance
///   it acquires, exclusively and in global lock order, the stripes of
///   every edge hosted there — the stripe chosen by the full new tuple
///   when the edge's columns lie within dom(s), conservatively all
///   stripes otherwise (the §4.4 rule: an insert must cover the absence
///   check's reads, which may scan entries of sibling tuples). Targets
///   resolved through speculative edges are locked too (§4.5 writer
///   protocol). With all locks held it runs the s-driven absence check
///   (insert is put-if-absent, §2), then creates the missing instances
///   and container entries top-down, unifying shared nodes.
///
//===----------------------------------------------------------------------===//

#include "runtime/ConcurrentRelation.h"

#include "support/Compiler.h"

#include <algorithm>
#include <functional>
#include <thread>

using namespace crs;

ConcurrentRelation::ConcurrentRelation(RepresentationConfig Cfg,
                                       CostParams CP)
    : Config(std::move(Cfg)), BaseCostParams(CP),
      Planner(*Config.Decomp, *Config.Placement, CP),
      Executor(*Config.Decomp, *Config.Placement) {
  [[maybe_unused]] ValidationResult DecompOk = Config.Decomp->validate();
  assert(DecompOk.ok() && "decomposition must be adequate");
  [[maybe_unused]] ValidationResult PlaceOk = Config.Placement->validate();
  assert(PlaceOk.ok() && "lock placement must be well-formed");
  [[maybe_unused]] ValidationResult SafeOk =
      Config.Placement->validateContainerSafety();
  assert(SafeOk.ok() && "container choices must match the placement");

  const Decomposition &D = *Config.Decomp;
  Root = NodeInstance::create(D, D.root(), Tuple(),
                              Config.Placement->nodeStripes(D.root()));
}

std::shared_ptr<const Plan> ConcurrentRelation::queryPlanFor(ColumnSet DomS,
                                                             ColumnSet C)
    const {
  std::lock_guard<std::mutex> Guard(PlanCacheMutex);
  auto Key = std::make_pair(DomS.bits(), C.bits());
  auto It = QueryPlans.find(Key);
  if (It != QueryPlans.end())
    return It->second;
  auto P = std::make_shared<Plan>(Planner.planQuery(DomS, C));
  QueryPlans.emplace(Key, P);
  return P;
}

std::shared_ptr<const Plan>
ConcurrentRelation::removePlanFor(ColumnSet DomS) const {
  std::lock_guard<std::mutex> Guard(PlanCacheMutex);
  auto It = RemovePlans.find(DomS.bits());
  if (It != RemovePlans.end())
    return It->second;
  auto P = std::make_shared<Plan>(Planner.planRemoveLocate(DomS));
  RemovePlans.emplace(DomS.bits(), P);
  return P;
}

std::string ConcurrentRelation::explainQuery(ColumnSet DomS,
                                             ColumnSet C) const {
  return queryPlanFor(DomS, C)->str();
}

std::string ConcurrentRelation::explainRemove(ColumnSet DomS) const {
  return removePlanFor(DomS)->str();
}

std::vector<Tuple> ConcurrentRelation::query(const Tuple &S,
                                             ColumnSet C) const {
  std::shared_ptr<const Plan> P = queryPlanFor(S.domain(), C);
  for (unsigned Attempt = 0;; ++Attempt) {
    LockSet Locks;
    std::vector<QueryState> States;
    if (Executor.run(*P, S, Root, Locks, States) == ExecStatus::Ok) {
      std::vector<Tuple> Out;
      Out.reserve(States.size());
      for (const QueryState &St : States)
        Out.push_back(St.T.project(C));
      std::sort(Out.begin(), Out.end(), TupleLess());
      Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
      return Out;
    }
    // Speculation failed (wrong guess or out-of-order conflict): release
    // everything (LockSet destructor) and retry; yield under pressure.
    Restarts.fetch_add(1, std::memory_order_relaxed);
    if (Attempt >= 16)
      std::this_thread::yield();
  }
}

unsigned ConcurrentRelation::remove(const Tuple &S) {
  assert(spec().isKey(S.domain()) &&
         "remove requires s to be a key (paper §2)");
  const Decomposition &D = *Config.Decomp;
  std::shared_ptr<const Plan> P = removePlanFor(S.domain());

  LockSet Locks;
  std::vector<QueryState> States;
  [[maybe_unused]] ExecStatus St = Executor.run(*P, S, Root, Locks, States);
  assert(St == ExecStatus::Ok && "mutation locate plans never speculate");
  if (States.empty())
    return 0;
  assert(States.size() == 1 && "key-matched remove found multiple tuples");

  // Write epilogue: erase this tuple's entries bottom-up, cascading
  // husk cleanup. A node instance belongs exclusively to the tuple when
  // its key columns form a superkey; other instances are shared and
  // their incoming entries survive until they empty out.
  const QueryState &State = States.front();
  const Tuple &Full = State.T;
  std::vector<NodeId> Topo = D.topologicalOrder();
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
    NodeId N = *It;
    if (N == D.root())
      continue;
    const NodeInstPtr &Inst = State.Bound[N];
    if (!Inst)
      continue;
    bool EraseIncoming = spec().isKey(D.node(N).KeyCols) ||
                         Inst->allOutEmpty();
    if (!EraseIncoming)
      continue;
    for (EdgeId E : D.node(N).InEdges) {
      const NodeInstPtr &Parent = State.Bound[D.edge(E).Src];
      assert(Parent && "parent of a bound instance must be bound");
      Parent->containerFor(E).erase(Full.project(D.edge(E).Cols));
    }
  }
  Count.fetch_sub(1, std::memory_order_relaxed);
  // Shrinking phase: release while the locate states still pin the
  // unlinked instances — their physical locks must outlive the unlock.
  Locks.releaseAll();
  return 1;
}

bool ConcurrentRelation::insert(const Tuple &S, const Tuple &T) {
  assert(!S.domain().intersects(T.domain()) &&
         "insert requires disjoint s and t domains (paper §2)");
  Tuple Full = S.unionWith(T);
  assert(Full.domain() == spec().allColumns() &&
         "inserted tuple must value every column");
  return insertImpl(S, Full);
}

/// One traversal step of the s-driven absence check: extends each state
/// across edge \p E by lookup (key bound) or scan, joining against bound
/// columns. Reads are covered by the insert walk's locks (see file
/// comment).
static void stepStates(const Decomposition &D, EdgeId E,
                       std::vector<QueryState> &States) {
  const auto &Edge = D.edge(E);
  std::vector<QueryState> Out;
  for (QueryState &State : States) {
    const NodeInstPtr &Inst = State.Bound[Edge.Src];
    if (!Inst)
      continue;
    const AnyContainer &Container = Inst->containerFor(E);
    if (State.T.domain().containsAll(Edge.Cols)) {
      NodeInstPtr Found;
      if (!Container.lookup(State.T.project(Edge.Cols), Found))
        continue;
      QueryState NewState = std::move(State);
      NewState.Bound[Edge.Dst] = std::move(Found);
      Out.push_back(std::move(NewState));
    } else {
      Container.scan([&](const Tuple &Key, const NodeInstPtr &Val) {
        Tuple Joined;
        if (!State.T.tryJoin(Key, Joined))
          return true;
        QueryState NewState;
        NewState.T = std::move(Joined);
        NewState.Bound = State.Bound;
        NewState.Bound[Edge.Dst] = Val;
        Out.push_back(std::move(NewState));
        return true;
      });
    }
  }
  States = std::move(Out);
}

bool ConcurrentRelation::insertImpl(const Tuple &S, const Tuple &Full) {
  const Decomposition &D = *Config.Decomp;
  const LockPlacement &LP = *Config.Placement;
  std::vector<NodeId> Topo = D.topologicalOrder();
  std::vector<uint32_t> TopoIdx = D.topologicalIndex();

  LockSet Locks;
  std::vector<NodeInstPtr> Inst(D.numNodes());
  Inst[D.root()] = Root;

  // Phase 1: topological walk — resolve existing instances with the full
  // tuple and acquire every needed lock, exclusively, in global order.
  for (NodeId N : Topo) {
    if (N != D.root()) {
      for (EdgeId E : D.node(N).InEdges) {
        const auto &Edge = D.edge(E);
        if (!Inst[Edge.Src])
          continue;
        NodeInstPtr Found;
        if (!Inst[Edge.Src]->containerFor(E).lookup(
                Full.project(Edge.Cols), Found)) {
          continue;
        }
        assert((!Inst[N] || Inst[N].get() == Found.get()) &&
               "inconsistent shared-node resolution");
        Inst[N] = std::move(Found);
      }
    }
    if (!Inst[N])
      continue; // absent subtree: locks covered by the parent's edge lock

    // Stripes needed at this instance: hosted edges (stripe by the full
    // tuple when the edge will be read by lookup during the absence
    // check, i.e. its columns lie within dom(s); all stripes otherwise)
    // plus the present-target lock for speculative incoming edges.
    bool All = false;
    std::vector<uint32_t> Stripes;
    for (const auto &Edge : D.edges()) {
      const EdgePlacement &EP = LP.edgePlacement(Edge.Id);
      if (EP.Host != N)
        continue;
      // A single stripe (selected by the full tuple) covers the edge
      // when every stripe column in the edge's own columns is fixed by
      // dom(s): the absence check's reads then stay on that stripe.
      // Stripe columns within the source keys are pinned by the
      // instance itself.
      if (Inst[N]->NumStripes <= 1 ||
          S.domain().containsAll(EP.StripeCols & Edge.Cols)) {
        Stripes.push_back(static_cast<uint32_t>(
            Full.project(EP.StripeCols).hash() % Inst[N]->NumStripes));
      } else {
        All = true;
      }
    }
    for (EdgeId E : D.node(N).InEdges)
      if (LP.edgePlacement(E).Speculative)
        Stripes.push_back(0); // the present-entry lock (§4.5)
    if (Stripes.empty() && !All)
      continue;
    if (All) {
      Stripes.clear();
      for (uint32_t I = 0; I < Inst[N]->NumStripes; ++I)
        Stripes.push_back(I);
    } else {
      std::sort(Stripes.begin(), Stripes.end());
      Stripes.erase(std::unique(Stripes.begin(), Stripes.end()),
                    Stripes.end());
    }
    for (uint32_t I : Stripes)
      Locks.acquire(Inst[N]->Stripes[I],
                    LockOrderKey{TopoIdx[N], Inst[N]->Key, I},
                    LockMode::Exclusive);
    Locks.pinResource(Inst[N]);
  }

  // Phase 2: the put-if-absent check (§2) — does any tuple match s?
  {
    std::vector<QueryState> States;
    QueryState Init;
    Init.T = S;
    Init.Bound.resize(D.numNodes());
    Init.Bound[D.root()] = Root;
    States.push_back(std::move(Init));
    for (NodeId N : Topo) {
      for (EdgeId E : D.node(N).OutEdges) {
        stepStates(D, E, States);
        if (States.empty())
          break;
      }
      if (States.empty())
        break;
    }
    if (!States.empty())
      return false; // a matching tuple exists; locks release on return
  }

  // Phase 3: create missing instances (top-down) and all entries.
  for (NodeId N : Topo) {
    if (Inst[N])
      continue;
    Inst[N] = NodeInstance::create(D, N, Full.project(D.node(N).KeyCols),
                                   LP.nodeStripes(N));
    // A fresh instance reached through a speculative edge must be locked
    // before the entry is published, or a guessing reader could observe
    // the uncommitted insert (§4.5 writer protocol). The instance is not
    // yet reachable, so the acquisition cannot block — take it through
    // the try path, which is exempt from the global-order discipline.
    for (EdgeId E : D.node(N).InEdges)
      if (LP.edgePlacement(E).Speculative) {
        [[maybe_unused]] AcquireResult R = Locks.tryAcquire(
            Inst[N]->Stripes[0], LockOrderKey{TopoIdx[N], Inst[N]->Key, 0},
            LockMode::Exclusive);
        assert(R == AcquireResult::Ok &&
               "lock on an unpublished instance cannot be contended");
        Locks.pinResource(Inst[N]);
      }
  }
  for (NodeId N : Topo)
    for (EdgeId E : D.node(N).OutEdges)
      Inst[N]->containerFor(E).insertOrAssign(
          Full.project(D.edge(E).Cols), Inst[D.edge(E).Dst]);

  Count.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<Tuple> ConcurrentRelation::scanAll() const {
  return query(Tuple(), spec().allColumns());
}

/// Visits every live node instance exactly once (quiescent walk).
static void forEachInstance(
    const Decomposition &D, const NodeInstPtr &Root,
    const std::function<void(NodeId, const NodeInstance &)> &Visit) {
  std::vector<const NodeInstance *> Seen;
  std::function<void(NodeId, const NodeInstPtr &)> Walk =
      [&](NodeId N, const NodeInstPtr &Inst) {
        if (std::find(Seen.begin(), Seen.end(), Inst.get()) != Seen.end())
          return;
        Seen.push_back(Inst.get());
        Visit(N, *Inst);
        for (EdgeId E : D.node(N).OutEdges)
          Inst->containerFor(E).scan(
              [&](const Tuple &, const NodeInstPtr &Child) {
                Walk(D.edge(E).Dst, Child);
                return true;
              });
      };
  Walk(D.root(), Root);
}

RelationStatistics ConcurrentRelation::collectStatistics() const {
  const Decomposition &D = *Config.Decomp;
  RelationStatistics Stats;
  Stats.Edges.resize(D.numEdges());
  Stats.Nodes.resize(D.numNodes());
  forEachInstance(D, Root, [&](NodeId N, const NodeInstance &Inst) {
    ++Stats.NodeInstances;
    NodeLockTraffic &Traffic = Stats.Nodes[N];
    ++Traffic.Instances;
    for (uint32_t I = 0; I < Inst.NumStripes; ++I) {
      Traffic.Acquisitions += Inst.Stripes[I].acquisitions();
      Traffic.Contentions += Inst.Stripes[I].contentions();
    }
    for (EdgeId E : D.node(N).OutEdges) {
      EdgeOccupancy &Occ = Stats.Edges[E];
      ++Occ.Containers;
      Occ.Entries += Inst.containerFor(E).size();
    }
  });
  return Stats;
}

void ConcurrentRelation::adaptPlans() {
  RelationStatistics Stats = collectStatistics();
  std::lock_guard<std::mutex> Guard(PlanCacheMutex);
  Planner = QueryPlanner(*Config.Decomp, *Config.Placement,
                         Stats.toCostParams(BaseCostParams));
  QueryPlans.clear();
  RemovePlans.clear();
}

ValidationResult ConcurrentRelation::verifyConsistency() const {
  ValidationResult R;
  const Decomposition &D = *Config.Decomp;

  // Enumerate all root-to-leaf edge paths.
  std::vector<std::vector<EdgeId>> Paths;
  std::vector<EdgeId> Current;
  std::function<void(NodeId)> Walk = [&](NodeId N) {
    if (D.node(N).OutEdges.empty()) {
      Paths.push_back(Current);
      return;
    }
    for (EdgeId E : D.node(N).OutEdges) {
      Current.push_back(E);
      Walk(D.edge(E).Dst);
      Current.pop_back();
    }
  };
  Walk(D.root());

  // Collect the tuple set along each path (unlocked: quiescence is the
  // caller's obligation).
  std::vector<std::vector<Tuple>> PathTuples;
  for (const auto &Path : Paths) {
    std::vector<QueryState> States;
    QueryState Init;
    Init.Bound.resize(D.numNodes());
    Init.Bound[D.root()] = Root;
    States.push_back(std::move(Init));
    for (EdgeId E : Path)
      stepStates(D, E, States);
    std::vector<Tuple> Tuples;
    for (const QueryState &St : States)
      Tuples.push_back(St.T);
    std::sort(Tuples.begin(), Tuples.end(), TupleLess());
    PathTuples.push_back(std::move(Tuples));
  }

  for (size_t I = 1; I < PathTuples.size(); ++I)
    if (PathTuples[I] != PathTuples[0])
      R.Errors.push_back("path " + std::to_string(I) +
                         " disagrees with path 0 on the represented relation");

  if (!PathTuples.empty() && PathTuples[0].size() != size())
    R.Errors.push_back("tuple count " + std::to_string(PathTuples[0].size()) +
                       " disagrees with size() " + std::to_string(size()));

  // Functional dependencies must hold over the represented relation.
  if (!PathTuples.empty()) {
    const auto &Tuples = PathTuples[0];
    for (const auto &Fd : spec().fds())
      for (size_t I = 0; I < Tuples.size(); ++I)
        for (size_t J = I + 1; J < Tuples.size(); ++J)
          if (Tuples[I].project(Fd.Lhs) == Tuples[J].project(Fd.Lhs) &&
              Tuples[I].project(Fd.Rhs) != Tuples[J].project(Fd.Rhs))
            R.Errors.push_back("functional dependency violated");
  }
  return R;
}
