//===- runtime/PreparedOp.cpp - Prepared relational operations ----------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "runtime/PreparedOp.h"

#include "support/Compiler.h"

#include <algorithm>
#include <numeric>

using namespace crs;
using detail::PreparedOpImpl;

/// Frame ids are dense per process (not per relation), so a thread's
/// frame vector indexes every live handle unambiguously and stays as
/// short as the peak number of live handles: dead handles return their
/// id to a free list, and the paired never-reused generation lets each
/// thread's frame detect reuse and reset its bound mask (see
/// ExecContext::frame).
namespace {
std::mutex FrameIdMutex;
std::vector<uint32_t> FreeFrameIds;
uint32_t NextFrameId = 0;
uint64_t NextFrameGen = 1; // 0 is the never-bound sentinel in ArgFrame
} // namespace

static std::pair<uint32_t, uint64_t> allocFrameId() {
  std::lock_guard<std::mutex> Guard(FrameIdMutex);
  uint32_t Id;
  if (!FreeFrameIds.empty()) {
    Id = FreeFrameIds.back();
    FreeFrameIds.pop_back();
  } else {
    Id = NextFrameId++;
  }
  return {Id, NextFrameGen++};
}

static void freeFrameId(uint32_t Id) {
  std::lock_guard<std::mutex> Guard(FrameIdMutex);
  FreeFrameIds.push_back(Id);
}

PreparedOpImpl::PreparedOpImpl(const ConcurrentRelation &R,
                               ConcurrentRelation *MutR, PlanOp O,
                               ColumnSet S, ColumnSet OutCols)
    : Rel(&R), MutRel(MutR), Op(O), DomS(S),
      In(O == PlanOp::Insert ? R.spec().allColumns() : S), Out(OutCols),
      Slots(In.members()) {
  auto [Id, Gen] = allocFrameId();
  FrameId = Id;
  FrameGen = Gen;
  assert(Slots.size() <= 64 && "bind mask is 64 bits wide");
  assert(Slots.size() <= BoundOp::MaxSlots &&
         "widen BoundOp::MaxSlots for specs this wide");
}

PreparedOpImpl::~PreparedOpImpl() { freeFrameId(FrameId); }

void PreparedOpImpl::bind(unsigned Slot, Value V) const {
  assert(Slot < numSlots() && "bind slot out of range");
  ExecContext::ArgFrame &F =
      ExecContext::current().frame(FrameId, FrameGen, numSlots());
  F.Vals[Slot] = V;
  F.BoundMask |= uint64_t(1) << Slot;
}

const Value *PreparedOpImpl::frameArgs() const {
  ExecContext::ArgFrame &F =
      ExecContext::current().frame(FrameId, FrameGen, numSlots());
  assert(F.BoundMask == (numSlots() == 64
                             ? ~uint64_t(0)
                             : (uint64_t(1) << numSlots()) - 1) &&
         "executing a prepared operation with unbound slots "
         "(bindings are per-thread: bind on the executing thread)");
  return F.Vals.data();
}

const Plan *PreparedOpImpl::resolve() const {
  // Epoch first, plan second: the rebinder stores the plan before the
  // epoch (release), so an epoch match guarantees the loaded plan is
  // the one bound for that epoch — or a newer one from a racing rebind,
  // which is equally current.
  uint64_t E = Rel->planEpoch();
  if (CRS_LIKELY(BoundEpoch.load(std::memory_order_acquire) == E))
    return BoundPlan.load(std::memory_order_relaxed);
  return rebindSlow();
}

const Plan *PreparedOpImpl::rebindSlow() const {
  std::lock_guard<std::mutex> Guard(RebindM);
  // Revalidate under the mutex: a concurrent rebinder may have bound a
  // fresh plan while we waited, and the epoch may have advanced past
  // the value that sent us here.
  uint64_t Cur = Rel->planEpoch();
  if (BoundEpoch.load(std::memory_order_relaxed) == Cur)
    return BoundPlan.load(std::memory_order_relaxed);
  // The epoch was observed (acquire) before resolving, so resolving
  // sees at least the cache clear that preceded the bump: a plan bound
  // as epoch Cur can never be a retired one. The cache makes the
  // recompilation itself one counted miss per signature no matter how
  // many threads rebind here.
  const Plan *P = Rel->resolvePlan(Op, DomS, Out);
  BoundPlan.store(P, std::memory_order_relaxed);
  BoundEpoch.store(Cur, std::memory_order_release);
  return P;
}

const Plan *PreparedOpImpl::resolveForUpdate() const {
  assert(Op == PlanOp::Query &&
         "for-update resolution is for query handles only");
  uint64_t E = Rel->planEpoch();
  if (CRS_LIKELY(BoundTxnEpoch.load(std::memory_order_acquire) == E))
    return BoundTxnPlan.load(std::memory_order_relaxed);
  return rebindForUpdateSlow();
}

const Plan *PreparedOpImpl::rebindForUpdateSlow() const {
  // Mirrors rebindSlow (same invariant, same serialization) for the
  // transactional sibling binding.
  std::lock_guard<std::mutex> Guard(RebindM);
  uint64_t Cur = Rel->planEpoch();
  if (BoundTxnEpoch.load(std::memory_order_relaxed) == Cur)
    return BoundTxnPlan.load(std::memory_order_relaxed);
  const Plan *P = Rel->resolvePlan(PlanOp::QueryForUpdate, DomS, Out);
  BoundTxnPlan.store(P, std::memory_order_relaxed);
  BoundTxnEpoch.store(Cur, std::memory_order_release);
  return P;
}

// Mutating prepared executions hold the relation's operation gate
// across resolve + run, like the legacy entry points: a migration flip
// is atomic with respect to the whole operation, so a handle can never
// execute a plan resolved under a previous representation regime
// (runtime/Migration.h). The epoch guard nests inside the gate (plan
// snapshots reclaim through the epoch domain). Queries take the
// wait-free path first: when fast reads are enabled and the bound plan
// is epoch-eligible, the whole execution runs under an epoch guard
// alone — no gate, no physical locks, nothing written shared. The
// fallback drops the guard before entering the gate: blocking on a
// closed gate while pinning an epoch would deadlock the retirement
// flip's synchronize.
uint32_t
PreparedOpImpl::runQuery(const Value *Args,
                         function_ref<void(const Tuple &)> Visit) const {
  assert(Op == PlanOp::Query && "not a query handle");
  // The thread's scratch tuple is rebound in place from the slot
  // layout: after the first execution this writes values only.
  Tuple &Input = ExecContext::current().inputScratch();
  Input.rebind(Slots.data(), Args, Slots.size());
  // Sampled latency: when no registry is attached, the acquire load is
  // the entire cost; when attached, one thread-local countdown, and a
  // clock read only on the executions the sample period picks.
  const detail::RelationObs *OS = Rel->observability();
  const uint64_t T0 = OS ? OS->Reg->maybeSampleStart() : 0;
  {
    EpochDomain::Guard EG;
    if (Rel->FastReads.load(std::memory_order_seq_cst)) {
      const Plan *P = resolve();
      if (P->EpochEligible) {
        uint32_t N = Rel->runFastQueryPlan(*P, Input, Visit);
        if (CRS_UNLIKELY(T0 != 0))
          recordLatency(OS, T0);
        return N;
      }
    }
  } // exit the guard before possibly blocking on the gate
  OpGate::Scope G(Rel->Gate);
  EpochDomain::Guard EG;
  uint32_t N = Rel->runQueryPlan(*resolve(), Input, Visit);
  if (CRS_UNLIKELY(T0 != 0))
    recordLatency(OS, T0);
  return N;
}

bool PreparedOpImpl::runInsert(const Value *Args) const {
  assert(Op == PlanOp::Insert && MutRel && "not an insert handle");
  const detail::RelationObs *OS = Rel->observability();
  const uint64_t T0 = OS ? OS->Reg->maybeSampleStart() : 0;
  OpGate::Scope G(Rel->Gate);
  EpochDomain::Guard EG;
  const Plan *P = resolve();
  Tuple &Input = ExecContext::current().inputScratch();
  Input.rebind(Slots.data(), Args, Slots.size());
  bool Won = MutRel->runInsertPlan(*P, Input);
  if (CRS_UNLIKELY(T0 != 0))
    recordLatency(OS, T0);
  return Won;
}

unsigned PreparedOpImpl::runRemove(const Value *Args) const {
  assert(Op == PlanOp::Remove && MutRel && "not a remove handle");
  const detail::RelationObs *OS = Rel->observability();
  const uint64_t T0 = OS ? OS->Reg->maybeSampleStart() : 0;
  OpGate::Scope G(Rel->Gate);
  EpochDomain::Guard EG;
  const Plan *P = resolve();
  Tuple &Input = ExecContext::current().inputScratch();
  Input.rebind(Slots.data(), Args, Slots.size());
  unsigned N = MutRel->runRemovePlan(*P, Input);
  if (CRS_UNLIKELY(T0 != 0))
    recordLatency(OS, T0);
  return N;
}

void PreparedOpImpl::recordLatency(const detail::RelationObs *OS,
                                   uint64_t StartNanos) const {
  obs::LatencyHistogram *H = LatHist.load(std::memory_order_acquire);
  if (CRS_UNLIKELY(!H ||
                   LatHistFor.load(std::memory_order_relaxed) != OS)) {
    // First sampled execution under this attachment: resolve the
    // signature's histogram once (registry mutex, deque-stable ref) and
    // cache it. The tuner matches these by the exact label pair
    // (relation=..., sig=...), so the label format is API.
    PlanCache::Signature Sig{Op, DomS.bits(), Out.bits()};
    obs::MetricLabels L = OS->Labels;
    L.emplace_back("sig", Sig.metricLabel());
    H = &OS->Reg->histogram("relation.op_latency", L);
    LatHist.store(H, std::memory_order_release);
    LatHistFor.store(OS, std::memory_order_relaxed);
  }
  H->record(obs::MetricsRegistry::nowNanos() - StartNanos);
}

//===----------------------------------------------------------------------===//
// Handles
//===----------------------------------------------------------------------===//

std::vector<Tuple> PreparedQuery::execute() const {
  ColumnSet C = Impl->outputColumns();
  std::vector<Tuple> Out;
  Impl->runQuery(Impl->frameArgs(),
                 [&](const Tuple &T) { Out.push_back(T.project(C)); });
  std::sort(Out.begin(), Out.end(), TupleLess());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

PreparedQuery ConcurrentRelation::prepareQuery(ColumnSet DomS,
                                               ColumnSet C) const {
  return PreparedQuery(std::make_shared<PreparedOpImpl>(
      *this, nullptr, PlanOp::Query, DomS, C));
}

PreparedInsert ConcurrentRelation::prepareInsert(ColumnSet DomS) {
  assert(spec().allColumns().containsAll(DomS) &&
         "prepared-insert key columns outside the specification");
  return PreparedInsert(std::make_shared<PreparedOpImpl>(
      *this, this, PlanOp::Insert, DomS, spec().allColumns()));
}

PreparedRemove ConcurrentRelation::prepareRemove(ColumnSet DomS) {
  assert(spec().isKey(DomS) && "remove requires s to be a key (paper §2)");
  return PreparedRemove(std::make_shared<PreparedOpImpl>(
      *this, this, PlanOp::Remove, DomS, spec().allColumns()));
}

//===----------------------------------------------------------------------===//
// Batch execution
//===----------------------------------------------------------------------===//

BoundOp BoundOp::make(const PreparedOpImpl *Impl,
                      std::initializer_list<Value> Args,
                      function_ref<void(const Tuple &)> Visit) {
  BoundOp B;
  B.Op = Impl;
  B.Visit = Visit;
  assert(Args.size() == Impl->numSlots() &&
         "batch op must bind every slot positionally");
  std::copy(Args.begin(), Args.end(), B.Args.begin());
  return B;
}

void crs::executeBatch(std::span<BoundOp> Ops) {
  // Group compatible operations (same prepared handle) so each group
  // runs back-to-back: the plan is resolved once per group and the
  // group's code path and lock working set stay hot. Results are
  // written through the original positions.
  // Groups run in first-appearance order (not handle-pointer order,
  // which varies with heap layout run to run): a batch listing inserts
  // before a query of the same keys deterministically observes them.
  std::vector<const PreparedOpImpl *> Seen;
  std::vector<uint32_t> Rank(Ops.size());
  for (size_t I = 0; I < Ops.size(); ++I) {
    auto It = std::find(Seen.begin(), Seen.end(), Ops[I].Op);
    if (It == Seen.end()) {
      Rank[I] = static_cast<uint32_t>(Seen.size());
      Seen.push_back(Ops[I].Op);
    } else {
      Rank[I] = static_cast<uint32_t>(It - Seen.begin());
    }
  }
  std::vector<uint32_t> Order(Ops.size());
  std::iota(Order.begin(), Order.end(), 0u);
  std::stable_sort(Order.begin(), Order.end(),
                   [&](uint32_t A, uint32_t B) { return Rank[A] < Rank[B]; });
  for (uint32_t I : Order) {
    BoundOp &B = Ops[I];
    assert(B.Op && "executing an unbound batch op");
    switch (B.Op->planOp()) {
    case PlanOp::Query: {
      auto Ignore = [](const Tuple &) {};
      B.Result = B.Op->runQuery(
          B.Args.data(),
          B.Visit ? B.Visit : function_ref<void(const Tuple &)>(Ignore));
      break;
    }
    case PlanOp::Insert:
      B.Result = B.Op->runInsert(B.Args.data()) ? 1 : 0;
      break;
    case PlanOp::Remove:
      B.Result = B.Op->runRemove(B.Args.data());
      break;
    case PlanOp::RemoveLocate:
    case PlanOp::QueryForUpdate:
    case PlanOp::UndoInsert:
    case PlanOp::UndoRemove:
      assert(false && "unpreparable operation in batch");
      break;
    }
  }
}
