//===- runtime/NodeInstance.h - Decomposition instances ---------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime (dynamic) counterpart of a decomposition (§4.1): each node
/// v: A ▷ B has a set of instances v_t, one per valuation t of A, each an
/// object in memory holding one container per outgoing edge plus the
/// physical locks the lock placement attaches to the node (§4.3, striped
/// per §4.4). Instances are reference-counted: containers hold shared
/// pointers, so concurrent speculative readers (§4.5) can never observe a
/// freed instance even if it is concurrently unlinked.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_RUNTIME_NODEINSTANCE_H
#define CRS_RUNTIME_NODEINSTANCE_H

#include "decomp/Decomposition.h"
#include "runtime/AnyContainer.h"
#include "sync/PhysicalLock.h"

#include <memory>
#include <vector>

namespace crs {

/// One node instance v_t.
struct NodeInstance {
  const Decomposition::Node *StaticNode = nullptr; ///< the node instantiated
  Tuple Key;                             ///< the valuation t of v's key cols
  /// One container per outgoing edge, parallel to StaticNode->OutEdges.
  std::vector<std::unique_ptr<AnyContainer>> Out;
  /// Physical locks attached to this instance (stripe count from the
  /// lock placement's nodeStripes).
  std::unique_ptr<PhysicalLock[]> Stripes;
  uint32_t NumStripes = 0;

  /// Builds an instance of \p Node keyed \p Key with containers per
  /// \p D's edge kinds and \p StripeCount physical locks.
  static NodeInstPtr create(const Decomposition &D, NodeId Node, Tuple Key,
                            uint32_t StripeCount);

  /// The container implementing outgoing edge \p E (must leave this
  /// node).
  AnyContainer &containerFor(EdgeId E);
  const AnyContainer &containerFor(EdgeId E) const;

  /// True if every outgoing container is empty (husk detection during
  /// remove cleanup).
  bool allOutEmpty() const;
};

} // namespace crs

#endif // CRS_RUNTIME_NODEINSTANCE_H
