//===- runtime/PlanCache.h - Sharded compiled-plan cache --------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache of compiled plans, keyed by operation signature
/// (op kind, dom(s), output columns). Every relational operation starts
/// with a plan lookup, so this sits on the hot path of *all* traffic;
/// a single mutex-protected map serializes every thread on one cache
/// line (the classic scalability bug of perfbook's lock chapter). Here
/// lookups are wait-free and write nothing *contended*: each shard
/// publishes an immutable snapshot vector through one atomic pointer
/// (acquire load, no CAS, no lock), so warm traffic keeps every line in
/// shared state in every core's cache. The only write a hit performs is
/// one relaxed increment of a cache-line-striped hit counter — a
/// per-stripe private line that never bounces between cores — so the
/// observability layer can report the exact hit/miss ratio instead of
/// deriving it from op counts.
/// Compilation is rare; writers copy the snapshot under a per-shard
/// mutex, count the miss there, and publish the new version. Superseded
/// snapshots are *retired through the epoch domain* (sync/Epoch.h): the
/// unpublishing store is seq_cst, so any reader that could still hold
/// the old snapshot pointer is pinned in an epoch the reclaimer must
/// wait out — reader access stays wait-free without hazard pointers,
/// and memory is bounded by the grace period instead of growing with
/// every replan for the life of the cache. Callers therefore must hold
/// an EpochDomain::Guard across find()/getOrCompile() and every
/// dereference of the returned plan (ConcurrentRelation's operation
/// paths all do).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_RUNTIME_PLANCACHE_H
#define CRS_RUNTIME_PLANCACHE_H

#include "plan/QueryIR.h"
#include "runtime/Statistics.h"
#include "sync/Epoch.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace crs {

class PlanCache {
public:
  using PlanPtr = std::shared_ptr<const Plan>;

  PlanCache() = default;
  PlanCache(const PlanCache &) = delete;
  PlanCache &operator=(const PlanCache &) = delete;
  /// Frees each shard's live snapshot directly; superseded snapshots
  /// were handed to the epoch domain and reclaim on quiescence.
  /// Destruction requires no concurrent readers, as for any container.
  ~PlanCache() = default;

  /// Wait-free lookup; null if the signature has not been compiled.
  /// Writes nothing contended — the hit count goes to a striped counter
  /// (one relaxed add on a per-stripe private line), and the plan comes
  /// back as a raw pointer rather than a shared_ptr copy, because a
  /// refcount RMW on the plan's control block would be one more shared
  /// cache line bouncing per operation. The pointer is lifetime-safe
  /// only while the caller's epoch guard is held (superseded snapshots
  /// reclaim after a grace period). Misses are counted where the (rare)
  /// compilation happens, so hits() and misses() together give the
  /// exact ratio.
  const Plan *find(PlanOp Op, uint64_t DomBits, uint64_t OutBits) const {
    const Shard &Sh = shardFor(Op, DomBits, OutBits);
    // seq_cst, matching the guard-entry protocol: a reader whose guard
    // entry ordered after a snapshot's seq_cst unpublish must also see
    // the unpublish here, else the epoch argument for why it cannot
    // hold a reclaimable snapshot would not go through formally
    // (acquire only orders against the store it reads from).
    if (const PlanPtr *P = lookupIn(Sh.Snap.load(std::memory_order_seq_cst),
                                    Op, DomBits, OutBits)) {
      Hits.inc();
      return P->get();
    }
    return nullptr;
  }

  /// Lookup, compiling via \p Fn and publishing on a cold signature.
  /// Concurrent racers on the same cold signature serialize only on the
  /// shard mutex, and only until the first publication wins.
  template <typename CompileFn>
  const Plan *getOrCompile(PlanOp Op, uint64_t DomBits, uint64_t OutBits,
                           CompileFn &&Fn) const {
    if (const Plan *P = find(Op, DomBits, OutBits))
      return P;
    Shard &Sh = shardFor(Op, DomBits, OutBits);
    std::lock_guard<std::mutex> Guard(Sh.M);
    // Re-check: another thread may have published while we waited.
    const Snapshot *Snap = Sh.Snap.load(std::memory_order_seq_cst);
    if (const PlanPtr *P = lookupIn(Snap, Op, DomBits, OutBits)) {
      Hits.inc();
      return P->get();
    }
    Sh.Misses.fetch_add(1, std::memory_order_relaxed);
    PlanPtr P = std::make_shared<const Plan>(Fn());
    auto Next = std::make_unique<Snapshot>();
    if (Snap)
      *Next = *Snap; // copies the PlanPtrs: live plans survive supersession
    Next->push_back({{DomBits, OutBits, Op}, P});
    // Publish-then-retire, in that order, with a seq_cst unpublish: the
    // epoch reclamation contract (sync/Epoch.h) requires the superseded
    // snapshot be unreachable-to-new-readers before retire() stamps it.
    const Snapshot *Raw = Next.get();
    std::unique_ptr<Snapshot> Old = std::move(Sh.Current);
    Sh.Current = std::move(Next);
    Sh.Snap.store(Raw, std::memory_order_seq_cst);
    if (Old)
      EpochDomain::global().retireObject(Old.release());
    return P.get(); // owned by the just-published snapshot
  }

  /// Drops every published plan (replanning). Safe against concurrent
  /// wait-free readers: each shard's snapshot is unpublished with a
  /// seq_cst store and retired through the epoch domain — readers still
  /// walking it pin their epoch and hold off reclamation.
  void clear() {
    for (Shard &Sh : Shards) {
      std::lock_guard<std::mutex> Guard(Sh.M);
      Sh.Snap.store(nullptr, std::memory_order_seq_cst);
      if (Sh.Current)
        EpochDomain::global().retireObject(Sh.Current.release());
    }
  }

  /// One compiled signature, as reported by signatures().
  struct Signature {
    PlanOp Op;
    uint64_t Dom; ///< dom(s) column bits
    uint64_t Out; ///< output column bits (queries)

    /// Stable compact label for per-signature metrics and trace
    /// payloads, e.g. "query:d1:o6" (dom/out column bits in hex). The
    /// observability layer keys latency histograms by this, and the
    /// tuner parses nothing — it matches labels string-equal.
    std::string metricLabel() const {
      const char *Name = "?";
      switch (Op) {
      case PlanOp::Query:
        Name = "query";
        break;
      case PlanOp::RemoveLocate:
        Name = "remove_locate";
        break;
      case PlanOp::Remove:
        Name = "remove";
        break;
      case PlanOp::Insert:
        Name = "insert";
        break;
      case PlanOp::QueryForUpdate:
        Name = "query_for_update";
        break;
      case PlanOp::UndoInsert:
        Name = "undo_insert";
        break;
      case PlanOp::UndoRemove:
        Name = "undo_remove";
        break;
      }
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%s:d%llx:o%llx", Name,
                    static_cast<unsigned long long>(Dom),
                    static_cast<unsigned long long>(Out));
      return Buf;
    }
  };

  /// The currently published signatures (cold path: takes each shard's
  /// writer mutex). The online tuner uses this as the set of operation
  /// shapes to score candidate representations against.
  std::vector<Signature> signatures() const {
    std::vector<Signature> Out;
    for (Shard &Sh : Shards) {
      std::lock_guard<std::mutex> Guard(Sh.M);
      if (const Snapshot *Snap = Sh.Snap.load(std::memory_order_acquire))
        for (const auto &E : *Snap)
          Out.push_back({E.first.Op, E.first.Dom, E.first.Out});
    }
    return Out;
  }

  /// Number of lookups that led to a compilation (signature cold, or
  /// re-warmed after clear()). Everything else was a wait-free hit.
  uint64_t misses() const {
    uint64_t N = 0;
    for (const Shard &Sh : Shards)
      N += Sh.Misses.load(std::memory_order_relaxed);
    return N;
  }

  /// Number of lookups served from a published snapshot. Exact (every
  /// hit counts, including the compile path's re-check), monotonic,
  /// relaxed like every striped counter.
  uint64_t hits() const { return Hits.load(); }

private:
  struct SigKey {
    uint64_t Dom;
    uint64_t Out;
    PlanOp Op;
  };
  using Snapshot = std::vector<std::pair<SigKey, PlanPtr>>;

  static constexpr unsigned NumShards = 16;

  struct Shard {
    /// The published snapshot gets a cache line to itself: the hot read
    /// path must only ever load this line (kept in every core's cache
    /// in shared state), never write it.
    alignas(64) std::atomic<const Snapshot *> Snap{nullptr};
    /// Written only under M, on the compile path.
    alignas(64) mutable std::atomic<uint64_t> Misses{0};
    std::mutex M; // writers only
    /// Owns the snapshot Snap points at. Superseded snapshots go to the
    /// epoch domain, which frees them a grace period later.
    std::unique_ptr<Snapshot> Current;
  };

  static const PlanPtr *lookupIn(const Snapshot *Snap, PlanOp Op,
                                 uint64_t Dom, uint64_t Out) {
    if (Snap)
      for (const auto &E : *Snap)
        if (E.first.Op == Op && E.first.Dom == Dom && E.first.Out == Out)
          return &E.second;
    return nullptr;
  }

  static uint64_t mix(PlanOp Op, uint64_t A, uint64_t B) {
    uint64_t H = A * 0x9e3779b97f4a7c15ULL ^ (B + 0xbf58476d1ce4e5b9ULL) ^
                 (uint64_t(Op) << 56);
    H ^= H >> 31;
    H *= 0x94d049bb133111ebULL;
    H ^= H >> 29;
    return H;
  }
  Shard &shardFor(PlanOp Op, uint64_t A, uint64_t B) const {
    return Shards[mix(Op, A, B) % NumShards];
  }

  mutable Shard Shards[NumShards];
  /// Striped so the wait-free hit path touches no shared line.
  mutable StripedCounter Hits;
};

} // namespace crs

#endif // CRS_RUNTIME_PLANCACHE_H
