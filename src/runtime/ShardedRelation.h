//===- runtime/ShardedRelation.h - Hash-partitioned relations ---*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Horizontal sharding: one relation hash-partitioned across N inner
/// ConcurrentRelation shards by a routing column set (plan/Routing.h).
/// The paper synthesizes one concurrent representation per relation;
/// however well that representation is decomposed and locked, its
/// hottest instances eventually bound throughput. Partitioning is the
/// classic next move (cf. perfbook's partitioning/per-CPU chapters):
/// every shard keeps its *own* synthesized representation — its own
/// decomposition instance tree, lock placement, plan cache, statistics,
/// operation gate — so shards never share a mutable cache line, and
/// each can be migrated or tuned independently.
///
/// The operation contract:
///
///  * **Single-shard operations** (the common case): any operation
///    whose bound columns cover the routing set routes to exactly one
///    shard, paying one routing hash on top of the inner prepared-op
///    fast path. Inserts always qualify (they bind every column), but
///    their dom(s) must *contain* the routing set — the put-if-absent
///    check is shard-local, so tuples agreeing on s must be co-located
///    (asserted at prepare/execute time). The same locality limit means
///    a functional dependency whose left side misses the routing set
///    (an alternate key on a multi-key spec) is NOT enforced across
///    shards — the standard partitioned-uniqueness trade; keep such
///    inserts serialized by the caller, and note verifyConsistency's
///    merged check reports cross-shard violations.
///  * **Fan-out operations**: an under-bound query (or a remove by a
///    key that misses routing columns) executes on every shard; query
///    results stream through the same forEach surface, shard by shard,
///    with no global materialization. Each per-shard execution is
///    individually atomic, but a fan-out is not one transaction: it
///    observes the shards at successive instants — exactly as
///    linearizable per-key operations compose anywhere else.
///  * **Batches**: sharded handles produce routed BoundOps, so
///    executeBatch's existing same-handle grouping turns a batch
///    crossing shards into per-shard groups automatically.
///  * **Per-shard migration**: migrateTo walks the shards one at a
///    time, so each dual-write/backfill only ever stalls 1/N of the
///    keyspace; shard-local migrateTo/adaptPlans bump only that
///    shard's plan epoch, and sharded prepared handles revalidate
///    per shard — handles on untouched shards never rebind.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_RUNTIME_SHARDEDRELATION_H
#define CRS_RUNTIME_SHARDEDRELATION_H

#include "plan/Routing.h"
#include "runtime/ConcurrentRelation.h"
#include "runtime/PreparedOp.h"

#include <memory>
#include <vector>

namespace crs {

class ShardedRelation;
class ShardedQuery;
class ShardedInsert;
class ShardedRemove;
class ShardedTransaction;

namespace detail {

/// The shared state behind one sharded prepared handle: an inner
/// PreparedOpImpl per shard (same signature, so identical bind-slot
/// layouts) plus the routing layout extracted from that layout once.
/// Shard 0's impl doubles as the *staging* frame: bind() writes the
/// calling thread's values there, and execution reads the bound frame
/// back and hands it to the routed shard's impl as an explicit
/// argument array — one frame write per bind, one hash per execution,
/// and the inner epoch check (two atomic loads against the owning
/// shard) delegates per shard.
class ShardedOpImpl {
public:
  ShardedOpImpl(const ShardedRelation &R, PlanOp Op, ColumnSet DomS,
                ColumnSet Out, bool Mut);

  unsigned numSlots() const { return Staging->numSlots(); }
  ColumnId slotColumn(unsigned Slot) const {
    return Staging->slotColumn(Slot);
  }
  /// Whether bound operations of this signature route to one shard.
  bool singleShard() const { return Route.Covered; }

  void bind(unsigned Slot, Value V) const { Staging->bind(Slot, V); }

  /// The shard the calling thread's bound frame routes to (requires
  /// singleShard()).
  unsigned routedShard() const;
  /// The shard an explicit argument array routes to.
  unsigned shardOfArgs(const Value *Args) const;

  uint32_t runQuery(function_ref<void(const Tuple &)> Visit) const;
  bool runInsert() const;
  unsigned runRemove() const;

  const PreparedOpImpl &shardImpl(unsigned Shard) const {
    return *PerShard[Shard];
  }
  const ShardedRelation &relation() const { return *Rel; }
  ColumnSet outputColumns() const { return Staging->outputColumns(); }

private:
  friend class crs::ShardedQuery;
  friend class crs::ShardedInsert;
  friend class crs::ShardedRemove;

  const ShardedRelation *Rel;
  std::vector<std::shared_ptr<PreparedOpImpl>> PerShard;
  PreparedOpImpl *Staging; ///< PerShard[0]: owns the per-thread frame
  RoutingLayout Route;
};

} // namespace detail

/// A concurrent relation hash-partitioned across N independent
/// ConcurrentRelation shards. All shards are built from (and, after a
/// full migrateTo, return to) one RepresentationConfig; shard-local
/// migration can make them diverge deliberately. The public surface
/// mirrors ConcurrentRelation where the semantics carry over;
/// aggregate views (size, statistics, counters) sum the shards.
class ShardedRelation {
public:
  /// Builds \p NumShards shards over \p Config, partitioned by
  /// \p Routing. An empty routing set asks the planner to choose
  /// (chooseRoutingColumns over the spec's minimal keys). The routing
  /// set must be nonempty after resolution and covered by dom(s) of
  /// every insert issued against the relation.
  explicit ShardedRelation(RepresentationConfig Config, unsigned NumShards,
                           ColumnSet Routing = ColumnSet::empty(),
                           CostParams CP = {});

  ShardedRelation(const ShardedRelation &) = delete;
  ShardedRelation &operator=(const ShardedRelation &) = delete;

  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }
  ColumnSet routingColumns() const { return Routing; }

  ConcurrentRelation &shard(unsigned I) { return *Shards[I]; }
  const ConcurrentRelation &shard(unsigned I) const { return *Shards[I]; }

  /// The shard tuples matching \p S live on; requires dom(s) to cover
  /// the routing columns (asserted).
  unsigned shardOf(const Tuple &S) const {
    return static_cast<unsigned>(routingHash(S, Routing) % Shards.size());
  }

  /// insert r s t (§2), routed by the routing columns of s. dom(s) must
  /// cover the routing set: the put-if-absent check is shard-local, so
  /// tuples agreeing on s must land on the same shard (asserted).
  bool insert(const Tuple &S, const Tuple &T);

  /// remove r s (§2): routed when dom(s) covers the routing columns,
  /// otherwise executed on every shard (the tuple lives on exactly one;
  /// returns the total removed).
  unsigned remove(const Tuple &S);

  /// query r s C (§2): routed when dom(s) covers the routing columns;
  /// otherwise fans out and merges (π_C results deduplicated globally,
  /// like the single-relation query).
  std::vector<Tuple> query(const Tuple &S, ColumnSet C) const;

  /// \name Prepared operations against the sharded surface
  /// Same contract as ConcurrentRelation's handles (per-thread sticky
  /// binds, epoch-checked plans, streaming visitors); routing is
  /// resolved per execution from the bound frame. Handles must not
  /// outlive the relation.
  /// @{
  ShardedQuery prepareQuery(ColumnSet DomS, ColumnSet C) const;
  ShardedInsert prepareInsert(ColumnSet DomS);
  ShardedRemove prepareRemove(ColumnSet DomS);
  /// @}

  /// Tuples across all shards.
  size_t size() const;

  const RepresentationConfig &config() const { return Shards[0]->config(); }
  const RelationSpec &spec() const { return Shards[0]->spec(); }

  /// Aggregate executor health (sums over shards).
  uint64_t restarts() const;
  uint64_t planCacheMisses() const;
  uint64_t planCacheHits() const;
  OperationCounts operationCounts() const;

  /// Attaches every shard to \p Reg under the relation name \p Name
  /// with a per-shard `shard=i` label, so the registry's tree reads
  /// relation{relation="...",shard="0"}... per shard and aggregation
  /// happens at query time. Same quiescence contract as the per-shard
  /// ConcurrentRelation::attachMetrics.
  void attachMetrics(obs::MetricsRegistry &Reg, const std::string &Name);
  void detachMetrics() {
    for (auto &S : Shards)
      S->detachMetrics();
  }

  /// Live statistics aggregated across shards. Each shard quiesces
  /// through its own gate in turn, so the view is per-shard atomic but
  /// not one global snapshot — the right trade for monitoring: a
  /// global barrier would stall the whole keyspace at once.
  RelationStatistics sampleStatistics() const;

  /// Union of the shards' compiled signatures (deduplicated — shards
  /// serve the same operation shapes).
  std::vector<PlanCache::Signature> compiledSignatures() const;

  /// Migrates every shard to \p Target, one shard at a time: at any
  /// instant at most 1/N of the keyspace is paying dual-write and
  /// barrier costs, and the other shards serve undisturbed. Counters
  /// aggregate across shards. An illegal target is rejected by shard
  /// 0's up-front validation with every shard untouched; later shards
  /// cannot fail validation differently (same target, same spec). A
  /// throwing observer propagates, leaving earlier shards migrated —
  /// re-invoke to converge, as with any partially applied rollout.
  MigrationResult migrateTo(RepresentationConfig Target,
                            MigrationObserver *Obs = nullptr);

  /// Migrates one shard only (the rollout / canary primitive). Only
  /// that shard's epoch bumps; handles touching other shards never
  /// rebind.
  MigrationResult migrateShard(unsigned I, RepresentationConfig Target,
                               MigrationObserver *Obs = nullptr);

  /// Statistics-driven replanning, shard by shard (quiescent only, as
  /// for the single relation).
  void adaptPlans();

  /// Toggles every shard's wait-free read fast path (see
  /// ConcurrentRelation::setFastReads). Shards flip one at a time, so
  /// mid-call some shards serve fast reads while others serve locked
  /// ones — per-shard consistency is unaffected.
  void setFastReads(bool Enabled) {
    for (auto &S : Shards)
      S->setFastReads(Enabled);
  }
  /// True if every shard currently has the fast path enabled.
  bool fastReadsEnabled() const {
    for (const auto &S : Shards)
      if (!S->fastReadsEnabled())
        return false;
    return true;
  }

  /// Quiescent whole-structure check: every shard's representation
  /// verifies, and every tuple lives on the shard its routing key
  /// hashes to.
  ValidationResult verifyConsistency() const;

  /// All tuples across all shards (serializable per shard, not across
  /// shards), sorted.
  std::vector<Tuple> scanAll() const;

  /// Attaches \p Log to every shard: shard i logs to partition i,
  /// labeled shard i (the log must have at least numShards()
  /// partitions — asserted). Per-partition recovery then rebuilds each
  /// shard independently (wal/Checkpoint.h). Same lifetime/quiescence
  /// contract as ConcurrentRelation::attachWal.
  void attachWal(WriteAheadLog &Log);
  void detachWal() {
    for (auto &S : Shards)
      S->detachWal();
  }

private:
  friend class detail::ShardedOpImpl;

  ColumnSet Routing;
  std::vector<std::unique_ptr<ConcurrentRelation>> Shards;
};

/// A prepared `query r s C` against a sharded relation. Routed when the
/// signature covers the routing columns; otherwise every execution fans
/// out across shards, streaming each shard's states through the same
/// visitor (per-shard atomic, merged in shard order).
class ShardedQuery {
public:
  ShardedQuery() = default;

  unsigned numSlots() const { return Impl->numSlots(); }
  ColumnId slotColumn(unsigned Slot) const { return Impl->slotColumn(Slot); }
  /// False when executions fan out across every shard.
  bool singleShard() const { return Impl->singleShard(); }

  const ShardedQuery &bind(unsigned Slot, Value V) const {
    Impl->bind(Slot, V);
    return *this;
  }

  /// Streaming execution (ConcurrentRelation::forEach semantics: full
  /// state tuples, duplicates not collapsed). Returns states visited
  /// across all executed shards.
  uint32_t forEach(function_ref<void(const Tuple &)> Visit) const {
    return Impl->runQuery(Visit);
  }

  /// The number of matching states across the executed shards.
  uint64_t count() const {
    return Impl->runQuery([](const Tuple &) {});
  }

  /// Materializing execution: π_C of the matches, deduplicated across
  /// shards.
  std::vector<Tuple> execute() const;

  /// A routed batch operation (executeBatch groups it with its shard's
  /// other ops). Requires singleShard(): a fan-out query cannot be one
  /// batch op. The visitor (if any) must outlive the batch execution.
  BoundOp boundOp(std::initializer_list<Value> Args,
                  function_ref<void(const Tuple &)> Visit = nullptr) const;

private:
  friend class ShardedRelation;
  friend class ShardedTransaction;
  explicit ShardedQuery(std::shared_ptr<detail::ShardedOpImpl> I)
      : Impl(std::move(I)) {}
  std::shared_ptr<detail::ShardedOpImpl> Impl;
};

/// A prepared `insert r s t` against a sharded relation. Always routed
/// (inserts bind every column); the prepared dom(s) must cover the
/// routing columns so the shard-local put-if-absent is sound.
class ShardedInsert {
public:
  ShardedInsert() = default;

  unsigned numSlots() const { return Impl->numSlots(); }
  ColumnId slotColumn(unsigned Slot) const { return Impl->slotColumn(Slot); }

  const ShardedInsert &bind(unsigned Slot, Value V) const {
    Impl->bind(Slot, V);
    return *this;
  }

  bool execute() const { return Impl->runInsert(); }

  /// A routed batch operation for executeBatch.
  BoundOp boundOp(std::initializer_list<Value> Args) const;

private:
  friend class ShardedRelation;
  friend class ShardedTransaction;
  explicit ShardedInsert(std::shared_ptr<detail::ShardedOpImpl> I)
      : Impl(std::move(I)) {}
  std::shared_ptr<detail::ShardedOpImpl> Impl;
};

/// A prepared `remove r s` against a sharded relation. Routed when
/// dom(s) covers the routing columns; otherwise each execution runs on
/// every shard and sums (the tuple lives on exactly one).
class ShardedRemove {
public:
  ShardedRemove() = default;

  unsigned numSlots() const { return Impl->numSlots(); }
  ColumnId slotColumn(unsigned Slot) const { return Impl->slotColumn(Slot); }
  bool singleShard() const { return Impl->singleShard(); }

  const ShardedRemove &bind(unsigned Slot, Value V) const {
    Impl->bind(Slot, V);
    return *this;
  }

  unsigned execute() const { return Impl->runRemove(); }

  /// A routed batch operation for executeBatch. Requires singleShard().
  BoundOp boundOp(std::initializer_list<Value> Args) const;

private:
  friend class ShardedRelation;
  friend class ShardedTransaction;
  explicit ShardedRemove(std::shared_ptr<detail::ShardedOpImpl> I)
      : Impl(std::move(I)) {}
  std::shared_ptr<detail::ShardedOpImpl> Impl;
};

} // namespace crs

#endif // CRS_RUNTIME_SHARDEDRELATION_H
