//===- runtime/NodeInstance.cpp - Decomposition instances ---------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "runtime/NodeInstance.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace crs;

NodeInstPtr NodeInstance::create(const Decomposition &D, NodeId Node,
                                 Tuple Key, uint32_t StripeCount) {
  auto Inst = std::make_shared<NodeInstance>();
  Inst->StaticNode = &D.node(Node);
  Inst->Key = std::move(Key);
  assert(Inst->Key.domain() == Inst->StaticNode->KeyCols &&
         "instance key must be a valuation of the node's key columns");
  for (EdgeId E : Inst->StaticNode->OutEdges)
    Inst->Out.push_back(AnyContainer::create(D.edge(E).Kind));
  assert(StripeCount >= 1 && "every node instance carries >= 1 lock");
  Inst->Stripes = std::make_unique<PhysicalLock[]>(StripeCount);
  Inst->NumStripes = StripeCount;
  return Inst;
}

AnyContainer &NodeInstance::containerFor(EdgeId E) {
  const auto &OutEdges = StaticNode->OutEdges;
  auto It = std::find(OutEdges.begin(), OutEdges.end(), E);
  assert(It != OutEdges.end() && "edge does not leave this node");
  return *Out[It - OutEdges.begin()];
}

const AnyContainer &NodeInstance::containerFor(EdgeId E) const {
  return const_cast<NodeInstance *>(this)->containerFor(E);
}

bool NodeInstance::allOutEmpty() const {
  for (const auto &C : Out)
    if (C->size() != 0)
      return false;
  return true;
}
