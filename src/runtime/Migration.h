//===- runtime/Migration.h - Live representation migration ------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online representation migration: hot-swapping a live relation's
/// decomposition, lock placement, and containers under traffic. The
/// paper's autotuner (§6) picks a representation offline; here the
/// winner can be adopted without stopping readers, through three
/// phases driven by ConcurrentRelation::migrateTo:
///
///  1. **Dual-write flip.** Behind a brief operation barrier, a shadow
///     representation is installed and the planner starts appending a
///     MirrorWrite epilogue to every mutation plan; the plan cache is
///     cleared and the recompilation epoch bumped, so every prepared
///     handle transparently rebinds onto mirroring plans. From here on
///     each committed mutation is replayed on the shadow while the
///     source's exclusive locks are still held.
///
///  2. **Backfill.** A point-in-time snapshot of the source is walked
///     tuple by tuple; each tuple is re-confirmed in the source under
///     its shared query locks and, while those locks are held, copied
///     into the shadow with a put-if-absent insert (idempotent against
///     the dual-write having raced it there first). Tuples inserted
///     after the snapshot arrive via mirroring; tuples removed before
///     their copy simply fail the re-confirmation. Readers are never
///     blocked (the re-confirmation takes shared locks).
///
///  3. **Retirement flip.** Behind a second barrier the relation adopts
///     the shadow's configuration, planner, executor, and root; the
///     cache is cleared and the epoch bumped again, so every handle
///     rebinds onto plans compiled for the new decomposition. The old
///     representation is retired, not freed: superseded plan snapshots
///     keep raw pointers into it (the PlanCache discipline).
///
/// Deadlock freedom across the pair of representations: every thread
/// that touches both acquires source locks strictly before target
/// locks (mirror epilogues and backfill copies both run with source
/// locks held), and no thread ever takes a source lock while holding a
/// target lock, so the combined waits-for graph stays acyclic.
///
/// The only stalls are the two barriers, each bounded by the drain of
/// in-flight operations — the "one epoch" pause of RCU-style
/// reader/writer transitions (cf. McKenney's deferred-processing
/// playbook).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_RUNTIME_MIGRATION_H
#define CRS_RUNTIME_MIGRATION_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace crs {

namespace detail {
class MirrorRep;
}

/// The relation's operation gate: every relational operation holds it
/// (shared) from before plan resolution until after execution, so a
/// migration flip can briefly close it, drain the in-flight
/// operations, and switch plans + representation atomically with
/// respect to *all* traffic — no operation can resolve a plan under
/// one regime and execute it under the next. The hot path is one
/// fetch_add on entry and one fetch_sub on exit of a single shared
/// word — on a multicore that is a cache line every operating thread
/// writes twice per operation, a deliberate price next to each
/// operation's lock and container work for flips that are atomic
/// w.r.t. whole operations. If this line ever shows up in profiles,
/// the upgrade path is a per-thread (sharded) ingress count with the
/// same close/drain protocol, RCU style.
class OpGate {
public:
  /// Shared entry; blocks (yielding) only while a flip holds the gate
  /// closed. Must not be re-entered by a thread already inside (a
  /// nested operation would deadlock against a concurrent flip; the
  /// executor's Busy assert catches this in debug builds first).
  void enter() {
    for (;;) {
      uint64_t W = Word.fetch_add(1, std::memory_order_acquire);
      if ((W & ClosedBit) == 0)
        return;
      // A flip is in progress: undo the optimistic entry and wait for
      // the gate to reopen (bounded by the flip's drain + swap).
      Word.fetch_sub(1, std::memory_order_release);
      while (Word.load(std::memory_order_acquire) & ClosedBit)
        std::this_thread::yield();
    }
  }
  void exit() { Word.fetch_sub(1, std::memory_order_release); }

  /// Bounded shared entry: like enter(), but gives up after roughly
  /// \p YieldBudget yields spent waiting on a closed gate. Used by a
  /// cross-shard transaction joining an additional shard mid-scope —
  /// blocking there while holding other shards' gates and locks could
  /// tie a cycle through a concurrent flip's drain, so the join waits
  /// boundedly and the transaction dies (aborts and retries) instead.
  bool tryEnter(unsigned YieldBudget) {
    for (;;) {
      uint64_t W = Word.fetch_add(1, std::memory_order_acquire);
      if ((W & ClosedBit) == 0)
        return true;
      Word.fetch_sub(1, std::memory_order_release);
      while (Word.load(std::memory_order_acquire) & ClosedBit) {
        if (YieldBudget == 0)
          return false;
        --YieldBudget;
        std::this_thread::yield();
      }
    }
  }

  /// RAII shared entry for one relational operation.
  class Scope {
  public:
    explicit Scope(OpGate &G) : G(G) { G.enter(); }
    ~Scope() { G.exit(); }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    OpGate &G;
  };

  /// RAII exclusive closure for a migration flip (or a quiesced
  /// statistics sample): construction closes the gate and returns once
  /// every in-flight operation has drained; destruction reopens it.
  /// Closers serialize among themselves. The constructing thread must
  /// not be inside the gate.
  class Barrier {
  public:
    explicit Barrier(OpGate &G) : G(G), Excl(G.CloserM) {
      G.Word.fetch_or(ClosedBit, std::memory_order_acquire);
      // Entrants that bumped the count after the close observe the bit
      // and back out, so the count monotonically drains to zero.
      while (G.Word.load(std::memory_order_acquire) & ~ClosedBit)
        std::this_thread::yield();
    }
    ~Barrier() { G.Word.fetch_and(~ClosedBit, std::memory_order_release); }
    Barrier(const Barrier &) = delete;
    Barrier &operator=(const Barrier &) = delete;

  private:
    OpGate &G;
    std::lock_guard<std::mutex> Excl;
  };

private:
  static constexpr uint64_t ClosedBit = uint64_t(1) << 63;

  /// Low 63 bits: in-flight operation count; top bit: gate closed.
  std::atomic<uint64_t> Word{0};
  std::mutex CloserM;
};

/// Externally visible migration state of a relation.
enum class MigrationPhase : uint8_t {
  Idle,      ///< no migration in flight
  DualWrite, ///< mutations mirror to a shadow; backfill may be walking
};

/// Outcome of ConcurrentRelation::migrateTo. An illegal target is
/// rejected up front (Ok = false, Error says why) with the relation
/// untouched — no dual-write phase ever starts.
struct MigrationResult {
  bool Ok = false;
  std::string Error;            ///< set when !Ok
  uint64_t Backfilled = 0;      ///< tuples copied by the backfill walk
  uint64_t MirroredInserts = 0; ///< dual-write insert replays
  uint64_t MirroredRemoves = 0; ///< dual-write remove replays
  double DualWriteSeconds = 0;  ///< wall time between the two flips
};

/// Hooks into a migration's phases, for tests, progress reporting, and
/// the online tuner's logging. All callbacks run on the migrating
/// thread with the operation gate open, so they may execute relation
/// operations (including prepared handles). adaptPlans() is also
/// allowed, but only under its usual quiescence requirement — the
/// statistics walk must not race with concurrent mutators, so not
/// while worker threads are live (ConcurrentRelation::adaptPlans).
/// A callback that throws aborts the migration: the exception
/// propagates out of migrateTo and the relation rolls back to the
/// source-only regime.
class MigrationObserver {
public:
  virtual ~MigrationObserver() = default;
  /// The dual-write flip committed: mutation plans now carry a
  /// MirrorWrite epilogue and the plan epoch has been bumped.
  virtual void onDualWriteStart() {}
  /// After each backfill copy attempt (\p Copied of \p Total snapshot
  /// tuples processed so far; skipped tuples — removed since the
  /// snapshot — count as processed).
  virtual void onBackfillProgress(uint64_t Copied, uint64_t Total) {
    (void)Copied;
    (void)Total;
  }
  /// Backfill converged; the retirement flip is next.
  virtual void onBeforeSwap() {}
};

} // namespace crs

#endif // CRS_RUNTIME_MIGRATION_H
