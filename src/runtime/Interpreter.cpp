//===- runtime/Interpreter.cpp - Query plan execution -------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace crs;

//===----------------------------------------------------------------------===//
// ExecContext
//===----------------------------------------------------------------------===//

ExecContext &ExecContext::current() {
  static thread_local ExecContext Ctx;
  return Ctx;
}

ExecContext &ExecContext::mirrorCtx() {
  static thread_local ExecContext Ctx;
  return Ctx;
}

void ExecContext::reset() {
  assert(Locks.heldCount() == 0 && "reset with locks still held");
  // Rewind, don't clear: the Tuple slot objects stay constructed, so
  // their entry vectors keep their capacity for the next operation.
  NumStates = 0;
  Bind.clear();
  Pool.clear();
  Vars.clear();
}

void ExecContext::begin(uint32_t NumNodes, PlanVar NumVars,
                        const Tuple &Input, NodeInstPtr Root,
                        NodeId RootNode) {
  if (Txn) {
    // Transaction scope: locks are retained to commit and the pool must
    // keep every instance they live on pinned, so only the state arena
    // and the variable table rewind between the scope's plans.
    NumStates = 0;
    Vars.clear();
  } else {
    reset();
  }
  Stride = NumNodes;
  Vars.assign(NumVars, {});
  uint32_t RootIdx = intern(std::move(Root));
  uint32_t S0 = allocState();
  Tuples[S0] = Input; // copy-assign into the recycled slot
  Bind.assign(Stride, NoBinding);
  Bind[RootNode] = RootIdx;
  Vars[0] = {0, 1};
}

uint32_t ExecContext::allocState() {
  if (NumStates == Tuples.size())
    Tuples.emplace_back();
  Bind.resize(size_t(NumStates + 1) * Stride);
  return NumStates++;
}

uint32_t ExecContext::pushStateCopy(uint32_t Src) {
  uint32_t NS = allocState();
  Tuples[NS] = Tuples[Src];
  std::copy_n(Bind.data() + size_t(Src) * Stride, Stride,
              Bind.data() + size_t(NS) * Stride);
  return NS;
}

uint32_t ExecContext::pushStateJoinOf(const Tuple &A, const Tuple &B,
                                      uint32_t Src) {
  // The operands must not live in the arena: allocState may reallocate
  // it (callers keep stable copies of in-arena tuples they join on).
  assert((Tuples.empty() || (&A < Tuples.data() ||
                             &A >= Tuples.data() + Tuples.size())) &&
         (Tuples.empty() || (&B < Tuples.data() ||
                             &B >= Tuples.data() + Tuples.size())) &&
         "joining against an arena tuple that allocState may move");
  uint32_t NS = allocState();
  Tuples[NS].assignUnion(A, B);
  std::copy_n(Bind.data() + size_t(Src) * Stride, Stride,
              Bind.data() + size_t(NS) * Stride);
  return NS;
}

uint32_t ExecContext::pushStateProjOf(uint32_t Src, ColumnSet C) {
  uint32_t NS = allocState();
  Tuples[NS].assignProject(Tuples[Src], C);
  std::fill_n(Bind.data() + size_t(NS) * Stride, Stride, NoBinding);
  return NS;
}

//===----------------------------------------------------------------------===//
// PlanExecutor
//===----------------------------------------------------------------------===//

PlanExecutor::PlanExecutor(const Decomposition &D, const LockPlacement &P)
    : Decomp(&D), Placement(&P), TopoIdx(D.topologicalIndex()) {}

LockOrderKey PlanExecutor::orderKey(NodeId Node, const NodeInstance &Inst,
                                    uint32_t Stripe) const {
  return {TopoIdx[Node], Inst.Key, Stripe};
}

/// Stripe index selected by hashing \p Cols of \p T over \p Count stripes.
static uint32_t stripeIndex(const Tuple &T, ColumnSet Cols, uint32_t Count) {
  if (Count <= 1)
    return 0;
  return static_cast<uint32_t>(T.project(Cols).hash() % Count);
}

/// One lock acquisition, transaction-aware. Outside a transaction:
/// blocking when \p SpecSite is false (plan statements arrive in the
/// global order), the §4.5 in-order/try split when true. Inside a
/// transaction scope the set's MaxKey spans every chained op, so any
/// site may legitimately fall out of order: LockSet::acquireTxn blocks
/// only in order (and only when the scope's ForceTry discipline
/// permits), tries otherwise, and a failed try or an upgrade request
/// surfaces as Restart for the transaction layer's bounded wait-die
/// path.
static ExecStatus acquireStmt(ExecContext &Ctx, PhysicalLock &Lock,
                              const LockOrderKey &Key, LockMode Mode,
                              bool SpecSite) {
  if (Ctx.Txn) {
    switch (Ctx.Locks.acquireTxn(Lock, Key, Mode, !Ctx.Txn->ForceTry)) {
    case TxnAcquire::Ok:
      return ExecStatus::Ok;
    case TxnAcquire::Upgrade:
      Ctx.Txn->SawUpgrade = true;
      return ExecStatus::Restart;
    case TxnAcquire::WouldBlock:
      return ExecStatus::Restart;
    }
  }
  if (!SpecSite || Ctx.Locks.inOrder(Key)) {
    Ctx.Locks.acquire(Lock, Key, Mode);
    return ExecStatus::Ok;
  }
  return Ctx.Locks.tryAcquire(Lock, Key, Mode) == AcquireResult::Ok
             ? ExecStatus::Ok
             : ExecStatus::Restart;
}

ExecStatus PlanExecutor::execLock(const PlanStmt &St, ExecContext &Ctx) const {
  // Wait-free read path: an epoch-eligible query plan runs under an
  // epoch guard instead of locks — every container on its path is
  // concurrency-safe, so lock statements are skipped wholesale.
  if (Ctx.LockFree)
    return ExecStatus::Ok;
  struct Req {
    LockOrderKey Key;
    PhysicalLock *Lock;
  };
  std::vector<Req> Reqs;
  ExecContext::VarRange R = Ctx.Vars[St.InVar];
  for (uint32_t I = 0; I < R.Count; ++I) {
    uint32_t S = R.First + I;
    uint32_t Idx = Ctx.bindIdx(S, St.Node);
    if (Idx == ExecContext::NoBinding)
      continue;
    NodeInstance &Inst = *Ctx.Pool[Idx];
    for (const StripeSel &Sel : St.Sels) {
      switch (Sel.M) {
      case StripeSel::Mode::All:
        for (uint32_t K = 0; K < Inst.NumStripes; ++K)
          Reqs.push_back({orderKey(St.Node, Inst, K), &Inst.Stripes[K]});
        break;
      case StripeSel::Mode::ByCols: {
        assert(Ctx.Tuples[S].domain().containsAll(Sel.Cols) &&
               "stripe selector columns unbound at lock time");
        uint32_t K = stripeIndex(Ctx.Tuples[S], Sel.Cols, Inst.NumStripes);
        Reqs.push_back({orderKey(St.Node, Inst, K), &Inst.Stripes[K]});
        break;
      }
      case StripeSel::Mode::First:
        Reqs.push_back({orderKey(St.Node, Inst, 0), &Inst.Stripes[0]});
        break;
      }
    }
  }
  // The lock operator sorts node instances into lock order before
  // acquiring; the planner's §5.2 static analysis elides the sort when
  // the states provably arrive pre-sorted (e.g. from a TreeMap scan).
  auto InOrder = [](const Req &A, const Req &B) { return A.Key < B.Key; };
  if (St.SortElided) {
    assert(std::is_sorted(Reqs.begin(), Reqs.end(), InOrder) &&
           "sort-elision analysis accepted unsorted lock input");
  } else {
    std::sort(Reqs.begin(), Reqs.end(), InOrder);
  }
  for (const Req &Q : Reqs)
    if (acquireStmt(Ctx, *Q.Lock, Q.Key, St.Mode, /*SpecSite=*/false) !=
        ExecStatus::Ok)
      return ExecStatus::Restart;
  return ExecStatus::Ok;
}

void PlanExecutor::execLookup(const PlanStmt &St, ExecContext &Ctx) const {
  const auto &E = Decomp->edge(St.Edge);
  ExecContext::VarRange R = Ctx.Vars[St.InVar];
  uint32_t OutFirst = Ctx.numAllStates();
  for (uint32_t I = 0; I < R.Count; ++I) {
    uint32_t S = R.First + I;
    uint32_t SrcIdx = Ctx.bindIdx(S, E.Src);
    if (SrcIdx == ExecContext::NoBinding)
      continue;
    Tuple Key = Ctx.Tuples[S].project(E.Cols);
    NodeInstPtr Found;
    if (!Ctx.Pool[SrcIdx]->containerFor(St.Edge).lookup(Key, Found))
      continue;
    uint32_t DstIdx = Ctx.bindIdx(S, E.Dst);
    if (DstIdx != ExecContext::NoBinding) {
      // Shared node reached along a second path (diamond): instances
      // must agree or the heap is not a well-formed decomposition
      // instance.
      assert(Ctx.Pool[DstIdx].get() == Found.get() &&
             "inconsistent shared-node binding");
      if (Ctx.Pool[DstIdx].get() != Found.get())
        continue;
    }
    uint32_t NS = Ctx.pushStateCopy(S);
    Ctx.setBind(NS, E.Dst, Ctx.intern(std::move(Found)));
  }
  Ctx.Vars[St.OutVar] = {OutFirst, Ctx.numAllStates() - OutFirst};
}

void PlanExecutor::execScan(const PlanStmt &St, ExecContext &Ctx) const {
  const auto &E = Decomp->edge(St.Edge);
  ExecContext::VarRange R = Ctx.Vars[St.InVar];
  uint32_t OutFirst = Ctx.numAllStates();
  for (uint32_t I = 0; I < R.Count; ++I) {
    uint32_t S = R.First + I;
    uint32_t SrcIdx = Ctx.bindIdx(S, E.Src);
    if (SrcIdx == ExecContext::NoBinding)
      continue;
    // The arenas may reallocate as the scan appends states: keep stable
    // copies of what the visitor reads (the instance itself is heap
    // storage, so its container reference stays valid).
    Tuple InT = Ctx.Tuples[S];
    uint32_t DstIdx = Ctx.bindIdx(S, E.Dst);
    NodeInstPtr SrcInst = Ctx.Pool[SrcIdx];
    SrcInst->containerFor(St.Edge).scan(
        [&](const Tuple &Key, const NodeInstPtr &Val) {
          if (!InT.matches(Key))
            return true; // filtered out by already-bound columns
          if (DstIdx != ExecContext::NoBinding &&
              Ctx.Pool[DstIdx].get() != Val.get())
            return true;
          uint32_t NS = Ctx.pushStateJoinOf(InT, Key, S);
          Ctx.setBind(NS, E.Dst, Ctx.intern(Val));
          return true;
        });
  }
  Ctx.Vars[St.OutVar] = {OutFirst, Ctx.numAllStates() - OutFirst};
}

ExecStatus PlanExecutor::execSpecLookup(const PlanStmt &St,
                                        ExecContext &Ctx) const {
  // Wait-free read path: with no lock taken there is nothing to verify
  // the guess against — the unlocked lookup *is* the read (speculative
  // placements already require linearizable lookups, §4.5), so the
  // statement degrades to a plain Lookup and can never Restart.
  if (Ctx.LockFree) {
    execLookup(St, Ctx);
    return ExecStatus::Ok;
  }
  const auto &E = Decomp->edge(St.Edge);
  const EdgePlacement &EP = Placement->edgePlacement(St.Edge);
  ExecContext::VarRange R = Ctx.Vars[St.InVar];
  uint32_t OutFirst = Ctx.numAllStates();
  for (uint32_t I = 0; I < R.Count; ++I) {
    uint32_t S = R.First + I;
    uint32_t SrcIdx = Ctx.bindIdx(S, E.Src);
    if (SrcIdx == ExecContext::NoBinding)
      continue;
    Tuple Key = Ctx.Tuples[S].project(E.Cols);
    const AnyContainer &Container = Ctx.Pool[SrcIdx]->containerFor(St.Edge);

    // Guess via an unlocked read (safe: speculative placements require a
    // concurrency-safe container with linearizable lookups, §4.5), lock
    // the guessed location, then verify under the lock.
    NodeInstPtr Guess;
    bool Present = Container.lookup(Key, Guess);
    if (Present) {
      // Pool the guess *before* locking it: the pool must keep the
      // instance (and its physical lock) alive through releaseAll even
      // when the verify fails and the transaction restarts.
      uint32_t GuessIdx = Ctx.intern(Guess);
      LockOrderKey OKey = orderKey(E.Dst, *Guess, 0);
      if (acquireStmt(Ctx, Guess->Stripes[0], OKey, St.Mode,
                      /*SpecSite=*/true) != ExecStatus::Ok)
        return ExecStatus::Restart;
      NodeInstPtr Recheck;
      if (!Container.lookup(Key, Recheck) || Recheck.get() != Guess.get())
        return ExecStatus::Restart; // wrong guess: release all and retry
      uint32_t NS = Ctx.pushStateCopy(S);
      Ctx.setBind(NS, E.Dst, GuessIdx);
      continue;
    }

    // Absent: the logical lock lives at the (dominating) absent-case
    // host, striped by the edge's stripe columns.
    uint32_t HostIdx = Ctx.bindIdx(S, EP.Host);
    assert(HostIdx != ExecContext::NoBinding &&
           "speculative absent-case host instance unbound");
    NodeInstance &Host = *Ctx.Pool[HostIdx];
    uint32_t Stripe = stripeIndex(Ctx.Tuples[S], EP.StripeCols,
                                  Host.NumStripes);
    LockOrderKey OKey = orderKey(EP.Host, Host, Stripe);
    if (acquireStmt(Ctx, Host.Stripes[Stripe], OKey, St.Mode,
                    /*SpecSite=*/true) != ExecStatus::Ok)
      return ExecStatus::Restart;
    NodeInstPtr Recheck;
    if (Container.lookup(Key, Recheck))
      return ExecStatus::Restart; // appeared while guessing
    // Verified absent under the absence lock: the state dies (no tuple),
    // and the held lock protects this negative observation (2PL).
  }
  Ctx.Vars[St.OutVar] = {OutFirst, Ctx.numAllStates() - OutFirst};
  return ExecStatus::Ok;
}

ExecStatus PlanExecutor::execSpecScan(const PlanStmt &St,
                                      ExecContext &Ctx) const {
  // Wait-free read path: no target locks to take, so the entry
  // collect-sort-lock protocol degrades to a plain concurrent Scan
  // (weakly consistent, like ConcurrentHashMap iteration).
  if (Ctx.LockFree) {
    execScan(St, Ctx);
    return ExecStatus::Ok;
  }
  const auto &E = Decomp->edge(St.Edge);
  ExecContext::VarRange R = Ctx.Vars[St.InVar];
  uint32_t OutFirst = Ctx.numAllStates();
  for (uint32_t I = 0; I < R.Count; ++I) {
    uint32_t S = R.First + I;
    uint32_t SrcIdx = Ctx.bindIdx(S, E.Src);
    if (SrcIdx == ExecContext::NoBinding)
      continue;
    // The all-stripes host lock held by the preceding Lock statement
    // excludes every writer of this edge, so entries are pinned; collect
    // them, then lock targets in sorted (global) order.
    struct Entry {
      Tuple Key;
      NodeInstPtr Val;
    };
    std::vector<Entry> Entries;
    Ctx.Pool[SrcIdx]->containerFor(St.Edge).scan(
        [&](const Tuple &Key, const NodeInstPtr &Val) {
          Entries.push_back({Key, Val});
          return true;
        });
    std::sort(Entries.begin(), Entries.end(),
              [](const Entry &A, const Entry &B) {
                return A.Key.compare(B.Key) < 0;
              });
    Tuple InT = Ctx.Tuples[S];
    for (Entry &En : Entries) {
      if (!InT.matches(En.Key))
        continue;
      // Pool before locking, like SpecLookup: the instance (and its
      // physical lock) must survive a transactional Restart's partial
      // release.
      uint32_t ValIdx = Ctx.intern(En.Val);
      if (acquireStmt(Ctx, En.Val->Stripes[0], orderKey(E.Dst, *En.Val, 0),
                      St.Mode, /*SpecSite=*/false) != ExecStatus::Ok)
        return ExecStatus::Restart;
      uint32_t NS = Ctx.pushStateJoinOf(InT, En.Key, S);
      Ctx.setBind(NS, E.Dst, ValIdx);
    }
  }
  Ctx.Vars[St.OutVar] = {OutFirst, Ctx.numAllStates() - OutFirst};
  return ExecStatus::Ok;
}

void PlanExecutor::execProbe(const PlanStmt &St, ExecContext &Ctx) const {
  const auto &E = Decomp->edge(St.Edge);
  ExecContext::VarRange R = Ctx.Vars[St.InVar];
  uint32_t OutFirst = Ctx.numAllStates();
  for (uint32_t I = 0; I < R.Count; ++I) {
    uint32_t S = R.First + I;
    // Total: every state passes through, bound or not.
    uint32_t NS = Ctx.pushStateCopy(S);
    uint32_t SrcIdx = Ctx.bindIdx(NS, E.Src);
    if (SrcIdx == ExecContext::NoBinding)
      continue; // absent subtree: created later
    Tuple Key = Ctx.Tuples[NS].project(E.Cols);
    NodeInstPtr Found;
    if (!Ctx.Pool[SrcIdx]->containerFor(St.Edge).lookup(Key, Found))
      continue;
    [[maybe_unused]] uint32_t DstIdx = Ctx.bindIdx(NS, E.Dst);
    assert((DstIdx == ExecContext::NoBinding ||
            Ctx.Pool[DstIdx].get() == Found.get()) &&
           "inconsistent shared-node resolution");
    Ctx.setBind(NS, E.Dst, Ctx.intern(std::move(Found)));
  }
  Ctx.Vars[St.OutVar] = {OutFirst, Ctx.numAllStates() - OutFirst};
}

void PlanExecutor::execRestrict(const PlanStmt &St, ExecContext &Ctx) const {
  NodeId Root = Decomp->root();
  ExecContext::VarRange R = Ctx.Vars[St.InVar];
  uint32_t OutFirst = Ctx.numAllStates();
  for (uint32_t I = 0; I < R.Count; ++I) {
    uint32_t S = R.First + I;
    uint32_t RootIdx = Ctx.bindIdx(S, Root);
    uint32_t NS = Ctx.pushStateProjOf(S, St.Cols);
    Ctx.setBind(NS, Root, RootIdx);
  }
  Ctx.Vars[St.OutVar] = {OutFirst, Ctx.numAllStates() - OutFirst};
}

void PlanExecutor::execCreateNode(const PlanStmt &St, ExecContext &Ctx) const {
  const auto &Node = Decomp->node(St.Node);
  ExecContext::VarRange R = Ctx.Vars[St.InVar];
  uint32_t OutFirst = Ctx.numAllStates();
  for (uint32_t I = 0; I < R.Count; ++I) {
    uint32_t NS = Ctx.pushStateCopy(R.First + I);
    if (Ctx.bindIdx(NS, St.Node) != ExecContext::NoBinding)
      continue; // resolved in the locate phase
    NodeInstPtr Inst =
        NodeInstance::create(*Decomp, St.Node,
                             Ctx.Tuples[NS].project(Node.KeyCols),
                             Placement->nodeStripes(St.Node));
    // A fresh instance reached through a speculative edge must be locked
    // before any entry is published, or a guessing reader could observe
    // the uncommitted insert (§4.5 writer protocol). The instance is not
    // yet reachable, so the acquisition cannot block — take it through
    // the try path, which is exempt from the global-order discipline.
    for (EdgeId E : Node.InEdges)
      if (Placement->edgePlacement(E).Speculative) {
        [[maybe_unused]] AcquireResult A = Ctx.Locks.tryAcquire(
            Inst->Stripes[0], orderKey(St.Node, *Inst, 0),
            LockMode::Exclusive);
        assert(A == AcquireResult::Ok &&
               "lock on an unpublished instance cannot be contended");
      }
    Ctx.setBind(NS, St.Node, Ctx.intern(std::move(Inst)));
  }
  Ctx.Vars[St.OutVar] = {OutFirst, Ctx.numAllStates() - OutFirst};
}

void PlanExecutor::execInsertEdge(const PlanStmt &St, ExecContext &Ctx) const {
  const auto &E = Decomp->edge(St.Edge);
  ExecContext::VarRange R = Ctx.Vars[St.InVar];
  for (uint32_t I = 0; I < R.Count; ++I) {
    uint32_t S = R.First + I;
    uint32_t SrcIdx = Ctx.bindIdx(S, E.Src);
    uint32_t DstIdx = Ctx.bindIdx(S, E.Dst);
    assert(SrcIdx != ExecContext::NoBinding &&
           DstIdx != ExecContext::NoBinding &&
           "insert-entry with unbound endpoints");
    if (SrcIdx == ExecContext::NoBinding || DstIdx == ExecContext::NoBinding)
      continue;
    Ctx.Pool[SrcIdx]->containerFor(St.Edge).insertOrAssign(
        Ctx.Tuples[S].project(E.Cols), Ctx.Pool[DstIdx]);
  }
}

void PlanExecutor::execEraseEdge(const PlanStmt &St, ExecContext &Ctx) const {
  const auto &E = Decomp->edge(St.Edge);
  ExecContext::VarRange R = Ctx.Vars[St.InVar];
  for (uint32_t I = 0; I < R.Count; ++I) {
    uint32_t S = R.First + I;
    uint32_t DstIdx = Ctx.bindIdx(S, E.Dst);
    if (DstIdx == ExecContext::NoBinding)
      continue;
    // Husk gate: a shared instance keeps its incoming entries until its
    // own containers have emptied out (deeper erase statements ran
    // first — reverse topological statement order).
    if (St.OnlyIfHusk && !Ctx.Pool[DstIdx]->allOutEmpty())
      continue;
    uint32_t SrcIdx = Ctx.bindIdx(S, E.Src);
    assert(SrcIdx != ExecContext::NoBinding &&
           "parent of a bound instance must be bound");
    if (SrcIdx == ExecContext::NoBinding)
      continue;
    Ctx.Pool[SrcIdx]->containerFor(St.Edge).erase(
        Ctx.Tuples[S].project(E.Cols));
  }
}

ExecStatus PlanExecutor::run(const Plan &Plan, const Tuple &Input,
                             NodeInstPtr Root, ExecContext &Ctx) const {
  Ctx.begin(Decomp->numNodes(), Plan.NumVars, Input, std::move(Root),
            Decomp->root());

  for (const PlanStmt &St : Plan.Stmts) {
    switch (St.K) {
    case PlanStmt::Kind::Lock:
      if (execLock(St, Ctx) != ExecStatus::Ok)
        return ExecStatus::Restart;
      break;
    case PlanStmt::Kind::Unlock:
      // Strict two-phase execution: everything is released by the caller
      // after the operation's writes and result extraction.
      break;
    case PlanStmt::Kind::Lookup:
      execLookup(St, Ctx);
      break;
    case PlanStmt::Kind::Scan:
      execScan(St, Ctx);
      break;
    case PlanStmt::Kind::SpecLookup:
      if (execSpecLookup(St, Ctx) != ExecStatus::Ok)
        return ExecStatus::Restart;
      break;
    case PlanStmt::Kind::SpecScan:
      if (execSpecScan(St, Ctx) != ExecStatus::Ok)
        return ExecStatus::Restart;
      break;
    case PlanStmt::Kind::Probe:
      execProbe(St, Ctx);
      break;
    case PlanStmt::Kind::Restrict:
      execRestrict(St, Ctx);
      break;
    case PlanStmt::Kind::GuardAbsent:
      if (Ctx.numStates(St.InVar) != 0)
        return ExecStatus::Found; // a tuple matching s exists (§2)
      break;
    case PlanStmt::Kind::CreateNode:
      execCreateNode(St, Ctx);
      break;
    case PlanStmt::Kind::InsertEdge:
      execInsertEdge(St, Ctx);
      break;
    case PlanStmt::Kind::EraseEdge:
      execEraseEdge(St, Ctx);
      break;
    case PlanStmt::Kind::UpdateCount: {
      uint32_t N = Ctx.numStates(St.InVar);
      if (Ctx.Count && N != 0) {
        if (St.Delta >= 0)
          Ctx.Count->fetch_add(size_t(St.Delta) * N,
                               std::memory_order_relaxed);
        else
          Ctx.Count->fetch_sub(size_t(-St.Delta) * N,
                               std::memory_order_relaxed);
      }
      break;
    }
    case PlanStmt::Kind::MirrorWrite:
      // Dual-write epilogue: replay the committed mutation on the
      // shadow representation (runtime/Migration.h) while this plan's
      // exclusive locks are still held. State 0 of variable 0 is the
      // operation's input tuple (s ∪ t for insert, s for remove);
      // InVar gates the replay on the mutation having matched. Inside a
      // transaction scope the replay is *buffered*: the scope is one
      // gated operation, so its mirrors flush at commit (locks still
      // held) and an abort discards them with the rest of the scope.
      if (Ctx.Mirror && Ctx.numStates(St.InVar) != 0) {
        if (Ctx.Txn)
          Ctx.Txn->MirrorBuf.push_back(
              {Plan.Op, Plan.DomS, Ctx.stateTuple(0, 0)});
        else
          Ctx.Mirror->mirror(Plan.Op, Plan.DomS, Ctx.stateTuple(0, 0));
      }
      break;
    }
  }
  return ExecStatus::Ok;
}
