//===- runtime/Interpreter.cpp - Query plan execution -------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace crs;

PlanExecutor::PlanExecutor(const Decomposition &D, const LockPlacement &P)
    : Decomp(&D), Placement(&P), TopoIdx(D.topologicalIndex()) {}

LockOrderKey PlanExecutor::orderKey(NodeId Node, const NodeInstance &Inst,
                                    uint32_t Stripe) const {
  return {TopoIdx[Node], Inst.Key, Stripe};
}

/// Stripe index selected by hashing \p Cols of \p T over \p Count stripes.
static uint32_t stripeIndex(const Tuple &T, ColumnSet Cols, uint32_t Count) {
  if (Count <= 1)
    return 0;
  return static_cast<uint32_t>(T.project(Cols).hash() % Count);
}

ExecStatus PlanExecutor::execLock(const PlanStmt &St,
                                  const std::vector<QueryState> &States,
                                  LockSet &Locks) const {
  struct Req {
    LockOrderKey Key;
    PhysicalLock *Lock;
  };
  std::vector<Req> Reqs;
  for (const QueryState &State : States) {
    const NodeInstPtr &Inst = State.Bound[St.Node];
    if (!Inst)
      continue;
    for (const StripeSel &Sel : St.Sels) {
      if (Sel.AllStripes) {
        for (uint32_t I = 0; I < Inst->NumStripes; ++I)
          Reqs.push_back({orderKey(St.Node, *Inst, I), &Inst->Stripes[I]});
      } else {
        assert(State.T.domain().containsAll(Sel.Cols) &&
               "stripe selector columns unbound at lock time");
        uint32_t I = stripeIndex(State.T, Sel.Cols, Inst->NumStripes);
        Reqs.push_back({orderKey(St.Node, *Inst, I), &Inst->Stripes[I]});
      }
    }
  }
  // The lock operator sorts node instances into lock order before
  // acquiring; the planner's §5.2 static analysis elides the sort when
  // the states provably arrive pre-sorted (e.g. from a TreeMap scan).
  auto InOrder = [](const Req &A, const Req &B) { return A.Key < B.Key; };
  if (St.SortElided) {
    assert(std::is_sorted(Reqs.begin(), Reqs.end(), InOrder) &&
           "sort-elision analysis accepted unsorted lock input");
  } else {
    std::sort(Reqs.begin(), Reqs.end(), InOrder);
  }
  for (const Req &R : Reqs)
    Locks.acquire(*R.Lock, R.Key, St.Mode);
  // Keep the lock owners alive until the shrinking phase completes.
  for (const QueryState &State : States)
    if (const NodeInstPtr &Inst = State.Bound[St.Node])
      Locks.pinResource(Inst);
  return ExecStatus::Ok;
}

void PlanExecutor::execLookup(const PlanStmt &St,
                              const std::vector<QueryState> &In,
                              std::vector<QueryState> &Out) const {
  const auto &E = Decomp->edge(St.Edge);
  for (const QueryState &State : In) {
    const NodeInstPtr &Inst = State.Bound[E.Src];
    if (!Inst)
      continue;
    Tuple Key = State.T.project(E.Cols);
    NodeInstPtr Found;
    if (!Inst->containerFor(St.Edge).lookup(Key, Found))
      continue;
    if (State.Bound[E.Dst]) {
      // Shared node reached along a second path (diamond): instances
      // must agree or the heap is not a well-formed decomposition
      // instance.
      assert(State.Bound[E.Dst].get() == Found.get() &&
             "inconsistent shared-node binding");
      if (State.Bound[E.Dst].get() != Found.get())
        continue;
    }
    QueryState NewState = State;
    NewState.Bound[E.Dst] = std::move(Found);
    Out.push_back(std::move(NewState));
  }
}

void PlanExecutor::execScan(const PlanStmt &St,
                            const std::vector<QueryState> &In,
                            std::vector<QueryState> &Out) const {
  const auto &E = Decomp->edge(St.Edge);
  for (const QueryState &State : In) {
    const NodeInstPtr &Inst = State.Bound[E.Src];
    if (!Inst)
      continue;
    Inst->containerFor(St.Edge).scan(
        [&](const Tuple &Key, const NodeInstPtr &Val) {
          Tuple Joined;
          if (!State.T.tryJoin(Key, Joined))
            return true; // filtered out by already-bound columns
          if (State.Bound[E.Dst] && State.Bound[E.Dst].get() != Val.get())
            return true;
          QueryState NewState;
          NewState.T = std::move(Joined);
          NewState.Bound = State.Bound;
          NewState.Bound[E.Dst] = Val;
          Out.push_back(std::move(NewState));
          return true;
        });
  }
}

ExecStatus PlanExecutor::execSpecLookup(const PlanStmt &St,
                                        const std::vector<QueryState> &In,
                                        std::vector<QueryState> &Out,
                                        LockSet &Locks) const {
  const auto &E = Decomp->edge(St.Edge);
  const EdgePlacement &EP = Placement->edgePlacement(St.Edge);
  for (const QueryState &State : In) {
    const NodeInstPtr &Inst = State.Bound[E.Src];
    if (!Inst)
      continue;
    Tuple Key = State.T.project(E.Cols);
    const AnyContainer &Container = Inst->containerFor(St.Edge);

    // Guess via an unlocked read (safe: speculative placements require a
    // concurrency-safe container with linearizable lookups, §4.5), lock
    // the guessed location, then verify under the lock.
    NodeInstPtr Guess;
    bool Present = Container.lookup(Key, Guess);
    if (Present) {
      LockOrderKey OKey = orderKey(E.Dst, *Guess, 0);
      if (Locks.inOrder(OKey)) {
        Locks.acquire(Guess->Stripes[0], OKey, St.Mode);
      } else if (Locks.tryAcquire(Guess->Stripes[0], OKey, St.Mode) !=
                 AcquireResult::Ok) {
        return ExecStatus::Restart;
      }
      Locks.pinResource(Guess);
      NodeInstPtr Recheck;
      if (!Container.lookup(Key, Recheck) || Recheck.get() != Guess.get())
        return ExecStatus::Restart; // wrong guess: release all and retry
      QueryState NewState = State;
      NewState.Bound[E.Dst] = std::move(Guess);
      Out.push_back(std::move(NewState));
      continue;
    }

    // Absent: the logical lock lives at the (dominating) absent-case
    // host, striped by the edge's stripe columns.
    const NodeInstPtr &Host = State.Bound[EP.Host];
    assert(Host && "speculative absent-case host instance unbound");
    uint32_t Stripe = stripeIndex(State.T, EP.StripeCols, Host->NumStripes);
    LockOrderKey OKey = orderKey(EP.Host, *Host, Stripe);
    if (Locks.inOrder(OKey)) {
      Locks.acquire(Host->Stripes[Stripe], OKey, St.Mode);
    } else if (Locks.tryAcquire(Host->Stripes[Stripe], OKey, St.Mode) !=
               AcquireResult::Ok) {
      return ExecStatus::Restart;
    }
    Locks.pinResource(Host);
    NodeInstPtr Recheck;
    if (Container.lookup(Key, Recheck))
      return ExecStatus::Restart; // appeared while guessing
    // Verified absent under the absence lock: the state dies (no tuple),
    // and the held lock protects this negative observation (2PL).
  }
  return ExecStatus::Ok;
}

ExecStatus PlanExecutor::execSpecScan(const PlanStmt &St,
                                      const std::vector<QueryState> &In,
                                      std::vector<QueryState> &Out,
                                      LockSet &Locks) const {
  const auto &E = Decomp->edge(St.Edge);
  for (const QueryState &State : In) {
    const NodeInstPtr &Inst = State.Bound[E.Src];
    if (!Inst)
      continue;
    // The all-stripes host lock held by the preceding Lock statement
    // excludes every writer of this edge, so entries are pinned; collect
    // them, then lock targets in sorted (global) order.
    struct Entry {
      Tuple Key;
      NodeInstPtr Val;
    };
    std::vector<Entry> Entries;
    Inst->containerFor(St.Edge).scan(
        [&](const Tuple &Key, const NodeInstPtr &Val) {
          Entries.push_back({Key, Val});
          return true;
        });
    std::sort(Entries.begin(), Entries.end(),
              [](const Entry &A, const Entry &B) {
                return A.Key.compare(B.Key) < 0;
              });
    for (Entry &En : Entries) {
      Tuple Joined;
      if (!State.T.tryJoin(En.Key, Joined))
        continue;
      Locks.acquire(En.Val->Stripes[0], orderKey(E.Dst, *En.Val, 0),
                    St.Mode);
      Locks.pinResource(En.Val);
      QueryState NewState;
      NewState.T = std::move(Joined);
      NewState.Bound = State.Bound;
      NewState.Bound[E.Dst] = En.Val;
      Out.push_back(std::move(NewState));
    }
  }
  return ExecStatus::Ok;
}

ExecStatus PlanExecutor::run(const Plan &Plan, const Tuple &Input,
                             NodeInstPtr Root, LockSet &Locks,
                             std::vector<QueryState> &Result) const {
  std::vector<std::vector<QueryState>> Vars(Plan.NumVars);
  QueryState Init;
  Init.T = Input;
  Init.Bound.resize(Decomp->numNodes());
  Init.Bound[Decomp->root()] = std::move(Root);
  Vars[0].push_back(std::move(Init));

  for (const PlanStmt &St : Plan.Stmts) {
    switch (St.K) {
    case PlanStmt::Kind::Lock:
      if (execLock(St, Vars[St.InVar], Locks) != ExecStatus::Ok)
        return ExecStatus::Restart;
      break;
    case PlanStmt::Kind::Unlock:
      // Strict two-phase execution: everything is released by the caller
      // after the operation's writes and result extraction.
      break;
    case PlanStmt::Kind::Lookup:
      execLookup(St, Vars[St.InVar], Vars[St.OutVar]);
      break;
    case PlanStmt::Kind::Scan:
      execScan(St, Vars[St.InVar], Vars[St.OutVar]);
      break;
    case PlanStmt::Kind::SpecLookup:
      if (execSpecLookup(St, Vars[St.InVar], Vars[St.OutVar], Locks) !=
          ExecStatus::Ok)
        return ExecStatus::Restart;
      break;
    case PlanStmt::Kind::SpecScan:
      if (execSpecScan(St, Vars[St.InVar], Vars[St.OutVar], Locks) !=
          ExecStatus::Ok)
        return ExecStatus::Restart;
      break;
    }
  }
  Result = std::move(Vars[Plan.ResultVar]);
  return ExecStatus::Ok;
}
