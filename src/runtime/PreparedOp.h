//===- runtime/PreparedOp.h - Prepared relational operations ----*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prepared operations: the compile-once contract of the paper (§5
/// compiles one plan per operation signature) surfaced as typed handles.
/// A handle is prepared once per signature —
///
///   PreparedQuery  Q = rel.prepareQuery(DomS, C);
///   PreparedInsert I = rel.prepareInsert(DomS);
///   PreparedRemove R = rel.prepareRemove(DomS);
///
/// — and then executed any number of times, from any thread, by binding
/// values positionally into the handle's flat per-thread argument frame:
///
///   Q.bind(0, Value::ofInt(Src)).forEach([&](const Tuple &T) { ... });
///
/// The hot path pays none of the legacy API's per-call taxes: no Tuple
/// construction or column sort, no string interning, no signature hash
/// or plan-cache walk — just a frame write, an epoch check (two atomic
/// loads), and plan execution.
///
/// Bind-slot lifetime rules:
///  * slot i binds the i-th column of the signature's input columns in
///    ascending column-id order (query/remove: dom(s); insert: every
///    column, since the plan executes over s ∪ t);
///  * bindings are per-thread and sticky: they persist across execute()
///    calls on the same thread, so a loop may rebind only the slots
///    that change; every slot must have been bound on this thread
///    before the first execution (asserted in debug);
///  * frames belong to the calling thread — two threads may bind and
///    execute one shared handle concurrently without interference;
///  * a streaming visitor must not execute operations on any relation
///    from the visiting thread (it runs on the thread's one execution
///    context; asserted in debug), and handles must not outlive their
///    relation.
///
/// Handles stay valid across ConcurrentRelation::adaptPlans(): each
/// execution validates the bound plan against the relation's
/// recompilation epoch and transparently rebinds a stale handle; the
/// recompilation counts as one plan-cache miss per signature, no matter
/// how many threads share the handle.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_RUNTIME_PREPAREDOP_H
#define CRS_RUNTIME_PREPAREDOP_H

#include "runtime/ConcurrentRelation.h"
#include "support/FunctionRef.h"
#include "sync/Epoch.h"

#include <array>
#include <memory>
#include <mutex>
#include <span>

namespace crs {

class Transaction;
class ShardedTransaction;

namespace detail {

/// The shared state behind one prepared handle: the operation
/// signature, its positional bind-slot layout, the epoch-validated plan
/// binding, and the dense frame id naming the handle's per-thread
/// argument frame. Heap-allocated and shared by handle copies; all
/// members are either immutable after construction or safe for
/// concurrent use.
class PreparedOpImpl {
public:
  PreparedOpImpl(const ConcurrentRelation &R, ConcurrentRelation *MutR,
                 PlanOp Op, ColumnSet DomS, ColumnSet Out);
  ~PreparedOpImpl(); // returns the frame id to the process free list
  PreparedOpImpl(const PreparedOpImpl &) = delete;
  PreparedOpImpl &operator=(const PreparedOpImpl &) = delete;

  unsigned numSlots() const { return static_cast<unsigned>(Slots.size()); }
  ColumnId slotColumn(unsigned Slot) const { return Slots[Slot]; }
  ColumnSet inputColumns() const { return In; }
  ColumnSet outputColumns() const { return Out; }
  PlanOp planOp() const { return Op; }
  const ConcurrentRelation &relation() const { return *Rel; }

  /// Writes \p V into slot \p Slot of the calling thread's frame.
  void bind(unsigned Slot, Value V) const;

  /// The calling thread's fully-bound argument frame (asserts in debug
  /// that every slot has been bound on this thread).
  const Value *frameArgs() const;

  /// The plan this handle currently executes: revalidates the binding
  /// against the relation's recompilation epoch and rebinds if stale.
  const Plan *resolve() const;

  /// The exclusive-mode (PlanOp::QueryForUpdate) plan for this query
  /// handle's signature, epoch-validated like resolve() through a
  /// second cached binding — a transactional read resolves in two
  /// atomic loads, the same hot path as a bare prepared execution.
  /// Query handles only (src/txn/Transaction.cpp).
  const Plan *resolveForUpdate() const;

  /// The epoch of the currently bound plan (tests, diagnostics).
  uint64_t boundEpoch() const {
    return BoundEpoch.load(std::memory_order_acquire);
  }

  /// Execution over an explicit argument array of numSlots() values
  /// (the per-thread frame, or a batch op's inline arguments).
  uint32_t runQuery(const Value *Args,
                    function_ref<void(const Tuple &)> Visit) const;
  bool runInsert(const Value *Args) const;
  unsigned runRemove(const Value *Args) const;

private:
  const Plan *rebindSlow() const;
  const Plan *rebindForUpdateSlow() const;
  /// Cold tail of a *sampled* execution (the run paths sample via
  /// MetricsRegistry::maybeSampleStart — one thread-local countdown per
  /// call, a clock read only when the period fires): records elapsed
  /// nanos into the signature's "relation.op_latency" histogram,
  /// resolving and caching the histogram pointer on first use per
  /// attachment (the only time this path touches the registry's mutex).
  void recordLatency(const RelationObs *OS, uint64_t StartNanos) const;

  const ConcurrentRelation *Rel;
  ConcurrentRelation *MutRel; ///< non-null for insert/remove handles
  PlanOp Op;
  ColumnSet DomS; ///< the signature's dom(s)
  ColumnSet In;   ///< columns the execution input binds (slot layout)
  ColumnSet Out;  ///< C for queries
  std::vector<ColumnId> Slots;
  /// Per-thread frame identity: ids are recycled through a process
  /// free list when handles die; the never-reused generation lets a
  /// thread's frame vector detect reuse and reset the bound mask.
  uint32_t FrameId;
  uint64_t FrameGen;

  /// The epoch-validated plan binding. Invariant maintained by
  /// rebindSlow(): BoundPlan was resolved *after* observing BoundEpoch,
  /// so if BoundEpoch is current the plan is current (or newer — a
  /// racing rebind may already have published the next plan, which is
  /// equally safe to execute).
  mutable std::atomic<const Plan *> BoundPlan{nullptr};
  mutable std::atomic<uint64_t> BoundEpoch{UINT64_MAX};
  /// The transactional (for-update) sibling binding; same invariant.
  mutable std::atomic<const Plan *> BoundTxnPlan{nullptr};
  mutable std::atomic<uint64_t> BoundTxnEpoch{UINT64_MAX};
  mutable std::mutex RebindM; ///< serializes the (rare) rebind paths
  /// The signature's latency histogram, cached so sampled executions
  /// record with two atomic loads + the record itself. LatHistFor
  /// remembers which attachment resolved it: a detach/re-attach cycle
  /// publishes a new RelationObs, and the pointer mismatch forces a
  /// re-resolve against the new registry/labels.
  mutable std::atomic<obs::LatencyHistogram *> LatHist{nullptr};
  mutable std::atomic<const RelationObs *> LatHistFor{nullptr};
};

} // namespace detail

/// A prepared `query r s C`. Copies share one prepared operation.
class PreparedQuery {
public:
  PreparedQuery() = default;

  unsigned numSlots() const { return Impl->numSlots(); }
  ColumnId slotColumn(unsigned Slot) const { return Impl->slotColumn(Slot); }

  /// Binds slot \p Slot of the calling thread's frame; chainable.
  const PreparedQuery &bind(unsigned Slot, Value V) const {
    Impl->bind(Slot, V);
    return *this;
  }

  /// Streaming execution: visits every matching state's full tuple
  /// (domain ⊇ dom(s) ∪ C — project what you need) without
  /// materializing a result vector. Duplicate π_C projections are NOT
  /// collapsed; callers needing set semantics use execute(). Returns
  /// the number of states visited.
  uint32_t forEach(function_ref<void(const Tuple &)> Visit) const {
    return Impl->runQuery(Impl->frameArgs(), Visit);
  }

  /// The number of matching states, with no per-result work at all.
  uint64_t count() const {
    return Impl->runQuery(Impl->frameArgs(), [](const Tuple &) {});
  }

  /// Materializing execution: π_C of the matches, deduplicated — the
  /// same result the legacy query() returns.
  std::vector<Tuple> execute() const;

  /// Epoch of the currently bound plan (diagnostics; compare against
  /// ConcurrentRelation::planEpoch()).
  uint64_t boundEpoch() const { return Impl->boundEpoch(); }
  /// The bound plan's rendering (resolves first, like an execution; the
  /// guard keeps the plan alive across str() — snapshots reclaim).
  std::string explain() const {
    EpochDomain::Guard EG;
    return Impl->resolve()->str();
  }

private:
  friend class ConcurrentRelation;
  friend class Transaction;
  friend class ShardedTransaction;
  friend struct BoundOp;
  explicit PreparedQuery(std::shared_ptr<detail::PreparedOpImpl> I)
      : Impl(std::move(I)) {}
  std::shared_ptr<detail::PreparedOpImpl> Impl;
};

/// A prepared `insert r s t`. Slots cover every column (the insert plan
/// executes over the full tuple s ∪ t); the put-if-absent check still
/// keys on the prepared dom(s).
class PreparedInsert {
public:
  PreparedInsert() = default;

  unsigned numSlots() const { return Impl->numSlots(); }
  ColumnId slotColumn(unsigned Slot) const { return Impl->slotColumn(Slot); }

  const PreparedInsert &bind(unsigned Slot, Value V) const {
    Impl->bind(Slot, V);
    return *this;
  }

  /// Atomically: if no tuple matches the bound s-columns, inserts the
  /// bound tuple and returns true; otherwise returns false (§2).
  bool execute() const { return Impl->runInsert(Impl->frameArgs()); }

  uint64_t boundEpoch() const { return Impl->boundEpoch(); }
  std::string explain() const {
    EpochDomain::Guard EG;
    return Impl->resolve()->str();
  }

private:
  friend class ConcurrentRelation;
  friend class Transaction;
  friend class ShardedTransaction;
  friend struct BoundOp;
  explicit PreparedInsert(std::shared_ptr<detail::PreparedOpImpl> I)
      : Impl(std::move(I)) {}
  std::shared_ptr<detail::PreparedOpImpl> Impl;
};

/// A prepared `remove r s` (s a key for the relation).
class PreparedRemove {
public:
  PreparedRemove() = default;

  unsigned numSlots() const { return Impl->numSlots(); }
  ColumnId slotColumn(unsigned Slot) const { return Impl->slotColumn(Slot); }

  const PreparedRemove &bind(unsigned Slot, Value V) const {
    Impl->bind(Slot, V);
    return *this;
  }

  /// Atomically removes the tuple matching the bound key; returns the
  /// number removed (0 or 1).
  unsigned execute() const { return Impl->runRemove(Impl->frameArgs()); }

  uint64_t boundEpoch() const { return Impl->boundEpoch(); }
  std::string explain() const {
    EpochDomain::Guard EG;
    return Impl->resolve()->str();
  }

private:
  friend class ConcurrentRelation;
  friend class Transaction;
  friend class ShardedTransaction;
  friend struct BoundOp;
  explicit PreparedRemove(std::shared_ptr<detail::PreparedOpImpl> I)
      : Impl(std::move(I)) {}
  std::shared_ptr<detail::PreparedOpImpl> Impl;
};

/// One operation of a batch: a prepared handle plus its arguments bound
/// inline (positionally, like the handle's slots). The handle — and,
/// for queries, the callable behind the non-owning Visit reference —
/// must stay alive until the batch has executed (an inline lambda
/// temporary dies at the end of its statement; name the visitor).
struct BoundOp {
  /// Inline argument capacity; covers every example spec comfortably
  /// (prepare-time slot counts are asserted against it).
  static constexpr unsigned MaxSlots = 8;

  static BoundOp query(const PreparedQuery &Q,
                       std::initializer_list<Value> Args,
                       function_ref<void(const Tuple &)> Visit = nullptr) {
    return make(Q.Impl.get(), Args, Visit);
  }
  static BoundOp insert(const PreparedInsert &I,
                        std::initializer_list<Value> Args) {
    return make(I.Impl.get(), Args, nullptr);
  }
  static BoundOp remove(const PreparedRemove &R,
                        std::initializer_list<Value> Args) {
    return make(R.Impl.get(), Args, nullptr);
  }

  /// After executeBatch: query → states visited; insert → 1 if the
  /// put-if-absent won; remove → tuples removed.
  int64_t result() const { return Result; }

  const detail::PreparedOpImpl *Op = nullptr;
  std::array<Value, MaxSlots> Args{};
  function_ref<void(const Tuple &)> Visit; ///< queries only (optional)
  int64_t Result = 0;

private:
  static BoundOp make(const detail::PreparedOpImpl *Impl,
                      std::initializer_list<Value> Args,
                      function_ref<void(const Tuple &)> Visit);
};

/// Executes a batch of bound operations on the calling thread, reusing
/// one execution context throughout. Compatible operations (same
/// prepared handle) are grouped and run back-to-back so each group's
/// plan, code path, and lock working set stay hot — results land in
/// each op's Result field by original position. Grouping reorders
/// execution, but deterministically: groups run in the order their
/// handles first appear in the batch, ops within a group in listed
/// order — so an op observes the effects of exactly those handles
/// whose first appearance precedes its own handle's. Every operation
/// remains individually atomic; the batch as a whole is not a
/// transaction.
void executeBatch(std::span<BoundOp> Ops);

} // namespace crs

#endif // CRS_RUNTIME_PREPAREDOP_H
