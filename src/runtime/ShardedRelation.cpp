//===- runtime/ShardedRelation.cpp - Hash-partitioned relations ---------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "runtime/ShardedRelation.h"

#include "wal/Wal.h"

#include <algorithm>

using namespace crs;
using detail::PreparedOpImpl;
using detail::ShardedOpImpl;

//===----------------------------------------------------------------------===//
// ShardedRelation
//===----------------------------------------------------------------------===//

ShardedRelation::ShardedRelation(RepresentationConfig Config,
                                 unsigned NumShards, ColumnSet RoutingCols,
                                 CostParams CP)
    : Routing(RoutingCols) {
  assert(NumShards >= 1 && "a sharded relation needs at least one shard");
  assert(Config.Spec && Config.Decomp && Config.Placement &&
         "sharding an empty representation config");
  if (Routing.isEmpty())
    Routing = chooseRoutingColumns(*Config.Spec);
  assert(!Routing.isEmpty() &&
         Config.Spec->allColumns().containsAll(Routing) &&
         "routing columns must be a nonempty subset of the specification");
  Shards.reserve(NumShards);
  for (unsigned I = 0; I < NumShards; ++I) {
    Shards.push_back(std::make_unique<ConcurrentRelation>(Config, CP));
    // Cross-shard transaction scopes acquire in shard-index order; the
    // ordinal lets the debug lock-order validator check that discipline.
    Shards.back()->setLockDomainOrdinal(I);
  }
}

bool ShardedRelation::insert(const Tuple &S, const Tuple &T) {
  // dom(s) must cover the routing set: the put-if-absent check runs on
  // one shard, so tuples agreeing on s must be co-located there.
  assert(S.domain().containsAll(Routing) &&
         "insert dom(s) must cover the routing columns");
  return Shards[shardOf(S)]->insert(S, T);
}

unsigned ShardedRelation::remove(const Tuple &S) {
  if (S.domain().containsAll(Routing))
    return Shards[shardOf(S)]->remove(S);
  // The key misses routing columns: only the shards know where the
  // match lives — run the keyed remove on each (individually atomic).
  // At most one shard matches as long as the alternate key's
  // uniqueness has been respected; shard-local put-if-absent cannot
  // enforce it across shards (see the class comment), so a violated
  // alternate key removes every cross-shard duplicate here.
  unsigned Removed = 0;
  for (auto &Sh : Shards)
    Removed += Sh->remove(S);
  return Removed;
}

std::vector<Tuple> ShardedRelation::query(const Tuple &S, ColumnSet C) const {
  if (S.domain().containsAll(Routing))
    return Shards[shardOf(S)]->query(S, C);
  // Fan-out: π_C projections from different shards can coincide, so the
  // set semantics of query() require a global dedup.
  std::vector<Tuple> Out;
  for (const auto &Sh : Shards) {
    std::vector<Tuple> Part = Sh->query(S, C);
    Out.insert(Out.end(), std::make_move_iterator(Part.begin()),
               std::make_move_iterator(Part.end()));
  }
  std::sort(Out.begin(), Out.end(), TupleLess());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

size_t ShardedRelation::size() const {
  size_t N = 0;
  for (const auto &Sh : Shards)
    N += Sh->size();
  return N;
}

uint64_t ShardedRelation::restarts() const {
  uint64_t N = 0;
  for (const auto &Sh : Shards)
    N += Sh->restarts();
  return N;
}

uint64_t ShardedRelation::planCacheMisses() const {
  uint64_t N = 0;
  for (const auto &Sh : Shards)
    N += Sh->planCacheMisses();
  return N;
}

uint64_t ShardedRelation::planCacheHits() const {
  uint64_t N = 0;
  for (const auto &Sh : Shards)
    N += Sh->planCacheHits();
  return N;
}

void ShardedRelation::attachMetrics(obs::MetricsRegistry &Reg,
                                    const std::string &Name) {
  for (unsigned I = 0; I < numShards(); ++I)
    Shards[I]->attachMetrics(Reg, Name,
                             {{"shard", std::to_string(I)}});
}

OperationCounts ShardedRelation::operationCounts() const {
  OperationCounts Out;
  for (const auto &Sh : Shards) {
    OperationCounts C = Sh->operationCounts();
    Out.Queries += C.Queries;
    Out.Inserts += C.Inserts;
    Out.Removes += C.Removes;
  }
  return Out;
}

RelationStatistics ShardedRelation::sampleStatistics() const {
  RelationStatistics Out;
  for (const auto &Sh : Shards)
    Out.accumulate(Sh->sampleStatistics());
  return Out;
}

std::vector<PlanCache::Signature> ShardedRelation::compiledSignatures() const {
  std::vector<PlanCache::Signature> Out;
  for (const auto &Sh : Shards)
    for (const PlanCache::Signature &Sig : Sh->compiledSignatures()) {
      bool Seen = false;
      for (const PlanCache::Signature &Have : Out)
        if (Have.Op == Sig.Op && Have.Dom == Sig.Dom && Have.Out == Sig.Out)
          Seen = true;
      if (!Seen)
        Out.push_back(Sig);
    }
  return Out;
}

MigrationResult ShardedRelation::migrateShard(unsigned I,
                                              RepresentationConfig Target,
                                              MigrationObserver *Obs) {
  assert(I < Shards.size() && "migrating a shard that does not exist");
  return Shards[I]->migrateTo(std::move(Target), Obs);
}

MigrationResult ShardedRelation::migrateTo(RepresentationConfig Target,
                                           MigrationObserver *Obs) {
  MigrationResult Total;
  Total.Ok = true;
  for (size_t I = 0; I < Shards.size(); ++I) {
    // A shard already serving the target (a canary, or a re-issued
    // rollout) keeps its representation: re-migrating it would pay a
    // full dual-write/backfill cycle — and stall its 1/N of the
    // keyspace — for zero semantic change. Names identify
    // representations throughout the tuner/autotuner layer.
    if (!Target.Name.empty() && Shards[I]->config().Name == Target.Name)
      continue;
    MigrationResult R = Shards[I]->migrateTo(Target, Obs);
    if (!R.Ok) {
      // Shard 0's rejection is up-front (nothing touched anywhere); a
      // later shard cannot reject differently on the same target, so a
      // failure here still names its shard for diagnosis.
      R.Error = "shard " + std::to_string(I) + ": " + R.Error;
      return R;
    }
    Total.Backfilled += R.Backfilled;
    Total.MirroredInserts += R.MirroredInserts;
    Total.MirroredRemoves += R.MirroredRemoves;
    Total.DualWriteSeconds += R.DualWriteSeconds;
  }
  return Total;
}

void ShardedRelation::adaptPlans() {
  for (auto &Sh : Shards)
    Sh->adaptPlans();
}

ValidationResult ShardedRelation::verifyConsistency() const {
  ValidationResult Out;
  for (size_t I = 0; I < Shards.size(); ++I) {
    ValidationResult R = Shards[I]->verifyConsistency();
    for (std::string &E : R.Errors)
      Out.Errors.push_back("shard " + std::to_string(I) + ": " + E);
    // Routing placement: every tuple must live on the shard its routing
    // key hashes to, or single-shard operations would miss it.
    for (const Tuple &T : Shards[I]->scanAll())
      if (shardOf(T) != I)
        Out.Errors.push_back("shard " + std::to_string(I) +
                             ": tuple routed to shard " +
                             std::to_string(shardOf(T)) + " stored here");
  }
  // Global functional dependencies. Each shard checks its own FDs, but
  // a dependency whose left side misses the routing columns can be
  // violated *across* shards (shard-local put-if-absent only sees its
  // own keyspace — the classic partitioned-uniqueness gap), and only a
  // merged check catches that. A left side covering the routing set
  // co-locates its agreeing tuples, so those FDs are already fully
  // checked per shard and the quadratic scan is skipped (for the graph
  // spec that is every FD — the common case pays nothing here).
  std::vector<Tuple> All;
  for (const auto &Fd : spec().fds()) {
    if (Fd.Lhs.containsAll(Routing))
      continue;
    if (All.empty())
      All = scanAll();
    for (size_t I = 0; I < All.size(); ++I)
      for (size_t J = I + 1; J < All.size(); ++J)
        if (All[I].project(Fd.Lhs) == All[J].project(Fd.Lhs) &&
            All[I].project(Fd.Rhs) != All[J].project(Fd.Rhs))
          Out.Errors.push_back(
              "cross-shard functional dependency violation");
  }
  return Out;
}

std::vector<Tuple> ShardedRelation::scanAll() const {
  std::vector<Tuple> Out;
  for (const auto &Sh : Shards) {
    std::vector<Tuple> Part = Sh->scanAll();
    Out.insert(Out.end(), std::make_move_iterator(Part.begin()),
               std::make_move_iterator(Part.end()));
  }
  std::sort(Out.begin(), Out.end(), TupleLess());
  return Out;
}

void ShardedRelation::attachWal(WriteAheadLog &Log) {
  assert(Log.partitions() >= numShards() &&
         "the WAL needs one partition per shard");
  for (unsigned I = 0; I < numShards(); ++I)
    Shards[I]->attachWal(Log, /*Partition=*/I, /*Shard=*/I);
}

//===----------------------------------------------------------------------===//
// Sharded prepared operations
//===----------------------------------------------------------------------===//

ShardedOpImpl::ShardedOpImpl(const ShardedRelation &R, PlanOp Op,
                             ColumnSet DomS, ColumnSet Out, bool Mut)
    : Rel(&R) {
  PerShard.reserve(R.Shards.size());
  for (const auto &Sh : R.Shards)
    PerShard.push_back(std::make_shared<PreparedOpImpl>(
        *Sh, Mut ? Sh.get() : nullptr, Op, DomS, Out));
  Staging = PerShard[0].get();
  // All shards share the spec, so every inner impl has the same
  // positional layout; extract the routing slots from it once.
  std::vector<ColumnId> Layout;
  Layout.reserve(Staging->numSlots());
  for (unsigned I = 0; I < Staging->numSlots(); ++I)
    Layout.push_back(Staging->slotColumn(I));
  Route = extractRoutingSlots(Layout, R.Routing);
}

unsigned ShardedOpImpl::shardOfArgs(const Value *Args) const {
  assert(Route.Covered && "routing an operation that must fan out");
  return static_cast<unsigned>(routingHash(Args, Route.Slots) %
                               PerShard.size());
}

unsigned ShardedOpImpl::routedShard() const {
  return shardOfArgs(Staging->frameArgs());
}

uint32_t
ShardedOpImpl::runQuery(function_ref<void(const Tuple &)> Visit) const {
  const Value *Args = Staging->frameArgs();
  if (Route.Covered)
    return PerShard[shardOfArgs(Args)]->runQuery(Args, Visit);
  // Streaming fan-out merge: each shard's execution is atomic and its
  // states stream through the shared visitor before the next shard
  // begins (locks are already released while visiting, so per-shard
  // hold times stay as short as a single-relation query's).
  uint32_t N = 0;
  for (const auto &Impl : PerShard)
    N += Impl->runQuery(Args, Visit);
  return N;
}

bool ShardedOpImpl::runInsert() const {
  const Value *Args = Staging->frameArgs();
  return PerShard[shardOfArgs(Args)]->runInsert(Args);
}

unsigned ShardedOpImpl::runRemove() const {
  const Value *Args = Staging->frameArgs();
  if (Route.Covered)
    return PerShard[shardOfArgs(Args)]->runRemove(Args);
  unsigned Removed = 0;
  for (const auto &Impl : PerShard)
    Removed += Impl->runRemove(Args);
  return Removed;
}

/// Builds a routed BoundOp from inline arguments: hash the routing
/// slots, point the op at that shard's inner impl, and executeBatch's
/// same-handle grouping does the per-shard batching from there.
static BoundOp makeRoutedOp(const ShardedOpImpl &Impl,
                            std::initializer_list<Value> Args,
                            function_ref<void(const Tuple &)> Visit) {
  assert(Args.size() == Impl.numSlots() &&
         "batch op must bind every slot positionally");
  assert(Impl.singleShard() &&
         "a fan-out operation cannot be a single batch op");
  BoundOp B;
  std::copy(Args.begin(), Args.end(), B.Args.begin());
  B.Op = &Impl.shardImpl(Impl.shardOfArgs(B.Args.data()));
  B.Visit = Visit;
  return B;
}

std::vector<Tuple> ShardedQuery::execute() const {
  ColumnSet C = Impl->outputColumns();
  std::vector<Tuple> Out;
  Impl->runQuery([&](const Tuple &T) { Out.push_back(T.project(C)); });
  std::sort(Out.begin(), Out.end(), TupleLess());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

BoundOp ShardedQuery::boundOp(std::initializer_list<Value> Args,
                              function_ref<void(const Tuple &)> Visit) const {
  return makeRoutedOp(*Impl, Args, Visit);
}

BoundOp ShardedInsert::boundOp(std::initializer_list<Value> Args) const {
  return makeRoutedOp(*Impl, Args, nullptr);
}

BoundOp ShardedRemove::boundOp(std::initializer_list<Value> Args) const {
  return makeRoutedOp(*Impl, Args, nullptr);
}

ShardedQuery ShardedRelation::prepareQuery(ColumnSet DomS, ColumnSet C) const {
  return ShardedQuery(std::make_shared<ShardedOpImpl>(
      *this, PlanOp::Query, DomS, C, /*Mut=*/false));
}

ShardedInsert ShardedRelation::prepareInsert(ColumnSet DomS) {
  assert(DomS.containsAll(Routing) &&
         "prepared-insert dom(s) must cover the routing columns "
         "(the put-if-absent check is shard-local)");
  return ShardedInsert(std::make_shared<ShardedOpImpl>(
      *this, PlanOp::Insert, DomS, spec().allColumns(), /*Mut=*/true));
}

ShardedRemove ShardedRelation::prepareRemove(ColumnSet DomS) {
  assert(spec().isKey(DomS) && "remove requires s to be a key (paper §2)");
  return ShardedRemove(std::make_shared<ShardedOpImpl>(
      *this, PlanOp::Remove, DomS, spec().allColumns(), /*Mut=*/true));
}
