//===- runtime/Statistics.h - Representation statistics ---------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measured statistics over a live decomposition instance. The data
/// representation synthesis line of work drives its query planner with
/// profiled statistics rather than static guesses; these structures
/// carry (a) per-edge container occupancy — average fanout — which can
/// be fed back into the cost model (CostParams::EdgeFanout) to replan
/// with measured cardinalities, and (b) per-node physical-lock
/// acquisition and contention counters, the §6 experiments' diagnostic
/// for why coarse placements stop scaling.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_RUNTIME_STATISTICS_H
#define CRS_RUNTIME_STATISTICS_H

#include "plan/CostModel.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace crs {

/// A cache-line-striped relaxed event counter for hot per-operation
/// counting. A single shared atomic turns every counted operation into
/// an RMW on one line bouncing between all cores — the very effect the
/// per-node lock striping exists to avoid. Here each thread hashes to
/// one of a fixed set of line-padded stripes (round-robin assignment at
/// first use, so up to NumStripes threads never collide at all); reads
/// sum the stripes. Monotonic and relaxed: readers diff successive
/// sums, exactness at an instant is not part of the contract.
class StripedCounter {
public:
  void inc() {
    Stripes[threadStripe()].N.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t load() const {
    uint64_t Sum = 0;
    for (const Stripe &S : Stripes)
      Sum += S.N.load(std::memory_order_relaxed);
    return Sum;
  }

private:
  static constexpr unsigned NumStripes = 16;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> N{0};
  };
  static unsigned threadStripe() {
    static std::atomic<unsigned> Next{0};
    static thread_local const unsigned Mine =
        Next.fetch_add(1, std::memory_order_relaxed) % NumStripes;
    return Mine;
  }
  Stripe Stripes[NumStripes];
};

/// Cumulative per-kind operation counts of one relation (relaxed
/// counters on the execution paths). The online tuner reads deltas of
/// these to estimate the live operation mix.
struct OperationCounts {
  uint64_t Queries = 0;
  uint64_t Inserts = 0;
  uint64_t Removes = 0;
  uint64_t total() const { return Queries + Inserts + Removes; }
};

/// Occupancy of one decomposition edge across all its container
/// instances.
struct EdgeOccupancy {
  uint64_t Containers = 0; ///< live container instances for the edge
  uint64_t Entries = 0;    ///< total entries across them
  double averageFanout() const {
    return Containers ? static_cast<double>(Entries) /
                            static_cast<double>(Containers)
                      : 0.0;
  }
};

/// Lock traffic on all instances of one decomposition node.
struct NodeLockTraffic {
  uint64_t Instances = 0;
  uint64_t Acquisitions = 0;
  uint64_t Contentions = 0;
};

/// A quiescent snapshot of representation statistics.
struct RelationStatistics {
  std::vector<EdgeOccupancy> Edges;  ///< indexed by EdgeId
  std::vector<NodeLockTraffic> Nodes; ///< indexed by NodeId
  uint64_t NodeInstances = 0;

  /// Folds measured fanouts into \p Base for statistics-driven
  /// replanning (unmeasured edges keep the static defaults).
  CostParams toCostParams(CostParams Base) const {
    Base.EdgeFanout.assign(Edges.size(), 0.0);
    for (size_t E = 0; E < Edges.size(); ++E)
      Base.EdgeFanout[E] = Edges[E].averageFanout();
    return Base;
  }

  /// Folds \p Other into this snapshot element-wise (a sharded
  /// relation's per-shard statistics aggregating into one view). Edge
  /// and node indices are summed positionally, which assumes the
  /// snapshots come from the same decomposition; mid-way through a
  /// shard-at-a-time migration the shards briefly disagree, and the
  /// aggregate is then only an approximation — acceptable for the
  /// monitoring and tuning paths this feeds.
  void accumulate(const RelationStatistics &Other) {
    if (Other.Edges.size() > Edges.size())
      Edges.resize(Other.Edges.size());
    for (size_t E = 0; E < Other.Edges.size(); ++E) {
      Edges[E].Containers += Other.Edges[E].Containers;
      Edges[E].Entries += Other.Edges[E].Entries;
    }
    if (Other.Nodes.size() > Nodes.size())
      Nodes.resize(Other.Nodes.size());
    for (size_t N = 0; N < Other.Nodes.size(); ++N) {
      Nodes[N].Instances += Other.Nodes[N].Instances;
      Nodes[N].Acquisitions += Other.Nodes[N].Acquisitions;
      Nodes[N].Contentions += Other.Nodes[N].Contentions;
    }
    NodeInstances += Other.NodeInstances;
  }
};

} // namespace crs

#endif // CRS_RUNTIME_STATISTICS_H
