//===- support/Stats.h - Descriptive statistics -----------------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online and batch descriptive statistics. The paper's methodology
/// (§6.2) averages the last 5 of 8 benchmark repetitions; the harness
/// uses these helpers to aggregate repeated runs.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SUPPORT_STATS_H
#define CRS_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace crs {

/// Welford-style online accumulator for mean and variance.
class OnlineStats {
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;

public:
  void add(double X);

  size_t count() const { return N; }
  double mean() const { return Mean; }
  /// Sample variance (N-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return Min; }
  double max() const { return Max; }
};

/// Returns the \p Q quantile (0 <= Q <= 1) of \p Samples using linear
/// interpolation. \p Samples is copied and sorted; empty input returns 0.
double quantile(std::vector<double> Samples, double Q);

/// Mean of the samples; 0 for empty input.
double meanOf(const std::vector<double> &Samples);

/// Mean of the last \p K samples (the paper discards JIT warmup runs and
/// averages the remainder); if fewer than K samples exist, averages all.
double meanOfLast(const std::vector<double> &Samples, size_t K);

} // namespace crs

#endif // CRS_SUPPORT_STATS_H
