//===- support/FunctionRef.h - Non-owning callable reference ----*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight non-owning reference to a callable, in the style of
/// llvm::function_ref. Useful for callback parameters (e.g. container
/// scan visitors) where storing the callable is unnecessary.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SUPPORT_FUNCTIONREF_H
#define CRS_SUPPORT_FUNCTIONREF_H

#include <cstdint>
#include <type_traits>
#include <utility>

namespace crs {

template <typename Fn> class function_ref;

/// Non-owning reference to any callable with signature `Ret(Params...)`.
/// The referenced callable must outlive the function_ref.
template <typename Ret, typename... Params>
class function_ref<Ret(Params...)> {
  Ret (*Callback)(intptr_t Callable, Params... Ps) = nullptr;
  intptr_t Callable = 0;

  template <typename Callee>
  static Ret callbackFn(intptr_t C, Params... Ps) {
    return (*reinterpret_cast<Callee *>(C))(std::forward<Params>(Ps)...);
  }

public:
  function_ref() = default;
  function_ref(std::nullptr_t) {}

  template <typename Callee>
  function_ref(Callee &&C,
               std::enable_if_t<!std::is_same_v<std::remove_cvref_t<Callee>,
                                                function_ref>> * = nullptr)
      : Callback(callbackFn<std::remove_reference_t<Callee>>),
        Callable(reinterpret_cast<intptr_t>(&C)) {}

  Ret operator()(Params... Ps) const {
    return Callback(Callable, std::forward<Params>(Ps)...);
  }

  explicit operator bool() const { return Callback; }
};

} // namespace crs

#endif // CRS_SUPPORT_FUNCTIONREF_H
