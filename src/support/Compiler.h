//===- support/Compiler.h - Compiler abstraction macros ---------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler abstraction macros used throughout the library.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SUPPORT_COMPILER_H
#define CRS_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define CRS_LIKELY(x) __builtin_expect(!!(x), 1)
#define CRS_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define CRS_LIKELY(x) (x)
#define CRS_UNLIKELY(x) (x)
#endif

namespace crs {

/// Defeats dead-code elimination of a computed value (benchmark/workload
/// sinks that consume streamed results).
template <typename T> inline void doNotOptimize(const T &V) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "g"(V) : "memory");
#else
  volatile T Sink = V;
  (void)Sink;
#endif
}

/// Reports a fatal internal error and aborts. Used for states that should
/// be impossible if the library's invariants hold.
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         unsigned Line) {
  std::fprintf(stderr, "crs fatal: %s at %s:%u\n", Msg, File, Line);
  std::abort();
}

} // namespace crs

/// Marks a point in the code that must never be reached.
#define crs_unreachable(msg) ::crs::unreachableImpl(msg, __FILE__, __LINE__)

#endif // CRS_SUPPORT_COMPILER_H
