//===- support/Table.cpp - Aligned text table printing ---------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

using namespace crs;

Table::Table(std::vector<std::string> Header) : NumCols(Header.size()) {
  Rows.push_back(std::move(Header));
}

void Table::addRow(std::vector<std::string> Cells) {
  Cells.resize(NumCols);
  Rows.push_back(std::move(Cells));
}

std::string Table::fmt(double V, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  return Buf;
}

std::string Table::fmt(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  return Buf;
}

void Table::print(std::ostream &OS) const {
  std::vector<size_t> Widths(NumCols, 0);
  for (const auto &Row : Rows)
    for (size_t I = 0; I < NumCols; ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < NumCols; ++I) {
      OS << Row[I] << std::string(Widths[I] - Row[I].size(), ' ');
      OS << (I + 1 == NumCols ? "" : "  ");
    }
    OS << '\n';
  };

  printRow(Rows.front());
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W;
  OS << std::string(Total + 2 * (NumCols - 1), '-') << '\n';
  for (size_t I = 1; I < Rows.size(); ++I)
    printRow(Rows[I]);
}
