//===- support/Hashing.h - Hash utilities -----------------------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic hashing helpers. The library needs hashes that are stable
/// across runs (lock striping indices feed into reproducible experiments),
/// so we avoid std::hash for anything that matters and use explicit mixers.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SUPPORT_HASHING_H
#define CRS_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace crs {

/// Finalization mixer from MurmurHash3; good avalanche behaviour for
/// 64-bit inputs.
inline uint64_t mix64(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ULL;
  X ^= X >> 33;
  return X;
}

/// Combines an existing hash with a new 64-bit value.
inline uint64_t hashCombine(uint64_t Seed, uint64_t V) {
  return mix64(Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2)));
}

/// FNV-1a over a byte string; stable across platforms.
inline uint64_t hashBytes(std::string_view S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

} // namespace crs

#endif // CRS_SUPPORT_HASHING_H
