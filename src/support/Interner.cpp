//===- support/Interner.cpp - Thread-safe string interning ----------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Interner.h"

#include "support/Compiler.h"

using namespace crs;

StringInterner::Id StringInterner::intern(std::string_view S) {
  std::lock_guard<std::mutex> Guard(Mutex);
  auto It = Ids.find(std::string(S));
  if (It != Ids.end())
    return It->second;
  Id NewId = static_cast<Id>(Strings.size());
  auto [Inserted, DidInsert] = Ids.emplace(std::string(S), NewId);
  assert(DidInsert && "racing insert under lock is impossible");
  (void)DidInsert;
  Strings.push_back(&Inserted->first);
  return NewId;
}

std::string_view StringInterner::lookup(Id I) const {
  std::lock_guard<std::mutex> Guard(Mutex);
  assert(I < Strings.size() && "lookup of uninterned id");
  return *Strings[I];
}

size_t StringInterner::size() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Strings.size();
}

StringInterner &StringInterner::global() {
  static StringInterner G;
  return G;
}
