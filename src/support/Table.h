//===- support/Table.h - Aligned text table printing ------------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny column-aligned table printer. Benchmark binaries use it to
/// print the paper's tables and figure series in readable, diffable form.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SUPPORT_TABLE_H
#define CRS_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace crs {

/// Accumulates rows of string cells and prints them with columns padded
/// to the widest cell. The first row added is treated as the header.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Adds one row; rows shorter than the header are padded with "".
  void addRow(std::vector<std::string> Cells);

  /// Formats a double with \p Precision fraction digits.
  static std::string fmt(double V, int Precision = 2);
  /// Formats an integer count.
  static std::string fmt(uint64_t V);

  /// Prints header, separator, and all rows.
  void print(std::ostream &OS) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::vector<std::string>> Rows;
  size_t NumCols;
};

} // namespace crs

#endif // CRS_SUPPORT_TABLE_H
