//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small deterministic PRNGs used by workload generators and property
/// tests. Benchmarks need per-thread generators that are cheap, seedable,
/// and reproducible; std::mt19937 is overkill and slower.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SUPPORT_RNG_H
#define CRS_SUPPORT_RNG_H

#include <cstdint>

namespace crs {

/// SplitMix64: tiny, statistically solid generator; also used to expand
/// seeds for Xoshiro.
class SplitMix64 {
  uint64_t State;

public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }
};

/// Xoshiro256** — the workhorse generator for benchmarks and stress tests.
class Xoshiro256 {
  uint64_t S[4];

  static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

public:
  explicit Xoshiro256(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (auto &Word : S)
      Word = SM.next();
  }

  uint64_t next() {
    uint64_t Result = rotl(S[1] * 5, 7) * 9;
    uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Uniform value in [0, Bound). Bound must be nonzero. Uses the
  /// multiply-shift trick (Lemire) to avoid modulo bias for small bounds.
  uint64_t nextBounded(uint64_t Bound) {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }
};

} // namespace crs

#endif // CRS_SUPPORT_RNG_H
