//===- support/Interner.h - Thread-safe string interning --------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String interning. Relation values (paper §2) are untyped and include
/// strings (e.g. directory-entry names in the Fig. 2 dcache relation).
/// Interning makes string values word-sized, so tuples stay cheap to hash,
/// compare, and copy on the benchmark hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SUPPORT_INTERNER_H
#define CRS_SUPPORT_INTERNER_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace crs {

/// A monotonically-growing, thread-safe map from strings to dense ids.
/// Ids are stable for the lifetime of the interner; interned strings are
/// never freed (interners are process-lifetime objects).
class StringInterner {
public:
  using Id = uint32_t;

  /// Returns the id for \p S, interning it if needed. Thread-safe.
  Id intern(std::string_view S);

  /// Returns the string for a previously interned id. Thread-safe
  /// (entries are immutable once published).
  std::string_view lookup(Id I) const;

  /// Number of distinct strings interned so far.
  size_t size() const;

  /// The process-wide interner used for relation Values.
  static StringInterner &global();

private:
  mutable std::mutex Mutex;
  std::unordered_map<std::string, Id> Ids;
  // deque: stable addresses so lookup() can return views without the lock
  // protecting against reallocation of the strings themselves.
  std::deque<const std::string *> Strings;
};

} // namespace crs

#endif // CRS_SUPPORT_INTERNER_H
