//===- support/Stats.cpp - Descriptive statistics --------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace crs;

void OnlineStats::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double OnlineStats::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double crs::quantile(std::vector<double> Samples, double Q) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  if (Samples.size() == 1)
    return Samples.front();
  double Pos = Q * static_cast<double>(Samples.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Samples.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Samples[Lo] * (1.0 - Frac) + Samples[Hi] * Frac;
}

double crs::meanOf(const std::vector<double> &Samples) {
  if (Samples.empty())
    return 0.0;
  double Sum = std::accumulate(Samples.begin(), Samples.end(), 0.0);
  return Sum / static_cast<double>(Samples.size());
}

double crs::meanOfLast(const std::vector<double> &Samples, size_t K) {
  if (Samples.empty())
    return 0.0;
  size_t Start = Samples.size() > K ? Samples.size() - K : 0;
  std::vector<double> Tail(Samples.begin() + static_cast<long>(Start),
                           Samples.end());
  return meanOf(Tail);
}
