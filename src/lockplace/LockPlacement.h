//===- lockplace/LockPlacement.h - Lock placements --------------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock placements (paper §4.3): a mapping from the logical lock of every
/// decomposition edge instance onto a physical lock attached to a node
/// instance. Placements describe the locking granularity spectrum:
///
///  * coarse — every edge maps to the single root lock (Fig. 3a, ψ1);
///  * fine — every edge maps to a lock at its source node (Fig. 3b, ψ2);
///  * striped — a node carries k physical locks, and an edge instance
///    selects one by hashing designated stripe columns of its tuple
///    (§4.4, ψ3); transactions that reach a container without the stripe
///    columns bound conservatively take all k stripes;
///  * speculative — present edge instances map to a lock on the *target*
///    node instance, absent instances to a (striped) lock at a dominating
///    host; requires a concurrency-safe container with linearizable
///    lookups (§4.5, ψ4).
///
/// Well-formedness (§4.3): the host of a non-speculative edge must
/// dominate the edge's source, and every edge on any path from the host
/// to the source must share the same placement (stability of the
/// logical→physical mapping).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_LOCKPLACE_LOCKPLACEMENT_H
#define CRS_LOCKPLACE_LOCKPLACEMENT_H

#include "decomp/Decomposition.h"

#include <string>
#include <vector>

namespace crs {

/// Placement of the logical locks of one edge.
struct EdgePlacement {
  /// Node hosting the physical lock(s) for this edge — for speculative
  /// edges, the host used for *absent* edge instances (present instances
  /// are locked at the edge's target node instance).
  NodeId Host = 0;
  /// Columns hashed to pick a stripe at the host; must be bound by the
  /// edge instance tuple (⊆ source keys ∪ edge cols). Meaningful only
  /// when the host carries more than one stripe.
  ColumnSet StripeCols;
  /// Speculative placement (§4.5): lock present entries at the target.
  bool Speculative = false;
};

/// A complete lock placement for a decomposition.
class LockPlacement {
public:
  explicit LockPlacement(const Decomposition &D);

  const Decomposition &decomposition() const { return *Decomp; }

  /// Sets the placement of edge \p E.
  void setEdge(EdgeId E, EdgePlacement P);
  /// Sets the number of physical locks (stripes) carried by instances of
  /// node \p N. Must be >= 1.
  void setNodeStripes(NodeId N, uint32_t Stripes);

  const EdgePlacement &edgePlacement(EdgeId E) const {
    return EdgePlacements[E];
  }
  uint32_t nodeStripes(NodeId N) const { return NodeStripes[N]; }

  /// Checks placement well-formedness (domination, path-sharing,
  /// speculative preconditions, stripe-column visibility).
  ValidationResult validate() const;

  /// Checks the container-safety rule of §6.1: a non-concurrent container
  /// on an edge requires the placement to serialize access to each
  /// container instance (single non-speculative lock constant across the
  /// instance's entries); concurrent containers are exempt.
  ValidationResult validateContainerSafety() const;

  /// True if the placement permits two transactions to access instances
  /// of edge \p E's container concurrently (i.e. the container must be
  /// concurrency-safe). This is the predicate the autotuner uses to pick
  /// legal containers for a placement (§6.1).
  bool allowsConcurrentAccess(EdgeId E) const;

  /// One-line summary for reports, e.g. "rho:1024 stripes; u->w @u".
  std::string str() const;

private:
  const Decomposition *Decomp;
  std::vector<EdgePlacement> EdgePlacements;
  std::vector<uint32_t> NodeStripes;
};

} // namespace crs

#endif // CRS_LOCKPLACE_LOCKPLACEMENT_H
