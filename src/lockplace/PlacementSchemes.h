//===- lockplace/PlacementSchemes.h - Canonical placements ------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constructors for the canonical lock placements the paper discusses:
/// the coarse single-root-lock placement ψ1, the fine per-source
/// placement ψ2, the striped-root placement ψ3 (§4.4), and the
/// speculative placement ψ4 (§4.5). The autotuner composes these per
/// edge; these helpers build whole-decomposition instances.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_LOCKPLACE_PLACEMENTSCHEMES_H
#define CRS_LOCKPLACE_PLACEMENTSCHEMES_H

#include "lockplace/LockPlacement.h"

namespace crs {

/// ψ1: every edge protected by the single lock at the root (Fig. 3a).
LockPlacement makeCoarsePlacement(const Decomposition &D);

/// ψ2: every edge protected by a single lock at its source (Fig. 3b).
LockPlacement makeFinePlacement(const Decomposition &D);

/// ψ3: edges out of the root striped across \p RootStripes locks selected
/// by the edge's own columns; all other edges fine-grained at their
/// source (§4.4). Non-root-sourced edges of concurrency-safe containers
/// can optionally also be striped at their source via \p InnerStripes.
LockPlacement makeStripedPlacement(const Decomposition &D,
                                   uint32_t RootStripes,
                                   uint32_t InnerStripes = 1);

/// ψ4: edges out of the root whose containers support it become
/// speculative (present entries locked at their target instance; absent
/// entries striped at the root); remaining edges fine-grained (§4.5).
LockPlacement makeSpeculativePlacement(const Decomposition &D,
                                       uint32_t RootStripes);

} // namespace crs

#endif // CRS_LOCKPLACE_PLACEMENTSCHEMES_H
