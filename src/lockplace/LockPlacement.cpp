//===- lockplace/LockPlacement.cpp - Lock placements --------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lockplace/LockPlacement.h"

#include "support/Compiler.h"

#include <functional>

using namespace crs;

LockPlacement::LockPlacement(const Decomposition &D)
    : Decomp(&D), EdgePlacements(D.numEdges()), NodeStripes(D.numNodes(), 1) {
  // Default: fine-grained — each edge locked at its source (ψ2 of §4.3).
  for (const auto &E : D.edges())
    EdgePlacements[E.Id] = {E.Src, ColumnSet::empty(), false};
}

void LockPlacement::setEdge(EdgeId E, EdgePlacement P) {
  assert(E < EdgePlacements.size() && "bad edge id");
  EdgePlacements[E] = P;
}

void LockPlacement::setNodeStripes(NodeId N, uint32_t Stripes) {
  assert(N < NodeStripes.size() && "bad node id");
  assert(Stripes >= 1 && "a node carries at least one lock");
  NodeStripes[N] = Stripes;
}

/// Visits every edge on every path from \p From to \p To (exclusive of
/// edges leaving To). Decomposition DAGs are tiny; plain DFS suffices.
static void forEachEdgeOnPaths(const Decomposition &D, NodeId From, NodeId To,
                               const std::function<void(EdgeId)> &Visit) {
  // Collect nodes that can reach To (backwards closure).
  std::vector<bool> ReachesTo(D.numNodes(), false);
  ReachesTo[To] = true;
  // Iterate in reverse topological order for a single-pass closure.
  std::vector<NodeId> Topo = D.topologicalOrder();
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It)
    for (EdgeId E : D.node(*It).OutEdges)
      if (ReachesTo[D.edge(E).Dst])
        ReachesTo[*It] = true;
  // Forward DFS from From staying within nodes that reach To.
  std::vector<bool> Visited(D.numNodes(), false);
  std::vector<NodeId> Stack{From};
  while (!Stack.empty()) {
    NodeId N = Stack.back();
    Stack.pop_back();
    if (Visited[N] || N == To)
      continue;
    Visited[N] = true;
    for (EdgeId E : D.node(N).OutEdges) {
      if (!ReachesTo[D.edge(E).Dst] && D.edge(E).Dst != To)
        continue;
      Visit(E);
      Stack.push_back(D.edge(E).Dst);
    }
  }
}

ValidationResult LockPlacement::validate() const {
  ValidationResult R;
  auto Err = [&](std::string Msg) { R.Errors.push_back(std::move(Msg)); };
  const Decomposition &D = *Decomp;

  for (const auto &E : D.edges()) {
    const EdgePlacement &P = EdgePlacements[E.Id];
    std::string Tag = "edge " + D.node(E.Src).Name + "->" +
                      D.node(E.Dst).Name + ": ";

    if (P.Speculative) {
      // §4.5: present entries are locked at the target; that only works
      // when unlocked reads of the container are safe and linearizable.
      ContainerTraits Traits = containerTraits(E.Kind);
      if (!Traits.linearizableLookup() || !Traits.concurrencySafe())
        Err(Tag + "speculative placement requires a concurrency-safe "
                  "container with linearizable lookups");
    }

    // Host (for speculative edges: the absent-instance host) must
    // dominate the source so every path meets the lock first.
    if (!D.dominates(P.Host, E.Src)) {
      Err(Tag + "host " + D.node(P.Host).Name + " does not dominate source");
      continue;
    }

    // Stripe columns must be computable from an edge-instance tuple.
    ColumnSet Visible = D.node(E.Src).KeyCols | E.Cols;
    if (!Visible.containsAll(P.StripeCols))
      Err(Tag + "stripe columns not bound by the edge instance tuple");
    // ... and must include nothing below the host's knowledge only when
    // the host is an ancestor: stripes at the host are selected by the
    // transaction, so any visible column is fine.

    // Path-sharing condition (§4.3): every edge on any path from the
    // host to the source shares this edge's placement.
    forEachEdgeOnPaths(D, P.Host, E.Src, [&](EdgeId PathEdge) {
      const EdgePlacement &Q = EdgePlacements[PathEdge];
      if (Q.Host != P.Host || Q.StripeCols != P.StripeCols ||
          Q.Speculative != P.Speculative)
        Err(Tag + "edge " + D.node(D.edge(PathEdge).Src).Name + "->" +
            D.node(D.edge(PathEdge).Dst).Name +
            " on the host-to-source path has a different placement");
    });
  }
  return R;
}

bool LockPlacement::allowsConcurrentAccess(EdgeId E) const {
  const EdgePlacement &P = EdgePlacements[E];
  if (P.Speculative)
    return true;
  // More than one stripe at the host means two transactions can hold
  // different stripes and touch the same container instance at once —
  // unless the stripe is constant per container instance, i.e. selected
  // only by columns already fixed by the *source* node's keys.
  if (NodeStripes[P.Host] > 1) {
    const Decomposition &D = *Decomp;
    ColumnSet SourceKeys = D.node(D.edge(E).Src).KeyCols;
    if (!SourceKeys.containsAll(P.StripeCols))
      return true;
    // Stripe constant per instance: all entries of one container map to
    // one stripe; access to that instance is serialized by it.
  }
  return false;
}

ValidationResult LockPlacement::validateContainerSafety() const {
  ValidationResult R;
  const Decomposition &D = *Decomp;
  for (const auto &E : D.edges()) {
    if (!allowsConcurrentAccess(E.Id))
      continue;
    if (!containerTraits(E.Kind).concurrencySafe())
      R.Errors.push_back(
          "edge " + D.node(E.Src).Name + "->" + D.node(E.Dst).Name +
          " uses non-concurrent " + containerKindName(E.Kind) +
          " but the lock placement permits concurrent access");
  }
  return R;
}

std::string LockPlacement::str() const {
  const Decomposition &D = *Decomp;
  std::string Out;
  for (const auto &E : D.edges()) {
    const EdgePlacement &P = EdgePlacements[E.Id];
    if (!Out.empty())
      Out += "; ";
    Out += D.node(E.Src).Name + "->" + D.node(E.Dst).Name + " @";
    if (P.Speculative)
      Out += "target/spec(absent@" + D.node(P.Host).Name + ")";
    else
      Out += D.node(P.Host).Name;
    if (NodeStripes[P.Host] > 1)
      Out += "[" + std::to_string(NodeStripes[P.Host]) + " stripes on " +
             D.spec().catalog().str(P.StripeCols) + "]";
  }
  return Out;
}
