//===- lockplace/PlacementSchemes.cpp - Canonical placements ------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lockplace/PlacementSchemes.h"

#include "support/Compiler.h"

using namespace crs;

LockPlacement crs::makeCoarsePlacement(const Decomposition &D) {
  LockPlacement P(D);
  for (const auto &E : D.edges())
    P.setEdge(E.Id, {D.root(), ColumnSet::empty(), false});
  return P;
}

LockPlacement crs::makeFinePlacement(const Decomposition &D) {
  LockPlacement P(D);
  for (const auto &E : D.edges())
    P.setEdge(E.Id, {E.Src, ColumnSet::empty(), false});
  return P;
}

LockPlacement crs::makeStripedPlacement(const Decomposition &D,
                                        uint32_t RootStripes,
                                        uint32_t InnerStripes) {
  LockPlacement P(D);
  P.setNodeStripes(D.root(), RootStripes);
  for (const auto &E : D.edges()) {
    if (E.Src == D.root()) {
      P.setEdge(E.Id, {D.root(), E.Cols, false});
      continue;
    }
    P.setEdge(E.Id, {E.Src, InnerStripes > 1 ? E.Cols : ColumnSet::empty(),
                     false});
    if (InnerStripes > 1)
      P.setNodeStripes(E.Src, InnerStripes);
  }
  return P;
}

LockPlacement crs::makeSpeculativePlacement(const Decomposition &D,
                                            uint32_t RootStripes) {
  LockPlacement P(D);
  P.setNodeStripes(D.root(), RootStripes);
  for (const auto &E : D.edges()) {
    if (E.Src == D.root() &&
        containerTraits(E.Kind).linearizableLookup() &&
        containerTraits(E.Kind).concurrencySafe()) {
      // Present entries locked at the target instance; absent entries
      // striped at the root by the edge's columns (ψ4 of §4.5).
      P.setEdge(E.Id, {D.root(), E.Cols, true});
      continue;
    }
    P.setEdge(E.Id, {E.Src, ColumnSet::empty(), false});
  }
  return P;
}
