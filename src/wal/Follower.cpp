//===- wal/Follower.cpp - Follower relations over the commit stream ----------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "wal/Follower.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fcntl.h>
#include <unistd.h>

using namespace crs;

//===----------------------------------------------------------------------===//
// WalTailer
//===----------------------------------------------------------------------===//

size_t WalTailer::poll(std::vector<WalRecord> &Out) {
  size_t Appended = 0;
  for (unsigned P = 0; P < Cursors.size(); ++P) {
    Cursor &C = Cursors[P];
    // Keep draining segments until one ends without a successor: the
    // flusher rotates between polls, and a poll must not stall behind
    // a sealed segment it already finished.
    for (;;) {
      std::vector<unsigned> Segs = listWalSegments(Dir, P);
      if (Segs.empty())
        break; // not created yet (no commit reached this partition)
      if (std::find(Segs.begin(), Segs.end(), C.Seg) == Segs.end()) {
        // The cursor's segment was checkpoint-pruned underneath us:
        // every record in it was consumed or checkpointed; resume at
        // the oldest surviving segment past it.
        auto Next = std::upper_bound(Segs.begin(), Segs.end(), C.Seg);
        if (Next == Segs.end())
          break;
        C.Seg = *Next;
        C.Off = 0;
      }
      // Whether a successor segment existed *before* we read: segment
      // sealing happens-before the successor file's creation, so a
      // successor visible now proves C.Seg is sealed and the read below
      // sees its every byte. (A post-read listing could witness a
      // rotation that raced past our read and skip its last batch.)
      auto NextSeg = std::upper_bound(Segs.begin(), Segs.end(), C.Seg);
      std::string Path = walSegmentPath(Dir, P, C.Seg);
      int Fd = ::open(Path.c_str(), O_RDONLY);
      if (Fd < 0)
        break;
      if (::lseek(Fd, static_cast<off_t>(C.Off), SEEK_SET) < 0) {
        ::close(Fd);
        break;
      }
      std::vector<uint8_t> Buf;
      uint8_t Chunk[1 << 16];
      for (;;) {
        ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
        if (N < 0 && errno == EINTR)
          continue;
        if (N <= 0)
          break;
        Buf.insert(Buf.end(), Chunk, Chunk + N);
      }
      ::close(Fd);
      size_t Off = 0;
      WalRecord Rec;
      bool Torn = false;
      while (Off < Buf.size()) {
        size_t Used =
            walDecodeRecord(Buf.data() + Off, Buf.size() - Off, Rec);
        if (Used == 0) {
          Torn = true;
          break; // incomplete tail: the flusher is mid-append; next poll
        }
        Out.push_back(std::move(Rec));
        Rec = WalRecord();
        Off += Used;
        ++Appended;
      }
      C.Off += Off;
      if (Torn)
        break; // mid-append bytes only ever trail the active segment
      // Clean end of a provably sealed segment: roll to the successor.
      // No successor in the pre-read listing means this may be the
      // active segment — wait for more bytes (or for the next poll to
      // see the rotation).
      if (NextSeg == Segs.end())
        break;
      C.Seg = *NextSeg;
      C.Off = 0;
    }
  }
  return Appended;
}

//===----------------------------------------------------------------------===//
// FollowerRelation
//===----------------------------------------------------------------------===//

FollowerRelation::FollowerRelation(RepresentationConfig Config,
                                   CommitChannel &Channel,
                                   std::function<std::vector<Tuple>()> BF,
                                   Options O)
    : Replica(std::move(Config)), Ch(&Channel), Backfill(std::move(BF)),
      Opts(O) {
  Applier = std::thread([this] { applierLoop(); });
}

FollowerRelation::FollowerRelation(RepresentationConfig Config)
    : Replica(std::move(Config)) {}

FollowerRelation::~FollowerRelation() { stop(); }

void FollowerRelation::stop() {
  if (!Applier.joinable())
    return;
  Stop.store(true, std::memory_order_release);
  Applier.join();
}

void FollowerRelation::apply(const WalRecord &Rec) {
  for (const WalMutation &M : Rec.Muts) {
    if (M.Op == WalOp::Insert) {
      if (!Replica.insert(M.Full, Tuple()))
        Anomalies.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (Replica.remove(M.Full) == 0)
        Anomalies.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Publish the watermark *after* the mutations: a reader that sees
  // appliedSeq ≥ S observes every delivered mutation stamped ≤ S.
  uint64_t Prev = AppliedSeq.load(std::memory_order_relaxed);
  while (Prev < Rec.CommitSeq &&
         !AppliedSeq.compare_exchange_weak(Prev, Rec.CommitSeq,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
  }
  AppliedRecords.fetch_add(1, std::memory_order_relaxed);
}

bool FollowerRelation::waitApplied(uint64_t CommitSeq,
                                   unsigned TimeoutMs) const {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMs);
  while (appliedSeq() < CommitSeq) {
    if (std::chrono::steady_clock::now() > Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

void FollowerRelation::heal() {
  GapsHealed.fetch_add(1, std::memory_order_relaxed);
  if (!Backfill) {
    // No source to reconcile against: accept the loss, resynchronize
    // the stream cursor so subsequent items apply normally.
    ExpectedStreamSeq = Ch->published() + 1;
    return;
  }
  // Bookmark before the snapshot: every record published before this
  // point has committed under its locks and is therefore visible to
  // the snapshot scan; records after it will be applied on top, which
  // is convergent (last-writer-wins per key — see the file comment).
  uint64_t Bookmark = Ch->published();
  std::vector<Tuple> Snapshot = Backfill();

  // Discard the queue's prefix up to the bookmark, keep the rest.
  std::vector<CommitChannel::Item> Pending;
  Ch->drain(Pending);
  uint64_t SeqFloor = AppliedSeq.load(std::memory_order_relaxed);
  for (const CommitChannel::Item &I : Pending)
    if (I.StreamSeq <= Bookmark)
      SeqFloor = std::max(SeqFloor, I.Rec.CommitSeq);

  // Reconcile the replica onto the snapshot: removes first so a row
  // replacement (same key, new dependent columns) never has both
  // versions in the replica at once (FD safety).
  std::vector<Tuple> Mine = Replica.scanAll();
  std::vector<Tuple> Theirs = std::move(Snapshot);
  std::sort(Theirs.begin(), Theirs.end(), TupleLess());
  std::vector<Tuple> Stale, Missing;
  std::set_difference(Mine.begin(), Mine.end(), Theirs.begin(), Theirs.end(),
                      std::back_inserter(Stale), TupleLess());
  std::set_difference(Theirs.begin(), Theirs.end(), Mine.begin(), Mine.end(),
                      std::back_inserter(Missing), TupleLess());
  for (const Tuple &T : Stale)
    Replica.remove(T);
  for (const Tuple &T : Missing)
    Replica.insert(T, Tuple());

  // The snapshot covers at least every commit bookmarked into the
  // dropped range; publish that floor so waiters don't stall on
  // records that will never be individually applied.
  uint64_t Prev = AppliedSeq.load(std::memory_order_relaxed);
  while (Prev < SeqFloor &&
         !AppliedSeq.compare_exchange_weak(Prev, SeqFloor,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
  }

  // Resume with the strictly-younger suffix.
  ExpectedStreamSeq = Bookmark + 1;
  for (CommitChannel::Item &I : Pending) {
    if (I.StreamSeq <= Bookmark)
      continue;
    if (I.StreamSeq != ExpectedStreamSeq) {
      // Dropped again while healing (pathologically small channel):
      // the items we kept still only omit a suffix; recurse once per
      // detected jump.
      heal();
      return;
    }
    apply(I.Rec);
    ++ExpectedStreamSeq;
  }
}

void FollowerRelation::applierLoop() {
  std::vector<CommitChannel::Item> Batch;
  for (;;) {
    Batch.clear();
    Ch->drain(Batch);
    if (Batch.empty()) {
      // publish() bumps the stream sequence and enqueues under one
      // mutex, so an empty drain with published ≥ our cursor means the
      // missing records were *dropped* — a tail gap no younger item
      // will ever arrive to flag. Heal it now: otherwise the follower
      // stays stale (and stop() would wait forever on records that are
      // never going to be delivered).
      if (Ch->published() >= ExpectedStreamSeq) {
        heal();
        continue;
      }
      // The publisher is at our cursor: nothing in flight.
      if (Stop.load(std::memory_order_acquire))
        return;
      std::this_thread::sleep_for(std::chrono::microseconds(Opts.PollMicros));
      continue;
    }
    for (size_t I = 0; I < Batch.size(); ++I) {
      const CommitChannel::Item &It = Batch[I];
      if (It.StreamSeq != ExpectedStreamSeq) {
        // A drop happened between the last drained item and this one.
        // Re-publish the unprocessed suffix is unnecessary — heal()
        // re-drains the channel itself; but the suffix of *this* batch
        // must not be lost: process it through the same gap logic by
        // healing (which snapshots the source — covering these items'
        // effects too, as they are already committed) and dropping
        // the rest of the batch.
        heal();
        break;
      }
      apply(It.Rec);
      ++ExpectedStreamSeq;
    }
  }
}
