//===- wal/Wal.h - Group-commit write-ahead log -----------------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durability half of the commit-log pipeline (ROADMAP item 2): a
/// partitioned redo log fed by the same commit-stamped mutation stream
/// the transaction undo log and the stress oracle already use. One
/// record per committed (scope, shard): `(commitSeq, shard, mutations)`,
/// where each mutation is the operation kind plus the *full* tuple —
/// exactly the information an undo record carries, flipped from
/// "how to erase this effect" to "how to reproduce it".
///
/// **Ordering contract.** A record is appended to its shard's partition
/// *before* the committing operation releases any lock (the relation
/// hooks sit inside the mutation plans' lock scopes, and the
/// transaction hook inside commitWithSeq before releaseScope). Two
/// conflicting mutations therefore append in their serialization order:
/// the first committer appended while still holding the key the second
/// is waiting on. Partition file order is thus per-key serialization
/// order, and commit sequence numbers (stamped under the same locks)
/// are globally consistent with it — replaying one partition in
/// commitSeq order reproduces every per-key history exactly
/// (docs/ARCHITECTURE.md, "Durability & replication").
///
/// **Group commit.** Appenders serialize a record into the partition's
/// in-memory tail under a short mutex (memcpy-scale work — the commit
/// path never performs I/O), and a dedicated flusher thread batches the
/// accumulated tail of every partition into one write(2) + fsync(2)
/// round per park window. Scopes that require durability-on-commit
/// (FsyncMode::Sync) park at the stamp point until the round covering
/// their record completes; the park is bounded by the window, so a lone
/// writer is flushed within ParkMicros instead of waiting for company.
/// FsyncMode::Batched (the default) acknowledges after the in-memory
/// append; with nobody parked on the round, the flusher stretches its
/// cadence to the larger FlushMicros (the durability-lag bound — each
/// wakeup preempts committers when cores are scarce): every byte still
/// reaches the file in order within one cadence window, so a process
/// kill loses at most that window and a recovered prefix is always
/// mutation-consistent.
///
/// The same append, under the same partition mutex, publishes the
/// record to an attached CommitChannel — the replication feed
/// (wal/Follower.h) is the durability pipeline observed live rather
/// than from disk.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_WAL_WAL_H
#define CRS_WAL_WAL_H

#include "obs/Metrics.h"
#include "rel/Tuple.h"
#include "support/FunctionRef.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace crs {

/// A logged mutation: the redo form of a committed effect. Insert
/// reproduces the tuple (put-if-absent keyed on the full tuple — the
/// migration mirror's idempotent replay shape); Remove erases it (the
/// full tuple is trivially a key: it determines every column).
enum class WalOp : uint8_t { Insert = 0, Remove = 1 };

struct WalMutation {
  WalOp Op = WalOp::Insert;
  Tuple Full; ///< the complete tuple inserted / removed
};

/// One decoded log record: everything shard \p Shard committed under
/// commit sequence \p CommitSeq, in execution order.
struct WalRecord {
  uint64_t CommitSeq = 0;
  uint32_t Shard = 0;
  std::vector<WalMutation> Muts;
};

/// Durability discipline of the commit path.
enum class FsyncMode : uint8_t {
  None,    ///< append to the file via the flusher; never fsync (tests)
  Batched, ///< default: ack after the in-memory append; the flusher
           ///< write+fsyncs every park window (bounded durability lag)
  Sync,    ///< ack only once an fsync covers the record (group commit:
           ///< scopes park at the stamp point, one fsync per batch)
};

/// A bounded in-process commit-stream channel: the WAL publishes every
/// appended record (all partitions, under the partition mutex — so
/// per-key order is preserved) with a dense per-channel stream sequence;
/// a FollowerRelation consumes them in order. The publisher never
/// blocks — it is on the commit path, holding relation locks — so a
/// full channel *drops* the record and advances the stream sequence
/// anyway: the consumer detects the gap and heals it with a backfill
/// walk (wal/Follower.h) instead of ever stalling writers.
class CommitChannel {
public:
  explicit CommitChannel(size_t Capacity = 8192) : Capacity(Capacity) {}

  struct Item {
    uint64_t StreamSeq = 0; ///< dense; a jump at the consumer = a gap
    WalRecord Rec;
  };

  /// Publisher side (WAL internal). Drops when full, never blocks.
  void publish(WalRecord Rec);

  /// Pops every available item into \p Out (appending); returns the
  /// number popped. Non-blocking.
  size_t drain(std::vector<Item> &Out);

  /// Stream sequence numbers handed out so far (published + dropped).
  uint64_t published() const {
    return Published.load(std::memory_order_acquire);
  }
  /// Records dropped because the channel was full (gaps to heal).
  uint64_t dropped() const { return Dropped.load(std::memory_order_relaxed); }

private:
  const size_t Capacity;
  mutable std::mutex M;
  std::deque<Item> Q;
  std::atomic<uint64_t> Published{0};
  std::atomic<uint64_t> Dropped{0};
};

/// The partitioned group-commit log. One instance serves a whole
/// relation fleet: ShardedRelation::attachWal maps shard i onto
/// partition i, a standalone ConcurrentRelation uses partition 0.
class WriteAheadLog {
public:
  struct Options {
    std::string Dir;          ///< created if absent
    unsigned Partitions = 1;  ///< one file per partition: wal-<i>.log
    FsyncMode Fsync = FsyncMode::Batched;
    /// Segment rotation threshold: once a partition's active segment
    /// file reaches this many bytes, the flusher seals it and opens the
    /// next segment (`wal-<i>.<seg>.log`; segment 0 keeps the legacy
    /// `wal-<i>.log` name). Checkpoints then delete segments whose
    /// records all fall at or below the checkpoint watermark
    /// (pruneSegments), so partition storage is bounded by the
    /// checkpoint cadence instead of growing forever. 0 disables
    /// rotation (single-file behaviour).
    uint64_t SegmentBytes = 64ull << 20;
    /// Group-commit batching window: in Sync mode, how long the flusher
    /// collects parked committers before the round that acks them all —
    /// the commit-latency bound, kept small.
    unsigned ParkMicros = 200;
    /// Flusher round cadence in Batched/None mode, where nobody waits
    /// on a round: the durability-lag bound, kept much larger than
    /// ParkMicros so a busy commit path is not taxed with per-window
    /// flusher wakeups (on few cores each round preempts the
    /// committers; see the group-commit section of the file comment).
    unsigned FlushMicros = 5000;
  };

  /// Opens (creating or appending to) the partition files under
  /// Options::Dir and starts the flusher thread. Null plus \p Err on
  /// I/O failure.
  static std::unique_ptr<WriteAheadLog> open(const Options &O,
                                             std::string *Err = nullptr);
  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog &) = delete;
  WriteAheadLog &operator=(const WriteAheadLog &) = delete;

  /// The commit-path append: serializes `(CommitSeq, Shard, Muts)` into
  /// partition \p Partition's tail and publishes it to the attached
  /// channel, both under the partition mutex. **Call with every lock of
  /// the committing mutation still held** — that is what makes file
  /// order the serialization order. Under FsyncMode::Sync this parks
  /// until the record is on stable storage (bounded by the park
  /// window + one fsync); otherwise it returns after the in-memory
  /// append.
  void logCommit(uint32_t Partition, uint64_t CommitSeq, uint32_t Shard,
                 const WalMutation *Muts, size_t NumMuts);

  /// Single-mutation form for the bare-operation hooks: semantically the
  /// array overload with one `(Op, Full)` mutation, but it encodes
  /// straight from the caller's tuple — no WalMutation and no tuple copy
  /// on the per-operation commit path. (A copy still happens when a
  /// replication channel is attached: the published record must own its
  /// tuple.)
  void logCommit(uint32_t Partition, uint64_t CommitSeq, uint32_t Shard,
                 WalOp Op, const Tuple &Full);

  /// Streaming form for the transaction commit hook (ROADMAP 2c):
  /// encodes the record straight from the caller's commit log.
  /// Mutation \p I is fetched by calling \p Mut(I, Full) — the callback
  /// returns the operation kind and points \p Full at the mutation's
  /// tuple — and each tuple is encoded restricted to \p Project
  /// (projection happens *during* encoding). No WalMutation vector and
  /// no projected tuple copies are materialized on the commit path;
  /// byte-identical to the array overload fed `{Op, Full.project(
  /// Project)}` mutations (tuple entries are stored in column order, so
  /// filtering while encoding writes the same bytes — wal_test asserts
  /// the equivalence). \p Mut may be called a second time per index
  /// when a replication channel is attached (the published record must
  /// own its tuples).
  void logCommit(uint32_t Partition, uint64_t CommitSeq, uint32_t Shard,
                 size_t NumMuts, ColumnSet Project,
                 function_ref<WalOp(size_t, const Tuple *&)> Mut);

  /// Synchronously drains every partition tail to its file (fsync
  /// included unless FsyncMode::None). Returns once all bytes appended
  /// before the call are written. Checkpoint/recovery tests and clean
  /// shutdown use this; the destructor calls it implicitly.
  void flush();

  /// Deletes sealed segments of \p Partition whose highest commit
  /// sequence is ≤ \p Watermark — every record in them is already
  /// covered by a checkpoint at \p Watermark, so recovery will never
  /// replay them. The active segment is never deleted. Checkpoint
  /// writers call this after the checkpoint file is durably renamed in
  /// place. Returns the number of segment files removed.
  unsigned pruneSegments(uint32_t Partition, uint64_t Watermark);

  /// Attaches/detaches the live replication channel. Attach before
  /// traffic (or accept that the follower starts with a gap and heals
  /// it via backfill).
  void attachChannel(CommitChannel *Ch) {
    Channel.store(Ch, std::memory_order_release);
  }
  void detachChannel() { Channel.store(nullptr, std::memory_order_release); }

  unsigned partitions() const {
    return static_cast<unsigned>(Parts.size());
  }
  const std::string &dir() const { return Dir; }
  FsyncMode fsyncMode() const { return Mode; }

  /// \name Counters (tests and the bench harness)
  /// @{
  uint64_t recordsAppended() const {
    return Records.load(std::memory_order_relaxed);
  }
  uint64_t bytesAppended() const {
    return Bytes.load(std::memory_order_relaxed);
  }
  /// write+fsync rounds the flusher completed (≥1 appended byte each).
  uint64_t syncRounds() const {
    return Rounds.load(std::memory_order_relaxed);
  }
  /// Active-segment seals (rotations to a fresh segment file).
  uint64_t segmentRotations() const {
    return Rotations.load(std::memory_order_relaxed);
  }
  /// @}

  /// \name Observability (src/obs)
  /// Registers the log's counters with \p R under \p Labels
  /// (wal.records_appended / bytes_appended / flush_rounds /
  /// segment_rotations) and points WalFlushRound / WalSegmentRotate
  /// trace events at the registry's Wal-domain ring. Same lifetime
  /// contract as attachChannel: attach before traffic; the destructor
  /// detaches, so destroy the registry after the log (or call
  /// detachMetrics() first).
  /// @{
  void attachMetrics(obs::MetricsRegistry &R, obs::MetricLabels Labels = {});
  void detachMetrics();
  /// @}

private:
  WriteAheadLog() = default;

  struct Partition {
    int Fd = -1;
    std::mutex M;                ///< guards Tail/Appended/TailMaxSeq
    std::vector<uint8_t> Tail;   ///< bytes appended, not yet written
    uint64_t Appended = 0;       ///< total bytes ever appended
    uint64_t TailMaxSeq = 0;     ///< max commitSeq in Tail (under M)
    std::atomic<uint64_t> Durable{0}; ///< bytes covered by write(+fsync)
    /// \name Segmentation state (guarded by RoundM: only the flusher
    /// round and pruneSegments touch it)
    /// @{
    unsigned Seg = 0;       ///< index of the active (open) segment
    uint64_t SegBytes = 0;  ///< bytes written to the active segment
    uint64_t SegMaxSeq = 0; ///< max commitSeq written to it
    /// Highest commit sequence per sealed segment — what pruneSegments
    /// compares against the checkpoint watermark. Segments sealed by a
    /// previous process life are absent here; pruneSegments recovers
    /// their max by scanning the file once and caches it.
    std::map<unsigned, uint64_t> SealedMaxSeq;
    /// @}
  };

  void flusherLoop();
  /// One write(+fsync) round over every partition; returns bytes moved.
  uint64_t flushRound();
  /// Seals \p P's active segment (records its max commit sequence for
  /// pruning) and opens the next one. Caller holds RoundM. Latches
  /// Failed on open failure.
  void rotateSegmentLocked(Partition &P, unsigned Index);
  /// Shared tail of the logCommit overloads: appends the wire bytes in
  /// \p Encoded to partition \p Partition, publishes \p MakeRecord()'s
  /// result to the channel if one is attached (both under the partition
  /// mutex), wakes the flusher, and parks for durability in Sync mode.
  /// \p CommitSeq feeds the per-segment max used by pruneSegments.
  void appendEncoded(uint32_t Partition, uint64_t CommitSeq,
                     const std::vector<uint8_t> &Encoded,
                     function_ref<WalRecord()> MakeRecord);

  std::string Dir;
  FsyncMode Mode = FsyncMode::Batched;
  unsigned ParkMicros = 200;
  unsigned FlushMicros = 5000;
  uint64_t SegmentBytes = 0;
  std::vector<std::unique_ptr<Partition>> Parts;
  std::atomic<CommitChannel *> Channel{nullptr};

  /// Flusher coordination: appenders flip DirtyFlag (warm path: one
  /// atomic read) and signal Cv; the flusher parks for the batching
  /// window, then runs a round serialized by RoundM (flush() runs rounds
  /// from the caller's thread too). Sync-mode committers wait on
  /// CvDurable until Durable covers their record. Failed latches on the
  /// first write/fsync error so waiters never hang on a dead disk.
  std::mutex FlushM;
  std::condition_variable Cv;
  std::condition_variable CvDurable;
  bool Dirty = false;
  bool Stop = false;
  std::atomic<bool> DirtyFlag{false};
  std::atomic<bool> Failed{false};
  std::mutex RoundM;
  std::thread Flusher;

  std::atomic<uint64_t> Records{0};
  std::atomic<uint64_t> Bytes{0};
  std::atomic<uint64_t> Rounds{0};
  std::atomic<uint64_t> Rotations{0};

  /// Observability wiring (attachMetrics). Trace is read by the flusher
  /// round lock-free; the callback bookkeeping is touched only from
  /// attach/detach (caller-serialized, like open/destroy).
  std::atomic<obs::TraceRing *> Trace{nullptr};
  obs::MetricsRegistry *MetricsReg = nullptr;
  std::vector<obs::MetricsRegistry::CallbackId> MetricsCallbacks;
};

/// \name On-disk record format (shared with checkpoint/recovery)
/// Per record: u32 payload length, u32 CRC-32 of the payload, payload =
/// { u64 commitSeq, u32 shard, u32 numMuts, muts... }; each mutation is
/// { u8 op, u16 numEntries, entries... }; each entry is { u32 columnId,
/// u8 kind, i64 | (u32 len, bytes) }. String values serialize their
/// bytes — intern ids are process-local and must never reach disk.
/// @{

/// Appends the wire form of one record to \p Out.
void walEncodeRecord(std::vector<uint8_t> &Out, uint64_t CommitSeq,
                     uint32_t Shard, const WalMutation *Muts, size_t NumMuts);

/// Decodes one record at \p Data (size \p Len). Returns the bytes
/// consumed, or 0 if the prefix is incomplete or corrupt (a torn tail).
size_t walDecodeRecord(const uint8_t *Data, size_t Len, WalRecord &Out);

/// CRC-32 (IEEE, reflected) over \p Len bytes.
uint32_t walCrc32(const uint8_t *Data, size_t Len);

/// The partition file path `Dir/wal-<i>.log`.
std::string walPartitionPath(const std::string &Dir, unsigned Partition);

/// The segment file path: segment 0 is the legacy `Dir/wal-<i>.log`
/// (a pre-segmentation log *is* its partitions' segment 0), later
/// segments are `Dir/wal-<i>.<seg>.log`.
std::string walSegmentPath(const std::string &Dir, unsigned Partition,
                           unsigned Segment);

/// The segment indices of \p Partition present under \p Dir, ascending.
/// Checkpoint-pruned segments simply don't appear — recovery reads the
/// surviving segments in index order.
std::vector<unsigned> listWalSegments(const std::string &Dir,
                                      unsigned Partition);

/// Result of scanning one partition file.
struct WalReadResult {
  std::vector<WalRecord> Records; ///< the valid prefix, in file order
  uint64_t ValidBytes = 0;        ///< length of that prefix on disk
  bool TornTail = false; ///< trailing bytes did not parse (crash tail)
  std::string Error;     ///< non-empty on I/O failure (not torn tails)

  bool ok() const { return Error.empty(); }
};

/// Reads every complete record of \p Path (a missing file is an empty
/// result, not an error — a shard may simply never have committed). A
/// torn tail — the expected remnant of a mid-append crash — stops the
/// scan cleanly at the last whole record.
WalReadResult readWalPartition(const std::string &Path);

/// Truncates \p Path to \p ValidBytes — recovery calls this so a
/// reopened log appends after the last whole record instead of after
/// torn bytes. False on I/O failure.
bool truncateWalPartition(const std::string &Path, uint64_t ValidBytes);

/// @}

} // namespace crs

#endif // CRS_WAL_WAL_H
