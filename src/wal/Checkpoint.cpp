//===- wal/Checkpoint.cpp - Checkpoints and crash recovery -------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "wal/Checkpoint.h"

#include "runtime/ConcurrentRelation.h"
#include "runtime/ShardedRelation.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace crs;

namespace {

/// The checkpoint file is a sequence of WAL-format records (CRC per
/// record, same tuple encoding): a header record with zero mutations
/// whose CommitSeq is the watermark and Shard the owning shard, data
/// records carrying the snapshot as Insert mutations, and a trailer
/// record (zero mutations, Shard = TrailerShard) marking completion.
/// A file whose last record is not the trailer — or with torn bytes
/// after it — is an incomplete checkpoint and is rejected whole.
constexpr uint32_t TrailerShard = 0xffffffffu;

/// Snapshot tuples per data record: bounds the encode buffer without
/// paying per-tuple record overhead.
constexpr size_t TuplesPerRecord = 256;

bool writeAll(int Fd, const std::vector<uint8_t> &Buf, std::string *Err,
              const std::string &Path) {
  size_t Off = 0;
  while (Off < Buf.size()) {
    ssize_t W = ::write(Fd, Buf.data() + Off, Buf.size() - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      if (Err)
        *Err = Path + ": " + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  return true;
}

} // namespace

std::string crs::checkpointPath(const std::string &Dir, uint32_t Shard,
                                uint64_t Watermark) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "/ckpt-%u-%llu", Shard,
                static_cast<unsigned long long>(Watermark));
  return Dir + Buf;
}

std::vector<uint64_t> crs::listCheckpoints(const std::string &Dir,
                                           uint32_t Shard) {
  std::vector<uint64_t> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Out;
  char Prefix[32];
  std::snprintf(Prefix, sizeof(Prefix), "ckpt-%u-", Shard);
  size_t PrefixLen = std::strlen(Prefix);
  while (struct dirent *E = ::readdir(D)) {
    if (std::strncmp(E->d_name, Prefix, PrefixLen) != 0)
      continue;
    char *End = nullptr;
    unsigned long long W = std::strtoull(E->d_name + PrefixLen, &End, 10);
    if (End && *End == '\0' && W > 0)
      Out.push_back(W);
  }
  ::closedir(D);
  std::sort(Out.begin(), Out.end());
  return Out;
}

bool crs::readCheckpoint(const std::string &Path, CheckpointData &Out) {
  WalReadResult R = readWalPartition(Path);
  if (!R.ok() || R.TornTail || R.Records.size() < 2)
    return false;
  const WalRecord &Header = R.Records.front();
  const WalRecord &Trailer = R.Records.back();
  if (!Header.Muts.empty() || Header.CommitSeq == 0)
    return false;
  if (!Trailer.Muts.empty() || Trailer.Shard != TrailerShard ||
      Trailer.CommitSeq != Header.CommitSeq)
    return false;
  Out.Watermark = Header.CommitSeq;
  Out.Shard = Header.Shard;
  Out.Tuples.clear();
  for (size_t I = 1; I + 1 < R.Records.size(); ++I) {
    const WalRecord &Rec = R.Records[I];
    if (Rec.CommitSeq != Header.CommitSeq)
      return false;
    for (const WalMutation &M : Rec.Muts) {
      if (M.Op != WalOp::Insert)
        return false;
      Out.Tuples.push_back(M.Full);
    }
  }
  return true;
}

bool crs::writeCheckpoint(ConcurrentRelation &R, const std::string &Dir,
                          uint32_t Shard, uint64_t *WatermarkOut,
                          std::string *Err) {
  // One level of mkdir suffices here — attachWal/WriteAheadLog::open
  // usually created the directory; tolerate EEXIST.
  if (::mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST) {
    if (Err)
      *Err = Dir + ": " + std::strerror(errno);
    return false;
  }

  // Trace via the relation's observability wiring when attached: begin
  // before the gate-draining snapshot, end after the durable rename.
  const detail::RelationObs *OS = R.observability();
  if (OS)
    OS->WalRing->emit(obs::EventKind::CheckpointBegin, Shard);

  uint64_t Watermark = 0;
  std::vector<Tuple> Snapshot = R.checkpointSnapshot(Watermark);
  // Watermark 0 means "nothing ever committed anywhere" — the clock is
  // global, so 0 also means no record can precede this checkpoint.
  // Encode outside any gate or lock: the snapshot is ours alone.
  std::vector<uint8_t> Buf;
  walEncodeRecord(Buf, Watermark, Shard, nullptr, 0); // header
  std::vector<WalMutation> Chunk;
  for (size_t I = 0; I < Snapshot.size(); I += TuplesPerRecord) {
    Chunk.clear();
    size_t N = std::min(TuplesPerRecord, Snapshot.size() - I);
    for (size_t J = 0; J < N; ++J)
      Chunk.push_back({WalOp::Insert, std::move(Snapshot[I + J])});
    walEncodeRecord(Buf, Watermark, Shard, Chunk.data(), Chunk.size());
  }
  walEncodeRecord(Buf, Watermark, TrailerShard, nullptr, 0); // trailer

  std::string Final = checkpointPath(Dir, Shard, Watermark);
  std::string Tmp = Final + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (Fd < 0) {
    if (Err)
      *Err = Tmp + ": " + std::strerror(errno);
    return false;
  }
  bool Ok = writeAll(Fd, Buf, Err, Tmp) && ::fsync(Fd) == 0;
  ::close(Fd);
  if (!Ok) {
    ::unlink(Tmp.c_str());
    return false;
  }
  if (::rename(Tmp.c_str(), Final.c_str()) != 0) {
    if (Err)
      *Err = Final + ": " + std::strerror(errno);
    ::unlink(Tmp.c_str());
    return false;
  }
  // The checkpoint durably covers every record at or below Watermark:
  // sealed WAL segments wholly beneath it will never be replayed again,
  // so reclaim them (ROADMAP 2a — the log no longer grows unboundedly).
  if (WriteAheadLog *W = R.walLog())
    W->pruneSegments(R.walPartition(), Watermark);
  if (OS)
    OS->WalRing->emit(obs::EventKind::CheckpointEnd, Shard, Watermark,
                      Snapshot.size());
  if (WatermarkOut)
    *WatermarkOut = Watermark;
  return true;
}

bool crs::writeShardedCheckpoint(ShardedRelation &R, const std::string &Dir,
                                 std::string *Err) {
  for (unsigned I = 0; I < R.numShards(); ++I)
    if (!writeCheckpoint(R.shard(I), Dir, I, nullptr, Err))
      return false;
  return true;
}

RecoveryResult crs::recoverRelation(ConcurrentRelation &R,
                                    const std::string &Dir, uint32_t Shard,
                                    uint32_t Partition) {
  RecoveryResult Res;
  assert(R.size() == 0 && "recovery target must be freshly constructed");

  // Newest valid checkpoint, falling back through older ones past any
  // corrupt/incomplete file (the kill-during-checkpoint leftovers).
  CheckpointData Ckpt;
  bool HaveCkpt = false;
  std::vector<uint64_t> Marks = listCheckpoints(Dir, Shard);
  for (auto It = Marks.rbegin(); It != Marks.rend(); ++It) {
    if (readCheckpoint(checkpointPath(Dir, Shard, *It), Ckpt) &&
        Ckpt.Shard == Shard) {
      HaveCkpt = true;
      break;
    }
  }
  if (HaveCkpt) {
    Res.CheckpointSeq = Ckpt.Watermark;
    Res.CheckpointTuples = Ckpt.Tuples.size();
    for (const Tuple &T : Ckpt.Tuples)
      if (!R.insert(T, Tuple()))
        ++Res.Anomalies; // duplicate inside a checkpoint: impossible
                         // unless hand-edited, but never fatal
  }

  // The WAL partition: every surviving segment in index order (indices
  // pruned by past checkpoints are simply absent — their records were
  // all at or below some checkpoint watermark), every complete record,
  // torn tail cut off. A torn tail is only the expected mid-append
  // crash shape on the *last* segment; a torn earlier segment means the
  // later ones postdate a corruption, so replay stops at the tear to
  // keep the recovered prefix mutation-consistent.
  std::vector<WalRecord> Records;
  std::vector<unsigned> Segs = listWalSegments(Dir, Partition);
  if (Segs.empty())
    Segs.push_back(0); // legacy/fresh dir: readWalPartition(ENOENT) = empty
  for (size_t SI = 0; SI < Segs.size(); ++SI) {
    std::string SegPath = walSegmentPath(Dir, Partition, Segs[SI]);
    WalReadResult Log = readWalPartition(SegPath);
    if (!Log.ok()) {
      Res.Error = Log.Error;
      return Res;
    }
    for (WalRecord &Rec : Log.Records)
      Records.push_back(std::move(Rec));
    if (Log.TornTail) {
      Res.TornTail = true;
      struct stat St;
      if (::stat(SegPath.c_str(), &St) == 0)
        Res.TruncatedBytes +=
            static_cast<uint64_t>(St.st_size) - Log.ValidBytes;
      if (!truncateWalPartition(SegPath, Log.ValidBytes)) {
        Res.Error = SegPath + ": truncate: " + std::strerror(errno);
        return Res;
      }
      break; // anything after a tear is not a consistent suffix
    }
  }

  // Replay above the watermark in commit order. stable_sort: a bare
  // operation and a transactional scope never share a sequence number,
  // but keep byte order authoritative among equals anyway.
  std::stable_sort(Records.begin(), Records.end(),
                   [](const WalRecord &A, const WalRecord &B) {
                     return A.CommitSeq < B.CommitSeq;
                   });
  for (const WalRecord &Rec : Records) {
    if (Rec.Shard != Shard || Rec.CommitSeq <= Res.CheckpointSeq)
      continue;
    ++Res.RecordsReplayed;
    for (const WalMutation &M : Rec.Muts) {
      ++Res.MutationsApplied;
      if (M.Op == WalOp::Insert) {
        if (!R.insert(M.Full, Tuple()))
          ++Res.Anomalies;
      } else {
        if (R.remove(M.Full) == 0)
          ++Res.Anomalies;
      }
    }
  }
  Res.Ok = true;
  return Res;
}

RecoveryResult crs::recoverShardedRelation(ShardedRelation &R,
                                           const std::string &Dir) {
  RecoveryResult Total;
  Total.Ok = true;
  for (unsigned I = 0; I < R.numShards(); ++I) {
    RecoveryResult S = recoverRelation(R.shard(I), Dir, I, I);
    if (!S.Ok) {
      Total.Ok = false;
      if (Total.Error.empty())
        Total.Error = S.Error;
    }
    Total.CheckpointSeq = std::max(Total.CheckpointSeq, S.CheckpointSeq);
    Total.CheckpointTuples += S.CheckpointTuples;
    Total.RecordsReplayed += S.RecordsReplayed;
    Total.MutationsApplied += S.MutationsApplied;
    Total.TornTail |= S.TornTail;
    Total.TruncatedBytes += S.TruncatedBytes;
    Total.Anomalies += S.Anomalies;
  }
  return Total;
}
