//===- wal/Follower.h - Follower relations over the commit stream -*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FollowerRelation is a read replica fed by the durability
/// pipeline: the same ordered `(commitSeq, mutations)` stream the WAL
/// appends (wal/Wal.h) is consumed — live from a CommitChannel, or
/// from the partition files via WalTailer — and applied to a private
/// replica relation through the public put-if-absent API. Reads are
/// served by the replica's epoch-protected wait-free fast path at a
/// published applied-watermark.
///
/// **Consistency contract.** The stream carries only *committed*
/// mutations (records are appended at the commit stamp, under the
/// committer's locks), in per-key serialization order (the WAL
/// ordering argument). The applier applies records in stream order on
/// one thread, so a follower read observes, for every key, a prefix
/// of that key's committed history — never an uncommitted write,
/// never two mutations of one key out of order. What a follower does
/// NOT promise is cross-key simultaneity with the primary: it is an
/// asynchronous replica, lagging by the unapplied stream suffix;
/// appliedSeq() tells a client exactly how far behind a read may be,
/// and waitApplied() turns that into read-your-writes for any writer
/// who kept its commitSeq.
///
/// **Gap healing.** The channel never blocks the commit path: when
/// the follower falls far enough behind that the bounded channel
/// drops records, the applier detects the stream-sequence jump and
/// heals by backfill — the migration pattern: bookmark the stream,
/// snapshot the source, reconcile the replica to the snapshot
/// (removes first, then inserts, so row-replacements never transit an
/// FD-violating state), and resume applying strictly-younger items.
/// Items published before the bookmark are already contained in the
/// snapshot (publish happens before the committer releases its locks,
/// so anything bookmarked has committed and is visible to the
/// snapshot scan); items after it replay idempotently — per key, the
/// put-if-absent/full-tuple-remove pair is last-writer-wins, so
/// replaying a suffix from a state that already includes part of it
/// converges to the same final state.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_WAL_FOLLOWER_H
#define CRS_WAL_FOLLOWER_H

#include "runtime/ConcurrentRelation.h"
#include "wal/Wal.h"

#include <atomic>
#include <functional>
#include <thread>

namespace crs {

/// File-tailing consumption of WAL partitions: polls each partition
/// file for records appended since the last poll, decoding only
/// complete records (a torn or still-being-written tail is left for
/// the next poll). Segment-aware: on reaching a segment's clean end
/// with a newer segment present on disk, the cursor rolls forward to
/// it, and a cursor stranded on a checkpoint-pruned segment jumps to
/// the oldest surviving one. The offline/recovery-test twin of
/// CommitChannel.
class WalTailer {
public:
  WalTailer(std::string Dir, unsigned Partitions)
      : Dir(std::move(Dir)), Cursors(Partitions) {}

  /// Appends every newly completed record (all partitions, file order
  /// within each) to \p Out; returns the number appended.
  size_t poll(std::vector<WalRecord> &Out);

private:
  /// Per-partition read position: byte offset Off into segment Seg.
  struct Cursor {
    unsigned Seg = 0;
    uint64_t Off = 0;
  };
  std::string Dir;
  std::vector<Cursor> Cursors;
};

/// A live read replica over the commit stream. Owns the replica
/// relation and (when a channel is attached) the applier thread.
class FollowerRelation {
public:
  struct Options {
    /// Applier park between empty channel polls.
    unsigned PollMicros = 100;
    Options() {}
  };

  /// Live mode: consumes \p Ch on a dedicated applier thread.
  /// \p Config must equal the primary's specification (asserted per
  /// mutation by the replica itself); the representation may differ —
  /// a follower can serve reads from a shape the primary would never
  /// use. \p Backfill supplies a full-tuple snapshot of the source for
  /// gap healing (typically `[&] { return Primary.scanAll(); }`); with
  /// a null backfill a gap leaves the follower permanently behind on
  /// the dropped keys (still per-key ordered — gaps only ever *omit*
  /// suffix mutations) and is only counted.
  FollowerRelation(RepresentationConfig Config, CommitChannel &Ch,
                   std::function<std::vector<Tuple>()> Backfill,
                   Options O = {});

  /// Manual mode (file tailing, tests): no thread; the owner pumps
  /// records in stream order via apply().
  explicit FollowerRelation(RepresentationConfig Config);

  ~FollowerRelation(); ///< stops and joins the applier

  FollowerRelation(const FollowerRelation &) = delete;
  FollowerRelation &operator=(const FollowerRelation &) = delete;

  /// The replica, for reads (epoch-eligible queries run wait-free).
  /// Mutating it directly breaks the replica contract.
  ConcurrentRelation &relation() { return Replica; }
  const ConcurrentRelation &relation() const { return Replica; }

  /// query r s C against the replica at the applied watermark.
  std::vector<Tuple> query(const Tuple &S, ColumnSet C) const {
    return Replica.query(S, C);
  }

  /// Manual-mode application of one record (also usable from the
  /// owner's thread in live mode ONLY before the channel ever fires —
  /// concretely: don't).
  void apply(const WalRecord &Rec);

  /// The published applied-watermark: every committed mutation with
  /// commitSeq ≤ this (on keys the stream delivered) is visible to
  /// reads. Monotone.
  uint64_t appliedSeq() const {
    return AppliedSeq.load(std::memory_order_acquire);
  }
  uint64_t appliedRecords() const {
    return AppliedRecords.load(std::memory_order_relaxed);
  }
  /// Stream gaps detected (and, with a backfill source, healed).
  uint64_t gapsHealed() const {
    return GapsHealed.load(std::memory_order_relaxed);
  }
  /// Replays that found their effect already present/absent — benign
  /// idempotent overlaps from healing races.
  uint64_t anomalies() const {
    return Anomalies.load(std::memory_order_relaxed);
  }

  /// Blocks until appliedSeq() ≥ \p CommitSeq or \p TimeoutMs elapses.
  /// With a quiesced writer fleet (commitSeq = the clock's last stamp)
  /// this is "wait until fully caught up".
  bool waitApplied(uint64_t CommitSeq, unsigned TimeoutMs = 10000) const;

  /// Stops the applier after it drains what is currently published.
  /// Idempotent; the destructor calls it.
  void stop();

private:
  void applierLoop();
  void heal();

  ConcurrentRelation Replica;
  CommitChannel *Ch = nullptr;
  std::function<std::vector<Tuple>()> Backfill;
  Options Opts;
  uint64_t ExpectedStreamSeq = 1; ///< applier-thread-private
  std::atomic<uint64_t> AppliedSeq{0};
  std::atomic<uint64_t> AppliedRecords{0};
  std::atomic<uint64_t> GapsHealed{0};
  std::atomic<uint64_t> Anomalies{0};
  std::atomic<bool> Stop{false};
  std::thread Applier;
};

} // namespace crs

#endif // CRS_WAL_FOLLOWER_H
