//===- wal/Checkpoint.h - Checkpoints and crash recovery --------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoints bound recovery time: instead of replaying a relation's
/// whole WAL partition from the beginning of history, recovery loads
/// the newest complete snapshot and replays only the records stamped
/// after its watermark.
///
/// **Watermark correctness.** A checkpoint is taken under the
/// relation's operation-gate barrier (ConcurrentRelation::
/// checkpointSnapshot): the drain flushes every in-flight operation —
/// including its WAL append, which happens inside the gate — and the
/// commit clock is read *after* the drain. Every mutation this
/// relation logged with commitSeq ≤ watermark is therefore contained
/// in the snapshot, and every mutation with commitSeq > watermark is
/// not; replaying exactly the records above the watermark, in
/// commitSeq order, reconstructs the crashed process's committed
/// state. Replay is idempotent by the put-if-absent shape of the
/// public API (the migration mirror's machinery): re-inserting a
/// present tuple loses the put-if-absent race benignly, re-removing an
/// absent one removes zero rows.
///
/// **Atomicity on disk.** A checkpoint is written to a temp file,
/// fsynced, then renamed into place (`ckpt-<shard>-<watermark>`): a
/// kill during checkpointing leaves either the previous checkpoint
/// set intact (temp never renamed) or a complete new file. Recovery
/// additionally validates content — the file reuses the WAL's
/// CRC-per-record format with a sentinel trailer record, so a torn or
/// corrupted file (however it got there) is detected and the previous
/// checkpoint used instead; with no valid checkpoint at all, recovery
/// replays the WAL from the start, which is always correct, just
/// slower.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_WAL_CHECKPOINT_H
#define CRS_WAL_CHECKPOINT_H

#include "wal/Wal.h"

#include <cstdint>
#include <string>
#include <vector>

namespace crs {

class ConcurrentRelation;
class ShardedRelation;

/// A decoded checkpoint: the relation's full tuple set as of the
/// watermark (see the file comment for the consistency argument).
struct CheckpointData {
  uint64_t Watermark = 0;
  uint32_t Shard = 0;
  std::vector<Tuple> Tuples;
};

/// Writes a checkpoint of \p R into \p Dir (created if absent) as
/// `ckpt-<Shard>-<watermark>`, via temp file + fsync + rename. Briefly
/// closes \p R's operation gate (the snapshot barrier). Returns the
/// watermark through \p Watermark (optional). False plus \p Err on I/O
/// failure.
bool writeCheckpoint(ConcurrentRelation &R, const std::string &Dir,
                     uint32_t Shard, uint64_t *Watermark = nullptr,
                     std::string *Err = nullptr);

/// Checkpoints every shard of \p R into \p Dir, one shard at a time
/// (each shard's gate closes in turn — the same rolling discipline as
/// sharded migration). False on the first failing shard.
bool writeShardedCheckpoint(ShardedRelation &R, const std::string &Dir,
                            std::string *Err = nullptr);

/// Reads and validates one checkpoint file. False if the file is
/// missing, torn, corrupt, or lacks the completion trailer — exactly
/// the kill-during-checkpoint leftovers recovery must reject.
bool readCheckpoint(const std::string &Path, CheckpointData &Out);

/// The `ckpt-<shard>-<watermark>` path for a checkpoint in \p Dir.
std::string checkpointPath(const std::string &Dir, uint32_t Shard,
                           uint64_t Watermark);

/// Watermarks of every checkpoint file present for \p Shard in \p Dir
/// (by filename only — not validated), sorted ascending.
std::vector<uint64_t> listCheckpoints(const std::string &Dir, uint32_t Shard);

/// What one recovery did (per shard).
struct RecoveryResult {
  bool Ok = false;
  std::string Error;
  uint64_t CheckpointSeq = 0;     ///< watermark restored from (0: none)
  size_t CheckpointTuples = 0;    ///< tuples loaded from the checkpoint
  size_t RecordsReplayed = 0;     ///< WAL records with seq > watermark
  size_t MutationsApplied = 0;    ///< individual mutations replayed
  bool TornTail = false;          ///< the WAL ended mid-record (truncated)
  uint64_t TruncatedBytes = 0;    ///< torn bytes cut off the partition
  size_t Anomalies = 0; ///< replays that found the state already there
                        ///< (idempotent overlaps; >0 is fine, it means
                        ///< the checkpoint and log overlapped benignly)
};

/// Rebuilds \p R — which must be freshly constructed and empty — from
/// \p Dir: loads the newest valid checkpoint for \p Shard (falling
/// back through older ones past any corrupt file), replays WAL
/// partition \p Partition's records above the watermark in commitSeq
/// order through the public put-if-absent API, and truncates a torn
/// WAL tail so the reopened log appends cleanly. The WAL and
/// checkpoints may live in the same directory (distinct file names).
RecoveryResult recoverRelation(ConcurrentRelation &R, const std::string &Dir,
                               uint32_t Shard = 0, uint32_t Partition = 0);

/// Recovers every shard of \p R (freshly constructed, same shard count
/// as the writer fleet) from \p Dir: shard i from its checkpoints plus
/// WAL partition i. Aggregates per-shard results; Ok iff every shard
/// recovered.
RecoveryResult recoverShardedRelation(ShardedRelation &R,
                                      const std::string &Dir);

} // namespace crs

#endif // CRS_WAL_CHECKPOINT_H
