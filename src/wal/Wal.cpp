//===- wal/Wal.cpp - Group-commit write-ahead log ----------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "wal/Wal.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace crs;

//===----------------------------------------------------------------------===//
// Wire format
//===----------------------------------------------------------------------===//

namespace {

void putU8(std::vector<uint8_t> &Out, uint8_t V) { Out.push_back(V); }

void putU16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
}

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

/// Bounds-checked little-endian reader over one record payload.
struct Reader {
  const uint8_t *D;
  size_t Len;
  size_t Off = 0;
  bool Bad = false;

  bool need(size_t N) {
    if (Off + N > Len) {
      Bad = true;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!need(1))
      return 0;
    return D[Off++];
  }
  uint16_t u16() {
    if (!need(2))
      return 0;
    uint16_t V = static_cast<uint16_t>(D[Off]) |
                 static_cast<uint16_t>(D[Off + 1]) << 8;
    Off += 2;
    return V;
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(D[Off + I]) << (8 * I);
    Off += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(D[Off + I]) << (8 * I);
    Off += 8;
    return V;
  }
};

void encodeEntry(std::vector<uint8_t> &Out, ColumnId Col, const Value &Val) {
  putU32(Out, Col);
  if (Val.isInt()) {
    putU8(Out, 0);
    putU64(Out, static_cast<uint64_t>(Val.asInt()));
  } else {
    // Interned string ids are process-local: serialize the bytes.
    std::string_view S = Val.asString();
    putU8(Out, 1);
    putU32(Out, static_cast<uint32_t>(S.size()));
    Out.insert(Out.end(), S.begin(), S.end());
  }
}

void encodeTuple(std::vector<uint8_t> &Out, const Tuple &T) {
  const auto &Entries = T.entries();
  putU16(Out, static_cast<uint16_t>(Entries.size()));
  for (const auto &[Col, Val] : Entries)
    encodeEntry(Out, Col, Val);
}

/// encodeTuple of π_Cols(T) without building the projected tuple:
/// entries are stored sorted by column id, so filtering while encoding
/// writes exactly the bytes encodeTuple writes for T.project(Cols).
void encodeTupleProjected(std::vector<uint8_t> &Out, const Tuple &T,
                          ColumnSet Cols) {
  const auto &Entries = T.entries();
  uint16_t N = 0;
  for (const auto &[Col, Val] : Entries)
    if (Cols.contains(Col))
      ++N;
  putU16(Out, N);
  for (const auto &[Col, Val] : Entries)
    if (Cols.contains(Col))
      encodeEntry(Out, Col, Val);
}

/// Patches the (length, CRC) header that every record encoder writes as
/// two zero u32s at \p Header before its payload (starting at
/// \p Payload).
void patchRecordHeader(std::vector<uint8_t> &Out, size_t Header,
                       size_t Payload) {
  uint32_t Len = static_cast<uint32_t>(Out.size() - Payload);
  uint32_t Crc = walCrc32(Out.data() + Payload, Len);
  for (int I = 0; I < 4; ++I) {
    Out[Header + I] = static_cast<uint8_t>(Len >> (8 * I));
    Out[Header + 4 + I] = static_cast<uint8_t>(Crc >> (8 * I));
  }
}

bool decodeTuple(Reader &R, Tuple &Out) {
  Out = Tuple();
  uint16_t N = R.u16();
  for (uint16_t I = 0; I < N && !R.Bad; ++I) {
    uint32_t Col = R.u32();
    uint8_t Kind = R.u8();
    if (Kind == 0) {
      Out.set(Col, Value::ofInt(static_cast<int64_t>(R.u64())));
    } else if (Kind == 1) {
      uint32_t Len = R.u32();
      if (!R.need(Len))
        return false;
      Out.set(Col, Value::ofString(std::string_view(
                       reinterpret_cast<const char *>(R.D + R.Off), Len)));
      R.Off += Len;
    } else {
      R.Bad = true;
    }
  }
  return !R.Bad;
}

} // namespace

uint32_t crs::walCrc32(const uint8_t *Data, size_t Len) {
  // IEEE reflected CRC-32, table generated once (no dependencies).
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xedb88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xffffffffu;
  for (size_t I = 0; I < Len; ++I)
    C = Table[(C ^ Data[I]) & 0xffu] ^ (C >> 8);
  return C ^ 0xffffffffu;
}

void crs::walEncodeRecord(std::vector<uint8_t> &Out, uint64_t CommitSeq,
                          uint32_t Shard, const WalMutation *Muts,
                          size_t NumMuts) {
  size_t Header = Out.size();
  putU32(Out, 0); // payload length, patched below
  putU32(Out, 0); // CRC, patched below
  size_t Payload = Out.size();
  putU64(Out, CommitSeq);
  putU32(Out, Shard);
  putU32(Out, static_cast<uint32_t>(NumMuts));
  for (size_t I = 0; I < NumMuts; ++I) {
    putU8(Out, static_cast<uint8_t>(Muts[I].Op));
    encodeTuple(Out, Muts[I].Full);
  }
  patchRecordHeader(Out, Header, Payload);
}

size_t crs::walDecodeRecord(const uint8_t *Data, size_t Len, WalRecord &Out) {
  if (Len < 8)
    return 0;
  uint32_t PayloadLen = 0, Crc = 0;
  for (int I = 0; I < 4; ++I) {
    PayloadLen |= static_cast<uint32_t>(Data[I]) << (8 * I);
    Crc |= static_cast<uint32_t>(Data[4 + I]) << (8 * I);
  }
  if (Len < 8 + static_cast<size_t>(PayloadLen))
    return 0;
  if (walCrc32(Data + 8, PayloadLen) != Crc)
    return 0;
  Reader R{Data + 8, PayloadLen};
  Out.CommitSeq = R.u64();
  Out.Shard = R.u32();
  uint32_t N = R.u32();
  Out.Muts.clear();
  Out.Muts.reserve(N);
  for (uint32_t I = 0; I < N && !R.Bad; ++I) {
    WalMutation M;
    uint8_t Op = R.u8();
    if (Op > 1) {
      R.Bad = true;
      break;
    }
    M.Op = static_cast<WalOp>(Op);
    if (!decodeTuple(R, M.Full))
      break;
    Out.Muts.push_back(std::move(M));
  }
  if (R.Bad || R.Off != PayloadLen)
    return 0;
  return 8 + PayloadLen;
}

std::string crs::walPartitionPath(const std::string &Dir, unsigned Partition) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "/wal-%03u.log", Partition);
  return Dir + Buf;
}

std::string crs::walSegmentPath(const std::string &Dir, unsigned Partition,
                                unsigned Segment) {
  // Segment 0 keeps the legacy single-file name: a pre-segmentation log
  // is read back as its partitions' segment 0 with no migration step.
  if (Segment == 0)
    return walPartitionPath(Dir, Partition);
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "/wal-%03u.%04u.log", Partition, Segment);
  return Dir + Buf;
}

std::vector<unsigned> crs::listWalSegments(const std::string &Dir,
                                           unsigned Partition) {
  std::vector<unsigned> Segs;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Segs;
  char Prefix[32];
  std::snprintf(Prefix, sizeof(Prefix), "wal-%03u", Partition);
  while (struct dirent *E = ::readdir(D)) {
    const char *Name = E->d_name;
    if (std::strncmp(Name, Prefix, std::strlen(Prefix)) != 0)
      continue;
    const char *Rest = Name + std::strlen(Prefix);
    if (std::strcmp(Rest, ".log") == 0) {
      Segs.push_back(0);
      continue;
    }
    // "wal-NNN.SSSS.log": parse the segment index between the dots.
    if (*Rest != '.')
      continue;
    char *End = nullptr;
    unsigned long Seg = std::strtoul(Rest + 1, &End, 10);
    if (End == Rest + 1 || std::strcmp(End, ".log") != 0)
      continue;
    Segs.push_back(static_cast<unsigned>(Seg));
  }
  ::closedir(D);
  std::sort(Segs.begin(), Segs.end());
  return Segs;
}

//===----------------------------------------------------------------------===//
// Partition scan (recovery / file-tailing)
//===----------------------------------------------------------------------===//

WalReadResult crs::readWalPartition(const std::string &Path) {
  WalReadResult Res;
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    if (errno == ENOENT)
      return Res; // a shard that never committed: empty, not an error
    Res.Error = Path + ": " + std::strerror(errno);
    return Res;
  }
  std::vector<uint8_t> Buf;
  uint8_t Chunk[1 << 16];
  for (;;) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Res.Error = Path + ": " + std::strerror(errno);
      ::close(Fd);
      return Res;
    }
    if (N == 0)
      break;
    Buf.insert(Buf.end(), Chunk, Chunk + N);
  }
  ::close(Fd);

  size_t Off = 0;
  WalRecord Rec;
  while (Off < Buf.size()) {
    size_t Used = walDecodeRecord(Buf.data() + Off, Buf.size() - Off, Rec);
    if (Used == 0) {
      Res.TornTail = true; // mid-append crash remnant: stop cleanly
      break;
    }
    Res.Records.push_back(std::move(Rec));
    Rec = WalRecord();
    Off += Used;
  }
  Res.ValidBytes = Off;
  return Res;
}

bool crs::truncateWalPartition(const std::string &Path, uint64_t ValidBytes) {
  return ::truncate(Path.c_str(), static_cast<off_t>(ValidBytes)) == 0;
}

//===----------------------------------------------------------------------===//
// CommitChannel
//===----------------------------------------------------------------------===//

void CommitChannel::publish(WalRecord Rec) {
  std::lock_guard<std::mutex> G(M);
  uint64_t Seq = Published.load(std::memory_order_relaxed) + 1;
  Published.store(Seq, std::memory_order_release);
  if (Q.size() >= Capacity) {
    // Never block the commit path (the publisher holds relation locks):
    // drop and let the consumer heal the stream-sequence gap.
    Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Q.push_back({Seq, std::move(Rec)});
}

size_t CommitChannel::drain(std::vector<Item> &Out) {
  std::lock_guard<std::mutex> G(M);
  size_t N = Q.size();
  for (Item &I : Q)
    Out.push_back(std::move(I));
  Q.clear();
  return N;
}

//===----------------------------------------------------------------------===//
// WriteAheadLog
//===----------------------------------------------------------------------===//

namespace {

/// mkdir -p (each component; EEXIST is success).
bool makeDirs(const std::string &Path, std::string *Err) {
  std::string Cur;
  for (size_t I = 0; I <= Path.size(); ++I) {
    if (I < Path.size() && Path[I] != '/') {
      Cur.push_back(Path[I]);
      continue;
    }
    if (!Cur.empty() && ::mkdir(Cur.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      if (Err)
        *Err = Cur + ": " + std::strerror(errno);
      return false;
    }
    if (I < Path.size())
      Cur.push_back('/');
  }
  return true;
}

bool writeFully(int Fd, const uint8_t *Data, size_t Len) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t W = ::write(Fd, Data + Off, Len - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  return true;
}

} // namespace

std::unique_ptr<WriteAheadLog> WriteAheadLog::open(const Options &O,
                                                   std::string *Err) {
  assert(O.Partitions >= 1 && "a WAL needs at least one partition");
  if (!makeDirs(O.Dir, Err))
    return nullptr;
  std::unique_ptr<WriteAheadLog> W(new WriteAheadLog());
  W->Dir = O.Dir;
  W->Mode = O.Fsync;
  W->ParkMicros = O.ParkMicros;
  W->FlushMicros = O.FlushMicros;
  W->SegmentBytes = O.SegmentBytes;
  for (unsigned I = 0; I < O.Partitions; ++I) {
    auto P = std::make_unique<Partition>();
    // Resume appending to the highest existing segment — earlier ones
    // are sealed history (recovery reads them; checkpoints prune them).
    std::vector<unsigned> Segs = listWalSegments(O.Dir, I);
    P->Seg = Segs.empty() ? 0 : Segs.back();
    std::string Path = walSegmentPath(O.Dir, I, P->Seg);
    P->Fd = ::open(Path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (P->Fd < 0) {
      if (Err)
        *Err = Path + ": " + std::strerror(errno);
      return nullptr;
    }
    struct stat St;
    if (::fstat(P->Fd, &St) == 0)
      P->SegBytes = static_cast<uint64_t>(St.st_size);
    W->Parts.push_back(std::move(P));
  }
  W->Flusher = std::thread([Wp = W.get()] { Wp->flusherLoop(); });
  return W;
}

WriteAheadLog::~WriteAheadLog() {
  detachMetrics(); // the registry callbacks capture `this`
  {
    std::lock_guard<std::mutex> G(FlushM);
    Stop = true;
  }
  Cv.notify_all();
  if (Flusher.joinable())
    Flusher.join();
  flushRound(); // the tail appended after the flusher's last round
  for (auto &P : Parts)
    if (P->Fd >= 0)
      ::close(P->Fd);
}

namespace {
/// Per-thread serialization buffer: both logCommit overloads encode
/// outside the partition mutex, and the commit path stays
/// allocation-free once each thread's buffer is warm.
thread_local std::vector<uint8_t> CommitScratch;
} // namespace

void WriteAheadLog::logCommit(uint32_t Partition, uint64_t CommitSeq,
                              uint32_t Shard, const WalMutation *Muts,
                              size_t NumMuts) {
  assert(Partition < Parts.size() && "partition out of range");
  if (NumMuts == 0)
    return; // read-only scopes leave no redo record
  CommitScratch.clear();
  walEncodeRecord(CommitScratch, CommitSeq, Shard, Muts, NumMuts);
  appendEncoded(Partition, CommitSeq, CommitScratch, [&] {
    WalRecord R;
    R.CommitSeq = CommitSeq;
    R.Shard = Shard;
    R.Muts.assign(Muts, Muts + NumMuts);
    return R;
  });
}

void WriteAheadLog::logCommit(uint32_t Partition, uint64_t CommitSeq,
                              uint32_t Shard, WalOp Op, const Tuple &Full) {
  assert(Partition < Parts.size() && "partition out of range");
  // Same wire form as the array overload with NumMuts = 1, written
  // without materializing a WalMutation (the encoder reads the caller's
  // tuple in place).
  CommitScratch.clear();
  size_t Header = CommitScratch.size();
  putU32(CommitScratch, 0); // payload length, patched below
  putU32(CommitScratch, 0); // CRC, patched below
  size_t Payload = CommitScratch.size();
  putU64(CommitScratch, CommitSeq);
  putU32(CommitScratch, Shard);
  putU32(CommitScratch, 1);
  putU8(CommitScratch, static_cast<uint8_t>(Op));
  encodeTuple(CommitScratch, Full);
  patchRecordHeader(CommitScratch, Header, Payload);
  appendEncoded(Partition, CommitSeq, CommitScratch, [&] {
    WalRecord R;
    R.CommitSeq = CommitSeq;
    R.Shard = Shard;
    R.Muts.push_back(WalMutation{Op, Full});
    return R;
  });
}

void WriteAheadLog::logCommit(uint32_t Partition, uint64_t CommitSeq,
                              uint32_t Shard, size_t NumMuts,
                              ColumnSet Project,
                              function_ref<WalOp(size_t, const Tuple *&)> Mut) {
  assert(Partition < Parts.size() && "partition out of range");
  if (NumMuts == 0)
    return; // read-only scopes leave no redo record
  // Same wire form as the array overload (wal_test asserts byte
  // equality), written straight from the caller's commit log: no
  // WalMutation vector, and projection applied during encoding.
  CommitScratch.clear();
  size_t Header = CommitScratch.size();
  putU32(CommitScratch, 0); // payload length, patched below
  putU32(CommitScratch, 0); // CRC, patched below
  size_t Payload = CommitScratch.size();
  putU64(CommitScratch, CommitSeq);
  putU32(CommitScratch, Shard);
  putU32(CommitScratch, static_cast<uint32_t>(NumMuts));
  for (size_t I = 0; I < NumMuts; ++I) {
    const Tuple *Full = nullptr;
    WalOp Op = Mut(I, Full);
    assert(Full && "mutation source must point Full at its tuple");
    putU8(CommitScratch, static_cast<uint8_t>(Op));
    encodeTupleProjected(CommitScratch, *Full, Project);
  }
  patchRecordHeader(CommitScratch, Header, Payload);
  appendEncoded(Partition, CommitSeq, CommitScratch, [&] {
    WalRecord R;
    R.CommitSeq = CommitSeq;
    R.Shard = Shard;
    R.Muts.reserve(NumMuts);
    for (size_t I = 0; I < NumMuts; ++I) {
      const Tuple *Full = nullptr;
      WalOp Op = Mut(I, Full);
      R.Muts.push_back(WalMutation{Op, Full->project(Project)});
    }
    return R;
  });
}

void WriteAheadLog::appendEncoded(uint32_t Partition, uint64_t CommitSeq,
                                  const std::vector<uint8_t> &Encoded,
                                  function_ref<WalRecord()> MakeRecord) {
  struct Partition &P = *Parts[Partition];
  uint64_t MyEnd;
  {
    std::lock_guard<std::mutex> G(P.M);
    P.Tail.insert(P.Tail.end(), Encoded.begin(), Encoded.end());
    P.Appended += Encoded.size();
    P.TailMaxSeq = std::max(P.TailMaxSeq, CommitSeq);
    MyEnd = P.Appended;
    // Publish to the live replication feed under the same mutex: the
    // channel sees records in exactly the partition's append order,
    // which is the per-key serialization order (file comment).
    if (CommitChannel *Ch = Channel.load(std::memory_order_acquire))
      Ch->publish(MakeRecord());
  }
  Records.fetch_add(1, std::memory_order_relaxed);
  Bytes.fetch_add(Encoded.size(), std::memory_order_relaxed);

  // Wake the flusher once per batch window (an atomic read on the warm
  // path; the mutex+notify only when the flag flips).
  if (!DirtyFlag.load(std::memory_order_seq_cst)) {
    DirtyFlag.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> G(FlushM);
      Dirty = true;
    }
    Cv.notify_all();
  }

  if (Mode != FsyncMode::Sync)
    return;
  // Group commit: park at the stamp point until a flusher round covers
  // this record. The flusher's batching window bounds the park — a lone
  // writer is flushed within ParkMicros, not stranded waiting for
  // company.
  std::unique_lock<std::mutex> L(FlushM);
  while (P.Durable.load(std::memory_order_acquire) < MyEnd &&
         !Failed.load(std::memory_order_acquire))
    CvDurable.wait_for(L, std::chrono::microseconds(ParkMicros * 4 + 100));
}

void WriteAheadLog::flusherLoop() {
  std::unique_lock<std::mutex> L(FlushM);
  while (!Stop) {
    Cv.wait(L, [&] { return Dirty || Stop; });
    if (Stop)
      break;
    Dirty = false;
    L.unlock();
    // The batching window: let concurrently committing scopes land in
    // this round's batch before paying one write+fsync for all of them.
    // In Sync mode committers are parked on the round, so the window is
    // the short commit-latency bound; otherwise nobody waits and the
    // round cadence stretches to the durability-lag bound instead —
    // each wakeup preempts committers when cores are scarce, so rounds
    // should be as rare as the lag budget allows.
    unsigned Window = Mode == FsyncMode::Sync ? ParkMicros : FlushMicros;
    if (Window)
      std::this_thread::sleep_for(std::chrono::microseconds(Window));
    DirtyFlag.store(false, std::memory_order_seq_cst);
    flushRound();
    L.lock();
  }
}

uint64_t WriteAheadLog::flushRound() {
  std::lock_guard<std::mutex> RG(RoundM);
  obs::TraceRing *Ring = Trace.load(std::memory_order_acquire);
  const uint64_t T0 = Ring ? obs::MetricsRegistry::nowNanos() : 0;
  uint64_t Moved = 0;
  unsigned PartsWithData = 0;
  for (unsigned I = 0; I < Parts.size(); ++I) {
    Partition &P = *Parts[I];
    std::vector<uint8_t> Local;
    uint64_t Target, BatchMaxSeq;
    {
      std::lock_guard<std::mutex> G(P.M);
      if (P.Tail.empty())
        continue;
      Local.swap(P.Tail);
      Target = P.Appended;
      BatchMaxSeq = P.TailMaxSeq;
      P.TailMaxSeq = 0;
    }
    bool Ok = writeFully(P.Fd, Local.data(), Local.size());
    if (Ok && Mode != FsyncMode::None)
      Ok = ::fsync(P.Fd) == 0;
    if (!Ok) {
      if (!Failed.exchange(true, std::memory_order_acq_rel))
        std::fprintf(stderr, "wal: write/fsync failed on %s: %s\n",
                     Dir.c_str(), std::strerror(errno));
      continue;
    }
    Moved += Local.size();
    ++PartsWithData;
    P.SegBytes += Local.size();
    P.SegMaxSeq = std::max(P.SegMaxSeq, BatchMaxSeq);
    P.Durable.store(Target, std::memory_order_release);
    // Seal and rotate once the active segment crosses the threshold.
    // Records never straddle segments: a whole flush batch lands in one
    // file, so every segment is a clean sequence of complete records
    // (plus at most one torn tail after a crash).
    if (SegmentBytes && P.SegBytes >= SegmentBytes)
      rotateSegmentLocked(P, I);
    {
      // Recycle the drained buffer's capacity when no append raced in.
      std::lock_guard<std::mutex> G(P.M);
      if (P.Tail.empty()) {
        Local.clear();
        P.Tail.swap(Local);
      }
    }
  }
  if (Moved) {
    Rounds.fetch_add(1, std::memory_order_relaxed);
    if (Ring)
      Ring->emit(obs::EventKind::WalFlushRound, Moved,
                 (obs::MetricsRegistry::nowNanos() - T0) / 1000,
                 PartsWithData);
    std::lock_guard<std::mutex> G(FlushM);
    CvDurable.notify_all();
  }
  return Moved;
}

void WriteAheadLog::rotateSegmentLocked(Partition &P, unsigned Index) {
  std::string Next = walSegmentPath(Dir, Index, P.Seg + 1);
  int Fd = ::open(Next.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (Fd < 0) {
    // Keep appending to the full segment rather than losing records;
    // latch Failed so Sync committers and tests see the sick disk.
    if (!Failed.exchange(true, std::memory_order_acq_rel))
      std::fprintf(stderr, "wal: segment rotation failed on %s: %s\n",
                   Next.c_str(), std::strerror(errno));
    return;
  }
  P.SealedMaxSeq[P.Seg] = P.SegMaxSeq;
  ::close(P.Fd);
  P.Fd = Fd;
  Rotations.fetch_add(1, std::memory_order_relaxed);
  if (obs::TraceRing *Ring = Trace.load(std::memory_order_acquire))
    Ring->emit(obs::EventKind::WalSegmentRotate, Index, P.Seg, P.SegMaxSeq);
  ++P.Seg;
  P.SegBytes = 0;
  P.SegMaxSeq = 0;
}

void WriteAheadLog::attachMetrics(obs::MetricsRegistry &R,
                                  obs::MetricLabels Labels) {
  detachMetrics();
  MetricsReg = &R;
  using CK = obs::MetricsRegistry::CallbackKind;
  auto Add = [&](const char *N, std::function<uint64_t()> Fn) {
    MetricsCallbacks.push_back(
        R.addCallback(N, Labels, CK::Counter, std::move(Fn)));
  };
  Add("wal.records_appended", [this] { return recordsAppended(); });
  Add("wal.bytes_appended", [this] { return bytesAppended(); });
  Add("wal.flush_rounds", [this] { return syncRounds(); });
  Add("wal.segment_rotations", [this] { return segmentRotations(); });
  Trace.store(&R.ring(obs::EventDomain::Wal), std::memory_order_release);
}

void WriteAheadLog::detachMetrics() {
  Trace.store(nullptr, std::memory_order_release);
  if (MetricsReg) {
    MetricsReg->removeCallbacks(MetricsCallbacks);
    MetricsCallbacks.clear();
    MetricsReg = nullptr;
  }
}

unsigned WriteAheadLog::pruneSegments(uint32_t Partition,
                                      uint64_t Watermark) {
  assert(Partition < Parts.size() && "partition out of range");
  struct Partition &P = *Parts[Partition];
  std::lock_guard<std::mutex> RG(RoundM);
  unsigned Removed = 0;
  for (unsigned Seg : listWalSegments(Dir, Partition)) {
    if (Seg >= P.Seg)
      continue; // never the active segment
    uint64_t MaxSeq;
    auto It = P.SealedMaxSeq.find(Seg);
    if (It != P.SealedMaxSeq.end()) {
      MaxSeq = It->second;
    } else {
      // Sealed by a previous process life: recover the max with one
      // scan and cache it. A torn or unreadable segment is left alone —
      // recovery decides what to do with it, not the pruner.
      WalReadResult R = readWalPartition(walSegmentPath(Dir, Partition, Seg));
      if (!R.ok() || R.TornTail || R.Records.empty())
        continue;
      MaxSeq = 0;
      for (const WalRecord &Rec : R.Records)
        MaxSeq = std::max(MaxSeq, Rec.CommitSeq);
      P.SealedMaxSeq[Seg] = MaxSeq;
    }
    if (MaxSeq > Watermark)
      continue; // still holds records a recovery would replay
    if (::unlink(walSegmentPath(Dir, Partition, Seg).c_str()) == 0) {
      P.SealedMaxSeq.erase(Seg);
      ++Removed;
    }
  }
  return Removed;
}

void WriteAheadLog::flush() {
  std::vector<uint64_t> Targets(Parts.size());
  for (size_t I = 0; I < Parts.size(); ++I) {
    std::lock_guard<std::mutex> G(Parts[I]->M);
    Targets[I] = Parts[I]->Appended;
  }
  for (;;) {
    flushRound();
    bool Done = true;
    for (size_t I = 0; I < Parts.size(); ++I)
      if (Parts[I]->Durable.load(std::memory_order_acquire) < Targets[I] &&
          !Failed.load(std::memory_order_acquire))
        Done = false;
    if (Done)
      return;
  }
}
