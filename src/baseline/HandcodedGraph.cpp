//===- baseline/HandcodedGraph.cpp - Hand-written baseline --------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "baseline/HandcodedGraph.h"

using namespace crs;

HandcodedGraph::AdjPtr HandcodedGraph::getOrCreate(TopLevel &Map,
                                                   int64_t Key) {
  AdjPtr Adj;
  if (Map.lookup(Key, Adj))
    return Adj;
  Adj = std::make_shared<Adjacency>();
  Map.insertIfAbsent(Key, Adj);
  // Another thread may have won the race; reload the canonical value.
  AdjPtr Canonical;
  [[maybe_unused]] bool Found = Map.lookup(Key, Canonical);
  assert(Found && "adjacency vanished during creation (no removal path)");
  return Canonical;
}

bool HandcodedGraph::insertEdge(int64_t Src, int64_t Dst, int64_t Weight) {
  AdjPtr Fwd = getOrCreate(Forward, Src);
  AdjPtr Rev = getOrCreate(Reverse, Dst);
  // Fixed forward-before-reverse lock order: the two top-level maps are
  // disjoint lock namespaces, so this discipline is deadlock-free.
  std::scoped_lock Guard(Fwd->Mutex, Rev->Mutex);
  if (Fwd->Entries.contains(Dst))
    return false; // preserve src,dst -> weight
  Fwd->Entries.insertOrAssign(Dst, Weight);
  Rev->Entries.insertOrAssign(Src, Weight);
  Count.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool HandcodedGraph::removeEdge(int64_t Src, int64_t Dst) {
  AdjPtr Fwd, Rev;
  if (!Forward.lookup(Src, Fwd) || !Reverse.lookup(Dst, Rev))
    return false;
  std::scoped_lock Guard(Fwd->Mutex, Rev->Mutex);
  if (!Fwd->Entries.erase(Dst))
    return false;
  Rev->Entries.erase(Src);
  Count.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::vector<std::pair<int64_t, int64_t>>
HandcodedGraph::successors(int64_t Src) const {
  std::vector<std::pair<int64_t, int64_t>> Out;
  AdjPtr Adj;
  if (!Forward.lookup(Src, Adj))
    return Out;
  std::lock_guard<std::mutex> Guard(Adj->Mutex);
  Adj->Entries.scan([&](const int64_t &Dst, const int64_t &Weight) {
    Out.push_back({Dst, Weight});
    return true;
  });
  return Out;
}

std::vector<std::pair<int64_t, int64_t>>
HandcodedGraph::predecessors(int64_t Dst) const {
  std::vector<std::pair<int64_t, int64_t>> Out;
  AdjPtr Adj;
  if (!Reverse.lookup(Dst, Adj))
    return Out;
  std::lock_guard<std::mutex> Guard(Adj->Mutex);
  Adj->Entries.scan([&](const int64_t &Src, const int64_t &Weight) {
    Out.push_back({Src, Weight});
    return true;
  });
  return Out;
}

bool HandcodedGraph::lookupWeight(int64_t Src, int64_t Dst,
                                  int64_t &Weight) const {
  AdjPtr Adj;
  if (!Forward.lookup(Src, Adj))
    return false;
  std::lock_guard<std::mutex> Guard(Adj->Mutex);
  return Adj->Entries.lookup(Dst, Weight);
}
