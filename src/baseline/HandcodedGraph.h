//===- baseline/HandcodedGraph.h - Hand-written baseline --------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "Handcoded" series (§6.2): a hand-written concurrent
/// directed graph, written the way a careful engineer would without the
/// synthesizer. Structurally it is the Split 4 representation — two
/// top-level concurrent hash maps (successors by src, predecessors by
/// dst), each mapping to a per-node adjacency TreeMap guarded by its own
/// mutex — with a fixed forward-before-reverse lock discipline for
/// deadlock freedom and a compare-and-set insert to preserve the
/// src,dst → weight functional dependency.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_BASELINE_HANDCODEDGRAPH_H
#define CRS_BASELINE_HANDCODEDGRAPH_H

#include "containers/ConcurrentHashMap.h"
#include "containers/TreeMap.h"
#include "support/Hashing.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace crs {

/// Hand-written concurrent weighted digraph with put-if-absent edges.
class HandcodedGraph {
public:
  HandcodedGraph() = default;

  /// Inserts edge (src, dst, weight) unless an edge (src, dst) exists;
  /// returns true if inserted.
  bool insertEdge(int64_t Src, int64_t Dst, int64_t Weight);

  /// Removes edge (src, dst); returns true if it existed.
  bool removeEdge(int64_t Src, int64_t Dst);

  /// All (dst, weight) pairs for \p Src.
  std::vector<std::pair<int64_t, int64_t>> successors(int64_t Src) const;

  /// All (src, weight) pairs for \p Dst.
  std::vector<std::pair<int64_t, int64_t>> predecessors(int64_t Dst) const;

  /// Weight of edge (src, dst) if present.
  bool lookupWeight(int64_t Src, int64_t Dst, int64_t &Weight) const;

  size_t size() const { return Count.load(std::memory_order_relaxed); }

private:
  struct Int64Hash {
    uint64_t operator()(int64_t V) const {
      return mix64(static_cast<uint64_t>(V));
    }
  };
  struct Int64Less {
    bool operator()(int64_t A, int64_t B) const { return A < B; }
  };

  /// A per-node adjacency list: a sorted map guarded by its own lock.
  struct Adjacency {
    mutable std::mutex Mutex;
    TreeMap<int64_t, int64_t, Int64Less> Entries;
  };
  using AdjPtr = std::shared_ptr<Adjacency>;
  using TopLevel = ConcurrentHashMap<int64_t, AdjPtr, Int64Hash>;

  /// Finds or creates the adjacency list for \p Key in \p Map.
  static AdjPtr getOrCreate(TopLevel &Map, int64_t Key);

  TopLevel Forward{1024}; ///< src -> (dst -> weight)
  TopLevel Reverse{1024}; ///< dst -> (src -> weight)
  std::atomic<size_t> Count{0};
};

} // namespace crs

#endif // CRS_BASELINE_HANDCODEDGRAPH_H
