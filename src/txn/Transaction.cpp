//===- txn/Transaction.cpp - Serializable multi-operation scopes -------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "txn/Transaction.h"

#include "support/Compiler.h"
#include "sync/CommitClock.h"
#include "sync/Epoch.h"
#include "txn/MvccStore.h"
#include "wal/Wal.h"

#include <algorithm>
#include <array>
#include <mutex>

using namespace crs;
using detail::PreparedOpImpl;
using detail::ShardedOpImpl;

namespace {

// The commit clock lives in sync/CommitClock.h now: the bare-mutation
// paths (runtime/ConcurrentRelation.cpp) stamp the same clock, so the
// WAL sees one total commit order whichever path wrote.

/// One scope open per thread (nested independent scopes would deadlock
/// on their own locks); a ShardedTransaction counts as one, its inner
/// per-shard scopes as zero.
thread_local unsigned OpenScopesOnThread = 0;

/// Warm contexts of exited threads. Workers in this codebase are often
/// short-lived (shard fan-out, stress drivers, request-per-thread
/// embeddings); without a hand-off every worker generation would pay
/// cold arenas for its first transaction. A thread's pool donates its
/// contexts here at thread exit, and a fresh thread's pool adopts one
/// before constructing from scratch. Adopted contexts drop their sticky
/// prepared-op argument frames: bindings are a per-thread contract, and
/// a handle must never observe another thread's bindings through a
/// recycled context.
struct CtxRecycleList {
  std::mutex M;
  std::vector<std::unique_ptr<ExecContext>> Free;
};
CtxRecycleList &ctxRecycleList() {
  // Leaked deliberately: thread_local pool destructors of late-exiting
  // threads may run after function-local statics would have been
  // destroyed, and the list must outlive every donor.
  static CtxRecycleList *L = new CtxRecycleList;
  return *L;
}

/// Transaction execution contexts are pooled per thread: a scope's
/// context must be distinct from the thread's operation context (a
/// visitor may observe both regimes) and live for the whole scope, but
/// constructing one per scope would pay cold arenas and allocations on
/// every transaction — the pool keeps them warm, like the per-thread
/// contexts of ordinary operations. Scopes belong to their opening
/// thread (contract), so acquire/release need no synchronization; only
/// the thread-exit donation touches the shared recycle list.
struct TxnCtxPool {
  std::vector<std::unique_ptr<ExecContext>> Storage;
  std::vector<ExecContext *> Free;
  ExecContext *acquire() {
    if (!Free.empty()) {
      ExecContext *C = Free.back();
      Free.pop_back();
      return C;
    }
    // Adopt a context donated by an exited thread before building a
    // cold one: its arenas already carry capacity.
    {
      CtxRecycleList &L = ctxRecycleList();
      std::lock_guard<std::mutex> G(L.M);
      if (!L.Free.empty()) {
        Storage.push_back(std::move(L.Free.back()));
        L.Free.pop_back();
        return Storage.back().get();
      }
    }
    Storage.push_back(std::make_unique<ExecContext>());
    return Storage.back().get();
  }
  void release(ExecContext *C) { Free.push_back(C); }
  ~TxnCtxPool() {
    // Thread exit. Every context is idle here: scopes are stack-bound
    // to their opening thread, so none can outlive its thread_locals.
    if (Storage.empty())
      return;
    CtxRecycleList &L = ctxRecycleList();
    std::lock_guard<std::mutex> G(L.M);
    for (std::unique_ptr<ExecContext> &C : Storage) {
      C->purgeFrames();
      L.Free.push_back(std::move(C));
    }
  }
};
TxnCtxPool &txnCtxPool() {
  static thread_local TxnCtxPool Pool;
  return Pool;
}

/// Failed out-of-order tries an op survives before the scope dies.
/// Grows with patience (the retry attempt number) — the aging half of
/// bounded wait-die.
unsigned tryBudget(unsigned Patience) {
  unsigned Shift = std::min(Patience, 6u);
  return 96u << Shift;
}

} // namespace

//===----------------------------------------------------------------------===//
// Transaction
//===----------------------------------------------------------------------===//

Transaction::Transaction(ConcurrentRelation &R, unsigned Patience,
                         uint64_t Birth)
    : Transaction(R, Opts{Patience, Birth, /*Snap=*/0, /*Nested=*/false,
                          /*BoundedGate=*/false, /*ForceTry=*/false}) {}

Transaction::Transaction(ConcurrentRelation &R, const Opts &O)
    : Rel(&R), TryBudget(tryBudget(O.Patience)),
      WantBoundedGate(O.BoundedGate), Nested(O.Nested) {
  // Stamp (or adopt) the wait-die age before any lock can be taken;
  // LockSet carries it to every exclusive owner table.
  BirthStamp = O.Birth ? O.Birth : nextTxnBirthStamp();
  if (!Nested) {
    assert(OpenScopesOnThread == 0 &&
           "one transaction scope open per thread (nested scopes would "
           "deadlock on their own locks)");
    ++OpenScopesOnThread;
  }
  // Snapshot at begin: every query() in the scope reads this one
  // commit-clock prefix. A nested per-shard scope adopts the sharded
  // scope's snapshot (which owns the registry slot pinning the
  // reclamation watermark); a standalone scope owns its own. The gate
  // is NOT taken here — ensureGate() enters it at the first
  // lock-taking operation, so a read-only scope never touches it (and
  // a migration flip never waits on one).
  if (O.Snap) {
    Snap = O.Snap;
  } else {
    SnapSlot = acquireSnapshotSlot(Snap);
    OwnsSnapSlot = true;
  }
  Frame.ForceTry = O.ForceTry;
  Ctx = txnCtxPool().acquire();
  Ctx->Txn = &Frame;
  Ctx->Locks.setOrderDomain(0, Rel->lockDomainOrdinal());
  Ctx->Locks.setBirthStamp(BirthStamp);
}

bool Transaction::ensureGate() {
  if (GateHeld)
    return true;
  assert(St == TxnState::Open);
  // Lazy gate entry: only lock-taking operations pin the relation's
  // operation gate (from here to scope finish), keeping migration
  // flips atomic with respect to writing transactions. A mid-scope
  // shard join must not block indefinitely on a flip in progress while
  // the scope holds other shards' gates and locks — it waits boundedly
  // and the scope dies instead.
  if (WantBoundedGate) {
    if (!Rel->Gate.tryEnter(/*YieldBudget=*/4096)) {
      abortWith(TxnAbortCause::GateBusy);
      return false;
    }
  } else {
    Rel->Gate.enter();
  }
  GateHeld = true;
  StartEpoch = Rel->planEpoch();
  return true;
}

Transaction::~Transaction() {
  if (St == TxnState::Open)
    abortWith(TxnAbortCause::User);
}

bool Transaction::execOp(const PreparedOpImpl &Impl, const Value *Args,
                         size_t NumArgs, function_ref<void(const Tuple &)> Visit,
                         int64_t &Result) {
  if (St != TxnState::Open)
    return false;
  assert(&Impl.relation() == Rel &&
         "prepared handle belongs to a different relation than the scope");
  PlanOp Kind = Impl.planOp();

  // Lock-taking ops pin the gate (lazily, here) before any plan or
  // epoch state is touched; a blocking gate wait must not happen under
  // an epoch guard (the flip's synchronize would deadlock).
  if (!ensureGate())
    return false;

  // The guard spans plan resolution through the last dereference in
  // the retry loop (plan snapshots reclaim through the epoch domain).
  // Per-call, not scope-lifetime: the scope's locks outlive it, but
  // plans are only touched inside this call — and a scope-long guard
  // would pin the epoch across arbitrary user code between ops. The
  // guard nests inside the gate just ensured.
  EpochDomain::Guard EG;

  // Plan resolution. Mutations ride the handle's epoch-validated
  // binding (one cached pointer load when warm); transactional reads
  // resolve the exclusive-mode QueryForUpdate plan for the handle's
  // signature from the same wait-free cache.
  const Plan *P = nullptr;
  switch (Kind) {
  case PlanOp::Query:
    P = Impl.resolveForUpdate();
    break;
  case PlanOp::Insert:
  case PlanOp::Remove:
    P = Impl.resolve();
    break;
  default:
    assert(false && "not a transactional operation kind");
    return false;
  }

  // Epoch discipline: a scope never mixes plan regimes. adaptPlans()
  // bumping the epoch mid-scope aborts it; the client retries against
  // the new plans (prepared handles rebind on their next use).
  if (Rel->planEpoch() != StartEpoch) {
    abortWith(TxnAbortCause::EpochChange);
    return false;
  }

  assert(NumArgs == Impl.numSlots() &&
         "transactional op must bind every slot positionally");
  std::array<ColumnId, BoundOp::MaxSlots> Cols;
  for (unsigned I = 0; I < NumArgs; ++I)
    Cols[I] = Impl.slotColumn(I);
  Tuple &Input = Ctx->inputScratch();
  Input.rebind(Cols.data(), Args, NumArgs);

  switch (Kind) {
  case PlanOp::Query:
    Rel->NumQueries.inc();
    break;
  case PlanOp::Insert:
    Rel->NumInserts.inc();
    break;
  default:
    Rel->NumRemoves.inc();
    break;
  }
  Ctx->Count = &Rel->Count;
  Ctx->Mirror = Rel->ActiveMirror.load(std::memory_order_acquire);

  // Bounded wait-die retry loop: a Restart here is a failed try on an
  // out-of-order lock (transactional plans never speculate — reads use
  // the writer protocol on speculative edges). The failed attempt's
  // locks, pool pins, and buffered mirrors are shed; everything the
  // scope held before the op is retained.
  LockSet::Mark LockMark = Ctx->Locks.mark();
  size_t PoolMark = Ctx->poolMark();
  size_t MirrorMark = Frame.MirrorBuf.size();
  unsigned Budget = TryBudget;
  // Retries against a *younger* holder don't burn Budget (an older
  // scope waits, it doesn't die — the classic rule), but stay bounded
  // by this cap so a stuck young holder can't pin a senior forever.
  unsigned SeniorityWaits = TryBudget * 8;
  for (;;) {
    ExecStatus S = Rel->Executor.run(*P, Input, Rel->Root, *Ctx);
    if (S != ExecStatus::Restart) {
      ++Ops;
      switch (Kind) {
      case PlanOp::Query: {
        uint32_t N = Ctx->numStates(P->ResultVar);
        if (Visit)
          for (uint32_t I = 0; I < N; ++I)
            Visit(Ctx->stateTuple(P->ResultVar, I));
        Result = N;
        break;
      }
      case PlanOp::Insert:
        // Found: a tuple matching s exists — nothing written, nothing
        // to undo, but the locks that observed it are retained (the
        // negative outcome is part of the serializable read set).
        if (S == ExecStatus::Ok)
          Undo.push_back({/*WasInsert=*/true, Input});
        Result = S == ExecStatus::Ok ? 1 : 0;
        break;
      default: {
        uint32_t N = Ctx->numStates(P->ResultVar);
        assert(N <= 1 && "key-matched remove found multiple tuples");
        if (N != 0)
          Undo.push_back(
              {/*WasInsert=*/false, Ctx->stateTuple(P->ResultVar, 0)});
        Result = N;
        break;
      }
      }
      return true;
    }
    Ctx->Locks.releaseToMark(LockMark);
    Ctx->rollbackPool(PoolMark);
    Frame.MirrorBuf.resize(MirrorMark);
    ++Restarts;
    Rel->Restarts.fetch_add(1, std::memory_order_relaxed);
    if (Frame.SawUpgrade) {
      abortWith(TxnAbortCause::Upgrade);
      return false;
    }
    // Classic wait-die on birth stamps when the contended key's owner
    // table identifies the holder: an older holder kills this (younger)
    // scope immediately — it would die anyway after Budget futile tries,
    // and the fast death is what lets it retry with kept seniority; a
    // younger holder lets this scope keep retrying for free. A zero
    // stamp (bare operation, or the holder released between the failed
    // try and the read) falls back to the bounded budget.
    uint64_t Holder = Ctx->Locks.takeLastConflictStamp();
    if (Holder != 0 && Holder < BirthStamp) {
      abortWith(TxnAbortCause::Conflict); // younger dies (wait-die)
      return false;
    }
    if (Holder != 0 && Holder > BirthStamp) {
      if (SeniorityWaits-- == 0) {
        abortWith(TxnAbortCause::Conflict);
        return false;
      }
    } else if (Budget-- == 0) {
      abortWith(TxnAbortCause::Conflict); // die (bounded wait-die)
      return false;
    }
    std::this_thread::yield();
  }
}

uint32_t
Transaction::snapshotReadOver(const ConcurrentRelation &R,
                              const std::vector<UndoRecord> &Undo,
                              const Tuple &Input, uint64_t Snap,
                              function_ref<void(const Tuple &)> Visit,
                              SnapshotQueryStats *Stats) {
  // R is const (reads don't mutate the relation), but the version
  // store's directory registry may grow below: the unique_ptr is
  // const, its pointee is not.
  MvccStore &Store = *R.Mvcc;
  // Own-writes overlay: the scope reads its own uncommitted effects
  // over the committed chains. Replay the undo log per key — the last
  // record decides the key's current state (insert: present with that
  // tuple; remove: absent) — then suppress those keys in the store
  // visit and append the surviving inserts. Scopes are small; linear
  // key matching beats a map here.
  ColumnSet KeyCols = Store.keyColumns();
  std::vector<std::pair<Tuple, const Tuple *>> Mine;
  for (const UndoRecord &U : Undo) {
    Tuple K = U.Full.project(KeyCols);
    const Tuple *Cur = U.WasInsert ? &U.Full : nullptr;
    auto It = std::find_if(Mine.begin(), Mine.end(),
                           [&](const auto &P) { return P.first == K; });
    if (It == Mine.end())
      Mine.push_back({std::move(K), Cur});
    else
      It->second = Cur;
  }
  auto SkipMine = [&](const Tuple &Key) {
    return std::find_if(Mine.begin(), Mine.end(), [&](const auto &P) {
             return P.first == Key;
           }) != Mine.end();
  };
  function_ref<bool(const Tuple &)> Skip;
  if (!Mine.empty())
    Skip = SkipMine;
  SnapshotQueryStats Path;
  uint32_t N;
  {
    // The guard covers the lock-free chain walk (versions reclaim
    // through the epoch domain). No gate, no physical lock, no plan.
    EpochDomain::Guard EG;
    N = Store.snapshotQuery(Input, Snap, Visit, Skip, &Path);
    for (const auto &P : Mine) {
      if (!P.second || !P.second->extends(Input))
        continue;
      ++N;
      if (Visit)
        Visit(*P.second);
    }
  }
  // A fallback scan is the signal that this query shape has no access
  // path yet: request one now (outside the guard — backfill takes
  // bucket mutexes and should not pin reclamation), so the next read
  // binding these columns walks only its matching chains. Eagerly
  // compiled signatures (ConcurrentRelation's plan cache) normally get
  // here first; this lazy path catches ad-hoc shapes and directories
  // stranded by late prepares.
  if (Path.FullScan)
    Store.ensureDirectory(Input.domain());
  if (Stats)
    *Stats = Path;
  return N;
}

bool Transaction::query(const PreparedQuery &Q,
                        std::initializer_list<Value> Args,
                        function_ref<void(const Tuple &)> Visit,
                        uint32_t *Matches) {
  if (St != TxnState::Open)
    return false;
  const PreparedOpImpl &Impl = *Q.Impl;
  assert(&Impl.relation() == Rel &&
         "prepared handle belongs to a different relation than the scope");
  assert(Args.size() == Impl.numSlots() &&
         "transactional op must bind every slot positionally");
  std::array<ColumnId, BoundOp::MaxSlots> Cols;
  for (unsigned I = 0; I < Args.size(); ++I)
    Cols[I] = Impl.slotColumn(I);
  Tuple &Input = Ctx->inputScratch();
  Input.rebind(Cols.data(), Args.begin(), Args.size());
  Rel->NumQueries.inc();
  ++Ops;
  uint32_t N = snapshotReadOver(*Rel, Undo, Input, Snap, Visit,
                                &LastReadStats);
  if (Matches)
    *Matches = N;
  return true;
}

bool Transaction::queryForUpdate(const PreparedQuery &Q,
                                 std::initializer_list<Value> Args,
                                 function_ref<void(const Tuple &)> Visit,
                                 uint32_t *Matches) {
  int64_t R = 0;
  if (!execOp(*Q.Impl, Args.begin(), Args.size(), Visit, R))
    return false;
  if (Matches)
    *Matches = static_cast<uint32_t>(R);
  return true;
}

bool Transaction::insert(const PreparedInsert &I,
                         std::initializer_list<Value> Args, bool *Won) {
  int64_t R = 0;
  if (!execOp(*I.Impl, Args.begin(), Args.size(), nullptr, R))
    return false;
  if (Won)
    *Won = R != 0;
  return true;
}

bool Transaction::remove(const PreparedRemove &Rm,
                         std::initializer_list<Value> Args,
                         unsigned *Removed) {
  int64_t R = 0;
  if (!execOp(*Rm.Impl, Args.begin(), Args.size(), nullptr, R))
    return false;
  if (Removed)
    *Removed = static_cast<unsigned>(R);
  return true;
}

bool Transaction::commit() {
  if (St != TxnState::Open)
    return false;
  if (Undo.empty()) {
    // Read-only (or effect-free): nothing to install, log, or stamp —
    // the commit clock never moves and no registry slot is touched, so
    // a read-heavy workload commits scopes without one shared RMW.
    commitWithSeq(0);
    return true;
  }
  // Stamp through the in-flight registry: concurrent snapshot
  // acquisition stays below this sequence until every version the
  // scope installs is in the store.
  CommitTicket T = beginCommit();
  commitWithSeq(T.Seq);
  endCommit(T);
  return true;
}

void Transaction::commitWithSeq(uint64_t S) {
  assert(St == TxnState::Open && "committing a finished scope");
  Seq = S;
  // Flush buffered dual-write mirrors with every lock still held: the
  // shadow sees the scope's mutations only once the scope is past the
  // point of abort, and before any key it wrote becomes reachable by
  // others. The sink is the one the ops buffered under — the scope held
  // the gate throughout, and flips close it.
  if (!Frame.MirrorBuf.empty()) {
    MirrorSink *M = Rel->ActiveMirror.load(std::memory_order_acquire);
    assert(M && "buffered mirrors but the dual-write phase ended mid-scope");
    if (M)
      for (const ExecContext::TxnFrame::BufferedMirror &E : Frame.MirrorBuf)
        M->mirror(E.Op, E.DomS, E.Input);
    Frame.MirrorBuf.clear();
  }
  // Commit effects, still under every retained lock. First the MVCC
  // version installs (oldest-first — within-commit order matters for a
  // key touched twice): rival writers on any touched key are still
  // excluded by 2PL, and the caller's beginCommit window keeps fresh
  // snapshots below S until every install — on every shard of a
  // sharded scope — has landed. Then the redo record (the WAL ordering
  // contract): the undo log *is* the redo record read forward — the
  // streaming logCommit overload encodes each entry's full tuple with
  // the operation kind un-flipped, straight from the log, projection
  // applied during encoding (ROADMAP 2c: no per-commit WalMutation
  // vector). Read-only scopes install and append nothing.
  if (!Undo.empty()) {
    assert(S != 0 && "mutating scope must commit through a ticket");
    for (const UndoRecord &U : Undo) {
      if (U.WasInsert)
        Rel->Mvcc->installInsert(U.Full, S);
      else
        Rel->Mvcc->installRemove(U.Full, S);
    }
    if (WriteAheadLog *W = Rel->Wal.load(std::memory_order_acquire))
      W->logCommit(Rel->WalPartition, Seq, Rel->WalShard, Undo.size(),
                   Rel->spec().allColumns(),
                   [&](size_t I, const Tuple *&Full) {
                     Full = &Undo[I].Full;
                     return Undo[I].WasInsert ? WalOp::Insert
                                              : WalOp::Remove;
                   });
  }
  Undo.clear();
  releaseScope();
  St = TxnState::Committed;
}

void Transaction::abort() {
  if (St == TxnState::Open)
    abortWith(TxnAbortCause::User);
}

void Transaction::abortWith(TxnAbortCause C) {
  assert(St == TxnState::Open && "aborting a finished scope");
  static_assert(unsigned(TxnAbortCause::User) + 1 ==
                    ConcurrentRelation::NumAbortCauses,
                "relation per-cause abort counters must cover the enum");
  rollbackUndo();
  releaseScope();
  St = TxnState::Aborted;
  Cause = C;
  // Per-cause striped counter (always on — an abort is never hot
  // enough to sample) plus a trace event when a registry is attached.
  Rel->AbortCounts[unsigned(C)].inc();
  if (const detail::RelationObs *OS = Rel->observability())
    OS->TxnRing->emit(obs::EventKind::TxnAbort, uint64_t(C), BirthStamp,
                      Ops);
}

void Transaction::rollbackUndo() {
  // Aborts discard buffered mirrors (the shadow never saw them) and
  // replay inverse plans newest-first on the retained-lock context.
  // Inverse executions must not re-buffer or re-mirror anything.
  Ctx->Mirror = nullptr;
  Frame.MirrorBuf.clear();
  Frame.SawUpgrade = false;
  // Undo plans resolve from the same epoch-reclaimed cache as forward
  // plans; the guard covers their resolution and replay.
  EpochDomain::Guard EG;
  for (auto It = Undo.rbegin(); It != Undo.rend(); ++It) {
    const Plan *P =
        It->WasInsert ? Rel->undoInsertPlan() : Rel->undoRemovePlan();
    for (;;) {
      LockSet::Mark LockMark = Ctx->Locks.mark();
      size_t PoolMark = Ctx->poolMark();
      ExecStatus S = Rel->Executor.run(*P, It->Full, Rel->Root, *Ctx);
      if (S != ExecStatus::Restart) {
        // The inverse of an insert must find the inserted tuple (its
        // locks never left this scope); the inverse of a remove may see
        // Found only in the idempotent already-present sense.
        assert(!Frame.SawUpgrade &&
               "undo required a lock upgrade (scope locks are exclusive)");
        assert((!It->WasInsert || Ctx->numStates(P->ResultVar) == 1) &&
               "undo-insert failed to locate the tuple it must remove");
        break;
      }
      // A failed try against a speculative reader's transient lock:
      // shed the attempt and go again — readers holding such locks
      // never block on anything this scope holds except in order, so
      // this loop terminates (see the deadlock argument in the header).
      Ctx->Locks.releaseToMark(LockMark);
      Ctx->rollbackPool(PoolMark);
      std::this_thread::yield();
    }
  }
  Undo.clear();
}

void Transaction::releaseScope() {
  Ctx->Txn = nullptr;
  Ctx->Mirror = nullptr;
  Ctx->Count = nullptr;
  // Shrinking phase: unlock everything (releaseAll clears this scope's
  // exclusive owner stamps before each unlock), then drop the pool pins
  // (the instances must outlive their unlocks), then the gate. The
  // pooled context must not leak this scope's age to its next tenant.
  Ctx->Locks.releaseAll();
  Ctx->Locks.setBirthStamp(0);
  Ctx->reset();
  if (GateHeld) {
    Rel->Gate.exit();
    GateHeld = false;
  }
  if (OwnsSnapSlot) {
    releaseSnapshotSlot(SnapSlot);
    OwnsSnapSlot = false;
  }
  txnCtxPool().release(Ctx);
  Ctx = nullptr;
  // The thread's open-scope slot frees when the scope *finishes* (an
  // aborted scope object may outlive its successor's lifetime).
  if (!Nested) {
    assert(OpenScopesOnThread == 1);
    --OpenScopesOnThread;
  }
}

//===----------------------------------------------------------------------===//
// ShardedTransaction
//===----------------------------------------------------------------------===//

ShardedTransaction::ShardedTransaction(ShardedRelation &R, unsigned Patience,
                                       uint64_t Birth)
    : Rel(&R), Subs(R.numShards()),
      BirthStamp(Birth ? Birth : nextTxnBirthStamp()), Patience(Patience) {
  assert(OpenScopesOnThread == 0 &&
         "one transaction scope open per thread (nested scopes would "
         "deadlock on their own locks)");
  ++OpenScopesOnThread;
  // One snapshot for the whole scope, on every shard: the sharded
  // scope owns the registry slot, subs adopt the sequence.
  SnapSlot = acquireSnapshotSlot(Snap);
}

ShardedTransaction::~ShardedTransaction() {
  if (St == TxnState::Open)
    dieWith(TxnAbortCause::User);
}

unsigned ShardedTransaction::shardsTouched() const {
  unsigned N = 0;
  for (const auto &S : Subs)
    if (S)
      ++N;
  return N;
}

Transaction *ShardedTransaction::subFor(unsigned Shard) {
  assert(Shard < Subs.size());
  if (Subs[Shard]) {
    // The order discipline is dynamic: once a higher shard has been
    // joined, acquisitions on lower shards may no longer block.
    Subs[Shard]->Frame.ForceTry = static_cast<int>(Shard) < MaxShard;
    return Subs[Shard].get();
  }
  Transaction::Opts O;
  O.Patience = Patience;
  O.Birth = BirthStamp; // the whole sharded scope ages as one
  O.Snap = Snap;        // one snapshot across every shard
  O.Nested = true;
  // Joining the first shard may wait like any operation; joining a
  // further shard happens while holding gates and locks, so the gate
  // wait is bounded, and joining *below* the highest shard held also
  // forces every acquisition onto the try path (shard-major order).
  O.BoundedGate = MaxShard >= 0;
  O.ForceTry = static_cast<int>(Shard) < MaxShard;
  Subs[Shard].reset(new Transaction(Rel->shard(Shard), O));
  if (Subs[Shard]->state() != TxnState::Open) {
    TxnAbortCause C = Subs[Shard]->abortCause();
    Subs[Shard].reset();
    dieWith(C);
    return nullptr;
  }
  MaxShard = std::max(MaxShard, static_cast<int>(Shard));
  return Subs[Shard].get();
}

void ShardedTransaction::dieWith(TxnAbortCause C) {
  assert(St == TxnState::Open);
  // Roll the touched shards back highest-first (reverse join order).
  for (auto It = Subs.rbegin(); It != Subs.rend(); ++It)
    if (*It && (*It)->state() == TxnState::Open)
      (*It)->abortWith(C);
  releaseSnapshotSlot(SnapSlot);
  St = TxnState::Aborted;
  Cause = C;
  --OpenScopesOnThread;
}

bool ShardedTransaction::runOps(const ShardedOpImpl &SI, const Value *Args,
                                size_t NumArgs,
                                function_ref<void(const Tuple &)> Visit,
                                int64_t &Total) {
  if (St != TxnState::Open)
    return false;
  assert(NumArgs == SI.numSlots() &&
         "transactional op must bind every slot positionally");
  auto RunShard = [&](unsigned Shard) {
    Transaction *T = subFor(Shard);
    if (!T)
      return false;
    int64_t R = 0;
    if (!T->execOp(SI.shardImpl(Shard), Args, NumArgs, Visit, R)) {
      dieWith(T->abortCause());
      return false;
    }
    Total += R;
    return true;
  };
  if (SI.singleShard())
    return RunShard(SI.shardOfArgs(Args));
  // Fan-out joins the shards in ascending index order — exactly the
  // blocking-safe join order, so an under-bound transactional op needs
  // no special casing.
  for (unsigned Shard = 0; Shard < Subs.size(); ++Shard)
    if (!RunShard(Shard))
      return false;
  return true;
}

bool ShardedTransaction::query(const ShardedQuery &Q,
                               std::initializer_list<Value> Args,
                               function_ref<void(const Tuple &)> Visit,
                               uint32_t *Matches) {
  if (St != TxnState::Open)
    return false;
  const ShardedOpImpl &SI = *Q.Impl;
  assert(Args.size() == SI.numSlots() &&
         "transactional op must bind every slot positionally");
  // Snapshot read: walk the touched shards' version stores directly at
  // the scope's one snapshot — no per-shard scope is opened, no gate
  // and no lock is taken, and shards this scope never wrote are not
  // joined (a read fans out without growing MaxShard or the lock
  // footprint). Shards the scope *did* write overlay their sub's undo
  // log, so the scope reads its own effects.
  static const std::vector<Transaction::UndoRecord> NoWrites;
  uint32_t Total = 0;
  LastReadStats.clear();
  auto ReadShard = [&](unsigned Shard) {
    ConcurrentRelation &R = Rel->shard(Shard);
    const PreparedOpImpl &Impl = SI.shardImpl(Shard);
    std::array<ColumnId, BoundOp::MaxSlots> Cols;
    for (unsigned I = 0; I < Args.size(); ++I)
      Cols[I] = Impl.slotColumn(I);
    Tuple Input;
    Input.rebind(Cols.data(), Args.begin(), Args.size());
    R.NumQueries.inc();
    const std::vector<Transaction::UndoRecord> &Writes =
        Subs[Shard] ? Subs[Shard]->Undo : NoWrites;
    SnapshotQueryStats Stats;
    Total += Transaction::snapshotReadOver(R, Writes, Input, Snap, Visit,
                                           &Stats);
    LastReadStats.emplace_back(Shard, Stats);
  };
  if (SI.singleShard())
    ReadShard(SI.shardOfArgs(Args.begin()));
  else
    for (unsigned Shard = 0; Shard < Subs.size(); ++Shard)
      ReadShard(Shard);
  if (Matches)
    *Matches = Total;
  return true;
}

bool ShardedTransaction::queryForUpdate(const ShardedQuery &Q,
                                        std::initializer_list<Value> Args,
                                        function_ref<void(const Tuple &)> Visit,
                                        uint32_t *Matches) {
  int64_t Total = 0;
  if (!runOps(*Q.Impl, Args.begin(), Args.size(), Visit, Total))
    return false;
  if (Matches)
    *Matches = static_cast<uint32_t>(Total);
  return true;
}

bool ShardedTransaction::insert(const ShardedInsert &I,
                                std::initializer_list<Value> Args,
                                bool *Won) {
  int64_t Total = 0; // inserts are always routed (dom(s) covers routing)
  if (!runOps(*I.Impl, Args.begin(), Args.size(), nullptr, Total))
    return false;
  if (Won)
    *Won = Total != 0;
  return true;
}

bool ShardedTransaction::remove(const ShardedRemove &Rm,
                                std::initializer_list<Value> Args,
                                unsigned *Removed) {
  int64_t Total = 0;
  if (!runOps(*Rm.Impl, Args.begin(), Args.size(), nullptr, Total))
    return false;
  if (Removed)
    *Removed = static_cast<unsigned>(Total);
  return true;
}

bool ShardedTransaction::commit() {
  if (St != TxnState::Open)
    return false;
  // One commit sequence for the whole scope, stamped before any shard
  // releases a lock: conflicting scopes (which, by 2PL, overlapped on
  // some still-held key) order their stamps with their serialization.
  // The whole multi-shard install runs inside one in-flight ticket
  // window, so a snapshot opened mid-commit pins a sequence below Seq
  // and sees either all shards' versions or none of them.
  bool Mutated = false;
  for (auto &S : Subs)
    if (S && S->state() == TxnState::Open && S->undoDepth() != 0)
      Mutated = true;
  if (Mutated) {
    CommitTicket T = beginCommit();
    Seq = T.Seq;
    for (auto &S : Subs)
      if (S && S->state() == TxnState::Open)
        S->commitWithSeq(Seq);
    endCommit(T);
  } else {
    Seq = 0;
    for (auto &S : Subs)
      if (S && S->state() == TxnState::Open)
        S->commitWithSeq(0);
  }
  releaseSnapshotSlot(SnapSlot);
  St = TxnState::Committed;
  --OpenScopesOnThread;
  return true;
}

void ShardedTransaction::abort() {
  if (St == TxnState::Open)
    dieWith(TxnAbortCause::User);
}
