//===- txn/Transaction.cpp - Serializable multi-operation scopes -------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "txn/Transaction.h"

#include "support/Compiler.h"
#include "sync/CommitClock.h"
#include "sync/Epoch.h"
#include "wal/Wal.h"

#include <algorithm>
#include <array>
#include <mutex>

using namespace crs;
using detail::PreparedOpImpl;
using detail::ShardedOpImpl;

namespace {

// The commit clock lives in sync/CommitClock.h now: the bare-mutation
// paths (runtime/ConcurrentRelation.cpp) stamp the same clock, so the
// WAL sees one total commit order whichever path wrote.

/// One scope open per thread (nested independent scopes would deadlock
/// on their own locks); a ShardedTransaction counts as one, its inner
/// per-shard scopes as zero.
thread_local unsigned OpenScopesOnThread = 0;

/// Warm contexts of exited threads. Workers in this codebase are often
/// short-lived (shard fan-out, stress drivers, request-per-thread
/// embeddings); without a hand-off every worker generation would pay
/// cold arenas for its first transaction. A thread's pool donates its
/// contexts here at thread exit, and a fresh thread's pool adopts one
/// before constructing from scratch. Adopted contexts drop their sticky
/// prepared-op argument frames: bindings are a per-thread contract, and
/// a handle must never observe another thread's bindings through a
/// recycled context.
struct CtxRecycleList {
  std::mutex M;
  std::vector<std::unique_ptr<ExecContext>> Free;
};
CtxRecycleList &ctxRecycleList() {
  // Leaked deliberately: thread_local pool destructors of late-exiting
  // threads may run after function-local statics would have been
  // destroyed, and the list must outlive every donor.
  static CtxRecycleList *L = new CtxRecycleList;
  return *L;
}

/// Transaction execution contexts are pooled per thread: a scope's
/// context must be distinct from the thread's operation context (a
/// visitor may observe both regimes) and live for the whole scope, but
/// constructing one per scope would pay cold arenas and allocations on
/// every transaction — the pool keeps them warm, like the per-thread
/// contexts of ordinary operations. Scopes belong to their opening
/// thread (contract), so acquire/release need no synchronization; only
/// the thread-exit donation touches the shared recycle list.
struct TxnCtxPool {
  std::vector<std::unique_ptr<ExecContext>> Storage;
  std::vector<ExecContext *> Free;
  ExecContext *acquire() {
    if (!Free.empty()) {
      ExecContext *C = Free.back();
      Free.pop_back();
      return C;
    }
    // Adopt a context donated by an exited thread before building a
    // cold one: its arenas already carry capacity.
    {
      CtxRecycleList &L = ctxRecycleList();
      std::lock_guard<std::mutex> G(L.M);
      if (!L.Free.empty()) {
        Storage.push_back(std::move(L.Free.back()));
        L.Free.pop_back();
        return Storage.back().get();
      }
    }
    Storage.push_back(std::make_unique<ExecContext>());
    return Storage.back().get();
  }
  void release(ExecContext *C) { Free.push_back(C); }
  ~TxnCtxPool() {
    // Thread exit. Every context is idle here: scopes are stack-bound
    // to their opening thread, so none can outlive its thread_locals.
    if (Storage.empty())
      return;
    CtxRecycleList &L = ctxRecycleList();
    std::lock_guard<std::mutex> G(L.M);
    for (std::unique_ptr<ExecContext> &C : Storage) {
      C->purgeFrames();
      L.Free.push_back(std::move(C));
    }
  }
};
TxnCtxPool &txnCtxPool() {
  static thread_local TxnCtxPool Pool;
  return Pool;
}

/// Failed out-of-order tries an op survives before the scope dies.
/// Grows with patience (the retry attempt number) — the aging half of
/// bounded wait-die.
unsigned tryBudget(unsigned Patience) {
  unsigned Shift = std::min(Patience, 6u);
  return 96u << Shift;
}

} // namespace

//===----------------------------------------------------------------------===//
// Transaction
//===----------------------------------------------------------------------===//

Transaction::Transaction(ConcurrentRelation &R, unsigned Patience,
                         uint64_t Birth)
    : Transaction(R, Opts{Patience, Birth, /*Nested=*/false,
                          /*BoundedGate=*/false, /*ForceTry=*/false}) {}

Transaction::Transaction(ConcurrentRelation &R, const Opts &O)
    : Rel(&R), TryBudget(tryBudget(O.Patience)), Nested(O.Nested) {
  // Stamp (or adopt) the wait-die age before any lock can be taken;
  // LockSet carries it to every exclusive owner table.
  BirthStamp = O.Birth ? O.Birth : nextTxnBirthStamp();
  if (!Nested) {
    assert(OpenScopesOnThread == 0 &&
           "one transaction scope open per thread (nested scopes would "
           "deadlock on their own locks)");
    ++OpenScopesOnThread;
  }
  // The scope holds the gate for its whole lifetime: migration flips
  // drain whole transactions, never land inside one. A mid-scope shard
  // join must not block indefinitely on a flip in progress while the
  // scope holds other shards' gates and locks — it waits boundedly and
  // the scope dies instead.
  if (O.BoundedGate) {
    if (!Rel->Gate.tryEnter(/*YieldBudget=*/4096)) {
      St = TxnState::Aborted;
      Cause = TxnAbortCause::GateBusy;
      return;
    }
  } else {
    Rel->Gate.enter();
  }
  GateHeld = true;
  StartEpoch = Rel->planEpoch();
  Frame.ForceTry = O.ForceTry;
  Ctx = txnCtxPool().acquire();
  Ctx->Txn = &Frame;
  Ctx->Locks.setOrderDomain(0, Rel->lockDomainOrdinal());
  Ctx->Locks.setBirthStamp(BirthStamp);
}

Transaction::~Transaction() {
  if (St == TxnState::Open)
    abortWith(TxnAbortCause::User);
}

bool Transaction::execOp(const PreparedOpImpl &Impl, const Value *Args,
                         size_t NumArgs, function_ref<void(const Tuple &)> Visit,
                         int64_t &Result) {
  if (St != TxnState::Open)
    return false;
  assert(&Impl.relation() == Rel &&
         "prepared handle belongs to a different relation than the scope");
  PlanOp Kind = Impl.planOp();

  // The guard spans plan resolution through the last dereference in
  // the retry loop (plan snapshots reclaim through the epoch domain).
  // Per-call, not scope-lifetime: the scope's locks outlive it, but
  // plans are only touched inside this call — and a scope-long guard
  // would pin the epoch across arbitrary user code between ops. The
  // guard nests inside the gate the scope has held since construction.
  EpochDomain::Guard EG;

  // Plan resolution. Mutations ride the handle's epoch-validated
  // binding (one cached pointer load when warm); transactional reads
  // resolve the exclusive-mode QueryForUpdate plan for the handle's
  // signature from the same wait-free cache.
  const Plan *P = nullptr;
  switch (Kind) {
  case PlanOp::Query:
    P = Impl.resolveForUpdate();
    break;
  case PlanOp::Insert:
  case PlanOp::Remove:
    P = Impl.resolve();
    break;
  default:
    assert(false && "not a transactional operation kind");
    return false;
  }

  // Epoch discipline: a scope never mixes plan regimes. adaptPlans()
  // bumping the epoch mid-scope aborts it; the client retries against
  // the new plans (prepared handles rebind on their next use).
  if (Rel->planEpoch() != StartEpoch) {
    abortWith(TxnAbortCause::EpochChange);
    return false;
  }

  assert(NumArgs == Impl.numSlots() &&
         "transactional op must bind every slot positionally");
  std::array<ColumnId, BoundOp::MaxSlots> Cols;
  for (unsigned I = 0; I < NumArgs; ++I)
    Cols[I] = Impl.slotColumn(I);
  Tuple &Input = Ctx->inputScratch();
  Input.rebind(Cols.data(), Args, NumArgs);

  switch (Kind) {
  case PlanOp::Query:
    Rel->NumQueries.inc();
    break;
  case PlanOp::Insert:
    Rel->NumInserts.inc();
    break;
  default:
    Rel->NumRemoves.inc();
    break;
  }
  Ctx->Count = &Rel->Count;
  Ctx->Mirror = Rel->ActiveMirror.load(std::memory_order_acquire);

  // Bounded wait-die retry loop: a Restart here is a failed try on an
  // out-of-order lock (transactional plans never speculate — reads use
  // the writer protocol on speculative edges). The failed attempt's
  // locks, pool pins, and buffered mirrors are shed; everything the
  // scope held before the op is retained.
  LockSet::Mark LockMark = Ctx->Locks.mark();
  size_t PoolMark = Ctx->poolMark();
  size_t MirrorMark = Frame.MirrorBuf.size();
  unsigned Budget = TryBudget;
  // Retries against a *younger* holder don't burn Budget (an older
  // scope waits, it doesn't die — the classic rule), but stay bounded
  // by this cap so a stuck young holder can't pin a senior forever.
  unsigned SeniorityWaits = TryBudget * 8;
  for (;;) {
    ExecStatus S = Rel->Executor.run(*P, Input, Rel->Root, *Ctx);
    if (S != ExecStatus::Restart) {
      ++Ops;
      switch (Kind) {
      case PlanOp::Query: {
        uint32_t N = Ctx->numStates(P->ResultVar);
        if (Visit)
          for (uint32_t I = 0; I < N; ++I)
            Visit(Ctx->stateTuple(P->ResultVar, I));
        Result = N;
        break;
      }
      case PlanOp::Insert:
        // Found: a tuple matching s exists — nothing written, nothing
        // to undo, but the locks that observed it are retained (the
        // negative outcome is part of the serializable read set).
        if (S == ExecStatus::Ok)
          Undo.push_back({/*WasInsert=*/true, Input});
        Result = S == ExecStatus::Ok ? 1 : 0;
        break;
      default: {
        uint32_t N = Ctx->numStates(P->ResultVar);
        assert(N <= 1 && "key-matched remove found multiple tuples");
        if (N != 0)
          Undo.push_back(
              {/*WasInsert=*/false, Ctx->stateTuple(P->ResultVar, 0)});
        Result = N;
        break;
      }
      }
      return true;
    }
    Ctx->Locks.releaseToMark(LockMark);
    Ctx->rollbackPool(PoolMark);
    Frame.MirrorBuf.resize(MirrorMark);
    ++Restarts;
    Rel->Restarts.fetch_add(1, std::memory_order_relaxed);
    if (Frame.SawUpgrade) {
      abortWith(TxnAbortCause::Upgrade);
      return false;
    }
    // Classic wait-die on birth stamps when the contended key's owner
    // table identifies the holder: an older holder kills this (younger)
    // scope immediately — it would die anyway after Budget futile tries,
    // and the fast death is what lets it retry with kept seniority; a
    // younger holder lets this scope keep retrying for free. A zero
    // stamp (bare operation, or the holder released between the failed
    // try and the read) falls back to the bounded budget.
    uint64_t Holder = Ctx->Locks.takeLastConflictStamp();
    if (Holder != 0 && Holder < BirthStamp) {
      abortWith(TxnAbortCause::Conflict); // younger dies (wait-die)
      return false;
    }
    if (Holder != 0 && Holder > BirthStamp) {
      if (SeniorityWaits-- == 0) {
        abortWith(TxnAbortCause::Conflict);
        return false;
      }
    } else if (Budget-- == 0) {
      abortWith(TxnAbortCause::Conflict); // die (bounded wait-die)
      return false;
    }
    std::this_thread::yield();
  }
}

bool Transaction::query(const PreparedQuery &Q,
                        std::initializer_list<Value> Args,
                        function_ref<void(const Tuple &)> Visit,
                        uint32_t *Matches) {
  int64_t R = 0;
  if (!execOp(*Q.Impl, Args.begin(), Args.size(), Visit, R))
    return false;
  if (Matches)
    *Matches = static_cast<uint32_t>(R);
  return true;
}

bool Transaction::insert(const PreparedInsert &I,
                         std::initializer_list<Value> Args, bool *Won) {
  int64_t R = 0;
  if (!execOp(*I.Impl, Args.begin(), Args.size(), nullptr, R))
    return false;
  if (Won)
    *Won = R != 0;
  return true;
}

bool Transaction::remove(const PreparedRemove &Rm,
                         std::initializer_list<Value> Args,
                         unsigned *Removed) {
  int64_t R = 0;
  if (!execOp(*Rm.Impl, Args.begin(), Args.size(), nullptr, R))
    return false;
  if (Removed)
    *Removed = static_cast<unsigned>(R);
  return true;
}

bool Transaction::commit() {
  if (St != TxnState::Open)
    return false;
  commitWithSeq(nextCommitSeq());
  return true;
}

void Transaction::commitWithSeq(uint64_t S) {
  assert(St == TxnState::Open && "committing a finished scope");
  Seq = S;
  // Flush buffered dual-write mirrors with every lock still held: the
  // shadow sees the scope's mutations only once the scope is past the
  // point of abort, and before any key it wrote becomes reachable by
  // others. The sink is the one the ops buffered under — the scope held
  // the gate throughout, and flips close it.
  if (!Frame.MirrorBuf.empty()) {
    MirrorSink *M = Rel->ActiveMirror.load(std::memory_order_acquire);
    assert(M && "buffered mirrors but the dual-write phase ended mid-scope");
    if (M)
      for (const ExecContext::TxnFrame::BufferedMirror &E : Frame.MirrorBuf)
        M->mirror(E.Op, E.DomS, E.Input);
    Frame.MirrorBuf.clear();
  }
  // Redo logging, still under every retained lock (the WAL ordering
  // contract): the undo log is the redo record read forward — each
  // entry's full tuple with the operation kind un-flipped. Read-only
  // scopes append nothing.
  if (!Undo.empty()) {
    if (WriteAheadLog *W = Rel->Wal.load(std::memory_order_acquire)) {
      static thread_local std::vector<WalMutation> Muts;
      Muts.clear();
      Muts.reserve(Undo.size());
      ColumnSet All = Rel->spec().allColumns();
      for (const UndoRecord &U : Undo) {
        WalMutation M;
        M.Op = U.WasInsert ? WalOp::Insert : WalOp::Remove;
        M.Full = U.Full.project(All);
        Muts.push_back(std::move(M));
      }
      W->logCommit(Rel->WalPartition, Seq, Rel->WalShard, Muts.data(),
                   Muts.size());
    }
  }
  Undo.clear();
  releaseScope();
  St = TxnState::Committed;
}

void Transaction::abort() {
  if (St == TxnState::Open)
    abortWith(TxnAbortCause::User);
}

void Transaction::abortWith(TxnAbortCause C) {
  assert(St == TxnState::Open && "aborting a finished scope");
  rollbackUndo();
  releaseScope();
  St = TxnState::Aborted;
  Cause = C;
}

void Transaction::rollbackUndo() {
  // Aborts discard buffered mirrors (the shadow never saw them) and
  // replay inverse plans newest-first on the retained-lock context.
  // Inverse executions must not re-buffer or re-mirror anything.
  Ctx->Mirror = nullptr;
  Frame.MirrorBuf.clear();
  Frame.SawUpgrade = false;
  // Undo plans resolve from the same epoch-reclaimed cache as forward
  // plans; the guard covers their resolution and replay.
  EpochDomain::Guard EG;
  for (auto It = Undo.rbegin(); It != Undo.rend(); ++It) {
    const Plan *P =
        It->WasInsert ? Rel->undoInsertPlan() : Rel->undoRemovePlan();
    for (;;) {
      LockSet::Mark LockMark = Ctx->Locks.mark();
      size_t PoolMark = Ctx->poolMark();
      ExecStatus S = Rel->Executor.run(*P, It->Full, Rel->Root, *Ctx);
      if (S != ExecStatus::Restart) {
        // The inverse of an insert must find the inserted tuple (its
        // locks never left this scope); the inverse of a remove may see
        // Found only in the idempotent already-present sense.
        assert(!Frame.SawUpgrade &&
               "undo required a lock upgrade (scope locks are exclusive)");
        assert((!It->WasInsert || Ctx->numStates(P->ResultVar) == 1) &&
               "undo-insert failed to locate the tuple it must remove");
        break;
      }
      // A failed try against a speculative reader's transient lock:
      // shed the attempt and go again — readers holding such locks
      // never block on anything this scope holds except in order, so
      // this loop terminates (see the deadlock argument in the header).
      Ctx->Locks.releaseToMark(LockMark);
      Ctx->rollbackPool(PoolMark);
      std::this_thread::yield();
    }
  }
  Undo.clear();
}

void Transaction::releaseScope() {
  Ctx->Txn = nullptr;
  Ctx->Mirror = nullptr;
  Ctx->Count = nullptr;
  // Shrinking phase: unlock everything (releaseAll clears this scope's
  // exclusive owner stamps before each unlock), then drop the pool pins
  // (the instances must outlive their unlocks), then the gate. The
  // pooled context must not leak this scope's age to its next tenant.
  Ctx->Locks.releaseAll();
  Ctx->Locks.setBirthStamp(0);
  Ctx->reset();
  if (GateHeld) {
    Rel->Gate.exit();
    GateHeld = false;
  }
  txnCtxPool().release(Ctx);
  Ctx = nullptr;
  // The thread's open-scope slot frees when the scope *finishes* (an
  // aborted scope object may outlive its successor's lifetime).
  if (!Nested) {
    assert(OpenScopesOnThread == 1);
    --OpenScopesOnThread;
  }
}

//===----------------------------------------------------------------------===//
// ShardedTransaction
//===----------------------------------------------------------------------===//

ShardedTransaction::ShardedTransaction(ShardedRelation &R, unsigned Patience,
                                       uint64_t Birth)
    : Rel(&R), Subs(R.numShards()),
      BirthStamp(Birth ? Birth : nextTxnBirthStamp()), Patience(Patience) {
  assert(OpenScopesOnThread == 0 &&
         "one transaction scope open per thread (nested scopes would "
         "deadlock on their own locks)");
  ++OpenScopesOnThread;
}

ShardedTransaction::~ShardedTransaction() {
  if (St == TxnState::Open)
    dieWith(TxnAbortCause::User);
}

unsigned ShardedTransaction::shardsTouched() const {
  unsigned N = 0;
  for (const auto &S : Subs)
    if (S)
      ++N;
  return N;
}

Transaction *ShardedTransaction::subFor(unsigned Shard) {
  assert(Shard < Subs.size());
  if (Subs[Shard]) {
    // The order discipline is dynamic: once a higher shard has been
    // joined, acquisitions on lower shards may no longer block.
    Subs[Shard]->Frame.ForceTry = static_cast<int>(Shard) < MaxShard;
    return Subs[Shard].get();
  }
  Transaction::Opts O;
  O.Patience = Patience;
  O.Birth = BirthStamp; // the whole sharded scope ages as one
  O.Nested = true;
  // Joining the first shard may wait like any operation; joining a
  // further shard happens while holding gates and locks, so the gate
  // wait is bounded, and joining *below* the highest shard held also
  // forces every acquisition onto the try path (shard-major order).
  O.BoundedGate = MaxShard >= 0;
  O.ForceTry = static_cast<int>(Shard) < MaxShard;
  Subs[Shard].reset(new Transaction(Rel->shard(Shard), O));
  if (Subs[Shard]->state() != TxnState::Open) {
    TxnAbortCause C = Subs[Shard]->abortCause();
    Subs[Shard].reset();
    dieWith(C);
    return nullptr;
  }
  MaxShard = std::max(MaxShard, static_cast<int>(Shard));
  return Subs[Shard].get();
}

void ShardedTransaction::dieWith(TxnAbortCause C) {
  assert(St == TxnState::Open);
  // Roll the touched shards back highest-first (reverse join order).
  for (auto It = Subs.rbegin(); It != Subs.rend(); ++It)
    if (*It && (*It)->state() == TxnState::Open)
      (*It)->abortWith(C);
  St = TxnState::Aborted;
  Cause = C;
  --OpenScopesOnThread;
}

bool ShardedTransaction::runOps(const ShardedOpImpl &SI, const Value *Args,
                                size_t NumArgs,
                                function_ref<void(const Tuple &)> Visit,
                                int64_t &Total) {
  if (St != TxnState::Open)
    return false;
  assert(NumArgs == SI.numSlots() &&
         "transactional op must bind every slot positionally");
  auto RunShard = [&](unsigned Shard) {
    Transaction *T = subFor(Shard);
    if (!T)
      return false;
    int64_t R = 0;
    if (!T->execOp(SI.shardImpl(Shard), Args, NumArgs, Visit, R)) {
      dieWith(T->abortCause());
      return false;
    }
    Total += R;
    return true;
  };
  if (SI.singleShard())
    return RunShard(SI.shardOfArgs(Args));
  // Fan-out joins the shards in ascending index order — exactly the
  // blocking-safe join order, so an under-bound transactional op needs
  // no special casing.
  for (unsigned Shard = 0; Shard < Subs.size(); ++Shard)
    if (!RunShard(Shard))
      return false;
  return true;
}

bool ShardedTransaction::query(const ShardedQuery &Q,
                               std::initializer_list<Value> Args,
                               function_ref<void(const Tuple &)> Visit,
                               uint32_t *Matches) {
  int64_t Total = 0;
  if (!runOps(*Q.Impl, Args.begin(), Args.size(), Visit, Total))
    return false;
  if (Matches)
    *Matches = static_cast<uint32_t>(Total);
  return true;
}

bool ShardedTransaction::insert(const ShardedInsert &I,
                                std::initializer_list<Value> Args,
                                bool *Won) {
  int64_t Total = 0; // inserts are always routed (dom(s) covers routing)
  if (!runOps(*I.Impl, Args.begin(), Args.size(), nullptr, Total))
    return false;
  if (Won)
    *Won = Total != 0;
  return true;
}

bool ShardedTransaction::remove(const ShardedRemove &Rm,
                                std::initializer_list<Value> Args,
                                unsigned *Removed) {
  int64_t Total = 0;
  if (!runOps(*Rm.Impl, Args.begin(), Args.size(), nullptr, Total))
    return false;
  if (Removed)
    *Removed = static_cast<unsigned>(Total);
  return true;
}

bool ShardedTransaction::commit() {
  if (St != TxnState::Open)
    return false;
  // One commit sequence for the whole scope, stamped before any shard
  // releases a lock: conflicting scopes (which, by 2PL, overlapped on
  // some still-held key) order their stamps with their serialization.
  Seq = nextCommitSeq();
  for (auto &S : Subs)
    if (S && S->state() == TxnState::Open)
      S->commitWithSeq(Seq);
  St = TxnState::Committed;
  --OpenScopesOnThread;
  return true;
}

void ShardedTransaction::abort() {
  if (St == TxnState::Open)
    dieWith(TxnAbortCause::User);
}
