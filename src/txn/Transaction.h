//===- txn/Transaction.h - Serializable multi-operation scopes --*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-operation transactions over synthesized relations. The paper
/// makes every single operation two-phase and globally lock-ordered
/// (§4.2, §5.1); this subsystem generalizes those per-operation lock
/// scopes into *transaction* scopes, so a client can make several
/// operations atomic — a scheduler moving a process between CPUs, a
/// transfer debiting one row and crediting another — with no visible
/// intermediate state:
///
///   Transaction T(Rel);
///   T.remove(Rem, {Value::ofInt(From), Value::ofInt(0)}, &Removed);
///   T.insert(Ins, {Value::ofInt(From), Value::ofInt(0),
///                  Value::ofInt(Bal - X)}, &Won);
///   ...
///   if (!T.commit()) retry;
///
/// **Writes: strict two-phase locking.** Every mutation executes
/// through the shared plan executor on a transaction-owned execution
/// context whose lock set is *retained* until commit or abort. At
/// commit the scope stamps one sequence from the commit clock (inside a
/// beginCommit/endCommit registry window) and, still under every
/// retained lock, installs a committed version of each effect into the
/// relation's MVCC store (txn/MvccStore.h) and appends the WAL record.
///
/// **Reads: MVCC snapshots.** A scope picks a snapshot sequence when it
/// opens (sync/CommitClock.h::acquireSnapshotSlot) and query() reads
/// the version store at that snapshot — a consistent view across every
/// query in the scope, across relations and shards, with **zero lock
/// acquisitions**, no plan, and no gate: a read-only scope touches no
/// shared line of the representation at all. The scope's own
/// uncommitted writes overlay the snapshot (you read your own effects;
/// removed keys disappear, inserted tuples appear). The consistency
/// class is snapshot isolation: queries never see anomalies within the
/// scope (no non-repeatable reads, no read skew), but a key read by
/// query() and written on the evidence of that read is not locked —
/// use queryForUpdate(), which keeps the PR 5 exclusive-locking read
/// (PlanOp::QueryForUpdate plans) for read-modify-write: its read set
/// is 2PL-locked, so lost updates are impossible. Phantoms: query()
/// sees exactly the committed-at-snapshot membership plus its own
/// writes; a predicate a scope wants stable against concurrent inserts
/// must be covered by queryForUpdate (documented and asserted in
/// tests/txn_mvcc_test.cpp).
///
/// **Deadlock freedom.** Within one op the planner emits locks in the
/// global order (§5.1). Across chained ops the scope's high-water key
/// can exceed a later op's keys, so the executor splits acquisitions:
/// in-order requests block (safe: a blocking wait is always at or above
/// everything the scope holds), out-of-order requests go through the
/// try path and a failure restarts the op — after a bounded number of
/// failed tries the transaction *dies* (aborts, rolls back, reports
/// Conflict) rather than ever waiting out of order. This is a bounded
/// wait-die discipline: blocking edges respect a total order (acyclic),
/// try edges never wait, so no cycle can form; fairness comes from
/// aging — runTransaction retries a died scope with growing patience,
/// so old logical transactions eventually outlast young ones. The
/// debug-build sync/LockOrderValidator asserts the cross-op and
/// cross-shard discipline on every blocking acquisition.
///
/// **Rollback.** Every committed mutation in the scope appends an undo
/// record (operation kind + full tuple); abort replays *inverse
/// mutation plans* — PlanOp::UndoInsert (a full-tuple-keyed remove) and
/// PlanOp::UndoRemove (a put-if-absent re-insert) — newest first, on
/// the same retained-lock context, so rollback is exact and invisible:
/// no other transaction can observe, or conflict with, a state the
/// abort is about to erase (the locks never dropped).
///
/// **Migration integration.** The scope enters the relation's
/// operation gate lazily, at its first lock-taking operation, and holds
/// it until finish — so a migration flip (runtime/Migration.h) is
/// atomic with respect to every transaction that *writes* (it drains
/// them, never lands mid-scope), while a read-only scope holds no gate
/// at all: a migration can begin and complete under an open snapshot
/// scope, whose reads — served by the identity-keyed version store, not
/// the decomposition — see the same snapshot before and after the swap.
/// During a dual-write phase the
/// scope's MirrorWrite epilogues are buffered in the transaction frame
/// and flushed to the shadow at commit (locks still held); aborts
/// discard the buffer, so the shadow never sees a rolled-back write.
/// If adaptPlans() retires the scope's plans mid-flight (the epoch
/// moves), the next operation aborts the scope with EpochChange and the
/// client retries — prepared-handle rebinding inside a live scope would
/// mix plan regimes.
///
/// **Cross-shard scopes.** ShardedTransaction lazily opens one inner
/// scope per touched shard. Joining a shard *above* every shard already
/// held keeps the (shard, key) order and may block; joining below must
/// not (gate entry is bounded, every acquisition forced onto the try
/// path), so cross-shard deadlocks are impossible by the same argument,
/// with the shard index as the major key. A single-shard transaction
/// creates one inner scope and pays no coordination at commit; a
/// cross-shard commit stamps one commit sequence number, flushes and
/// releases shard by shard — atomicity for locking observers follows
/// from 2PL (every touched key stays exclusively locked until that
/// shard releases), and atomicity for snapshot readers from the commit
/// registry: the whole multi-shard install happens inside one
/// beginCommit/endCommit window, so no snapshot at or above the
/// sequence is handed out until every shard's versions are in place.
///
/// Threading rules: a transaction belongs to the thread that opened it;
/// one scope open per thread at a time; while it is open, do not
/// operate on relations outside the scope from that thread (the scope
/// holds locks — an outside operation could self-deadlock); handles and
/// relations must outlive the scope. Query visitors run with locks held
/// and must not execute relation operations.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_TXN_TRANSACTION_H
#define CRS_TXN_TRANSACTION_H

#include "runtime/PreparedOp.h"
#include "runtime/ShardedRelation.h"
#include "txn/MvccStore.h"

#include <memory>
#include <thread>
#include <utility>
#include <vector>

namespace crs {

/// Lifecycle of a transaction scope.
enum class TxnState : uint8_t {
  Open,      ///< accepting operations
  Committed, ///< effects durable and visible; locks released
  Aborted,   ///< effects rolled back exactly; locks released
};

/// Why a scope aborted (state() == Aborted).
enum class TxnAbortCause : uint8_t {
  None,        ///< not aborted
  Conflict,    ///< wait-die: an out-of-order acquisition stayed blocked
  Upgrade,     ///< a shared→exclusive escalation was required (misuse)
  EpochChange, ///< adaptPlans() retired the scope's plans mid-flight
  GateBusy,    ///< a cross-shard join timed out on a closed gate
  User,        ///< abort() or destruction of an open scope
};

/// A serializable multi-operation scope over one ConcurrentRelation.
/// Non-copyable, non-movable; see the file comment for the contract.
class Transaction {
public:
  /// Opens a scope on \p R: acquires the scope's read snapshot (every
  /// query() in the scope reads this one commit-clock prefix) and
  /// registers it with the reclamation watermark. The operation gate is
  /// entered lazily by the first lock-taking operation, so a read-only
  /// scope never touches it. \p Patience scales the bounded wait-die
  /// try budget —
  /// pass the retry attempt number (as runTransaction does) so aging
  /// scopes win contended keys eventually. \p Birth carries a birth
  /// stamp across retries of the same logical transaction (0 stamps a
  /// fresh one): wait-die compares these stamps, so a retried scope
  /// keeps its seniority instead of rejoining the queue as a newborn.
  explicit Transaction(ConcurrentRelation &R, unsigned Patience = 0,
                       uint64_t Birth = 0);

  /// An open scope aborts (rolls back) on destruction.
  ~Transaction();
  Transaction(const Transaction &) = delete;
  Transaction &operator=(const Transaction &) = delete;

  TxnState state() const { return St; }
  TxnAbortCause abortCause() const { return Cause; }

  /// The scope's commit sequence number, stamped from a process-global
  /// clock *before* any lock is released: replaying committed scopes in
  /// commit-sequence order reproduces the serialization order on every
  /// contended key (the stress oracle's contract). Valid after a
  /// successful commit() of a scope that wrote; a read-only commit
  /// stamps nothing and leaves this 0.
  uint64_t commitSeq() const { return Seq; }

  /// The scope's wait-die birth stamp (sync/CommitClock.h). Feed it back
  /// as the \p Birth of the retry scope so the logical transaction ages.
  uint64_t birthStamp() const { return BirthStamp; }

  /// The scope's read snapshot: every query() sees exactly the commits
  /// with sequence ≤ this (plus the scope's own writes).
  uint64_t snapshotSeq() const { return Snap; }

  /// Operations executed, undo records pending, failed lock tries.
  /// @{
  uint64_t opsExecuted() const { return Ops; }
  size_t undoDepth() const { return Undo.size(); }
  uint64_t restarts() const { return Restarts; }
  /// @}

  /// Access-path report of the scope's most recent query(): which path
  /// served it (primary point lookup, secondary directory, or the
  /// whole-store fallback) and how many chains/links it touched. The
  /// txn_mvcc_test access-path assertions read this; zeroed until the
  /// first query.
  const SnapshotQueryStats &lastSnapshotReadStats() const {
    return LastReadStats;
  }

  /// query r s C inside the scope: a *snapshot read* of the relation's
  /// MVCC store at the scope's snapshot, overlaid with the scope's own
  /// uncommitted writes. Acquires no locks, resolves no plan, and never
  /// dies — see the file comment for the consistency class (snapshot
  /// isolation; use queryForUpdate() for read-modify-write). \p Visit
  /// (optional) streams every matching full tuple; \p Matches
  /// (optional) receives the match count. Returns false iff the scope
  /// was already finished.
  bool query(const PreparedQuery &Q, std::initializer_list<Value> Args,
             function_ref<void(const Tuple &)> Visit = nullptr,
             uint32_t *Matches = nullptr);

  /// query r s C with 2PL semantics: locks the read set exclusively
  /// (PlanOp::QueryForUpdate) and retains the locks to commit — the
  /// read-modify-write primitive (a later write justified by this read
  /// is serializable; lost updates are impossible). Reads the current
  /// committed-plus-own state, not the snapshot. Returns false iff the
  /// scope died — it has already rolled back, state() is Aborted, and
  /// abortCause() says why.
  bool queryForUpdate(const PreparedQuery &Q,
                      std::initializer_list<Value> Args,
                      function_ref<void(const Tuple &)> Visit = nullptr,
                      uint32_t *Matches = nullptr);

  /// insert r s t inside the scope; \p Won (optional) receives whether
  /// the put-if-absent won. Returns false iff the scope died.
  bool insert(const PreparedInsert &I, std::initializer_list<Value> Args,
              bool *Won = nullptr);

  /// remove r s inside the scope; \p Removed (optional) receives the
  /// number removed (0 or 1). Returns false iff the scope died.
  bool remove(const PreparedRemove &R, std::initializer_list<Value> Args,
              unsigned *Removed = nullptr);

  /// Commits: stamps the commit sequence, flushes buffered mirror
  /// writes to an in-flight migration's shadow (locks still held),
  /// releases every lock, and exits the gate. False if not Open.
  bool commit();

  /// Rolls back every mutation via the inverse plans and releases the
  /// scope. No-op unless Open.
  void abort();

private:
  friend class ShardedTransaction;

  struct Opts {
    unsigned Patience = 0;
    uint64_t Birth = 0;       ///< carried birth stamp (0: stamp fresh)
    uint64_t Snap = 0;        ///< adopted snapshot (0: acquire + own a
                              ///< registry slot) — the sharded scope
                              ///< owns one snapshot for every sub
    bool Nested = false;      ///< part of a ShardedTransaction
    bool BoundedGate = false; ///< joining mid-scope: bounded gate wait
    bool ForceTry = false;    ///< out-of-shard-order join: never block
  };
  Transaction(ConcurrentRelation &R, const Opts &O);

  struct UndoRecord {
    bool WasInsert; ///< else a remove
    Tuple Full;     ///< the tuple inserted / removed, in full
  };

  /// The shared execution core: resolves the transactional plan for
  /// \p Impl's kind, executes it on the scope's context with the
  /// bounded wait-die retry loop, captures undo, and reports the
  /// op-kind result. False iff the scope died (already rolled back).
  bool execOp(const detail::PreparedOpImpl &Impl, const Value *Args,
              size_t NumArgs, function_ref<void(const Tuple &)> Visit,
              int64_t &Result);

  /// Lazy gate entry (first lock-taking op): enters \p Rel's operation
  /// gate — boundedly for a mid-scope shard join — and pins the plan
  /// epoch. False iff the scope died (GateBusy, already rolled back).
  bool ensureGate();

  /// The snapshot read core, shared with ShardedTransaction's direct
  /// per-shard reads: visits \p R's version store at \p Snap overlaid
  /// with the write set in \p Undo (its keys supersede the committed
  /// chains; its net inserts are appended). A read that fell back to
  /// the whole-store scan requests a secondary directory for its
  /// column set afterwards (outside the epoch guard), so the next read
  /// with this shape is directory-served. \p Stats (optional) receives
  /// the access-path report. Returns the match count.
  static uint32_t
  snapshotReadOver(const ConcurrentRelation &R,
                   const std::vector<UndoRecord> &Undo, const Tuple &Input,
                   uint64_t Snap, function_ref<void(const Tuple &)> Visit,
                   SnapshotQueryStats *Stats = nullptr);

  void commitWithSeq(uint64_t S);
  void abortWith(TxnAbortCause C);
  void rollbackUndo();
  void releaseScope();

  ConcurrentRelation *Rel;
  /// Borrowed from the thread's pool for the scope's lifetime: locks
  /// and instance pins live here until commit or abort. Null once the
  /// scope has finished (and before the gate was entered).
  ExecContext *Ctx = nullptr;
  ExecContext::TxnFrame Frame;
  std::vector<UndoRecord> Undo;
  TxnState St = TxnState::Open;
  TxnAbortCause Cause = TxnAbortCause::None;
  uint64_t Seq = 0;
  uint64_t BirthStamp = 0; ///< wait-die age (sync/CommitClock.h)
  uint64_t Snap = 0;       ///< the scope's read snapshot
  SnapshotQueryStats LastReadStats; ///< most recent query()'s path
  uint64_t StartEpoch = 0;
  uint64_t Ops = 0;
  uint64_t Restarts = 0;
  unsigned TryBudget; ///< failed tries per op before the scope dies
  unsigned SnapSlot = 0;    ///< watermark registry slot (if owned)
  bool OwnsSnapSlot = false;
  bool GateHeld = false;
  bool WantBoundedGate = false; ///< ensureGate waits boundedly
  bool Nested = false;
};

/// A serializable multi-operation scope over a ShardedRelation: one
/// lazy inner Transaction per touched shard, shard-index-major lock
/// order, one commit sequence for the whole scope. Single-shard scopes
/// create one inner scope and pay no cross-shard coordination.
class ShardedTransaction {
public:
  explicit ShardedTransaction(ShardedRelation &R, unsigned Patience = 0,
                              uint64_t Birth = 0);
  ~ShardedTransaction();
  ShardedTransaction(const ShardedTransaction &) = delete;
  ShardedTransaction &operator=(const ShardedTransaction &) = delete;

  TxnState state() const { return St; }
  TxnAbortCause abortCause() const { return Cause; }
  uint64_t commitSeq() const { return Seq; }
  /// The whole sharded scope ages as one wait-die participant: every
  /// inner per-shard scope carries this stamp to its lock owner tables.
  uint64_t birthStamp() const { return BirthStamp; }
  /// The one snapshot every read in the scope uses, on every shard —
  /// a cross-shard commit installs all its shards' versions inside one
  /// beginCommit window, so this snapshot can never see half of one.
  uint64_t snapshotSeq() const { return Snap; }
  /// Shards this scope holds locks (and the gate) on so far.
  unsigned shardsTouched() const;

  /// Access-path attribution of the scope's most recent query(), one
  /// (shard index, stats) entry per shard the read actually walked, in
  /// ascending shard order: a routed single-shard read reports one
  /// entry, a fan-out one per shard. The sharded analogue of
  /// Transaction::lastSnapshotReadStats() — per-shard because each
  /// shard's version store serves (or full-scans) independently.
  /// Empty until the first query().
  const std::vector<std::pair<unsigned, SnapshotQueryStats>> &
  lastSnapshotReadStats() const {
    return LastReadStats;
  }

  /// The sharded operations mirror Transaction's, with routing: a
  /// signature covering the routing columns touches one shard; an
  /// under-bound query or remove fans out across every shard in
  /// ascending shard order (which is exactly the deadlock-free join
  /// order). query() is a snapshot read like Transaction::query — it
  /// reads the touched shards' version stores directly (overlaid with
  /// any writes the scope already made there), opens no per-shard
  /// scope, takes no gate and no lock, and never dies;
  /// queryForUpdate() keeps the 2PL read. The locking ops return false
  /// iff the scope died (rolled back on every touched shard).
  /// @{
  bool query(const ShardedQuery &Q, std::initializer_list<Value> Args,
             function_ref<void(const Tuple &)> Visit = nullptr,
             uint32_t *Matches = nullptr);
  bool queryForUpdate(const ShardedQuery &Q,
                      std::initializer_list<Value> Args,
                      function_ref<void(const Tuple &)> Visit = nullptr,
                      uint32_t *Matches = nullptr);
  bool insert(const ShardedInsert &I, std::initializer_list<Value> Args,
              bool *Won = nullptr);
  bool remove(const ShardedRemove &R, std::initializer_list<Value> Args,
              unsigned *Removed = nullptr);
  /// @}

  bool commit();
  void abort();

private:
  Transaction *subFor(unsigned Shard);
  void dieWith(TxnAbortCause C);
  /// The shared execution core behind the three sharded ops: routes a
  /// covered signature to its one shard, fans an under-bound one out
  /// across every shard in ascending (join-safe) order, and sums the
  /// per-shard results. False iff the scope died.
  bool runOps(const detail::ShardedOpImpl &SI, const Value *Args,
              size_t NumArgs, function_ref<void(const Tuple &)> Visit,
              int64_t &Total);

  ShardedRelation *Rel;
  std::vector<std::unique_ptr<Transaction>> Subs; ///< lazily opened
  TxnState St = TxnState::Open;
  TxnAbortCause Cause = TxnAbortCause::None;
  uint64_t Seq = 0;
  uint64_t BirthStamp = 0; ///< shared by every inner scope
  uint64_t Snap = 0;       ///< one snapshot for every shard
  /// Most recent query()'s per-shard access paths (see accessor).
  std::vector<std::pair<unsigned, SnapshotQueryStats>> LastReadStats;
  unsigned SnapSlot = 0;   ///< watermark registry slot (always owned)
  unsigned Patience;
  int MaxShard = -1; ///< highest shard joined so far (order discipline)
};

/// Maps a relation surface to its transaction type (runTransaction).
template <typename RelT> struct TxnHandleFor;
template <> struct TxnHandleFor<ConcurrentRelation> {
  using type = Transaction;
};
template <> struct TxnHandleFor<ShardedRelation> {
  using type = ShardedTransaction;
};

/// Runs \p Body inside a transaction scope on \p Rel and commits.
/// A scope that dies (Conflict, EpochChange, GateBusy) is retried with
/// the attempt number as its patience — the aging that makes bounded
/// wait-die fair: a long-suffering logical transaction tolerates ever
/// more failed tries per op, so it eventually outlasts younger rivals
/// on any contended key. \p Body receives the open scope and returns
/// false to request a user abort (rolled back, not retried). Returns
/// true once a scope commits; false on user abort or after
/// \p MaxAttempts retries (0 = unbounded).
template <typename RelT, typename BodyFn>
bool runTransaction(RelT &Rel, BodyFn &&Body, unsigned MaxAttempts = 0) {
  // One birth stamp for the whole logical transaction: the first scope
  // stamps it, every retry carries it, so under wait-die the retried
  // transaction only ever gains seniority (the fairness argument).
  uint64_t Birth = 0;
  for (unsigned Attempt = 0; MaxAttempts == 0 || Attempt < MaxAttempts;
       ++Attempt) {
    typename TxnHandleFor<RelT>::type Txn(Rel, /*Patience=*/Attempt, Birth);
    Birth = Txn.birthStamp();
    bool BodyOk = Body(Txn);
    // A body that committed by hand is done, whatever it returned — a
    // committed scope must never fall through into the retry loop
    // (that would re-execute its effects).
    if (Txn.state() == TxnState::Committed)
      return true;
    if (!BodyOk) {
      if (Txn.state() == TxnState::Open)
        Txn.abort();
      return false;
    }
    if (Txn.state() == TxnState::Open && Txn.commit())
      return true;
    if (Txn.abortCause() == TxnAbortCause::User)
      return false;
    // Back off a little harder each round before re-contending.
    for (unsigned Y = 0; Y <= Attempt && Y < 64; ++Y)
      std::this_thread::yield();
  }
  return false;
}

} // namespace crs

#endif // CRS_TXN_TRANSACTION_H
