//===- txn/MvccStore.h - Per-tuple version chains for MVCC ------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MVCC substrate behind snapshot reads (txn/Transaction.h): one
/// logical version store per relation, holding a chain of committed
/// versions per *tuple identity* — the valuation of the relation's
/// minimal key columns. Identity-keyed (rather than anchored on the
/// decomposition's node instances) because decompositions are
/// transient: migrateTo() swaps the whole instance tree under traffic,
/// while versions must survive exactly as long as some snapshot can
/// see them. Every synthesized representation of a relation therefore
/// shares this one store, and a snapshot taken before a migration
/// reads identically after the swap (see docs/PAPER_MAP.md for how
/// this relates to the paper's decomposition instances).
///
/// **Visibility.** Versions are stamped with commit sequences from the
/// commit clock: a version is visible at snapshot S iff
///
///   Begin ≤ S  ∧  (End = 0 ∨ End > S)
///
/// Writers install at *commit*, under every 2PL lock the scope still
/// holds, between beginCommit() and endCommit() (sync/CommitClock.h) —
/// so uncommitted writes are never in the store, aborts have nothing
/// to revoke, and the in-flight registry keeps every fresh snapshot
/// below a commit whose installs are mid-flight. Within one commit a
/// key sees at most one effective mutation of each kind in order, so
/// version ranges of one chain never overlap and at most one version
/// per chain is visible at any snapshot.
///
/// **Readers** walk bucket → chain → version lists entirely lock-free
/// under an EpochDomain guard (the caller pins the guard; asserted in
/// debug). Writers publish with release stores under short per-bucket
/// mutexes, unlink dead versions by swinging predecessor pointers, and
/// retire unlinked nodes through EpochDomain::global() — the RCU
/// discipline of sync/Epoch.h. A reader may harmlessly see a stale
/// End of 0 for a version being terminated: the terminating commit's
/// sequence is above every extant snapshot (in-flight registry), so
/// the visibility verdict is unchanged.
///
/// **Reclamation** is bounded by the minimum active snapshot: prune()
/// unlinks every version with 0 < End ≤ watermark (invisible to every
/// live and future snapshot — sync/CommitClock.h::snapshotWatermark),
/// and whole chains once empty. Commits prune the chains they touch as
/// they install (amortized); prune() is the explicit vacuum for tests
/// and idle housekeeping.
///
/// **Secondary chain directories.** A query that binds only a proper
/// subset of the identity columns (a successor query binding `src` on
/// a `(src, dst)`-keyed graph) cannot use the primary hash directory.
/// For each such column set the relation serves (surfaced from the
/// plan cache's compiled query signatures, or lazily on the first
/// falling-back read), the store keeps a secondary directory: a hash
/// table from the projected sub-key to the chains extending it. Only
/// identity columns participate — a chain's key never changes, so a
/// link is installed once when the chain is created and removed once
/// when the chain empties, both under the chain's primary bucket
/// mutex; readers walk directory buckets lock-free under the same
/// epoch guard. A new directory is published to the registry first and
/// then backfilled from the live chains bucket by bucket; readers
/// ignore it until the backfill completes (Ready), while installers
/// observe it through the bucket-mutex ordering, so no chain created
/// during the backfill is missed and duplicates are impossible (links
/// dedup under the directory bucket mutex). Directories survive
/// migrateTo untouched — the store is decomposition-independent by
/// design — but are *not* immortal: when a query signature leaves the
/// plan cache (adaptPlans recompiles against a changed workload and the
/// signature is not re-requested), retireStaleDirectories() unpublishes
/// the unused directory from the registry and hands it to the epoch
/// domain, whose deleter frees the directory and its links after the
/// grace period. Every walk of the directory registry therefore pins an
/// epoch guard — including the installers' walks under bucket mutexes —
/// so a straggler that loaded the registry just before an unpublish
/// holds off reclamation, and a link it adds to a retiring directory is
/// simply freed by the deleter.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_TXN_MVCCSTORE_H
#define CRS_TXN_MVCCSTORE_H

#include "obs/EventRing.h"
#include "rel/RelationSpec.h"
#include "rel/Tuple.h"
#include "support/FunctionRef.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace crs {

/// Per-call observability for one snapshotQuery: which access path
/// served it and how much of the store it touched. Filled into a
/// caller-owned struct (no shared counters on the read path); the
/// txn_mvcc_test access-path assertions are built on ChainsVisited
/// staying O(matching chains) for directory-served reads as the rest
/// of the store grows.
struct SnapshotQueryStats {
  uint32_t ChainsVisited = 0; ///< chains whose version list was walked
  uint32_t LinksScanned = 0;  ///< bucket/directory list nodes traversed
  bool DirectoryServed = false; ///< a secondary directory served the read
  bool FullScan = false;        ///< fell back to the whole-store scan
};

/// The per-relation MVCC version store. Thread-safe per the file
/// comment: lock-free epoch-guarded readers, bucket-locked writers.
class MvccStore {
public:
  /// Builds the store for \p Spec: tuple identity is the spec's first
  /// minimal key (every column when the spec has no proper key — each
  /// tuple is then its own identity and updates-in-place do not
  /// exist). \p NumBuckets fixes the hash directory (never resized —
  /// readers hold raw bucket pointers).
  explicit MvccStore(const RelationSpec &Spec, unsigned NumBuckets = 256);

  /// Primary directory size for an expected tuple cardinality: the
  /// power of two giving ~2 chains per bucket, clamped to [64, 2^20];
  /// 0 (unknown) keeps the 256 default. The count is fixed for the
  /// store's lifetime, so callers size it from
  /// RepresentationConfig::ExpectedCardinality up front.
  static unsigned bucketCountFor(size_t ExpectedCardinality);
  ~MvccStore();
  MvccStore(const MvccStore &) = delete;
  MvccStore &operator=(const MvccStore &) = delete;

  /// The identity columns (the spec's first minimal key).
  ColumnSet keyColumns() const { return KeyCols; }

  /// \name Commit-side installs
  /// Call with the committing scope's locks still held and a
  /// CommitTicket open (sequence \p Seq): the locks serialize rival
  /// writers per key, the ticket keeps fresh snapshots below Seq until
  /// endCommit. Both prune the touched chain against the current
  /// watermark while they hold its bucket (amortized reclamation).
  /// @{

  /// Installs a committed insert: a new version of π_key(Full)'s chain
  /// with Begin = Seq. \p Full must bind every column.
  void installInsert(const Tuple &Full, uint64_t Seq);

  /// Installs a committed remove: stamps End = Seq on the live version
  /// of π_key(Full)'s chain (no-op if the chain has no live version —
  /// tolerated for idempotent replay paths).
  void installRemove(const Tuple &Full, uint64_t Seq);

  /// @}

  /// Snapshot query: visits the full tuple of every version visible at
  /// snapshot \p Snap that extends \p S (the paper's query r s C read
  /// set, unprojected). Point-looks-up one chain when dom(S) covers the
  /// identity columns; otherwise routes through the best matching
  /// secondary directory (most bound identity columns), falling back
  /// to the whole-store scan only when no ready directory applies.
  /// \p SkipKey (optional) suppresses chains by identity — the
  /// own-writes overlay hook: a transaction passes its write set so
  /// its own undo log can supersede the committed chain. \p Stats
  /// (optional) reports the access path taken. Returns the number
  /// visited. Caller must hold an EpochDomain guard on the global
  /// domain (asserted in debug); acquires no lock.
  uint32_t snapshotQuery(const Tuple &S, uint64_t Snap,
                         function_ref<void(const Tuple &)> Visit,
                         function_ref<bool(const Tuple &)> SkipKey = nullptr,
                         SnapshotQueryStats *Stats = nullptr) const;

  /// Ensures a secondary directory over \p QueryCols ∩ keyColumns()
  /// exists and is (being) backfilled. No-op when the intersection is
  /// empty (nothing to index) or covers the whole identity (the
  /// primary directory already serves it). Returns true if a directory
  /// over that column set exists on return (possibly still
  /// backfilling; readers use it once ready). Thread-safe; callable
  /// concurrently with installs, reads, and pruning. Creation +
  /// backfill lock bucket mutexes, so prefer calling it outside an
  /// epoch guard to keep reclamation prompt.
  bool ensureDirectory(ColumnSet QueryCols);

  /// Number of secondary directories currently registered (tests).
  size_t directoryCount() const;

  /// Retires every *ready* directory whose column set \p StillServed
  /// rejects: unpublishes it from the registry (new installers and
  /// readers no longer see it) and hands it — links included — to the
  /// epoch domain, which frees it after the grace period. Directories
  /// still backfilling are skipped (the backfiller holds a raw pointer;
  /// they are fresh by definition and a candidate next time). Called by
  /// ConcurrentRelation::adaptPlans with the set of query signatures
  /// that survived the replan. Returns directories retired. Thread-safe
  /// against installs, reads, pruning, and ensureDirectory.
  size_t retireStaleDirectories(function_ref<bool(ColumnSet)> StillServed);

  /// Cumulative directories retired (observability:
  /// relation.mvcc.directories_retired).
  uint64_t directoriesRetired() const {
    return DirsRetired.load(std::memory_order_relaxed);
  }

  /// Points directory lifecycle events (DirectoryBackfill /
  /// DirectoryRetire) at \p Ring (the registry's Relation-domain ring);
  /// null detaches. Attach/detach on a quiet store, like attachWal.
  void attachTrace(obs::TraceRing *Ring) {
    Trace.store(Ring, std::memory_order_release);
  }

  /// Explicit vacuum: unlinks and retires every version invisible at
  /// \p Watermark (0 < End ≤ Watermark) and every emptied chain.
  /// Returns versions retired. Safe under concurrent readers and
  /// writers.
  size_t prune(uint64_t Watermark);

  /// \name Metrics (tests, reclamation-boundedness assertions)
  /// @{
  uint64_t installed() const {
    return Installed.load(std::memory_order_relaxed);
  }
  uint64_t retired() const { return Retired.load(std::memory_order_relaxed); }
  /// Versions currently linked (installed − retired).
  uint64_t liveVersions() const { return installed() - retired(); }
  /// Longest chain list hanging off one primary bucket right now — the
  /// hash-quality metric the stress lane bounds (a store sized from
  /// the expected cardinality must not degrade into long intra-bucket
  /// lists). Pins its own epoch guard; lock-free.
  size_t maxBucketChainLength() const;
  /// installRemove calls that found no live version to end. Tolerated
  /// for idempotent replay (recovery), but outside recovery the
  /// commit protocol makes them impossible — the snapshot stress
  /// oracle asserts this stays zero.
  uint64_t removeNoops() const {
    return RemoveNoops.load(std::memory_order_relaxed);
  }
  /// @}

private:
  struct Version;
  struct Chain;
  struct Bucket;
  struct DirLink;
  struct DirBucket;
  struct Directory;

  Bucket &bucketFor(const Tuple &Key) const;
  /// Finds \p Key's chain in \p B (lock-free walk), or null.
  Chain *findChain(const Bucket &B, const Tuple &Key) const;
  /// Finds or links \p Key's chain; call with \p B's mutex held. A
  /// newly created chain is linked into every registered directory.
  Chain *findOrCreateChain(Bucket &B, const Tuple &Key);
  /// Unlinks dead versions of \p C below \p Watermark and, when the
  /// chain empties, the chain itself (plus its directory links); call
  /// with the bucket mutex held.
  size_t pruneChainLocked(Bucket &B, Chain *C, uint64_t Watermark);
  /// Links \p C into \p D (dedup under the directory bucket mutex);
  /// call with \p C's primary bucket mutex held.
  void linkChainToDir(Directory &D, Chain *C);
  /// The ready directory with the most columns ⊆ \p QueryDom, or null.
  Directory *directoryFor(ColumnSet QueryDom) const;

  ColumnSet KeyCols;
  ColumnSet AllCols;
  std::vector<std::unique_ptr<Bucket>> Buckets;
  std::atomic<uint64_t> Installed{0};
  std::atomic<uint64_t> Retired{0};
  std::atomic<uint64_t> RemoveNoops{0};
  std::atomic<uint64_t> DirsRetired{0};
  /// Optional event sink (see attachTrace). Loaded relaxed on the cold
  /// paths that emit; null means no tracing.
  std::atomic<obs::TraceRing *> Trace{nullptr};
  /// Secondary directory registry: a lock-free list (directories push
  /// at head under DirsM; readers/installers load acquire *inside an
  /// epoch guard*). Shrinks only via retireStaleDirectories, which
  /// unlinks under DirsM and epoch-retires — see the file comment.
  std::atomic<Directory *> Dirs{nullptr};
  std::mutex DirsM; ///< serializes directory creation/backfill/retire
};

} // namespace crs

#endif // CRS_TXN_MVCCSTORE_H
