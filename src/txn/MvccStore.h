//===- txn/MvccStore.h - Per-tuple version chains for MVCC ------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MVCC substrate behind snapshot reads (txn/Transaction.h): one
/// logical version store per relation, holding a chain of committed
/// versions per *tuple identity* — the valuation of the relation's
/// minimal key columns. Identity-keyed (rather than anchored on the
/// decomposition's node instances) because decompositions are
/// transient: migrateTo() swaps the whole instance tree under traffic,
/// while versions must survive exactly as long as some snapshot can
/// see them. Every synthesized representation of a relation therefore
/// shares this one store, and a snapshot taken before a migration
/// reads identically after the swap (see docs/PAPER_MAP.md for how
/// this relates to the paper's decomposition instances).
///
/// **Visibility.** Versions are stamped with commit sequences from the
/// commit clock: a version is visible at snapshot S iff
///
///   Begin ≤ S  ∧  (End = 0 ∨ End > S)
///
/// Writers install at *commit*, under every 2PL lock the scope still
/// holds, between beginCommit() and endCommit() (sync/CommitClock.h) —
/// so uncommitted writes are never in the store, aborts have nothing
/// to revoke, and the in-flight registry keeps every fresh snapshot
/// below a commit whose installs are mid-flight. Within one commit a
/// key sees at most one effective mutation of each kind in order, so
/// version ranges of one chain never overlap and at most one version
/// per chain is visible at any snapshot.
///
/// **Readers** walk bucket → chain → version lists entirely lock-free
/// under an EpochDomain guard (the caller pins the guard; asserted in
/// debug). Writers publish with release stores under short per-bucket
/// mutexes, unlink dead versions by swinging predecessor pointers, and
/// retire unlinked nodes through EpochDomain::global() — the RCU
/// discipline of sync/Epoch.h. A reader may harmlessly see a stale
/// End of 0 for a version being terminated: the terminating commit's
/// sequence is above every extant snapshot (in-flight registry), so
/// the visibility verdict is unchanged.
///
/// **Reclamation** is bounded by the minimum active snapshot: prune()
/// unlinks every version with 0 < End ≤ watermark (invisible to every
/// live and future snapshot — sync/CommitClock.h::snapshotWatermark),
/// and whole chains once empty. Commits prune the chains they touch as
/// they install (amortized); prune() is the explicit vacuum for tests
/// and idle housekeeping.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_TXN_MVCCSTORE_H
#define CRS_TXN_MVCCSTORE_H

#include "rel/RelationSpec.h"
#include "rel/Tuple.h"
#include "support/FunctionRef.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace crs {

/// The per-relation MVCC version store. Thread-safe per the file
/// comment: lock-free epoch-guarded readers, bucket-locked writers.
class MvccStore {
public:
  /// Builds the store for \p Spec: tuple identity is the spec's first
  /// minimal key (every column when the spec has no proper key — each
  /// tuple is then its own identity and updates-in-place do not
  /// exist). \p NumBuckets fixes the hash directory (never resized —
  /// readers hold raw bucket pointers).
  explicit MvccStore(const RelationSpec &Spec, unsigned NumBuckets = 256);
  ~MvccStore();
  MvccStore(const MvccStore &) = delete;
  MvccStore &operator=(const MvccStore &) = delete;

  /// The identity columns (the spec's first minimal key).
  ColumnSet keyColumns() const { return KeyCols; }

  /// \name Commit-side installs
  /// Call with the committing scope's locks still held and a
  /// CommitTicket open (sequence \p Seq): the locks serialize rival
  /// writers per key, the ticket keeps fresh snapshots below Seq until
  /// endCommit. Both prune the touched chain against the current
  /// watermark while they hold its bucket (amortized reclamation).
  /// @{

  /// Installs a committed insert: a new version of π_key(Full)'s chain
  /// with Begin = Seq. \p Full must bind every column.
  void installInsert(const Tuple &Full, uint64_t Seq);

  /// Installs a committed remove: stamps End = Seq on the live version
  /// of π_key(Full)'s chain (no-op if the chain has no live version —
  /// tolerated for idempotent replay paths).
  void installRemove(const Tuple &Full, uint64_t Seq);

  /// @}

  /// Snapshot query: visits the full tuple of every version visible at
  /// snapshot \p Snap that extends \p S (the paper's query r s C read
  /// set, unprojected). Point-looks-up one chain when dom(S) covers the
  /// identity columns, otherwise scans the whole store. \p SkipKey
  /// (optional) suppresses chains by identity — the own-writes overlay
  /// hook: a transaction passes its write set so its own undo log can
  /// supersede the committed chain. Returns the number visited.
  /// Caller must hold an EpochDomain guard on the global domain
  /// (asserted in debug); acquires no lock.
  uint32_t snapshotQuery(const Tuple &S, uint64_t Snap,
                         function_ref<void(const Tuple &)> Visit,
                         function_ref<bool(const Tuple &)> SkipKey =
                             nullptr) const;

  /// Explicit vacuum: unlinks and retires every version invisible at
  /// \p Watermark (0 < End ≤ Watermark) and every emptied chain.
  /// Returns versions retired. Safe under concurrent readers and
  /// writers.
  size_t prune(uint64_t Watermark);

  /// \name Metrics (tests, reclamation-boundedness assertions)
  /// @{
  uint64_t installed() const {
    return Installed.load(std::memory_order_relaxed);
  }
  uint64_t retired() const { return Retired.load(std::memory_order_relaxed); }
  /// Versions currently linked (installed − retired).
  uint64_t liveVersions() const { return installed() - retired(); }
  /// @}

private:
  struct Version;
  struct Chain;
  struct Bucket;

  Bucket &bucketFor(const Tuple &Key) const;
  /// Finds \p Key's chain in \p B (lock-free walk), or null.
  Chain *findChain(const Bucket &B, const Tuple &Key) const;
  /// Finds or links \p Key's chain; call with \p B's mutex held.
  Chain *findOrCreateChain(Bucket &B, const Tuple &Key);
  /// Unlinks dead versions of \p C below \p Watermark and, when the
  /// chain empties, the chain itself; call with the bucket mutex held.
  size_t pruneChainLocked(Bucket &B, Chain *C, uint64_t Watermark);

  ColumnSet KeyCols;
  ColumnSet AllCols;
  std::vector<std::unique_ptr<Bucket>> Buckets;
  std::atomic<uint64_t> Installed{0};
  std::atomic<uint64_t> Retired{0};
};

} // namespace crs

#endif // CRS_TXN_MVCCSTORE_H
