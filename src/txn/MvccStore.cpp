//===- txn/MvccStore.cpp - Per-tuple version chains for MVCC -----------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "txn/MvccStore.h"

#include "sync/CommitClock.h"
#include "sync/Epoch.h"

#include <cassert>

using namespace crs;

/// One committed version: immutable but for the End stamp. Newest
/// first on its chain; Next is written only under the bucket mutex,
/// read lock-free under the epoch guard.
struct MvccStore::Version {
  Tuple Full;
  uint64_t Begin;
  std::atomic<uint64_t> End{0};
  std::atomic<Version *> Next{nullptr};
};

/// One tuple identity's chain. Head is the newest version; the chain
/// node itself lives on its bucket's list and reclaims (epoch-deferred)
/// once every version is gone.
struct MvccStore::Chain {
  Tuple Key;
  std::atomic<Version *> Head{nullptr};
  std::atomic<Chain *> Next{nullptr};
};

struct MvccStore::Bucket {
  std::atomic<Chain *> Head{nullptr};
  std::mutex M; ///< writers only: installs, chain links, pruning
};

MvccStore::MvccStore(const RelationSpec &Spec, unsigned NumBuckets) {
  AllCols = Spec.allColumns();
  std::vector<ColumnSet> Keys = Spec.minimalKeys();
  KeyCols = Keys.empty() ? AllCols : Keys.front();
  Buckets.reserve(NumBuckets);
  for (unsigned I = 0; I < NumBuckets; ++I)
    Buckets.push_back(std::make_unique<Bucket>());
}

MvccStore::~MvccStore() {
  // The relation is dying: no reader can hold a guard over our nodes
  // legitimately (stores must outlive every scope that reads them —
  // same contract as the relation itself). Free directly.
  for (std::unique_ptr<Bucket> &B : Buckets) {
    Chain *C = B->Head.load(std::memory_order_relaxed);
    while (C) {
      Version *V = C->Head.load(std::memory_order_relaxed);
      while (V) {
        Version *VN = V->Next.load(std::memory_order_relaxed);
        delete V;
        V = VN;
      }
      Chain *CN = C->Next.load(std::memory_order_relaxed);
      delete C;
      C = CN;
    }
  }
}

MvccStore::Bucket &MvccStore::bucketFor(const Tuple &Key) const {
  return *Buckets[Key.hash() % Buckets.size()];
}

MvccStore::Chain *MvccStore::findChain(const Bucket &B,
                                       const Tuple &Key) const {
  for (Chain *C = B.Head.load(std::memory_order_acquire); C;
       C = C->Next.load(std::memory_order_acquire))
    if (C->Key == Key)
      return C;
  return nullptr;
}

MvccStore::Chain *MvccStore::findOrCreateChain(Bucket &B, const Tuple &Key) {
  if (Chain *C = findChain(B, Key))
    return C;
  Chain *C = new Chain;
  C->Key = Key;
  // Push at head: concurrent lock-free scans that started earlier miss
  // it, which is benign — a new chain only ever receives versions whose
  // Begin is above every extant snapshot (in-flight commit registry).
  C->Next.store(B.Head.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  B.Head.store(C, std::memory_order_release);
  return C;
}

void MvccStore::installInsert(const Tuple &Full, uint64_t Seq) {
  assert(Seq != 0);
  Tuple Key = Full.project(KeyCols);
  Bucket &B = bucketFor(Key);
  std::lock_guard<std::mutex> G(B.M);
  Chain *C = findOrCreateChain(B, Key);
  assert([&] {
    Version *H = C->Head.load(std::memory_order_relaxed);
    return !H || H->End.load(std::memory_order_relaxed) != 0;
  }() && "installing over a live version (put-if-absent should have lost)");
  Version *V = new Version;
  V->Full = Full.project(AllCols);
  V->Begin = Seq;
  V->Next.store(C->Head.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  C->Head.store(V, std::memory_order_release);
  Installed.fetch_add(1, std::memory_order_relaxed);
  Retired.fetch_add(pruneChainLocked(B, C, snapshotWatermark()),
                    std::memory_order_relaxed);
}

void MvccStore::installRemove(const Tuple &Full, uint64_t Seq) {
  assert(Seq != 0);
  Tuple Key = Full.project(KeyCols);
  Bucket &B = bucketFor(Key);
  std::lock_guard<std::mutex> G(B.M);
  Chain *C = findChain(B, Key);
  if (!C)
    return; // idempotent-replay tolerance (see header)
  Version *H = C->Head.load(std::memory_order_relaxed);
  if (!H || H->End.load(std::memory_order_relaxed) != 0)
    return;
  H->End.store(Seq, std::memory_order_release);
  Retired.fetch_add(pruneChainLocked(B, C, snapshotWatermark()),
                    std::memory_order_relaxed);
}

uint32_t
MvccStore::snapshotQuery(const Tuple &S, uint64_t Snap,
                         function_ref<void(const Tuple &)> Visit,
                         function_ref<bool(const Tuple &)> SkipKey) const {
  assert(EpochDomain::global().inGuard() &&
         "snapshot reads walk epoch-reclaimed chains; pin a guard first");
  uint32_t N = 0;
  auto VisitChain = [&](const Chain *C) {
    if (SkipKey && SkipKey(C->Key))
      return;
    for (Version *V = C->Head.load(std::memory_order_acquire); V;
         V = V->Next.load(std::memory_order_acquire)) {
      if (V->Begin > Snap)
        continue; // newer than the snapshot; an older version may show
      uint64_t End = V->End.load(std::memory_order_acquire);
      if (End == 0 || End > Snap) {
        if (V->Full.extends(S)) {
          ++N;
          if (Visit)
            Visit(V->Full);
        }
      }
      // Versions below this one began (and ended) earlier still: once
      // one version with Begin ≤ Snap has been judged, older ones are
      // all terminated at or before its Begin — invisible.
      return;
    }
  };
  if (S.domain().containsAll(KeyCols)) {
    Tuple Key = S.project(KeyCols);
    if (const Chain *C = findChain(bucketFor(Key), Key))
      VisitChain(C);
    return N;
  }
  for (const std::unique_ptr<Bucket> &B : Buckets)
    for (Chain *C = B->Head.load(std::memory_order_acquire); C;
         C = C->Next.load(std::memory_order_acquire))
      VisitChain(C);
  return N;
}

size_t MvccStore::pruneChainLocked(Bucket &B, Chain *C, uint64_t Watermark) {
  EpochDomain &D = EpochDomain::global();
  size_t Freed = 0;
  // Unlink every version with 0 < End ≤ Watermark. Predecessor-pointer
  // surgery under the bucket mutex; readers mid-walk keep following the
  // unlinked node's intact Next until their guard exits (RCU removal).
  std::atomic<Version *> *Link = &C->Head;
  Version *V = Link->load(std::memory_order_relaxed);
  while (V) {
    uint64_t End = V->End.load(std::memory_order_relaxed);
    Version *Next = V->Next.load(std::memory_order_relaxed);
    if (End != 0 && End <= Watermark) {
      Link->store(Next, std::memory_order_release);
      D.retireObject(V);
      ++Freed;
    } else {
      Link = &V->Next;
    }
    V = Next;
  }
  if (!C->Head.load(std::memory_order_relaxed)) {
    // Chain emptied: unlink it from the bucket too.
    std::atomic<Chain *> *CLink = &B.Head;
    for (Chain *Cur = CLink->load(std::memory_order_relaxed); Cur;
         Cur = CLink->load(std::memory_order_relaxed)) {
      if (Cur == C) {
        CLink->store(C->Next.load(std::memory_order_relaxed),
                     std::memory_order_release);
        D.retireObject(C);
        break;
      }
      CLink = &Cur->Next;
    }
  }
  return Freed;
}

size_t MvccStore::prune(uint64_t Watermark) {
  size_t Freed = 0;
  for (std::unique_ptr<Bucket> &B : Buckets) {
    std::lock_guard<std::mutex> G(B->M);
    // Snapshot the chain list first: pruneChainLocked may unlink the
    // chain under our feet.
    std::vector<Chain *> Chains;
    for (Chain *C = B->Head.load(std::memory_order_relaxed); C;
         C = C->Next.load(std::memory_order_relaxed))
      Chains.push_back(C);
    for (Chain *C : Chains)
      Freed += pruneChainLocked(*B, C, Watermark);
  }
  Retired.fetch_add(Freed, std::memory_order_relaxed);
  EpochDomain::global().tryAdvance();
  return Freed;
}
