//===- txn/MvccStore.cpp - Per-tuple version chains for MVCC -----------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "txn/MvccStore.h"

#include "sync/CommitClock.h"
#include "sync/Epoch.h"

#include <cassert>

using namespace crs;

/// One committed version: immutable but for the End stamp. Newest
/// first on its chain; Next is written only under the bucket mutex,
/// read lock-free under the epoch guard.
struct MvccStore::Version {
  Tuple Full;
  uint64_t Begin;
  std::atomic<uint64_t> End{0};
  std::atomic<Version *> Next{nullptr};
};

/// One tuple identity's chain. Head is the newest version; the chain
/// node itself lives on its bucket's list and reclaims (epoch-deferred)
/// once every version is gone.
struct MvccStore::Chain {
  Tuple Key;
  std::atomic<Version *> Head{nullptr};
  std::atomic<Chain *> Next{nullptr};
};

struct MvccStore::Bucket {
  std::atomic<Chain *> Head{nullptr};
  std::mutex M; ///< writers only: installs, chain links, pruning
};

/// One secondary-directory entry: a chain reachable by its projected
/// sub-key. Lives on a DirBucket list; written under that bucket's
/// mutex, read lock-free under the epoch guard, retired with its chain.
struct MvccStore::DirLink {
  Tuple SubKey; ///< π_dir-cols(chain key)
  Chain *C = nullptr;
  std::atomic<DirLink *> Next{nullptr};
};

struct MvccStore::DirBucket {
  std::atomic<DirLink *> Head{nullptr};
  std::mutex M; ///< link/unlink only; always taken after a primary
                ///< bucket mutex, never before one
};

/// One secondary directory: sub-key → chains, over a proper nonempty
/// subset of the identity columns. Registered on a grow-only list.
struct MvccStore::Directory {
  ColumnSet Cols;
  std::vector<std::unique_ptr<DirBucket>> Buckets;
  /// Readers route through the directory only once the backfill has
  /// walked every primary bucket (before that, a lookup could miss
  /// pre-existing chains). Installs/unlinks honor it immediately.
  std::atomic<bool> Ready{false};
  std::atomic<Directory *> Next{nullptr};

  DirBucket &bucketFor(const Tuple &SubKey) const {
    return *Buckets[SubKey.hash() % Buckets.size()];
  }
};

unsigned MvccStore::bucketCountFor(size_t ExpectedCardinality) {
  if (ExpectedCardinality == 0)
    return 256;
  size_t Want = 64;
  while (Want < (1u << 20) && Want * 2 < ExpectedCardinality)
    Want *= 2;
  return static_cast<unsigned>(Want);
}

MvccStore::MvccStore(const RelationSpec &Spec, unsigned NumBuckets) {
  AllCols = Spec.allColumns();
  std::vector<ColumnSet> Keys = Spec.minimalKeys();
  KeyCols = Keys.empty() ? AllCols : Keys.front();
  Buckets.reserve(NumBuckets);
  for (unsigned I = 0; I < NumBuckets; ++I)
    Buckets.push_back(std::make_unique<Bucket>());
}

MvccStore::~MvccStore() {
  // The relation is dying: no reader can hold a guard over our nodes
  // legitimately (stores must outlive every scope that reads them —
  // same contract as the relation itself). Free directly.
  for (std::unique_ptr<Bucket> &B : Buckets) {
    Chain *C = B->Head.load(std::memory_order_relaxed);
    while (C) {
      Version *V = C->Head.load(std::memory_order_relaxed);
      while (V) {
        Version *VN = V->Next.load(std::memory_order_relaxed);
        delete V;
        V = VN;
      }
      Chain *CN = C->Next.load(std::memory_order_relaxed);
      delete C;
      C = CN;
    }
  }
  Directory *D = Dirs.load(std::memory_order_relaxed);
  while (D) {
    for (std::unique_ptr<DirBucket> &DB : D->Buckets) {
      DirLink *L = DB->Head.load(std::memory_order_relaxed);
      while (L) {
        DirLink *LN = L->Next.load(std::memory_order_relaxed);
        delete L;
        L = LN;
      }
    }
    Directory *DN = D->Next.load(std::memory_order_relaxed);
    delete D;
    D = DN;
  }
}

MvccStore::Bucket &MvccStore::bucketFor(const Tuple &Key) const {
  return *Buckets[Key.hash() % Buckets.size()];
}

MvccStore::Chain *MvccStore::findChain(const Bucket &B,
                                       const Tuple &Key) const {
  for (Chain *C = B.Head.load(std::memory_order_acquire); C;
       C = C->Next.load(std::memory_order_acquire))
    if (C->Key == Key)
      return C;
  return nullptr;
}

MvccStore::Chain *MvccStore::findOrCreateChain(Bucket &B, const Tuple &Key) {
  if (Chain *C = findChain(B, Key))
    return C;
  Chain *C = new Chain;
  C->Key = Key;
  // Push at head: concurrent lock-free scans that started earlier miss
  // it, which is benign — a new chain only ever receives versions whose
  // Begin is above every extant snapshot (in-flight commit registry).
  C->Next.store(B.Head.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  B.Head.store(C, std::memory_order_release);
  // Link the new chain into every secondary directory. Reading the
  // registry while B.M is held is what makes ensureDirectory's
  // publish-then-backfill safe: if the backfill already walked this
  // bucket, its lock/unlock of B.M ordered the registry publish before
  // this load (so we see the directory and link here); if it has not
  // yet, it will find this chain during its walk. Either way the chain
  // lands in the directory exactly once (linkChainToDir dedups). The
  // guard spans the walk *and* the link insertions: a directory being
  // retired concurrently stays allocated until we exit, and any link we
  // add to it is freed by its epoch deleter.
  EpochDomain::Guard EG;
  for (Directory *D = Dirs.load(std::memory_order_acquire); D;
       D = D->Next.load(std::memory_order_acquire))
    linkChainToDir(*D, C);
  return C;
}

void MvccStore::linkChainToDir(Directory &D, Chain *C) {
  Tuple Sub = C->Key.project(D.Cols);
  DirBucket &DB = D.bucketFor(Sub);
  std::lock_guard<std::mutex> G(DB.M);
  for (DirLink *L = DB.Head.load(std::memory_order_relaxed); L;
       L = L->Next.load(std::memory_order_relaxed))
    if (L->C == C)
      return; // already linked (install raced the backfill)
  DirLink *L = new DirLink;
  L->SubKey = std::move(Sub);
  L->C = C;
  L->Next.store(DB.Head.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  DB.Head.store(L, std::memory_order_release);
}

void MvccStore::installInsert(const Tuple &Full, uint64_t Seq) {
  assert(Seq != 0);
  Tuple Key = Full.project(KeyCols);
  Bucket &B = bucketFor(Key);
  std::lock_guard<std::mutex> G(B.M);
  Chain *C = findOrCreateChain(B, Key);
  assert([&] {
    Version *H = C->Head.load(std::memory_order_relaxed);
    return !H || H->End.load(std::memory_order_relaxed) != 0;
  }() && "installing over a live version (put-if-absent should have lost)");
  Version *V = new Version;
  V->Full = Full.project(AllCols);
  V->Begin = Seq;
  V->Next.store(C->Head.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  C->Head.store(V, std::memory_order_release);
  Installed.fetch_add(1, std::memory_order_relaxed);
  Retired.fetch_add(pruneChainLocked(B, C, snapshotWatermark()),
                    std::memory_order_relaxed);
}

void MvccStore::installRemove(const Tuple &Full, uint64_t Seq) {
  assert(Seq != 0);
  Tuple Key = Full.project(KeyCols);
  Bucket &B = bucketFor(Key);
  std::lock_guard<std::mutex> G(B.M);
  Chain *C = findChain(B, Key);
  if (!C) {
    // Idempotent-replay tolerance (see header). Counted: outside
    // recovery the commit protocol (2PL + put-if-absent) makes a
    // remove of an absent or already-ended version impossible, so the
    // stress oracle asserts removeNoops() stays zero.
    RemoveNoops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Version *H = C->Head.load(std::memory_order_relaxed);
  if (!H || H->End.load(std::memory_order_relaxed) != 0) {
    RemoveNoops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  H->End.store(Seq, std::memory_order_release);
  Retired.fetch_add(pruneChainLocked(B, C, snapshotWatermark()),
                    std::memory_order_relaxed);
}

MvccStore::Directory *MvccStore::directoryFor(ColumnSet QueryDom) const {
  Directory *Best = nullptr;
  for (Directory *D = Dirs.load(std::memory_order_acquire); D;
       D = D->Next.load(std::memory_order_acquire)) {
    if (!QueryDom.containsAll(D->Cols) ||
        !D->Ready.load(std::memory_order_acquire))
      continue;
    if (!Best || D->Cols.size() > Best->Cols.size())
      Best = D; // most bound identity columns = fewest chains per key
  }
  return Best;
}

uint32_t
MvccStore::snapshotQuery(const Tuple &S, uint64_t Snap,
                         function_ref<void(const Tuple &)> Visit,
                         function_ref<bool(const Tuple &)> SkipKey,
                         SnapshotQueryStats *Stats) const {
  assert(EpochDomain::global().inGuard() &&
         "snapshot reads walk epoch-reclaimed chains; pin a guard first");
  uint32_t N = 0;
  SnapshotQueryStats Local;
  auto VisitChain = [&](const Chain *C) {
    ++Local.ChainsVisited;
    if (SkipKey && SkipKey(C->Key))
      return;
    for (Version *V = C->Head.load(std::memory_order_acquire); V;
         V = V->Next.load(std::memory_order_acquire)) {
      if (V->Begin > Snap)
        continue; // newer than the snapshot; an older version may show
      uint64_t End = V->End.load(std::memory_order_acquire);
      if (End == 0 || End > Snap) {
        if (V->Full.extends(S)) {
          ++N;
          if (Visit)
            Visit(V->Full);
        }
      }
      // Versions below this one began (and ended) earlier still: once
      // one version with Begin ≤ Snap has been judged, older ones are
      // all terminated at or before its Begin — invisible.
      return;
    }
  };
  if (S.domain().containsAll(KeyCols)) {
    // Point read: the primary directory resolves the one chain.
    Tuple Key = S.project(KeyCols);
    const Bucket &B = bucketFor(Key);
    for (Chain *C = B.Head.load(std::memory_order_acquire); C;
         C = C->Next.load(std::memory_order_acquire)) {
      ++Local.LinksScanned;
      if (C->Key == Key) {
        VisitChain(C);
        break;
      }
    }
  } else if (const Directory *D = directoryFor(S.domain())) {
    // Directory-served: only the chains extending the projected
    // sub-key, O(matching chains) + the bucket list walked.
    Local.DirectoryServed = true;
    Tuple Sub = S.project(D->Cols);
    const DirBucket &DB = D->bucketFor(Sub);
    for (DirLink *L = DB.Head.load(std::memory_order_acquire); L;
         L = L->Next.load(std::memory_order_acquire)) {
      ++Local.LinksScanned;
      if (L->SubKey == Sub)
        VisitChain(L->C);
    }
  } else {
    // No access path: the documented whole-store fallback. Callers
    // (Transaction::query) use the FullScan report to request a
    // directory for next time.
    Local.FullScan = true;
    for (const std::unique_ptr<Bucket> &B : Buckets)
      for (Chain *C = B->Head.load(std::memory_order_acquire); C;
           C = C->Next.load(std::memory_order_acquire)) {
        ++Local.LinksScanned;
        VisitChain(C);
      }
  }
  if (Stats)
    *Stats = Local;
  return N;
}

bool MvccStore::ensureDirectory(ColumnSet QueryCols) {
  ColumnSet Cols = QueryCols & KeyCols;
  if (Cols.size() == 0 || Cols == KeyCols)
    return false; // nothing to index / the primary directory serves it
  {
    // Optimistic pre-scan, guarded: a concurrent retire may be freeing
    // entries of this list after the grace period.
    EpochDomain::Guard EG;
    for (Directory *D = Dirs.load(std::memory_order_acquire); D;
         D = D->Next.load(std::memory_order_acquire))
      if (D->Cols == Cols)
        return true;
  }
  Directory *D;
  {
    std::lock_guard<std::mutex> G(DirsM);
    for (Directory *E = Dirs.load(std::memory_order_relaxed); E;
         E = E->Next.load(std::memory_order_relaxed))
      if (E->Cols == Cols)
        return true; // creation raced; the winner backfills
    D = new Directory;
    D->Cols = Cols;
    D->Buckets.reserve(Buckets.size());
    for (size_t I = 0; I < Buckets.size(); ++I)
      D->Buckets.push_back(std::make_unique<DirBucket>());
    // Publish before backfilling: installers read the registry under
    // their primary bucket mutex, so every chain created after the
    // backfill passes its bucket is self-linked (see findOrCreateChain).
    D->Next.store(Dirs.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    Dirs.store(D, std::memory_order_release);
  }
  uint64_t Linked = 0;
  for (std::unique_ptr<Bucket> &B : Buckets) {
    std::lock_guard<std::mutex> G(B->M);
    for (Chain *C = B->Head.load(std::memory_order_relaxed); C;
         C = C->Next.load(std::memory_order_relaxed)) {
      linkChainToDir(*D, C);
      ++Linked;
    }
  }
  D->Ready.store(true, std::memory_order_release);
  if (obs::TraceRing *R = Trace.load(std::memory_order_acquire))
    R->emit(obs::EventKind::DirectoryBackfill, Cols.bits(),
            D->Buckets.size(), Linked);
  return true;
}

size_t MvccStore::directoryCount() const {
  EpochDomain::Guard EG;
  size_t N = 0;
  for (Directory *D = Dirs.load(std::memory_order_acquire); D;
       D = D->Next.load(std::memory_order_acquire))
    ++N;
  return N;
}

size_t
MvccStore::retireStaleDirectories(function_ref<bool(ColumnSet)> StillServed) {
  EpochDomain &ED = EpochDomain::global();
  size_t N = 0;
  std::lock_guard<std::mutex> G(DirsM);
  // Predecessor-pointer removal under DirsM (the only writer of the
  // registry list, so Next pointers of survivors are stable here).
  std::atomic<Directory *> *Link = &Dirs;
  Directory *D = Link->load(std::memory_order_relaxed);
  while (D) {
    Directory *Next = D->Next.load(std::memory_order_relaxed);
    if (!D->Ready.load(std::memory_order_acquire) || StillServed(D->Cols)) {
      Link = &D->Next;
      D = Next;
      continue;
    }
    // Unpublish (seq_cst, per the epoch contract), then retire with a
    // deleter that frees the links too: an installer whose guarded
    // registry walk began before this store may still add a link to the
    // retiring directory, and that link dies with the directory.
    Link->store(Next, std::memory_order_seq_cst);
    uint64_t Links = 0;
    for (const std::unique_ptr<DirBucket> &DB : D->Buckets)
      for (DirLink *L = DB->Head.load(std::memory_order_relaxed); L;
           L = L->Next.load(std::memory_order_relaxed))
        ++Links;
    if (obs::TraceRing *R = Trace.load(std::memory_order_acquire))
      R->emit(obs::EventKind::DirectoryRetire, D->Cols.bits(), Links);
    ED.retire(D, [](void *P) {
      auto *Dir = static_cast<Directory *>(P);
      for (std::unique_ptr<DirBucket> &DB : Dir->Buckets) {
        DirLink *L = DB->Head.load(std::memory_order_relaxed);
        while (L) {
          DirLink *LN = L->Next.load(std::memory_order_relaxed);
          delete L;
          L = LN;
        }
      }
      delete Dir;
    });
    DirsRetired.fetch_add(1, std::memory_order_relaxed);
    ++N;
    D = Next;
  }
  return N;
}

size_t MvccStore::maxBucketChainLength() const {
  EpochDomain::Guard G;
  size_t Max = 0;
  for (const std::unique_ptr<Bucket> &B : Buckets) {
    size_t Len = 0;
    for (Chain *C = B->Head.load(std::memory_order_acquire); C;
         C = C->Next.load(std::memory_order_acquire))
      ++Len;
    Max = Len > Max ? Len : Max;
  }
  return Max;
}

size_t MvccStore::pruneChainLocked(Bucket &B, Chain *C, uint64_t Watermark) {
  EpochDomain &D = EpochDomain::global();
  size_t Freed = 0;
  // Unlink every version with 0 < End ≤ Watermark. Predecessor-pointer
  // surgery under the bucket mutex; readers mid-walk keep following the
  // unlinked node's intact Next until their guard exits (RCU removal).
  std::atomic<Version *> *Link = &C->Head;
  Version *V = Link->load(std::memory_order_relaxed);
  while (V) {
    uint64_t End = V->End.load(std::memory_order_relaxed);
    Version *Next = V->Next.load(std::memory_order_relaxed);
    if (End != 0 && End <= Watermark) {
      Link->store(Next, std::memory_order_release);
      D.retireObject(V);
      ++Freed;
    } else {
      Link = &V->Next;
    }
    V = Next;
  }
  if (!C->Head.load(std::memory_order_relaxed)) {
    // Chain emptied: unlink it from the bucket too.
    std::atomic<Chain *> *CLink = &B.Head;
    for (Chain *Cur = CLink->load(std::memory_order_relaxed); Cur;
         Cur = CLink->load(std::memory_order_relaxed)) {
      if (Cur == C) {
        CLink->store(C->Next.load(std::memory_order_relaxed),
                     std::memory_order_release);
        // Drop the chain's directory links first. Reading the registry
        // here (still under B.M) observes every directory any earlier
        // linker under this mutex saw — read-read coherence through
        // the mutex ordering — so no stale link can outlive the chain.
        // Guarded: a directory retired concurrently must stay allocated
        // across this walk (its deleter then frees any link we leave).
        EpochDomain::Guard EG;
        for (Directory *Dir = Dirs.load(std::memory_order_acquire); Dir;
             Dir = Dir->Next.load(std::memory_order_acquire)) {
          DirBucket &DB = Dir->bucketFor(C->Key.project(Dir->Cols));
          std::lock_guard<std::mutex> DG(DB.M);
          std::atomic<DirLink *> *LLink = &DB.Head;
          for (DirLink *L = LLink->load(std::memory_order_relaxed); L;
               L = LLink->load(std::memory_order_relaxed)) {
            if (L->C == C) {
              LLink->store(L->Next.load(std::memory_order_relaxed),
                           std::memory_order_release);
              D.retireObject(L);
              break;
            }
            LLink = &L->Next;
          }
        }
        D.retireObject(C);
        break;
      }
      CLink = &Cur->Next;
    }
  }
  return Freed;
}

size_t MvccStore::prune(uint64_t Watermark) {
  size_t Freed = 0;
  for (std::unique_ptr<Bucket> &B : Buckets) {
    std::lock_guard<std::mutex> G(B->M);
    // Snapshot the chain list first: pruneChainLocked may unlink the
    // chain under our feet.
    std::vector<Chain *> Chains;
    for (Chain *C = B->Head.load(std::memory_order_relaxed); C;
         C = C->Next.load(std::memory_order_relaxed))
      Chains.push_back(C);
    for (Chain *C : Chains)
      Freed += pruneChainLocked(*B, C, Watermark);
  }
  Retired.fetch_add(Freed, std::memory_order_relaxed);
  EpochDomain::global().tryAdvance();
  return Freed;
}
