//===- rel/Tuple.h - Tuples over columns ------------------------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tuples (paper §2): a tuple t maps a set of columns to values. The paper
/// writes `dom t` for its columns, `t ⊇ s` when t extends s, and `t ∼ s`
/// when the tuples agree on all common columns. Tuples are stored as a
/// vector of (column, value) pairs sorted by column id; this gives cheap
/// projection, union, lexicographic comparison (the lock order of §5.1),
/// and hashing (lock striping, §4.4).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_REL_TUPLE_H
#define CRS_REL_TUPLE_H

#include "rel/Column.h"
#include "rel/Value.h"

#include <utility>
#include <vector>

namespace crs {

class ColumnCatalog;

/// An immutable-ish map from columns to values, ordered by column id.
class Tuple {
public:
  Tuple() = default;

  /// Builds a tuple from (column, value) pairs; duplicates are rejected
  /// by assertion.
  static Tuple of(std::vector<std::pair<ColumnId, Value>> Entries);

  /// The columns of the tuple (the paper's `dom t`).
  ColumnSet domain() const { return Dom; }

  bool empty() const { return Entries.empty(); }
  unsigned size() const { return static_cast<unsigned>(Entries.size()); }

  bool hasColumn(ColumnId C) const { return Dom.contains(C); }

  /// Value of column \p C; asserts the column is present.
  const Value &get(ColumnId C) const;

  /// Adds or replaces the binding of column \p C.
  void set(ColumnId C, Value V);

  /// Rebinds the whole tuple in place to columns \p Cols (strictly
  /// ascending — a plan's bind-slot layout) with values \p Vals. When
  /// the tuple already has exactly this domain, the values are
  /// overwritten with no allocation; this is the prepared-operation hot
  /// path, where a per-thread scratch tuple is rebound with the same
  /// layout on every execution.
  void rebind(const ColumnId *Cols, const Value *Vals, size_t N);

  /// Projection onto \p Cols (the paper's π_C t); columns of Cols missing
  /// from the tuple are simply absent in the result.
  Tuple project(ColumnSet Cols) const;

  /// True if this tuple extends \p S: equal to S on all of S's columns
  /// (the paper's t ⊇ s). Requires dom S ⊆ dom t to return true.
  bool extends(const Tuple &S) const;

  /// True if the tuples agree on all common columns (the paper's t ∼ s).
  bool matches(const Tuple &S) const;

  /// Union of two tuples with disjoint or agreeing domains; conflicting
  /// bindings are rejected by assertion.
  Tuple unionWith(const Tuple &Other) const;

  /// Natural-join compatibility plus merge: if the tuples agree on common
  /// columns, sets \p Out to their union and returns true.
  bool tryJoin(const Tuple &Other, Tuple &Out) const;

  /// In-place assignment forms of unionWith/project, merging into this
  /// tuple's existing storage (no allocation once the capacity is warm —
  /// the executor's recycled state arena). Neither operand may alias
  /// *this.
  /// @{
  /// *this = A ∪ B. Requires A.matches(B); common columns take A's value.
  void assignUnion(const Tuple &A, const Tuple &B);
  /// *this = π_C(A).
  void assignProject(const Tuple &A, ColumnSet C);
  /// @}

  /// Lexicographic three-way comparison by (column, value) sequence.
  /// Within one decomposition node all instances share a domain, so this
  /// induces the per-node lexicographic order the lock order (§5.1) needs.
  int compare(const Tuple &Other) const;

  bool operator==(const Tuple &Other) const {
    return Dom == Other.Dom && Entries == Other.Entries;
  }
  bool operator!=(const Tuple &Other) const { return !(*this == Other); }
  bool operator<(const Tuple &Other) const { return compare(Other) < 0; }

  /// Deterministic hash over the (column, value) sequence.
  uint64_t hash() const;

  /// Iterates entries in column-id order.
  const std::vector<std::pair<ColumnId, Value>> &entries() const {
    return Entries;
  }

  /// Renders as `<name: value, ...>` using \p Catalog for names.
  std::string str(const ColumnCatalog &Catalog) const;

private:
  ColumnSet Dom;
  std::vector<std::pair<ColumnId, Value>> Entries; // sorted by ColumnId
};

/// Hash functor for containers keyed by tuples.
struct TupleHash {
  uint64_t operator()(const Tuple &T) const { return T.hash(); }
};

/// Less-than functor for sorted containers keyed by tuples.
struct TupleLess {
  bool operator()(const Tuple &A, const Tuple &B) const {
    return A.compare(B) < 0;
  }
};

} // namespace crs

#endif // CRS_REL_TUPLE_H
