//===- rel/RelationSpec.h - Relational specifications -----------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Relational specifications (paper §2): a set of column names C together
/// with a set of functional dependencies Δ. The specification is the
/// contract between the client and the synthesized representation. This
/// file also implements the standard FD theory (attribute-set closure,
/// key tests) that adequacy checking (§4.1) and planning (§5) rely on.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_REL_RELATIONSPEC_H
#define CRS_REL_RELATIONSPEC_H

#include "rel/Column.h"

#include <string>
#include <vector>

namespace crs {

/// One functional dependency `Lhs → Rhs`.
struct FunctionalDependency {
  ColumnSet Lhs;
  ColumnSet Rhs;
};

/// Columns + functional dependencies. Immutable after construction.
class RelationSpec {
public:
  /// Builds a spec; \p Fds use names resolved against \p Columns.
  RelationSpec(std::vector<std::string> Columns,
               std::vector<std::pair<std::vector<std::string>,
                                     std::vector<std::string>>>
                   Fds);

  const ColumnCatalog &catalog() const { return Catalog; }
  ColumnSet allColumns() const { return Catalog.allColumns(); }
  const std::vector<FunctionalDependency> &fds() const { return Fds; }

  /// Attribute-set closure of \p S under the spec's FDs (textbook
  /// fixpoint algorithm).
  ColumnSet closure(ColumnSet S) const;

  /// True if \p S functionally determines \p Target.
  bool determines(ColumnSet S, ColumnSet Target) const;

  /// True if \p S is a key: it determines every column of the relation
  /// (the paper's requirement on `remove` keys).
  bool isKey(ColumnSet S) const;

  /// All minimal keys, by exhaustive subset search (specs are tiny).
  std::vector<ColumnSet> minimalKeys() const;

  /// Convenience: id/set construction by name.
  ColumnId col(const std::string &Name) const { return Catalog.id(Name); }
  ColumnSet cols(std::initializer_list<const char *> Names) const {
    return Catalog.setOf(Names);
  }

  /// Human-readable description of the spec.
  std::string str() const;

private:
  ColumnCatalog Catalog;
  std::vector<FunctionalDependency> Fds;
};

} // namespace crs

#endif // CRS_REL_RELATIONSPEC_H
