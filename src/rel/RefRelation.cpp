//===- rel/RefRelation.cpp - Reference relation semantics --------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "rel/RefRelation.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace crs;

bool RefRelation::insert(const Tuple &S, const Tuple &T) {
  assert(!S.domain().intersects(T.domain()) &&
         "insert requires s and t to have disjoint domains");
  for (const Tuple &U : Tuples)
    if (U.extends(S))
      return false;
  Tuple NewTuple = S.unionWith(T);
  assert(NewTuple.domain() == Spec->allColumns() &&
         "inserted tuple must be a valuation for all columns");
  Tuples.push_back(std::move(NewTuple));
  return true;
}

unsigned RefRelation::remove(const Tuple &S) {
  auto NewEnd = std::remove_if(Tuples.begin(), Tuples.end(),
                               [&](const Tuple &T) { return T.extends(S); });
  unsigned Removed = static_cast<unsigned>(Tuples.end() - NewEnd);
  Tuples.erase(NewEnd, Tuples.end());
  return Removed;
}

std::vector<Tuple> RefRelation::query(const Tuple &S, ColumnSet C) const {
  std::vector<Tuple> Out;
  for (const Tuple &T : Tuples)
    if (T.extends(S))
      Out.push_back(T.project(C));
  std::sort(Out.begin(), Out.end(), TupleLess());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<Tuple> RefRelation::allTuples() const {
  std::vector<Tuple> Out = Tuples;
  std::sort(Out.begin(), Out.end(), TupleLess());
  return Out;
}

bool RefRelation::satisfiesFds() const {
  for (const auto &Fd : Spec->fds())
    for (size_t I = 0; I < Tuples.size(); ++I)
      for (size_t J = I + 1; J < Tuples.size(); ++J) {
        const Tuple A = Tuples[I].project(Fd.Lhs);
        if (Tuples[J].project(Fd.Lhs) != A)
          continue;
        if (Tuples[J].project(Fd.Rhs) != Tuples[I].project(Fd.Rhs))
          return false;
      }
  return true;
}
