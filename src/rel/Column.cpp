//===- rel/Column.cpp - Columns and column sets ------------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "rel/Column.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace crs;

std::vector<ColumnId> ColumnSet::members() const {
  std::vector<ColumnId> Out;
  forEach([&](ColumnId C) { Out.push_back(C); });
  return Out;
}

ColumnId ColumnCatalog::add(std::string Name) {
  assert(!hasColumn(Name) && "duplicate column name");
  assert(Names.size() < 64 && "at most 64 columns per specification");
  Names.push_back(std::move(Name));
  return static_cast<ColumnId>(Names.size() - 1);
}

ColumnId ColumnCatalog::id(const std::string &Name) const {
  auto It = std::find(Names.begin(), Names.end(), Name);
  assert(It != Names.end() && "unknown column name");
  return static_cast<ColumnId>(It - Names.begin());
}

bool ColumnCatalog::hasColumn(const std::string &Name) const {
  return std::find(Names.begin(), Names.end(), Name) != Names.end();
}

const std::string &ColumnCatalog::name(ColumnId C) const {
  assert(C < Names.size() && "column id out of range");
  return Names[C];
}

ColumnSet ColumnCatalog::allColumns() const {
  if (Names.empty())
    return ColumnSet::empty();
  if (Names.size() >= 64)
    return ColumnSet::fromBits(~0ULL);
  return ColumnSet::fromBits((1ULL << Names.size()) - 1);
}

ColumnSet ColumnCatalog::setOf(std::initializer_list<const char *> Ns) const {
  ColumnSet S;
  for (const char *N : Ns)
    S |= ColumnSet::of(id(N));
  return S;
}

std::string ColumnCatalog::str(ColumnSet S) const {
  std::string Out = "{";
  bool First = true;
  S.forEach([&](ColumnId C) {
    if (!First)
      Out += ", ";
    Out += name(C);
    First = false;
  });
  return Out + "}";
}
