//===- rel/Value.h - Relation values ----------------------------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Relation values (paper §2): an untyped universe V including the
/// integers. We support 64-bit integers and interned strings; both are
/// word-sized, totally ordered, and hashable, which is what the container
/// substrate and lock striping (§4.4) require of values.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_REL_VALUE_H
#define CRS_REL_VALUE_H

#include "support/Hashing.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace crs {

/// A single relation value: either a 64-bit integer or an interned string.
/// Values of different kinds are ordered integer-first (an arbitrary but
/// total order, needed for sorted containers and the lexicographic lock
/// order of §5.1).
class Value {
public:
  enum class Kind : uint8_t { Int, String };

  /// Default-constructs the integer 0.
  Value() : TheKind(Kind::Int), IntVal(0) {}

  static Value ofInt(int64_t V) {
    Value R;
    R.TheKind = Kind::Int;
    R.IntVal = V;
    return R;
  }

  /// Interns \p S in the process-global interner and wraps its id.
  static Value ofString(std::string_view S);

  Kind kind() const { return TheKind; }
  bool isInt() const { return TheKind == Kind::Int; }
  bool isString() const { return TheKind == Kind::String; }

  int64_t asInt() const;
  std::string_view asString() const;

  /// Three-way comparison defining the total order on values.
  int compare(const Value &Other) const;

  bool operator==(const Value &Other) const {
    return TheKind == Other.TheKind && IntVal == Other.IntVal;
  }
  bool operator!=(const Value &Other) const { return !(*this == Other); }
  bool operator<(const Value &Other) const { return compare(Other) < 0; }

  /// Deterministic hash, stable across runs (used for lock striping).
  uint64_t hash() const {
    return mix64(static_cast<uint64_t>(IntVal) ^
                 (static_cast<uint64_t>(TheKind) << 62));
  }

  /// Human-readable rendering (strings are quoted).
  std::string str() const;

private:
  Kind TheKind;
  int64_t IntVal; // integer value, or interned string id
};

} // namespace crs

#endif // CRS_REL_VALUE_H
