//===- rel/Column.h - Columns and column sets -------------------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column names and sets of columns. A relational specification (paper §2)
/// is a set of column names plus functional dependencies. Columns are
/// interned per-specification into dense ids so ColumnSet can be a bitset;
/// decompositions, lock placements, and the planner all manipulate column
/// sets heavily.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_REL_COLUMN_H
#define CRS_REL_COLUMN_H

#include <cstdint>
#include <string>
#include <vector>

namespace crs {

/// Dense per-specification column identifier.
using ColumnId = uint32_t;

/// A set of columns, represented as a 64-bit mask (specifications are
/// limited to 64 columns, which is far beyond any example in the paper).
class ColumnSet {
  uint64_t Bits = 0;

  explicit ColumnSet(uint64_t B) : Bits(B) {}

public:
  ColumnSet() = default;

  static ColumnSet empty() { return ColumnSet(); }
  static ColumnSet of(ColumnId C) { return ColumnSet(1ULL << C); }
  static ColumnSet fromBits(uint64_t B) { return ColumnSet(B); }

  uint64_t bits() const { return Bits; }
  bool isEmpty() const { return Bits == 0; }
  bool contains(ColumnId C) const { return (Bits >> C) & 1; }
  bool containsAll(ColumnSet S) const { return (Bits & S.Bits) == S.Bits; }
  bool intersects(ColumnSet S) const { return (Bits & S.Bits) != 0; }
  unsigned size() const { return __builtin_popcountll(Bits); }

  ColumnSet operator|(ColumnSet S) const { return ColumnSet(Bits | S.Bits); }
  ColumnSet operator&(ColumnSet S) const { return ColumnSet(Bits & S.Bits); }
  /// Set difference.
  ColumnSet operator-(ColumnSet S) const { return ColumnSet(Bits & ~S.Bits); }
  ColumnSet &operator|=(ColumnSet S) {
    Bits |= S.Bits;
    return *this;
  }
  bool operator==(ColumnSet S) const { return Bits == S.Bits; }
  bool operator!=(ColumnSet S) const { return Bits != S.Bits; }

  /// Iterates member column ids in increasing order.
  template <typename Fn> void forEach(Fn F) const {
    uint64_t B = Bits;
    while (B) {
      ColumnId C = static_cast<ColumnId>(__builtin_ctzll(B));
      F(C);
      B &= B - 1;
    }
  }

  /// Members as a sorted vector.
  std::vector<ColumnId> members() const;
};

/// Maps column names to dense ids for one relational specification.
class ColumnCatalog {
public:
  /// Adds a column; returns its id. Duplicate names are rejected by
  /// assertion (specifications are small, static objects).
  ColumnId add(std::string Name);

  /// Id for an existing name; asserts the name exists.
  ColumnId id(const std::string &Name) const;
  /// Whether \p Name is a known column.
  bool hasColumn(const std::string &Name) const;

  const std::string &name(ColumnId C) const;
  unsigned size() const { return static_cast<unsigned>(Names.size()); }

  /// The set of all columns in the catalog.
  ColumnSet allColumns() const;

  /// Builds a set from names; asserts all names exist.
  ColumnSet setOf(std::initializer_list<const char *> Names) const;

  /// Renders a column set as "{a, b, c}".
  std::string str(ColumnSet S) const;

private:
  std::vector<std::string> Names;
};

} // namespace crs

#endif // CRS_REL_COLUMN_H
