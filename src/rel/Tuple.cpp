//===- rel/Tuple.cpp - Tuples over columns -----------------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "rel/Tuple.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace crs;

Tuple Tuple::of(std::vector<std::pair<ColumnId, Value>> Es) {
  std::sort(Es.begin(), Es.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  Tuple T;
  for (auto &E : Es) {
    assert(!T.Dom.contains(E.first) && "duplicate column in tuple");
    T.Dom |= ColumnSet::of(E.first);
  }
  T.Entries = std::move(Es);
  return T;
}

const Value &Tuple::get(ColumnId C) const {
  assert(hasColumn(C) && "tuple lacks requested column");
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), C,
      [](const auto &E, ColumnId Col) { return E.first < Col; });
  return It->second;
}

void Tuple::set(ColumnId C, Value V) {
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), C,
      [](const auto &E, ColumnId Col) { return E.first < Col; });
  if (It != Entries.end() && It->first == C) {
    It->second = V;
    return;
  }
  Entries.insert(It, {C, V});
  Dom |= ColumnSet::of(C);
}

void Tuple::rebind(const ColumnId *Cols, const Value *Vals, size_t N) {
  if (Entries.size() == N) {
    bool SameLayout = true;
    for (size_t I = 0; I < N; ++I)
      if (Entries[I].first != Cols[I]) {
        SameLayout = false;
        break;
      }
    if (SameLayout) { // warm path: overwrite values in place
      for (size_t I = 0; I < N; ++I)
        Entries[I].second = Vals[I];
      return;
    }
  }
  Entries.clear();
  Dom = ColumnSet::empty();
  for (size_t I = 0; I < N; ++I) {
    assert((I == 0 || Cols[I - 1] < Cols[I]) &&
           "bind-slot layout must be strictly ascending");
    Entries.push_back({Cols[I], Vals[I]});
    Dom |= ColumnSet::of(Cols[I]);
  }
}

Tuple Tuple::project(ColumnSet Cols) const {
  Tuple Out;
  for (const auto &[C, V] : Entries) {
    if (!Cols.contains(C))
      continue;
    Out.Entries.push_back({C, V});
    Out.Dom |= ColumnSet::of(C);
  }
  return Out;
}

bool Tuple::extends(const Tuple &S) const {
  if (!Dom.containsAll(S.domain()))
    return false;
  for (const auto &[C, V] : S.Entries)
    if (get(C) != V)
      return false;
  return true;
}

bool Tuple::matches(const Tuple &S) const {
  ColumnSet Common = Dom & S.domain();
  if (Common.isEmpty())
    return true;
  bool Match = true;
  Common.forEach([&](ColumnId C) {
    if (get(C) != S.get(C))
      Match = false;
  });
  return Match;
}

Tuple Tuple::unionWith(const Tuple &Other) const {
  assert(matches(Other) && "union of conflicting tuples");
  Tuple Out = *this;
  for (const auto &[C, V] : Other.Entries)
    if (!Out.hasColumn(C))
      Out.set(C, V);
  return Out;
}

bool Tuple::tryJoin(const Tuple &Other, Tuple &Out) const {
  if (!matches(Other))
    return false;
  Out = unionWith(Other);
  return true;
}

void Tuple::assignUnion(const Tuple &A, const Tuple &B) {
  assert(this != &A && this != &B && "assignUnion operands must not alias");
  assert(A.matches(B) && "union of conflicting tuples");
  Entries.clear();
  auto IA = A.Entries.begin(), EA = A.Entries.end();
  auto IB = B.Entries.begin(), EB = B.Entries.end();
  while (IA != EA || IB != EB) {
    if (IB == EB || (IA != EA && IA->first <= IB->first)) {
      if (IB != EB && IA->first == IB->first)
        ++IB; // agreeing common column: take A's value
      Entries.push_back(*IA++);
    } else {
      Entries.push_back(*IB++);
    }
  }
  Dom = A.Dom | B.Dom;
}

void Tuple::assignProject(const Tuple &A, ColumnSet C) {
  assert(this != &A && "assignProject operand must not alias");
  Entries.clear();
  Dom = ColumnSet::empty();
  for (const auto &[Col, V] : A.Entries) {
    if (!C.contains(Col))
      continue;
    Entries.push_back({Col, V});
    Dom |= ColumnSet::of(Col);
  }
}

int Tuple::compare(const Tuple &Other) const {
  size_t N = std::min(Entries.size(), Other.Entries.size());
  for (size_t I = 0; I < N; ++I) {
    if (Entries[I].first != Other.Entries[I].first)
      return Entries[I].first < Other.Entries[I].first ? -1 : 1;
    int C = Entries[I].second.compare(Other.Entries[I].second);
    if (C != 0)
      return C;
  }
  if (Entries.size() != Other.Entries.size())
    return Entries.size() < Other.Entries.size() ? -1 : 1;
  return 0;
}

uint64_t Tuple::hash() const {
  uint64_t H = 0x243f6a8885a308d3ULL;
  for (const auto &[C, V] : Entries) {
    H = hashCombine(H, C);
    H = hashCombine(H, V.hash());
  }
  return H;
}

std::string Tuple::str(const ColumnCatalog &Catalog) const {
  std::string Out = "<";
  bool First = true;
  for (const auto &[C, V] : Entries) {
    if (!First)
      Out += ", ";
    Out += Catalog.name(C) + ": " + V.str();
    First = false;
  }
  return Out + ">";
}
