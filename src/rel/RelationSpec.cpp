//===- rel/RelationSpec.cpp - Relational specifications ----------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "rel/RelationSpec.h"

#include "support/Compiler.h"

using namespace crs;

RelationSpec::RelationSpec(
    std::vector<std::string> Columns,
    std::vector<std::pair<std::vector<std::string>, std::vector<std::string>>>
        FdNames) {
  for (auto &Name : Columns)
    Catalog.add(std::move(Name));
  for (auto &[LhsNames, RhsNames] : FdNames) {
    FunctionalDependency Fd;
    for (const auto &N : LhsNames)
      Fd.Lhs |= ColumnSet::of(Catalog.id(N));
    for (const auto &N : RhsNames)
      Fd.Rhs |= ColumnSet::of(Catalog.id(N));
    Fds.push_back(Fd);
  }
}

ColumnSet RelationSpec::closure(ColumnSet S) const {
  ColumnSet Result = S;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &Fd : Fds) {
      if (!Result.containsAll(Fd.Lhs) || Result.containsAll(Fd.Rhs))
        continue;
      Result |= Fd.Rhs;
      Changed = true;
    }
  }
  return Result;
}

bool RelationSpec::determines(ColumnSet S, ColumnSet Target) const {
  return closure(S).containsAll(Target);
}

bool RelationSpec::isKey(ColumnSet S) const {
  return determines(S, allColumns());
}

std::vector<ColumnSet> RelationSpec::minimalKeys() const {
  std::vector<ColumnSet> Keys;
  uint64_t All = allColumns().bits();
  // Enumerate subsets in increasing popcount by scanning all masks and
  // filtering: catalogs are at most a handful of columns in practice.
  assert(Catalog.size() <= 20 && "minimalKeys is exponential; spec too wide");
  for (uint64_t Mask = 1; Mask <= All; ++Mask) {
    ColumnSet S = ColumnSet::fromBits(Mask & All);
    if (S.bits() != Mask)
      continue;
    if (!isKey(S))
      continue;
    bool Minimal = true;
    S.forEach([&](ColumnId C) {
      if (isKey(S - ColumnSet::of(C)))
        Minimal = false;
    });
    if (!Minimal)
      continue;
    // Skip supersets of already-found keys (they cannot be minimal).
    bool Superset = false;
    for (ColumnSet K : Keys)
      if (S.containsAll(K))
        Superset = true;
    if (!Superset)
      Keys.push_back(S);
  }
  return Keys;
}

std::string RelationSpec::str() const {
  std::string Out = "columns " + Catalog.str(allColumns());
  for (const auto &Fd : Fds)
    Out += ", " + Catalog.str(Fd.Lhs) + " -> " + Catalog.str(Fd.Rhs);
  return Out;
}
