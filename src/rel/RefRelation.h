//===- rel/RefRelation.h - Reference relation semantics ---------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable reference semantics of the four relational operations of
/// paper §2 (empty / insert / remove / query), written directly against a
/// set of tuples. This is the oracle the test suite compares synthesized
/// representations against; it is intentionally simple and NOT thread-safe.
///
///   empty ()      = ref ∅
///   remove r s    = r ← !r \ {t ∈ !r | t ⊇ s}
///   query r s C   = π_C {t ∈ !r | t ⊇ s}
///   insert r s t  = if ¬∃u. u ∈ !r ∧ u ⊇ s then r ← !r ∪ {s ∪ t}
///
//===----------------------------------------------------------------------===//

#ifndef CRS_REL_REFRELATION_H
#define CRS_REL_REFRELATION_H

#include "rel/RelationSpec.h"
#include "rel/Tuple.h"

#include <vector>

namespace crs {

/// A relation as a plain set of tuples, with the paper's operation
/// semantics. Used as the specification-level oracle in tests.
class RefRelation {
public:
  explicit RefRelation(const RelationSpec &Spec) : Spec(&Spec) {}

  /// insert r s t — inserts s ∪ t unless some existing tuple extends s.
  /// Returns true if the tuple was inserted (the compare-and-set result
  /// clients use to enforce functional dependencies, §2).
  bool insert(const Tuple &S, const Tuple &T);

  /// remove r s — removes all tuples extending s; returns the number
  /// removed.
  unsigned remove(const Tuple &S);

  /// query r s C — projections onto C of all tuples extending s.
  /// The result is deduplicated (relations are sets).
  std::vector<Tuple> query(const Tuple &S, ColumnSet C) const;

  /// All tuples (a copy, sorted, for comparisons in tests).
  std::vector<Tuple> allTuples() const;

  size_t size() const { return Tuples.size(); }
  bool empty() const { return Tuples.empty(); }

  /// Checks every FD of the spec against the current contents.
  bool satisfiesFds() const;

  const RelationSpec &spec() const { return *Spec; }

private:
  const RelationSpec *Spec;
  std::vector<Tuple> Tuples; // unordered; small oracle sizes only
};

} // namespace crs

#endif // CRS_REL_REFRELATION_H
