//===- rel/Value.cpp - Relation values --------------------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "rel/Value.h"

#include "support/Compiler.h"
#include "support/Interner.h"

using namespace crs;

Value Value::ofString(std::string_view S) {
  Value R;
  R.TheKind = Kind::String;
  R.IntVal = StringInterner::global().intern(S);
  return R;
}

int64_t Value::asInt() const {
  assert(isInt() && "asInt on a string value");
  return IntVal;
}

std::string_view Value::asString() const {
  assert(isString() && "asString on an integer value");
  return StringInterner::global().lookup(
      static_cast<StringInterner::Id>(IntVal));
}

int Value::compare(const Value &Other) const {
  if (TheKind != Other.TheKind)
    return TheKind == Kind::Int ? -1 : 1;
  if (TheKind == Kind::Int)
    return IntVal < Other.IntVal ? -1 : (IntVal > Other.IntVal ? 1 : 0);
  // Compare interned strings by content so the order is intuitive; ids
  // are insertion-ordered, not lexicographic.
  std::string_view A = asString(), B = Other.asString();
  return A < B ? -1 : (A > B ? 1 : 0);
}

std::string Value::str() const {
  if (isInt())
    return std::to_string(IntVal);
  return "'" + std::string(asString()) + "'";
}
