//===- decomp/Decomposition.cpp - Concurrent decompositions ------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "decomp/Decomposition.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace crs;

std::string ValidationResult::str() const {
  std::string Out;
  for (const auto &E : Errors) {
    Out += E;
    Out += '\n';
  }
  return Out;
}

Decomposition::Decomposition(const RelationSpec &Spec) : Spec(&Spec) {}

NodeId Decomposition::addNode(std::string Name, ColumnSet KeyCols,
                              ColumnSet Residual) {
  NodeId Id = static_cast<NodeId>(Nodes.size());
  assert((Id != 0 || KeyCols.isEmpty()) && "root must have empty key set");
  Nodes.push_back({Id, std::move(Name), KeyCols, Residual, {}, {}});
  return Id;
}

EdgeId Decomposition::addEdge(NodeId Src, NodeId Dst, ColumnSet Cols,
                              ContainerKind Kind) {
  assert(Src < Nodes.size() && Dst < Nodes.size() && "bad endpoint");
  EdgeId Id = static_cast<EdgeId>(Edges.size());
  Edges.push_back({Id, Src, Dst, Cols, Kind});
  Nodes[Src].OutEdges.push_back(Id);
  Nodes[Dst].InEdges.push_back(Id);
  return Id;
}

void Decomposition::setEdgeKind(EdgeId E, ContainerKind Kind) {
  assert(E < Edges.size() && "bad edge id");
  Edges[E].Kind = Kind;
}

std::vector<NodeId> Decomposition::topologicalOrder() const {
  // Kahn's algorithm with a deterministic tie-break (smallest node id
  // first) so the lock order is stable across runs.
  std::vector<unsigned> InDegree(Nodes.size(), 0);
  for (const Edge &E : Edges)
    ++InDegree[E.Dst];
  std::vector<NodeId> Ready;
  for (const Node &N : Nodes)
    if (InDegree[N.Id] == 0)
      Ready.push_back(N.Id);
  std::vector<NodeId> Order;
  while (!Ready.empty()) {
    auto MinIt = std::min_element(Ready.begin(), Ready.end());
    NodeId N = *MinIt;
    Ready.erase(MinIt);
    Order.push_back(N);
    for (EdgeId E : Nodes[N].OutEdges)
      if (--InDegree[Edges[E].Dst] == 0)
        Ready.push_back(Edges[E].Dst);
  }
  return Order; // shorter than Nodes.size() iff the graph has a cycle
}

std::vector<uint32_t> Decomposition::topologicalIndex() const {
  std::vector<NodeId> Order = topologicalOrder();
  std::vector<uint32_t> Index(Nodes.size(), ~0u);
  for (uint32_t I = 0; I < Order.size(); ++I)
    Index[Order[I]] = I;
  return Index;
}

std::string Decomposition::toDot() const {
  std::string Out = "digraph decomposition {\n";
  for (const Node &N : Nodes) {
    Out += "  " + N.Name + " [label=\"" + N.Name + ": " +
           Spec->catalog().str(N.KeyCols) + " |> " +
           Spec->catalog().str(N.Residual) + "\"];\n";
  }
  for (const Edge &E : Edges) {
    Out += "  " + Nodes[E.Src].Name + " -> " + Nodes[E.Dst].Name +
           " [label=\"" + Spec->catalog().str(E.Cols) + " " +
           containerKindName(E.Kind) + "\"";
    if (E.Kind == ContainerKind::SingletonCell)
      Out += ", style=dotted";
    else if (containerTraits(E.Kind).concurrencySafe())
      Out += ", style=dashed";
    Out += "];\n";
  }
  return Out + "}\n";
}

std::string Decomposition::str() const {
  std::string Out;
  for (const Edge &E : Edges) {
    if (!Out.empty())
      Out += "; ";
    Out += Nodes[E.Src].Name + " -" + Spec->catalog().str(E.Cols) + "-> " +
           Nodes[E.Dst].Name + "[" + containerKindName(E.Kind) + "]";
  }
  return Out;
}
