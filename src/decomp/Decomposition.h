//===- decomp/Decomposition.h - Concurrent decompositions ------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decompositions (paper §4.1): a rooted DAG describing how a relation is
/// represented as a composition of container data structures. Each node v
/// has a type `A ▷ B` — A is the set of columns bound by any path from the
/// root to v (node instances are identified by valuations of A), and B is
/// the residual set of columns represented by the subgraph under v. Each
/// edge uv carries the set of columns cols(uv) it binds and the container
/// kind ds(uv) implementing it.
///
/// This is a *static* description of the heap, like a type; the runtime
/// counterpart (decomposition instances) lives in src/runtime.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_DECOMP_DECOMPOSITION_H
#define CRS_DECOMP_DECOMPOSITION_H

#include "containers/ContainerTraits.h"
#include "rel/RelationSpec.h"

#include <string>
#include <vector>

namespace crs {

using NodeId = uint32_t;
using EdgeId = uint32_t;

/// Outcome of a structural validation pass; empty Errors means valid.
struct ValidationResult {
  std::vector<std::string> Errors;
  bool ok() const { return Errors.empty(); }
  std::string str() const;
};

/// A decomposition DAG over a relational specification.
class Decomposition {
public:
  struct Node {
    NodeId Id;
    std::string Name;    ///< display name (ρ, x, y, ... in the paper)
    ColumnSet KeyCols;   ///< A in `A ▷ B`: columns identifying an instance
    ColumnSet Residual;  ///< B in `A ▷ B`: columns represented below
    std::vector<EdgeId> OutEdges;
    std::vector<EdgeId> InEdges;
  };

  struct Edge {
    EdgeId Id;
    NodeId Src;
    NodeId Dst;
    ColumnSet Cols;      ///< cols(uv): columns this edge's container keys
    ContainerKind Kind;  ///< ds(uv): the container implementing the edge
  };

  explicit Decomposition(const RelationSpec &Spec);

  /// Adds a fresh node. The first node added is the root and must have
  /// empty key columns.
  NodeId addNode(std::string Name, ColumnSet KeyCols, ColumnSet Residual);

  /// Adds an edge from \p Src to \p Dst binding \p Cols via \p Kind.
  EdgeId addEdge(NodeId Src, NodeId Dst, ColumnSet Cols, ContainerKind Kind);

  /// Replaces the container kind on an edge (used by the autotuner when
  /// enumerating variants of one structure).
  void setEdgeKind(EdgeId E, ContainerKind Kind);

  const RelationSpec &spec() const { return *Spec; }
  NodeId root() const { return 0; }
  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }
  unsigned numEdges() const { return static_cast<unsigned>(Edges.size()); }
  const Node &node(NodeId N) const { return Nodes[N]; }
  const Edge &edge(EdgeId E) const { return Edges[E]; }
  const std::vector<Node> &nodes() const { return Nodes; }
  const std::vector<Edge> &edges() const { return Edges; }

  /// Nodes in a (deterministic) topological order from the root; this is
  /// the order underlying the global lock order (§5.1). Index in the
  /// returned vector = topological index.
  std::vector<NodeId> topologicalOrder() const;

  /// topoIndex[n] = position of node n in topologicalOrder().
  std::vector<uint32_t> topologicalIndex() const;

  /// Immediate-dominator-based dominance: true if every path from the
  /// root to \p N passes through \p Dom (reflexive).
  bool dominates(NodeId Dom, NodeId N) const;

  /// Checks DAG structure + the adequacy conditions of §4.1 (see
  /// DESIGN.md for the exact rule set). Implemented in Adequacy.cpp.
  ValidationResult validate() const;

  /// True if edge \p E may legally be a SingletonCell: the source node's
  /// key columns functionally determine the edge columns.
  bool edgeMaySingleton(EdgeId E) const;

  /// GraphViz rendering of the DAG (for documentation and debugging).
  std::string toDot() const;

  /// One-line structural summary, e.g. "rho -{src}-> u[TreeMap]; ...".
  std::string str() const;

private:
  const RelationSpec *Spec;
  std::vector<Node> Nodes;
  std::vector<Edge> Edges;

  friend class DominatorAnalysis;
};

} // namespace crs

#endif // CRS_DECOMP_DECOMPOSITION_H
