//===- decomp/Shapes.cpp - The paper's decomposition shapes -------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "decomp/Shapes.h"

#include "support/Compiler.h"

using namespace crs;

const char *crs::graphShapeName(GraphShape S) {
  switch (S) {
  case GraphShape::Stick:
    return "stick";
  case GraphShape::Split:
    return "split";
  case GraphShape::Diamond:
    return "diamond";
  }
  crs_unreachable("unknown graph shape");
}

RelationSpec crs::makeGraphSpec() {
  return RelationSpec({"src", "dst", "weight"},
                      {{{"src", "dst"}, {"weight"}}});
}

Decomposition crs::makeGraphDecomposition(const RelationSpec &Spec,
                                          GraphShape S,
                                          GraphContainers Containers) {
  ColumnSet Src = Spec.cols({"src"});
  ColumnSet Dst = Spec.cols({"dst"});
  ColumnSet Weight = Spec.cols({"weight"});
  ColumnSet All = Spec.allColumns();
  Decomposition D(Spec);

  switch (S) {
  case GraphShape::Stick: {
    NodeId Rho = D.addNode("rho", ColumnSet::empty(), All);
    NodeId U = D.addNode("u", Src, Dst | Weight);
    NodeId V = D.addNode("v", Src | Dst, Weight);
    NodeId W = D.addNode("w", All, ColumnSet::empty());
    D.addEdge(Rho, U, Src, Containers.Level1);
    D.addEdge(U, V, Dst, Containers.Level2);
    D.addEdge(V, W, Weight, ContainerKind::SingletonCell);
    break;
  }
  case GraphShape::Split: {
    NodeId Rho = D.addNode("rho", ColumnSet::empty(), All);
    NodeId U = D.addNode("u", Src, Dst | Weight);
    NodeId V = D.addNode("v", Dst, Src | Weight);
    NodeId W = D.addNode("w", Src | Dst, Weight);
    NodeId X = D.addNode("x", All, ColumnSet::empty());
    NodeId Y = D.addNode("y", Src | Dst, Weight);
    NodeId Z = D.addNode("z", All, ColumnSet::empty());
    D.addEdge(Rho, U, Src, Containers.Level1);
    D.addEdge(Rho, V, Dst, Containers.Level1);
    D.addEdge(U, W, Dst, Containers.Level2);
    D.addEdge(V, Y, Src, Containers.Level2);
    D.addEdge(W, X, Weight, ContainerKind::SingletonCell);
    D.addEdge(Y, Z, Weight, ContainerKind::SingletonCell);
    break;
  }
  case GraphShape::Diamond: {
    NodeId Rho = D.addNode("rho", ColumnSet::empty(), All);
    NodeId X = D.addNode("x", Src, Dst | Weight);
    NodeId Y = D.addNode("y", Dst, Src | Weight);
    NodeId Z = D.addNode("z", Src | Dst, Weight);
    NodeId W = D.addNode("w", All, ColumnSet::empty());
    D.addEdge(Rho, X, Src, Containers.Level1);
    D.addEdge(Rho, Y, Dst, Containers.Level1);
    D.addEdge(X, Z, Dst, Containers.Level2);
    D.addEdge(Y, Z, Src, Containers.Level2);
    D.addEdge(Z, W, Weight, ContainerKind::SingletonCell);
    break;
  }
  }

  [[maybe_unused]] ValidationResult R = D.validate();
  assert(R.ok() && "built-in graph decomposition must be adequate");
  return D;
}

RelationSpec crs::makeDCacheSpec() {
  return RelationSpec({"parent", "name", "child"},
                      {{{"parent", "name"}, {"child"}}});
}

Decomposition crs::makeDCacheDecomposition(const RelationSpec &Spec) {
  ColumnSet Parent = Spec.cols({"parent"});
  ColumnSet Name = Spec.cols({"name"});
  ColumnSet Child = Spec.cols({"child"});
  ColumnSet All = Spec.allColumns();

  Decomposition D(Spec);
  NodeId Rho = D.addNode("rho", ColumnSet::empty(), All);
  NodeId X = D.addNode("x", Parent, Name | Child);
  NodeId Y = D.addNode("y", Parent | Name, Child);
  NodeId Z = D.addNode("z", All, ColumnSet::empty());
  // The per-directory map of children (enables iterating a directory).
  D.addEdge(Rho, X, Parent, ContainerKind::TreeMap);
  D.addEdge(X, Y, Name, ContainerKind::TreeMap);
  // The global (parent, name) -> child hashtable (enables fast lookup),
  // matching the dashed ConcurrentHashMap edge in Fig. 2(a).
  D.addEdge(Rho, Y, Parent | Name, ContainerKind::ConcurrentHashMap);
  D.addEdge(Y, Z, Child, ContainerKind::SingletonCell);

  [[maybe_unused]] ValidationResult R = D.validate();
  assert(R.ok() && "dcache decomposition must be adequate");
  return D;
}
