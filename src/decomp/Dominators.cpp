//===- decomp/Dominators.cpp - Dominance on decomposition DAGs ----------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Dominance is what makes lock placements well-formed (§4.3): the lock
/// placement ψ(uv) of a non-speculative edge must dominate the edge's
/// source u, so that every query path from the root encounters the lock
/// before the edge. Decomposition DAGs are tiny (a handful of nodes), so
/// we use the classic iterative dominator-set dataflow rather than
/// Lengauer-Tarjan.
///
//===----------------------------------------------------------------------===//

#include "decomp/Decomposition.h"

#include "support/Compiler.h"

using namespace crs;

bool Decomposition::dominates(NodeId Dom, NodeId N) const {
  if (Dom == N)
    return true;
  // dom(root) = {root}; dom(n) = {n} ∪ ⋂_{p ∈ preds(n)} dom(p).
  // Represent dominator sets as bitmasks (≤ 64 nodes, vastly more than
  // any realistic decomposition).
  assert(Nodes.size() <= 64 && "decomposition too large for dominator mask");
  uint64_t All = Nodes.size() >= 64 ? ~0ULL : (1ULL << Nodes.size()) - 1;
  std::vector<uint64_t> DomSet(Nodes.size(), All);
  DomSet[root()] = 1ULL << root();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Node &Nd : Nodes) {
      if (Nd.Id == root())
        continue;
      uint64_t Meet = All;
      if (Nd.InEdges.empty())
        Meet = 0; // unreachable except via root; validate() rejects this
      for (EdgeId E : Nd.InEdges)
        Meet &= DomSet[Edges[E].Src];
      uint64_t New = Meet | (1ULL << Nd.Id);
      if (New != DomSet[Nd.Id]) {
        DomSet[Nd.Id] = New;
        Changed = true;
      }
    }
  }
  return (DomSet[N] >> Dom) & 1;
}
