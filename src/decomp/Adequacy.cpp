//===- decomp/Adequacy.cpp - Adequacy checking for decompositions -------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Adequacy (paper §4.1): a decomposition must be able to represent every
/// relation satisfying the relational specification. We check the
/// sufficient structural conditions listed in DESIGN.md:
///
///   1. unique root `ρ: ∅ ▷ C`; all nodes reachable; acyclic;
///   2. each edge uv with u: A ▷ B, v: A' ▷ B' satisfies
///      A' = A ∪ cols(uv), ∅ ≠ cols(uv) ⊆ B, B' = B \ cols(uv),
///      consistently across all incoming edges of v;
///   3. leaves have empty residual (every root-to-leaf path binds every
///      column exactly once);
///   4. non-leaves have at least one outgoing edge per residual column;
///   5. SingletonCell edges require A →Δ cols(uv).
///
/// These imply the paper's stated consequence A' ⊇ A ∪ cols(uv).
///
//===----------------------------------------------------------------------===//

#include "decomp/Decomposition.h"

#include "support/Compiler.h"

using namespace crs;

bool Decomposition::edgeMaySingleton(EdgeId E) const {
  const Edge &Ed = Edges[E];
  return Spec->determines(Nodes[Ed.Src].KeyCols, Ed.Cols);
}

ValidationResult Decomposition::validate() const {
  ValidationResult R;
  auto Err = [&](std::string Msg) { R.Errors.push_back(std::move(Msg)); };

  if (Nodes.empty()) {
    Err("decomposition has no nodes");
    return R;
  }

  const ColumnCatalog &Cat = Spec->catalog();

  // Condition 1a: the root has type ∅ ▷ C.
  const Node &Root = Nodes[root()];
  if (!Root.KeyCols.isEmpty())
    Err("root node must have empty key columns");
  if (Root.Residual != Spec->allColumns())
    Err("root residual must be all columns, got " + Cat.str(Root.Residual));
  if (!Root.InEdges.empty())
    Err("root must have no incoming edges");

  // Condition 1b: acyclic (topological order covers every node) and all
  // nodes reachable from the root.
  std::vector<NodeId> Topo = topologicalOrder();
  if (Topo.size() != Nodes.size())
    Err("decomposition graph has a cycle");
  std::vector<bool> Reached(Nodes.size(), false);
  Reached[root()] = true;
  for (NodeId N : Topo)
    for (EdgeId E : Nodes[N].OutEdges)
      if (Reached[N])
        Reached[Edges[E].Dst] = true;
  for (const Node &N : Nodes)
    if (!Reached[N.Id])
      Err("node " + N.Name + " is unreachable from the root");
  for (const Node &N : Nodes)
    if (N.Id != root() && N.InEdges.empty())
      Err("non-root node " + N.Name + " has no incoming edges");

  // Condition 2: per-edge type discipline, consistent across sharing.
  for (const Edge &E : Edges) {
    const Node &U = Nodes[E.Src];
    const Node &V = Nodes[E.Dst];
    std::string Tag = "edge " + U.Name + "->" + V.Name + " ";
    if (E.Cols.isEmpty())
      Err(Tag + "binds no columns");
    if (!U.Residual.containsAll(E.Cols))
      Err(Tag + "columns " + Cat.str(E.Cols) + " not within source residual " +
          Cat.str(U.Residual));
    if (V.KeyCols != (U.KeyCols | E.Cols))
      Err(Tag + "target key columns " + Cat.str(V.KeyCols) +
          " != source keys ∪ edge columns " + Cat.str(U.KeyCols | E.Cols));
    if (V.Residual != (U.Residual - E.Cols))
      Err(Tag + "target residual " + Cat.str(V.Residual) +
          " != source residual \\ edge columns " +
          Cat.str(U.Residual - E.Cols));
  }

  // Condition 3: leaves bind everything.
  for (const Node &N : Nodes) {
    if (!N.OutEdges.empty())
      continue;
    if (!N.Residual.isEmpty())
      Err("leaf node " + N.Name + " has nonempty residual " +
          Cat.str(N.Residual));
    if (N.KeyCols != Spec->allColumns())
      Err("leaf node " + N.Name + " does not bind all columns");
  }

  // Condition 4: non-leaves can represent their residual.
  for (const Node &N : Nodes)
    if (!N.Residual.isEmpty() && N.OutEdges.empty())
      Err("node " + N.Name + " has residual columns but no outgoing edges");

  // Condition 5: singleton edges require the FD justification.
  for (const Edge &E : Edges)
    if (E.Kind == ContainerKind::SingletonCell && !edgeMaySingleton(E.Id))
      Err("edge " + Nodes[E.Src].Name + "->" + Nodes[E.Dst].Name +
          " uses SingletonCell but " + Cat.str(Nodes[E.Src].KeyCols) +
          " does not determine " + Cat.str(E.Cols));

  return R;
}
