//===- decomp/Shapes.h - The paper's decomposition shapes ------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constructors for the concrete relational specifications and
/// decomposition structures used throughout the paper:
///
///  * the directed-graph relation {src, dst, weight} with FD
///    src, dst → weight (§2, §4.3, §6) and its three decompositions —
///    "stick" (Fig. 3a), "split" (Fig. 3b), and "diamond" (Fig. 3c);
///  * the filesystem directory-tree relation {parent, name, child} with
///    FD parent, name → child modeled on the Linux dcache (Fig. 2).
///
/// Container kinds on edges default to the figures' choices but are
/// parameters, because the autotuner (§6.1) enumerates alternatives.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_DECOMP_SHAPES_H
#define CRS_DECOMP_SHAPES_H

#include "decomp/Decomposition.h"

namespace crs {

/// The structural skeletons of Figure 3.
enum class GraphShape : uint8_t { Stick, Split, Diamond };

const char *graphShapeName(GraphShape S);

/// Returns the directed-graph relational specification
/// ({src, dst, weight}, {src,dst → weight}).
RelationSpec makeGraphSpec();

/// Container choices for a graph decomposition. Level1 keys the first
/// map level (src and/or dst from the root), Level2 the second (dst/src
/// under a level-1 node). The final weight edges are always
/// SingletonCell (justified by the FD).
struct GraphContainers {
  ContainerKind Level1 = ContainerKind::ConcurrentHashMap;
  ContainerKind Level2 = ContainerKind::HashMap;
};

/// Builds one of the Figure 3 decompositions over \p Spec (which must be
/// makeGraphSpec()-shaped).
///
///  * Stick:   ρ -{src}-> u -{dst}-> v -{weight}-> w
///  * Split:   ρ -{src}-> u -{dst}-> w -{weight}-> x
///             ρ -{dst}-> v -{src}-> y -{weight}-> z
///  * Diamond: ρ -{src}-> x -{dst}-> z -{weight}-> w
///             ρ -{dst}-> y -{src}-> z   (shared successor node z)
Decomposition makeGraphDecomposition(const RelationSpec &Spec, GraphShape S,
                                     GraphContainers Containers = {});

/// Returns the directory-tree specification
/// ({parent, name, child}, {parent,name → child}).
RelationSpec makeDCacheSpec();

/// Builds the Figure 2 dcache decomposition over \p Spec:
///   ρ -{parent}-> x -{name}-> y -{child}-> z   (TreeMap levels)
///   ρ -{parent, name}-> y                      (ConcurrentHashMap)
Decomposition makeDCacheDecomposition(const RelationSpec &Spec);

} // namespace crs

#endif // CRS_DECOMP_SHAPES_H
