//===- plan/Planner.h - The concurrent query planner ------------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent query planner (paper §5): compiles relational
/// operations into valid plans tailored to a decomposition and lock
/// placement. Following §5.2, the planner enumerates candidate plans —
/// traversal orders over the decomposition's edges, with lock statements
/// interleaved in the global lock order — and selects the cheapest under
/// the heuristic cost model. Only two-phase plans are considered: a
/// growing phase of lock/lookup/scan statements and a shrinking phase of
/// unlocks, so every plan is trivially two-phase.
///
/// Mutations reuse the machinery (§5.2): `remove` compiles to a locate
/// plan that walks *every* edge under exclusive locks, followed by a
/// write epilogue of EraseEdge statements cascading husk cleanup.
/// `insert` compiles to a topological resolve-and-lock schedule (Probe +
/// Lock statements), the s-driven put-if-absent membership check behind
/// a Restrict/GuardAbsent pair, and a CreateNode/InsertEdge write phase
/// — the whole operation is plan IR, validated and explainable like any
/// query.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_PLAN_PLANNER_H
#define CRS_PLAN_PLANNER_H

#include "plan/CostModel.h"
#include "plan/QueryIR.h"

#include <optional>
#include <vector>

namespace crs {

class QueryPlanner {
public:
  QueryPlanner(const Decomposition &D, const LockPlacement &P,
               CostParams CP = {});

  /// Compiles `query r s C` for inputs with dom(s) = \p DomS: enumerates
  /// valid traversals, scores them, returns the cheapest plan.
  Plan planQuery(ColumnSet DomS, ColumnSet C) const;

  /// All valid candidate query plans (for tests and the planner bench).
  std::vector<Plan> enumerateQueryPlans(ColumnSet DomS, ColumnSet C) const;

  /// Compiles the locate phase of `remove r s` (s a key with
  /// dom(s) = \p DomS): an exclusive-mode traversal covering every edge,
  /// binding every node instance and every column of matching tuples.
  Plan planRemoveLocate(ColumnSet DomS) const;

  /// Compiles the full `remove r s` plan: the locate traversal plus the
  /// write epilogue — EraseEdge statements in reverse topological order
  /// (husk-gated for shared nodes) and the count adjustment.
  Plan planRemove(ColumnSet DomS) const;

  /// Compiles the full `insert r s t` plan for inputs with
  /// dom(s) = \p DomS. The plan executes over the *full* tuple s ∪ t:
  /// a topological Probe/Lock schedule resolving existing instances and
  /// acquiring every needed stripe exclusively in the global order, the
  /// put-if-absent membership check (Restrict to dom(s), then
  /// lookup/scan every edge, then GuardAbsent), and the write phase
  /// (CreateNode top-down, InsertEdge for every edge, UpdateCount).
  Plan planInsert(ColumnSet DomS) const;

  /// \name Transaction-support plans (src/txn)
  /// @{

  /// Compiles `query r s C` to run under *exclusive* locks — the read
  /// arm of a transaction (PlanOp::QueryForUpdate). Enumerates the same
  /// traversals as planQuery but locks in mutation mode (speculative
  /// edges switch to the §4.5 writer protocol, which never restarts);
  /// when no enumerated traversal admits the exclusive lock schedule,
  /// falls back to the always-valid full locate walk of
  /// planRemoveLocate.
  Plan planQueryForUpdate(ColumnSet DomS, ColumnSet C) const;

  /// Compiles the inverse of an insert (PlanOp::UndoInsert): a remove
  /// plan keyed on *every* column, executed with the undo log's full
  /// tuple, so each locate step is a keyed lookup and each stripe
  /// selector hashes bound columns. Never mirrors (see PlanOp).
  Plan planUndoInsert() const;

  /// Compiles the inverse of a remove (PlanOp::UndoRemove): a
  /// put-if-absent insert keyed on every column, re-inserting the undo
  /// log's captured tuple. Never mirrors (see PlanOp).
  Plan planUndoRemove() const;

  /// @}

  double cost(const Plan &P) const { return estimatePlanCost(P, Params); }

  const CostParams &costParams() const { return Params; }

  /// While set, planInsert/planRemove append a MirrorWrite epilogue to
  /// every mutation plan: the dual-write phase of a live representation
  /// migration (runtime/Migration.h), kept inside the plan IR so it is
  /// validated, priced, and visible in explain like any statement.
  /// Query plans are unaffected — reads stay on the source
  /// representation until the migration's final swap.
  void setEmitMirrorWrites(bool Emit) { EmitMirrorWrites = Emit; }
  bool emitMirrorWrites() const { return EmitMirrorWrites; }

private:
  const Decomposition *Decomp;
  const LockPlacement *Placement;
  CostParams Params;
  std::vector<uint32_t> TopoIdx;
  bool EmitMirrorWrites = false;

  /// Builds a plan from a traversal order; returns nullopt if lock
  /// statements cannot be emitted in the global lock order for this
  /// traversal.
  std::optional<Plan> buildPlan(const std::vector<EdgeId> &Seq,
                                ColumnSet DomS, ColumnSet OutputCols,
                                bool ForMutation) const;

  /// The shared cores behind planRemove/planUndoInsert and
  /// planInsert/planUndoRemove: \p Mirror controls the MirrorWrite
  /// epilogue (undo plans never carry one).
  Plan planRemoveCore(ColumnSet DomS, bool Mirror) const;
  Plan planInsertCore(ColumnSet DomS, bool Mirror) const;

  void enumerateSeqs(ColumnSet Confirmed, ColumnSet Target,
                     uint64_t BoundNodes, uint64_t UsedEdges,
                     std::vector<EdgeId> &Seq,
                     std::vector<std::vector<EdgeId>> &Out) const;
};

} // namespace crs

#endif // CRS_PLAN_PLANNER_H
