//===- plan/CostModel.h - Heuristic plan cost estimation --------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heuristic cost estimation function the query planner minimizes
/// (§5.2, "Query Planner"). As in the prior work the paper builds on,
/// costs are static heuristics: container operations have per-kind costs,
/// scans multiply the running state cardinality by an estimated fanout,
/// and taking all k stripes of a striped lock costs k lock operations —
/// which is exactly the §4.4 trade-off (striping lowers contention but
/// makes whole-container operations more expensive).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_PLAN_COSTMODEL_H
#define CRS_PLAN_COSTMODEL_H

#include "plan/QueryIR.h"

namespace crs {

/// Tunable cost-model parameters.
struct CostParams {
  double LockCost = 1.0;       ///< acquiring one physical lock
  double LookupHashCost = 1.0; ///< hash container lookup
  double LookupTreeCost = 2.0; ///< ordered container lookup (log n)
  double ScanEntryCost = 0.5;  ///< visiting one entry during a scan
  double RootFanout = 256.0;   ///< expected entries in a root container
  double InnerFanout = 16.0;   ///< expected entries in a nested container
  double SpecPenalty = 0.5;    ///< extra verify work per speculative read
  double InsertEntryCost = 1.5; ///< adding one container entry
  double EraseEntryCost = 1.5;  ///< removing one container entry
  double CreateNodeCost = 4.0;  ///< allocating one node instance (+locks)
  /// Replaying one committed mutation on a migration's shadow
  /// representation (a MirrorWrite epilogue): roughly a second mutation
  /// — locks, traversal, and writes on the target. The shadow's own
  /// decomposition is unknown to the source planner, so this is a flat
  /// estimate, only present in plans while dual-write is active.
  double MirrorWriteCost = 10.0;
  /// Measured average fanout per edge (indexed by EdgeId), e.g. from
  /// ConcurrentRelation::collectStatistics(); overrides the static
  /// Root/Inner defaults when non-empty. This is the profiling-driven
  /// planning of the data representation synthesis line of work.
  std::vector<double> EdgeFanout;
};

/// Estimated fanout of scanning \p E (1 for singleton edges).
double estimatedFanout(const Decomposition &D, EdgeId E,
                       const CostParams &CP);

/// Estimated execution cost of \p P under \p CP.
double estimatePlanCost(const Plan &P, const CostParams &CP);

} // namespace crs

#endif // CRS_PLAN_COSTMODEL_H
