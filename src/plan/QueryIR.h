//===- plan/QueryIR.h - The concurrent query language -----------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent query language of paper §5.2 (Figure 4):
///
///   q ::= x | let x = q1 in q2 | lock(q, v) | unlock(q, v)
///       | scan(q, uv) | lookup(q, uv)
///
/// We represent plans in a flattened let-normal form: a sequence of
/// statements, each consuming a query-state-set variable and (for scans
/// and lookups) producing a new one. Every expression evaluates to a set
/// of query states (t, m): a tuple t of bound columns plus a mapping m
/// from decomposition nodes to node instances (§5.2, "Query States").
///
/// Extensions beyond the paper's figure, needed to make lock acquisition
/// executable:
///  * lock statements carry stripe selectors (§4.4): either "all k
///    stripes" (conservative, when the stripe columns are not yet bound)
///    or "the stripe selected by hashing these bound columns";
///  * speculative edges (§4.5) use fused SpecLookup / SpecScan statements
///    implementing the guess-verify-retry protocol.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_PLAN_QUERYIR_H
#define CRS_PLAN_QUERYIR_H

#include "decomp/Decomposition.h"
#include "lockplace/LockPlacement.h"
#include "sync/PhysicalLock.h"

#include <string>
#include <vector>

namespace crs {

/// Query-state-set variable index; variable 0 is the plan input: the
/// singleton state (s, {ρ ↦ root instance}).
using PlanVar = uint16_t;

/// How a lock statement chooses stripes at each bound host instance.
struct StripeSel {
  enum class Mode : uint8_t {
    All,    ///< take every stripe, in index order
    ByCols, ///< hash these (bound) columns for one stripe
    First,  ///< stripe 0: the §4.5 present-target lock of a speculative
            ///< edge, taken at the target instance by the writer protocol
  };
  Mode M = Mode::All;
  ColumnSet Cols; ///< ByCols only

  bool allStripes() const { return M == Mode::All; }
  static StripeSel all() { return {Mode::All, ColumnSet::empty()}; }
  static StripeSel byCols(ColumnSet C) { return {Mode::ByCols, C}; }
  static StripeSel first() { return {Mode::First, ColumnSet::empty()}; }
  bool operator==(const StripeSel &O) const {
    return M == O.M && Cols == O.Cols;
  }
};

/// One statement of a plan.
struct PlanStmt {
  enum class Kind : uint8_t {
    /// Acquire physical locks on the instances of `Node` bound in the
    /// states of `InVar`, stripes per `Sels`, mode `Mode`. Instances and
    /// stripes are sorted into the global lock order before acquisition.
    Lock,
    /// Release — cosmetic under strict two-phase execution (the executor
    /// releases everything at transaction end), kept for plan fidelity.
    Unlock,
    /// `OutVar = lookup(InVar, Edge)`: for each state, look up the key
    /// π_cols(Edge)(t) in the source instance's container; join.
    Lookup,
    /// `OutVar = scan(InVar, Edge)`: natural join of the states with the
    /// container's entries.
    Scan,
    /// Speculative lookup (§4.5): guess via an unlocked lookup, lock the
    /// target (present) or the absent-case host stripe, verify; on a
    /// wrong guess the whole transaction restarts.
    SpecLookup,
    /// Scan of a speculative edge with per-entry target locking; the
    /// all-stripes host lock must already be held.
    SpecScan,

    // -- Write statements (§5.2, "mutations sandwich generated write
    //    code inside a locate plan"). These make insert/remove plans
    //    first-class IR instead of interpreted epilogues.

    /// `OutVar = probe(InVar, Edge)`: the resolution step of an insert's
    /// locate phase. Like Lookup, but total: a state whose source
    /// instance is unbound, or whose key is absent, passes through
    /// unchanged (the subtree will be created by a later CreateNode).
    /// Reads are covered by the exclusive host locks of the insert's
    /// topological lock schedule.
    Probe,
    /// `OutVar = restrict(InVar, Cols)`: projects each state's tuple to
    /// `Cols` (= dom(s)) and resets its bindings to the root — the seed
    /// of insert's s-driven put-if-absent membership check.
    Restrict,
    /// Aborts the plan with ExecStatus::Found when `InVar` is non-empty:
    /// a tuple matching s exists, so insert returns false (§2). Write
    /// statements are only valid after this guard.
    GuardAbsent,
    /// For each state with `Node` unbound: create a fresh instance keyed
    /// by the state tuple's projection onto the node's key columns and
    /// bind it (OutVar). Fresh instances reachable through speculative
    /// in-edges are pre-locked via the try path (§4.5 writer protocol:
    /// unpublished, so acquisition cannot block).
    CreateNode,
    /// Adds the entry π_cols(Edge)(t) ↦ m(dst) to the source instance's
    /// container, for each state.
    InsertEdge,
    /// Removes the entry π_cols(Edge)(t) from the source instance's
    /// container. With OnlyIfHusk, only when the target instance has
    /// become an empty husk (shared nodes survive until they empty out).
    EraseEdge,
    /// Adjusts the relation's tuple count by Delta per state of InVar
    /// (so a remove whose locate matched nothing adjusts by 0).
    UpdateCount,
    /// Dual-write epilogue of a live representation migration
    /// (runtime/Migration.h): when `InVar` is non-empty — the mutation
    /// actually committed — replay the plan's operation (Plan::Op with
    /// dom(s) = Plan::DomS and the original input tuple) against the
    /// shadow representation installed in the execution context's
    /// mirror sink. Emitted by the planner only while a migration's
    /// dual-write phase is active; a no-op when no sink is installed.
    /// Runs inside the growing phase, so the source representation's
    /// exclusive locks are still held: concurrent operations can never
    /// observe one representation with the mutation and the other
    /// without it.
    MirrorWrite,
  };

  Kind K;
  PlanVar InVar = 0;
  PlanVar OutVar = 0;                 ///< Lookup/Scan/Spec* result variable
  NodeId Node = 0;                    ///< Lock/Unlock/CreateNode target node
  EdgeId Edge = 0;                    ///< edge operand
  LockMode Mode = LockMode::Shared;   ///< Lock/Spec* acquisition mode
  std::vector<StripeSel> Sels;        ///< Lock stripe selectors
  ColumnSet Cols;                     ///< Restrict projection columns
  int32_t Delta = 0;                  ///< UpdateCount adjustment
  bool OnlyIfHusk = false;            ///< EraseEdge husk-cleanup gate
  /// Sort elision (§5.2): the planner's static analysis proved the
  /// input states already arrive in the global lock order (e.g. they
  /// came from a scan of a sorted container), so the lock operator can
  /// skip sorting its acquisition set.
  bool SortElided = false;
};

/// The relational operation a plan compiles.
enum class PlanOp : uint8_t {
  Query,        ///< query r s C
  RemoveLocate, ///< the locate phase of remove alone (tests, explain)
  Remove,       ///< remove r s: locate + erase epilogue + count
  Insert,       ///< insert r s t: resolve/lock + absence guard + writes

  // -- Transaction-support operations (src/txn). These share the plan
  //    cache with the base kinds (the signature includes the op), so a
  //    transaction's plan resolution stays on the wait-free hot path.

  /// query r s C under *exclusive* locks: the read arm of a
  /// multi-operation transaction. Transactions retain every lock until
  /// commit, and shared→exclusive upgrades are not upgradable on a
  /// shared_mutex, so transactional reads lock exclusively up front
  /// (conservative strict 2PL) — a later mutation in the same scope
  /// re-finds its locks already held instead of deadlocking on an
  /// upgrade.
  QueryForUpdate,
  /// The inverse of a committed insert: a full-tuple-keyed remove plan
  /// replayed from a transaction's undo log on abort. Compiled with
  /// every column bound, so every locate step is a keyed lookup and
  /// every stripe selector hashes bound columns — the undo's lock set
  /// stays within (or try-acquirable beside) the forward op's. Never
  /// carries a MirrorWrite epilogue: transactional mirroring is
  /// buffered and flushed at commit, and aborts discard the buffer.
  UndoInsert,
  /// The inverse of a committed remove: a put-if-absent insert plan
  /// re-inserting the removed tuple (captured in full by the undo log).
  /// The absence guard cannot trip under the transaction's retained
  /// exclusive locks, which also makes replay idempotent. No
  /// MirrorWrite epilogue, as for UndoInsert.
  UndoRemove,
};

/// A complete compiled plan for one relational operation (or for the
/// locate phase of a mutation, §5.2: mutations sandwich generated write
/// code between the growing and shrinking phases of a locate plan).
struct Plan {
  const Decomposition *Decomp = nullptr;
  const LockPlacement *Placement = nullptr;
  std::vector<PlanStmt> Stmts;
  PlanVar NumVars = 1;
  PlanVar ResultVar = 0;
  ColumnSet InputCols;  ///< columns bound by the execution input tuple
  ColumnSet OutputCols; ///< C for queries; all columns for mutations
  /// The operation's dom(s) — for inserts this differs from InputCols
  /// (the plan executes over s ∪ t while the put-if-absent check keys
  /// on s alone). Carried so a MirrorWrite epilogue can replay the
  /// operation with identical semantics on the shadow representation.
  ColumnSet DomS;
  PlanOp Op = PlanOp::Query;
  bool ForMutation = false;
  /// Positional bind-slot layout: slot i of a prepared operation binds
  /// column BindSlots[i] of the execution input tuple (InputCols in
  /// ascending column-id order). Emitted by the planner so prepared
  /// handles can bind by position without tuple construction.
  std::vector<ColumnId> BindSlots;
  /// The owning relation's recompilation epoch at compile time (plan
  /// identity): bumped by adaptPlans(), compared by prepared handles to
  /// detect that their bound plan has been superseded.
  uint64_t Epoch = 0;
  /// Epoch-eligibility (the wait-free read fast path): true iff this is
  /// a read-only query plan every one of whose traversed edges is
  /// implemented by a concurrency-safe container (§6.1 traits). Such a
  /// plan may execute under an epoch guard with *zero* physical-lock
  /// acquisitions — the containers' own synchronization keeps each
  /// lookup/scan safe, and the relation's epoch/flip protocol keeps the
  /// traversed instances alive. The classification is static, computed
  /// by the planner at build time.
  bool EpochEligible = false;
  /// Human-readable reason for the classification (explain output).
  std::string EpochNote;

  /// Renders the plan in the paper's let-binding style (§5.2 plans
  /// (2)-(4)); implemented in PlanPrinter.cpp.
  std::string str() const;
};

/// Renders a transactional operation pair — the forward mutation plan
/// and the inverse plan its undo-log entry replays on abort — as one
/// annotated transcript (PlanPrinter.cpp). The explain surface of the
/// txn subsystem: ConcurrentRelation::explainTxn resolves both plans
/// and forwards here.
std::string explainTxn(const Plan &Forward, const Plan &Inverse);

} // namespace crs

#endif // CRS_PLAN_QUERYIR_H
