//===- plan/QueryIR.h - The concurrent query language -----------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent query language of paper §5.2 (Figure 4):
///
///   q ::= x | let x = q1 in q2 | lock(q, v) | unlock(q, v)
///       | scan(q, uv) | lookup(q, uv)
///
/// We represent plans in a flattened let-normal form: a sequence of
/// statements, each consuming a query-state-set variable and (for scans
/// and lookups) producing a new one. Every expression evaluates to a set
/// of query states (t, m): a tuple t of bound columns plus a mapping m
/// from decomposition nodes to node instances (§5.2, "Query States").
///
/// Extensions beyond the paper's figure, needed to make lock acquisition
/// executable:
///  * lock statements carry stripe selectors (§4.4): either "all k
///    stripes" (conservative, when the stripe columns are not yet bound)
///    or "the stripe selected by hashing these bound columns";
///  * speculative edges (§4.5) use fused SpecLookup / SpecScan statements
///    implementing the guess-verify-retry protocol.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_PLAN_QUERYIR_H
#define CRS_PLAN_QUERYIR_H

#include "decomp/Decomposition.h"
#include "lockplace/LockPlacement.h"
#include "sync/PhysicalLock.h"

#include <string>
#include <vector>

namespace crs {

/// Query-state-set variable index; variable 0 is the plan input: the
/// singleton state (s, {ρ ↦ root instance}).
using PlanVar = uint16_t;

/// How a lock statement chooses stripes at each bound host instance.
struct StripeSel {
  bool AllStripes = true; ///< take every stripe, in index order
  ColumnSet Cols;         ///< else hash these (bound) columns for one stripe

  static StripeSel all() { return {true, ColumnSet::empty()}; }
  static StripeSel byCols(ColumnSet C) { return {false, C}; }
  bool operator==(const StripeSel &O) const {
    return AllStripes == O.AllStripes && Cols == O.Cols;
  }
};

/// One statement of a plan.
struct PlanStmt {
  enum class Kind : uint8_t {
    /// Acquire physical locks on the instances of `Node` bound in the
    /// states of `InVar`, stripes per `Sels`, mode `Mode`. Instances and
    /// stripes are sorted into the global lock order before acquisition.
    Lock,
    /// Release — cosmetic under strict two-phase execution (the executor
    /// releases everything at transaction end), kept for plan fidelity.
    Unlock,
    /// `OutVar = lookup(InVar, Edge)`: for each state, look up the key
    /// π_cols(Edge)(t) in the source instance's container; join.
    Lookup,
    /// `OutVar = scan(InVar, Edge)`: natural join of the states with the
    /// container's entries.
    Scan,
    /// Speculative lookup (§4.5): guess via an unlocked lookup, lock the
    /// target (present) or the absent-case host stripe, verify; on a
    /// wrong guess the whole transaction restarts.
    SpecLookup,
    /// Scan of a speculative edge with per-entry target locking; the
    /// all-stripes host lock must already be held.
    SpecScan,
  };

  Kind K;
  PlanVar InVar = 0;
  PlanVar OutVar = 0;                 ///< Lookup/Scan/Spec* result variable
  NodeId Node = 0;                    ///< Lock/Unlock target node
  EdgeId Edge = 0;                    ///< edge operand
  LockMode Mode = LockMode::Shared;   ///< Lock/Spec* acquisition mode
  std::vector<StripeSel> Sels;        ///< Lock stripe selectors
  /// Sort elision (§5.2): the planner's static analysis proved the
  /// input states already arrive in the global lock order (e.g. they
  /// came from a scan of a sorted container), so the lock operator can
  /// skip sorting its acquisition set.
  bool SortElided = false;
};

/// A complete compiled plan for one relational operation (or for the
/// locate phase of a mutation, §5.2: mutations sandwich generated write
/// code between the growing and shrinking phases of a locate plan).
struct Plan {
  const Decomposition *Decomp = nullptr;
  const LockPlacement *Placement = nullptr;
  std::vector<PlanStmt> Stmts;
  PlanVar NumVars = 1;
  PlanVar ResultVar = 0;
  ColumnSet InputCols;  ///< dom(s): columns bound by the operation input
  ColumnSet OutputCols; ///< C for queries; all columns for mutations
  bool ForMutation = false;

  /// Renders the plan in the paper's let-binding style (§5.2 plans
  /// (2)-(4)); implemented in PlanPrinter.cpp.
  std::string str() const;
};

} // namespace crs

#endif // CRS_PLAN_QUERYIR_H
