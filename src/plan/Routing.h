//===- plan/Routing.h - Shard routing over bind-slot layouts ----*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Routing-key machinery for horizontally sharded relations
/// (runtime/ShardedRelation.h). A sharded relation hash-partitions its
/// tuples across N inner representations by a *routing column set*; an
/// operation whose bound columns cover the routing set executes on
/// exactly one shard, anything else fans out. This file owns the two
/// planner-side pieces of that contract:
///
///  * **Routing-column choice.** chooseRoutingColumns picks the set a
///    relation should partition by: a subset of the intersection of the
///    spec's minimal keys (so every keyed mutation can compute its
///    shard), scored by how many of the anticipated operation
///    signatures it leaves single-shard.
///
///  * **Routing-key extraction from bind-slot layouts.** Prepared
///    handles bind arguments positionally against a planner-emitted
///    slot layout (Plan::BindSlots: input columns in ascending
///    column-id order). extractRoutingSlots maps a routing column set
///    onto that layout once, at prepare time, so every execution can
///    hash the routing key straight out of the bound argument frame —
///    no tuple construction, no per-call column search.
///
/// The two routingHash overloads — one over a bound argument frame, one
/// over a tuple — combine the routing values in ascending column-id
/// order with the same mix, so the slot path and the tuple path always
/// agree on a tuple's shard.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_PLAN_ROUTING_H
#define CRS_PLAN_ROUTING_H

#include "rel/RelationSpec.h"
#include "rel/Tuple.h"

#include <vector>

namespace crs {

/// One operation signature's routing layout, extracted at prepare time:
/// whether the signature's bound columns cover the routing set, and if
/// so which bind slots carry the routing columns (in ascending
/// routing-column order — the canonical hashing order).
struct RoutingLayout {
  bool Covered = false;
  std::vector<unsigned> Slots; ///< empty unless Covered
};

/// Maps routing columns onto a prepared operation's positional
/// bind-slot layout (\p BindSlots lists the bound columns in ascending
/// column-id order, as the planner emits them in Plan::BindSlots).
/// Covered is false — and Slots empty — when the layout binds only part
/// of the routing set: such an operation cannot be routed and must fan
/// out.
RoutingLayout extractRoutingSlots(const std::vector<ColumnId> &BindSlots,
                                  ColumnSet Routing);

/// Picks the routing column set for hash-partitioning a relation of
/// \p Spec. Candidates are the nonempty subsets of the intersection of
/// the spec's minimal keys — routing inside every key keeps every keyed
/// mutation single-shard — scored by how many of \p AnticipatedDomS
/// (the dom(s) column sets the deployment expects to serve; may be
/// empty) cover the candidate, i.e. stay single-shard. Ties prefer
/// fewer columns (cheaper hash, coarser partition pressure) and then
/// lower column ids, so the choice is deterministic. If the minimal
/// keys share no columns, falls back to the first minimal key itself.
ColumnSet chooseRoutingColumns(const RelationSpec &Spec,
                               const std::vector<ColumnSet> &AnticipatedDomS = {});

/// Hash of the routing key read positionally out of a bound argument
/// frame via a RoutingLayout's slots (ascending routing-column order).
uint64_t routingHash(const Value *Args, const std::vector<unsigned> &Slots);

/// Hash of the routing key projected from \p T (whose domain must cover
/// \p Routing); combines values in ascending column-id order, matching
/// the frame overload exactly.
uint64_t routingHash(const Tuple &T, ColumnSet Routing);

} // namespace crs

#endif // CRS_PLAN_ROUTING_H
