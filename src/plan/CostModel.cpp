//===- plan/CostModel.cpp - Heuristic plan cost estimation --------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "plan/CostModel.h"

#include "support/Compiler.h"

using namespace crs;

double crs::estimatedFanout(const Decomposition &D, EdgeId E,
                            const CostParams &CP) {
  if (E < CP.EdgeFanout.size() && CP.EdgeFanout[E] > 0.0)
    return CP.EdgeFanout[E];
  const auto &Edge = D.edge(E);
  if (Edge.Kind == ContainerKind::SingletonCell)
    return 1.0;
  return Edge.Src == D.root() ? CP.RootFanout : CP.InnerFanout;
}

static double lookupCost(ContainerKind K, const CostParams &CP) {
  switch (K) {
  case ContainerKind::HashMap:
  case ContainerKind::ConcurrentHashMap:
    return CP.LookupHashCost;
  case ContainerKind::TreeMap:
  case ContainerKind::ConcurrentSkipListMap:
  case ContainerKind::CowArrayMap:
    return CP.LookupTreeCost;
  case ContainerKind::SingletonCell:
    return CP.LookupHashCost * 0.5;
  }
  crs_unreachable("unknown container kind");
}

double crs::estimatePlanCost(const Plan &P, const CostParams &CP) {
  assert(P.Decomp && P.Placement && "cost of an unbound plan");
  const Decomposition &D = *P.Decomp;
  const LockPlacement &LP = *P.Placement;

  // Cardinality (state-set size) per variable.
  std::vector<double> Card(P.NumVars, 0.0);
  Card[0] = 1.0;
  double Cost = 0.0;

  for (const PlanStmt &St : P.Stmts) {
    switch (St.K) {
    case PlanStmt::Kind::Lock: {
      double Stripes = 0.0;
      for (const StripeSel &Sel : St.Sels)
        Stripes += Sel.allStripes()
                       ? static_cast<double>(LP.nodeStripes(St.Node))
                       : 1.0;
      Cost += Card[St.InVar] * Stripes * CP.LockCost;
      break;
    }
    case PlanStmt::Kind::Unlock:
      break; // released in bulk; negligible
    case PlanStmt::Kind::Lookup:
      Cost += Card[St.InVar] * lookupCost(D.edge(St.Edge).Kind, CP);
      Card[St.OutVar] = Card[St.InVar]; // at most one entry per state
      break;
    case PlanStmt::Kind::Scan: {
      double F = estimatedFanout(D, St.Edge, CP);
      Cost += Card[St.InVar] * F * CP.ScanEntryCost;
      Card[St.OutVar] = Card[St.InVar] * F;
      break;
    }
    case PlanStmt::Kind::SpecLookup:
      Cost += Card[St.InVar] * (lookupCost(D.edge(St.Edge).Kind, CP) +
                                CP.LockCost + CP.SpecPenalty);
      Card[St.OutVar] = Card[St.InVar];
      break;
    case PlanStmt::Kind::SpecScan: {
      double F = estimatedFanout(D, St.Edge, CP);
      // Per-entry target lock on top of the scan itself.
      Cost += Card[St.InVar] * F * (CP.ScanEntryCost + CP.LockCost);
      Card[St.OutVar] = Card[St.InVar] * F;
      break;
    }
    case PlanStmt::Kind::Probe:
      // A total lookup: same container work as Lookup, never filters.
      Cost += Card[St.InVar] * lookupCost(D.edge(St.Edge).Kind, CP);
      Card[St.OutVar] = Card[St.InVar];
      break;
    case PlanStmt::Kind::Restrict:
      Card[St.OutVar] = Card[St.InVar];
      break;
    case PlanStmt::Kind::GuardAbsent:
      break; // an emptiness test; negligible
    case PlanStmt::Kind::CreateNode:
      Cost += Card[St.InVar] * CP.CreateNodeCost;
      Card[St.OutVar] = Card[St.InVar];
      break;
    case PlanStmt::Kind::InsertEdge:
      Cost += Card[St.InVar] * CP.InsertEntryCost;
      break;
    case PlanStmt::Kind::EraseEdge:
      Cost += Card[St.InVar] * CP.EraseEntryCost;
      break;
    case PlanStmt::Kind::UpdateCount:
      break; // one relaxed atomic add
    case PlanStmt::Kind::MirrorWrite:
      Cost += Card[St.InVar] * CP.MirrorWriteCost;
      break;
    }
  }
  return Cost;
}
