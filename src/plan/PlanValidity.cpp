//===- plan/PlanValidity.cpp - Static plan validity checking ------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "plan/PlanValidity.h"

#include "support/Compiler.h"

#include <map>
#include <set>

using namespace crs;

namespace {

/// Symbolic per-variable state: which columns and nodes are bound in
/// the states the variable may hold.
struct VarState {
  ColumnSet BoundCols;
  uint64_t BoundNodes = 0; // bitmask over NodeId
  bool Defined = false;
};

/// What the symbolic executor knows about one locked node.
struct HeldLock {
  LockMode Mode;
  bool AllStripes = false;
  bool FirstStripe = false;  // the §4.5 present-target duty
  ColumnSet StripeColsUnion; // union of by-column selectors taken
};

} // namespace

ValidationResult crs::checkPlanValidity(const Plan &P) {
  ValidationResult R;
  auto Err = [&](std::string Msg) { R.Errors.push_back(std::move(Msg)); };
  if (!P.Decomp || !P.Placement) {
    Err("plan lacks decomposition or placement");
    return R;
  }
  const Decomposition &D = *P.Decomp;
  const LockPlacement &LP = *P.Placement;
  std::vector<uint32_t> Topo = D.topologicalIndex();

  std::vector<VarState> Vars(P.NumVars);
  Vars[0].Defined = true;
  Vars[0].BoundCols = P.InputCols;
  Vars[0].BoundNodes = 1ULL << D.root();

  std::map<NodeId, HeldLock> Held;
  bool Shrinking = false;
  int LastLockTopo = -1;

  // Write-statement bookkeeping (insert/remove plans).
  bool GuardSeen = false;
  unsigned GuardCount = 0;
  std::set<NodeId> CreatedNodes;
  std::set<EdgeId> InsertedEdges;
  std::set<EdgeId> ErasedEdges;
  int CountDelta = 0;
  unsigned CountStmts = 0;
  unsigned MirrorStmts = 0;

  auto NodeName = [&](NodeId N) { return D.node(N).Name; };
  auto EdgeName = [&](EdgeId E) {
    return NodeName(D.edge(E).Src) + "->" + NodeName(D.edge(E).Dst);
  };

  /// True if the held lock on the host covers reads/writes of edge E for
  /// states with \p Bound columns in mode \p Need.
  auto Covers = [&](EdgeId E, ColumnSet Bound, LockMode Need) {
    const EdgePlacement &EP = LP.edgePlacement(E);
    auto It = Held.find(EP.Host);
    if (It == Held.end())
      return false;
    const HeldLock &H = It->second;
    if (Need == LockMode::Exclusive && H.Mode != LockMode::Exclusive)
      return false;
    if (LP.nodeStripes(EP.Host) <= 1)
      return true;
    if (H.AllStripes)
      return true;
    if (!H.StripeColsUnion.containsAll(EP.StripeCols))
      return false;
    // A by-columns selector covers both lookups and scan-joins: the
    // logically-read entries agree with the state on the (bound) stripe
    // columns, so they share the selected stripe.
    if (Bound.containsAll(EP.StripeCols))
      return true;
    // Mutation plans select stripes by the full operation tuple; stripe
    // columns outside the edge's own columns lie within the source
    // node's key columns (placement well-formedness) and are pinned by
    // the instance the traversal reached, so only the overlap with the
    // edge's columns needs binding — the insert lock-schedule rule.
    if (P.ForMutation && Bound.containsAll(EP.StripeCols & D.edge(E).Cols))
      return true;
    return false;
  };

  auto IsWrite = [](PlanStmt::Kind K) {
    return K == PlanStmt::Kind::CreateNode ||
           K == PlanStmt::Kind::InsertEdge ||
           K == PlanStmt::Kind::EraseEdge ||
           K == PlanStmt::Kind::UpdateCount ||
           K == PlanStmt::Kind::MirrorWrite;
  };

  unsigned Idx = 0;
  for (const PlanStmt &St : P.Stmts) {
    std::string Where = "stmt " + std::to_string(Idx++) + ": ";
    if (IsWrite(St.K)) {
      if (Shrinking)
        Err(Where + "write after unlock violates two-phase structure");
      if (P.Op == PlanOp::Query || P.Op == PlanOp::RemoveLocate ||
          P.Op == PlanOp::QueryForUpdate)
        Err(Where + "write statement in a read-only plan");
      if ((P.Op == PlanOp::Insert || P.Op == PlanOp::UndoRemove) &&
          !GuardSeen)
        Err(Where + "insert write precedes the put-if-absent guard");
    }
    switch (St.K) {
    case PlanStmt::Kind::Lock: {
      if (Shrinking)
        Err(Where + "lock after unlock violates two-phase structure");
      if (!Vars[St.InVar].Defined)
        Err(Where + "lock consumes undefined variable");
      if (!((Vars[St.InVar].BoundNodes >> St.Node) & 1))
        Err(Where + "lock of node " + NodeName(St.Node) +
            " not bound in input states");
      int T = static_cast<int>(Topo[St.Node]);
      if (T < LastLockTopo)
        Err(Where + "lock of " + NodeName(St.Node) +
            " violates topological lock order");
      LastLockTopo = T;
      HeldLock &H = Held[St.Node];
      H.Mode = St.Mode;
      for (const StripeSel &Sel : St.Sels) {
        switch (Sel.M) {
        case StripeSel::Mode::All:
          H.AllStripes = true;
          break;
        case StripeSel::Mode::ByCols:
          if (!Vars[St.InVar].BoundCols.containsAll(Sel.Cols))
            Err(Where + "stripe selector columns not bound at lock time");
          H.StripeColsUnion |= Sel.Cols;
          break;
        case StripeSel::Mode::First:
          H.FirstStripe = true;
          break;
        }
      }
      break;
    }
    case PlanStmt::Kind::Unlock:
      Shrinking = true;
      break;
    case PlanStmt::Kind::Lookup:
    case PlanStmt::Kind::Scan: {
      if (Shrinking)
        Err(Where + "read after unlock violates two-phase structure");
      const auto &E = D.edge(St.Edge);
      VarState &In = Vars[St.InVar];
      if (!In.Defined)
        Err(Where + "read consumes undefined variable");
      if (!((In.BoundNodes >> E.Src) & 1))
        Err(Where + "edge " + EdgeName(St.Edge) + " source not bound");
      if (St.K == PlanStmt::Kind::Lookup && !In.BoundCols.containsAll(E.Cols))
        Err(Where + "lookup on " + EdgeName(St.Edge) +
            " requires bound key columns");
      if (LP.edgePlacement(St.Edge).Speculative) {
        // Reads of speculative edges in plain Lookup/Scan form are only
        // valid under the mutation protocol: exclusive host lock held
        // (which pins present entries), with the target locked by a
        // Lock statement at the target's own topological position.
        if (!Covers(St.Edge, In.BoundCols, LockMode::Exclusive))
          Err(Where + "read of speculative edge " + EdgeName(St.Edge) +
              " without exclusive host lock");
      } else if (!Covers(St.Edge, In.BoundCols,
                         P.ForMutation ? LockMode::Exclusive
                                       : LockMode::Shared)) {
        Err(Where + "read of edge " + EdgeName(St.Edge) +
            " is not covered by its placed lock");
      }
      VarState &OutV = Vars[St.OutVar];
      OutV.Defined = true;
      OutV.BoundCols = In.BoundCols | E.Cols;
      OutV.BoundNodes = In.BoundNodes | (1ULL << E.Dst);
      break;
    }
    case PlanStmt::Kind::SpecLookup:
    case PlanStmt::Kind::SpecScan: {
      if (Shrinking)
        Err(Where + "read after unlock violates two-phase structure");
      const auto &E = D.edge(St.Edge);
      VarState &In = Vars[St.InVar];
      if (!In.Defined)
        Err(Where + "speculative read consumes undefined variable");
      if (!LP.edgePlacement(St.Edge).Speculative)
        Err(Where + "speculative read of non-speculative edge " +
            EdgeName(St.Edge));
      if (!((In.BoundNodes >> E.Src) & 1))
        Err(Where + "edge " + EdgeName(St.Edge) + " source not bound");
      if (St.K == PlanStmt::Kind::SpecLookup &&
          !In.BoundCols.containsAll(E.Cols))
        Err(Where + "speculative lookup requires bound key columns");
      if (St.K == PlanStmt::Kind::SpecScan &&
          !Covers(St.Edge, In.BoundCols, St.Mode))
        Err(Where + "speculative scan requires the all-stripes host lock");
      VarState &OutV = Vars[St.OutVar];
      OutV.Defined = true;
      OutV.BoundCols = In.BoundCols | E.Cols;
      OutV.BoundNodes = In.BoundNodes | (1ULL << E.Dst);
      break;
    }
    case PlanStmt::Kind::Probe: {
      if (Shrinking)
        Err(Where + "read after unlock violates two-phase structure");
      const auto &E = D.edge(St.Edge);
      VarState &In = Vars[St.InVar];
      if (!In.Defined)
        Err(Where + "probe consumes undefined variable");
      if (!((In.BoundNodes >> E.Src) & 1))
        Err(Where + "probe of " + EdgeName(St.Edge) + " source never bound");
      if (!In.BoundCols.containsAll(E.Cols))
        Err(Where + "probe of " + EdgeName(St.Edge) +
            " requires bound key columns");
      if (!Covers(St.Edge, In.BoundCols, LockMode::Exclusive))
        Err(Where + "probe of " + EdgeName(St.Edge) +
            " not covered by an exclusive host lock");
      VarState &OutV = Vars[St.OutVar];
      OutV.Defined = true;
      OutV.BoundCols = In.BoundCols | E.Cols;
      OutV.BoundNodes = In.BoundNodes | (1ULL << E.Dst);
      break;
    }
    case PlanStmt::Kind::Restrict: {
      VarState &In = Vars[St.InVar];
      if (!In.Defined)
        Err(Where + "restrict consumes undefined variable");
      if (!In.BoundCols.containsAll(St.Cols))
        Err(Where + "restrict to columns not bound in input states");
      VarState &OutV = Vars[St.OutVar];
      OutV.Defined = true;
      OutV.BoundCols = St.Cols;
      OutV.BoundNodes = 1ULL << D.root();
      break;
    }
    case PlanStmt::Kind::GuardAbsent:
      if (!Vars[St.InVar].Defined)
        Err(Where + "guard consumes undefined variable");
      if (Shrinking)
        Err(Where + "guard after unlock violates two-phase structure");
      GuardSeen = true;
      ++GuardCount;
      break;
    case PlanStmt::Kind::CreateNode: {
      VarState &In = Vars[St.InVar];
      if (!In.Defined)
        Err(Where + "create consumes undefined variable");
      if (St.Node == D.root())
        Err(Where + "create of the root node");
      if (!In.BoundCols.containsAll(D.node(St.Node).KeyCols))
        Err(Where + "create of " + NodeName(St.Node) +
            " with unbound key columns");
      // The §4.5 pre-publication lock is taken through the try path,
      // exempt from the global-order discipline: the fresh instance is
      // unreachable, so the acquisition cannot block or deadlock.
      CreatedNodes.insert(St.Node);
      VarState &OutV = Vars[St.OutVar];
      OutV.Defined = true;
      OutV.BoundCols = In.BoundCols;
      OutV.BoundNodes = In.BoundNodes | (1ULL << St.Node);
      break;
    }
    case PlanStmt::Kind::InsertEdge: {
      const auto &E = D.edge(St.Edge);
      VarState &In = Vars[St.InVar];
      if (!In.Defined)
        Err(Where + "insert-entry consumes undefined variable");
      if (!((In.BoundNodes >> E.Src) & 1) || !((In.BoundNodes >> E.Dst) & 1))
        Err(Where + "insert-entry on " + EdgeName(St.Edge) +
            " with unbound endpoints");
      if (!In.BoundCols.containsAll(E.Cols))
        Err(Where + "insert-entry on " + EdgeName(St.Edge) +
            " with unbound key columns");
      if (!Covers(St.Edge, In.BoundCols, LockMode::Exclusive))
        Err(Where + "insert-entry on " + EdgeName(St.Edge) +
            " not covered by an exclusive host lock");
      InsertedEdges.insert(St.Edge);
      break;
    }
    case PlanStmt::Kind::EraseEdge: {
      const auto &E = D.edge(St.Edge);
      VarState &In = Vars[St.InVar];
      if (!In.Defined)
        Err(Where + "erase-entry consumes undefined variable");
      if (!((In.BoundNodes >> E.Src) & 1) || !((In.BoundNodes >> E.Dst) & 1))
        Err(Where + "erase-entry on " + EdgeName(St.Edge) +
            " with unbound endpoints");
      if (!In.BoundCols.containsAll(E.Cols))
        Err(Where + "erase-entry on " + EdgeName(St.Edge) +
            " with unbound key columns");
      if (!Covers(St.Edge, In.BoundCols, LockMode::Exclusive))
        Err(Where + "erase-entry on " + EdgeName(St.Edge) +
            " not covered by an exclusive host lock");
      ErasedEdges.insert(St.Edge);
      break;
    }
    case PlanStmt::Kind::UpdateCount:
      if (!Vars[St.InVar].Defined)
        Err(Where + "count adjustment consumes undefined variable");
      if (St.Delta == 0)
        Err(Where + "count adjustment of zero");
      CountDelta += St.Delta;
      ++CountStmts;
      break;
    case PlanStmt::Kind::MirrorWrite:
      // The two-phase / post-guard / mutation-only rules are enforced
      // by the generic write-statement checks above; here: the gating
      // variable must exist, and the replayed operation's dom(s) must
      // be bound by the plan input (the replay re-executes over it).
      if (!Vars[St.InVar].Defined)
        Err(Where + "mirror-write consumes undefined variable");
      if (!P.InputCols.containsAll(P.DomS))
        Err(Where + "mirror-write dom(s) not bound by the plan input");
      ++MirrorStmts;
      break;
    }
  }

  // A dual-write epilogue replays the committed operation exactly once,
  // and only forward mutations have one: queries stay on the source
  // representation until a migration's final swap, and undo plans
  // replay from a transaction's abort path — transactional mirroring
  // is buffered at commit and discarded on abort, so an inverse plan
  // must never carry its own epilogue.
  if (MirrorStmts > 1)
    Err("plan has more than one mirror-write epilogue");
  if (MirrorStmts != 0 && P.Op != PlanOp::Insert && P.Op != PlanOp::Remove) {
    if (P.Op == PlanOp::UndoInsert || P.Op == PlanOp::UndoRemove)
      Err("undo plan carries a mirror-write epilogue");
    else
      Err("mirror-write in a non-mutation plan");
  }

  // Per-operation completeness: a mutation plan must write every edge it
  // is responsible for, or the paths of the decomposition would diverge
  // on the represented relation. The undo kinds are held to the exact
  // rules of the operations they invert.
  switch (P.Op) {
  case PlanOp::Query:
  case PlanOp::RemoveLocate:
  case PlanOp::QueryForUpdate:
    break;
  case PlanOp::Insert:
  case PlanOp::UndoRemove: {
    if (GuardCount != 1)
      Err("insert plan needs exactly one put-if-absent guard");
    if (CountStmts != 1 || CountDelta != 1)
      Err("insert plan must adjust the count by exactly +1");
    if (!ErasedEdges.empty())
      Err("insert plan erases entries");
    for (NodeId N = 0; N < D.numNodes(); ++N)
      if (N != D.root() && !CreatedNodes.count(N))
        Err("insert plan never creates node " + NodeName(N));
    for (EdgeId E = 0; E < D.numEdges(); ++E)
      if (!InsertedEdges.count(E))
        Err("insert plan never writes edge " + EdgeName(E));
    break;
  }
  case PlanOp::Remove:
  case PlanOp::UndoInsert: {
    if (GuardCount != 0)
      Err("remove plan has a put-if-absent guard");
    if (CountStmts != 1 || CountDelta != -1)
      Err("remove plan must adjust the count by exactly -1");
    if (!InsertedEdges.empty() || !CreatedNodes.empty())
      Err("remove plan creates instances or entries");
    for (EdgeId E = 0; E < D.numEdges(); ++E)
      if (!ErasedEdges.count(E))
        Err("remove plan never erases edge " + EdgeName(E));
    break;
  }
  }

  // The §4.5 writer protocol: a mutation touching a speculative edge
  // must hold the present-target lock (stripe 0 of the target instance,
  // or all of its stripes) so concurrent guessing readers either see
  // the committed state or restart.
  if (P.Op == PlanOp::Insert || P.Op == PlanOp::Remove ||
      P.Op == PlanOp::RemoveLocate || P.Op == PlanOp::UndoInsert ||
      P.Op == PlanOp::UndoRemove) {
    for (const auto &E : D.edges()) {
      if (!LP.edgePlacement(E.Id).Speculative)
        continue;
      auto It = Held.find(E.Dst);
      if (It == Held.end() ||
          !(It->second.FirstStripe || It->second.AllStripes))
        Err("mutation plan never takes the present-target lock of "
            "speculative edge " +
            EdgeName(E.Id));
    }
  }

  // Epoch-eligibility soundness: a plan claiming the wait-free read
  // path must be a pure query (no write statements, shared locks only —
  // the statements it will *skip* under an epoch guard) and every edge
  // it reads must be backed by a concurrency-safe container, since the
  // container's own synchronization is all that remains once the plan's
  // locks are elided.
  if (P.EpochEligible) {
    if (P.Op != PlanOp::Query)
      Err("epoch-eligible flag on a non-query plan");
    if (P.ForMutation)
      Err("epoch-eligible flag on a mutation-mode plan");
    for (const PlanStmt &St : P.Stmts) {
      if (IsWrite(St.K))
        Err("epoch-eligible plan contains a write statement");
      if (St.K == PlanStmt::Kind::Lock && St.Mode == LockMode::Exclusive)
        Err("epoch-eligible plan takes an exclusive lock");
      switch (St.K) {
      case PlanStmt::Kind::Lookup:
      case PlanStmt::Kind::Scan:
      case PlanStmt::Kind::SpecLookup:
      case PlanStmt::Kind::SpecScan:
      case PlanStmt::Kind::Probe:
        if (!containerTraits(D.edge(St.Edge).Kind).concurrencySafe())
          Err("epoch-eligible plan reads edge " + EdgeName(St.Edge) +
              " through a container that is not concurrency-safe");
        break;
      default:
        break;
      }
    }
  }

  const VarState &Res = Vars[P.ResultVar];
  if (!Res.Defined) {
    Err("plan result variable is undefined");
    return R;
  }
  if (!Res.BoundCols.containsAll(P.OutputCols | P.InputCols))
    Err("plan result does not bind the requested output columns");
  // Soundness of the result: one bound node must witness the full
  // combination of input and output columns; column values confirmed on
  // disconnected branches do not certify a tuple of the relation.
  ColumnSet Needed = P.OutputCols | P.InputCols;
  bool Witnessed = false;
  for (NodeId N = 0; N < D.numNodes(); ++N)
    if (((Res.BoundNodes >> N) & 1) && D.node(N).KeyCols.containsAll(Needed))
      Witnessed = true;
  if (!Witnessed)
    Err("no bound node witnesses the full output combination");
  return R;
}
