//===- plan/PlanValidity.cpp - Static plan validity checking ------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "plan/PlanValidity.h"

#include "support/Compiler.h"

#include <map>

using namespace crs;

namespace {

/// Symbolic per-variable state: which columns and nodes are bound in
/// the states the variable may hold.
struct VarState {
  ColumnSet BoundCols;
  uint64_t BoundNodes = 0; // bitmask over NodeId
  bool Defined = false;
};

/// What the symbolic executor knows about one locked node.
struct HeldLock {
  LockMode Mode;
  bool AllStripes;
  ColumnSet StripeColsUnion; // union of by-column selectors taken
};

} // namespace

ValidationResult crs::checkPlanValidity(const Plan &P) {
  ValidationResult R;
  auto Err = [&](std::string Msg) { R.Errors.push_back(std::move(Msg)); };
  if (!P.Decomp || !P.Placement) {
    Err("plan lacks decomposition or placement");
    return R;
  }
  const Decomposition &D = *P.Decomp;
  const LockPlacement &LP = *P.Placement;
  std::vector<uint32_t> Topo = D.topologicalIndex();

  std::vector<VarState> Vars(P.NumVars);
  Vars[0].Defined = true;
  Vars[0].BoundCols = P.InputCols;
  Vars[0].BoundNodes = 1ULL << D.root();

  std::map<NodeId, HeldLock> Held;
  bool Shrinking = false;
  int LastLockTopo = -1;

  auto NodeName = [&](NodeId N) { return D.node(N).Name; };
  auto EdgeName = [&](EdgeId E) {
    return NodeName(D.edge(E).Src) + "->" + NodeName(D.edge(E).Dst);
  };

  /// True if the held lock on the host covers reads/writes of edge E for
  /// states with \p Bound columns in mode \p Need.
  auto Covers = [&](EdgeId E, ColumnSet Bound, LockMode Need) {
    const EdgePlacement &EP = LP.edgePlacement(E);
    auto It = Held.find(EP.Host);
    if (It == Held.end())
      return false;
    const HeldLock &H = It->second;
    if (Need == LockMode::Exclusive && H.Mode != LockMode::Exclusive)
      return false;
    if (LP.nodeStripes(EP.Host) <= 1)
      return true;
    if (H.AllStripes)
      return true;
    // A by-columns selector covers both lookups and scan-joins: the
    // logically-read entries agree with the state on the (bound) stripe
    // columns, so they share the selected stripe.
    return H.StripeColsUnion.containsAll(EP.StripeCols) &&
           Bound.containsAll(EP.StripeCols);
  };

  unsigned Idx = 0;
  for (const PlanStmt &St : P.Stmts) {
    std::string Where = "stmt " + std::to_string(Idx++) + ": ";
    switch (St.K) {
    case PlanStmt::Kind::Lock: {
      if (Shrinking)
        Err(Where + "lock after unlock violates two-phase structure");
      if (!Vars[St.InVar].Defined)
        Err(Where + "lock consumes undefined variable");
      if (!((Vars[St.InVar].BoundNodes >> St.Node) & 1))
        Err(Where + "lock of node " + NodeName(St.Node) +
            " not bound in input states");
      int T = static_cast<int>(Topo[St.Node]);
      if (T < LastLockTopo)
        Err(Where + "lock of " + NodeName(St.Node) +
            " violates topological lock order");
      LastLockTopo = T;
      HeldLock &H = Held[St.Node];
      H.Mode = St.Mode;
      for (const StripeSel &Sel : St.Sels) {
        if (Sel.AllStripes) {
          H.AllStripes = true;
        } else {
          if (!Vars[St.InVar].BoundCols.containsAll(Sel.Cols))
            Err(Where + "stripe selector columns not bound at lock time");
          H.StripeColsUnion |= Sel.Cols;
        }
      }
      break;
    }
    case PlanStmt::Kind::Unlock:
      Shrinking = true;
      break;
    case PlanStmt::Kind::Lookup:
    case PlanStmt::Kind::Scan: {
      if (Shrinking)
        Err(Where + "read after unlock violates two-phase structure");
      const auto &E = D.edge(St.Edge);
      VarState &In = Vars[St.InVar];
      if (!In.Defined)
        Err(Where + "read consumes undefined variable");
      if (!((In.BoundNodes >> E.Src) & 1))
        Err(Where + "edge " + EdgeName(St.Edge) + " source not bound");
      if (St.K == PlanStmt::Kind::Lookup && !In.BoundCols.containsAll(E.Cols))
        Err(Where + "lookup on " + EdgeName(St.Edge) +
            " requires bound key columns");
      if (LP.edgePlacement(St.Edge).Speculative) {
        // Reads of speculative edges in plain Lookup/Scan form are only
        // valid under the mutation protocol: exclusive host lock held
        // (which pins present entries), with the target locked by a
        // subsequent Lock statement.
        if (!Covers(St.Edge, In.BoundCols, LockMode::Exclusive))
          Err(Where + "read of speculative edge " + EdgeName(St.Edge) +
              " without exclusive host lock");
      } else if (!Covers(St.Edge, In.BoundCols,
                         P.ForMutation ? LockMode::Exclusive
                                       : LockMode::Shared)) {
        Err(Where + "read of edge " + EdgeName(St.Edge) +
            " is not covered by its placed lock");
      }
      VarState &OutV = Vars[St.OutVar];
      OutV.Defined = true;
      OutV.BoundCols = In.BoundCols | E.Cols;
      OutV.BoundNodes = In.BoundNodes | (1ULL << E.Dst);
      break;
    }
    case PlanStmt::Kind::SpecLookup:
    case PlanStmt::Kind::SpecScan: {
      if (Shrinking)
        Err(Where + "read after unlock violates two-phase structure");
      const auto &E = D.edge(St.Edge);
      VarState &In = Vars[St.InVar];
      if (!In.Defined)
        Err(Where + "speculative read consumes undefined variable");
      if (!LP.edgePlacement(St.Edge).Speculative)
        Err(Where + "speculative read of non-speculative edge " +
            EdgeName(St.Edge));
      if (!((In.BoundNodes >> E.Src) & 1))
        Err(Where + "edge " + EdgeName(St.Edge) + " source not bound");
      if (St.K == PlanStmt::Kind::SpecLookup &&
          !In.BoundCols.containsAll(E.Cols))
        Err(Where + "speculative lookup requires bound key columns");
      if (St.K == PlanStmt::Kind::SpecScan &&
          !Covers(St.Edge, In.BoundCols, St.Mode))
        Err(Where + "speculative scan requires the all-stripes host lock");
      VarState &OutV = Vars[St.OutVar];
      OutV.Defined = true;
      OutV.BoundCols = In.BoundCols | E.Cols;
      OutV.BoundNodes = In.BoundNodes | (1ULL << E.Dst);
      break;
    }
    }
  }

  const VarState &Res = Vars[P.ResultVar];
  if (!Res.Defined) {
    Err("plan result variable is undefined");
    return R;
  }
  if (!Res.BoundCols.containsAll(P.OutputCols | P.InputCols))
    Err("plan result does not bind the requested output columns");
  // Soundness of the result: one bound node must witness the full
  // combination of input and output columns; column values confirmed on
  // disconnected branches do not certify a tuple of the relation.
  ColumnSet Needed = P.OutputCols | P.InputCols;
  bool Witnessed = false;
  for (NodeId N = 0; N < D.numNodes(); ++N)
    if (((Res.BoundNodes >> N) & 1) && D.node(N).KeyCols.containsAll(Needed))
      Witnessed = true;
  if (!Witnessed)
    Err("no bound node witnesses the full output combination");
  return R;
}
