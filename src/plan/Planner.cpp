//===- plan/Planner.cpp - The concurrent query planner ------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "plan/Planner.h"

#include "plan/PlanValidity.h"
#include "support/Compiler.h"

#include <algorithm>

using namespace crs;

QueryPlanner::QueryPlanner(const Decomposition &D, const LockPlacement &P,
                           CostParams CP)
    : Decomp(&D), Placement(&P), Params(CP), TopoIdx(D.topologicalIndex()) {}

std::optional<Plan> QueryPlanner::buildPlan(const std::vector<EdgeId> &Seq,
                                            ColumnSet DomS,
                                            ColumnSet OutputCols,
                                            bool ForMutation) const {
  const Decomposition &D = *Decomp;
  const LockPlacement &LP = *Placement;
  const LockMode Mode = ForMutation ? LockMode::Exclusive : LockMode::Shared;

  Plan P;
  P.Decomp = Decomp;
  P.Placement = Placement;
  P.InputCols = DomS;
  P.BindSlots = DomS.members();
  P.OutputCols = OutputCols;
  P.DomS = DomS;
  P.ForMutation = ForMutation;

  PlanVar CurVar = 0;
  ColumnSet Bound = DomS;
  std::vector<bool> HostLocked(D.numNodes(), false);
  int LastLockTopo = -1;
  std::vector<NodeId> LockedOrder; // for cosmetic unlocks

  // Sort-elision analysis (§5.2): the lock operator must sort node
  // instances into lock order, unless the plan provably produces states
  // already in that order. States are in order while the state set is a
  // singleton (lookups only), and stay in order after ONE scan of a
  // container with sorted iteration — the varying columns are then
  // exactly that edge's columns, compared identically by tuple order
  // and by the container. A second scan interleaves and loses it.
  bool SingleState = true;   // current var holds at most one state
  bool TuplesSorted = true;  // states are in tuple (lock) order
  ColumnSet VaryingCols;     // columns that differ across states

  // Position of each edge in the traversal, for host-lock lookahead.
  std::vector<int> Position(D.numEdges(), -1);
  for (unsigned I = 0; I < Seq.size(); ++I)
    Position[Seq[I]] = static_cast<int>(I);

  // Emits the Lock statement for host \p H (if not yet emitted),
  // covering every traversed edge hosted at H. Returns false on a lock
  // order violation (caller rejects the traversal order).
  auto EmitHostLock = [&](NodeId H) -> bool {
    if (HostLocked[H])
      return true;
    int T = static_cast<int>(TopoIdx[H]);
    if (T < LastLockTopo)
      return false;
    PlanStmt L;
    L.K = PlanStmt::Kind::Lock;
    L.InVar = CurVar;
    L.Node = H;
    L.Mode = Mode;
    // The instance keys of H project away columns outside A(H); order
    // is preserved iff every varying column survives the projection.
    L.SortElided = SingleState ||
                   (TuplesSorted && D.node(H).KeyCols.containsAll(VaryingCols));
    // Lookahead: one selector per traversed non-speculative edge hosted
    // at H (speculative edges lock their absent-case host only under
    // the mutation protocol).
    for (EdgeId E : Seq) {
      const EdgePlacement &EP = LP.edgePlacement(E);
      if (EP.Host != H)
        continue;
      if (EP.Speculative && !ForMutation)
        continue;
      // A by-columns selector is sound whenever the stripe columns are
      // bound when the lock is taken: the logically-read set of any
      // later lookup or scan-join on this edge only contains entries
      // agreeing with the query state on bound columns, so they all map
      // to the selected stripe.
      StripeSel Sel = StripeSel::all();
      if (LP.nodeStripes(H) <= 1)
        Sel = StripeSel::byCols(ColumnSet::empty());
      else if (Bound.containsAll(EP.StripeCols))
        Sel = StripeSel::byCols(EP.StripeCols);
      if (std::find(L.Sels.begin(), L.Sels.end(), Sel) == L.Sels.end())
        L.Sels.push_back(Sel);
    }
    if (L.Sels.empty())
      L.Sels.push_back(StripeSel::byCols(ColumnSet::empty()));
    P.Stmts.push_back(std::move(L));
    HostLocked[H] = true;
    LastLockTopo = T;
    LockedOrder.push_back(H);
    return true;
  };

  for (EdgeId E : Seq) {
    const auto &Edge = D.edge(E);
    const EdgePlacement &EP = LP.edgePlacement(E);
    bool KeyBound = Bound.containsAll(Edge.Cols);

    if (EP.Speculative && !ForMutation) {
      // Reader protocol (§4.5): fused guess-verify statements.
      if (KeyBound) {
        PlanStmt S;
        S.K = PlanStmt::Kind::SpecLookup;
        S.InVar = CurVar;
        S.OutVar = P.NumVars++;
        S.Edge = E;
        S.Mode = Mode;
        P.Stmts.push_back(S);
        CurVar = S.OutVar;
      } else {
        TuplesSorted = SingleState && containerTraits(Edge.Kind).SortedScan;
        SingleState = false;
        VaryingCols |= Edge.Cols;
        // Scanning a speculative edge requires the all-stripes lock on
        // the absent-case host first (pins the container), then the
        // per-entry target locks are taken during the scan.
        if (HostLocked[EP.Host]) {
          // The host lock was emitted for other edges and may not cover
          // all stripes; reject (rare) rather than retrofit.
          return std::nullopt;
        }
        int T = static_cast<int>(TopoIdx[EP.Host]);
        if (T < LastLockTopo)
          return std::nullopt;
        PlanStmt L;
        L.K = PlanStmt::Kind::Lock;
        L.InVar = CurVar;
        L.Node = EP.Host;
        L.Mode = Mode;
        L.Sels.push_back(StripeSel::all());
        P.Stmts.push_back(L);
        HostLocked[EP.Host] = true;
        LastLockTopo = T;
        LockedOrder.push_back(EP.Host);
        PlanStmt S;
        S.K = PlanStmt::Kind::SpecScan;
        S.InVar = CurVar;
        S.OutVar = P.NumVars++;
        S.Edge = E;
        S.Mode = Mode;
        P.Stmts.push_back(S);
        CurVar = S.OutVar;
      }
    } else {
      // Ordinary (or mutation-protocol speculative) edge: host lock,
      // then lookup or scan.
      if (!EmitHostLock(EP.Host))
        return std::nullopt;
      PlanStmt S;
      S.K = KeyBound ? PlanStmt::Kind::Lookup : PlanStmt::Kind::Scan;
      S.InVar = CurVar;
      S.OutVar = P.NumVars++;
      S.Edge = E;
      P.Stmts.push_back(S);
      CurVar = S.OutVar;
      if (!KeyBound) {
        // A scan fans out: one sorted scan of a single state keeps the
        // states in tuple order; anything further loses it.
        TuplesSorted = SingleState && containerTraits(Edge.Kind).SortedScan;
        SingleState = false;
        VaryingCols |= Edge.Cols;
      }

      if (EP.Speculative && ForMutation) {
        // Mutation protocol (§4.5): with the absent-case host stripe
        // held exclusively, present entries are pinned; lock the bound
        // targets (deeper in the order, so blocking is safe).
        int T = static_cast<int>(TopoIdx[Edge.Dst]);
        if (T < LastLockTopo)
          return std::nullopt;
        PlanStmt L;
        L.K = PlanStmt::Kind::Lock;
        L.InVar = CurVar;
        L.Node = Edge.Dst;
        L.Mode = LockMode::Exclusive;
        L.Sels.push_back(StripeSel::all());
        P.Stmts.push_back(L);
        HostLocked[Edge.Dst] = true;
        LastLockTopo = T;
        LockedOrder.push_back(Edge.Dst);
      }
    }
    Bound |= Edge.Cols;
  }

  // Shrinking phase (cosmetic: the executor releases in bulk).
  for (auto It = LockedOrder.rbegin(); It != LockedOrder.rend(); ++It) {
    PlanStmt U;
    U.K = PlanStmt::Kind::Unlock;
    U.InVar = CurVar;
    U.Node = *It;
    P.Stmts.push_back(U);
  }
  P.ResultVar = CurVar;

  // Epoch-eligibility (wait-free read fast path): a shared-mode query
  // plan qualifies when every traversed edge's container tolerates
  // unlocked concurrent readers (§6.1 traits). Speculative statements
  // degrade gracefully — their unlocked guess *is* the read once no
  // lock is taken — so eligibility is placement-independent: only the
  // container kinds on the traversal matter.
  if (!ForMutation) {
    P.EpochEligible = true;
    for (EdgeId E : Seq) {
      const auto &Edge = D.edge(E);
      if (!containerTraits(Edge.Kind).concurrencySafe()) {
        P.EpochEligible = false;
        P.EpochNote = "edge " + D.node(Edge.Src).Name + "->" +
                      D.node(Edge.Dst).Name + " [" +
                      containerKindName(Edge.Kind) +
                      "] is not concurrency-safe";
        break;
      }
    }
    if (P.EpochEligible)
      P.EpochNote = Seq.empty()
                        ? "trivial traversal"
                        : "read-only over concurrency-safe containers";
  } else {
    P.EpochNote = "locks exclusively (mutation or for-update)";
  }

  assert(checkPlanValidity(P).ok() && "planner emitted an invalid plan");
  return P;
}

void QueryPlanner::enumerateSeqs(ColumnSet Confirmed, ColumnSet Target,
                                 uint64_t BoundNodes, uint64_t UsedEdges,
                                 std::vector<EdgeId> &Seq,
                                 std::vector<std::vector<EdgeId>> &Out) const {
  const Decomposition &D = *Decomp;
  // Sound termination: some *single* bound node must witness the whole
  // target combination (its key columns cover dom(s) ∪ C). Confirming
  // each column on a different branch would fabricate combinations that
  // are not in the relation (the join fallacy).
  for (NodeId N = 0; N < D.numNodes(); ++N)
    if (((BoundNodes >> N) & 1) && D.node(N).KeyCols.containsAll(Target)) {
      Out.push_back(Seq);
      return;
    }
  for (const auto &E : D.edges()) {
    if ((UsedEdges >> E.Id) & 1)
      continue;
    if (!((BoundNodes >> E.Src) & 1))
      continue;
    // Prune edges that bind no new node: re-traversing cannot help.
    if ((BoundNodes >> E.Dst) & 1)
      continue;
    Seq.push_back(E.Id);
    enumerateSeqs(Confirmed | E.Cols, Target, BoundNodes | (1ULL << E.Dst),
                  UsedEdges | (1ULL << E.Id), Seq, Out);
    Seq.pop_back();
  }
}

std::vector<Plan> QueryPlanner::enumerateQueryPlans(ColumnSet DomS,
                                                    ColumnSet C) const {
  // Every column of dom(s) and C must be *confirmed* by a traversed edge
  // (presence of the input key columns is an observation too — this is
  // what makes membership queries sound).
  ColumnSet Target = DomS | C;
  std::vector<std::vector<EdgeId>> Seqs;
  std::vector<EdgeId> Scratch;
  enumerateSeqs(ColumnSet::empty(), Target, 1ULL << Decomp->root(), 0,
                Scratch, Seqs);
  std::vector<Plan> Plans;
  for (const auto &Seq : Seqs)
    if (auto P = buildPlan(Seq, DomS, C, /*ForMutation=*/false))
      Plans.push_back(std::move(*P));
  return Plans;
}

Plan QueryPlanner::planQuery(ColumnSet DomS, ColumnSet C) const {
  std::vector<Plan> Plans = enumerateQueryPlans(DomS, C);
  assert(!Plans.empty() && "no valid query plan exists");
  const Plan *Best = &Plans[0];
  double BestCost = estimatePlanCost(Plans[0], Params);
  for (size_t I = 1; I < Plans.size(); ++I) {
    double Cost = estimatePlanCost(Plans[I], Params);
    if (Cost < BestCost ||
        (Cost == BestCost && Plans[I].Stmts.size() < Best->Stmts.size())) {
      Best = &Plans[I];
      BestCost = Cost;
    }
  }
  return *Best;
}

/// Builds the Lock statement a mutation plan takes at node \p N: one
/// selector per edge hosted there — a single by-columns stripe when
/// \p SingleStripeOk accepts the edge, all stripes otherwise — plus
/// \p SpecSel for the §4.5 present-target duty of speculative incoming
/// edges. Returns false when nothing is placed at \p N (no statement
/// to emit). The caller sets InVar.
template <typename Pred>
static bool buildMutationLock(const Decomposition &D, const LockPlacement &LP,
                              NodeId N, const Pred &SingleStripeOk,
                              StripeSel SpecSel, PlanStmt &L) {
  L = PlanStmt();
  L.K = PlanStmt::Kind::Lock;
  L.Node = N;
  L.Mode = LockMode::Exclusive;
  for (const auto &Edge : D.edges()) {
    const EdgePlacement &EP = LP.edgePlacement(Edge.Id);
    if (EP.Host != N)
      continue;
    StripeSel Sel = StripeSel::all();
    if (LP.nodeStripes(N) <= 1)
      Sel = StripeSel::byCols(ColumnSet::empty());
    else if (SingleStripeOk(Edge))
      Sel = StripeSel::byCols(EP.StripeCols);
    if (std::find(L.Sels.begin(), L.Sels.end(), Sel) == L.Sels.end())
      L.Sels.push_back(Sel);
  }
  for (EdgeId E : D.node(N).InEdges)
    if (LP.edgePlacement(E).Speculative &&
        std::find(L.Sels.begin(), L.Sels.end(), SpecSel) == L.Sels.end())
      L.Sels.push_back(SpecSel);
  return !L.Sels.empty();
}

Plan QueryPlanner::planRemoveLocate(ColumnSet DomS) const {
  // Mutation locate plans visit every node in topological order: read
  // the node's incoming edges (their hosts are dominators, so their
  // locks were emitted at earlier nodes), then emit one Lock statement
  // for the node covering (a) every edge hosted there and (b) the
  // present-target duty for speculative incoming edges (§4.5 writer
  // protocol: with the absent-case host stripe held exclusively,
  // entries are pinned, so the target lock may be taken at the target's
  // own topological position). This keeps all Lock statements in the
  // global order by construction, for any decomposition shape.
  const Decomposition &D = *Decomp;
  const LockPlacement &LP = *Placement;

  Plan P;
  P.Decomp = Decomp;
  P.Placement = Placement;
  P.InputCols = DomS;
  P.BindSlots = DomS.members();
  P.OutputCols = D.spec().allColumns();
  P.DomS = DomS;
  P.Op = PlanOp::RemoveLocate;
  P.ForMutation = true;

  PlanVar CurVar = 0;
  ColumnSet Bound = DomS;
  std::vector<NodeId> LockedOrder;

  for (NodeId N : D.topologicalOrder()) {
    // (a) Read every incoming edge (binds instances of N and joins in
    // the edge columns). Hosts of these edges dominate their sources,
    // so their Lock statements were emitted at earlier nodes.
    for (EdgeId E : D.node(N).InEdges) {
      PlanStmt S;
      S.K = Bound.containsAll(D.edge(E).Cols) ? PlanStmt::Kind::Lookup
                                              : PlanStmt::Kind::Scan;
      S.InVar = CurVar;
      S.OutVar = P.NumVars++;
      S.Edge = E;
      P.Stmts.push_back(S);
      CurVar = S.OutVar;
      Bound |= D.edge(E).Cols;
    }

    // (b) One Lock statement for this node: hosted-edge stripes (single
    // stripe when dom(s) binds the stripe columns) plus the speculative
    // present-target lock (conservatively all stripes here — the locate
    // traversal reads the target's entries too).
    PlanStmt L;
    if (!buildMutationLock(
            D, LP, N,
            [&](const Decomposition::Edge &Edge) {
              return DomS.containsAll(LP.edgePlacement(Edge.Id).StripeCols);
            },
            StripeSel::all(), L))
      continue; // nothing placed at this node
    L.InVar = CurVar;
    P.Stmts.push_back(std::move(L));
    LockedOrder.push_back(N);
  }

  for (auto It = LockedOrder.rbegin(); It != LockedOrder.rend(); ++It) {
    PlanStmt U;
    U.K = PlanStmt::Kind::Unlock;
    U.InVar = CurVar;
    U.Node = *It;
    P.Stmts.push_back(U);
  }
  P.ResultVar = CurVar;

  assert(checkPlanValidity(P).ok() && "mutation plan must be valid");
  return P;
}

Plan QueryPlanner::planRemove(ColumnSet DomS) const {
  return planRemoveCore(DomS, EmitMirrorWrites);
}

Plan QueryPlanner::planRemoveCore(ColumnSet DomS, bool Mirror) const {
  // The locate traversal, with the write epilogue spliced in front of
  // the cosmetic unlocks: erase the matched tuple's entries bottom-up
  // (reverse topological order), cascading husk cleanup — a node
  // instance belongs exclusively to the tuple when its key columns form
  // a superkey; other instances are shared and their incoming entries
  // survive until they empty out. Then the count adjustment.
  const Decomposition &D = *Decomp;
  Plan P = planRemoveLocate(DomS);
  P.Op = PlanOp::Remove;

  std::vector<PlanStmt> Unlocks;
  while (!P.Stmts.empty() && P.Stmts.back().K == PlanStmt::Kind::Unlock) {
    Unlocks.push_back(P.Stmts.back());
    P.Stmts.pop_back();
  }
  std::reverse(Unlocks.begin(), Unlocks.end());

  std::vector<NodeId> Topo = D.topologicalOrder();
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
    NodeId N = *It;
    if (N == D.root())
      continue;
    bool Owned = D.spec().isKey(D.node(N).KeyCols);
    for (EdgeId E : D.node(N).InEdges) {
      PlanStmt S;
      S.K = PlanStmt::Kind::EraseEdge;
      S.InVar = P.ResultVar;
      S.Edge = E;
      S.OnlyIfHusk = !Owned;
      P.Stmts.push_back(std::move(S));
    }
  }
  PlanStmt C;
  C.K = PlanStmt::Kind::UpdateCount;
  C.InVar = P.ResultVar;
  C.Delta = -1;
  P.Stmts.push_back(C);
  // Dual-write epilogue (live migration): replay the committed remove
  // on the shadow representation while the exclusive source locks are
  // still held, so no operation can observe the representations
  // disagreeing. InVar gates the replay on the locate having matched.
  if (Mirror) {
    PlanStmt M;
    M.K = PlanStmt::Kind::MirrorWrite;
    M.InVar = P.ResultVar;
    P.Stmts.push_back(M);
  }
  for (PlanStmt &U : Unlocks)
    P.Stmts.push_back(std::move(U));

  assert(checkPlanValidity(P).ok() && "remove plan must be valid");
  return P;
}

Plan QueryPlanner::planInsert(ColumnSet DomS) const {
  return planInsertCore(DomS, EmitMirrorWrites);
}

Plan QueryPlanner::planInsertCore(ColumnSet DomS, bool Mirror) const {
  const Decomposition &D = *Decomp;
  const LockPlacement &LP = *Placement;
  ColumnSet All = D.spec().allColumns();

  Plan P;
  P.Decomp = Decomp;
  P.Placement = Placement;
  P.InputCols = All; // the plan executes over the full tuple s ∪ t
  P.BindSlots = All.members();
  P.OutputCols = All;
  P.DomS = DomS;
  P.Op = PlanOp::Insert;
  P.ForMutation = true;

  std::vector<NodeId> Topo = D.topologicalOrder();
  PlanVar CurVar = 0;
  std::vector<NodeId> LockedOrder;

  // Phase 1 (growing): resolve existing instances with the full tuple
  // (Probe: total lookups — absent subtrees stay unbound and are
  // created in phase 3) and acquire, exclusively and in the global
  // topological lock order, the stripes of every edge hosted at each
  // resolved instance, plus the §4.5 present-target lock for
  // speculative incoming edges.
  for (NodeId N : Topo) {
    for (EdgeId E : D.node(N).InEdges) {
      PlanStmt S;
      S.K = PlanStmt::Kind::Probe;
      S.InVar = CurVar;
      S.OutVar = P.NumVars++;
      S.Edge = E;
      P.Stmts.push_back(S);
      CurVar = S.OutVar;
    }
    // A single stripe (selected by the full tuple) covers a hosted edge
    // when every stripe column within the edge's own columns is fixed
    // by dom(s): the absence check's reads then stay on that stripe
    // (stripe columns within the source keys are pinned by the instance
    // itself). Otherwise all stripes, conservatively — the absence
    // check may scan entries of sibling tuples (§4.4). Speculative
    // in-edges need only stripe 0 of the (fully resolved) target.
    PlanStmt L;
    if (!buildMutationLock(
            D, LP, N,
            [&](const Decomposition::Edge &Edge) {
              return DomS.containsAll(
                  LP.edgePlacement(Edge.Id).StripeCols & Edge.Cols);
            },
            StripeSel::first(), L))
      continue; // nothing placed at this node
    L.InVar = CurVar;
    P.Stmts.push_back(std::move(L));
    LockedOrder.push_back(N);
  }

  // Phase 2: the put-if-absent membership check (§2), driven by s alone
  // — restart from the root with the input restricted to dom(s), then
  // confirm (or refute) a matching tuple across every edge.
  PlanStmt R;
  R.K = PlanStmt::Kind::Restrict;
  R.InVar = 0;
  R.OutVar = P.NumVars++;
  R.Cols = DomS;
  P.Stmts.push_back(R);
  PlanVar CheckVar = R.OutVar;
  ColumnSet Bound = DomS;
  for (NodeId N : Topo)
    for (EdgeId E : D.node(N).OutEdges) {
      PlanStmt S;
      S.K = Bound.containsAll(D.edge(E).Cols) ? PlanStmt::Kind::Lookup
                                              : PlanStmt::Kind::Scan;
      S.InVar = CheckVar;
      S.OutVar = P.NumVars++;
      S.Edge = E;
      P.Stmts.push_back(S);
      CheckVar = S.OutVar;
      Bound |= D.edge(E).Cols;
    }
  PlanStmt G;
  G.K = PlanStmt::Kind::GuardAbsent;
  G.InVar = CheckVar;
  P.Stmts.push_back(G);

  // Phase 3: create missing instances (top-down), then every entry,
  // unifying shared nodes through the single binding per state.
  for (NodeId N : Topo) {
    if (N == D.root())
      continue;
    PlanStmt C;
    C.K = PlanStmt::Kind::CreateNode;
    C.InVar = CurVar;
    C.OutVar = P.NumVars++;
    C.Node = N;
    P.Stmts.push_back(C);
    CurVar = C.OutVar;
  }
  for (NodeId N : Topo)
    for (EdgeId E : D.node(N).OutEdges) {
      PlanStmt W;
      W.K = PlanStmt::Kind::InsertEdge;
      W.InVar = CurVar;
      W.Edge = E;
      P.Stmts.push_back(W);
    }
  PlanStmt C;
  C.K = PlanStmt::Kind::UpdateCount;
  C.InVar = CurVar;
  C.Delta = 1;
  P.Stmts.push_back(C);
  // Dual-write epilogue (live migration): a GuardAbsent abort never
  // reaches this statement, so the replay runs exactly when the insert
  // won — the shadow's own put-if-absent makes it idempotent against
  // the backfill having copied the tuple first.
  if (Mirror) {
    PlanStmt M;
    M.K = PlanStmt::Kind::MirrorWrite;
    M.InVar = CurVar;
    P.Stmts.push_back(M);
  }

  for (auto It = LockedOrder.rbegin(); It != LockedOrder.rend(); ++It) {
    PlanStmt U;
    U.K = PlanStmt::Kind::Unlock;
    U.InVar = CurVar;
    U.Node = *It;
    P.Stmts.push_back(U);
  }
  P.ResultVar = CurVar;

  assert(checkPlanValidity(P).ok() && "insert plan must be valid");
  return P;
}

//===----------------------------------------------------------------------===//
// Transaction-support plans (src/txn)
//===----------------------------------------------------------------------===//

Plan QueryPlanner::planQueryForUpdate(ColumnSet DomS, ColumnSet C) const {
  // Same traversal enumeration as planQuery, built in mutation mode:
  // every lock exclusive, speculative edges on the §4.5 writer protocol
  // (plain lookup/scan under the exclusive absent-case host lock, then
  // the target locked at its own topological position), so the plan
  // never speculates — inside a transaction a restart must not be
  // triggered by a wrong guess, only by a lock conflict the scope can
  // act on.
  ColumnSet Target = DomS | C;
  std::vector<std::vector<EdgeId>> Seqs;
  std::vector<EdgeId> Scratch;
  enumerateSeqs(ColumnSet::empty(), Target, 1ULL << Decomp->root(), 0,
                Scratch, Seqs);
  std::optional<Plan> Best;
  double BestCost = 0.0;
  for (const auto &Seq : Seqs) {
    std::optional<Plan> P = buildPlan(Seq, DomS, C, /*ForMutation=*/true);
    if (!P)
      continue;
    double Cost = estimatePlanCost(*P, Params);
    if (!Best || Cost < BestCost ||
        (Cost == BestCost && P->Stmts.size() < Best->Stmts.size())) {
      Best = std::move(P);
      BestCost = Cost;
    }
  }
  // Some traversals reject the exclusive lock schedule (a speculative
  // scan whose host lock was already emitted narrower, say); when they
  // all do, the full locate walk of planRemoveLocate is valid for every
  // shape and covers any output columns.
  Plan P = Best ? std::move(*Best) : planRemoveLocate(DomS);
  P.Op = PlanOp::QueryForUpdate;
  P.OutputCols = Best ? C : Decomp->spec().allColumns();
  assert(checkPlanValidity(P).ok() && "for-update query plan must be valid");
  return P;
}

Plan QueryPlanner::planUndoInsert() const {
  // The compensating remove executes with the undo log's *full* tuple:
  // keyed on every column, each locate step is a lookup and each
  // hosted-edge stripe selector hashes bound columns, which keeps the
  // undo's acquisitions on the stripes the forward insert already
  // holds.
  Plan P = planRemoveCore(Decomp->spec().allColumns(), /*Mirror=*/false);
  P.Op = PlanOp::UndoInsert;
  // Narrow the §4.5 present-target duty from all stripes to stripe 0,
  // matching the forward insert's schedule exactly: with every column
  // bound, hosted-edge selectors are always by-columns, so any
  // remaining all-stripes selector is a present-target duty — and an
  // undo must never *need* a lock the scope might not already hold
  // (stripe 0 suffices for the writer protocol; the locate's reads are
  // covered by the by-columns selectors).
  for (PlanStmt &St : P.Stmts)
    if (St.K == PlanStmt::Kind::Lock)
      for (StripeSel &Sel : St.Sels)
        if (Sel.allStripes())
          Sel = StripeSel::first();
  assert(checkPlanValidity(P).ok() && "undo-insert plan must be valid");
  return P;
}

Plan QueryPlanner::planUndoRemove() const {
  // The compensating insert re-inserts the captured tuple with
  // dom(s) = all columns: the membership check degenerates to keyed
  // lookups of the tuple itself, and the guard passes because the
  // transaction's retained exclusive locks kept the key absent since
  // the forward remove committed.
  Plan P = planInsertCore(Decomp->spec().allColumns(), /*Mirror=*/false);
  P.Op = PlanOp::UndoRemove;
  assert(checkPlanValidity(P).ok() && "undo-remove plan must be valid");
  return P;
}
