//===- plan/PlanPrinter.cpp - Paper-style plan rendering ----------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "plan/QueryIR.h"

#include "support/Compiler.h"

using namespace crs;

static std::string varName(PlanVar V) {
  // a, b, c, ... like the paper's plans; wraps into v26, v27 if needed.
  if (V < 26)
    return std::string(1, static_cast<char>('a' + V));
  return "v" + std::to_string(V);
}

std::string Plan::str() const {
  assert(Decomp && "printing an empty plan");
  const Decomposition &D = *Decomp;
  std::string Out;
  // Plan identity header: the positional bind-slot layout prepared
  // handles bind into, and the recompilation epoch the plan was
  // stamped with.
  Out += "-- bind slots: [";
  for (size_t I = 0; I < BindSlots.size(); ++I)
    Out += (I ? ", " : "") + D.spec().catalog().name(BindSlots[I]);
  Out += "]  epoch " + std::to_string(Epoch) + "\n";
  // Wait-free read-path classification (query plans only): whether this
  // plan may run under an epoch guard with zero lock acquisitions, and
  // why (not).
  if (Op == PlanOp::Query) {
    Out += std::string("-- epoch-eligible: ") + (EpochEligible ? "yes" : "no");
    if (!EpochNote.empty())
      Out += " (" + EpochNote + ")";
    Out += "\n";
  }
  unsigned Line = 1;
  auto Emit = [&](const std::string &S) {
    Out += std::to_string(Line++) + ": " + S + "\n";
  };

  auto EdgeName = [&](EdgeId E) {
    return D.node(D.edge(E).Src).Name + "->" + D.node(D.edge(E).Dst).Name;
  };
  auto SelStr = [&](const std::vector<StripeSel> &Sels) {
    std::string S;
    for (const StripeSel &Sel : Sels) {
      if (!S.empty())
        S += ",";
      switch (Sel.M) {
      case StripeSel::Mode::All:
        S += "*";
        break;
      case StripeSel::Mode::ByCols:
        S += D.spec().catalog().str(Sel.Cols);
        break;
      case StripeSel::Mode::First:
        S += "#0"; // the §4.5 present-target stripe
        break;
      }
    }
    return S.empty() ? std::string("*") : S;
  };

  for (const PlanStmt &St : Stmts) {
    switch (St.K) {
    case PlanStmt::Kind::Lock:
      Emit("let _ = lock" +
           std::string(St.Mode == LockMode::Exclusive ? "!" : "") + "(" +
           varName(St.InVar) + ", " + D.node(St.Node).Name + " : " +
           SelStr(St.Sels) +
           std::string(St.SortElided ? ", presorted" : "") + ") in");
      break;
    case PlanStmt::Kind::Unlock:
      Emit("let _ = unlock(" + varName(St.InVar) + ", " +
           D.node(St.Node).Name + ") in");
      break;
    case PlanStmt::Kind::Lookup:
      Emit("let " + varName(St.OutVar) + " = lookup(" + varName(St.InVar) +
           ", " + EdgeName(St.Edge) + ") in");
      break;
    case PlanStmt::Kind::Scan:
      Emit("let " + varName(St.OutVar) + " = scan(" + varName(St.InVar) +
           ", " + EdgeName(St.Edge) + ") in");
      break;
    case PlanStmt::Kind::SpecLookup:
      Emit("let " + varName(St.OutVar) + " = spec-lookup" +
           std::string(St.Mode == LockMode::Exclusive ? "!" : "") + "(" +
           varName(St.InVar) + ", " + EdgeName(St.Edge) + ") in");
      break;
    case PlanStmt::Kind::SpecScan:
      Emit("let " + varName(St.OutVar) + " = spec-scan" +
           std::string(St.Mode == LockMode::Exclusive ? "!" : "") + "(" +
           varName(St.InVar) + ", " + EdgeName(St.Edge) + ") in");
      break;
    case PlanStmt::Kind::Probe:
      Emit("let " + varName(St.OutVar) + " = probe(" + varName(St.InVar) +
           ", " + EdgeName(St.Edge) + ") in");
      break;
    case PlanStmt::Kind::Restrict:
      Emit("let " + varName(St.OutVar) + " = restrict(" + varName(St.InVar) +
           ", " + D.spec().catalog().str(St.Cols) + ") in");
      break;
    case PlanStmt::Kind::GuardAbsent:
      Emit("let _ = guard-absent(" + varName(St.InVar) + ") in");
      break;
    case PlanStmt::Kind::CreateNode:
      Emit("let " + varName(St.OutVar) + " = create(" + varName(St.InVar) +
           ", " + D.node(St.Node).Name + ") in");
      break;
    case PlanStmt::Kind::InsertEdge:
      Emit("let _ = insert-entry(" + varName(St.InVar) + ", " +
           EdgeName(St.Edge) + ") in");
      break;
    case PlanStmt::Kind::EraseEdge:
      Emit("let _ = erase-entry(" + varName(St.InVar) + ", " +
           EdgeName(St.Edge) +
           std::string(St.OnlyIfHusk ? ", husk-only" : "") + ") in");
      break;
    case PlanStmt::Kind::UpdateCount:
      Emit("let _ = adjust-count(" + varName(St.InVar) + ", " +
           std::string(St.Delta > 0 ? "+" : "") + std::to_string(St.Delta) +
           ") in");
      break;
    case PlanStmt::Kind::MirrorWrite:
      Emit("let _ = mirror-write(" + varName(St.InVar) + ", " +
           std::string(Op == PlanOp::Insert ? "insert" : "remove") + " s=" +
           D.spec().catalog().str(DomS) + ") in");
      break;
    }
  }
  Emit(varName(ResultVar));
  return Out;
}

/// Header tag for the transactional explain transcript.
static const char *opTag(PlanOp Op) {
  switch (Op) {
  case PlanOp::Query:
    return "query";
  case PlanOp::RemoveLocate:
    return "remove-locate";
  case PlanOp::Remove:
    return "remove";
  case PlanOp::Insert:
    return "insert";
  case PlanOp::QueryForUpdate:
    return "query-for-update";
  case PlanOp::UndoInsert:
    return "undo-insert";
  case PlanOp::UndoRemove:
    return "undo-remove";
  }
  crs_unreachable("unknown plan op");
}

std::string crs::explainTxn(const Plan &Forward, const Plan &Inverse) {
  assert(Forward.Decomp && Inverse.Decomp && "explaining unbound plans");
  const ColumnCatalog &Cat = Forward.Decomp->spec().catalog();
  std::string Out;
  Out += "== forward: " + std::string(opTag(Forward.Op)) +
         " s=" + Cat.str(Forward.DomS) + " ==\n";
  Out += Forward.str();
  Out += "== inverse (undo-log replay on abort): " +
         std::string(opTag(Inverse.Op)) + " over the full tuple ==\n";
  Out += Inverse.str();
  return Out;
}
