//===- plan/PlanValidity.h - Static plan validity checking ------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's plan validity conditions (§5.2): plans must be logically
/// well-locked (every observation of an edge is covered by its placed
/// lock in a sufficient mode), two-phase (all lock acquisitions precede
/// all releases), and must acquire locks in the global lock order (§5.1).
/// The checker symbolically executes a plan over (bound columns, bound
/// nodes, held locks) and reports violations. The planner's output is
/// checked by construction in debug builds and directly in the tests.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_PLAN_PLANVALIDITY_H
#define CRS_PLAN_PLANVALIDITY_H

#include "plan/QueryIR.h"

namespace crs {

/// Checks well-lockedness, two-phasedness, and lock ordering of \p P.
ValidationResult checkPlanValidity(const Plan &P);

} // namespace crs

#endif // CRS_PLAN_PLANVALIDITY_H
