//===- plan/Routing.cpp - Shard routing over bind-slot layouts ----------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "plan/Routing.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace crs;

RoutingLayout crs::extractRoutingSlots(const std::vector<ColumnId> &BindSlots,
                                       ColumnSet Routing) {
  RoutingLayout Out;
  Out.Slots.reserve(Routing.size());
  bool Missing = false;
  // ColumnSet::forEach iterates ascending, which is both the canonical
  // hashing order and BindSlots' own order — one forward scan suffices.
  Routing.forEach([&](ColumnId C) {
    auto It = std::find(BindSlots.begin(), BindSlots.end(), C);
    if (It == BindSlots.end()) {
      Missing = true;
      return;
    }
    Out.Slots.push_back(static_cast<unsigned>(It - BindSlots.begin()));
  });
  if (Missing || Routing.isEmpty()) {
    Out.Slots.clear();
    return Out;
  }
  Out.Covered = true;
  return Out;
}

ColumnSet crs::chooseRoutingColumns(
    const RelationSpec &Spec, const std::vector<ColumnSet> &AnticipatedDomS) {
  std::vector<ColumnSet> Keys = Spec.minimalKeys();
  assert(!Keys.empty() && "every spec has at least the all-columns key");
  ColumnSet Common = Keys.front();
  for (ColumnSet K : Keys)
    Common = Common & K;
  if (Common.isEmpty())
    return Keys.front(); // keys share nothing: route by a whole key
  // Enumerate the nonempty subsets of the common-key columns (specs are
  // tiny — the graph relation has two) and keep the best-covered one.
  std::vector<ColumnId> Cols = Common.members();
  ColumnSet Best;
  size_t BestCovered = 0;
  for (uint64_t Mask = 1; Mask < (uint64_t(1) << Cols.size()); ++Mask) {
    ColumnSet Cand;
    for (size_t I = 0; I < Cols.size(); ++I)
      if ((Mask >> I) & 1)
        Cand |= ColumnSet::of(Cols[I]);
    size_t Covered = 0;
    for (ColumnSet Dom : AnticipatedDomS)
      if (Dom.containsAll(Cand))
        ++Covered;
    bool Wins = Best.isEmpty() || Covered > BestCovered ||
                (Covered == BestCovered &&
                 (Cand.size() < Best.size() ||
                  (Cand.size() == Best.size() && Cand.bits() < Best.bits())));
    if (Wins) {
      Best = Cand;
      BestCovered = Covered;
    }
  }
  return Best;
}

/// One shared combine so the frame path and the tuple path can never
/// disagree on a tuple's shard.
static uint64_t combineRouting(uint64_t H, const Value &V) {
  return mix64(H * 0x9e3779b97f4a7c15ULL ^ V.hash());
}

uint64_t crs::routingHash(const Value *Args,
                          const std::vector<unsigned> &Slots) {
  uint64_t H = 0x8f1bbcdcbfa53e0bULL;
  for (unsigned S : Slots)
    H = combineRouting(H, Args[S]);
  return H;
}

uint64_t crs::routingHash(const Tuple &T, ColumnSet Routing) {
  assert(T.domain().containsAll(Routing) &&
         "routing hash requires every routing column to be bound");
  uint64_t H = 0x8f1bbcdcbfa53e0bULL;
  Routing.forEach([&](ColumnId C) { H = combineRouting(H, T.get(C)); });
  return H;
}
