//===- sync/LockOrderValidator.h - Cross-set lock-order assert --*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-thread acquisition-order validator for *chained* lock scopes.
/// LockSet already asserts the global order (§5.1) within one set; what
/// it cannot see is a thread holding several sets at once — a
/// transaction spanning shards (one LockSet per shard), or a migration
/// execution holding source locks while acquiring target locks. Those
/// compose deadlock-free only under a domain-major order:
///
///   (tier, ordinal, key)  —  tier 0 = primary representations
///                            (ordinal = shard index), tier 1 = a
///                            migration's target representation,
///
/// with blocking acquisitions permitted only at or above every
/// (domain, max-key) the thread already holds; everything below must go
/// through the try path (which cannot wait, hence cannot deadlock).
/// The validator mirrors each live LockSet's domain and strongest key
/// in thread-local state and asserts the rule on every blocking
/// acquisition — catching a cross-op inversion (e.g. a transaction
/// chaining ops that blocked backwards across shards) deterministically
/// and immediately, long before TSan or a stress run could surface the
/// deadlock it enables.
///
/// Wiring: LockSet calls the hooks in debug builds only (the Debug and
/// Debug+TSan CI jobs run with them armed); release builds compile the
/// hooks out of the acquisition paths. The functions themselves are
/// always defined so tests can drive the validator directly in any
/// configuration.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SYNC_LOCKORDERVALIDATOR_H
#define CRS_SYNC_LOCKORDERVALIDATOR_H

#include "sync/LockSet.h"

namespace crs {

class LockOrderValidator {
public:
  /// True if a *blocking* acquisition at (\p Domain, \p Key) by \p Set
  /// would wait below some other lock set this thread holds locks in —
  /// the cross-set order violation the asserts trip on. \p Set's own
  /// recorded maximum is exempt (LockSet::inOrder covers within-set
  /// order, and its try path is legitimately below it).
  static bool wouldViolate(const void *Set, uint64_t Domain,
                           const LockOrderKey &Key);

  /// Records that \p Set (in \p Domain) now holds locks up to \p MaxKey
  /// on this thread.
  static void noteHeld(const void *Set, uint64_t Domain,
                       const LockOrderKey &MaxKey);

  /// Records that \p Set released everything (drops its entry).
  static void noteReleased(const void *Set);

  /// Records a partial release: \p Set's strongest key reverted to
  /// \p MaxKey (\p HasMax false means the set is conceptually empty).
  static void noteRolledBack(const void *Set, uint64_t Domain, bool HasMax,
                             const LockOrderKey &MaxKey);

  /// Number of lock sets this thread currently holds locks in (tests).
  static size_t liveSets();
};

} // namespace crs

#endif // CRS_SYNC_LOCKORDERVALIDATOR_H
