//===- sync/Epoch.cpp - Epoch-based deferred reclamation ----------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "sync/Epoch.h"

#include "obs/Metrics.h"
#include "support/Compiler.h"

#include <thread>

using namespace crs;

//===----------------------------------------------------------------------===//
// Thread-local slot cache
//===----------------------------------------------------------------------===//

namespace crs {

/// Per-thread view of the domains this thread participates in. A thread
/// acquires a slot on first guard entry into a domain and keeps it until
/// thread exit (re-entries are a nesting-depth bump). The weak alive
/// token guards the release path against a domain that was destroyed
/// first (legal for quiescent test-scoped domains).
struct EpochThreadCache {
  struct Entry {
    EpochDomain *Dom = nullptr;
    EpochDomain::Slot *S = nullptr;
    uint32_t Depth = 0;
    std::weak_ptr<char> Alive;
  };
  // Two domains per thread covers the runtime (the global domain) plus
  // one test-local domain; rare extras search the overflow vector.
  Entry Fixed[2];
  std::vector<Entry> Overflow;

  Entry *find(EpochDomain *D) {
    for (Entry &E : Fixed)
      if (E.Dom == D && !E.Alive.expired())
        return &E;
    for (Entry &E : Overflow)
      if (E.Dom == D && !E.Alive.expired())
        return &E;
    return nullptr;
  }

  Entry *add(EpochDomain *D, EpochDomain::Slot *S,
             std::weak_ptr<char> Alive) {
    for (Entry &E : Fixed)
      if (E.Dom == nullptr || E.Alive.expired()) {
        E = {D, S, 0, std::move(Alive)};
        return &E;
      }
    Overflow.push_back({D, S, 0, std::move(Alive)});
    return &Overflow.back();
  }

  ~EpochThreadCache() {
    auto Release = [](Entry &E) {
      if (!E.Dom)
        return;
      // Pinning at thread exit would wedge every future grace period;
      // a guard must not outlive its thread.
      assert(E.Depth == 0 && "thread exited inside an epoch guard");
      if (auto Token = E.Alive.lock()) {
        E.S->E.store(0, std::memory_order_release);
        E.S->InUse.store(false, std::memory_order_release);
      }
    };
    for (Entry &E : Fixed)
      Release(E);
    for (Entry &E : Overflow)
      Release(E);
  }
};

} // namespace crs

static EpochThreadCache &threadCache() {
  static thread_local EpochThreadCache Cache;
  return Cache;
}

//===----------------------------------------------------------------------===//
// EpochDomain
//===----------------------------------------------------------------------===//

EpochDomain::EpochDomain() = default;

EpochDomain::~EpochDomain() {
  // Destruction requires quiescence (no active guards, like any other
  // shared structure here). Pending retirees are still owed their
  // deleters: with no guards left, every grace period has trivially
  // elapsed.
  detachMetrics(); // registry callbacks capture `this`
  AliveToken.reset(); // detach surviving thread caches first
  for (Retiree &R : Retired)
    R.Del(R.Obj);
  Retired.clear();
  SlotBlock *B = Head.Next.load(std::memory_order_acquire);
  while (B) {
    SlotBlock *Next = B->Next.load(std::memory_order_acquire);
    delete B;
    B = Next;
  }
}

EpochDomain &EpochDomain::global() {
  // Leaked singleton: threads may unpin slots during late thread-local
  // destruction, so the domain must outlive every thread.
  static EpochDomain *D = new EpochDomain();
  return *D;
}

EpochDomain::Slot *EpochDomain::acquireSlot() {
  for (SlotBlock *B = &Head;;) {
    for (Slot &S : B->S) {
      bool Expected = false;
      if (!S.InUse.load(std::memory_order_relaxed) &&
          S.InUse.compare_exchange_strong(Expected, true,
                                          std::memory_order_acq_rel))
        return &S;
    }
    SlotBlock *Next = B->Next.load(std::memory_order_acquire);
    if (!Next) {
      std::lock_guard<std::mutex> G(GrowM);
      Next = B->Next.load(std::memory_order_acquire);
      if (!Next) {
        Next = new SlotBlock();
        B->Next.store(Next, std::memory_order_release);
      }
    }
    B = Next;
  }
}

void EpochDomain::enter() {
  EpochThreadCache &Cache = threadCache();
  EpochThreadCache::Entry *E = Cache.find(this);
  if (!E)
    E = Cache.add(this, acquireSlot(), AliveToken);
  if (E->Depth++ != 0)
    return; // nested guard: already pinned
  // Pin protocol (see Epoch.h): publish a pin, then re-validate against
  // the global epoch once. If an advance raced past the first store, the
  // re-pin lands at the advanced epoch E2 — and any object retired
  // before the advance to E2 was unpublished (seq_cst) before our
  // re-validation load, so the reads this guard protects cannot reach
  // it. A pin one epoch stale is merely conservative: it blocks the
  // *second* advance, never reclamation safety.
  uint64_t E1 = GlobalE.load(std::memory_order_seq_cst);
  E->S->E.store(E1, std::memory_order_seq_cst);
  uint64_t E2 = GlobalE.load(std::memory_order_seq_cst);
  if (E2 != E1)
    E->S->E.store(E2, std::memory_order_seq_cst);
}

void EpochDomain::exit() {
  EpochThreadCache::Entry *E = threadCache().find(this);
  assert(E && E->Depth > 0 && "guard exit without matching entry");
  if (--E->Depth == 0)
    E->S->E.store(0, std::memory_order_release);
}

bool EpochDomain::inGuard() const {
  EpochThreadCache::Entry *E =
      threadCache().find(const_cast<EpochDomain *>(this));
  return E && E->Depth > 0;
}

void EpochDomain::retire(void *Obj, void (*Del)(void *)) {
  uint64_t Stamp = GlobalE.load(std::memory_order_seq_cst);
  size_t Backlog;
  {
    std::lock_guard<std::mutex> G(RetireM);
    Retired.push_back({Obj, Del, Stamp});
    Backlog = Retired.size();
  }
  if (Backlog >= AdvanceBacklog)
    tryAdvance();
}

bool EpochDomain::tryAdvance() {
  uint64_t G = GlobalE.load(std::memory_order_seq_cst);
  // Every active slot must have entered the current epoch; a slot still
  // pinning an older epoch is a guard from before the last advance, and
  // the grace-period accounting (free at stamp + 2) needs it to exit
  // before the epoch moves twice.
  for (SlotBlock *B = &Head; B; B = B->Next.load(std::memory_order_acquire))
    for (Slot &S : B->S) {
      uint64_t E = S.E.load(std::memory_order_seq_cst);
      if (E != 0 && E != G)
        return false;
    }
  if (!GlobalE.compare_exchange_strong(G, G + 1, std::memory_order_seq_cst))
    return false; // another collector advanced first
  size_t Freed = reclaim(G + 1);
  if (obs::TraceRing *Ring = Trace.load(std::memory_order_acquire))
    Ring->emit(obs::EventKind::EpochAdvance, G + 1, pendingRetires(),
               Freed);
  return true;
}

size_t EpochDomain::reclaim(uint64_t Now) {
  // Free retirees whose grace period elapsed: stamped at R, safe once
  // the epoch reached R + 2 (both advances scanned every slot that
  // could have pinned R or earlier). Deleters run outside the mutex.
  std::vector<Retiree> Free;
  {
    std::lock_guard<std::mutex> G(RetireM);
    size_t Kept = 0;
    for (Retiree &R : Retired) {
      if (R.Epoch + 2 <= Now)
        Free.push_back(R);
      else
        Retired[Kept++] = R;
    }
    Retired.resize(Kept);
  }
  for (Retiree &R : Free)
    R.Del(R.Obj);
  if (!Free.empty())
    Reclaimed.fetch_add(Free.size(), std::memory_order_relaxed);
  return Free.size();
}

void EpochDomain::synchronize() {
  assert(!inGuard() && "synchronize would deadlock inside a guard");
  // Two completed advances: any guard active at the call pins either
  // the pre-call epoch (blocks the first advance) or one behind it
  // (blocks it too); a guard entered mid-wait pins the then-current
  // epoch and blocks at most one more. Either way, once the epoch has
  // moved twice, every pre-call guard has exited.
  uint64_t Target = GlobalE.load(std::memory_order_seq_cst) + 2;
  while (GlobalE.load(std::memory_order_seq_cst) < Target) {
    if (!tryAdvance())
      std::this_thread::yield();
  }
}

size_t EpochDomain::pendingRetires() const {
  std::lock_guard<std::mutex> G(RetireM);
  return Retired.size();
}

void EpochDomain::attachMetrics(obs::MetricsRegistry &R) {
  detachMetrics();
  MetricsReg = &R;
  using CK = obs::MetricsRegistry::CallbackKind;
  MetricsCallbacks.push_back(R.addCallback("epoch.current", {}, CK::Gauge,
                                           [this] { return epoch(); }));
  MetricsCallbacks.push_back(
      R.addCallback("epoch.pending_retires", {}, CK::Gauge,
                    [this] { return uint64_t(pendingRetires()); }));
  MetricsCallbacks.push_back(R.addCallback(
      "epoch.reclaimed", {}, CK::Counter, [this] { return reclaimed(); }));
  Trace.store(&R.ring(obs::EventDomain::Epoch), std::memory_order_release);
}

void EpochDomain::detachMetrics() {
  Trace.store(nullptr, std::memory_order_release);
  if (MetricsReg) {
    MetricsReg->removeCallbacks(MetricsCallbacks);
    MetricsCallbacks.clear();
    MetricsReg = nullptr;
  }
}
