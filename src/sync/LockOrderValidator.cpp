//===- sync/LockOrderValidator.cpp - Cross-set lock-order assert -------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "sync/LockOrderValidator.h"

#include <vector>

using namespace crs;

namespace {

/// One live lock set on this thread: its identity, domain tag, and the
/// strongest key it holds. A handful at most (an operation's set, a
/// transaction's per-shard sets, a migration's mirror-context set), so
/// a flat vector beats any map.
struct SetRec {
  const void *Set;
  uint64_t Domain;
  LockOrderKey Max;
};

/// Thread-local destruction order is the reverse of construction, and
/// the registry is first touched *after* the thread's ExecContext (the
/// context is built on the first operation; the registry inside that
/// operation's first acquisition) — so the registry dies first, and
/// ~ExecContext's ~LockSet would then call back into a destroyed
/// vector. The flag is trivially destructible, so it stays readable
/// after the registry's destructor has run and turns every late hook
/// into a no-op.
thread_local bool RegistryDead = false;

struct Registry {
  std::vector<SetRec> Recs;
  ~Registry() { RegistryDead = true; }
};

std::vector<SetRec> *liveRecs() {
  if (RegistryDead)
    return nullptr;
  static thread_local Registry R;
  return &R.Recs;
}

SetRec *findRec(const void *Set) {
  if (std::vector<SetRec> *Recs = liveRecs())
    for (SetRec &R : *Recs)
      if (R.Set == Set)
        return &R;
  return nullptr;
}

} // namespace

bool LockOrderValidator::wouldViolate(const void *Set, uint64_t Domain,
                                      const LockOrderKey &Key) {
  std::vector<SetRec> *Recs = liveRecs();
  if (!Recs)
    return false;
  for (const SetRec &R : *Recs) {
    if (R.Set == Set)
      continue; // within-set order is LockSet::inOrder's duty
    // Blocking at (Domain, Key) must not fall below (R.Domain, R.Max):
    // domain-major comparison, key only within one domain.
    if (Domain < R.Domain)
      return true;
    if (Domain == R.Domain && Key < R.Max)
      return true;
  }
  return false;
}

void LockOrderValidator::noteHeld(const void *Set, uint64_t Domain,
                                  const LockOrderKey &MaxKey) {
  if (SetRec *R = findRec(Set)) {
    R->Domain = Domain;
    R->Max = MaxKey;
    return;
  }
  if (std::vector<SetRec> *Recs = liveRecs())
    Recs->push_back({Set, Domain, MaxKey});
}

void LockOrderValidator::noteReleased(const void *Set) {
  std::vector<SetRec> *Recs = liveRecs();
  if (!Recs)
    return;
  for (size_t I = 0; I < Recs->size(); ++I)
    if ((*Recs)[I].Set == Set) {
      Recs->erase(Recs->begin() + static_cast<long>(I));
      return;
    }
}

void LockOrderValidator::noteRolledBack(const void *Set, uint64_t Domain,
                                        bool HasMax,
                                        const LockOrderKey &MaxKey) {
  if (!HasMax) {
    noteReleased(Set);
    return;
  }
  noteHeld(Set, Domain, MaxKey);
}

size_t LockOrderValidator::liveSets() {
  std::vector<SetRec> *Recs = liveRecs();
  return Recs ? Recs->size() : 0;
}
