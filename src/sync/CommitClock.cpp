//===- sync/CommitClock.cpp - Process-global commit/birth clocks -------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "sync/CommitClock.h"

#include <atomic>
#include <cassert>
#include <thread>

using namespace crs;

namespace {

/// One clock per cache line (see the header's false-sharing note).
struct alignas(64) PaddedClock {
  std::atomic<uint64_t> V{0};
};

PaddedClock CommitClock;
PaddedClock BirthClock;

/// One registry slot per cache line: committers and snapshot readers
/// CAS/store their own slot and scan the others; padding keeps a hot
/// committer from invalidating its neighbors' lines.
struct alignas(64) RegistrySlot {
  std::atomic<uint64_t> V{0}; ///< 0 = free
};

/// Enough slots for far more concurrent committers / open snapshots
/// than any realistic thread count; a claimant past the end spins for
/// a free slot (commits and snapshot acquisitions are short).
constexpr unsigned NumSlots = 128;

RegistrySlot InFlight[NumSlots];  ///< commit sequences mid-install
RegistrySlot Snapshots[NumSlots]; ///< open snapshot sequences

/// Claims the first free slot of \p Reg by CAS-publishing \p Pin.
/// The publishing store is the CAS itself (seq_cst), so the slot is
/// never observable as claimed-but-empty.
unsigned claimSlot(RegistrySlot *Reg, uint64_t Pin) {
  assert(Pin != 0 && "0 marks a free slot");
  for (;;) {
    for (unsigned I = 0; I < NumSlots; ++I) {
      uint64_t Free = 0;
      if (Reg[I].V.load(std::memory_order_relaxed) == 0 &&
          Reg[I].V.compare_exchange_strong(Free, Pin,
                                           std::memory_order_seq_cst))
        return I;
    }
    std::this_thread::yield(); // > NumSlots concurrent claimants
  }
}

/// Min over the live slots of \p Reg, each reduced by \p Sub, floored
/// into \p Min.
void foldSlots(const RegistrySlot *Reg, uint64_t Sub, uint64_t &Min) {
  for (unsigned I = 0; I < NumSlots; ++I) {
    uint64_t V = Reg[I].V.load(std::memory_order_seq_cst);
    if (V != 0 && V - Sub < Min)
      Min = V - Sub;
  }
}

} // namespace

uint64_t crs::nextCommitSeq() {
  return CommitClock.V.fetch_add(1, std::memory_order_acq_rel) + 1;
}

uint64_t crs::commitClockNow() {
  return CommitClock.V.load(std::memory_order_acquire);
}

uint64_t crs::nextTxnBirthStamp() {
  return BirthClock.V.fetch_add(1, std::memory_order_acq_rel) + 1;
}

CommitTicket crs::beginCommit() {
  // Claim with a conservative pin *before* stamping: clock+1 is ≤ the
  // sequence the stamp below will draw (the clock is monotone), and the
  // claim is seq_cst — a stableSnapshotSeq() whose slot scan misses
  // this claim must have run its clock load before the stamp, so its
  // snapshot sits below the new sequence either way.
  CommitTicket T;
  T.Slot = claimSlot(InFlight, commitClockNow() + 1);
  T.Seq = nextCommitSeq();
  // Settle the slot to the real sequence (a raise: Seq ≥ the pin).
  InFlight[T.Slot].V.store(T.Seq, std::memory_order_seq_cst);
  return T;
}

void crs::endCommit(const CommitTicket &T) {
  assert(T.Seq != 0 && T.Slot < NumSlots);
  assert(InFlight[T.Slot].V.load(std::memory_order_relaxed) == T.Seq);
  InFlight[T.Slot].V.store(0, std::memory_order_seq_cst);
}

uint64_t crs::stableSnapshotSeq() {
  // Clock first, slots second (both seq_cst): see beginCommit's
  // interleaving argument. An in-flight slot holding V bounds its
  // commit's sequence from below, so V−1 is safe.
  uint64_t Min = commitClockNow();
  foldSlots(InFlight, /*Sub=*/1, Min);
  return Min;
}

unsigned crs::acquireSnapshotSlot(uint64_t &Snap) {
  // Two-step publish. The pin is a *pre-claim* stable sequence:
  // stableSnapshotSeq() is monotone, so the final snapshot (recomputed
  // once the slot is visible) sits at or above it — the slot never
  // overstates the snapshot it protects, and a concurrent
  // snapshotWatermark() folding the pin can never overshoot the
  // snapshot we settle on. The recompute after the claim is what makes
  // the snapshot durable against pruning: any version retired before
  // this slot became visible had End ≤ the watermark then, which is
  // ≤ the stable sequence we settle on — invisible at this snapshot
  // anyway.
  uint64_t Pin = stableSnapshotSeq();
  unsigned Slot = claimSlot(Snapshots, Pin ? Pin : 1);
  Snap = stableSnapshotSeq();
  Snapshots[Slot].V.store(Snap ? Snap : 1, std::memory_order_seq_cst);
  return Slot;
}

void crs::releaseSnapshotSlot(unsigned Slot) {
  assert(Slot < NumSlots);
  Snapshots[Slot].V.store(0, std::memory_order_seq_cst);
}

uint64_t crs::snapshotWatermark() {
  uint64_t Min = stableSnapshotSeq();
  foldSlots(Snapshots, /*Sub=*/0, Min);
  return Min;
}

unsigned crs::activeSnapshots() {
  unsigned N = 0;
  for (unsigned I = 0; I < NumSlots; ++I)
    if (Snapshots[I].V.load(std::memory_order_relaxed) != 0)
      ++N;
  return N;
}
