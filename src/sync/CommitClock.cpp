//===- sync/CommitClock.cpp - Process-global commit/birth clocks -------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "sync/CommitClock.h"

#include <atomic>

using namespace crs;

namespace {

/// One clock per cache line (see the header's false-sharing note).
struct alignas(64) PaddedClock {
  std::atomic<uint64_t> V{0};
};

PaddedClock CommitClock;
PaddedClock BirthClock;

} // namespace

uint64_t crs::nextCommitSeq() {
  return CommitClock.V.fetch_add(1, std::memory_order_acq_rel) + 1;
}

uint64_t crs::commitClockNow() {
  return CommitClock.V.load(std::memory_order_acquire);
}

uint64_t crs::nextTxnBirthStamp() {
  return BirthClock.V.fetch_add(1, std::memory_order_acq_rel) + 1;
}
