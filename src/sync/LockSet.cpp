//===- sync/LockSet.cpp - Per-transaction lock bookkeeping -------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "sync/LockSet.h"

#include "support/Compiler.h"
#include "sync/LockOrderValidator.h"

using namespace crs;

// The per-thread cross-set order validator runs in debug builds only
// (it would be a per-acquisition map walk on the hot path otherwise).
#ifndef NDEBUG
#define CRS_VALIDATE_LOCK_ORDER 1
#else
#define CRS_VALIDATE_LOCK_ORDER 0
#endif

LockSet::~LockSet() { releaseAll(); }

LockSet::Entry *LockSet::findEntry(const PhysicalLock &Lock) {
  for (Entry &E : Held)
    if (E.Lock == &Lock)
      return &E;
  return nullptr;
}

const LockSet::Entry *LockSet::findEntry(const PhysicalLock &Lock) const {
  return const_cast<LockSet *>(this)->findEntry(Lock);
}

void LockSet::acquire(PhysicalLock &Lock, const LockOrderKey &Key,
                      LockMode Mode) {
  if (Entry *E = findEntry(Lock)) {
    // Mode upgrades would be a planning bug: plans acquire every lock in
    // its final mode (queries all-shared, mutations all-exclusive).
    assert((E->Mode == Mode || E->Mode == LockMode::Exclusive) &&
           "shared->exclusive upgrade is not allowed");
    (void)E;
    return;
  }
  assert(inOrder(Key) &&
         "blocking acquisition violates the global lock order");
#if CRS_VALIDATE_LOCK_ORDER
  assert(!LockOrderValidator::wouldViolate(this, orderDomain(), Key) &&
         "blocking acquisition violates the cross-set (chained-op / "
         "cross-shard / source-before-target) lock order");
#endif
  Lock.lock(Mode);
  // Publish the scope's age to the owner table (wait-die): only
  // transaction scopes (non-zero stamp) holding exclusively, where a
  // loser of a future try needs to know who beat it.
  if (BirthStamp != 0 && Mode == LockMode::Exclusive)
    Lock.setOwnerStamp(BirthStamp);
  Held.push_back({&Lock, Mode});
  if (!HasMaxKey || MaxKey < Key) {
    MaxKey = Key;
    HasMaxKey = true;
  }
#if CRS_VALIDATE_LOCK_ORDER
  LockOrderValidator::noteHeld(this, orderDomain(), MaxKey);
#endif
}

AcquireResult LockSet::tryAcquire(PhysicalLock &Lock, const LockOrderKey &Key,
                                  LockMode Mode) {
  if (Entry *E = findEntry(Lock)) {
    assert((E->Mode == Mode || E->Mode == LockMode::Exclusive) &&
           "shared->exclusive upgrade is not allowed");
    (void)E;
    return AcquireResult::Ok;
  }
  if (!Lock.tryLock(Mode)) {
    // Snapshot the holder's age for the wait-die decision. Racy by
    // design (the holder may release concurrently — then this reads 0
    // or a successor's stamp); the transaction layer treats 0 as
    // "unknown" and falls back to its bounded budget.
    if (BirthStamp != 0)
      LastConflict = Lock.ownerStamp();
    return AcquireResult::WouldBlock;
  }
  if (BirthStamp != 0 && Mode == LockMode::Exclusive)
    Lock.setOwnerStamp(BirthStamp);
  Held.push_back({&Lock, Mode});
  if (!HasMaxKey || MaxKey < Key) {
    MaxKey = Key;
    HasMaxKey = true;
  }
#if CRS_VALIDATE_LOCK_ORDER
  LockOrderValidator::noteHeld(this, orderDomain(), MaxKey);
#endif
  return AcquireResult::Ok;
}

TxnAcquire LockSet::acquireTxn(PhysicalLock &Lock, const LockOrderKey &Key,
                               LockMode Mode, bool MayBlock) {
  if (const Entry *E = findEntry(Lock)) {
    // Transactions lock reads exclusively precisely so this branch can
    // never be reached with a shared entry wanting exclusive — but a
    // misuse must surface as a clean abort, not a silent under-lock.
    if (E->Mode == LockMode::Exclusive || Mode == LockMode::Shared)
      return TxnAcquire::Ok;
    return TxnAcquire::Upgrade;
  }
  if (MayBlock && inOrder(Key)) {
    acquire(Lock, Key, Mode);
    return TxnAcquire::Ok;
  }
  return tryAcquire(Lock, Key, Mode) == AcquireResult::Ok
             ? TxnAcquire::Ok
             : TxnAcquire::WouldBlock;
}

bool LockSet::holds(const PhysicalLock &Lock) const {
  return findEntry(Lock) != nullptr;
}

bool LockSet::holdsAtLeast(const PhysicalLock &Lock, LockMode Mode) const {
  const Entry *E = findEntry(Lock);
  if (!E)
    return false;
  return E->Mode == LockMode::Exclusive || Mode == LockMode::Shared;
}

void LockSet::releaseAll() {
  for (auto It = Held.rbegin(); It != Held.rend(); ++It) {
    // Retract the owner stamp *before* the unlock: a contender must
    // never read this scope's age off a lock the scope no longer holds.
    if (BirthStamp != 0 && It->Mode == LockMode::Exclusive)
      It->Lock->clearOwnerStamp();
    It->Lock->unlock(It->Mode);
  }
  Held.clear();
  HasMaxKey = false;
#if CRS_VALIDATE_LOCK_ORDER
  LockOrderValidator::noteReleased(this);
#endif
}

void LockSet::releaseToMark(const Mark &M) {
  assert(M.HeldCount <= Held.size() &&
         "releaseToMark after an intervening release");
  for (size_t I = Held.size(); I > M.HeldCount; --I) {
    if (BirthStamp != 0 && Held[I - 1].Mode == LockMode::Exclusive)
      Held[I - 1].Lock->clearOwnerStamp();
    Held[I - 1].Lock->unlock(Held[I - 1].Mode);
  }
  Held.resize(M.HeldCount);
  HasMaxKey = M.HasMaxKey;
  MaxKey = M.MaxKey;
#if CRS_VALIDATE_LOCK_ORDER
  if (Held.empty())
    LockOrderValidator::noteReleased(this);
  else
    LockOrderValidator::noteRolledBack(this, orderDomain(), HasMaxKey,
                                       MaxKey);
#endif
}
