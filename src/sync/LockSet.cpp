//===- sync/LockSet.cpp - Per-transaction lock bookkeeping -------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "sync/LockSet.h"

#include "support/Compiler.h"

using namespace crs;

LockSet::~LockSet() { releaseAll(); }

LockSet::Entry *LockSet::findEntry(const PhysicalLock &Lock) {
  for (Entry &E : Held)
    if (E.Lock == &Lock)
      return &E;
  return nullptr;
}

const LockSet::Entry *LockSet::findEntry(const PhysicalLock &Lock) const {
  return const_cast<LockSet *>(this)->findEntry(Lock);
}

void LockSet::acquire(PhysicalLock &Lock, const LockOrderKey &Key,
                      LockMode Mode) {
  if (Entry *E = findEntry(Lock)) {
    // Mode upgrades would be a planning bug: plans acquire every lock in
    // its final mode (queries all-shared, mutations all-exclusive).
    assert((E->Mode == Mode || E->Mode == LockMode::Exclusive) &&
           "shared->exclusive upgrade is not allowed");
    (void)E;
    return;
  }
  assert(inOrder(Key) &&
         "blocking acquisition violates the global lock order");
  Lock.lock(Mode);
  Held.push_back({&Lock, Mode});
  if (!HasMaxKey || MaxKey < Key) {
    MaxKey = Key;
    HasMaxKey = true;
  }
}

AcquireResult LockSet::tryAcquire(PhysicalLock &Lock, const LockOrderKey &Key,
                                  LockMode Mode) {
  if (Entry *E = findEntry(Lock)) {
    assert((E->Mode == Mode || E->Mode == LockMode::Exclusive) &&
           "shared->exclusive upgrade is not allowed");
    (void)E;
    return AcquireResult::Ok;
  }
  if (!Lock.tryLock(Mode))
    return AcquireResult::WouldBlock;
  Held.push_back({&Lock, Mode});
  if (!HasMaxKey || MaxKey < Key) {
    MaxKey = Key;
    HasMaxKey = true;
  }
  return AcquireResult::Ok;
}

bool LockSet::holds(const PhysicalLock &Lock) const {
  return findEntry(Lock) != nullptr;
}

bool LockSet::holdsAtLeast(const PhysicalLock &Lock, LockMode Mode) const {
  const Entry *E = findEntry(Lock);
  if (!E)
    return false;
  return E->Mode == LockMode::Exclusive || Mode == LockMode::Shared;
}

void LockSet::releaseAll() {
  for (auto It = Held.rbegin(); It != Held.rend(); ++It)
    It->Lock->unlock(It->Mode);
  Held.clear();
  HasMaxKey = false;
}
