//===- sync/DeadlockDetector.cpp - Wait-for-graph cycle checking -------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "sync/DeadlockDetector.h"

using namespace crs;

bool DeadlockDetector::wouldCycleLocked(AgentId Agent,
                                        ResourceId Resource) const {
  // Follow the chain: Agent waits for Resource; Resource's holders may
  // themselves be waiting. A cycle exists if following waits-for edges
  // from Resource's holders ever reaches Agent. BFS over agents.
  std::set<AgentId> Visited;
  std::vector<AgentId> Frontier;
  auto HolderIt = Holders.find(Resource);
  if (HolderIt == Holders.end())
    return false;
  for (AgentId H : HolderIt->second)
    Frontier.push_back(H);
  while (!Frontier.empty()) {
    AgentId A = Frontier.back();
    Frontier.pop_back();
    if (A == Agent)
      return true;
    if (!Visited.insert(A).second)
      continue;
    auto WaitIt = WaitingFor.find(A);
    if (WaitIt == WaitingFor.end())
      continue;
    auto NextHolders = Holders.find(WaitIt->second);
    if (NextHolders == Holders.end())
      continue;
    for (AgentId H : NextHolders->second)
      Frontier.push_back(H);
  }
  return false;
}

bool DeadlockDetector::onWait(AgentId Agent, ResourceId Resource) {
  std::lock_guard<std::mutex> Guard(Mutex);
  if (wouldCycleLocked(Agent, Resource)) {
    ++Deadlocks;
    return true;
  }
  WaitingFor[Agent] = Resource;
  return false;
}

void DeadlockDetector::onAcquire(AgentId Agent, ResourceId Resource) {
  std::lock_guard<std::mutex> Guard(Mutex);
  WaitingFor.erase(Agent);
  Holders[Resource].insert(Agent);
}

void DeadlockDetector::onRelease(AgentId Agent, ResourceId Resource) {
  std::lock_guard<std::mutex> Guard(Mutex);
  auto It = Holders.find(Resource);
  if (It == Holders.end())
    return;
  It->second.erase(Agent);
  if (It->second.empty())
    Holders.erase(It);
}

uint64_t DeadlockDetector::deadlocksDetected() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Deadlocks;
}

void DeadlockDetector::reset() {
  std::lock_guard<std::mutex> Guard(Mutex);
  Holders.clear();
  WaitingFor.clear();
  Deadlocks = 0;
}
