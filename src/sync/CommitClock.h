//===- sync/CommitClock.h - Process-global commit/birth clocks --*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two process-global monotone clocks the transaction and durability
/// layers share:
///
///  * the **commit clock** — stamped under a scope's retained locks (or
///    a bare mutation's operation locks), so conflicting mutations
///    receive sequence numbers consistent with their serialization
///    order. The stress oracle replays committed scopes in this order,
///    the WAL (src/wal) logs mutations under it, and crash recovery
///    replays records sorted by it. Hoisted out of txn/Transaction.cpp
///    so bare prepared-op mutations can stamp the same clock their
///    transactional siblings use — one total commit order for the whole
///    relation fleet, whichever path wrote.
///
///  * the **birth clock** — stamps a transaction scope once, at the
///    *logical* transaction's first attempt, and keeps that stamp across
///    runTransaction retries. Wait-die compares birth stamps: an older
///    scope outranks every younger one on any contended key
///    (sync/LockSet.h carries the stamp to the lock owner tables).
///
/// Both are padded to a cache line of their own: every commit on every
/// thread RMWs the commit clock, and as bare globals the two would
/// otherwise share a line with neighboring globals (false sharing on
/// the hottest words in the transaction layer).
///
/// **MVCC registries.** Snapshot reads (txn/MvccStore.h) add two slot
/// registries alongside the commit clock:
///
///  * the **in-flight commit registry** — a committer stamps its
///    sequence through beginCommit() and holds the slot until every
///    version it installs is in the store (endCommit). A snapshot
///    acquired meanwhile (stableSnapshotSeq) sits strictly *below*
///    every in-flight sequence, so no reader can ever adopt a snapshot
///    that would see half of a multi-key (or multi-shard) commit.
///  * the **active snapshot registry** — every open snapshot publishes
///    its sequence; snapshotWatermark() is the floor below which no
///    live (or future) snapshot can look, the bound MVCC reclamation
///    prunes against. Slots publish a conservative pin (the clock) in
///    the same seq_cst step that claims them, then settle to the final
///    snapshot, so a concurrent watermark read can never overshoot a
///    snapshot being acquired.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SYNC_COMMITCLOCK_H
#define CRS_SYNC_COMMITCLOCK_H

#include <cstdint>

namespace crs {

/// The next commit sequence number (strictly positive, strictly
/// monotone). Stamp while holding every lock the mutation touched.
/// Mutations that install MVCC versions stamp through beginCommit()
/// instead, so concurrent snapshot acquisition excludes them until
/// their versions are fully installed.
uint64_t nextCommitSeq();

/// The highest commit sequence handed out so far (0 before the first
/// commit). Read under an operation-gate barrier this is a checkpoint
/// watermark: every mutation that stamped before the barrier is ≤ this,
/// every mutation after it is > this (src/wal/Checkpoint.h).
uint64_t commitClockNow();

/// The next transaction birth stamp (strictly positive, strictly
/// monotone; a distinct clock so hot commit traffic never delays scope
/// opens). 0 is reserved as "unstamped" throughout the lock layer.
uint64_t nextTxnBirthStamp();

/// \name In-flight commit registry (MVCC)
/// @{

/// A stamped commit held open until its versions are installed.
struct CommitTicket {
  uint64_t Seq = 0;  ///< the commit sequence (nextCommitSeq)
  unsigned Slot = 0; ///< registry slot held until endCommit
};

/// Stamps the next commit sequence *and* registers it as in-flight, as
/// one protocol: the slot publishes a conservative lower bound (clock
/// before the stamp, seq_cst) before the stamp itself, so a concurrent
/// stableSnapshotSeq() either sees the registration or draws a clock
/// value below the new sequence — there is no window in which the
/// sequence is visible through the clock but absent from the registry.
/// Call under every lock the commit holds (like nextCommitSeq); call
/// endCommit() after the last version install, before or after the
/// locks release (the locks do not protect the registry).
CommitTicket beginCommit();

/// Deregisters \p T: every version of the commit is in the store, so
/// snapshots at or above T.Seq are safe to hand out.
void endCommit(const CommitTicket &T);

/// The highest sequence a fresh snapshot may safely read: min over the
/// in-flight registry of (seq − 1), or the commit clock when nothing is
/// in flight. Monotone with respect to its own past results.
uint64_t stableSnapshotSeq();

/// @}

/// \name Active snapshot registry (MVCC reclamation watermark)
/// @{

/// Acquires a registry slot and a stable snapshot sequence, returned in
/// \p Snap. The slot pins the reclamation watermark at or below Snap
/// until releaseSnapshotSlot().
unsigned acquireSnapshotSlot(uint64_t &Snap);

/// Releases a slot from acquireSnapshotSlot; the watermark may then
/// advance past its snapshot.
void releaseSnapshotSlot(unsigned Slot);

/// The reclamation floor: min(stableSnapshotSeq(), every active
/// snapshot). A version whose End sequence is ≤ this is invisible to
/// every live and future snapshot and may be retired
/// (txn/MvccStore.h::prune).
uint64_t snapshotWatermark();

/// Active snapshot slots (tests).
unsigned activeSnapshots();

/// @}

} // namespace crs

#endif // CRS_SYNC_COMMITCLOCK_H
