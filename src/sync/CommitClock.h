//===- sync/CommitClock.h - Process-global commit/birth clocks --*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two process-global monotone clocks the transaction and durability
/// layers share:
///
///  * the **commit clock** — stamped under a scope's retained locks (or
///    a bare mutation's operation locks), so conflicting mutations
///    receive sequence numbers consistent with their serialization
///    order. The stress oracle replays committed scopes in this order,
///    the WAL (src/wal) logs mutations under it, and crash recovery
///    replays records sorted by it. Hoisted out of txn/Transaction.cpp
///    so bare prepared-op mutations can stamp the same clock their
///    transactional siblings use — one total commit order for the whole
///    relation fleet, whichever path wrote.
///
///  * the **birth clock** — stamps a transaction scope once, at the
///    *logical* transaction's first attempt, and keeps that stamp across
///    runTransaction retries. Wait-die compares birth stamps: an older
///    scope outranks every younger one on any contended key
///    (sync/LockSet.h carries the stamp to the lock owner tables).
///
/// Both are padded to a cache line of their own: every commit on every
/// thread RMWs the commit clock, and as bare globals the two would
/// otherwise share a line with neighboring globals (false sharing on
/// the hottest words in the transaction layer).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SYNC_COMMITCLOCK_H
#define CRS_SYNC_COMMITCLOCK_H

#include <cstdint>

namespace crs {

/// The next commit sequence number (strictly positive, strictly
/// monotone). Stamp while holding every lock the mutation touched.
uint64_t nextCommitSeq();

/// The highest commit sequence handed out so far (0 before the first
/// commit). Read under an operation-gate barrier this is a checkpoint
/// watermark: every mutation that stamped before the barrier is ≤ this,
/// every mutation after it is > this (src/wal/Checkpoint.h).
uint64_t commitClockNow();

/// The next transaction birth stamp (strictly positive, strictly
/// monotone; a distinct clock so hot commit traffic never delays scope
/// opens). 0 is reserved as "unstamped" throughout the lock layer.
uint64_t nextTxnBirthStamp();

} // namespace crs

#endif // CRS_SYNC_COMMITCLOCK_H
