//===- sync/Epoch.h - Epoch-based deferred reclamation ----------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-based reclamation (McKenney's "deferred processing": RCU-style
/// grace periods over per-thread participation slots). The runtime keeps
/// several retire-not-free disciplines alive — the plan cache's retired
/// snapshots, a migration's retired configurations and shadow mirrors —
/// and the wait-free read path adds readers that hold raw pointers with
/// no locks at all. This subsystem generalizes all of them:
///
///  * A domain carries a global epoch counter and a set of cache-line
///    padded per-thread slots. A thread *pins* the current epoch for the
///    duration of a `Guard` (RAII, nestable); between guards the slot is
///    quiescent.
///  * `retire(Obj, Del)` queues an object for deletion, stamped with the
///    current epoch. The deleter runs once a *grace period* has elapsed:
///    the global epoch has advanced twice past the stamp, which requires
///    every guard active at retire time to have exited.
///  * `tryAdvance()` is the bounded, non-blocking collector step: scan
///    the slots, advance the epoch if every active slot has caught up,
///    free what became safe. `synchronize()` loops it until two advances
///    have completed — the blocking grace-period wait of a migration's
///    drain barrier.
///
/// Safety contract (callers!): an object must be *unpublished* — made
/// unreachable from shared state by a `memory_order_seq_cst` store —
/// before `retire` is called, and readers must locate retirable objects
/// only through loads performed inside a guard. Guard entry executes a
/// seq_cst slot store and re-validation load, so any reader whose guard
/// began after the unpublish store (in the single total order of seq_cst
/// operations) observes the unpublish and cannot reach the object, while
/// any earlier reader still pins an epoch the two required advances must
/// wait out. Readers that can still *name* a retired object (a prepared
/// handle's cached plan pointer) must gate the dereference on a seq_cst
/// epoch/version check under the same discipline.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SYNC_EPOCH_H
#define CRS_SYNC_EPOCH_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace crs {

namespace obs {
class MetricsRegistry;
class TraceRing;
} // namespace obs

/// One reclamation domain: a global epoch, participant slots, and the
/// pending retire queue. The process-wide runtime shares `global()`;
/// tests may instantiate private domains.
class EpochDomain {
  struct Slot;

public:
  EpochDomain();
  ~EpochDomain();
  EpochDomain(const EpochDomain &) = delete;
  EpochDomain &operator=(const EpochDomain &) = delete;

  /// The process-wide domain used by the runtime (never destroyed).
  static EpochDomain &global();

  /// RAII epoch pin. Cheap: one seq_cst store and two loads on entry,
  /// one store on exit, all on a cache-line-private slot — no shared
  /// line is written. Guards nest freely on one thread; only the
  /// outermost pays the slot protocol.
  class Guard {
  public:
    Guard() : Guard(EpochDomain::global()) {}
    explicit Guard(EpochDomain &D) : Dom(&D) { D.enter(); }
    ~Guard() { Dom->exit(); }
    Guard(const Guard &) = delete;
    Guard &operator=(const Guard &) = delete;

  private:
    EpochDomain *Dom;
  };

  /// Queues \p Obj for deletion by \p Del after a grace period. The
  /// caller must already have unpublished the object (see file comment).
  /// Amortizes collection: a growing backlog triggers tryAdvance.
  void retire(void *Obj, void (*Del)(void *));

  /// Type-safe convenience: retire an owned heap object.
  template <typename T> void retireObject(T *Obj) {
    retire(Obj, [](void *P) { delete static_cast<T *>(P); });
  }

  /// One bounded collector step: if every active slot has entered the
  /// current epoch, advance it and free every retiree whose grace
  /// period completed. Returns false when a straggling guard (or a
  /// racing advance) prevents progress. Never blocks.
  bool tryAdvance();

  /// Blocks (spin + yield) until every guard active at the call has
  /// exited: two full epoch advances. Must not be called from inside a
  /// guard on this domain (asserted) — it could never complete.
  void synchronize();

  /// Current epoch (monotone; starts at 1).
  uint64_t epoch() const { return GlobalE.load(std::memory_order_seq_cst); }

  /// True if the calling thread currently holds a guard on this domain.
  bool inGuard() const;

  // -- Introspection (tests, stats) --------------------------------------
  size_t pendingRetires() const;
  uint64_t reclaimed() const {
    return Reclaimed.load(std::memory_order_relaxed);
  }

  // -- Observability (src/obs) -------------------------------------------
  /// Registers epoch.current / epoch.pending_retires (gauges) and
  /// epoch.reclaimed (counter) with \p R, and points EpochAdvance trace
  /// events at the registry's Epoch-domain ring. Detach (or destroy the
  /// domain) before destroying the registry.
  void attachMetrics(obs::MetricsRegistry &R);
  void detachMetrics();

private:
  static constexpr size_t SlotsPerBlock = 64;
  static constexpr size_t AdvanceBacklog = 64;

  struct alignas(64) Slot {
    /// 0 = quiescent, otherwise the pinned epoch.
    std::atomic<uint64_t> E{0};
    std::atomic<bool> InUse{false};
  };
  struct SlotBlock {
    Slot S[SlotsPerBlock];
    std::atomic<SlotBlock *> Next{nullptr};
  };

  struct Retiree {
    void *Obj;
    void (*Del)(void *);
    uint64_t Epoch;
  };

  void enter();
  void exit();
  Slot *acquireSlot();
  size_t reclaim(uint64_t Now); ///< returns objects freed

  std::atomic<uint64_t> GlobalE{1};
  SlotBlock Head; ///< first slot block, inline; growth appends blocks
  std::mutex GrowM;

  mutable std::mutex RetireM;
  std::vector<Retiree> Retired; ///< guarded by RetireM
  std::atomic<uint64_t> Reclaimed{0};

  /// Observability wiring (attachMetrics). Trace is read lock-free on
  /// the successful-advance path; the callback ids (raw
  /// MetricsRegistry::CallbackId values, kept as uint64_t so this
  /// header needs only forward declarations) are attach/detach-only.
  std::atomic<obs::TraceRing *> Trace{nullptr};
  obs::MetricsRegistry *MetricsReg = nullptr;
  std::vector<uint64_t> MetricsCallbacks;

  /// Tombstone for thread-local slot caches: a cache entry outliving the
  /// domain (a test-scoped domain destroyed before thread exit) detects
  /// it through this token and skips the release.
  std::shared_ptr<char> AliveToken = std::make_shared<char>(0);

  friend struct EpochThreadCache;
};

} // namespace crs

#endif // CRS_SYNC_EPOCH_H
