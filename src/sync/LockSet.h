//===- sync/LockSet.h - Per-transaction lock bookkeeping --------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transactions acquire physical locks during a growing phase and release
/// them during a shrinking phase (two-phase locking, paper §4.2). LockSet
/// tracks the locks one transaction holds: it deduplicates repeated
/// acquisitions of the same physical lock (many logical locks map onto one
/// physical lock under coarse placements), enforces the global lock order
/// of §5.1 in debug builds, and releases everything in reverse order.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SYNC_LOCKSET_H
#define CRS_SYNC_LOCKSET_H

#include "rel/Tuple.h"
#include "sync/PhysicalLock.h"

#include <memory>
#include <vector>

namespace crs {

/// The global total order on physical locks (paper §5.1): first a
/// topological index of the decomposition node the lock is attached to,
/// then the node instance's key tuple lexicographically, then the stripe
/// number within the instance.
struct LockOrderKey {
  uint32_t NodeTopoIndex = 0;
  Tuple InstanceKey;
  uint32_t Stripe = 0;

  int compare(const LockOrderKey &Other) const {
    if (NodeTopoIndex != Other.NodeTopoIndex)
      return NodeTopoIndex < Other.NodeTopoIndex ? -1 : 1;
    if (int C = InstanceKey.compare(Other.InstanceKey))
      return C;
    if (Stripe != Other.Stripe)
      return Stripe < Other.Stripe ? -1 : 1;
    return 0;
  }
  bool operator<(const LockOrderKey &Other) const {
    return compare(Other) < 0;
  }
};

/// Result of an acquisition attempt.
enum class AcquireResult : uint8_t {
  Ok,        ///< lock held (newly acquired or already held)
  WouldBlock ///< try-acquisition failed; caller must restart the txn
};

/// Result of a transaction-scope acquisition (acquireTxn).
enum class TxnAcquire : uint8_t {
  Ok,         ///< lock held (newly acquired or already held sufficiently)
  WouldBlock, ///< out-of-order try failed; restart the op (wait-die)
  Upgrade,    ///< held shared, exclusive wanted: not upgradable — abort
};

/// The set of physical locks one transaction currently holds.
/// Not thread-safe: one LockSet per in-flight transaction.
class LockSet {
public:
  LockSet() = default;
  ~LockSet();
  LockSet(const LockSet &) = delete;
  LockSet &operator=(const LockSet &) = delete;

  /// Blocking acquisition in global-order position \p Key. If the lock is
  /// already held in a mode at least as strong, this is a no-op. Asserts
  /// (debug) that \p Key does not precede the strongest key held so far —
  /// the planner must emit locks in order.
  void acquire(PhysicalLock &Lock, const LockOrderKey &Key, LockMode Mode);

  /// Non-blocking acquisition for out-of-order speculative locks (§4.5).
  /// On WouldBlock the caller must releaseAll() and restart; this is what
  /// keeps speculative placements deadlock-free.
  AcquireResult tryAcquire(PhysicalLock &Lock, const LockOrderKey &Key,
                           LockMode Mode);

  /// Transaction-scope acquisition: across chained operations the set's
  /// MaxKey reflects the *whole scope*, so a later op's locks may fall
  /// below it. In-order requests block (when \p MayBlock); out-of-order
  /// requests go through the try path, and a failure surfaces as
  /// WouldBlock for the caller's bounded wait-die abort path — no
  /// acquisition ever blocks out of order, so the waits-for graph of
  /// blocking edges stays acyclic across transaction scopes. A request
  /// to escalate a held shared lock reports Upgrade (a shared_mutex
  /// cannot upgrade atomically; the transaction layer avoids this by
  /// locking reads exclusively, and treats Upgrade as an abort).
  TxnAcquire acquireTxn(PhysicalLock &Lock, const LockOrderKey &Key,
                        LockMode Mode, bool MayBlock);

  /// A rollback point for partial release: everything acquired after
  /// mark() can be released with releaseToMark() — the retry path of a
  /// transactional operation, which must shed the failed attempt's
  /// locks while retaining the scope's earlier acquisitions.
  struct Mark {
    size_t HeldCount = 0;
    bool HasMaxKey = false;
    LockOrderKey MaxKey;
  };
  Mark mark() const { return {Held.size(), HasMaxKey, MaxKey}; }

  /// Releases (in reverse order) every lock acquired since \p M and
  /// restores the order high-water mark. The caller keeps the locked
  /// instances alive until this returns (as for releaseAll), and must
  /// not have released anything since taking the mark.
  void releaseToMark(const Mark &M);

  /// True if this transaction already holds \p Lock (in any mode).
  bool holds(const PhysicalLock &Lock) const;

  /// True if this transaction holds \p Lock in a mode at least \p Mode.
  bool holdsAtLeast(const PhysicalLock &Lock, LockMode Mode) const;

  /// Releases every held lock in reverse acquisition order (the
  /// shrinking phase) and clears the set. Lock-owner lifetime is the
  /// caller's duty: POSIX forbids destroying a lock while an unlock of
  /// it is in flight, so whoever owns the locked instances must keep
  /// them alive until this returns (the executor's ExecContext pool
  /// pins them until its post-release reset()).
  void releaseAll();

  size_t heldCount() const { return Held.size(); }

  /// Number of times this set hit WouldBlock (restart pressure metric).
  uint64_t restarts() const { return Restarts; }
  void noteRestart() { ++Restarts; }

  /// True if acquiring a lock at \p Key would respect the global order
  /// given what this transaction already holds. Speculative acquisitions
  /// (§4.5) use this to choose between blocking and try-lock paths.
  bool inOrder(const LockOrderKey &Key) const {
    return !HasMaxKey || !(Key < MaxKey);
  }

  /// \name Wait-die birth stamps (txn/Transaction.h)
  /// A transaction scope sets its birth stamp for the scope's lifetime;
  /// while it is non-zero, every exclusive acquisition publishes it to
  /// the lock's owner table (PhysicalLock::setOwnerStamp) and every
  /// release retracts it, so a contender that loses a try can tell how
  /// old the holder is. Bare operations (stamp 0) never touch the owner
  /// tables — the single extra branch per acquisition is their whole
  /// cost.
  /// @{
  void setBirthStamp(uint64_t S) { BirthStamp = S; }
  uint64_t birthStamp() const { return BirthStamp; }
  /// The owner stamp of the lock behind the most recent WouldBlock,
  /// consumed (reset to 0) by the read — each failed try reports at
  /// most once, so a stale stamp can never kill a later, unrelated
  /// retry.
  uint64_t takeLastConflictStamp() {
    uint64_t S = LastConflict;
    LastConflict = 0;
    return S;
  }
  /// @}

  /// Places this set's acquisitions in the process-global domain order
  /// the per-thread LockOrderValidator checks (debug builds): tier 0
  /// for primary-representation operations with the shard index as
  /// ordinal, tier 1 for mirror/backfill executions on a migration's
  /// target representation — every thread orders source (tier 0) locks
  /// before target (tier 1) locks, and shards in index order.
  void setOrderDomain(uint32_t Tier, uint32_t Ordinal) {
    DomainTier = Tier;
    DomainOrdinal = Ordinal;
  }
  uint64_t orderDomain() const {
    return (static_cast<uint64_t>(DomainTier) << 32) | DomainOrdinal;
  }

private:
  struct Entry {
    PhysicalLock *Lock;
    LockMode Mode;
  };
  std::vector<Entry> Held;
  uint64_t Restarts = 0;
  uint64_t BirthStamp = 0;    ///< this scope's wait-die age (0: bare op)
  uint64_t LastConflict = 0;  ///< holder stamp behind the last WouldBlock
  bool HasMaxKey = false;
  LockOrderKey MaxKey;
  uint32_t DomainTier = 0;
  uint32_t DomainOrdinal = 0;

  Entry *findEntry(const PhysicalLock &Lock);
  const Entry *findEntry(const PhysicalLock &Lock) const;
};

} // namespace crs

#endif // CRS_SYNC_LOCKSET_H
