//===- sync/PhysicalLock.h - Shared/exclusive physical locks ----*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Physical locks (paper §4.2–4.3): pessimistic synchronization primitives
/// held in shared or exclusive mode. Logical locks — one per decomposition
/// edge instance — are *implemented* by mapping them onto these physical
/// locks via a lock placement. Physical locks live on node instances;
/// striping (§4.4) attaches several to one node.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SYNC_PHYSICALLOCK_H
#define CRS_SYNC_PHYSICALLOCK_H

#include <atomic>
#include <cstdint>
#include <shared_mutex>

namespace crs {

/// Lock access mode. Exclusive access excludes all other holders; shared
/// access permits other shared holders (paper §4.2).
enum class LockMode : uint8_t { Shared, Exclusive };

/// A shared/exclusive lock with lightweight contention counters. The
/// counters feed the experiment harness (lock-contention reporting).
///
/// Counting discipline: *exclusive* acquisitions count exactly — the
/// acquirer serialized on the lock anyway, so one more relaxed RMW on
/// the same line is free. *Shared* acquisitions are the scalable case
/// (many readers, no mutual exclusion), and an exact counter would put
/// a contended RMW on every one of them, re-serializing exactly the
/// path the shared mode exists to scale; they are therefore *sampled*:
/// each thread counts privately and credits the lock with
/// SharedSamplePeriod acquisitions on every SharedSamplePeriod-th
/// shared acquisition it performs (across all locks). acquisitions()
/// is consequently an unbiased estimate on the shared side — it reads
/// 0 under light traffic (fewer than a period's worth per thread), and
/// an exact 0 means *no* exclusive and no sampled-in shared
/// acquisitions at all, which is what the wait-free read-path tests
/// assert. Contention events stay exact in both modes (they are rare
/// by construction).
class PhysicalLock {
public:
  /// Shared-side sampling period (a power of two): one credited batch
  /// per this many per-thread shared acquisitions.
  static constexpr uint64_t SharedSamplePeriod = 64;

  PhysicalLock() = default;
  PhysicalLock(const PhysicalLock &) = delete;
  PhysicalLock &operator=(const PhysicalLock &) = delete;

  void lock(LockMode Mode) {
    if (Mode == LockMode::Exclusive) {
      if (!Mutex.try_lock()) {
        Contended.fetch_add(1, std::memory_order_relaxed);
        Mutex.lock();
      }
      Acquired.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (!Mutex.try_lock_shared()) {
        Contended.fetch_add(1, std::memory_order_relaxed);
        Mutex.lock_shared();
      }
      countShared();
    }
  }

  /// Non-blocking acquisition; used for out-of-order speculative locking
  /// (§4.5) where blocking could deadlock.
  bool tryLock(LockMode Mode) {
    if (Mode == LockMode::Exclusive) {
      if (!Mutex.try_lock())
        return false;
      Acquired.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (!Mutex.try_lock_shared())
      return false;
    countShared();
    return true;
  }

  void unlock(LockMode Mode) {
    if (Mode == LockMode::Exclusive)
      Mutex.unlock();
    else
      Mutex.unlock_shared();
  }

  /// Exact exclusive acquisitions plus the sampled shared estimate (see
  /// the class comment).
  uint64_t acquisitions() const {
    return Acquired.load(std::memory_order_relaxed);
  }
  uint64_t contentions() const {
    return Contended.load(std::memory_order_relaxed);
  }

  /// \name Wait-die owner table (txn/Transaction.h)
  /// The birth stamp of the transaction scope holding this lock
  /// exclusively — 0 for bare operations, shared holders, and the
  /// unheld state. Written by the *holder* (set after its exclusive
  /// acquisition, cleared before its unlock) and read racily by a
  /// contender whose tryLock just failed: the contender may observe 0
  /// or a successor holder's stamp, which costs it only the wait-die
  /// fast path (it falls back to the bounded try budget), never
  /// correctness. Relaxed throughout — the stamp is a hint, ordered by
  /// nothing, and must stay off the acquisition fast path's critical
  /// dependencies.
  /// @{
  void setOwnerStamp(uint64_t S) {
    OwnerStamp.store(S, std::memory_order_relaxed);
  }
  void clearOwnerStamp() { OwnerStamp.store(0, std::memory_order_relaxed); }
  uint64_t ownerStamp() const {
    return OwnerStamp.load(std::memory_order_relaxed);
  }
  /// @}

private:
  void countShared() {
    static thread_local uint64_t Tick = 0;
    if ((++Tick & (SharedSamplePeriod - 1)) == 0)
      Acquired.fetch_add(SharedSamplePeriod, std::memory_order_relaxed);
  }

  std::shared_mutex Mutex;
  std::atomic<uint64_t> Acquired{0};
  std::atomic<uint64_t> Contended{0};
  std::atomic<uint64_t> OwnerStamp{0};
};

} // namespace crs

#endif // CRS_SYNC_PHYSICALLOCK_H
