//===- sync/PhysicalLock.h - Shared/exclusive physical locks ----*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Physical locks (paper §4.2–4.3): pessimistic synchronization primitives
/// held in shared or exclusive mode. Logical locks — one per decomposition
/// edge instance — are *implemented* by mapping them onto these physical
/// locks via a lock placement. Physical locks live on node instances;
/// striping (§4.4) attaches several to one node.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SYNC_PHYSICALLOCK_H
#define CRS_SYNC_PHYSICALLOCK_H

#include <atomic>
#include <cstdint>
#include <shared_mutex>

namespace crs {

/// Lock access mode. Exclusive access excludes all other holders; shared
/// access permits other shared holders (paper §4.2).
enum class LockMode : uint8_t { Shared, Exclusive };

/// A shared/exclusive lock with lightweight contention counters. The
/// counters feed the experiment harness (lock-contention reporting) and
/// cost nothing beyond relaxed atomics when unused.
class PhysicalLock {
public:
  PhysicalLock() = default;
  PhysicalLock(const PhysicalLock &) = delete;
  PhysicalLock &operator=(const PhysicalLock &) = delete;

  void lock(LockMode Mode) {
    if (Mode == LockMode::Exclusive) {
      if (!Mutex.try_lock()) {
        Contended.fetch_add(1, std::memory_order_relaxed);
        Mutex.lock();
      }
    } else {
      if (!Mutex.try_lock_shared()) {
        Contended.fetch_add(1, std::memory_order_relaxed);
        Mutex.lock_shared();
      }
    }
    Acquired.fetch_add(1, std::memory_order_relaxed);
  }

  /// Non-blocking acquisition; used for out-of-order speculative locking
  /// (§4.5) where blocking could deadlock.
  bool tryLock(LockMode Mode) {
    bool Ok = Mode == LockMode::Exclusive ? Mutex.try_lock()
                                          : Mutex.try_lock_shared();
    if (Ok)
      Acquired.fetch_add(1, std::memory_order_relaxed);
    return Ok;
  }

  void unlock(LockMode Mode) {
    if (Mode == LockMode::Exclusive)
      Mutex.unlock();
    else
      Mutex.unlock_shared();
  }

  uint64_t acquisitions() const {
    return Acquired.load(std::memory_order_relaxed);
  }
  uint64_t contentions() const {
    return Contended.load(std::memory_order_relaxed);
  }

private:
  std::shared_mutex Mutex;
  std::atomic<uint64_t> Acquired{0};
  std::atomic<uint64_t> Contended{0};
};

} // namespace crs

#endif // CRS_SYNC_PHYSICALLOCK_H
