//===- sync/DeadlockDetector.h - Wait-for-graph cycle checking --*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A test-only wait-for-graph deadlock detector. The synthesized code is
/// deadlock-free by construction (global lock order, §5.1); the test suite
/// uses this detector to *validate* that claim: stress tests register
/// waits-for edges and assert no cycle ever forms, and dedicated tests
/// check that the detector does catch deliberately misordered acquisitions.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_SYNC_DEADLOCKDETECTOR_H
#define CRS_SYNC_DEADLOCKDETECTOR_H

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

namespace crs {

/// Tracks which agent (thread/transaction id) waits for which resource
/// (lock address or id) and which agent holds each resource; detects
/// cycles in the induced wait-for graph.
class DeadlockDetector {
public:
  using AgentId = uint64_t;
  using ResourceId = uint64_t;

  /// Declares that \p Agent is about to block on \p Resource. Returns
  /// true if granting the wait would create a wait-for cycle (deadlock).
  bool onWait(AgentId Agent, ResourceId Resource);

  /// Declares that \p Agent acquired \p Resource (clears any wait edge).
  /// Shared holders are all recorded.
  void onAcquire(AgentId Agent, ResourceId Resource);

  /// Declares that \p Agent released \p Resource.
  void onRelease(AgentId Agent, ResourceId Resource);

  /// Number of deadlocks reported by onWait so far.
  uint64_t deadlocksDetected() const;

  void reset();

private:
  mutable std::mutex Mutex;
  std::map<ResourceId, std::set<AgentId>> Holders;
  std::map<AgentId, ResourceId> WaitingFor;
  uint64_t Deadlocks = 0;

  bool wouldCycleLocked(AgentId Agent, ResourceId Resource) const;
};

} // namespace crs

#endif // CRS_SYNC_DEADLOCKDETECTOR_H
