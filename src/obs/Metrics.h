//===- obs/Metrics.h - Metrics registry and latency histograms --*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified observability registry: named, labeled counters, gauges,
/// and log2-bucketed latency histograms, plus one event-trace ring per
/// subsystem domain (obs/EventRing.h), all drained by one lock-free-on-
/// the-hot-path snapshot() that the exporter (obs/Exporter.h) renders
/// as `crs-metrics/1` JSON or Prometheus text.
///
/// The overhead argument mirrors the rest of the runtime:
///
///  - Counters are cache-line-striped exactly like the runtime's
///    StripedCounter — an increment is one relaxed fetch_add on a
///    per-stripe private line, never a shared-line RMW.
///  - Histograms record in one relaxed fetch_add per sample: the value
///    indexes a power-of-two bucket (floor(log2 nanos)) in a striped
///    bucket array. p50/p95/p99 come out of the bucket counts at
///    snapshot time; max is tracked exactly with a CAS-if-greater.
///  - Hot paths that cannot afford even a clock read per operation
///    (prepared-op latency) *sample*: maybeSampleStart() charges one
///    thread-local countdown per call and reads the clock only every
///    latencySamplePeriod()-th operation — the same dilution PR 6 used
///    for the shared-lock counters.
///  - Registration (counter()/histogram()/addCallback()) takes a mutex
///    and allocates; it happens once per metric, never per operation.
///    Returned references are stable for the registry's lifetime.
///
/// Subsystems either bump registry counters directly or register
/// *callbacks* exporting counters they already maintain (a relation's
/// striped op counts, the WAL's append totals), so attaching metrics
/// adds no second counting path. The global() registry is leaked, so
/// metric references never dangle; per-test registries can be stack
/// constructed when isolation matters.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_OBS_METRICS_H
#define CRS_OBS_METRICS_H

#include "obs/EventRing.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace crs {
namespace obs {

/// Metric dimensions, e.g. {{"relation","edges"},{"shard","3"}}. Order
/// is preserved and significant for identity: register with a
/// consistent label order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// A cache-line-striped relaxed counter (the registry-owned twin of
/// runtime/Statistics.h's StripedCounter, with an add() for byte-sized
/// increments). Monotonic; readers diff successive loads.
class Counter {
public:
  void inc(uint64_t N = 1) {
    Stripes[threadStripe()].N.fetch_add(N, std::memory_order_relaxed);
  }
  uint64_t load() const {
    uint64_t Sum = 0;
    for (const Stripe &S : Stripes)
      Sum += S.N.load(std::memory_order_relaxed);
    return Sum;
  }

private:
  static constexpr unsigned NumStripes = 16;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> N{0};
  };
  static unsigned threadStripe() {
    static std::atomic<unsigned> Next{0};
    static thread_local const unsigned Mine =
        Next.fetch_add(1, std::memory_order_relaxed) % NumStripes;
    return Mine;
  }
  Stripe Stripes[NumStripes];
};

/// A last-writer-wins signed level (queue depths, watermarks). Not
/// striped: gauges are set from cold paths.
class Gauge {
public:
  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  void add(int64_t D) { Value.fetch_add(D, std::memory_order_relaxed); }
  int64_t load() const { return Value.load(std::memory_order_relaxed); }

private:
  alignas(64) std::atomic<int64_t> Value{0};
};

/// A log2-bucketed latency histogram over nanoseconds. Bucket B counts
/// samples in [2^B, 2^(B+1)) — 64 buckets cover the full uint64 range,
/// so a ~100ns fast-path read and a ~10ms fsync land 17 buckets apart
/// with no configuration. Recording is striped (8 stripes of private
/// bucket lines) and relaxed; quantiles are derived at snapshot time
/// from the merged bucket counts (resolution: one power of two, i.e.
/// a reported p99 is an upper bound within 2x), and max is exact.
class LatencyHistogram {
public:
  static constexpr unsigned NumBuckets = 64;

  void record(uint64_t Nanos) {
    Stripe &S = Stripes[threadStripe()];
    S.Buckets[bucketOf(Nanos)].fetch_add(1, std::memory_order_relaxed);
    S.Sum.fetch_add(Nanos, std::memory_order_relaxed);
    uint64_t Seen = S.Max.load(std::memory_order_relaxed);
    while (Nanos > Seen &&
           !S.Max.compare_exchange_weak(Seen, Nanos,
                                        std::memory_order_relaxed))
      ;
  }

  /// Merged view of one histogram, self-contained for quantile math.
  struct Data {
    uint64_t Buckets[NumBuckets] = {};
    uint64_t Count = 0;
    uint64_t SumNanos = 0;
    uint64_t MaxNanos = 0;

    /// Upper-bound estimate of the \p P quantile (P in [0,1]),
    /// clamped to the exact max. Zero when empty.
    uint64_t quantileNanos(double P) const;
    double meanNanos() const {
      return Count ? static_cast<double>(SumNanos) /
                         static_cast<double>(Count)
                   : 0.0;
    }
  };
  Data snapshot() const;

private:
  static constexpr unsigned NumStripes = 8;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> Buckets[NumBuckets] = {};
    std::atomic<uint64_t> Sum{0};
    std::atomic<uint64_t> Max{0};
  };
  static unsigned bucketOf(uint64_t Nanos) {
    return 63u - static_cast<unsigned>(__builtin_clzll(Nanos | 1));
  }
  static unsigned threadStripe() {
    static std::atomic<unsigned> Next{0};
    static thread_local const unsigned Mine =
        Next.fetch_add(1, std::memory_order_relaxed) % NumStripes;
    return Mine;
  }
  Stripe Stripes[NumStripes];
};

/// One registry capture: every metric's value, every ring's recent
/// events, at roughly one instant (counters are relaxed, so "roughly"
/// is the contract — see StripedCounter).
struct MetricsSnapshot {
  struct CounterSample {
    std::string Name;
    MetricLabels Labels;
    uint64_t Value;
  };
  struct GaugeSample {
    std::string Name;
    MetricLabels Labels;
    int64_t Value;
  };
  struct HistogramSample {
    std::string Name;
    MetricLabels Labels;
    LatencyHistogram::Data Data;
  };
  struct DomainEvents {
    EventDomain Domain;
    std::vector<TraceEvent> Events;
  };

  uint64_t CapturedMicros = 0; ///< wall-clock unix micros of capture
  std::vector<CounterSample> Counters;
  std::vector<GaugeSample> Gauges;
  std::vector<HistogramSample> Histograms;
  std::vector<DomainEvents> Events; ///< one entry per domain, in order
};

/// The registry of all metrics and rings. Thread-safe throughout;
/// only registration and snapshot take the mutex.
class MetricsRegistry {
public:
  /// How a snapshot-time callback's value is typed in exports.
  enum class CallbackKind { Counter, Gauge };
  using CallbackId = uint64_t;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// The process-wide registry. Leaked (like EpochDomain::global()), so
  /// references handed out stay valid through static destruction.
  static MetricsRegistry &global();

  /// Finds or creates the metric named \p Name with \p Labels. The
  /// returned reference is stable for the registry's lifetime; callers
  /// cache it and never re-look-up per operation.
  Counter &counter(const std::string &Name, MetricLabels Labels = {});
  Gauge &gauge(const std::string &Name, MetricLabels Labels = {});
  LatencyHistogram &histogram(const std::string &Name,
                              MetricLabels Labels = {});

  /// Registers a snapshot-time value source for a counter a subsystem
  /// already maintains (no second counting path on the hot side). \p Fn
  /// runs under the registry mutex during snapshot(); it must not call
  /// back into the registry. Remove before the underlying object dies —
  /// removal synchronizes with any in-flight snapshot via that mutex.
  CallbackId addCallback(std::string Name, MetricLabels Labels,
                         CallbackKind Kind, std::function<uint64_t()> Fn);
  void removeCallback(CallbackId Id);
  void removeCallbacks(const std::vector<CallbackId> &Ids);

  /// The event ring for \p D. Rings exist for the registry's lifetime.
  TraceRing &ring(EventDomain D) { return Rings[unsigned(D)]; }

  /// Captures everything (cold: takes the mutex, runs callbacks, sums
  /// counter stripes, decodes rings). Writers are never blocked.
  MetricsSnapshot snapshot() const;

  /// Master switch read by maybeSampleStart() (and honored by wired
  /// subsystems for per-op work beyond their pre-existing counters).
  /// Default on: attaching a registry is already the opt-in.
  void setEnabled(bool E) { Enabled.store(E, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Sample one in \p P prepared-op latencies (default 64). 1 records
  /// every operation — useful in tests, too hot for production reads.
  void setLatencySamplePeriod(uint32_t P) {
    SamplePeriod.store(P ? P : 1, std::memory_order_relaxed);
  }
  uint32_t latencySamplePeriod() const {
    return SamplePeriod.load(std::memory_order_relaxed);
  }

  /// Start-of-operation hook for sampled latency timing: returns a
  /// start timestamp in nanos for the one-in-period sampled calls, 0
  /// (skip) otherwise. Cost on the skip path is one relaxed load and a
  /// thread-local countdown — no clock read, no division.
  uint64_t maybeSampleStart() const {
    if (!Enabled.load(std::memory_order_relaxed))
      return 0;
    static thread_local uint32_t Left = 0;
    if (Left != 0) {
      --Left;
      return 0;
    }
    Left = SamplePeriod.load(std::memory_order_relaxed) - 1;
    return nowNanos();
  }

  /// Monotonic nanoseconds (steady clock), the histograms' time base.
  static uint64_t nowNanos();

private:
  template <typename T> struct Entry {
    std::string Name;
    MetricLabels Labels;
    T Metric;
  };
  struct Callback {
    CallbackId Id;
    std::string Name;
    MetricLabels Labels;
    CallbackKind Kind;
    std::function<uint64_t()> Fn;
  };

  static std::string keyOf(const std::string &Name,
                           const MetricLabels &Labels);
  template <typename T>
  T &findOrCreate(std::deque<Entry<T>> &List,
                  std::map<std::string, T *> &Index,
                  const std::string &Name, MetricLabels &&Labels);

  std::atomic<bool> Enabled{true};
  std::atomic<uint32_t> SamplePeriod{64};

  mutable std::mutex M;
  // deques: element addresses are stable across growth, which is what
  // lets the hot side hold bare references while registration continues.
  std::deque<Entry<Counter>> CounterList;
  std::deque<Entry<Gauge>> GaugeList;
  std::deque<Entry<LatencyHistogram>> HistogramList;
  std::map<std::string, Counter *> CounterIdx;
  std::map<std::string, Gauge *> GaugeIdx;
  std::map<std::string, LatencyHistogram *> HistogramIdx;
  std::vector<Callback> Callbacks;
  CallbackId NextCallbackId = 1;

  TraceRing Rings[NumEventDomains];
};

} // namespace obs
} // namespace crs

#endif // CRS_OBS_METRICS_H
