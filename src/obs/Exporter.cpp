//===- obs/Exporter.cpp - crs-metrics/1 JSON + Prometheus export ----------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "obs/Exporter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

namespace crs {
namespace obs {

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
}

void appendU64(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(V));
  Out += Buf;
}

void appendI64(std::string &Out, int64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  Out += Buf;
}

void appendLabelsJson(std::string &Out, const MetricLabels &Labels) {
  Out += "{";
  bool First = true;
  for (const auto &L : Labels) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "\"";
    appendEscaped(Out, L.first);
    Out += "\": \"";
    appendEscaped(Out, L.second);
    Out += "\"";
  }
  Out += "}";
}

uint64_t bucketUpperBound(unsigned B) {
  return B >= 63 ? UINT64_MAX : ((uint64_t(1) << (B + 1)) - 1);
}

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; dotted
/// registry names map onto that with a crs_ prefix and '.' -> '_'.
std::string promName(const std::string &Name) {
  std::string Out = "crs_";
  for (char C : Name) {
    const bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                    (C >= '0' && C <= '9') || C == '_';
    Out.push_back(Ok ? C : '_');
  }
  return Out;
}

void appendPromLabels(std::string &Out, const MetricLabels &Labels,
                      const char *ExtraKey = nullptr,
                      const std::string &ExtraVal = std::string()) {
  if (Labels.empty() && !ExtraKey)
    return;
  Out += "{";
  bool First = true;
  for (const auto &L : Labels) {
    if (!First)
      Out += ",";
    First = false;
    Out += L.first;
    Out += "=\"";
    for (char C : L.second) { // label-value escaping: \ " and newline
      if (C == '\\')
        Out += "\\\\";
      else if (C == '"')
        Out += "\\\"";
      else if (C == '\n')
        Out += "\\n";
      else
        Out.push_back(C);
    }
    Out += "\"";
  }
  if (ExtraKey) {
    if (!First)
      Out += ",";
    Out += ExtraKey;
    Out += "=\"";
    Out += ExtraVal;
    Out += "\"";
  }
  Out += "}";
}

} // namespace

std::string toJson(const MetricsSnapshot &S) {
  std::string Out;
  Out.reserve(4096);
  Out += "{\n  \"schema\": \"crs-metrics/1\",\n  \"captured_unix_micros\": ";
  appendU64(Out, S.CapturedMicros);
  Out += ",\n  \"counters\": [";
  for (size_t I = 0; I < S.Counters.size(); ++I) {
    const auto &C = S.Counters[I];
    Out += I ? ",\n    " : "\n    ";
    Out += "{\"name\": \"";
    appendEscaped(Out, C.Name);
    Out += "\", \"labels\": ";
    appendLabelsJson(Out, C.Labels);
    Out += ", \"value\": ";
    appendU64(Out, C.Value);
    Out += "}";
  }
  Out += S.Counters.empty() ? "],\n" : "\n  ],\n";
  Out += "  \"gauges\": [";
  for (size_t I = 0; I < S.Gauges.size(); ++I) {
    const auto &G = S.Gauges[I];
    Out += I ? ",\n    " : "\n    ";
    Out += "{\"name\": \"";
    appendEscaped(Out, G.Name);
    Out += "\", \"labels\": ";
    appendLabelsJson(Out, G.Labels);
    Out += ", \"value\": ";
    appendI64(Out, G.Value);
    Out += "}";
  }
  Out += S.Gauges.empty() ? "],\n" : "\n  ],\n";
  Out += "  \"histograms\": [";
  for (size_t I = 0; I < S.Histograms.size(); ++I) {
    const auto &H = S.Histograms[I];
    Out += I ? ",\n    " : "\n    ";
    Out += "{\"name\": \"";
    appendEscaped(Out, H.Name);
    Out += "\", \"labels\": ";
    appendLabelsJson(Out, H.Labels);
    Out += ", \"count\": ";
    appendU64(Out, H.Data.Count);
    Out += ", \"sum_nanos\": ";
    appendU64(Out, H.Data.SumNanos);
    Out += ", \"max_nanos\": ";
    appendU64(Out, H.Data.MaxNanos);
    Out += ", \"p50_nanos\": ";
    appendU64(Out, H.Data.quantileNanos(0.50));
    Out += ", \"p95_nanos\": ";
    appendU64(Out, H.Data.quantileNanos(0.95));
    Out += ", \"p99_nanos\": ";
    appendU64(Out, H.Data.quantileNanos(0.99));
    Out += ", \"buckets\": [";
    bool FirstB = true;
    for (unsigned B = 0; B < LatencyHistogram::NumBuckets; ++B) {
      if (!H.Data.Buckets[B])
        continue;
      if (!FirstB)
        Out += ", ";
      FirstB = false;
      Out += "{\"le_nanos\": ";
      appendU64(Out, bucketUpperBound(B));
      Out += ", \"count\": ";
      appendU64(Out, H.Data.Buckets[B]);
      Out += "}";
    }
    Out += "]}";
  }
  Out += S.Histograms.empty() ? "],\n" : "\n  ],\n";
  Out += "  \"events\": [";
  bool FirstE = true;
  for (const auto &D : S.Events) {
    for (const TraceEvent &E : D.Events) {
      Out += FirstE ? "\n    " : ",\n    ";
      FirstE = false;
      Out += "{\"domain\": \"";
      Out += domainName(D.Domain);
      Out += "\", \"seq\": ";
      appendU64(Out, E.Seq);
      Out += ", \"unix_micros\": ";
      appendU64(Out, E.Micros);
      Out += ", \"kind\": \"";
      Out += kindName(E.Kind);
      Out += "\", \"a\": ";
      appendU64(Out, E.A);
      Out += ", \"b\": ";
      appendU64(Out, E.B);
      Out += ", \"c\": ";
      appendU64(Out, E.C);
      Out += "}";
    }
  }
  Out += FirstE ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

std::string toPrometheus(const MetricsSnapshot &S) {
  std::string Out;
  Out.reserve(4096);
  // The text format wants all samples of one metric name grouped under
  // a single TYPE line, so bucket the samples by name first.
  std::map<std::string,
           std::vector<const MetricsSnapshot::CounterSample *>>
      Counters;
  for (const auto &C : S.Counters)
    Counters[C.Name].push_back(&C);
  for (const auto &G : Counters) {
    const std::string P = promName(G.first);
    Out += "# TYPE " + P + " counter\n";
    for (const auto *C : G.second) {
      Out += P;
      appendPromLabels(Out, C->Labels);
      Out += " ";
      appendU64(Out, C->Value);
      Out += "\n";
    }
  }
  std::map<std::string, std::vector<const MetricsSnapshot::GaugeSample *>>
      Gauges;
  for (const auto &G : S.Gauges)
    Gauges[G.Name].push_back(&G);
  for (const auto &G : Gauges) {
    const std::string P = promName(G.first);
    Out += "# TYPE " + P + " gauge\n";
    for (const auto *Smp : G.second) {
      Out += P;
      appendPromLabels(Out, Smp->Labels);
      Out += " ";
      appendI64(Out, Smp->Value);
      Out += "\n";
    }
  }
  std::map<std::string,
           std::vector<const MetricsSnapshot::HistogramSample *>>
      Hists;
  for (const auto &H : S.Histograms)
    Hists[H.Name].push_back(&H);
  for (const auto &G : Hists) {
    const std::string P = promName(G.first) + "_nanos";
    Out += "# TYPE " + P + " histogram\n";
    for (const auto *H : G.second) {
      uint64_t Cum = 0;
      for (unsigned B = 0; B < LatencyHistogram::NumBuckets; ++B) {
        if (!H->Data.Buckets[B])
          continue;
        Cum += H->Data.Buckets[B];
        char LeBuf[24];
        std::snprintf(LeBuf, sizeof(LeBuf), "%llu",
                      static_cast<unsigned long long>(bucketUpperBound(B)));
        Out += P + "_bucket";
        appendPromLabels(Out, H->Labels, "le", LeBuf);
        Out += " ";
        appendU64(Out, Cum);
        Out += "\n";
      }
      Out += P + "_bucket";
      appendPromLabels(Out, H->Labels, "le", "+Inf");
      Out += " ";
      appendU64(Out, H->Data.Count);
      Out += "\n";
      Out += P + "_sum";
      appendPromLabels(Out, H->Labels);
      Out += " ";
      appendU64(Out, H->Data.SumNanos);
      Out += "\n";
      Out += P + "_count";
      appendPromLabels(Out, H->Labels);
      Out += " ";
      appendU64(Out, H->Data.Count);
      Out += "\n";
    }
  }
  return Out;
}

bool writeJsonFile(const MetricsSnapshot &S, const std::string &Path,
                   std::string *Err) {
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Path;
    return false;
  }
  const std::string Doc = toJson(S);
  const bool Ok =
      std::fwrite(Doc.data(), 1, Doc.size(), F) == Doc.size() &&
      std::fclose(F) == 0;
  if (!Ok) {
    if (Err)
      *Err = "short write to " + Path;
    return false;
  }
  return true;
}

bool exportIfRequested(MetricsRegistry &Reg) {
  const char *Path = std::getenv("CRS_METRICS_JSON");
  if (!Path || !*Path)
    return false;
  return writeJsonFile(Reg.snapshot(), Path);
}

} // namespace obs
} // namespace crs
