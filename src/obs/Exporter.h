//===- obs/Exporter.h - crs-metrics/1 JSON + Prometheus export --*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders one MetricsSnapshot as (a) a stable JSON document, schema
/// `crs-metrics/1` — the machine-readable dump benches and the CI
/// stress lane archive, pretty-printed and diffed by
/// tools/metrics_summary.py — and (b) Prometheus text exposition
/// (counters, gauges, and cumulative-`le` histograms; trace events
/// have no Prometheus analogue and appear only in the JSON). Both come
/// from the same snapshot, so the two views always agree.
///
/// Schema sketch (all integers; absent-by-emptiness, never null):
///
/// \code{.json}
///   { "schema": "crs-metrics/1",
///     "captured_unix_micros": N,
///     "counters":   [ {"name": "...", "labels": {..}, "value": N} ],
///     "gauges":     [ {"name": "...", "labels": {..}, "value": N} ],
///     "histograms": [ {"name": "...", "labels": {..},
///                      "count": N, "sum_nanos": N, "max_nanos": N,
///                      "p50_nanos": N, "p95_nanos": N, "p99_nanos": N,
///                      "buckets": [ {"le_nanos": N, "count": N} ]} ],
///     "events":     [ {"domain": "...", "seq": N, "unix_micros": N,
///                      "kind": "...", "a": N, "b": N, "c": N} ] }
/// \endcode
///
/// Histogram buckets are sparse (zero buckets omitted); `le_nanos` is
/// the bucket's inclusive upper bound 2^(B+1)-1.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_OBS_EXPORTER_H
#define CRS_OBS_EXPORTER_H

#include "obs/Metrics.h"

#include <string>

namespace crs {
namespace obs {

/// Renders \p S as a `crs-metrics/1` JSON document (newline-terminated).
std::string toJson(const MetricsSnapshot &S);

/// Renders \p S as Prometheus text exposition format.
std::string toPrometheus(const MetricsSnapshot &S);

/// Writes toJson(S) to \p Path atomically-ish (truncate + write).
/// Returns false and fills \p Err (if non-null) on I/O failure.
bool writeJsonFile(const MetricsSnapshot &S, const std::string &Path,
                   std::string *Err = nullptr);

/// Convenience for tools and examples: if the CRS_METRICS_JSON
/// environment variable names a path, snapshots \p Reg and writes the
/// JSON dump there. Returns true if a dump was written.
bool exportIfRequested(MetricsRegistry &Reg);

} // namespace obs
} // namespace crs

#endif // CRS_OBS_EXPORTER_H
