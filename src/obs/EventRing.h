//===- obs/EventRing.h - Bounded structured event-trace rings ---*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded MPSC-ish ring of timestamped structured events, one ring
/// per subsystem domain. Counters (obs/Metrics.h) answer "how much";
/// the rings answer "what happened, in what order" — migration phase
/// flips, tuner decisions with their scores, transaction aborts with
/// their cause, WAL flush rounds with batch sizes and fsync micros,
/// checkpoint begin/end with the watermark, epoch advances with the
/// retire backlog, directory backfills and retirements.
///
/// Emission is wait-free: one relaxed fetch_add claims a slot, plain
/// atomic stores fill it, and a release store of the slot's sequence
/// stamp publishes it. Every slot field is an atomic, so concurrent
/// overwrite is a benign logical race, never a data race (TSan-clean).
/// Draining is non-destructive — an inspector snapshots the last
/// `Capacity` events without disturbing writers; a slot whose stamp
/// changes mid-read (a writer lapped the reader) is simply dropped.
/// The ring stores fixed-width payload words, not strings: decoding
/// (kind names, cause names) happens at snapshot/export time.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_OBS_EVENTRING_H
#define CRS_OBS_EVENTRING_H

#include <atomic>
#include <cstdint>
#include <vector>

namespace crs {
namespace obs {

/// The subsystem a ring (and each of its events) belongs to. One ring
/// per domain keeps chatty subsystems (WAL flush rounds) from evicting
/// rare, precious events elsewhere (migration flips).
enum class EventDomain : uint8_t {
  Relation,  ///< plan-cache / directory lifecycle on one relation
  Txn,       ///< transaction aborts (wait-die kills, upgrades, budget)
  Wal,       ///< flush rounds, segment rotations, checkpoints
  Epoch,     ///< global-epoch advances and reclamation
  Migration, ///< live-migration phase transitions
  Tuner,     ///< tuner ticks that scored or launched a migration
};
constexpr unsigned NumEventDomains = 6;

/// What happened. Payload words A/B/C are kind-specific; the meanings
/// are documented per enumerator and decoded by the exporter.
enum class EventKind : uint32_t {
  /// Migration entered dual-write (mirroring) phase. A=plan epoch
  /// after the flip, B=relation size at the flip.
  MigrationDualWrite,
  /// Migration swapped the primary representation (flip 2). A=plan
  /// epoch after the flip, B=mirrored inserts, C=mirrored removes.
  MigrationSwap,
  /// Migration finished: old representation retired to the epoch
  /// domain. A=backfilled tuples, B=dual-write phase micros.
  MigrationRetired,
  /// A tuner tick scored candidates. A=current cost (x1000),
  /// B=best candidate cost (x1000), C=confirmation streak.
  TunerDecision,
  /// A tuner tick launched a migration. A=winning candidate ordinal,
  /// B=best cost (x1000), C=measured mean op latency in nanos (0 if
  /// no latency histograms were attached).
  TunerMigrated,
  /// A transaction aborted. A=TxnAbortCause enumerator, B=birth stamp
  /// (wait-die age) of the dying scope, C=ops executed before death.
  TxnAbort,
  /// One WAL group-commit flush round. A=bytes moved, B=fsync+write
  /// micros for the round, C=partitions that had data.
  WalFlushRound,
  /// A WAL partition rotated to a new segment file. A=partition,
  /// B=sealed segment index, C=sealed max commit seq.
  WalSegmentRotate,
  /// Checkpoint capture started. A=shard index.
  CheckpointBegin,
  /// Checkpoint capture finished. A=shard index, B=watermark (commit
  /// seq), C=tuples written.
  CheckpointEnd,
  /// The global epoch advanced. A=new epoch, B=retire backlog left
  /// after the advance's reclamation, C=objects reclaimed by it.
  EpochAdvance,
  /// A secondary chain directory finished backfilling. A=directory
  /// column bits, B=buckets, C=chains linked.
  DirectoryBackfill,
  /// A secondary chain directory was retired (its query signature left
  /// the plan cache). A=directory column bits, B=chains unlinked.
  DirectoryRetire,
};

/// Stable lowercase name for a domain ("migration", "wal", ...).
const char *domainName(EventDomain D);
/// Stable PascalCase name for an event kind ("MigrationSwap", ...).
const char *kindName(EventKind K);

/// One decoded event, as returned by TraceRing::snapshot().
struct TraceEvent {
  uint64_t Seq;    ///< ring-local sequence number (monotonic per ring)
  uint64_t Micros; ///< wall-clock unix micros at emission
  EventKind Kind;
  uint64_t A, B, C; ///< kind-specific payload words
};

/// The bounded ring itself. Fixed capacity; old events are overwritten.
class TraceRing {
public:
  static constexpr size_t Capacity = 512;

  /// Records one event. Wait-free; callable from any thread, including
  /// hot paths (one fetch_add + five relaxed stores + one release
  /// store, all to a slot only rarely contended).
  void emit(EventKind Kind, uint64_t A = 0, uint64_t B = 0, uint64_t C = 0);

  /// Non-destructively decodes the most recent events, oldest first.
  /// Slots a writer overwrote mid-read are skipped; the result is a
  /// consistent (per-slot) but possibly gappy view, which is the right
  /// contract for a diagnostic trace under live traffic.
  std::vector<TraceEvent> snapshot() const;

  /// Total events ever emitted (including overwritten ones).
  uint64_t emitted() const { return Next.load(std::memory_order_relaxed); }

private:
  struct Slot {
    /// Sequence+1 of the event the slot holds; 0 while being written.
    std::atomic<uint64_t> Stamp{0};
    std::atomic<uint64_t> Micros{0};
    std::atomic<uint32_t> Kind{0};
    std::atomic<uint64_t> A{0}, B{0}, C{0};
  };
  std::atomic<uint64_t> Next{0};
  Slot Slots[Capacity];
};

} // namespace obs
} // namespace crs

#endif // CRS_OBS_EVENTRING_H
