//===- obs/Metrics.cpp - Metrics registry and latency histograms ----------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <chrono>

namespace crs {
namespace obs {

uint64_t LatencyHistogram::Data::quantileNanos(double P) const {
  if (Count == 0)
    return 0;
  if (P < 0.0)
    P = 0.0;
  if (P > 1.0)
    P = 1.0;
  // Rank of the sample we want, 1-based; ceil so p100 needs them all.
  const uint64_t Rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(
                                P * static_cast<double>(Count) + 0.9999999));
  uint64_t Seen = 0;
  for (unsigned B = 0; B < NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen >= Rank) {
      // Upper bound of bucket B is 2^(B+1)-1; the true max tightens it.
      const uint64_t Hi =
          B >= 63 ? UINT64_MAX : ((uint64_t(1) << (B + 1)) - 1);
      return MaxNanos ? std::min(Hi, MaxNanos) : Hi;
    }
  }
  return MaxNanos;
}

LatencyHistogram::Data LatencyHistogram::snapshot() const {
  Data D;
  for (const Stripe &S : Stripes) {
    for (unsigned B = 0; B < NumBuckets; ++B) {
      const uint64_t N = S.Buckets[B].load(std::memory_order_relaxed);
      D.Buckets[B] += N;
      D.Count += N;
    }
    D.SumNanos += S.Sum.load(std::memory_order_relaxed);
    D.MaxNanos = std::max(D.MaxNanos, S.Max.load(std::memory_order_relaxed));
  }
  return D;
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry *G = new MetricsRegistry(); // leaked on purpose
  return *G;
}

uint64_t MetricsRegistry::nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string MetricsRegistry::keyOf(const std::string &Name,
                                   const MetricLabels &Labels) {
  std::string Key = Name;
  for (const auto &L : Labels) {
    Key.push_back('\x1f');
    Key += L.first;
    Key.push_back('\x1e');
    Key += L.second;
  }
  return Key;
}

template <typename T>
T &MetricsRegistry::findOrCreate(std::deque<Entry<T>> &List,
                                 std::map<std::string, T *> &Index,
                                 const std::string &Name,
                                 MetricLabels &&Labels) {
  const std::string Key = keyOf(Name, Labels);
  std::lock_guard<std::mutex> Guard(M);
  auto It = Index.find(Key);
  if (It != Index.end())
    return *It->second;
  List.emplace_back();
  Entry<T> &E = List.back();
  E.Name = Name;
  E.Labels = std::move(Labels);
  Index.emplace(Key, &E.Metric);
  return E.Metric;
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  MetricLabels Labels) {
  return findOrCreate(CounterList, CounterIdx, Name, std::move(Labels));
}

Gauge &MetricsRegistry::gauge(const std::string &Name, MetricLabels Labels) {
  return findOrCreate(GaugeList, GaugeIdx, Name, std::move(Labels));
}

LatencyHistogram &MetricsRegistry::histogram(const std::string &Name,
                                             MetricLabels Labels) {
  return findOrCreate(HistogramList, HistogramIdx, Name, std::move(Labels));
}

MetricsRegistry::CallbackId
MetricsRegistry::addCallback(std::string Name, MetricLabels Labels,
                             CallbackKind Kind,
                             std::function<uint64_t()> Fn) {
  std::lock_guard<std::mutex> Guard(M);
  const CallbackId Id = NextCallbackId++;
  Callbacks.push_back(
      {Id, std::move(Name), std::move(Labels), Kind, std::move(Fn)});
  return Id;
}

void MetricsRegistry::removeCallback(CallbackId Id) {
  std::lock_guard<std::mutex> Guard(M);
  Callbacks.erase(std::remove_if(Callbacks.begin(), Callbacks.end(),
                                 [&](const Callback &C) { return C.Id == Id; }),
                  Callbacks.end());
}

void MetricsRegistry::removeCallbacks(const std::vector<CallbackId> &Ids) {
  std::lock_guard<std::mutex> Guard(M);
  Callbacks.erase(
      std::remove_if(Callbacks.begin(), Callbacks.end(),
                     [&](const Callback &C) {
                       return std::find(Ids.begin(), Ids.end(), C.Id) !=
                              Ids.end();
                     }),
      Callbacks.end());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot Out;
  Out.CapturedMicros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  {
    std::lock_guard<std::mutex> Guard(M);
    Out.Counters.reserve(CounterList.size() + Callbacks.size());
    for (const auto &E : CounterList)
      Out.Counters.push_back({E.Name, E.Labels, E.Metric.load()});
    Out.Gauges.reserve(GaugeList.size());
    for (const auto &E : GaugeList)
      Out.Gauges.push_back({E.Name, E.Labels, E.Metric.load()});
    Out.Histograms.reserve(HistogramList.size());
    for (const auto &E : HistogramList)
      Out.Histograms.push_back({E.Name, E.Labels, E.Metric.snapshot()});
    for (const auto &C : Callbacks) {
      const uint64_t V = C.Fn();
      if (C.Kind == CallbackKind::Counter)
        Out.Counters.push_back({C.Name, C.Labels, V});
      else
        Out.Gauges.push_back(
            {C.Name, C.Labels, static_cast<int64_t>(V)});
    }
  }
  Out.Events.reserve(NumEventDomains);
  for (unsigned D = 0; D < NumEventDomains; ++D)
    Out.Events.push_back(
        {static_cast<EventDomain>(D), Rings[D].snapshot()});
  return Out;
}

} // namespace obs
} // namespace crs
