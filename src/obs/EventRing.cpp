//===- obs/EventRing.cpp - Bounded structured event-trace rings -----------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "obs/EventRing.h"

#include <chrono>

namespace crs {
namespace obs {

const char *domainName(EventDomain D) {
  switch (D) {
  case EventDomain::Relation:
    return "relation";
  case EventDomain::Txn:
    return "txn";
  case EventDomain::Wal:
    return "wal";
  case EventDomain::Epoch:
    return "epoch";
  case EventDomain::Migration:
    return "migration";
  case EventDomain::Tuner:
    return "tuner";
  }
  return "unknown";
}

const char *kindName(EventKind K) {
  switch (K) {
  case EventKind::MigrationDualWrite:
    return "MigrationDualWrite";
  case EventKind::MigrationSwap:
    return "MigrationSwap";
  case EventKind::MigrationRetired:
    return "MigrationRetired";
  case EventKind::TunerDecision:
    return "TunerDecision";
  case EventKind::TunerMigrated:
    return "TunerMigrated";
  case EventKind::TxnAbort:
    return "TxnAbort";
  case EventKind::WalFlushRound:
    return "WalFlushRound";
  case EventKind::WalSegmentRotate:
    return "WalSegmentRotate";
  case EventKind::CheckpointBegin:
    return "CheckpointBegin";
  case EventKind::CheckpointEnd:
    return "CheckpointEnd";
  case EventKind::EpochAdvance:
    return "EpochAdvance";
  case EventKind::DirectoryBackfill:
    return "DirectoryBackfill";
  case EventKind::DirectoryRetire:
    return "DirectoryRetire";
  }
  return "Unknown";
}

static uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void TraceRing::emit(EventKind Kind, uint64_t A, uint64_t B, uint64_t C) {
  const uint64_t Seq = Next.fetch_add(1, std::memory_order_relaxed);
  Slot &S = Slots[Seq % Capacity];
  // Invalidate first so a concurrent reader's stamp re-check rejects a
  // half-overwritten slot, then fill, then publish with the new stamp.
  S.Stamp.store(0, std::memory_order_release);
  S.Micros.store(nowMicros(), std::memory_order_relaxed);
  S.Kind.store(static_cast<uint32_t>(Kind), std::memory_order_relaxed);
  S.A.store(A, std::memory_order_relaxed);
  S.B.store(B, std::memory_order_relaxed);
  S.C.store(C, std::memory_order_relaxed);
  S.Stamp.store(Seq + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> Out;
  const uint64_t End = Next.load(std::memory_order_acquire);
  const uint64_t Begin = End > Capacity ? End - Capacity : 0;
  Out.reserve(static_cast<size_t>(End - Begin));
  for (uint64_t Seq = Begin; Seq < End; ++Seq) {
    const Slot &S = Slots[Seq % Capacity];
    if (S.Stamp.load(std::memory_order_acquire) != Seq + 1)
      continue; // still being written, or already lapped
    TraceEvent E;
    E.Seq = Seq;
    E.Micros = S.Micros.load(std::memory_order_relaxed);
    E.Kind = static_cast<EventKind>(S.Kind.load(std::memory_order_relaxed));
    E.A = S.A.load(std::memory_order_relaxed);
    E.B = S.B.load(std::memory_order_relaxed);
    E.C = S.C.load(std::memory_order_relaxed);
    // Re-check: a writer that lapped us invalidated the stamp before
    // touching the payload, so a stable stamp means a coherent event.
    if (S.Stamp.load(std::memory_order_acquire) != Seq + 1)
      continue;
    Out.push_back(E);
  }
  return Out;
}

} // namespace obs
} // namespace crs
