#!/usr/bin/env python3
"""Markdown link checker for the CRS docs (stdlib only, CI docs job).

Checks every relative link in the repo's markdown files:
  * the target file (or directory) exists;
  * a `#fragment` resolves to a heading in the target file
    (GitHub-style slugs);
  * `file:line`-less code references like `src/...` inside links point
    at real paths.

Absolute URLs (http/https/mailto) are deliberately not fetched — CI
must not depend on the network. Exits 1 if any link is broken (every
breakage is printed), 0 otherwise.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    body = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {slugify(m.group(1)) for m in HEADING_RE.finditer(body)}


def check_file(md: Path, root: Path) -> list:
    errors = []
    body = CODE_FENCE_RE.sub("", md.read_text(encoding="utf-8"))
    for m in LINK_RE.finditer(body):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        if not path_part:  # same-file anchor
            dest = md
        else:
            dest = (md.parent / path_part).resolve()
            if not dest.exists():
                errors.append(f"{md.relative_to(root)}: broken link -> {target}")
                continue
        if fragment:
            if dest.is_file() and dest.suffix == ".md":
                if fragment not in anchors_of(dest):
                    errors.append(
                        f"{md.relative_to(root)}: missing anchor -> {target}")
    return errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    md_files = sorted(root.glob("*.md")) + sorted(root.glob("docs/**/*.md"))
    errors = []
    for md in md_files:
        errors.extend(check_file(md, root))
    for e in errors:
        print(f"error: {e}")
    print(f"checked {len(md_files)} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken links'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
