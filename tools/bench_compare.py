#!/usr/bin/env python3
"""Diff two crs-bench-fig5 JSON documents (stdlib only, CI bench job).

The fig5 bench writes a machine-readable sidecar when CRS_BENCH_JSON is
set (bench/BenchJson.h, schema ``crs-bench-fig5/1``). This tool turns
two such documents — a baseline and a candidate — into a per-series
delta table, so a perf PR carries its own before/after evidence and CI
can flag regressions without anyone eyeballing table screenshots.

Usage:
    bench_compare.py CURRENT.json
        Validate + summarize one document (CI artifact parse check).
    bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]
        Print per-panel deltas. Exits 1 if any series regresses by more
        than PCT percent (default 5) at any shared thread count.

Panels/series present in only one document are reported but never fail
the run (new panels appear as benches grow; that is not a regression).
Single-machine noise caveat: quick-mode numbers on shared CI runners
swing by double-digit percents — treat automated failures as a prompt
to rerun with CRS_BENCH_FULL=1 on quiet hardware, not as a verdict.
"""

import argparse
import json
import sys

SCHEMA = "crs-bench-fig5/1"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r} "
                 f"(want {SCHEMA!r})")
    for key in ("threads", "panels"):
        if key not in doc:
            sys.exit(f"{path}: missing key {key!r}")
    return doc


def summarize(doc, path):
    print(f"{path}: mode={doc.get('mode')} sha={doc.get('git_sha')} "
          f"threads={doc['threads']}")
    for panel in doc["panels"]:
        names = ", ".join(s["name"] for s in panel["series"])
        print(f"  [{panel['section']} {panel['mix']}] {names}")
    print(f"  {len(doc['panels'])} panels OK")


def index_panels(doc):
    return {(p["section"], p["mix"]): p for p in doc["panels"]}


def compare(base, cur, threshold):
    base_panels = index_panels(base)
    cur_panels = index_panels(cur)
    shared_threads = [t for t in cur["threads"] if t in base["threads"]]
    if not shared_threads:
        sys.exit("no shared thread counts between the two documents")
    regressions = []

    for key in sorted(set(base_panels) | set(cur_panels)):
        section, mix = key
        if key not in cur_panels:
            print(f"[{section} {mix}] only in baseline — skipped")
            continue
        if key not in base_panels:
            print(f"[{section} {mix}] new panel — no baseline")
            continue
        base_series = {s["name"]: s for s in base_panels[key]["series"]}
        print(f"[{section} {mix}]")
        for series in cur_panels[key]["series"]:
            name = series["name"]
            if name not in base_series:
                print(f"  {name:<18} new series — no baseline")
                continue
            cells = []
            for t in shared_threads:
                b = base_series[name]["ops_per_sec"][base["threads"].index(t)]
                c = series["ops_per_sec"][cur["threads"].index(t)]
                delta = 100.0 * (c - b) / b if b else float("inf")
                cells.append(f"{t}T {delta:+6.1f}%")
                if delta < -threshold:
                    regressions.append(
                        f"[{section} {mix}] {name} @ {t}T: "
                        f"{b:,.0f} -> {c:,.0f} ops/s ({delta:+.1f}%)")
            print(f"  {name:<18} " + "  ".join(cells))

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"-{threshold:.1f}%:")
        for r in regressions:
            print(f"  {r}")
        return 1
    print(f"\nno series regressed beyond -{threshold:.1f}% "
          f"at threads {shared_threads}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline JSON, or the only file "
                    "in summarize mode")
    ap.add_argument("current", nargs="?", help="candidate JSON")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="regression threshold in percent (default 5)")
    args = ap.parse_args()

    if args.current is None:
        summarize(load(args.baseline), args.baseline)
        return 0
    return compare(load(args.baseline), load(args.current), args.threshold)


if __name__ == "__main__":
    sys.exit(main())
