#!/usr/bin/env python3
"""Pretty-print, validate, or diff crs-metrics/1 dumps.

The C++ exporter (src/obs/Exporter.h) writes one JSON document per
registry snapshot. This tool renders such a dump for humans, checks it
against the schema (used by the tier-1 obs test and the CI stress
lane), and diffs two dumps counter-by-counter:

    metrics_summary.py dump.json                 # pretty-print
    metrics_summary.py --validate dump.json      # schema check only
    metrics_summary.py --diff old.json new.json  # counter deltas

Exit status: 0 on success, 1 on schema violation or I/O error. No
third-party dependencies (stdlib json only).
"""

import argparse
import json
import sys

SCHEMA = "crs-metrics/1"

EVENT_DOMAINS = {"relation", "txn", "wal", "epoch", "migration", "tuner"}


def fail(msg):
    print("metrics_summary: " + msg, file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail("%s: %s" % (path, e))


def check(cond, msg):
    if not cond:
        fail("schema violation: " + msg)


def is_labels(obj):
    return isinstance(obj, dict) and all(
        isinstance(k, str) and isinstance(v, str) for k, v in obj.items()
    )


def validate(doc):
    """Asserts `doc` is a well-formed crs-metrics/1 document."""
    check(isinstance(doc, dict), "top level must be an object")
    check(doc.get("schema") == SCHEMA,
          "schema must be %r, got %r" % (SCHEMA, doc.get("schema")))
    check(isinstance(doc.get("captured_unix_micros"), int),
          "captured_unix_micros must be an integer")
    for section in ("counters", "gauges", "histograms", "events"):
        check(isinstance(doc.get(section), list),
              "%s must be a list" % section)
    for kind in ("counters", "gauges"):
        for m in doc[kind]:
            check(isinstance(m.get("name"), str), "%s entry needs name" % kind)
            check(is_labels(m.get("labels")),
                  "%s %s: labels must map str->str" % (kind, m.get("name")))
            check(isinstance(m.get("value"), int),
                  "%s %s: value must be an integer" % (kind, m.get("name")))
    for h in doc["histograms"]:
        check(isinstance(h.get("name"), str), "histogram entry needs name")
        check(is_labels(h.get("labels")),
              "histogram %s: labels must map str->str" % h.get("name"))
        for field in ("count", "sum_nanos", "max_nanos", "p50_nanos",
                      "p95_nanos", "p99_nanos"):
            check(isinstance(h.get(field), int),
                  "histogram %s: %s must be an integer" % (h["name"], field))
        check(isinstance(h.get("buckets"), list),
              "histogram %s: buckets must be a list" % h["name"])
        total = 0
        prev_le = -1
        for b in h["buckets"]:
            check(isinstance(b.get("le_nanos"), int)
                  and isinstance(b.get("count"), int),
                  "histogram %s: bucket needs integer le_nanos/count"
                  % h["name"])
            check(b["le_nanos"] > prev_le,
                  "histogram %s: buckets must be sorted by le_nanos"
                  % h["name"])
            prev_le = b["le_nanos"]
            total += b["count"]
        check(total == h["count"],
              "histogram %s: bucket counts (%d) != count (%d)"
              % (h["name"], total, h["count"]))
    for e in doc["events"]:
        check(isinstance(e.get("domain"), str)
              and e["domain"] in EVENT_DOMAINS,
              "event domain %r not one of %s"
              % (e.get("domain"), sorted(EVENT_DOMAINS)))
        check(isinstance(e.get("kind"), str), "event needs a kind name")
        for field in ("seq", "unix_micros", "a", "b", "c"):
            check(isinstance(e.get(field), int),
                  "event %s: %s must be an integer" % (e["kind"], field))


def fmt_labels(labels):
    if not labels:
        return ""
    return "{" + ",".join("%s=%s" % kv for kv in sorted(labels.items())) + "}"


def fmt_nanos(n):
    if n >= 1_000_000_000:
        return "%.2fs" % (n / 1e9)
    if n >= 1_000_000:
        return "%.2fms" % (n / 1e6)
    if n >= 1_000:
        return "%.1fus" % (n / 1e3)
    return "%dns" % n


def summarize(doc):
    print("schema %s, captured at unix_micros=%d"
          % (doc["schema"], doc["captured_unix_micros"]))
    if doc["counters"]:
        print("\ncounters:")
        for m in sorted(doc["counters"],
                        key=lambda m: (m["name"], sorted(m["labels"].items()))):
            print("  %-44s %12d" % (m["name"] + fmt_labels(m["labels"]),
                                    m["value"]))
    if doc["gauges"]:
        print("\ngauges:")
        for m in sorted(doc["gauges"],
                        key=lambda m: (m["name"], sorted(m["labels"].items()))):
            print("  %-44s %12d" % (m["name"] + fmt_labels(m["labels"]),
                                    m["value"]))
    if doc["histograms"]:
        print("\nhistograms (count / p50 / p95 / p99 / max):")
        for h in sorted(doc["histograms"],
                        key=lambda h: (h["name"], sorted(h["labels"].items()))):
            print("  %-44s %8d  %s / %s / %s / %s"
                  % (h["name"] + fmt_labels(h["labels"]), h["count"],
                     fmt_nanos(h["p50_nanos"]), fmt_nanos(h["p95_nanos"]),
                     fmt_nanos(h["p99_nanos"]), fmt_nanos(h["max_nanos"])))
    if doc["events"]:
        by_domain = {}
        for e in doc["events"]:
            by_domain.setdefault(e["domain"], []).append(e)
        print("\nevents:")
        for domain in sorted(by_domain):
            evs = sorted(by_domain[domain], key=lambda e: e["seq"])
            print("  [%s] %d event(s):" % (domain, len(evs)))
            for e in evs[-20:]:
                print("    #%-6d %-20s a=%d b=%d c=%d"
                      % (e["seq"], e["kind"], e["a"], e["b"], e["c"]))


def metric_key(m):
    return (m["name"], tuple(sorted(m["labels"].items())))


def diff(old, new):
    """Counter/gauge deltas and histogram count/quantile movement."""
    for kind, fmt in (("counters", "%+d"), ("gauges", "%+d")):
        olds = {metric_key(m): m["value"] for m in old[kind]}
        news = {metric_key(m): m["value"] for m in new[kind]}
        lines = []
        for key in sorted(set(olds) | set(news)):
            a, b = olds.get(key, 0), news.get(key, 0)
            if a != b:
                lines.append("  %-44s %12d -> %-12d (%s)"
                             % (key[0] + fmt_labels(dict(key[1])), a, b,
                                fmt % (b - a)))
        if lines:
            print("%s:" % kind)
            print("\n".join(lines))
    oldh = {metric_key(h): h for h in old["histograms"]}
    newh = {metric_key(h): h for h in new["histograms"]}
    lines = []
    for key in sorted(set(oldh) | set(newh)):
        a = oldh.get(key)
        b = newh.get(key)
        ac = a["count"] if a else 0
        bc = b["count"] if b else 0
        if ac == bc:
            continue
        bp99 = b["p99_nanos"] if b else 0
        lines.append("  %-44s count %d -> %d, p99 %s"
                     % (key[0] + fmt_labels(dict(key[1])), ac, bc,
                        fmt_nanos(bp99)))
    if lines:
        print("histograms:")
        print("\n".join(lines))


def main():
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("files", nargs="+", help="crs-metrics/1 JSON dump(s)")
    p.add_argument("--validate", action="store_true",
                   help="schema-check only; print OK and exit")
    p.add_argument("--diff", action="store_true",
                   help="diff two dumps (old new)")
    args = p.parse_args()

    docs = [load(f) for f in args.files]
    for doc in docs:
        validate(doc)
    if args.validate:
        print("OK: %d valid %s document(s)" % (len(docs), SCHEMA))
        return
    if args.diff:
        if len(docs) != 2:
            fail("--diff needs exactly two files (old new)")
        diff(docs[0], docs[1])
        return
    for i, doc in enumerate(docs):
        if i:
            print()
        summarize(doc)


if __name__ == "__main__":
    main()
