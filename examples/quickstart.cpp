//===- examples/quickstart.cpp - Five-minute tour of the library --------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: declare a relation, let the synthesizer pick the concrete
/// concurrent representation, and use the three relational operations of
/// paper §2. The directed-graph relation of the paper's running example:
///
///   columns {src, dst, weight},  FD  src, dst -> weight
///
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"
#include "runtime/ConcurrentRelation.h"

#include <cstdio>
#include <thread>

using namespace crs;

int main() {
  // 1. Pick a representation: the "split" decomposition (Fig. 3b) with
  //    1024-way striped root locks, concurrent hash maps at the top
  //    level and tree maps underneath — the paper's Split 4, the shape
  //    its handcoded baseline mirrors.
  RepresentationConfig Config = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Striped, /*Stripes=*/1024,
       ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap});
  const RelationSpec &Spec = *Config.Spec;
  std::printf("specification: %s\n", Spec.str().c_str());
  std::printf("decomposition: %s\n", Config.Decomp->str().c_str());
  std::printf("lock placement: %s\n\n", Config.Placement->str().c_str());

  ConcurrentRelation Graph(Config);

  // 2. Insert edges. insert r s t is a generalized put-if-absent: it
  //    fails if an edge with the same (src, dst) already exists, which
  //    is how clients preserve the functional dependency (§2).
  auto Key = [&](int64_t S, int64_t D) {
    return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                      {Spec.col("dst"), Value::ofInt(D)}});
  };
  auto Weight = [&](int64_t W) {
    return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
  };

  Graph.insert(Key(1, 2), Weight(42));
  Graph.insert(Key(1, 3), Weight(7));
  Graph.insert(Key(2, 3), Weight(9));
  bool Lost = Graph.insert(Key(1, 2), Weight(101)); // duplicate key
  std::printf("re-insert of (1,2) %s (relation unchanged)\n",
              Lost ? "won?!" : "was refused");

  // 3. Concurrent use: the synthesized operations are serializable and
  //    deadlock-free by construction; just call them from any thread.
  std::thread Th([&] {
    for (int64_t I = 0; I < 100; ++I)
      Graph.insert(Key(7, I), Weight(I));
  });
  for (int64_t I = 0; I < 100; ++I)
    Graph.insert(Key(8, I), Weight(I));
  Th.join();
  std::printf("size after concurrent inserts: %zu\n\n", Graph.size());

  // 4. Queries: query r s C returns the C-columns of tuples matching s.
  auto Successors = Graph.query(
      Tuple::of({{Spec.col("src"), Value::ofInt(1)}}),
      Spec.cols({"dst", "weight"}));
  std::printf("successors of node 1:\n");
  for (const Tuple &T : Successors)
    std::printf("  %s\n", T.str(Spec.catalog()).c_str());

  auto Predecessors = Graph.query(
      Tuple::of({{Spec.col("dst"), Value::ofInt(3)}}),
      Spec.cols({"src", "weight"}));
  std::printf("predecessors of node 3:\n");
  for (const Tuple &T : Predecessors)
    std::printf("  %s\n", T.str(Spec.catalog()).c_str());

  // 5. Look under the hood: the compiled plan for find-successors, in
  //    the paper's §5.2 query language.
  std::printf("\ncompiled find-successors plan:\n%s\n",
              Graph.explainQuery(Spec.cols({"src"}),
                                 Spec.cols({"dst", "weight"}))
                  .c_str());
  //    Mutations compile to the same IR: the insert plan below carries
  //    its topological lock schedule, the put-if-absent guard, and the
  //    write statements.
  std::printf("compiled insert plan:\n%s\n",
              Graph.explainInsert(Spec.cols({"src", "dst"})).c_str());

  // 6. Remove and verify.
  Graph.remove(Key(1, 2));
  ValidationResult V = Graph.verifyConsistency();
  std::printf("consistency after remove: %s\n", V.ok() ? "ok" : "BROKEN");
  return V.ok() ? 0 : 1;
}
