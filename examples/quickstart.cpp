//===- examples/quickstart.cpp - Five-minute tour of the library --------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: declare a relation, let the synthesizer pick the concrete
/// concurrent representation, and use the three relational operations of
/// paper §2. The directed-graph relation of the paper's running example:
///
///   columns {src, dst, weight},  FD  src, dst -> weight
///
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"
#include "obs/Exporter.h"
#include "runtime/PreparedOp.h"

#include <cstdio>
#include <thread>

using namespace crs;

int main() {
  // 1. Pick a representation: the "split" decomposition (Fig. 3b) with
  //    1024-way striped root locks, concurrent hash maps at the top
  //    level and tree maps underneath — the paper's Split 4, the shape
  //    its handcoded baseline mirrors.
  RepresentationConfig Config = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Striped, /*Stripes=*/1024,
       ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap});
  const RelationSpec &Spec = *Config.Spec;
  std::printf("specification: %s\n", Spec.str().c_str());
  std::printf("decomposition: %s\n", Config.Decomp->str().c_str());
  std::printf("lock placement: %s\n\n", Config.Placement->str().c_str());

  ConcurrentRelation Graph(Config);
  //    Observability opt-in: one attach call exports every counter the
  //    relation already maintains (op counts, plan-cache hits/misses,
  //    MVCC version-store gauges, per-cause abort counters) through the
  //    process-global metrics registry — no second counting path, no
  //    per-operation cost beyond a sampled latency clock read.
  Graph.attachMetrics(obs::MetricsRegistry::global(), "quickstart");

  // 2. Insert edges. insert r s t is a generalized put-if-absent: it
  //    fails if an edge with the same (src, dst) already exists, which
  //    is how clients preserve the functional dependency (§2).
  auto Key = [&](int64_t S, int64_t D) {
    return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                      {Spec.col("dst"), Value::ofInt(D)}});
  };
  auto Weight = [&](int64_t W) {
    return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
  };

  //    The legacy Tuple-based call builds two tuples, hashes the
  //    operation signature into the plan cache, and re-interns columns
  //    on every call:
  Graph.insert(Key(1, 2), Weight(42));
  //    The prepared equivalent pays all of that once, at prepare time;
  //    each execution is slot binds into a per-thread frame plus plan
  //    execution. Slots follow ascending column order: src, dst, weight.
  PreparedInsert AddEdge = Graph.prepareInsert(Spec.cols({"src", "dst"}));
  auto Add = [&](int64_t S, int64_t D, int64_t W) {
    return AddEdge.bind(0, Value::ofInt(S))
        .bind(1, Value::ofInt(D))
        .bind(2, Value::ofInt(W))
        .execute();
  };
  Add(1, 3, 7);
  Add(2, 3, 9);
  bool Lost = Add(1, 2, 101); // duplicate (src, dst) key
  std::printf("re-insert of (1,2) %s (relation unchanged)\n",
              Lost ? "won?!" : "was refused");

  // 3. Concurrent use: the synthesized operations are serializable and
  //    deadlock-free by construction; a prepared handle is shared
  //    across threads (each thread binds its own frame).
  std::thread Th([&] {
    for (int64_t I = 0; I < 100; ++I)
      Add(7, I, I);
  });
  for (int64_t I = 0; I < 100; ++I)
    Add(8, I, I);
  Th.join();
  std::printf("size after concurrent inserts: %zu\n\n", Graph.size());

  // 4. Queries: query r s C returns the C-columns of tuples matching s.
  //    execute() materializes the deduplicated projection, like the
  //    legacy Graph.query(...); forEach streams matches with no result
  //    vector at all — ideal for counting and aggregation.
  PreparedQuery Successors =
      Graph.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  Successors.bind(0, Value::ofInt(1));
  std::printf("successors of node 1:\n");
  for (const Tuple &T : Successors.execute())
    std::printf("  %s\n", T.str(Spec.catalog()).c_str());
  int64_t TotalWeight = 0;
  Successors.forEach([&](const Tuple &T) {
    TotalWeight += T.get(Spec.col("weight")).asInt();
  });
  std::printf("  (streamed total weight: %lld)\n",
              static_cast<long long>(TotalWeight));

  PreparedQuery Predecessors =
      Graph.prepareQuery(Spec.cols({"dst"}), Spec.cols({"src", "weight"}));
  Predecessors.bind(0, Value::ofInt(3));
  std::printf("predecessors of node 3:\n");
  for (const Tuple &T : Predecessors.execute())
    std::printf("  %s\n", T.str(Spec.catalog()).c_str());

  // 5. Look under the hood: the compiled plan for find-successors, in
  //    the paper's §5.2 query language.
  std::printf("\ncompiled find-successors plan:\n%s\n",
              Graph.explainQuery(Spec.cols({"src"}),
                                 Spec.cols({"dst", "weight"}))
                  .c_str());
  //    Mutations compile to the same IR: the insert plan below carries
  //    its topological lock schedule, the put-if-absent guard, and the
  //    write statements.
  std::printf("compiled insert plan:\n%s\n",
              Graph.explainInsert(Spec.cols({"src", "dst"})).c_str());

  // 6. Remove and verify.
  PreparedRemove DropEdge = Graph.prepareRemove(Spec.cols({"src", "dst"}));
  DropEdge.bind(0, Value::ofInt(1)).bind(1, Value::ofInt(2)).execute();
  ValidationResult V = Graph.verifyConsistency();
  std::printf("consistency after remove: %s\n", V.ok() ? "ok" : "BROKEN");

  // 7. Observability: one snapshot serves both export formats. Setting
  //    CRS_METRICS_JSON=<path> writes the crs-metrics/1 JSON document
  //    (tools/metrics_summary.py pretty-prints and diffs those dumps);
  //    here we just pull two counters out of the snapshot directly.
  obs::MetricsSnapshot Snap = obs::MetricsRegistry::global().snapshot();
  for (const auto &C : Snap.Counters)
    if (C.Name == "relation.queries" || C.Name == "relation.inserts")
      std::printf("metric %s = %llu\n", C.Name.c_str(),
                  static_cast<unsigned long long>(C.Value));
  obs::exportIfRequested(obs::MetricsRegistry::global());
  return V.ok() ? 0 : 1;
}
