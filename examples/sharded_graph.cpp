//===- examples/sharded_graph.cpp - Horizontal sharding under load ------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Horizontal sharding, end to end: a graph relation hash-partitioned
/// across four ConcurrentRelation shards (runtime/ShardedRelation.h),
/// each with its own synthesized representation, plan cache, and lock
/// roots. The demo shows the routing contract (successor queries,
/// inserts, and removes route to one shard; predecessor queries fan out
/// with a streaming merge), then hammers the fleet with four mixed
/// worker threads while the representation rolls shard-at-a-time from
/// the coarse stick to a striped split — at any instant only a quarter
/// of the keyspace pays migration costs. Every worker logs its
/// mutations; the end state is checked against the replayed-log oracle
/// (exit nonzero on any lost or duplicated edge).
///
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"
#include "obs/Exporter.h"
#include "workload/GraphWorkload.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

using namespace crs;

int main() {
  RepresentationConfig Start = makeGraphRepresentation(
      {GraphShape::Stick, PlacementSchemeKind::Coarse, 1,
       ContainerKind::HashMap, ContainerKind::TreeMap});
  RepresentationConfig Target = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Striped, 64,
       ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap});
  constexpr unsigned NumShards = 4, NumThreads = 4;
  ShardedRelation R(Start, NumShards);
  // Per-shard observability: every shard reports into one registry
  // under relation="graph" with its own shard=i label, so the exported
  // tree keeps the shards distinguishable and aggregation happens at
  // query time.
  R.attachMetrics(obs::MetricsRegistry::global(), "graph");
  const RelationSpec &Spec = R.spec();

  std::printf("sharded graph demo: %u shards of %s, routing by %s\n\n",
              NumShards, Start.Name.c_str(),
              Spec.catalog().str(R.routingColumns()).c_str());

  // The routing contract, on a small seed load.
  for (int64_t S = 0; S < 32; ++S)
    for (int64_t D = 0; D < 4; ++D)
      R.insert(Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                          {Spec.col("dst"), Value::ofInt(D)}}),
               Tuple::of({{Spec.col("weight"), Value::ofInt(S * 10 + D)}}));
  std::printf("%zu tuples partitioned:", R.size());
  for (unsigned I = 0; I < NumShards; ++I)
    std::printf(" shard%u=%zu", I, R.shard(I).size());
  std::printf("\n");

  ShardedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  ShardedQuery Pred =
      R.prepareQuery(Spec.cols({"dst"}), Spec.cols({"src", "weight"}));
  uint64_t Before = 0, After = 0;
  for (unsigned I = 0; I < NumShards; ++I)
    Before += R.shard(I).operationCounts().total();
  uint64_t SuccStates = Succ.bind(0, Value::ofInt(7)).count();
  for (unsigned I = 0; I < NumShards; ++I)
    After += R.shard(I).operationCounts().total();
  std::printf("successors(7): %llu states, %llu shard touched "
              "(single-shard: dom(s) covers the routing key)\n",
              static_cast<unsigned long long>(SuccStates),
              static_cast<unsigned long long>(After - Before));
  Before = After;
  uint64_t PredStates = Pred.bind(0, Value::ofInt(2)).count();
  After = 0;
  for (unsigned I = 0; I < NumShards; ++I)
    After += R.shard(I).operationCounts().total();
  std::printf("predecessors(2): %llu states, %llu shards touched "
              "(fan-out with streaming merge)\n\n",
              static_cast<unsigned long long>(PredStates),
              static_cast<unsigned long long>(After - Before));

  // Mixed traffic while the fleet rolls shard-at-a-time.
  ShardedGraphTarget Load(R);
  const OpMix Mix{30, 20, 30, 20};
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Ops{0};
  std::vector<MutationLog> Logs(NumThreads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < NumThreads; ++T)
    Workers.emplace_back([&, T] {
      // Disjoint src ranges per worker make the logs an exact oracle;
      // srcs ≥ 100 keep clear of the seed load above, whose effects the
      // logs do not cover.
      KeySpace Keys{24, 1 << 16, 100 + static_cast<int64_t>(T) * 24};
      Xoshiro256 Rng(42 + T);
      while (!Stop.load(std::memory_order_acquire)) {
        runRandomOpLogged(Load, Mix, Keys, Rng, &Logs[T]);
        Ops.fetch_add(1, std::memory_order_relaxed);
      }
    });

  while (Ops.load(std::memory_order_relaxed) < 4000)
    std::this_thread::yield();
  std::printf("rolling the fleet to %s, one shard at a time:\n",
              Target.Name.c_str());
  for (unsigned Shard = 0; Shard < NumShards; ++Shard) {
    auto T0 = std::chrono::steady_clock::now();
    MigrationResult Res = R.migrateShard(Shard, Target);
    double Ms = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - T0)
                    .count() *
                1e3;
    if (!Res.Ok) {
      std::printf("shard %u migration failed: %s\n", Shard,
                  Res.Error.c_str());
      Stop.store(true, std::memory_order_release);
      for (auto &W : Workers)
        W.join();
      return 1;
    }
    std::printf("  shard %u: %llu backfilled, %llu/%llu mirrored (ins/rem) "
                "in %.0f ms — other %u shards undisturbed\n",
                Shard, static_cast<unsigned long long>(Res.Backfilled),
                static_cast<unsigned long long>(Res.MirroredInserts),
                static_cast<unsigned long long>(Res.MirroredRemoves), Ms,
                NumShards - 1);
  }
  uint64_t Mark = Ops.load(std::memory_order_relaxed);
  while (Ops.load(std::memory_order_relaxed) < Mark + 4000)
    std::this_thread::yield();
  Stop.store(true, std::memory_order_release);
  for (auto &W : Workers)
    W.join();

  RelationStatistics Stats = R.sampleStatistics();
  std::printf("\nfleet now serving as %s: %zu tuples, %llu node instances "
              "across %u shards, %llu ops served\n",
              R.config().Name.c_str(), R.size(),
              static_cast<unsigned long long>(Stats.NodeInstances), NumShards,
              static_cast<unsigned long long>(R.operationCounts().total()));

  // Oracle: replay the logs; the workers' keyspace (src ≥ 100) is
  // disjoint from the seed load (src < 32), so expected = seed + replay.
  std::vector<std::string> Errors;
  auto Expected = replayMutationLogs(Logs, &Errors);
  size_t Matched = 0, WorkerEdges = 0;
  for (const Tuple &T : R.scanAll()) {
    if (T.get(Spec.col("src")).asInt() < 100)
      continue; // seed load
    ++WorkerEdges;
    auto It = Expected.find({T.get(Spec.col("src")).asInt(),
                             T.get(Spec.col("dst")).asInt()});
    if (It != Expected.end() &&
        It->second == T.get(Spec.col("weight")).asInt())
      ++Matched;
  }
  ValidationResult V = R.verifyConsistency();
  bool Ok = Errors.empty() && WorkerEdges == Expected.size() &&
            Matched == WorkerEdges && V.ok();
  std::printf("oracle: %zu edges expected, %zu present, %zu matched, %zu "
              "outcome mismatches; consistency %s\n",
              Expected.size(), WorkerEdges, Matched, Errors.size(),
              V.ok() ? "ok" : V.str().c_str());
  std::printf("%s\n", Ok ? "PASS: zero lost or duplicated edges across the "
                           "sharded rollout"
                         : "FAIL: the sharded rollout lost or duplicated "
                           "edges");

  // Per-shard counters out of one snapshot (the same numbers a
  // CRS_METRICS_JSON dump carries).
  obs::MetricsSnapshot Snap = obs::MetricsRegistry::global().snapshot();
  std::printf("\nper-shard insert counters:");
  for (const auto &C : Snap.Counters)
    if (C.Name == "relation.inserts")
      for (const auto &[K, Val] : C.Labels)
        if (K == "shard")
          std::printf(" shard%s=%llu", Val.c_str(),
                      static_cast<unsigned long long>(C.Value));
  std::printf("\n");
  obs::exportIfRequested(obs::MetricsRegistry::global());
  return Ok ? 0 : 1;
}
