//===- examples/replicated_graph.cpp - Durability + a live read replica -------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The durability pipeline end to end on the bank relation from
/// examples/bank.cpp: a 4-shard primary with a group-commit WAL
/// attached (src/wal/Wal.h) serves concurrent transfer transactions
/// while
///
///   - a FollowerRelation (src/wal/Follower.h) consumes the live
///     commit stream and serves reads from a *different*
///     representation than the primary,
///   - a checkpoint is taken mid-run under full write traffic
///     (src/wal/Checkpoint.h), and
///   - after the writers stop, a fresh fleet is recovered from
///     checkpoint + WAL as if the process had crashed.
///
/// The demo self-verifies three ways and exits nonzero on any
/// violation: money is conserved on the primary (the transactional
/// invariant), the drained follower's state equals the primary's
/// tuple-for-tuple (the replication contract), and the recovered
/// fleet's state equals the primary's too (the durability contract).
///
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"
#include "support/Rng.h"
#include "sync/CommitClock.h"
#include "txn/Transaction.h"
#include "wal/Checkpoint.h"
#include "wal/Follower.h"
#include "wal/Wal.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace crs;

namespace {

std::vector<Tuple> sorted(std::vector<Tuple> V) {
  std::sort(V.begin(), V.end(), TupleLess());
  return V;
}

} // namespace

int main() {
  constexpr unsigned NumShards = 4, NumThreads = 4;
  constexpr int64_t NumAccounts = 64, InitialBalance = 1000;
  constexpr uint64_t TransfersPerThread = 300;

  RepresentationConfig Primary = makeGraphRepresentation(
      {GraphShape::Stick, PlacementSchemeKind::Coarse, 1,
       ContainerKind::HashMap, ContainerKind::TreeMap});
  // The follower serves reads from a shape the primary never uses —
  // the stream carries full tuples, not physical layout.
  RepresentationConfig ReplicaShape = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Striped, 64,
       ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap});

  char Dir[] = "/tmp/crs_replicated_XXXXXX";
  if (!mkdtemp(Dir)) {
    std::perror("mkdtemp");
    return 1;
  }

  WriteAheadLog::Options WO;
  WO.Dir = Dir;
  WO.Partitions = NumShards;
  WO.Fsync = FsyncMode::Batched;
  std::string Err;
  std::unique_ptr<WriteAheadLog> Log = WriteAheadLog::open(WO, &Err);
  if (!Log) {
    std::printf("wal open failed: %s\n", Err.c_str());
    return 1;
  }
  CommitChannel Channel;
  Log->attachChannel(&Channel);

  ShardedRelation Bank(Primary, NumShards);
  Bank.attachWal(*Log); // shard i -> partition i, before any traffic
  const RelationSpec &Spec = Bank.spec();
  ColumnId WeightCol = Spec.col("weight");

  for (int64_t A = 0; A < NumAccounts; ++A)
    Bank.insert(Tuple::of({{Spec.col("src"), Value::ofInt(A)},
                           {Spec.col("dst"), Value::ofInt(0)}}),
                Tuple::of({{WeightCol, Value::ofInt(InitialBalance)}}));
  const int64_t TotalMoney = NumAccounts * InitialBalance;

  FollowerRelation Follower(ReplicaShape, Channel,
                            [&] { return Bank.scanAll(); });

  std::printf("replicated bank: %lld accounts across %u shards of %s; "
              "WAL + live follower (%s) + mid-run checkpoint\n\n",
              static_cast<long long>(NumAccounts), NumShards,
              Primary.Name.c_str(), ReplicaShape.Name.c_str());

  ShardedQuery Balance =
      Bank.prepareQuery(Spec.cols({"src", "dst"}), Spec.cols({"weight"}));
  ShardedInsert Put = Bank.prepareInsert(Spec.cols({"src", "dst"}));
  ShardedRemove Drop = Bank.prepareRemove(Spec.cols({"src", "dst"}));

  std::atomic<uint64_t> Committed{0}, Transfers{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < NumThreads; ++T)
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(0x9E97 + T);
      for (uint64_t I = 0; I < TransfersPerThread; ++I) {
        int64_t A = static_cast<int64_t>(Rng.nextBounded(NumAccounts));
        int64_t B = static_cast<int64_t>(Rng.nextBounded(NumAccounts - 1));
        if (B >= A)
          ++B;
        uint64_t Amount = Rng.nextBounded(50) + 1;
        bool Ok = runTransaction(Bank, [&](ShardedTransaction &Txn) {
          int64_t BalA = -1, BalB = -1;
          if (!Txn.queryForUpdate(Balance, {Value::ofInt(A), Value::ofInt(0)},
                         [&](const Tuple &Tp) {
                           BalA = Tp.get(WeightCol).asInt();
                         }))
            return true;
          if (!Txn.queryForUpdate(Balance, {Value::ofInt(B), Value::ofInt(0)},
                         [&](const Tuple &Tp) {
                           BalB = Tp.get(WeightCol).asInt();
                         }))
            return true;
          int64_t X = std::min<int64_t>(static_cast<int64_t>(Amount), BalA);
          if (!Txn.remove(Drop, {Value::ofInt(A), Value::ofInt(0)}) ||
              !Txn.insert(Put, {Value::ofInt(A), Value::ofInt(0),
                                Value::ofInt(BalA - X)}) ||
              !Txn.remove(Drop, {Value::ofInt(B), Value::ofInt(0)}) ||
              !Txn.insert(Put, {Value::ofInt(B), Value::ofInt(0),
                                Value::ofInt(BalB + X)}))
            return true;
          return true;
        });
        if (Ok)
          Committed.fetch_add(1, std::memory_order_relaxed);
        Transfers.fetch_add(1, std::memory_order_relaxed);
      }
    });

  // Mid-run, under full write traffic: checkpoint every shard (each
  // shard's op gate closes in turn — the rolling-migration discipline).
  while (Transfers.load(std::memory_order_relaxed) <
         NumThreads * TransfersPerThread / 3)
    std::this_thread::yield();
  if (!writeShardedCheckpoint(Bank, Dir, &Err)) {
    std::printf("checkpoint failed: %s\n", Err.c_str());
    return 1;
  }
  std::printf("mid-run: checkpointed all %u shards under load\n", NumShards);

  for (std::thread &W : Workers)
    W.join();

  // ---- replication check: drain the follower, compare states --------
  // The writers have quiesced, so the clock's current reading bounds
  // every commitSeq ever stamped; waitApplied turns that into "fully
  // caught up" (a healed gap publishes the same floor via backfill).
  bool FollowerCaughtUp = Follower.waitApplied(commitClockNow());
  Follower.stop();
  std::vector<Tuple> PrimaryState = sorted(Bank.scanAll());
  bool FollowerMatches =
      FollowerCaughtUp &&
      sorted(Follower.relation().scanAll()) == PrimaryState;
  std::printf("follower: %llu records applied, %llu gaps healed -> %s\n",
              static_cast<unsigned long long>(Follower.appliedRecords()),
              static_cast<unsigned long long>(Follower.gapsHealed()),
              FollowerMatches ? "state matches primary" : "MISMATCH");

  // ---- durability check: recover a fresh fleet from disk ------------
  Bank.detachWal();
  Log->flush();
  Log.reset(); // clean shutdown; recovery works the same from a kill
  ShardedRelation Recovered(Primary, NumShards);
  RecoveryResult RR = recoverShardedRelation(Recovered, Dir);
  bool RecoveredMatches =
      RR.Ok && sorted(Recovered.scanAll()) == PrimaryState;
  std::printf("recovery: checkpoint seq %llu, %zu tuples + %zu records "
              "replayed -> %s\n",
              static_cast<unsigned long long>(RR.CheckpointSeq),
              RR.CheckpointTuples, RR.RecordsReplayed,
              RecoveredMatches ? "state matches primary" : "MISMATCH");

  // ---- transactional invariant on all three copies ------------------
  int64_t Sum = 0;
  for (const Tuple &Tp : PrimaryState)
    Sum += Tp.get(WeightCol).asInt();
  bool Conserved = Sum == TotalMoney &&
                   static_cast<int64_t>(PrimaryState.size()) == NumAccounts;
  ValidationResult V = Recovered.verifyConsistency();

  bool Pass = Conserved && FollowerMatches && RecoveredMatches && V.ok() &&
              Committed.load() > 0 && RR.CheckpointSeq > 0 &&
              RR.RecordsReplayed > 0;
  std::printf("\n%llu committed; balance total %lld (expected %lld); "
              "recovered consistency %s\n",
              static_cast<unsigned long long>(Committed.load()),
              static_cast<long long>(Sum),
              static_cast<long long>(TotalMoney),
              V.ok() ? "ok" : V.str().c_str());
  std::printf("%s\n",
              Pass ? "PASS: the commit stream reproduced the primary's "
                     "state live (follower) and from disk (recovery)"
                   : "FAIL: a durability or replication invariant broke");

  // Leave the scratch directory for inspection on failure only.
  if (Pass) {
    std::string Cmd = std::string("rm -rf ") + Dir;
    [[maybe_unused]] int Ignored = std::system(Cmd.c_str());
  } else {
    std::printf("(WAL + checkpoints left in %s)\n", Dir);
  }
  return Pass ? 0 : 1;
}
