//===- examples/filesystem.cpp - The Figure 2 dcache relation -----------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The paper's Figure 2: a filesystem directory-tree relation modeled on
/// the Linux kernel's directory entry cache,
///
///   columns {parent, name, child},  FD  parent, name -> child,
///
/// decomposed as a TreeMap of per-directory TreeMaps (for ordered
/// directory listings and unmount-style traversals) plus a global
/// (parent, name) -> child ConcurrentHashMap (for fast path lookup).
/// This example builds the Figure 2(b) instance, runs both access
/// paths, prints the §5.2 iteration plans, and emits the decomposition
/// as GraphViz.
///
//===----------------------------------------------------------------------===//

#include "decomp/Shapes.h"
#include "lockplace/PlacementSchemes.h"
#include "runtime/PreparedOp.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace crs;

namespace {

/// A thin filesystem-flavoured facade over the synthesized relation.
/// Every dcache operation has a fixed signature, so the facade prepares
/// each one once at mount time and the hot paths are pure slot binds —
/// the pattern a real path-walk cache would use.
class DirectoryTree {
public:
  explicit DirectoryTree(RepresentationConfig Config)
      : Rel(std::move(Config)), Spec(&Rel.spec()),
        Link(Rel.prepareInsert(Spec->cols({"parent", "name"}))),
        Unlink(Rel.prepareRemove(Spec->cols({"parent", "name"}))),
        Find(Rel.prepareQuery(Spec->cols({"parent", "name"}),
                              Spec->cols({"child"}))),
        List(Rel.prepareQuery(Spec->cols({"parent"}),
                              Spec->cols({"name", "child"}))) {}

  bool link(int64_t Parent, const std::string &Name, int64_t Child) {
    // Slot order is ascending column order: parent, name, child.
    return Link.bind(0, Value::ofInt(Parent))
        .bind(1, Value::ofString(Name))
        .bind(2, Value::ofInt(Child))
        .execute();
  }

  bool unlink(int64_t Parent, const std::string &Name) {
    return Unlink.bind(0, Value::ofInt(Parent))
               .bind(1, Value::ofString(Name))
               .execute() > 0;
  }

  /// Path-component lookup: the hashtable edge makes this one probe;
  /// the streamed result avoids materializing a vector for what is by
  /// construction (FD parent, name -> child) at most one match.
  bool lookup(int64_t Parent, const std::string &Name, int64_t &Child) {
    bool Found = false;
    Find.bind(0, Value::ofInt(Parent)).bind(1, Value::ofString(Name));
    Find.forEach([&](const Tuple &T) {
      Child = T.get(Spec->col("child")).asInt();
      Found = true;
    });
    return Found;
  }

  /// Ordered directory listing via the per-directory TreeMap edge,
  /// streamed straight into the caller-shaped vector.
  std::vector<std::pair<std::string, int64_t>> list(int64_t Parent) {
    std::vector<std::pair<std::string, int64_t>> Out;
    List.bind(0, Value::ofInt(Parent));
    List.forEach([&](const Tuple &T) {
      Out.push_back({std::string(T.get(Spec->col("name")).asString()),
                     T.get(Spec->col("child")).asInt()});
    });
    return Out;
  }

  ConcurrentRelation &relation() { return Rel; }
  const RelationSpec &spec() const { return *Spec; }

private:
  ConcurrentRelation Rel;
  const RelationSpec *Spec;
  PreparedInsert Link;
  PreparedRemove Unlink;
  PreparedQuery Find, List;
};

} // namespace

int main() {
  auto Spec = std::make_shared<RelationSpec>(makeDCacheSpec());
  auto Decomp = std::make_shared<Decomposition>(
      makeDCacheDecomposition(*Spec));
  auto Placement = std::make_shared<LockPlacement>(
      makeFinePlacement(*Decomp));

  std::printf("dcache decomposition (Figure 2a), GraphViz:\n%s\n",
              Decomp->toDot().c_str());

  DirectoryTree Fs({Spec, Decomp, Placement, "dcache/fine"});

  // The Figure 2(b) instance: / (inode 1) / a (2) / {b (3), c (4)}.
  Fs.link(1, "a", 2);
  Fs.link(2, "b", 3);
  Fs.link(2, "c", 4);

  int64_t Inode = 0;
  if (Fs.lookup(2, "b", Inode))
    std::printf("lookup /a/b -> inode %lld\n",
                static_cast<long long>(Inode));

  std::printf("listing of directory 2:\n");
  for (auto &[Name, Child] : Fs.list(2))
    std::printf("  %-8s inode %lld\n", Name.c_str(),
                static_cast<long long>(Child));

  // Grow a deeper tree and walk it (an unmount-style full traversal).
  int64_t NextInode = 5;
  for (int Dir = 2; Dir <= 4; ++Dir)
    for (const char *N : {"x", "y", "z"})
      Fs.link(Dir, N, NextInode++);
  std::printf("tree now has %zu entries\n", Fs.relation().size());

  // The §5.2 full-iteration plan: under the fine placement this is the
  // equivalent of the paper's plan (4) — a lock per node level.
  std::printf("\nfull-iteration plan (cf. paper plans (2)-(4)):\n%s\n",
              Fs.relation()
                  .explainQuery(ColumnSet::empty(), Spec->allColumns())
                  .c_str());

  // Unlink a subtree leaf-first (the relation is flat; the tree
  // structure lives in the client, as in the real dcache).
  Fs.unlink(2, "b");
  std::printf("after unlink /a/b: %zu entries\n", Fs.relation().size());

  ValidationResult V = Fs.relation().verifyConsistency();
  std::printf("consistency: %s\n", V.ok() ? "ok" : V.str().c_str());
  return V.ok() ? 0 : 1;
}
