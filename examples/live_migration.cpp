//===- examples/live_migration.cpp - Hot-swap a representation under load -----===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Online representation migration, end to end: four worker threads
/// hammer a graph relation born on the paper's worst multi-threaded
/// representation (a coarse-locked stick) with a mixed workload while
/// the online tuner samples the live statistics, notices the coarse
/// root lock burning, and hot-swaps the relation onto a striped split
/// decomposition — dual-write, backfill, epoch-gated retirement —
/// without stopping the workers. Every worker logs its mutations; at
/// the end the logs are replayed into the oracle edge set and compared
/// against the migrated relation: zero lost, zero duplicated edges.
///
/// Reported: throughput and worst op latency before / during / after
/// the migration (the only stalls are the two flip barriers, each
/// bounded by the drain of in-flight operations), the tuner's scores,
/// and the dual-write insert plan with its mirror-write epilogue.
///
//===----------------------------------------------------------------------===//

#include "autotune/OnlineTuner.h"
#include "obs/Exporter.h"
#include "runtime/PreparedOp.h"
#include "workload/GraphWorkload.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

using namespace crs;
using Clock = std::chrono::steady_clock;

namespace {

constexpr unsigned NumThreads = 4;
constexpr int64_t SrcPerThread = 24;
// Phases of the report: 0 = before (coarse stick), 1 = during
// (dual-write + backfill), 2 = after (striped split).
constexpr const char *PhaseName[3] = {"before", "during", "after"};

struct PhaseMeter {
  std::atomic<uint64_t> Ops{0};
  std::atomic<uint64_t> MaxLatencyUs{0};
  void record(uint64_t Us) {
    Ops.fetch_add(1, std::memory_order_relaxed);
    uint64_t Cur = MaxLatencyUs.load(std::memory_order_relaxed);
    while (Us > Cur && !MaxLatencyUs.compare_exchange_weak(
                           Cur, Us, std::memory_order_relaxed))
      ;
  }
};

} // namespace

int main() {
  RepresentationConfig Start = makeGraphRepresentation(
      {GraphShape::Stick, PlacementSchemeKind::Coarse, 1,
       ContainerKind::HashMap, ContainerKind::TreeMap});
  ConcurrentRelation R(Start);
  // One registry collects the relation's counters, the sampled
  // op-latency histograms the tuner reads back as a measured input,
  // and the migration/tuner event rings the report prints at the end.
  obs::MetricsRegistry &Reg = obs::MetricsRegistry::global();
  R.attachMetrics(Reg, "graph");
  PreparedRelationTarget Target(R);
  const OpMix Mix{30, 20, 30, 20};

  std::printf("live migration demo: %s, %u threads, mix %s\n\n",
              Start.Name.c_str(), NumThreads, Mix.str().c_str());

  std::atomic<int> Phase{0};
  std::atomic<bool> Stop{false};
  PhaseMeter Meters[3];
  std::vector<MutationLog> Logs(NumThreads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < NumThreads; ++T)
    Workers.emplace_back([&, T] {
      // Disjoint src ranges per worker make the logs an exact oracle.
      KeySpace Keys{SrcPerThread, 1 << 16,
                    static_cast<int64_t>(T) * SrcPerThread};
      Xoshiro256 Rng(42 + T);
      while (!Stop.load(std::memory_order_acquire)) {
        auto OpStart = Clock::now();
        runRandomOpLogged(Target, Mix, Keys, Rng, &Logs[T]);
        uint64_t Us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - OpStart)
                .count());
        Meters[Phase.load(std::memory_order_relaxed)].record(Us);
      }
    });

  // Phase hooks: flip the meter at the dual-write start, show the
  // mirror-write epilogue the planner now emits.
  struct Hooks : MigrationObserver {
    ConcurrentRelation &R;
    std::atomic<int> &Phase;
    Clock::time_point DualStart;
    explicit Hooks(ConcurrentRelation &R, std::atomic<int> &P)
        : R(R), Phase(P) {}
    void onDualWriteStart() override {
      DualStart = Clock::now();
      Phase.store(1, std::memory_order_relaxed);
      std::printf("\ndual-write active; insert plan now ends with the "
                  "mirror epilogue:\n%s\n",
                  R.explainInsert(R.spec().cols({"src", "dst"})).c_str());
    }
  } Obs(R, Phase);

  OnlineTunerConfig Cfg;
  Cfg.Candidates = {{GraphShape::Split, PlacementSchemeKind::Striped, 64,
                     ContainerKind::ConcurrentHashMap,
                     ContainerKind::TreeMap}};
  Cfg.Threads = NumThreads;
  Cfg.HysteresisRatio = 1.05;
  Cfg.ConfirmTicks = 2;
  Cfg.Observer = &Obs;
  Cfg.Metrics = &Reg;      // tuner reads measured latency, emits events
  Cfg.MetricsLabel = "graph";
  OnlineTuner Tuner(R, Cfg);

  auto T0 = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(400)); // warm
  MigrationResult Migration;
  for (int Tick = 1; Tick <= 20 && !Migration.Ok; ++Tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    TuneTick T = Tuner.tick();
    if (!T.Scored)
      continue;
    std::printf("tick %2d: cost(current) %.1f, cost(%s) %.1f%s\n", Tick,
                T.CurrentCost, T.BestName.c_str(), T.BestCost,
                T.Migrated ? "  -> migrate" : "");
    if (T.Migrated)
      Migration = T.Migration;
  }
  if (!Migration.Ok) {
    // Uncontended hosts (e.g. a single hot core) may never show the
    // tuner a predicted win; the demo then swaps explicitly.
    std::printf("tuner saw no win; migrating explicitly\n");
    Migration = R.migrateTo(makeGraphRepresentation(Cfg.Candidates[0]), &Obs);
  }
  auto TSwap = Clock::now();
  Phase.store(2, std::memory_order_relaxed);
  if (!Migration.Ok) {
    std::printf("migration failed: %s\n", Migration.Error.c_str());
    Stop.store(true, std::memory_order_release);
    for (auto &W : Workers)
      W.join();
    return 1;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  Stop.store(true, std::memory_order_release);
  for (auto &W : Workers)
    W.join();
  auto TEnd = Clock::now();

  std::printf("\nnow serving as %s\n", R.config().Name.c_str());
  std::printf("migration: %llu backfilled, %llu/%llu mutations mirrored "
              "(ins/rem), dual-write window %.0f ms\n\n",
              static_cast<unsigned long long>(Migration.Backfilled),
              static_cast<unsigned long long>(Migration.MirroredInserts),
              static_cast<unsigned long long>(Migration.MirroredRemoves),
              Migration.DualWriteSeconds * 1e3);

  // Throughput panel. Phase windows: before = start..dual-write flip,
  // during = the dual-write window, after = swap..stop.
  double Secs[3] = {
      std::chrono::duration<double>(Obs.DualStart - T0).count(),
      std::chrono::duration<double>(TSwap - Obs.DualStart).count(),
      std::chrono::duration<double>(TEnd - TSwap).count()};
  std::printf("%-8s %10s %12s %14s\n", "phase", "secs", "ops/s",
              "max-op-lat");
  for (int P = 0; P < 3; ++P)
    std::printf("%-8s %10.2f %12.0f %11llu us\n", PhaseName[P], Secs[P],
                Secs[P] > 0 ? double(Meters[P].Ops.load()) / Secs[P] : 0.0,
                static_cast<unsigned long long>(
                    Meters[P].MaxLatencyUs.load()));

  // The oracle: replay the per-thread logs and compare the final edge
  // set — a lost mirror write, a resurrected remove, or a double copy
  // would all show up here.
  std::vector<std::string> Errors;
  auto Expected = replayMutationLogs(Logs, &Errors);
  std::vector<Tuple> Final = R.scanAll();
  bool SizeOk = Final.size() == Expected.size() && R.size() == Expected.size();
  size_t Matched = 0;
  const RelationSpec &Spec = R.spec();
  for (const Tuple &T : Final) {
    auto It = Expected.find({T.get(Spec.col("src")).asInt(),
                             T.get(Spec.col("dst")).asInt()});
    if (It != Expected.end() &&
        It->second == T.get(Spec.col("weight")).asInt())
      ++Matched;
  }
  ValidationResult V = R.verifyConsistency();
  bool Ok = Errors.empty() && SizeOk && Matched == Final.size() && V.ok();
  std::printf("\noracle: %zu edges expected, %zu present, %zu matched, "
              "%zu outcome mismatches; consistency %s\n",
              Expected.size(), Final.size(), Matched, Errors.size(),
              V.ok() ? "ok" : V.str().c_str());
  std::printf("%s\n", Ok ? "PASS: zero lost or duplicated edges"
                         : "FAIL: migration lost or duplicated edges");

  // What the event rings saw: the migration ring holds both flips and
  // the retirement, the tuner ring one decision per scored tick.
  // CRS_METRICS_JSON=<path> additionally dumps the whole registry
  // (counters, histograms, rings) as a crs-metrics/1 document.
  std::printf("\nmigration trace:\n");
  for (const obs::TraceEvent &E :
       Reg.ring(obs::EventDomain::Migration).snapshot())
    std::printf("  %-18s a=%llu b=%llu c=%llu\n", obs::kindName(E.Kind),
                static_cast<unsigned long long>(E.A),
                static_cast<unsigned long long>(E.B),
                static_cast<unsigned long long>(E.C));
  obs::exportIfRequested(Reg);
  return Ok ? 0 : 1;
}
