//===- examples/scheduler.cpp - A process-scheduler relation ------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// A non-graph schema, in the spirit of the OS-scheduler motivating
/// examples of the data representation synthesis line of work: a
/// process table
///
///   columns {pid, state, prio},  FD  pid -> state, prio
///
/// with two access patterns — O(1) lookup by pid, and iteration over
/// all processes in a given state (the run queue). We build a custom
/// two-path decomposition for it (a per-state index and a pid index),
/// validate it through the same adequacy checker the synthesizer uses,
/// and drive it from multiple scheduler threads.
///
//===----------------------------------------------------------------------===//

#include "lockplace/PlacementSchemes.h"
#include "runtime/PreparedOp.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace crs;

namespace {

/// Builds the scheduler decomposition:
///   path 1: ρ -{state}-> byState -{pid}-> proc1 -{prio}-> leaf1
///   path 2: ρ -{pid}-> proc2 -{state, prio}-> leaf2
/// The state index uses a concurrent skip list of ConcurrentHashMaps
/// (few states, many pids per state) — the striped root placement
/// below permits concurrent access to root containers, so the §6.1
/// container-safety rule demands concurrency-safe kinds there; a plain
/// TreeMap would be rejected. The pid index is a ConcurrentHashMap.
Decomposition makeSchedulerDecomposition(const RelationSpec &Spec) {
  ColumnSet Pid = Spec.cols({"pid"});
  ColumnSet State = Spec.cols({"state"});
  ColumnSet Prio = Spec.cols({"prio"});
  Decomposition D(Spec);
  NodeId Rho = D.addNode("rho", ColumnSet::empty(), Spec.allColumns());
  NodeId ByState = D.addNode("byState", State, Pid | Prio);
  NodeId Proc1 = D.addNode("proc1", State | Pid, Prio);
  NodeId Leaf1 = D.addNode("leaf1", Spec.allColumns(), ColumnSet::empty());
  NodeId Proc2 = D.addNode("proc2", Pid, State | Prio);
  NodeId Leaf2 = D.addNode("leaf2", Spec.allColumns(), ColumnSet::empty());
  D.addEdge(Rho, ByState, State, ContainerKind::ConcurrentSkipListMap);
  D.addEdge(ByState, Proc1, Pid, ContainerKind::ConcurrentHashMap);
  D.addEdge(Proc1, Leaf1, Prio, ContainerKind::SingletonCell);
  D.addEdge(Rho, Proc2, Pid, ContainerKind::ConcurrentHashMap);
  D.addEdge(Proc2, Leaf2, State | Prio, ContainerKind::SingletonCell);
  return D;
}

} // namespace

int main() {
  auto Spec = std::make_shared<RelationSpec>(RelationSpec(
      {"pid", "state", "prio"}, {{{"pid"}, {"state", "prio"}}}));
  auto Decomp = std::make_shared<Decomposition>(
      makeSchedulerDecomposition(*Spec));

  // The same adequacy check the synthesizer applies (§4.1).
  ValidationResult Adequate = Decomp->validate();
  if (!Adequate.ok()) {
    std::printf("decomposition rejected:\n%s", Adequate.str().c_str());
    return 1;
  }
  std::printf("scheduler decomposition accepted:\n  %s\n\n",
              Decomp->str().c_str());

  // Striped placement at the root; inner edges serialized per instance.
  auto Placement = std::make_shared<LockPlacement>(
      makeStripedPlacement(*Decomp, 256));
  ConcurrentRelation Procs({Spec, Decomp, Placement, "scheduler"});

  const int64_t StateReady = 0, StateRunning = 1, StateBlocked = 2;

  // The scheduler's hot paths as prepared handles: plans resolved once,
  // per-call work reduced to positional binds into per-thread frames.
  // Slot order is ascending column order — pid, state, prio.
  PreparedInsert Spawn = Procs.prepareInsert(Spec->cols({"pid"}));
  PreparedRemove Despawn = Procs.prepareRemove(Spec->cols({"pid"}));
  PreparedQuery ByState =
      Procs.prepareQuery(Spec->cols({"state"}), Spec->cols({"pid", "prio"}));
  auto Put = [&](int64_t P, int64_t State, int64_t Prio) {
    return Spawn.bind(0, Value::ofInt(P))
        .bind(1, Value::ofInt(State))
        .bind(2, Value::ofInt(Prio))
        .execute();
  };

  // Spawn processes from several "CPU" threads; pids are partitioned,
  // inserts are put-if-absent so double-spawn is impossible. The handle
  // is shared — each CPU thread binds its own argument frame.
  std::vector<std::thread> Cpus;
  for (int Cpu = 0; Cpu < 4; ++Cpu)
    Cpus.emplace_back([&, Cpu] {
      for (int64_t I = 0; I < 64; ++I)
        Put(Cpu * 1000 + I, I % 3, I % 8);
    });
  for (auto &T : Cpus)
    T.join();
  std::printf("process table holds %zu processes\n", Procs.size());

  // Run-queue scan: all READY pids, by the state index.
  ByState.bind(0, Value::ofInt(StateReady));
  auto Ready = ByState.execute();
  std::printf("ready queue has %zu processes\n", Ready.size());

  // A context switch = remove + insert under the pid key (the relation
  // is the source of truth; both indexes stay in sync automatically).
  if (!Ready.empty()) {
    int64_t Victim = Ready.front().get(Spec->col("pid")).asInt();
    int64_t Prio = Ready.front().get(Spec->col("prio")).asInt();
    Despawn.bind(0, Value::ofInt(Victim)).execute();
    Put(Victim, StateRunning, Prio);
    std::printf("dispatched pid %lld\n", static_cast<long long>(Victim));
  }

  // Block everything currently running. The streamed scan must not
  // mutate from inside the visitor (one execution context per thread),
  // so collect the runners first, then batch the state flips — each
  // remove and re-insert stays individually atomic.
  std::vector<std::pair<int64_t, int64_t>> Running;
  ByState.bind(0, Value::ofInt(StateRunning));
  ByState.forEach([&](const Tuple &T) {
    Running.push_back({T.get(Spec->col("pid")).asInt(),
                       T.get(Spec->col("prio")).asInt()});
  });
  // Two batches, not one: a batch may reorder its operations, so the
  // removes (all independent of each other) land before any re-insert
  // of the same pid.
  std::vector<BoundOp> Drops, Reinserts;
  for (auto &[P, Prio] : Running) {
    Drops.push_back(BoundOp::remove(Despawn, {Value::ofInt(P)}));
    Reinserts.push_back(BoundOp::insert(Spawn, {Value::ofInt(P),
                                                Value::ofInt(StateBlocked),
                                                Value::ofInt(Prio)}));
  }
  executeBatch(Drops);
  executeBatch(Reinserts);
  std::printf("blocked former runners; table still has %zu processes\n",
              Procs.size());

  // Fast-path pid lookup uses the hash index (see the plan).
  std::printf("\npid-lookup plan:\n%s\n",
              Procs.explainQuery(Spec->cols({"pid"}),
                                 Spec->cols({"state", "prio"}))
                  .c_str());

  ValidationResult V = Procs.verifyConsistency();
  std::printf("consistency: %s\n", V.ok() ? "ok" : V.str().c_str());
  return V.ok() ? 0 : 1;
}
