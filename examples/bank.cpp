//===- examples/bank.cpp - Transactional transfers under contention -----------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The classic two-row atomicity demo on a synthesized relation: a
/// "bank" of accounts — account i stored as the tuple (src=i, dst=0,
/// weight=balance) in a 4-shard graph relation — serves concurrent
/// transfer transactions (src/txn/Transaction.h):
///
///   read a.balance, read b.balance (both for-update),
///   rewrite both rows with balance±x,
///   commit — or abort, by force or by wait-die conflict.
///
/// Four worker threads transfer between *randomly chosen* accounts, so
/// scopes collide on rows, cross shards, and regularly die and retry;
/// ~15% of built scopes are force-aborted to exercise the undo path;
/// and mid-run the fleet migrates shard-at-a-time to a different
/// representation under full transactional traffic. The demo
/// self-verifies: money is conserved (the balance total is invariant),
/// no account vanishes or goes negative, and the structure checks out —
/// exit nonzero on any violation. A visible intermediate state (a
/// debit without its credit) would break conservation immediately.
///
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"
#include "support/Rng.h"
#include "txn/Transaction.h"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

using namespace crs;

int main() {
  constexpr unsigned NumShards = 4, NumThreads = 4;
  constexpr int64_t NumAccounts = 64, InitialBalance = 1000;
  constexpr uint64_t TransfersPerThread = 400;
  constexpr unsigned ForcedAbortPct = 15;

  RepresentationConfig Start = makeGraphRepresentation(
      {GraphShape::Stick, PlacementSchemeKind::Coarse, 1,
       ContainerKind::HashMap, ContainerKind::TreeMap});
  RepresentationConfig Target = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Striped, 64,
       ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap});
  ShardedRelation Bank(Start, NumShards);
  const RelationSpec &Spec = Bank.spec();
  ColumnId WeightCol = Spec.col("weight");

  for (int64_t A = 0; A < NumAccounts; ++A)
    Bank.insert(Tuple::of({{Spec.col("src"), Value::ofInt(A)},
                           {Spec.col("dst"), Value::ofInt(0)}}),
                Tuple::of({{WeightCol, Value::ofInt(InitialBalance)}}));
  const int64_t TotalMoney = NumAccounts * InitialBalance;
  std::printf("bank demo: %lld accounts x %lld across %u shards of %s; "
              "%u threads, %llu transfers each, ~%u%% forced aborts\n\n",
              static_cast<long long>(NumAccounts),
              static_cast<long long>(InitialBalance), NumShards,
              Start.Name.c_str(), NumThreads,
              static_cast<unsigned long long>(TransfersPerThread),
              ForcedAbortPct);

  // The balance read binds the whole row key (src=acct, dst=0), so it
  // routes to one shard like the rewrites — a transfer is at most a
  // two-shard scope, never a fleet-wide fan-out.
  ShardedQuery Balance =
      Bank.prepareQuery(Spec.cols({"src", "dst"}), Spec.cols({"weight"}));
  ShardedInsert Put = Bank.prepareInsert(Spec.cols({"src", "dst"}));
  ShardedRemove Drop = Bank.prepareRemove(Spec.cols({"src", "dst"}));

  std::atomic<uint64_t> Committed{0}, ForcedAborts{0}, Transfers{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < NumThreads; ++T)
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(0xBA2C + T);
      for (uint64_t I = 0; I < TransfersPerThread; ++I) {
        int64_t A = static_cast<int64_t>(Rng.nextBounded(NumAccounts));
        int64_t B = static_cast<int64_t>(Rng.nextBounded(NumAccounts - 1));
        if (B >= A)
          ++B; // distinct accounts
        bool ForceAbort = Rng.nextBounded(100) < ForcedAbortPct;
        uint64_t Amount = Rng.nextBounded(50) + 1;

        bool Ok = runTransaction(Bank, [&](ShardedTransaction &Txn) {
          // Read both balances for update; a false return means the
          // scope died (wait-die conflict, say) and has already rolled
          // back — returning true lets runTransaction retry it.
          int64_t BalA = -1, BalB = -1;
          if (!Txn.queryForUpdate(Balance, {Value::ofInt(A), Value::ofInt(0)},
                         [&](const Tuple &Tp) {
                           BalA = Tp.get(WeightCol).asInt();
                         }))
            return true;
          if (!Txn.queryForUpdate(Balance, {Value::ofInt(B), Value::ofInt(0)},
                         [&](const Tuple &Tp) {
                           BalB = Tp.get(WeightCol).asInt();
                         }))
            return true;
          int64_t X = std::min<int64_t>(static_cast<int64_t>(Amount), BalA);
          // Rewrite both rows (remove + insert = update): the scope
          // holds every touched row's locks, so no observer can see the
          // debit without the credit.
          if (!Txn.remove(Drop, {Value::ofInt(A), Value::ofInt(0)}) ||
              !Txn.insert(Put, {Value::ofInt(A), Value::ofInt(0),
                                Value::ofInt(BalA - X)}) ||
              !Txn.remove(Drop, {Value::ofInt(B), Value::ofInt(0)}) ||
              !Txn.insert(Put, {Value::ofInt(B), Value::ofInt(0),
                                Value::ofInt(BalB + X)}))
            return true;
          // Forced abort: the whole rewrite must vanish exactly.
          return !ForceAbort;
        });
        if (Ok)
          Committed.fetch_add(1, std::memory_order_relaxed);
        else
          ForcedAborts.fetch_add(1, std::memory_order_relaxed);
        Transfers.fetch_add(1, std::memory_order_relaxed);
      }
    });

  // Mid-run: roll the fleet shard-at-a-time under transactional load.
  while (Transfers.load(std::memory_order_relaxed) <
         NumThreads * TransfersPerThread / 3)
    std::this_thread::yield();
  std::printf("mid-run: rolling the fleet to %s under transactional "
              "traffic\n",
              Target.Name.c_str());
  for (unsigned S = 0; S < NumShards; ++S) {
    MigrationResult Res = Bank.migrateShard(S, Target);
    if (!Res.Ok) {
      std::printf("shard %u migration failed: %s\n", S, Res.Error.c_str());
      return 1;
    }
    std::printf("  shard %u migrated (%llu backfilled, %llu/%llu "
                "mirrored)\n",
                S, static_cast<unsigned long long>(Res.Backfilled),
                static_cast<unsigned long long>(Res.MirroredInserts),
                static_cast<unsigned long long>(Res.MirroredRemoves));
  }
  for (std::thread &W : Workers)
    W.join();

  // Self-verification: conservation, completeness, structure.
  int64_t Sum = 0, Accounts = 0, Negative = 0;
  for (const Tuple &Tp : Bank.scanAll()) {
    ++Accounts;
    int64_t Bal = Tp.get(WeightCol).asInt();
    Sum += Bal;
    if (Bal < 0)
      ++Negative;
  }
  ValidationResult V = Bank.verifyConsistency();
  std::printf("\n%llu committed, %llu forced aborts; final: %lld accounts, "
              "balance total %lld (expected %lld), %lld negative; "
              "consistency %s\n",
              static_cast<unsigned long long>(Committed.load()),
              static_cast<unsigned long long>(ForcedAborts.load()),
              static_cast<long long>(Accounts), static_cast<long long>(Sum),
              static_cast<long long>(TotalMoney),
              static_cast<long long>(Negative),
              V.ok() ? "ok" : V.str().c_str());

  bool Pass = Sum == TotalMoney && Accounts == NumAccounts &&
              Negative == 0 && V.ok() && Committed.load() > 0 &&
              ForcedAborts.load() > 0;
  std::printf("%s\n", Pass ? "PASS: money conserved through commits, "
                             "aborts, conflicts, and a live migration"
                           : "FAIL: the transactional invariant broke");
  return Pass ? 0 : 1;
}
