//===- examples/graph_autotune.cpp - Autotuning a representation --------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The §6.1 experience in miniature: you know your workload, the
/// autotuner picks the representation. We train on a predecessor-heavy
/// mix (45-45-9-1) over a pruned variant menu and print the ranking —
/// expect split/diamond structures with striped concurrent top levels
/// to come out ahead, and coarse sticks at the bottom, as in Figure 5.
///
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace crs;

int main(int argc, char **argv) {
  unsigned Threads = argc > 1 ? std::atoi(argv[1]) : 2;
  uint64_t Ops = argc > 2 ? std::atoll(argv[2]) : 4000;

  // A small, curated menu (the full enumerated space is exercised by
  // bench/bench_autotuner).
  using CK = ContainerKind;
  using PS = PlacementSchemeKind;
  std::vector<GraphVariant> Menu{
      {GraphShape::Stick, PS::Coarse, 1, CK::HashMap, CK::TreeMap},
      {GraphShape::Stick, PS::Striped, 1024, CK::ConcurrentHashMap,
       CK::TreeMap},
      {GraphShape::Split, PS::Coarse, 1, CK::HashMap, CK::TreeMap},
      {GraphShape::Split, PS::Striped, 1024, CK::ConcurrentHashMap,
       CK::HashMap},
      {GraphShape::Split, PS::Striped, 1024, CK::ConcurrentHashMap,
       CK::TreeMap},
      {GraphShape::Split, PS::Speculative, 1024, CK::ConcurrentHashMap,
       CK::HashMap},
      {GraphShape::Diamond, PS::Striped, 1024, CK::ConcurrentHashMap,
       CK::HashMap},
      {GraphShape::Diamond, PS::Speculative, 1024, CK::ConcurrentHashMap,
       CK::HashMap},
  };

  OpMix Mix{45, 45, 9, 1};
  KeySpace Keys;
  HarnessParams Params;
  Params.NumThreads = Threads;
  Params.OpsPerThread = Ops;
  Params.Repeats = 2;
  Params.DiscardRuns = 1;

  std::printf("autotuning %zu variants on workload %s with %u threads\n\n",
              Menu.size(), Mix.str().c_str(), Threads);

  auto Results = autotune(Menu, Mix, Keys, Params, [](const TuneResult &R) {
    std::printf("  measured %-55s %10.0f ops/sec\n", R.Name.c_str(),
                R.OpsPerSec);
  });

  Table T({"rank", "representation", "ops/sec", "vs best"});
  for (size_t I = 0; I < Results.size(); ++I)
    T.addRow({std::to_string(I + 1), Results[I].Name,
              Table::fmt(Results[I].OpsPerSec, 0),
              Table::fmt(Results[I].OpsPerSec / Results[0].OpsPerSec, 3)});
  std::printf("\n");
  T.print(std::cout);

  std::printf("\nwinner: %s\n", Results.front().Name.c_str());
  RepresentationConfig Best = makeGraphRepresentation(Results.front().Variant);
  std::printf("  decomposition: %s\n", Best.Decomp->str().c_str());
  std::printf("  placement:     %s\n", Best.Placement->str().c_str());
  return 0;
}
