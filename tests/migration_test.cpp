//===- tests/migration_test.cpp - Live representation migration --------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// ConcurrentRelation::migrateTo (runtime/Migration.h): hot-swapping a
/// live relation's decomposition under traffic. Covers the quiescent
/// path, up-front rejection of illegal targets, the dual-write phase
/// (MirrorWrite visible in explain, mutations mirrored, adaptPlans
/// keeping the epilogue), mutations racing the backfill on the same
/// key, prepared handles rebinding across both flips, and a 4-thread
/// mixed workload migrated mid-run and verified against the
/// replayed-log oracle (zero lost or duplicated edges).
///
//===----------------------------------------------------------------------===//

#include "StressHarness.h"
#include "autotune/Autotuner.h"
#include "decomp/Shapes.h"
#include "lockplace/PlacementSchemes.h"
#include "runtime/ConcurrentRelation.h"
#include "runtime/PreparedOp.h"
#include "txn/Transaction.h"
#include "workload/GraphWorkload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>

using namespace crs;

namespace {

Tuple key(const RelationSpec &Spec, int64_t S, int64_t D) {
  return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                    {Spec.col("dst"), Value::ofInt(D)}});
}

Tuple weight(const RelationSpec &Spec, int64_t W) {
  return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
}

RepresentationConfig stickCoarse() {
  return makeGraphRepresentation({GraphShape::Stick,
                                  PlacementSchemeKind::Coarse, 1,
                                  ContainerKind::HashMap,
                                  ContainerKind::TreeMap});
}

RepresentationConfig splitStriped(uint32_t Stripes = 64) {
  return makeGraphRepresentation({GraphShape::Split,
                                  PlacementSchemeKind::Striped, Stripes,
                                  ContainerKind::ConcurrentHashMap,
                                  ContainerKind::TreeMap});
}

TEST(Migration, QuiescentStickToSplitPreservesRelation) {
  RepresentationConfig From = stickCoarse();
  ASSERT_TRUE(From.Placement);
  const RelationSpec &Spec = *From.Spec;
  ConcurrentRelation R(From);
  for (int64_t I = 0; I < 200; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I % 20, I), weight(Spec, I * 7)));
  std::vector<Tuple> Before = R.scanAll();
  uint64_t Epoch0 = R.planEpoch();

  MigrationResult Res = R.migrateTo(splitStriped());
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.Backfilled, 200u);
  EXPECT_EQ(Res.MirroredInserts, 0u);
  EXPECT_EQ(Res.MirroredRemoves, 0u);
  EXPECT_EQ(R.migrationPhase(), MigrationPhase::Idle);
  // Both flips bump the plan epoch (dual-write entry + retirement).
  EXPECT_EQ(R.planEpoch(), Epoch0 + 2);
  EXPECT_EQ(R.config().Name, splitStriped().Name);

  EXPECT_EQ(R.scanAll(), Before);
  EXPECT_EQ(R.size(), 200u);
  ValidationResult V = R.verifyConsistency();
  EXPECT_TRUE(V.ok()) << V.str();

  // The migrated relation serves and mutates normally.
  EXPECT_FALSE(R.insert(key(Spec, 0, 0), weight(Spec, 999)));
  EXPECT_EQ(R.remove(key(Spec, 0, 0)), 1u);
  EXPECT_TRUE(R.insert(key(Spec, 0, 0), weight(Spec, 999)));
  EXPECT_EQ(R.size(), 200u);
}

TEST(Migration, ChainedMigrationsAcrossShapes) {
  RepresentationConfig From = stickCoarse();
  const RelationSpec &Spec = *From.Spec;
  ConcurrentRelation R(From);
  for (int64_t I = 0; I < 64; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I / 8, I), weight(Spec, I)));
  std::vector<Tuple> Before = R.scanAll();

  ASSERT_TRUE(R.migrateTo(splitStriped()).Ok);
  ASSERT_TRUE(R.migrateTo(makeGraphRepresentation(
                              {GraphShape::Diamond,
                               PlacementSchemeKind::Striped, 8,
                               ContainerKind::ConcurrentHashMap,
                               ContainerKind::HashMap}))
                  .Ok);
  // Through a speculative placement, then back to where we started.
  ASSERT_TRUE(R.migrateTo(makeGraphRepresentation(
                              {GraphShape::Split,
                               PlacementSchemeKind::Speculative, 8,
                               ContainerKind::ConcurrentHashMap,
                               ContainerKind::HashMap}))
                  .Ok);
  ASSERT_TRUE(R.migrateTo(stickCoarse()).Ok);

  EXPECT_EQ(R.scanAll(), Before);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(Migration, IllegalTargetsRejectedUpFront) {
  RepresentationConfig From = stickCoarse();
  const RelationSpec &Spec = *From.Spec;
  ConcurrentRelation R(From);
  ASSERT_TRUE(R.insert(key(Spec, 1, 2), weight(Spec, 3)));
  uint64_t Epoch0 = R.planEpoch();

  // Empty config (what makeGraphRepresentation returns for an illegal
  // variant).
  MigrationResult Empty = R.migrateTo(RepresentationConfig{});
  EXPECT_FALSE(Empty.Ok);
  EXPECT_NE(Empty.Error.find("empty"), std::string::npos) << Empty.Error;

  // A different specification: migration re-represents the same
  // relation, it cannot change the schema.
  RepresentationConfig WrongSpec = splitStriped();
  WrongSpec.Spec = std::make_shared<RelationSpec>(
      RelationSpec({"a", "b"}, {{{"a"}, {"b"}}}));
  MigrationResult Mismatch = R.migrateTo(WrongSpec);
  EXPECT_FALSE(Mismatch.Ok);
  EXPECT_NE(Mismatch.Error.find("specification"), std::string::npos)
      << Mismatch.Error;

  // Container-unsafe: a striped placement leaves the root edges
  // concurrent, so a non-concurrent HashMap there is illegal (§6.1's
  // container-safety rule).
  auto UnsafeSpec = std::make_shared<RelationSpec>(makeGraphSpec());
  auto UnsafeDecomp = std::make_shared<Decomposition>(makeGraphDecomposition(
      *UnsafeSpec, GraphShape::Stick,
      {ContainerKind::HashMap, ContainerKind::HashMap}));
  auto UnsafePlacement = std::make_shared<LockPlacement>(
      makeStripedPlacement(*UnsafeDecomp, 8));
  MigrationResult Unsafe = R.migrateTo(
      {UnsafeSpec, UnsafeDecomp, UnsafePlacement, "unsafe"});
  EXPECT_FALSE(Unsafe.Ok);
  EXPECT_NE(Unsafe.Error.find("unsafe"), std::string::npos) << Unsafe.Error;

  // Rejection is up-front: the relation was never touched.
  EXPECT_EQ(R.migrationPhase(), MigrationPhase::Idle);
  EXPECT_EQ(R.planEpoch(), Epoch0);
  EXPECT_EQ(R.config().Name, From.Name);
  EXPECT_EQ(R.size(), 1u);
  EXPECT_TRUE(R.verifyConsistency().ok());
}

/// Observer that runs a callback at each phase hook.
struct Hooks : MigrationObserver {
  std::function<void()> DualWriteStart;
  std::function<void(uint64_t, uint64_t)> BackfillProgress;
  std::function<void()> BeforeSwap;
  void onDualWriteStart() override {
    if (DualWriteStart)
      DualWriteStart();
  }
  void onBackfillProgress(uint64_t Copied, uint64_t Total) override {
    if (BackfillProgress)
      BackfillProgress(Copied, Total);
  }
  void onBeforeSwap() override {
    if (BeforeSwap)
      BeforeSwap();
  }
};

TEST(Migration, DualWriteIsVisibleAndMirrored) {
  RepresentationConfig From = stickCoarse();
  const RelationSpec &Spec = *From.Spec;
  ConcurrentRelation R(From);
  ColumnSet DomS = Spec.cols({"src", "dst"});
  for (int64_t I = 0; I < 50; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I, I), weight(Spec, I)));
  ASSERT_EQ(R.explainInsert(DomS).find("mirror-write"), std::string::npos);

  Hooks Obs;
  uint64_t EpochInDual = 0;
  Obs.DualWriteStart = [&] {
    EXPECT_EQ(R.migrationPhase(), MigrationPhase::DualWrite);
    EpochInDual = R.planEpoch();
    // The dual-write epilogue is plan IR: explain shows it on both
    // mutation kinds, and never on queries.
    std::string Ins = R.explainInsert(DomS);
    EXPECT_NE(Ins.find("mirror-write"), std::string::npos) << Ins;
    EXPECT_NE(Ins.find("insert s={src, dst}"), std::string::npos) << Ins;
    std::string Rem = R.explainRemove(DomS);
    EXPECT_NE(Rem.find("mirror-write"), std::string::npos) << Rem;
    std::string Q = R.explainQuery(Spec.cols({"src"}), Spec.cols({"dst"}));
    EXPECT_EQ(Q.find("mirror-write"), std::string::npos) << Q;
    // Mutations executed during dual-write are mirrored and must
    // survive the swap.
    EXPECT_TRUE(R.insert(key(Spec, 100, 100), weight(Spec, 1)));
    EXPECT_EQ(R.remove(key(Spec, 0, 0)), 1u);
  };
  MigrationResult Res = R.migrateTo(splitStriped(), &Obs);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.MirroredInserts, 1u);
  EXPECT_EQ(Res.MirroredRemoves, 1u);
  EXPECT_GT(R.planEpoch(), EpochInDual);

  // Post-swap plans are for the new decomposition, without mirroring.
  EXPECT_EQ(R.explainInsert(DomS).find("mirror-write"), std::string::npos);
  EXPECT_EQ(R.size(), 50u);
  EXPECT_EQ(R.query(key(Spec, 100, 100), Spec.cols({"weight"})).size(), 1u);
  EXPECT_TRUE(R.query(key(Spec, 0, 0), Spec.cols({"weight"})).empty());
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(Migration, MutationsRacingBackfillOnTheSameKeys) {
  RepresentationConfig From = stickCoarse();
  const RelationSpec &Spec = *From.Spec;
  ConcurrentRelation R(From);
  constexpr int64_t N = 120;
  for (int64_t I = 0; I < N; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I, I), weight(Spec, I)));

  // Interleave mutations with the backfill walk on keys the walk may
  // or may not have copied yet: replace one key (remove + reinsert),
  // cycle another (ends absent), and insert fresh keys mid-walk. The
  // serialization argument says the final state must be exactly the
  // sequentially expected one, wherever the walk happened to be.
  Hooks Obs;
  bool Early = false, Late = false;
  Obs.BackfillProgress = [&](uint64_t Copied, uint64_t Total) {
    if (!Early && Copied >= 1) {
      Early = true;
      EXPECT_EQ(R.remove(key(Spec, 0, 0)), 1u);       // likely copied
      EXPECT_TRUE(R.insert(key(Spec, 0, 0), weight(Spec, 1000)));
      EXPECT_EQ(R.remove(key(Spec, N - 1, N - 1)), 1u); // likely uncopied
    }
    if (!Late && Copied >= Total - 1) {
      Late = true;
      EXPECT_TRUE(R.insert(key(Spec, 500, 500), weight(Spec, 2000)));
      EXPECT_EQ(R.remove(key(Spec, 1, 1)), 1u);
      EXPECT_TRUE(R.insert(key(Spec, 1, 1), weight(Spec, 3000)));
      EXPECT_EQ(R.remove(key(Spec, 1, 1)), 1u);
    }
  };
  MigrationResult Res = R.migrateTo(splitStriped(), &Obs);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_TRUE(Early);
  EXPECT_TRUE(Late);

  EXPECT_EQ(R.size(), static_cast<size_t>(N - 2 + 1)); // -key(N-1), -key(1), +key(500)
  auto W0 = R.query(key(Spec, 0, 0), Spec.cols({"weight"}));
  ASSERT_EQ(W0.size(), 1u);
  EXPECT_EQ(W0[0].get(Spec.col("weight")).asInt(), 1000);
  EXPECT_TRUE(R.query(key(Spec, 1, 1), Spec.cols({"weight"})).empty());
  EXPECT_TRUE(R.query(key(Spec, N - 1, N - 1), Spec.cols({"weight"})).empty());
  EXPECT_EQ(R.query(key(Spec, 500, 500), Spec.cols({"weight"})).size(), 1u);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(Migration, ThrowingObserverRollsBackToSourceOnly) {
  RepresentationConfig From = stickCoarse();
  const RelationSpec &Spec = *From.Spec;
  ConcurrentRelation R(From);
  ColumnSet DomS = Spec.cols({"src", "dst"});
  for (int64_t I = 0; I < 40; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I, I), weight(Spec, I)));

  struct Bomb {};
  Hooks Obs;
  Obs.BackfillProgress = [&](uint64_t Copied, uint64_t) {
    // Mutate during dual-write, then blow up mid-backfill: the
    // exception must propagate and the relation must roll back to the
    // source-only regime with nothing lost.
    if (Copied == 5) {
      EXPECT_TRUE(R.insert(key(Spec, 200, 200), weight(Spec, 2)));
      throw Bomb{};
    }
  };
  EXPECT_THROW(R.migrateTo(splitStriped(), &Obs), Bomb);

  EXPECT_EQ(R.migrationPhase(), MigrationPhase::Idle);
  EXPECT_EQ(R.config().Name, From.Name); // still the source representation
  EXPECT_EQ(R.explainInsert(DomS).find("mirror-write"), std::string::npos);
  EXPECT_EQ(R.size(), 41u);
  EXPECT_EQ(R.query(key(Spec, 200, 200), Spec.cols({"weight"})).size(), 1u);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();

  // The relation is fully serviceable, including a later migration.
  MigrationResult Res = R.migrateTo(splitStriped());
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(R.size(), 41u);
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(Migration, AdaptPlansDuringDualWriteKeepsMirroring) {
  RepresentationConfig From = stickCoarse();
  const RelationSpec &Spec = *From.Spec;
  ConcurrentRelation R(From);
  ColumnSet DomS = Spec.cols({"src", "dst"});
  for (int64_t I = 0; I < 30; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I % 5, I), weight(Spec, I)));

  Hooks Obs;
  Obs.DualWriteStart = [&] {
    // Statistics-driven replanning mid-migration: the recompiled
    // mutation plans must keep their dual-write epilogues, or writes
    // would silently stop reaching the shadow.
    R.adaptPlans();
    std::string Ins = R.explainInsert(DomS);
    EXPECT_NE(Ins.find("mirror-write"), std::string::npos) << Ins;
    EXPECT_NE(R.explainRemove(DomS).find("mirror-write"), std::string::npos);
    EXPECT_TRUE(R.insert(key(Spec, 70, 70), weight(Spec, 7)));
  };
  MigrationResult Res = R.migrateTo(splitStriped(), &Obs);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.MirroredInserts, 1u);
  EXPECT_EQ(R.query(key(Spec, 70, 70), Spec.cols({"weight"})).size(), 1u);
  EXPECT_EQ(R.size(), 31u);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(Migration, PreparedHandlesRebindAcrossBothFlips) {
  RepresentationConfig From = stickCoarse();
  const RelationSpec &Spec = *From.Spec;
  ConcurrentRelation R(From);
  PreparedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  PreparedRemove Rem = R.prepareRemove(Spec.cols({"src", "dst"}));
  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  auto InsertEdge = [&](int64_t S, int64_t D, int64_t W) {
    return Ins.bind(0, Value::ofInt(S))
        .bind(1, Value::ofInt(D))
        .bind(2, Value::ofInt(W))
        .execute();
  };
  for (int64_t I = 0; I < 40; ++I)
    ASSERT_TRUE(InsertEdge(I % 4, I, I));
  ASSERT_TRUE(Succ.bind(0, Value::ofInt(1)).forEach([](const Tuple &) {}));
  uint64_t Bound0 = Ins.boundEpoch();
  EXPECT_EQ(Bound0, R.planEpoch());

  Hooks Obs;
  Obs.DualWriteStart = [&] {
    // First execution after the dual-write flip transparently rebinds
    // the handle onto a mirroring plan for the *same* source
    // decomposition.
    EXPECT_TRUE(InsertEdge(90, 90, 9));
    EXPECT_EQ(Ins.boundEpoch(), R.planEpoch());
    EXPECT_GT(Ins.boundEpoch(), Bound0);
    EXPECT_NE(Ins.explain().find("mirror-write"), std::string::npos);
    EXPECT_EQ(Rem.bind(0, Value::ofInt(0)).bind(1, Value::ofInt(0)).execute(),
              1u);
  };
  MigrationResult Res = R.migrateTo(splitStriped(), &Obs);
  ASSERT_TRUE(Res.Ok) << Res.Error;

  // Second rebind: plans compiled for the new decomposition, epilogue
  // gone, and the handles keep serving.
  EXPECT_TRUE(InsertEdge(91, 91, 9));
  EXPECT_EQ(Ins.boundEpoch(), R.planEpoch());
  EXPECT_EQ(Ins.explain().find("mirror-write"), std::string::npos);
  uint64_t SuccCount = Succ.bind(0, Value::ofInt(2)).count();
  EXPECT_EQ(SuccCount, 10u); // srcs 2, dsts 2,6,10,...,38
  EXPECT_EQ(R.size(), 41u);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(Migration, FourThreadMixedWorkloadMigratedMidRunMatchesOracle) {
  RepresentationConfig From = stickCoarse();
  const RelationSpec &Spec = *From.Spec;
  ConcurrentRelation R(From);
  PreparedRelationTarget Target(R);

  // Let traffic build some state, migrate under it, let traffic finish
  // on the new representation (tests/StressHarness.h; srcs are disjoint
  // per worker so the logs are an exact oracle).
  stress::StressOptions Opts;
  Opts.Seed = 7000;
  MigrationResult Res;
  stress::StressReport Rep = stress::runStressWithOracle(
      Target, Opts, [&] { Res = R.migrateTo(splitStriped(), nullptr); });
  ASSERT_TRUE(Res.Ok) << Res.Error;

  // Oracle: replay the logs; any lost or duplicated effect shows up
  // either as an outcome mismatch or as a final-state difference.
  EXPECT_TRUE(Rep.Errors.empty()) << Rep.Errors.size()
                                  << " mismatches, first: " << Rep.Errors[0]
                                  << "; " << Rep.hint();
  EXPECT_EQ(R.size(), Rep.Expected.size()) << Rep.hint();
  std::vector<std::string> Diffs =
      stress::diffFinalState(R.scanAll(), Spec, Rep.Expected);
  EXPECT_TRUE(Diffs.empty()) << Diffs.size() << " diffs, first: " << Diffs[0]
                             << "; " << Rep.hint();
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(Migration, SampleStatisticsIsSafeUnderTraffic) {
  RepresentationConfig From = splitStriped(8);
  const RelationSpec &Spec = *From.Spec;
  ConcurrentRelation R(From);
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 2; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(100 + T);
      while (!Stop.load(std::memory_order_acquire)) {
        int64_t S = static_cast<int64_t>(Rng.nextBounded(32));
        int64_t D = static_cast<int64_t>(Rng.nextBounded(32));
        if (Rng.nextBounded(2))
          R.insert(key(Spec, S, D), weight(Spec, 1));
        else
          R.remove(key(Spec, S, D));
      }
    });
  // Wait for real traffic (a single-core host may not have scheduled
  // the workers yet), then sample while they are hammering.
  while (R.operationCounts().total() < 200)
    std::this_thread::yield();
  // Unlike collectStatistics, sampling quiesces via the operation gate
  // and is safe while writers are hammering the relation.
  uint64_t Instances = 0;
  for (int I = 0; I < 20; ++I) {
    RelationStatistics Stats = R.sampleStatistics();
    Instances = std::max(Instances, Stats.NodeInstances);
  }
  Stop.store(true, std::memory_order_release);
  for (auto &T : Threads)
    T.join();
  EXPECT_GT(Instances, 0u);
  OperationCounts Counts = R.operationCounts();
  EXPECT_GT(Counts.Inserts + Counts.Removes, 0u);
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(Migration, SnapshotScopeSurvivesAMigrationMidRead) {
  // A read-only transaction scope never enters the operation gate (the
  // gate is joined lazily at the first lock-taking op), so a migration
  // can start, backfill, and complete both flips *while the scope is
  // open* — and the scope's MVCC snapshot still reads the pre-migration
  // values afterwards: the version store is keyed by tuple identity,
  // not by node instances, so the representation swap does not disturb
  // it.
  RepresentationConfig From = stickCoarse();
  const RelationSpec &Spec = *From.Spec;
  ConcurrentRelation R(From);
  for (int64_t I = 0; I < 16; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I, I), weight(Spec, I)));
  PreparedQuery Exact =
      R.prepareQuery(Spec.cols({"src", "dst"}), Spec.cols({"weight"}));

  Transaction T(R);
  int64_t W0 = -1;
  ASSERT_TRUE(T.query(Exact, {Value::ofInt(3), Value::ofInt(3)},
                      [&](const Tuple &Tp) {
                        W0 = Tp.get(Spec.col("weight")).asInt();
                      }));
  EXPECT_EQ(W0, 3);

  // The migration runs to completion mid-scope (this would deadlock if
  // the scope held the gate), then a rival commits a new value.
  MigrationResult Res = R.migrateTo(splitStriped());
  ASSERT_TRUE(Res.Ok) << Res.Error;
  std::thread Writer([&] {
    ASSERT_TRUE(runTransaction(R, [&](Transaction &Txn) {
      PreparedRemove Rem = R.prepareRemove(Spec.cols({"src", "dst"}));
      PreparedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
      if (!Txn.remove(Rem, {Value::ofInt(3), Value::ofInt(3)}))
        return true;
      Txn.insert(Ins, {Value::ofInt(3), Value::ofInt(3), Value::ofInt(99)});
      return true;
    }));
  });
  Writer.join();

  // Same scope, same snapshot, same value — across the swap and the
  // rival's commit.
  int64_t W1 = -1;
  ASSERT_TRUE(T.query(Exact, {Value::ofInt(3), Value::ofInt(3)},
                      [&](const Tuple &Tp) {
                        W1 = Tp.get(Spec.col("weight")).asInt();
                      }));
  EXPECT_EQ(W1, 3);
  EXPECT_TRUE(T.commit());

  // A scope opened now sees the post-migration, post-commit state.
  Transaction After(R);
  int64_t W2 = -1;
  ASSERT_TRUE(After.query(Exact, {Value::ofInt(3), Value::ofInt(3)},
                          [&](const Tuple &Tp) {
                            W2 = Tp.get(Spec.col("weight")).asInt();
                          }));
  EXPECT_EQ(W2, 99);
  EXPECT_TRUE(After.commit());
  EXPECT_TRUE(R.verifyConsistency().ok());
}

} // namespace
