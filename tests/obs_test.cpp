//===- tests/obs_test.cpp - Observability layer battery -----------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The metrics/trace battery for src/obs: the striped counter and
/// log2-bucket latency histogram primitives (exact counts, quantile
/// bounds), the bounded event-trace ring (overwrite keeps the newest
/// Capacity events), the registry (dedup, callbacks, enable/sampling
/// knobs), the relation wiring (attachMetrics exports the counters the
/// relation already keeps; detach stops the export), the event-ring
/// acceptance capture — a full migration (both flips), a checkpoint,
/// and a wait-die abort, each showing up in its domain's ring — the
/// adaptPlans retirement of cold secondary chain directories, and one
/// end-of-run snapshot exporting valid crs-metrics/1 JSON plus
/// Prometheus text covering all six event domains, round-tripped
/// through tools/metrics_summary.py --validate.
///
//===----------------------------------------------------------------------===//

#include "autotune/OnlineTuner.h"
#include "obs/Exporter.h"
#include "runtime/PreparedOp.h"
#include "sync/Epoch.h"
#include "txn/Transaction.h"
#include "wal/Checkpoint.h"
#include "wal/Wal.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>

using namespace crs;
using namespace crs::obs;

namespace {

Tuple key(const RelationSpec &Spec, int64_t S, int64_t D) {
  return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                    {Spec.col("dst"), Value::ofInt(D)}});
}

Tuple weight(const RelationSpec &Spec, int64_t W) {
  return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
}

RepresentationConfig stickCoarse() {
  return makeGraphRepresentation({GraphShape::Stick,
                                  PlacementSchemeKind::Coarse, 1,
                                  ContainerKind::HashMap,
                                  ContainerKind::TreeMap});
}

RepresentationConfig splitStriped(uint32_t Stripes = 64) {
  return makeGraphRepresentation({GraphShape::Split,
                                  PlacementSchemeKind::Striped, Stripes,
                                  ContainerKind::ConcurrentHashMap,
                                  ContainerKind::TreeMap});
}

/// Drives two rival threads through the classic cross-order hot-pair
/// shape (even ascending, odd descending over neighboring keys — the
/// same contention txn_test's fairness battery uses) until bounded
/// wait-die kills one scope with Conflict. Requires a striped
/// placement (a coarse root collapses both acquisitions onto one
/// already-held lock) and keys 0..8 present. Returns whether a kill
/// was observed within the bounded attempts.
bool forceWaitDieConflict(ConcurrentRelation &R) {
  const RelationSpec &Spec = R.spec();
  PreparedQuery Exact =
      R.prepareQuery(Spec.cols({"src", "dst"}), Spec.cols({"weight"}));
  std::atomic<bool> Seen{false};
  std::atomic<int> Ready{0};
  auto Worker = [&](bool Descending) {
    // Start together (a worker that finishes before its rival launches
    // never contends), and pick pairs randomly (like txn_test's
    // fairness battery): lockstep sequences can phase-lock and miss.
    Ready.fetch_add(1, std::memory_order_acq_rel);
    while (Ready.load(std::memory_order_acquire) < 2)
      std::this_thread::yield();
    uint64_t Rng = Descending ? 0x9E3779B97F4A7C15ull : 0xD1B54A32D192ED03ull;
    for (int I = 0; I < 100000 && !Seen.load(std::memory_order_acquire);
         ++I) {
      Rng ^= Rng << 13;
      Rng ^= Rng >> 7;
      Rng ^= Rng << 17;
      int64_t A = static_cast<int64_t>(Rng % 7), B = A + 1;
      if (Descending)
        std::swap(A, B);
      Transaction T(R);
      bool Ok =
          T.queryForUpdate(Exact, {Value::ofInt(A), Value::ofInt(0)}) &&
          T.queryForUpdate(Exact, {Value::ofInt(B), Value::ofInt(0)});
      if (!Ok && T.abortCause() == TxnAbortCause::Conflict)
        Seen.store(true, std::memory_order_release);
      if (T.state() == TxnState::Open)
        T.commit();
    }
  };
  std::thread W1(Worker, false), W2(Worker, true);
  W1.join();
  W2.join();
  return Seen.load(std::memory_order_acquire);
}

/// A self-cleaning scratch directory for WAL/checkpoint/export files.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/crs_obs_XXXXXX";
    char *P = ::mkdtemp(Buf);
    EXPECT_NE(P, nullptr);
    Path = P ? P : "/tmp/crs_obs_fallback";
  }
  ~TempDir() {
    if (DIR *D = ::opendir(Path.c_str())) {
      while (struct dirent *E = ::readdir(D)) {
        std::string N = E->d_name;
        if (N != "." && N != "..")
          ::unlink((Path + "/" + N).c_str());
      }
      ::closedir(D);
    }
    ::rmdir(Path.c_str());
  }
};

WriteAheadLog::Options walOpts(const std::string &Dir) {
  WriteAheadLog::Options O;
  O.Dir = Dir;
  O.Partitions = 1;
  O.Fsync = FsyncMode::None;
  O.ParkMicros = 100;
  return O;
}

/// Detaches the process-global epoch domain from a test registry on
/// every exit path (the domain outlives any test-scoped registry).
struct EpochMetricsGuard {
  explicit EpochMetricsGuard(MetricsRegistry &R) {
    EpochDomain::global().attachMetrics(R);
  }
  ~EpochMetricsGuard() { EpochDomain::global().detachMetrics(); }
};

const MetricsSnapshot::CounterSample *
findCounter(const MetricsSnapshot &S, const std::string &Name) {
  for (const auto &C : S.Counters)
    if (C.Name == Name)
      return &C;
  return nullptr;
}

const MetricsSnapshot::GaugeSample *
findGauge(const MetricsSnapshot &S, const std::string &Name) {
  for (const auto &G : S.Gauges)
    if (G.Name == Name)
      return &G;
  return nullptr;
}

std::vector<TraceEvent> eventsOf(const MetricsSnapshot &S, EventDomain D) {
  for (const auto &DE : S.Events)
    if (DE.Domain == D)
      return DE.Events;
  return {};
}

bool hasKind(const std::vector<TraceEvent> &Evs, EventKind K) {
  for (const TraceEvent &E : Evs)
    if (E.Kind == K)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Primitives: histogram and ring
//===----------------------------------------------------------------------===//

TEST(ObsHistogram, Log2BucketsQuantilesAndMean) {
  LatencyHistogram H;
  for (int I = 0; I < 50; ++I)
    H.record(100); // bucket 6, upper bound 127
  for (int I = 0; I < 30; ++I)
    H.record(1000); // bucket 9, upper bound 1023
  for (int I = 0; I < 20; ++I)
    H.record(100000); // bucket 16, upper bound 131071

  LatencyHistogram::Data D = H.snapshot();
  EXPECT_EQ(D.Count, 100u);
  EXPECT_EQ(D.SumNanos, 50u * 100 + 30u * 1000 + 20u * 100000);
  EXPECT_EQ(D.MaxNanos, 100000u);
  // Quantiles report the containing bucket's upper bound, tightened by
  // the observed max — the documented log2 precision contract.
  EXPECT_EQ(D.quantileNanos(0.50), 127u);
  EXPECT_EQ(D.quantileNanos(0.95), 100000u); // bucket 16, max-tightened
  EXPECT_EQ(D.quantileNanos(0.99), 100000u);
  EXPECT_DOUBLE_EQ(D.meanNanos(), 20350.0);
  // Bucket mass must equal the count (the exporter-schema invariant
  // tools/metrics_summary.py enforces).
  uint64_t Mass = 0;
  for (unsigned B = 0; B < LatencyHistogram::NumBuckets; ++B)
    Mass += D.Buckets[B];
  EXPECT_EQ(Mass, D.Count);

  // Concurrent recording across stripes still sums exactly.
  LatencyHistogram H2;
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < 1000; ++I)
        H2.record(64);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(H2.snapshot().Count, 4000u);
}

TEST(ObsRing, BoundedOverwriteKeepsNewest) {
  TraceRing R;
  constexpr uint64_t Emitted = TraceRing::Capacity + 88;
  for (uint64_t I = 0; I < Emitted; ++I)
    R.emit(EventKind::EpochAdvance, /*A=*/I);
  EXPECT_EQ(R.emitted(), Emitted);

  std::vector<TraceEvent> Evs = R.snapshot();
  ASSERT_EQ(Evs.size(), TraceRing::Capacity);
  // Oldest first, contiguous, and exactly the newest Capacity events:
  // the first 88 were overwritten.
  for (size_t I = 0; I < Evs.size(); ++I) {
    EXPECT_EQ(Evs[I].Seq, Emitted - TraceRing::Capacity + I);
    EXPECT_EQ(Evs[I].A, Evs[I].Seq); // payload rode along
    EXPECT_EQ(Evs[I].Kind, EventKind::EpochAdvance);
  }

  // Stable decode names (the exporter and the Python tool key on them).
  EXPECT_STREQ(domainName(EventDomain::Migration), "migration");
  EXPECT_STREQ(domainName(EventDomain::Wal), "wal");
  EXPECT_STREQ(kindName(EventKind::MigrationSwap), "MigrationSwap");
  EXPECT_STREQ(kindName(EventKind::TxnAbort), "TxnAbort");
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(ObsRegistry, CountersGaugesCallbacksAndRemoval) {
  MetricsRegistry Reg;
  Counter &C = Reg.counter("test.ops", {{"kind", "insert"}});
  // Same name+labels resolves to the same deque-stable counter.
  EXPECT_EQ(&Reg.counter("test.ops", {{"kind", "insert"}}), &C);
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < 1000; ++I)
        C.inc();
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(C.load(), 4000u);

  Gauge &G = Reg.gauge("test.depth");
  G.set(7);
  G.add(-3);
  EXPECT_EQ(G.load(), 4);

  MetricsRegistry::CallbackId Id =
      Reg.addCallback("test.cb", {{"src", "unit"}},
                      MetricsRegistry::CallbackKind::Counter,
                      [] { return 99u; });

  MetricsSnapshot S = Reg.snapshot();
  const auto *Ops = findCounter(S, "test.ops");
  ASSERT_NE(Ops, nullptr);
  EXPECT_EQ(Ops->Value, 4000u);
  ASSERT_EQ(Ops->Labels.size(), 1u);
  EXPECT_EQ(Ops->Labels[0].first, "kind");
  EXPECT_EQ(Ops->Labels[0].second, "insert");
  const auto *Depth = findGauge(S, "test.depth");
  ASSERT_NE(Depth, nullptr);
  EXPECT_EQ(Depth->Value, 4);
  const auto *Cb = findCounter(S, "test.cb");
  ASSERT_NE(Cb, nullptr);
  EXPECT_EQ(Cb->Value, 99u);

  // Removal unpublishes the callback; direct metrics stay.
  Reg.removeCallback(Id);
  MetricsSnapshot S2 = Reg.snapshot();
  EXPECT_EQ(findCounter(S2, "test.cb"), nullptr);
  EXPECT_NE(findCounter(S2, "test.ops"), nullptr);

  // The sampling knobs: disabled means the hot-path probe is one load.
  Reg.setEnabled(false);
  EXPECT_EQ(Reg.maybeSampleStart(), 0u);
  Reg.setEnabled(true);
  Reg.setLatencySamplePeriod(1);
  EXPECT_NE(Reg.maybeSampleStart(), 0u);
}

//===----------------------------------------------------------------------===//
// Relation wiring
//===----------------------------------------------------------------------===//

TEST(ObsRelation, AttachExportsLiveCountersDetachStops) {
  MetricsRegistry Reg;
  Reg.setLatencySamplePeriod(1); // record every op's latency
  ConcurrentRelation R(splitStriped());
  const RelationSpec &Spec = R.spec();
  R.attachMetrics(Reg, "unit");

  PreparedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  for (int64_t I = 0; I < 16; ++I)
    ASSERT_TRUE(Ins.bind(0, Value::ofInt(I))
                    .bind(1, Value::ofInt(0))
                    .bind(2, Value::ofInt(I))
                    .execute());
  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  for (int64_t I = 0; I < 8; ++I)
    Succ.bind(0, Value::ofInt(I)).execute();
  EXPECT_EQ(R.remove(key(Spec, 0, 0)), 1u);

  MetricsSnapshot S = Reg.snapshot();
  // No second counting path: the exported values ARE the relation's
  // own counters, read through snapshot-time callbacks.
  const auto *Q = findCounter(S, "relation.queries");
  const auto *I = findCounter(S, "relation.inserts");
  const auto *Rm = findCounter(S, "relation.removes");
  ASSERT_NE(Q, nullptr);
  ASSERT_NE(I, nullptr);
  ASSERT_NE(Rm, nullptr);
  OperationCounts Counts = R.operationCounts();
  EXPECT_EQ(Q->Value, Counts.Queries);
  EXPECT_EQ(I->Value, Counts.Inserts);
  EXPECT_EQ(Rm->Value, Counts.Removes);
  ASSERT_GE(Q->Labels.size(), 1u);
  EXPECT_EQ(Q->Labels[0].first, "relation");
  EXPECT_EQ(Q->Labels[0].second, "unit");
  const auto *Size = findGauge(S, "relation.size");
  ASSERT_NE(Size, nullptr);
  EXPECT_EQ(Size->Value, static_cast<int64_t>(R.size()));
  // Sampled latency histograms, one per executed signature.
  uint64_t LatCount = 0;
  for (const auto &H : S.Histograms)
    if (H.Name == "relation.op_latency")
      LatCount += H.Data.Count;
  EXPECT_GT(LatCount, 0u);

  // Detach unpublishes everything relation-owned from the registry.
  R.detachMetrics();
  MetricsSnapshot S2 = Reg.snapshot();
  EXPECT_EQ(findCounter(S2, "relation.queries"), nullptr);
  EXPECT_EQ(findGauge(S2, "relation.size"), nullptr);
  // ...and the relation keeps serving, now paying only the null check.
  ASSERT_TRUE(Ins.bind(0, Value::ofInt(100))
                  .bind(1, Value::ofInt(0))
                  .bind(2, Value::ofInt(1))
                  .execute());
}

//===----------------------------------------------------------------------===//
// Event capture: migration, checkpoint, wait-die abort (acceptance)
//===----------------------------------------------------------------------===//

TEST(ObsEvents, MigrationCheckpointAndWaitDieAbortCaptured) {
  MetricsRegistry Reg;
  TempDir Dir;
  std::string Err;
  auto Log = WriteAheadLog::open(walOpts(Dir.Path), &Err);
  ASSERT_TRUE(Log) << Err;

  ConcurrentRelation R(splitStriped(4));
  const RelationSpec &Spec = R.spec();
  R.attachMetrics(Reg, "events");
  R.attachWal(*Log);
  for (int64_t I = 0; I < 24; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I, 0), weight(Spec, I)));

  // A wait-die kill under cross-order contention (the rival's second
  // acquisition is out of lock order, fails its bounded try against
  // the senior holder, and the younger scope dies with Conflict).
  ASSERT_TRUE(forceWaitDieConflict(R));

  // A checkpoint of shard 0.
  uint64_t Watermark = 0;
  ASSERT_TRUE(writeCheckpoint(R, Dir.Path, /*Shard=*/0, &Watermark, &Err))
      << Err;

  // A full migration: dual-write flip, swap flip, retirement.
  MigrationResult Mig = R.migrateTo(splitStriped());
  ASSERT_TRUE(Mig.Ok) << Mig.Error;

  MetricsSnapshot S = Reg.snapshot();

  // Txn domain: the wait-die abort, with its cause and op count.
  std::vector<TraceEvent> Txn = eventsOf(S, EventDomain::Txn);
  ASSERT_TRUE(hasKind(Txn, EventKind::TxnAbort));
  bool SawConflict = false;
  for (const TraceEvent &E : Txn)
    if (E.Kind == EventKind::TxnAbort &&
        E.A == uint64_t(TxnAbortCause::Conflict)) {
      SawConflict = true;
      EXPECT_GT(E.B, 0u); // the dying scope's birth stamp
    }
  EXPECT_TRUE(SawConflict);
  const auto *Aborts = findCounter(S, "txn.aborts");
  ASSERT_NE(Aborts, nullptr); // at least the conflict cause is nonzero

  // WAL domain: checkpoint begin/end with watermark and tuple count.
  std::vector<TraceEvent> Wal = eventsOf(S, EventDomain::Wal);
  ASSERT_TRUE(hasKind(Wal, EventKind::CheckpointBegin));
  bool SawEnd = false;
  for (const TraceEvent &E : Wal)
    if (E.Kind == EventKind::CheckpointEnd) {
      SawEnd = true;
      EXPECT_EQ(E.A, 0u); // shard
      EXPECT_EQ(E.B, Watermark);
      EXPECT_EQ(E.C, 24u); // tuples written
    }
  EXPECT_TRUE(SawEnd);

  // Migration domain: both flips plus the retirement, in order.
  std::vector<TraceEvent> MigEvs = eventsOf(S, EventDomain::Migration);
  ASSERT_EQ(MigEvs.size(), 3u);
  EXPECT_EQ(MigEvs[0].Kind, EventKind::MigrationDualWrite);
  EXPECT_EQ(MigEvs[0].B, 24u); // relation size at the flip
  EXPECT_EQ(MigEvs[1].Kind, EventKind::MigrationSwap);
  EXPECT_GT(MigEvs[1].A, MigEvs[0].A); // plan epoch advanced between flips
  EXPECT_EQ(MigEvs[2].Kind, EventKind::MigrationRetired);
  EXPECT_EQ(MigEvs[2].A, Mig.Backfilled);

  R.detachWal();
}

//===----------------------------------------------------------------------===//
// adaptPlans retires cold secondary directories
//===----------------------------------------------------------------------===//

TEST(ObsRetire, AdaptPlansRetiresColdDirectories) {
  MetricsRegistry Reg;
  ConcurrentRelation R(splitStriped());
  const RelationSpec &Spec = R.spec();
  R.attachMetrics(Reg, "retire");
  for (int64_t S = 0; S < 16; ++S)
    ASSERT_TRUE(R.insert(key(Spec, S, S % 4), weight(Spec, S)));

  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  PreparedQuery ByDst =
      R.prepareQuery(Spec.cols({"dst"}), Spec.cols({"src", "weight"}));
  // One bare execution each: prepared handles compile lazily, so this
  // is what puts the two query signatures into the plan cache.
  Succ.bind(0, Value::ofInt(1)).execute();
  ByDst.bind(0, Value::ofInt(1)).execute();

  // Two non-key snapshot-read shapes leave two secondary directories
  // behind (lazy creation on the first read's full-scan fallback).
  {
    Transaction T(R);
    ASSERT_TRUE(T.query(Succ, {Value::ofInt(1)}));
    ASSERT_TRUE(T.query(ByDst, {Value::ofInt(1)}));
    ASSERT_TRUE(T.commit());
  }
  EXPECT_EQ(R.mvccStore().directoryCount(), 2u);
  EXPECT_TRUE(
      hasKind(Reg.ring(EventDomain::Relation).snapshot(),
              EventKind::DirectoryBackfill));

  // First replan: both query signatures are live in the plan cache, so
  // both directories survive.
  R.adaptPlans();
  EXPECT_EQ(R.mvccStore().directoryCount(), 2u);
  EXPECT_EQ(R.mvccStore().directoriesRetired(), 0u);

  // Only the {src} shape comes back after the cache clear (the handle
  // rebinds and recompiles on its next execution); the {dst} signature
  // has left the cache, so the next replan retires its directory —
  // and only its.
  Succ.bind(0, Value::ofInt(1)).execute();
  R.adaptPlans();
  EXPECT_EQ(R.mvccStore().directoryCount(), 1u);
  EXPECT_EQ(R.mvccStore().directoriesRetired(), 1u);
  const auto *Retired =
      findCounter(Reg.snapshot(), "relation.mvcc.directories_retired");
  ASSERT_NE(Retired, nullptr);
  EXPECT_EQ(Retired->Value, 1u);
  EXPECT_TRUE(hasKind(Reg.ring(EventDomain::Relation).snapshot(),
                      EventKind::DirectoryRetire));

  // The surviving shape still reads through its directory; the retired
  // one transparently falls back to the full scan (and re-creates).
  {
    Transaction T(R);
    uint32_t N = 0;
    ASSERT_TRUE(T.query(Succ, {Value::ofInt(1)}, nullptr, &N));
    EXPECT_EQ(N, 1u);
    EXPECT_TRUE(T.lastSnapshotReadStats().DirectoryServed);
    ASSERT_TRUE(T.query(ByDst, {Value::ofInt(1)}, nullptr, &N));
    EXPECT_EQ(N, 4u);
    EXPECT_TRUE(T.lastSnapshotReadStats().FullScan);
    ASSERT_TRUE(T.commit());
  }
  EXPECT_EQ(R.mvccStore().directoryCount(), 2u); // re-created on demand
}

//===----------------------------------------------------------------------===//
// Export: one snapshot, all six domains, JSON + Prometheus + round-trip
//===----------------------------------------------------------------------===//

TEST(ObsExport, OneSnapshotCoversAllSixDomains) {
  MetricsRegistry Reg;
  Reg.setLatencySamplePeriod(1);
  EpochMetricsGuard EpochGuard(Reg);
  TempDir Dir;
  std::string Err;
  auto Log = WriteAheadLog::open(walOpts(Dir.Path), &Err);
  ASSERT_TRUE(Log) << Err;

  ConcurrentRelation R(splitStriped(4));
  const RelationSpec &Spec = R.spec();
  R.attachMetrics(Reg, "all");
  R.attachWal(*Log);
  Log->attachMetrics(Reg);

  // Relation traffic (counters, latency histograms, plan-cache sigs).
  PreparedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  for (int64_t I = 0; I < 32; ++I)
    ASSERT_TRUE(Ins.bind(0, Value::ofInt(I))
                    .bind(1, Value::ofInt(0))
                    .bind(2, Value::ofInt(I))
                    .execute());
  for (int64_t I = 0; I < 8; ++I)
    Succ.bind(0, Value::ofInt(I)).execute();

  // Relation ring: a non-key snapshot read backfills a directory.
  {
    Transaction T(R);
    ASSERT_TRUE(T.query(Succ, {Value::ofInt(1)}));
    ASSERT_TRUE(T.commit());
  }
  // Txn ring: one wait-die conflict kill under cross-order contention.
  ASSERT_TRUE(forceWaitDieConflict(R));
  // Wal ring: a checkpoint (plus the flush rounds the appends caused).
  uint64_t Watermark = 0;
  ASSERT_TRUE(writeCheckpoint(R, Dir.Path, 0, &Watermark, &Err)) << Err;
  // Tuner ring: one scored tick against a structurally different
  // candidate emits a TunerDecision whatever the verdict.
  OnlineTunerConfig Cfg;
  Cfg.Candidates = {{GraphShape::Split, PlacementSchemeKind::Striped, 64,
                     ContainerKind::ConcurrentHashMap,
                     ContainerKind::TreeMap}};
  Cfg.Threads = 2;
  Cfg.Metrics = &Reg;
  Cfg.MetricsLabel = "all";
  OnlineTuner Tuner(R, Cfg);
  TuneTick Tick = Tuner.tick();
  EXPECT_TRUE(Tick.Scored);
  // Migration ring: a full migrateTo.
  MigrationResult Mig = R.migrateTo(splitStriped());
  ASSERT_TRUE(Mig.Ok) << Mig.Error;
  // Epoch ring: force two advances (migration retirement already
  // queued work; synchronize makes the advance deterministic).
  EpochDomain::global().synchronize();

  MetricsSnapshot S = Reg.snapshot();

  // Every domain has at least one event in the one capture.
  EXPECT_TRUE(hasKind(eventsOf(S, EventDomain::Relation),
                      EventKind::DirectoryBackfill));
  EXPECT_TRUE(hasKind(eventsOf(S, EventDomain::Txn), EventKind::TxnAbort));
  EXPECT_FALSE(eventsOf(S, EventDomain::Wal).empty());
  EXPECT_TRUE(
      hasKind(eventsOf(S, EventDomain::Epoch), EventKind::EpochAdvance));
  EXPECT_TRUE(hasKind(eventsOf(S, EventDomain::Migration),
                      EventKind::MigrationSwap));
  EXPECT_TRUE(hasKind(eventsOf(S, EventDomain::Tuner),
                      EventKind::TunerDecision));

  // Counters/gauges from every subsystem in the same capture.
  EXPECT_NE(findCounter(S, "relation.queries"), nullptr);
  EXPECT_NE(findCounter(S, "txn.aborts"), nullptr);
  EXPECT_NE(findCounter(S, "wal.records_appended"), nullptr);
  EXPECT_NE(findGauge(S, "epoch.current"), nullptr);
  EXPECT_NE(findCounter(S, "epoch.reclaimed"), nullptr);

  // Both export formats from the one snapshot.
  std::string Json = toJson(S);
  EXPECT_NE(Json.find("\"schema\": \"crs-metrics/1\""), std::string::npos);
  for (const char *Dom :
       {"relation", "txn", "wal", "epoch", "migration", "tuner"})
    EXPECT_NE(Json.find(std::string("\"domain\": \"") + Dom + "\""),
              std::string::npos)
        << Dom;
  std::string Prom = toPrometheus(S);
  EXPECT_NE(Prom.find("# TYPE crs_relation_queries counter"),
            std::string::npos);
  EXPECT_NE(Prom.find("crs_txn_aborts"), std::string::npos);
  EXPECT_NE(Prom.find("crs_wal_records_appended"), std::string::npos);
  EXPECT_NE(Prom.find("crs_epoch_current"), std::string::npos);

  // Round-trip: the dump validates against the schema via the in-repo
  // Python tool (the same check the CI stress lane runs on its
  // artifact). Skipped when python3 is not on PATH.
  const std::string Dump = Dir.Path + "/metrics.json";
  ASSERT_TRUE(writeJsonFile(S, Dump, &Err)) << Err;
  if (std::system("python3 --version >/dev/null 2>&1") != 0)
    GTEST_SKIP() << "python3 not available; schema round-trip skipped";
  const std::string Tool =
      std::string(CRS_SOURCE_DIR) + "/tools/metrics_summary.py";
  EXPECT_EQ(std::system(("python3 \"" + Tool + "\" --validate \"" + Dump +
                         "\" >/dev/null 2>&1")
                            .c_str()),
            0);
  // And the validator genuinely rejects: a wrong schema string fails.
  const std::string Bad = Dir.Path + "/bad.json";
  {
    std::ofstream Out(Bad);
    Out << "{\"schema\": \"nope\", \"captured_unix_micros\": 1, "
           "\"counters\": [], \"gauges\": [], \"histograms\": [], "
           "\"events\": []}";
  }
  EXPECT_NE(std::system(("python3 \"" + Tool + "\" --validate \"" + Bad +
                         "\" >/dev/null 2>&1")
                            .c_str()),
            0);

  R.detachWal();
}
