//===- tests/epoch_test.cpp - Epoch reclamation & wait-free reads -------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// sync/Epoch.h and the wait-free read fast path built on it. The
/// domain half checks the reclamation contract in isolation (guard
/// nesting, grace periods, stalled readers, synchronize racing guard
/// churn, destruction with a pending queue); the fast-path half checks
/// the end-to-end property the layer buys: an epoch-eligible prepared
/// query executes with zero lock acquisitions — assertable exactly,
/// because shared-side lock counting is sampled and a path that never
/// acquires can never be sampled (sync/PhysicalLock.h) — while
/// ineligible plans and disabled relations fall back to the locked
/// path, and readers racing removals, replans, and a live migration
/// still agree with the stress oracle.
///
//===----------------------------------------------------------------------===//

#include "StressHarness.h"
#include "autotune/Autotuner.h"
#include "decomp/Shapes.h"
#include "lockplace/PlacementSchemes.h"
#include "runtime/ConcurrentRelation.h"
#include "runtime/PreparedOp.h"
#include "sync/Epoch.h"
#include "sync/PhysicalLock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace crs;

namespace {

//===----------------------------------------------------------------------===//
// EpochDomain in isolation
//===----------------------------------------------------------------------===//

TEST(Epoch, GuardNestingPinsOnce) {
  EpochDomain D;
  EXPECT_FALSE(D.inGuard());
  {
    EpochDomain::Guard G1(D);
    EXPECT_TRUE(D.inGuard());
    {
      EpochDomain::Guard G2(D);
      EXPECT_TRUE(D.inGuard());
    }
    // The outer guard still pins after the nested one exits.
    EXPECT_TRUE(D.inGuard());
  }
  EXPECT_FALSE(D.inGuard());
  // A quiescent domain advances freely.
  uint64_t E = D.epoch();
  EXPECT_TRUE(D.tryAdvance());
  EXPECT_EQ(D.epoch(), E + 1);
}

TEST(Epoch, RetireBeforeQuiesceIsNeverFreed) {
  EpochDomain D;
  std::atomic<bool> Deleted{false};
  std::atomic<bool> Pinned{false}, Release{false};
  std::thread Reader([&] {
    EpochDomain::Guard G(D);
    Pinned.store(true, std::memory_order_release);
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  while (!Pinned.load(std::memory_order_acquire))
    std::this_thread::yield();

  // Retired while the reader's guard is live: whatever the collector
  // does, the deleter must not run — the reader may still hold a raw
  // pointer obtained inside its guard.
  D.retire(&Deleted, [](void *P) {
    static_cast<std::atomic<bool> *>(P)->store(true);
  });
  for (int I = 0; I < 100; ++I)
    D.tryAdvance();
  EXPECT_FALSE(Deleted.load());
  EXPECT_EQ(D.pendingRetires(), 1u);
  EXPECT_EQ(D.reclaimed(), 0u);

  Release.store(true, std::memory_order_release);
  Reader.join();
  D.synchronize();
  EXPECT_TRUE(Deleted.load());
  EXPECT_EQ(D.pendingRetires(), 0u);
  EXPECT_EQ(D.reclaimed(), 1u);
}

TEST(Epoch, StalledReaderBoundsReclamationNotSafety) {
  EpochDomain D;
  std::atomic<bool> Pinned{false}, Release{false};
  std::thread Reader([&] {
    EpochDomain::Guard G(D);
    Pinned.store(true, std::memory_order_release);
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  while (!Pinned.load(std::memory_order_acquire))
    std::this_thread::yield();

  // A stalled reader stops the epoch after at most one advance, so the
  // backlog grows bounded only by retire traffic — memory, not safety,
  // is what a straggler costs (exactly the plan cache's old
  // retire-not-free discipline, now with an eventual release valve).
  constexpr size_t N = 200;
  std::atomic<size_t> Freed{0};
  for (size_t I = 0; I < N; ++I)
    D.retire(&Freed, [](void *P) {
      static_cast<std::atomic<size_t> *>(P)->fetch_add(1);
    });
  uint64_t E = D.epoch();
  for (int I = 0; I < 50; ++I)
    D.tryAdvance();
  EXPECT_LE(D.epoch(), E + 1); // wedged behind the straggler
  EXPECT_EQ(Freed.load(), 0u);
  EXPECT_EQ(D.pendingRetires(), N);

  Release.store(true, std::memory_order_release);
  Reader.join();
  D.synchronize();
  EXPECT_EQ(Freed.load(), N);
  EXPECT_EQ(D.pendingRetires(), 0u);
}

TEST(Epoch, SynchronizeCompletesAgainstConcurrentEnters) {
  EpochDomain D;
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Churn;
  for (int T = 0; T < 3; ++T)
    Churn.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire)) {
        EpochDomain::Guard G(D);
        // A little in-guard work so guards overlap synchronize's scans.
        for (volatile int I = 0; I < 32; ++I)
          ;
      }
    });

  // synchronize must terminate under continuous guard churn (guards
  // entered mid-wait pin the then-current epoch, so they can block at
  // most one further advance), and everything retired before the call
  // must be freed by the time it returns.
  for (int Round = 0; Round < 25; ++Round) {
    std::atomic<bool> Deleted{false};
    D.retire(&Deleted, [](void *P) {
      static_cast<std::atomic<bool> *>(P)->store(true);
    });
    D.synchronize();
    EXPECT_TRUE(Deleted.load()) << "round " << Round;
  }
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Churn)
    T.join();
}

TEST(Epoch, DomainDestructionRunsPendingDeleters) {
  std::atomic<size_t> Freed{0};
  {
    EpochDomain D;
    for (int I = 0; I < 3; ++I)
      D.retire(&Freed, [](void *P) {
        static_cast<std::atomic<size_t> *>(P)->fetch_add(1);
      });
    // No synchronize: the domain dies owing three deleters.
  }
  EXPECT_EQ(Freed.load(), 3u);
}

TEST(Epoch, RetireObjectDeletesThroughTheTypedPath) {
  struct Tracked {
    std::atomic<int> *Count;
    explicit Tracked(std::atomic<int> *C) : Count(C) {}
    ~Tracked() { Count->fetch_add(1); }
  };
  std::atomic<int> Destroyed{0};
  EpochDomain D;
  D.retireObject(new Tracked(&Destroyed));
  EXPECT_EQ(Destroyed.load(), 0); // grace period not yet elapsed
  D.synchronize();
  EXPECT_EQ(Destroyed.load(), 1);
}

//===----------------------------------------------------------------------===//
// The wait-free read fast path
//===----------------------------------------------------------------------===//

Tuple gKey(const RelationSpec &Spec, int64_t S, int64_t D) {
  return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                    {Spec.col("dst"), Value::ofInt(D)}});
}

Tuple gWeight(const RelationSpec &Spec, int64_t W) {
  return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
}

/// Every container on every path concurrency-safe: all query plans
/// classify epoch-eligible.
RepresentationConfig allConcurrent(GraphShape Shape = GraphShape::Split) {
  return makeGraphRepresentation({Shape, PlacementSchemeKind::Striped, 64,
                                  ContainerKind::ConcurrentHashMap,
                                  ContainerKind::ConcurrentSkipListMap});
}

uint64_t totalAcquisitions(const ConcurrentRelation &R) {
  RelationStatistics Stats = R.collectStatistics();
  uint64_t A = 0;
  for (const NodeLockTraffic &N : Stats.Nodes)
    A += N.Acquisitions;
  return A;
}

TEST(FastPath, EligibleQueryTakesZeroLockAcquisitions) {
  RepresentationConfig Config = allConcurrent();
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);
  ASSERT_TRUE(R.fastReadsEnabled()); // the default

  for (int64_t S = 0; S < 4; ++S)
    for (int64_t D = 0; D < 8; ++D)
      R.insert(gKey(Spec, S, D), gWeight(Spec, S * 10 + D));

  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  EXPECT_NE(Succ.explain().find("epoch-eligible: yes"), std::string::npos)
      << Succ.explain();

  // Warm the plan and check semantics first.
  EXPECT_EQ(Succ.bind(0, Value::ofInt(0)).count(), 8u);

  // Shared-side lock counting is sampled per thread: a path that takes
  // zero shared locks moves the sample tick by exactly zero, so the
  // acquisition total is *exactly* unchanged — not merely "small" —
  // across any number of fast reads. Run several full sample periods
  // to make the contrast with the locked path unmistakable.
  const uint64_t Before = totalAcquisitions(R);
  constexpr int64_t Reads = 4 * PhysicalLock::SharedSamplePeriod;
  for (int64_t I = 0; I < Reads; ++I)
    EXPECT_EQ(Succ.bind(0, Value::ofInt(I % 4)).count(), 8u);
  EXPECT_EQ(totalAcquisitions(R), Before)
      << "epoch-eligible prepared query acquired locks";

  // The same handle on the locked path (fast reads disabled) does
  // acquire: the sampled estimate must clear several periods.
  R.setFastReads(false);
  for (int64_t I = 0; I < Reads; ++I)
    EXPECT_EQ(Succ.bind(0, Value::ofInt(I % 4)).count(), 8u);
  EXPECT_GT(totalAcquisitions(R),
            Before + 2 * PhysicalLock::SharedSamplePeriod);
}

TEST(FastPath, LegacyQueryAlsoTakesTheFastPath) {
  RepresentationConfig Config = allConcurrent();
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);
  for (int64_t D = 0; D < 6; ++D)
    R.insert(gKey(Spec, 1, D), gWeight(Spec, D));

  // Warm the signature, then measure.
  Tuple Q = Tuple::of({{Spec.col("src"), Value::ofInt(1)}});
  EXPECT_EQ(R.query(Q, Spec.cols({"dst", "weight"})).size(), 6u);
  const uint64_t Before = totalAcquisitions(R);
  for (int64_t I = 0; I < 2 * PhysicalLock::SharedSamplePeriod; ++I)
    EXPECT_EQ(R.query(Q, Spec.cols({"dst", "weight"})).size(), 6u);
  EXPECT_EQ(totalAcquisitions(R), Before);
}

TEST(FastPath, IneligiblePlanFallsBackToTheLockedPath) {
  // TreeMap is not concurrency-safe (§6.1), so any traversal through it
  // classifies ineligible — the relation's flag stays on, but this
  // plan must run locked.
  RepresentationConfig Config = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Striped, 64,
       ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap});
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);
  ASSERT_TRUE(R.fastReadsEnabled());
  for (int64_t D = 0; D < 5; ++D)
    R.insert(gKey(Spec, 2, D), gWeight(Spec, D));

  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  std::string Explain = Succ.explain();
  EXPECT_NE(Explain.find("epoch-eligible: no"), std::string::npos) << Explain;
  EXPECT_NE(Explain.find("not concurrency-safe"), std::string::npos)
      << Explain;

  EXPECT_EQ(Succ.bind(0, Value::ofInt(2)).count(), 5u);
  const uint64_t Before = totalAcquisitions(R);
  for (int64_t I = 0; I < 2 * PhysicalLock::SharedSamplePeriod; ++I)
    EXPECT_EQ(Succ.bind(0, Value::ofInt(2)).count(), 5u);
  EXPECT_GT(totalAcquisitions(R), Before); // sampled shared traffic
}

TEST(FastPath, MigrationPreservesTheFastReadsSetting) {
  RepresentationConfig Config = allConcurrent();
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);
  for (int64_t S = 0; S < 3; ++S)
    for (int64_t D = 0; D < 4; ++D)
      R.insert(gKey(Spec, S, D), gWeight(Spec, S + D));
  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  EXPECT_EQ(Succ.bind(0, Value::ofInt(1)).count(), 4u);

  // The retirement flip parks fast reads for its drain, then restores
  // what the client had configured — in both positions of the switch.
  ASSERT_TRUE(R.migrateTo(allConcurrent(GraphShape::Diamond)).Ok);
  EXPECT_TRUE(R.fastReadsEnabled());
  EXPECT_EQ(Succ.bind(0, Value::ofInt(1)).count(), 4u); // rebinds, fast again

  R.setFastReads(false);
  ASSERT_TRUE(R.migrateTo(allConcurrent(GraphShape::Split)).Ok);
  EXPECT_FALSE(R.fastReadsEnabled());
  EXPECT_EQ(Succ.bind(0, Value::ofInt(1)).count(), 4u);
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(FastPath, WaitFreeReadersVsChurnAndMigrationMatchOracle) {
  // The fig5 read-heavy panel's mix, under the stress harness: readers
  // on the wait-free path race inserts, removals, two replans, and a
  // full live migration (both flips, backfill, epoch-synchronized
  // retirement). The per-thread mutation logs replay into an exact
  // final-state oracle: a reader crash, a lost or duplicated mutation,
  // or a torn traversal under TSan/ASan all fail here.
  ConcurrentRelation R(allConcurrent());
  PreparedRelationTarget Target(R);

  stress::StressOptions Opts;
  Opts.Seed = 60001;
  Opts.Mix = OpMix{45, 45, 9, 1};
  MigrationResult Res;
  stress::StressReport Rep = stress::runStressWithOracle(Target, Opts, [&] {
    R.adaptPlans(); // replan under read traffic: snapshots retire live
    Res = R.migrateTo(allConcurrent(GraphShape::Diamond), nullptr);
    R.adaptPlans(); // and again on the adopted representation
  });
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_TRUE(R.fastReadsEnabled());

  EXPECT_TRUE(Rep.Errors.empty())
      << Rep.Errors.size() << " mismatches, first: " << Rep.Errors[0] << "; "
      << Rep.hint();
  EXPECT_EQ(R.size(), Rep.Expected.size()) << Rep.hint();
  std::vector<std::string> Diffs =
      stress::diffFinalState(R.scanAll(), R.spec(), Rep.Expected);
  EXPECT_TRUE(Diffs.empty()) << Diffs.front() << "; " << Rep.hint();
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

} // namespace
